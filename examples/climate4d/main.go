// Climate 4-order: decompose a lon×lat×alt×time aerosol-style tensor,
// showing D-Tucker on a 4-order input — where slice-based compression pays
// off most — and interpreting the altitude and seasonal factors.
//
// Run with: go run ./examples/climate4d
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/baselines/tuckerals"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	ds := workload.ClimateLike(72, 48, 16, 120, 9)
	x := ds.X
	fmt.Printf("climate tensor: %s (%s)\n", ds.Dims(), ds.Description)
	fmt.Printf("raw size: %.1f MB as float64\n", float64(x.Len())*8/1e6)

	ranks := []int{6, 6, 4, 6}
	dec, err := core.Decompose(x, core.Options{Config: core.Config{Ranks: ranks, Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nD-Tucker: %v total (approx %v / init %v / %d sweeps %v)\n",
		dec.Stats.Total().Round(time.Millisecond),
		dec.Stats.ApproxTime.Round(time.Millisecond),
		dec.Stats.InitTime.Round(time.Millisecond),
		dec.Stats.Iters, dec.Stats.IterTime.Round(time.Millisecond))
	fmt.Printf("relative error %.4f, compression %.0f×\n",
		dec.RelError(x), float64(x.Len())/float64(dec.StorageFloats()))

	// Altitude profile of the leading component: how the dominant aerosol
	// pattern distributes over height.
	alt := dec.Factors[2]
	fmt.Println("\naltitude loading of leading component:")
	lo, hi := math.Inf(1), math.Inf(-1)
	for a := 0; a < alt.Rows(); a++ {
		v := alt.At(a, 0)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for a := 0; a < alt.Rows(); a++ {
		width := int(36 * (alt.At(a, 0) - lo) / (hi - lo + 1e-12))
		fmt.Printf("  level %2d  %s\n", a, bar(width))
	}

	// Seasonality: autocorrelation of the leading temporal component at a
	// one-cycle lag exposes the seasonal cycle in the data.
	tf := dec.Factors[3]
	col := make([]float64, tf.Rows())
	for t := range col {
		col[t] = tf.At(t, 0)
	}
	bestLag, bestAC := 0, -2.0
	for lag := 4; lag <= tf.Rows()/2; lag++ {
		if ac := autocorr(col, lag); ac > bestAC {
			bestAC, bestLag = ac, lag
		}
	}
	fmt.Printf("\nleading temporal component peaks in autocorrelation at lag %d steps (r=%.3f) — the seasonal cycle\n",
		bestLag, bestAC)

	// Baseline comparison on the full 4-order tensor.
	t0 := time.Now()
	als, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTucker-ALS on the raw tensor: %v, error %.4f → D-Tucker is %.1f× faster at matching accuracy\n",
		time.Since(t0).Round(time.Millisecond), als.RelError(x),
		float64(time.Since(t0))/float64(dec.Stats.Total()))
}

func autocorr(x []float64, lag int) float64 {
	n := len(x) - lag
	if n <= 1 {
		return 0
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		num += (x[i] - mean) * (x[i+lag] - mean)
	}
	for _, v := range x {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func bar(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
