// Stock factors: decompose a stock-market-like tensor streamingly, detect
// anomalous (regime-shift) periods from temporal factor dynamics, and find
// groups of stocks with similar latent exposure via factor-space cosine
// similarity — the discovery workflow the paper motivates.
//
// Run with: go run ./examples/stockfactors
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// spike pairs an index (a day or stock id) with a magnitude, reused for
// jumps and similarities.
type spike struct {
	day  int
	move float64
}

func main() {
	const (
		stocks, features, days = 300, 30, 480
		rank                   = 6
		chunkDays              = 120
	)
	ds := workload.StockLike(stocks, features, days, 3)
	x := ds.X
	fmt.Printf("stock tensor: %s (%s)\n", ds.Dims(), ds.Description)

	// Stream the data quarter by quarter, refreshing the model after each
	// chunk — only the new days are compressed, and the solve warm-starts.
	st := core.NewStream(core.Options{Config: core.Config{Ranks: []int{rank, rank, rank}, Seed: 1}})
	var dec *core.Decomposition
	area := stocks * features
	t0 := time.Now()
	for off := 0; off < days; off += chunkDays {
		chunk := tensor.NewFromData(
			append([]float64(nil), x.Data()[off*area:(off+chunkDays)*area]...),
			stocks, features, chunkDays)
		if err := st.Append(chunk); err != nil {
			log.Fatal(err)
		}
		var err error
		dec, err = st.Decompose()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  day %3d–%3d ingested; model refreshed in %d sweeps, stream stores %.1f kF\n",
			off, off+chunkDays-1, dec.Stats.Iters, float64(st.StorageFloats())/1e3)
	}
	fmt.Printf("streamed %d days in %v; final relative error %.4f\n",
		days, time.Since(t0).Round(time.Millisecond), dec.RelError(x))

	// Anomaly detection: day-over-day movement in temporal factor space.
	// Regime shifts appear as spikes.
	temporal := dec.Factors[2]
	var moves []spike
	for t := 1; t < days; t++ {
		d := 0.0
		for c := 0; c < rank; c++ {
			diff := temporal.At(t, c) - temporal.At(t-1, c)
			d += diff * diff
		}
		moves = append(moves, spike{t, math.Sqrt(d)})
	}
	mean, sd := stats(moves)
	sort.Slice(moves, func(a, b int) bool { return moves[a].move > moves[b].move })
	fmt.Println("\ntop factor-space jumps (candidate regime shifts, >2σ flagged):")
	for _, s := range moves[:6] {
		flag := ""
		if s.move > mean+2*sd {
			flag = "  ← anomalous"
		}
		fmt.Printf("  day %3d  jump %.4f%s\n", s.day, s.move, flag)
	}

	// Similar-stock lookup: cosine similarity between rows of the stock
	// factor matrix.
	target := 0
	fmt.Printf("\nstocks with latent exposure most similar to stock %d:\n", target)
	sims := make([]spike, 0, stocks-1)
	sf := dec.Factors[0]
	for s := 0; s < stocks; s++ {
		if s == target {
			continue
		}
		sims = append(sims, spike{s, cosine(sf.Row(target), sf.Row(s))})
	}
	sort.Slice(sims, func(a, b int) bool { return sims[a].move > sims[b].move })
	for _, s := range sims[:5] {
		fmt.Printf("  stock %3d  cosine %.4f\n", s.day, s.move)
	}
}

func cosine(a, b []float64) float64 {
	return mat.Dot(a, b) / (mat.Nrm2(a)*mat.Nrm2(b) + 1e-300)
}

func stats(xs []spike) (mean, sd float64) {
	for _, x := range xs {
		mean += x.move
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x.move - mean) * (x.move - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}
