// Video analysis: compress a video-like tensor with D-Tucker, separate the
// static background from moving foreground via the temporal factor, and
// measure per-frame reconstruction error to locate the frames the low-rank
// model explains worst (where the moving objects are most active).
//
// Run with: go run ./examples/videoanalysis
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/workload"
)

func main() {
	const (
		h, w, frames = 160, 120, 192
		rank         = 8
	)
	ds := workload.VideoLike(h, w, frames, 7)
	x := ds.X
	fmt.Printf("video: %s (%s)\n", ds.Dims(), ds.Description)

	dec, err := core.Decompose(x, core.Options{Config: core.Config{Ranks: []int{rank, rank, rank}, Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decomposed in %v, %.0f× compression, relative error %.4f\n",
		dec.Stats.Total().Round(time.Millisecond),
		float64(x.Len())/float64(dec.StorageFloats()),
		dec.RelError(x))

	// The temporal factor's leading column tracks global illumination; its
	// variation across frames reveals the periodic lighting drift baked
	// into the scene.
	temporal := dec.Factors[2]
	fmt.Println("\ntemporal component 1 (illumination), sampled every 24 frames:")
	for t := 0; t < frames; t += 24 {
		bar := int(40 * (temporal.At(t, 0) - colMin(temporal, 0)) / (colMax(temporal, 0) - colMin(temporal, 0) + 1e-12))
		fmt.Printf("  frame %3d  %s\n", t, repeat('#', bar))
	}

	// Per-frame residual: reconstruct each frame from the model and
	// compare. Frames dominated by fast-moving objects reconstruct worse.
	type frameErr struct {
		frame int
		err   float64
	}
	errs := make([]frameErr, frames)
	a1, a2 := dec.Factors[0], dec.Factors[1]
	for t := 0; t < frames; t++ {
		// Slab of the core weighted by the temporal row: J1×J2.
		slab := mat.New(rank, rank)
		for c := 0; c < rank; c++ {
			wgt := temporal.At(t, c)
			for j1 := 0; j1 < rank; j1++ {
				for j2 := 0; j2 < rank; j2++ {
					slab.Set(j1, j2, slab.At(j1, j2)+wgt*dec.Core.At(j1, j2, c))
				}
			}
		}
		approx := mat.Mul(mat.Mul(a1, slab), a2.T())
		orig := x.FrontalSlice(t)
		d := orig.Sub(approx).Norm()
		errs[t] = frameErr{t, d / math.Max(orig.Norm(), 1e-12)}
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].err > errs[b].err })
	fmt.Println("\nframes the rank-8 model explains worst (most foreground motion):")
	for _, fe := range errs[:5] {
		fmt.Printf("  frame %3d  residual %.4f\n", fe.frame, fe.err)
	}
	fmt.Println("\nframes it explains best (background only):")
	for _, fe := range errs[frames-5:] {
		fmt.Printf("  frame %3d  residual %.4f\n", fe.frame, fe.err)
	}
}

func colMin(m *mat.Dense, c int) float64 {
	v := math.Inf(1)
	for i := 0; i < m.Rows(); i++ {
		if m.At(i, c) < v {
			v = m.At(i, c)
		}
	}
	return v
}

func colMax(m *mat.Dense, c int) float64 {
	v := math.Inf(-1)
	for i := 0; i < m.Rows(); i++ {
		if m.At(i, c) > v {
			v = m.At(i, c)
		}
	}
	return v
}

func repeat(ch byte, n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
