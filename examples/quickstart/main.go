// Quickstart: decompose a synthetic low-rank tensor with D-Tucker, inspect
// the result, and compare against plain Tucker-ALS.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/baselines/tuckerals"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A 128×96×200 tensor that is (approximately) rank-8 with 10% noise —
	// the regime Tucker decomposition is designed for.
	ds := workload.LowRankNoise([]int{128, 96, 200}, 8, 0.10, 42)
	x := ds.X
	fmt.Printf("input: %s tensor, %.1f MB as float64\n", ds.Dims(), float64(x.Len())*8/1e6)

	// D-Tucker: choose the core size (ranks) per mode; everything else has
	// sensible defaults (tol 1e-4, ≤100 sweeps, slice rank max(J1,J2)).
	dec, err := core.Decompose(x, core.Options{Config: core.Config{Ranks: []int{8, 8, 8}, Seed: 1}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nD-Tucker finished in %v (approximation %v, init %v, %d ALS sweeps %v)\n",
		dec.Stats.Total().Round(time.Millisecond),
		dec.Stats.ApproxTime.Round(time.Millisecond),
		dec.Stats.InitTime.Round(time.Millisecond),
		dec.Stats.Iters,
		dec.Stats.IterTime.Round(time.Millisecond))
	fmt.Printf("core shape %v, factor shapes:", dec.Core.Shape())
	for _, f := range dec.Factors {
		fmt.Printf(" %d×%d", f.Rows(), f.Cols())
	}
	fmt.Println()
	fmt.Printf("model stores %.1f kF vs input %.1f kF → %.0f× compression\n",
		float64(dec.StorageFloats())/1e3, float64(x.Len())/1e3,
		float64(x.Len())/float64(dec.StorageFloats()))
	fmt.Printf("exact relative reconstruction error: %.4f\n", dec.RelError(x))

	// The same decomposition with conventional Tucker-ALS on the raw
	// tensor, for comparison.
	t0 := time.Now()
	als, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: []int{8, 8, 8}})
	if err != nil {
		log.Fatal(err)
	}
	alsTime := time.Since(t0)
	fmt.Printf("\nTucker-ALS finished in %v with error %.4f\n", alsTime.Round(time.Millisecond), als.RelError(x))
	fmt.Printf("D-Tucker speedup: %.1f× with matching accuracy\n", float64(alsTime)/float64(dec.Stats.Total()))
}
