// Range query: compress a long temporal tensor once, then answer Tucker
// decompositions over arbitrary time ranges from the compressed slices —
// zooming into a local anomaly without ever touching the raw data again.
//
// Run with: go run ./examples/rangequery
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
	"repro/internal/workload"
)

func main() {
	const (
		stocks, features, days = 250, 24, 720
		rank                   = 8
	)
	ds := workload.StockLike(stocks, features, days, 17)
	x := ds.X

	// Inject a strong localized anomaly: a rank-1 shock over days 400-430.
	rng := rand.New(rand.NewSource(99))
	u := make([]float64, stocks)
	v := make([]float64, features)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	for t := 400; t < 430; t++ {
		for f := 0; f < features; f++ {
			for s := 0; s < stocks; s++ {
				x.Set(x.At(s, f, t)+2.5*u[s]*v[f], s, f, t)
			}
		}
	}
	fmt.Printf("tensor: %s with a hidden shock in days 400–429\n", ds.Dims())

	// One-time compression of the full history.
	st := core.NewStream(core.Options{Config: core.Config{Ranks: []int{rank, rank, rank}, Seed: 1}})
	t0 := time.Now()
	if err := st.Append(x); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d days in %v; stream stores %.1f kF (%.0f× smaller than raw)\n",
		days, time.Since(t0).Round(time.Millisecond),
		float64(st.StorageFloats())/1e3, float64(x.Len())/float64(st.StorageFloats()))

	// Global model, for the baseline error per window.
	global, err := st.Decompose()
	if err != nil {
		log.Fatal(err)
	}

	// Slide a 30-day window over the stream; for each, a range query gives
	// the local Tucker model. A window whose local model explains it far
	// better than the global model is anomalous — exactly the shock.
	fmt.Println("\n30-day windows, global vs local model error (higher ratio = more anomalous):")
	var queryTotal time.Duration
	bestWin, bestRatio := 0, 0.0
	for w0 := 0; w0+30 <= days; w0 += 30 {
		sub := subRange(x, w0, w0+30)
		tq := time.Now()
		local, err := st.DecomposeRange(w0, w0+30)
		if err != nil {
			log.Fatal(err)
		}
		queryTotal += time.Since(tq)
		// Restrict the global model to this window: same core and entity/
		// feature factors, temporal factor sliced to the window's rows.
		windowed := tucker.Model{
			Core: global.Core,
			Factors: []*mat.Dense{
				global.Factors[0],
				global.Factors[1],
				global.Factors[2].Slice(w0, w0+30, 0, rank),
			},
		}
		ge := windowed.RelError(sub) // how well the global factors explain the window
		le := local.RelError(sub)
		ratio := ge / (le + 1e-12)
		marker := ""
		if ratio > bestRatio {
			bestRatio, bestWin = ratio, w0
		}
		if w0 < 430 && 400 < w0+30 {
			marker = "  ← overlaps shock"
		}
		fmt.Printf("  days %3d–%3d  global %.4f  local %.4f  ratio %5.2f%s\n", w0, w0+29, ge, le, ratio, marker)
	}
	fmt.Printf("\nmost anomalous window starts at day %d (ratio %.2f); %d range queries took %v total\n",
		bestWin, bestRatio, days/30, queryTotal.Round(time.Millisecond))
	fmt.Println("each query ran on compressed slices only — the raw tensor was read exactly once")
}

func subRange(x *tensor.Dense, t0, t1 int) *tensor.Dense {
	shape := x.Shape()
	area := shape[0] * shape[1]
	return tensor.NewFromData(
		append([]float64(nil), x.Data()[t0*area:t1*area]...),
		shape[0], shape[1], t1-t0)
}
