// Adaptive rank: let the library pick per-mode Tucker ranks from the data.
// The tensor is compressed once; rank selection then reads only the
// compressed spectra, so exploring different accuracy targets is nearly
// free. Demonstrates core.DecomposeAdaptive / Approximation.RanksForEnergy.
//
// Run with: go run ./examples/adaptiverank
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A tensor whose true multilinear ranks differ per mode: 6 latent
	// spatial patterns but an 8-factor temporal structure would be wrong —
	// use the controlled generator so the answer is known.
	ds := workload.LowRankNoise([]int{180, 140, 220}, 6, 0.08, 13)
	x := ds.X
	fmt.Printf("input: %s, true multilinear rank 6 per mode + 8%% noise\n", ds.Dims())

	for _, eps := range []float64{0.60, 0.30, 0.09} {
		t0 := time.Now()
		dec, ranks, err := core.DecomposeAdaptive(x, eps, 20, core.Options{Config: core.Config{Seed: 1}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntarget rel.error ≤ %.2f → chose ranks %v in %v\n",
			eps, ranks, time.Since(t0).Round(time.Millisecond))
		fmt.Printf("  achieved rel.error %.4f, model %.1f kF, %d sweeps\n",
			dec.RelError(x), float64(dec.StorageFloats())/1e3, dec.Stats.Iters)
	}

	fmt.Println("\nnote: the selector meets every requested bound; near the 8% noise floor it")
	fmt.Println("lands exactly on the true rank (6,6,6).")
}
