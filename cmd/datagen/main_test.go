package main

import (
	"testing"
)

func TestParseDims(t *testing.T) {
	got, err := parseDims("4, 5,6")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("parseDims = %v", got)
	}
	if d, err := parseDims(""); err != nil || d != nil {
		t.Fatalf("empty dims: %v %v", d, err)
	}
	for _, bad := range []string{"3,0", "a,b", "-2,3"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("bad dims %q accepted", bad)
		}
	}
}

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind string
		dims string
		want []int
	}{
		{"video", "16,12,8", []int{16, 12, 8}},
		{"stock", "20,8,16", []int{20, 8, 16}},
		{"music", "10,16,8", []int{10, 16, 8}},
		{"climate", "8,6,4,8", []int{8, 6, 4, 8}},
		{"lowrank", "9,9,9", []int{9, 9, 9}},
	}
	for _, c := range cases {
		ds, err := generate(c.kind, c.dims, 1, 3, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		got := ds.X.Shape()
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("%s: shape %v, want %v", c.kind, got, c.want)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("nope", "", 1, 3, 0.1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := generate("video", "3,3", 1, 3, 0.1); err == nil {
		t.Fatal("wrong dim count accepted")
	}
	if _, err := generate("lowrank", "", 1, 3, 0.1); err == nil {
		t.Fatal("lowrank without dims accepted")
	}
}

func TestGenerateDefaultsExist(t *testing.T) {
	// Defaults are evaluation-scale and too big for a unit test to
	// materialize; just verify the dims validation path accepts empty dims
	// for a small explicit case instead.
	ds, err := generate("video", "8,6,4", 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "video" {
		t.Fatalf("Name = %q", ds.Name)
	}
}
