// Command datagen writes the synthetic workload tensors to .ten files so
// they can be fed to the dtucker binary or external tools.
//
// Usage:
//
//	datagen -kind video  -out video.ten  [-dims 192,144,256] [-seed 11]
//	datagen -kind stock  -out stock.ten  [-dims 400,40,512]
//	datagen -kind music  -out music.ten  [-dims 512,256,64]
//	datagen -kind climate -out climate.ten [-dims 72,48,12,96]
//	datagen -kind lowrank -out lr.ten -dims 128,128,128 [-rank 10] [-noise 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/workload"
)

func main() {
	var (
		kind    = flag.String("kind", "", "video | stock | music | climate | lowrank (required)")
		out     = flag.String("out", "", "output .ten path (required)")
		dimsArg = flag.String("dims", "", "comma-separated dimensions (defaults per kind)")
		seed    = flag.Int64("seed", 11, "generator seed")
		rank    = flag.Int("rank", 10, "rank for -kind lowrank")
		noise   = flag.Float64("noise", 0.1, "relative noise for -kind lowrank")
	)
	flag.Parse()
	if *kind == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := generate(*kind, *dimsArg, *seed, *rank, *noise)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := ds.X.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %s — %s (%.2f MF)\n", *out, ds.Dims(), ds.Description, float64(ds.X.Len())/1e6)
}

func generate(kind, dimsArg string, seed int64, rank int, noise float64) (workload.Dataset, error) {
	dims, err := parseDims(dimsArg)
	if err != nil {
		return workload.Dataset{}, err
	}
	need := func(n int, def []int) ([]int, error) {
		if dims == nil {
			return def, nil
		}
		if len(dims) != n {
			return nil, fmt.Errorf("kind %s needs %d dims, got %v", kind, n, dims)
		}
		return dims, nil
	}
	switch kind {
	case "video":
		d, err := need(3, []int{192, 144, 256})
		if err != nil {
			return workload.Dataset{}, err
		}
		return workload.VideoLike(d[0], d[1], d[2], seed), nil
	case "stock":
		d, err := need(3, []int{400, 40, 512})
		if err != nil {
			return workload.Dataset{}, err
		}
		return workload.StockLike(d[0], d[1], d[2], seed), nil
	case "music":
		d, err := need(3, []int{512, 256, 64})
		if err != nil {
			return workload.Dataset{}, err
		}
		return workload.MusicLike(d[0], d[1], d[2], seed), nil
	case "climate":
		d, err := need(4, []int{72, 48, 12, 96})
		if err != nil {
			return workload.Dataset{}, err
		}
		return workload.ClimateLike(d[0], d[1], d[2], d[3], seed), nil
	case "lowrank":
		if dims == nil {
			return workload.Dataset{}, fmt.Errorf("kind lowrank requires -dims")
		}
		return workload.LowRankNoise(dims, rank, noise, seed), nil
	default:
		return workload.Dataset{}, fmt.Errorf("unknown kind %q", kind)
	}
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}
