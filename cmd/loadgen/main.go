// Command loadgen drives an open-loop mixed workload against a dtuckerd
// daemon and writes a schema-versioned load report (LOAD_<UTC-date>.json)
// with goodput, shed rate, and exact end-to-end latency quantiles, overall
// and broken down by operation and tenant. cmd/benchreport -compare diffs
// two load reports the same way it diffs benchmark trajectories.
//
// Drive a running daemon:
//
//	loadgen -url http://127.0.0.1:7171 -duration 30s -qps 12 \
//	        -mix decompose=0.6,range=0.3,append=0.1 -tenants prod=3,adhoc=1
//
// Or measure hermetically against an in-process daemon (-self), the form
// `make load` uses:
//
//	loadgen -self -self-runners 2 -self-queue 16 -duration 10s -qps 8
//
// Exit codes: 0 success, 1 runtime error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url      = flag.String("url", "http://127.0.0.1:7171", "dtuckerd base URL")
		duration = flag.Duration("duration", 10*time.Second, "arrival window")
		qps      = flag.Float64("qps", 8, "target offered arrival rate")
		arrival  = flag.String("arrival", "poisson", "inter-arrival distribution: poisson or uniform")
		seed     = flag.Int64("seed", 1, "schedule seed (same seed = identical offered sequence)")
		mixArg   = flag.String("mix", "", "operation mix, e.g. decompose=0.6,range=0.3,append=0.1")
		tenArg   = flag.String("tenants", "", "offered tenants as name=weight[:priority],... (e.g. prod=3:interactive,adhoc=1)")
		variants = flag.Int("variants", 3, "distinct tensors per size class (smaller = more duplicates)")
		inflight = flag.Int("max-inflight", 256, "client-side cap on outstanding operations")
		out      = flag.String("out", "", "report path (default LOAD_<UTC-date>.json)")
		quiet    = flag.Bool("quiet", false, "suppress progress lines")

		rangeChunks  = flag.Int("range-chunks", 0, "chunks in the frozen range-query stream (0 = default 3); longer streams let the server's range index stitch")
		rangeWindows = flag.Int("range-windows", 0, "distinct overlapping range windows to draw (0 = the legacy fixed four)")

		self           = flag.Bool("self", false, "spin up an in-process dtuckerd and load it (hermetic)")
		selfQueue      = flag.Int("self-queue", 16, "with -self: job queue depth")
		selfRunners    = flag.Int("self-runners", 2, "with -self: concurrent job runners")
		selfWorkers    = flag.Int("self-workers", 0, "with -self: worker-pool size (0 = all CPUs)")
		selfQuota      = flag.Int("self-quota", 0, "with -self: per-tenant outstanding quota (0 = unlimited)")
		selfWeights    = flag.String("self-weights", "", "with -self: server WFQ weights, name=weight,...")
		selfRangeIndex = flag.Bool("self-range-index", true, "with -self: maintain per-stream range indexes (false measures the exact-range-cache baseline)")
		selfRangeBlock = flag.Int("self-range-block", 0, "with -self: range-index block size in time steps (0 = default 8)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "loadgen: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	spec := loadgen.Spec{
		BaseURL:      *url,
		Duration:     *duration,
		QPS:          *qps,
		Arrival:      *arrival,
		Seed:         *seed,
		Variants:     *variants,
		MaxInFlight:  *inflight,
		RangeChunks:  *rangeChunks,
		RangeWindows: *rangeWindows,
		Logf:         logf,
	}
	var err error
	if spec.Mix, err = parseMix(*mixArg); err != nil {
		logger.Printf("-mix: %v", err)
		return 2
	}
	if spec.Tenants, err = parseTenants(*tenArg); err != nil {
		logger.Printf("-tenants: %v", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *self {
		weights, err := parseWeights(*selfWeights)
		if err != nil {
			logger.Printf("-self-weights: %v", err)
			return 2
		}
		srv, err := server.New(server.Config{
			QueueDepth:        *selfQueue,
			Runners:           *selfRunners,
			Workers:           *selfWorkers,
			TenantQuota:       *selfQuota,
			TenantWeights:     weights,
			DisableRangeIndex: !*selfRangeIndex,
			RangeBlockSize:    *selfRangeBlock,
		})
		if err != nil {
			logger.Printf("server: %v", err)
			return 1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			logger.Printf("listen: %v", err)
			return 1
		}
		// The self-served daemon gets the same server-side timeouts as the
		// real binary, so hermetic load runs exercise the production config.
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       2 * time.Minute,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go hs.Serve(ln)
		defer func() {
			drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Drain(drainCtx)
			hs.Close()
		}()
		spec.BaseURL = "http://" + ln.Addr().String()
		logf("self-serving on %s (queue %d, runners %d, quota %d)",
			spec.BaseURL, *selfQueue, *selfRunners, *selfQuota)
	}

	rep, err := loadgen.Run(ctx, spec)
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}

	path := *out
	if path == "" {
		path = "LOAD_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	if err := loadgen.Save(path, *rep); err != nil {
		logger.Printf("%v", err)
		return 1
	}
	fmt.Printf("wrote %s: offered %d, goodput %.2f qps, shed %.1f%%, p50 %.0fms p95 %.0fms p99 %.0fms\n",
		path, rep.Totals.Offered, rep.GoodputQPS, rep.ShedRate*100,
		rep.Totals.Latency.P50Ms, rep.Totals.Latency.P95Ms, rep.Totals.Latency.P99Ms)
	// The slowest request IDs bridge a bad quantile to the daemon's
	// structured log: grep the event log (or /debugz/requests) for them.
	for _, ex := range rep.Totals.Slowest {
		fmt.Printf("slowest: %s %.0fms\n", ex.RequestID, ex.LatencyMs)
	}
	return 0
}

// parseMix parses "decompose=0.6,range=0.3" into an operation-weight map;
// empty input means the loadgen default mix.
func parseMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not op=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("entry %q needs a non-negative weight", part)
		}
		mix[name] = w
	}
	return mix, nil
}

// parseTenants parses "prod=3:interactive,adhoc=1" into tenant specs;
// empty input means the loadgen default single tenant.
func parseTenants(s string) ([]loadgen.TenantSpec, error) {
	if s == "" {
		return nil, nil
	}
	var tenants []loadgen.TenantSpec
	for _, part := range strings.Split(s, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not name=weight[:priority]", part)
		}
		val, prio, _ := strings.Cut(rest, ":")
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("entry %q needs a positive weight", part)
		}
		if prio != "" && prio != "interactive" && prio != "batch" {
			return nil, fmt.Errorf("entry %q has unknown priority %q", part, prio)
		}
		tenants = append(tenants, loadgen.TenantSpec{Name: name, Weight: w, Priority: prio})
	}
	return tenants, nil
}

// parseWeights parses "a=4,b=1" into the server's integer WFQ weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("entry %q needs a positive integer weight", part)
		}
		weights[name] = w
	}
	return weights, nil
}
