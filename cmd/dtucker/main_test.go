package main

import (
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestParseRanks(t *testing.T) {
	got, err := parseRanks("10, 8,6")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 8 || got[2] != 6 {
		t.Fatalf("parseRanks = %v", got)
	}
	if _, err := parseRanks("3,x,2"); err == nil {
		t.Fatal("bad rank accepted")
	}
}

// TestEndToEnd builds the binary and decomposes a real .ten file — the
// workflow a downstream user runs.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := dir + "/dtucker"
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 12, 10, 8)
	in := dir + "/x.ten"
	if err := x.SaveFile(in); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-exact-error", "-out", dir+"/model").CombinedOutput()
	if err != nil {
		t.Fatalf("running: %v\n%s", err, out)
	}
	for _, want := range []string{"d-tucker:", "fit estimate", "exact relative error", "wrote"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The written core must load back with the requested shape.
	core, err := tensor.LoadFile(dir + "/model.core.ten")
	if err != nil {
		t.Fatal(err)
	}
	if s := core.Shape(); s[0] != 3 || s[1] != 3 || s[2] != 3 {
		t.Fatalf("core shape %v", s)
	}
	f0, err := tensor.LoadFile(dir + "/model.factor0.ten")
	if err != nil {
		t.Fatal(err)
	}
	if s := f0.Shape(); s[0] != 12 || s[1] != 3 {
		t.Fatalf("factor0 shape %v", s)
	}

	// Baseline path through the same binary.
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-method", "hosvd").CombinedOutput()
	if err != nil {
		t.Fatalf("baseline run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hosvd:") {
		t.Fatalf("baseline output:\n%s", out)
	}

	// A timed-out run must exit with the distinct interrupted code (3) and
	// name the phase it was in. 1ns expires before the first slice, so the
	// approximation phase is always the one reported.
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-timeout", "1ns").CombinedOutput()
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) {
		t.Fatalf("timed-out run: err = %v (want exit error)\n%s", err, out)
	}
	if code := xerr.ExitCode(); code != 3 {
		t.Fatalf("timed-out run exit code %d, want 3\n%s", code, out)
	}
	if !strings.Contains(string(out), "interrupted during approximation phase") {
		t.Fatalf("timed-out output missing phase report:\n%s", out)
	}
}
