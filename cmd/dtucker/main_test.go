package main

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestParseRanks(t *testing.T) {
	got, err := parseRanks("10, 8,6")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 8 || got[2] != 6 {
		t.Fatalf("parseRanks = %v", got)
	}
	if _, err := parseRanks("3,x,2"); err == nil {
		t.Fatal("bad rank accepted")
	}
}

// TestEndToEnd builds the binary and decomposes a real .ten file — the
// workflow a downstream user runs.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := dir + "/dtucker"
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 12, 10, 8)
	in := dir + "/x.ten"
	if err := x.SaveFile(in); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-exact-error", "-out", dir+"/model").CombinedOutput()
	if err != nil {
		t.Fatalf("running: %v\n%s", err, out)
	}
	for _, want := range []string{"d-tucker:", "fit estimate", "exact relative error", "wrote"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The written core must load back with the requested shape.
	core, err := tensor.LoadFile(dir + "/model.core.ten")
	if err != nil {
		t.Fatal(err)
	}
	if s := core.Shape(); s[0] != 3 || s[1] != 3 || s[2] != 3 {
		t.Fatalf("core shape %v", s)
	}
	f0, err := tensor.LoadFile(dir + "/model.factor0.ten")
	if err != nil {
		t.Fatal(err)
	}
	if s := f0.Shape(); s[0] != 12 || s[1] != 3 {
		t.Fatalf("factor0 shape %v", s)
	}

	// Baseline path through the same binary.
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-method", "hosvd").CombinedOutput()
	if err != nil {
		t.Fatalf("baseline run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hosvd:") {
		t.Fatalf("baseline output:\n%s", out)
	}

	// A timed-out run must exit with the distinct interrupted code (3) and
	// name the phase it was in. 1ns expires before the first slice, so the
	// approximation phase is always the one reported.
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-timeout", "1ns").CombinedOutput()
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) {
		t.Fatalf("timed-out run: err = %v (want exit error)\n%s", err, out)
	}
	if code := xerr.ExitCode(); code != 3 {
		t.Fatalf("timed-out run exit code %d, want 3\n%s", code, out)
	}
	if !strings.Contains(string(out), "interrupted during approximation phase") {
		t.Fatalf("timed-out output missing phase report:\n%s", out)
	}
}

// TestTraceOutFlag builds the binary and exercises -trace-out end to end:
// both encodings produce a well-formed file, the stderr progress stream
// carries exactly one timestamp prefix per line, and an unwritable
// destination or unknown format fails before the decomposition starts.
func TestTraceOutFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := dir + "/dtucker"
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 12, 10, 8)
	in := dir + "/x.ten"
	if err := x.SaveFile(in); err != nil {
		t.Fatal(err)
	}

	// Chrome encoding (the default): one JSON document Perfetto can load,
	// with complete events and named lanes.
	chromePath := dir + "/spans.json"
	out, err := exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-workers", "2", "-trace-out", chromePath).CombinedOutput()
	if err != nil {
		t.Fatalf("chrome trace run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrote span trace") {
		t.Fatalf("no span-trace confirmation:\n%s", out)
	}
	data, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if complete == 0 || meta == 0 {
		t.Fatalf("chrome trace has %d complete and %d metadata events:\n%s", complete, meta, data)
	}

	// JSONL encoding: one span object per line, including the root.
	jsonlPath := dir + "/spans.jsonl"
	if out, err := exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-trace-out", jsonlPath, "-trace-format", "jsonl").CombinedOutput(); err != nil {
		t.Fatalf("jsonl trace run: %v\n%s", err, out)
	}
	data, err = os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	sawRoot := false
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var span struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if span.Name == "decompose" {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Fatalf("no root decompose span in JSONL output:\n%s", data)
	}

	// The -trace stderr stream: every progress line carries exactly one
	// monotonic timestamp prefix (the collector's), never a doubled one.
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-trace").CombinedOutput()
	if err != nil {
		t.Fatalf("-trace run: %v\n%s", err, out)
	}
	stamp := regexp.MustCompile(`^\[ *\d+\.\d{6}s\] [^\[]`)
	stamped := 0
	for _, line := range strings.Split(string(out), "\n") {
		if !strings.HasPrefix(line, "[") {
			continue
		}
		if !stamp.MatchString(line) {
			t.Fatalf("progress line %q lacks a single timestamp prefix", line)
		}
		stamped++
	}
	if stamped == 0 {
		t.Fatalf("-trace produced no timestamped progress lines:\n%s", out)
	}

	// Failure modes: unwritable destination and unknown format must exit
	// non-zero with a clear message, before any decomposition output.
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-trace-out", dir+"/no/such/dir/spans.json").CombinedOutput()
	if err == nil {
		t.Fatalf("unwritable -trace-out accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "creating span trace file") {
		t.Fatalf("unwritable -trace-out error unclear:\n%s", out)
	}
	out, err = exec.Command(bin, "-in", in, "-ranks", "3,3,3", "-trace-out", dir+"/s.json", "-trace-format", "xml").CombinedOutput()
	var xerr2 *exec.ExitError
	if !errors.As(err, &xerr2) || xerr2.ExitCode() != 2 {
		t.Fatalf("unknown -trace-format: err = %v, want usage exit 2\n%s", err, out)
	}
}
