// Command dtucker decomposes a dense tensor stored in .ten format with
// D-Tucker and reports timing, fit, and (optionally) the exact
// reconstruction error; factor matrices and the core can be written out as
// .ten files for downstream analysis.
//
// Usage:
//
//	dtucker -in x.ten -ranks 10,10,10 [-out prefix] [-tol 1e-4]
//	        [-maxiters 100] [-slicerank 0] [-workers 1]
//	        [-seed 0] [-exact-error] [-timeout 0]
//	        [-kernel randsvd|exact|gram|auto] [-kernel-profile profile.json]
//	        [-metrics] [-metrics-json file] [-trace] [-debug-addr host:port]
//	        [-trace-out spans.json] [-trace-format chrome|jsonl]
//	        [-method d-tucker|tucker-als|hosvd|mach|rtd|tucker-ts|tucker-ttmts]
//	dtucker -autotune profile.json [-autotune-quick]
//
// With -method other than d-tucker the same tensor is decomposed by the
// selected baseline, making the binary a one-stop comparison tool.
//
// Kernel selection: -kernel picks the slice-compression kernel of the
// approximation phase; "auto" chooses per slice from the cost model in the
// -kernel-profile file (or built-in defaults). -autotune calibrates that
// cost model and the blocked-matmul tile sizes on this machine with a
// one-time micro-benchmark and writes the versioned profile JSON; selection
// at decompose time is a pure function of shape, rank, and profile, so
// results stay deterministic. See the README's "Kernel selection" section.
//
// Cancellation: Ctrl-C (SIGINT), SIGTERM, or an expired -timeout stop a
// d-tucker run cooperatively at the next slice or sweep boundary, with all
// worker goroutines joined. An interrupted run prints the phase it was in
// and exits with code 3 (0 success, 1 error, 2 usage). Baseline methods have
// no cancellation hooks and run to completion.
//
// Observability: -metrics prints a per-phase table (wall time, SVD/QR/matmul
// counts, flop estimate, latency quantiles, allocation); -metrics-json dumps
// the same report plus the fit trajectory as JSON; -trace streams phase
// transitions and per-sweep fits to stderr as they happen; -trace-out records
// a hierarchical span trace of the whole run (decompose → phases → sweeps →
// per-slice worker spans) as a Perfetto-loadable Chrome trace or JSONL;
// -debug-addr serves live net/http/pprof profiles and expvar counters for
// long runs. See the README's "Observability" section.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dterr"
	"repro/internal/kernelsel"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// exitInterrupted is the exit code of a run stopped by SIGINT/SIGTERM or
// -timeout, distinct from usage errors (2) and other failures (1).
const exitInterrupted = 3

func main() {
	var (
		in         = flag.String("in", "", "input tensor in .ten format (required)")
		ranksArg   = flag.String("ranks", "", "comma-separated target ranks, one per mode (required)")
		out        = flag.String("out", "", "output prefix; writes <prefix>.core.ten and <prefix>.factor<n>.ten")
		tol        = flag.Float64("tol", 1e-4, "convergence tolerance on fit change")
		maxIters   = flag.Int("maxiters", 100, "maximum ALS sweeps")
		sliceRank  = flag.Int("slicerank", 0, "slice SVD rank (0 = max of the two leading ranks)")
		workers    = flag.Int("workers", 1, "size of the per-decomposition worker pool (parallelizes all three phases; results are bit-identical for any value)")
		matWorkers = flag.Int("mat-workers", 0, "deprecated alias for -workers; for baseline methods it sizes the process-default kernel pool")
		seed       = flag.Int64("seed", 0, "random seed for the sketches")
		exactError = flag.Bool("exact-error", false, "also compute the exact relative error (extra pass over the tensor)")
		timeout    = flag.Duration("timeout", 0, "abort the decomposition after this duration (0 = no limit); exits with code 3 like Ctrl-C")
		method     = flag.String("method", bench.DTucker, "method: "+strings.Join(bench.Methods, ", "))

		kernel        = flag.String("kernel", "", "slice-compression kernel: randsvd (default), exact, gram, or auto (per-slice cost-model selection)")
		kernelProfile = flag.String("kernel-profile", "", "calibrated kernelsel profile JSON (from -autotune); drives -kernel auto and the matmul block sizes")
		autotune      = flag.String("autotune", "", "calibrate the kernel cost model and matmul block sizes, write the profile JSON to this path, and exit")
		autotuneQuick = flag.Bool("autotune-quick", false, "with -autotune: calibrate on toy sizes (fast smoke profile, not representative)")

		showMetrics = flag.Bool("metrics", false, "print a per-phase metrics table (wall time, SVD/flop counts, allocation)")
		metricsJSON = flag.String("metrics-json", "", "write the metrics report (phases + fit trajectory) as JSON to this file (\"-\" for stdout)")
		traceFlag   = flag.Bool("trace", false, "stream progress (phase transitions, per-sweep fits) to stderr")
		traceOut    = flag.String("trace-out", "", "write a span trace of the run (phases, sweeps, per-slice worker lanes) to this file")
		traceFormat = flag.String("trace-format", "chrome", "span trace encoding: chrome (Perfetto / chrome://tracing) or jsonl (one span per line)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060) for live profiling")
	)
	flag.Parse()
	if *autotune != "" {
		p, err := kernelsel.Calibrate(kernelsel.CalibrateOptions{
			Quick: *autotuneQuick,
			Logf:  func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			fatal(err)
		}
		if err := kernelsel.Save(*autotune, p); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote kernel profile %s (fingerprint %s, blocks %d×%d)\n",
			*autotune, p.Fingerprint(), p.BlockK, p.BlockN)
		return
	}
	if *in == "" || *ranksArg == "" {
		flag.Usage()
		os.Exit(2)
	}
	var profile *kernelsel.Profile
	if *kernelProfile != "" {
		var err error
		profile, err = kernelsel.Load(*kernelProfile)
		if err != nil {
			fatal(err)
		}
		profile.Apply() // install the autotuned matmul block sizes
	}
	ranks, err := parseRanks(*ranksArg)
	if err != nil {
		fatal(err)
	}
	if *matWorkers > 0 {
		fmt.Fprintln(os.Stderr, "dtucker: -mat-workers is deprecated; use -workers (parallelism is per-decomposition now)")
		if *method == bench.DTucker {
			// Route through the decomposition's own pool instead of
			// mutating process-global state.
			if *workers <= 1 {
				*workers = *matWorkers
			}
		} else {
			// Baselines have no pool-aware entry points; they still read
			// the process-default kernel pool.
			mat.SetWorkers(*matWorkers)
		}
	}
	if *debugAddr != "" {
		startDebugServer(*debugAddr)
	}
	var col *metrics.Collector
	if *showMetrics || *metricsJSON != "" || *traceFlag || *traceOut != "" || *debugAddr != "" {
		col = metrics.New()
	}
	if *traceFlag {
		// The collector stamps each message with a monotonic timestamp
		// before it reaches the sink; print it as-is.
		col.SetTrace(func(msg string) {
			fmt.Fprintln(os.Stderr, msg)
		})
	}
	// Fail fast on an unwritable span-trace destination: create the file
	// before spending minutes decomposing.
	var (
		traceFile *os.File
		traceFmt  trace.Format
	)
	if *traceOut != "" {
		traceFmt, err = trace.ParseFormat(*traceFormat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtucker:", err)
			os.Exit(2)
		}
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatal(fmt.Errorf("creating span trace file: %w", err))
		}
		col.SetTracer(trace.New())
	}

	x, err := tensor.LoadFile(*in)
	if err != nil {
		fatal(err)
	}
	if len(ranks) != x.Order() {
		fatal(fmt.Errorf("%d ranks for an order-%d tensor", len(ranks), x.Order()))
	}
	fmt.Printf("loaded %s: shape %v (%.2f MF)\n", *in, x.Shape(), float64(x.Len())/1e6)

	// Ctrl-C / SIGTERM (and -timeout, when set) cancel the decomposition
	// cooperatively through Options.Context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var runErr error
	if *method != bench.DTucker {
		if traceFile != nil {
			fmt.Fprintln(os.Stderr, "dtucker: note: -trace-out records d-tucker spans only; baseline methods are not traced")
		}
		runBaseline(x, *method, ranks, *tol, *maxIters, *seed, col != nil)
	} else {
		runErr = runDTucker(ctx, x, ranks, col, *sliceRank, *tol, *maxIters, *workers, *seed, *kernel, profile, *exactError, *out)
	}

	// Export the span trace even when the run failed or was interrupted —
	// a trace of the unwind is exactly what a post-mortem needs.
	if traceFile != nil {
		if err := exportTrace(col, traceFmt, traceFile, *traceOut); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		fatal(runErr)
	}

	// The per-phase breakdown only exists for D-Tucker itself; baselines
	// report their aggregate kernel counters on the line printed above.
	if *method == bench.DTucker {
		if *showMetrics {
			fmt.Printf("\nper-phase metrics:\n%s", col.Table())
		}
		if *metricsJSON != "" {
			if err := writeMetricsJSON(col, *metricsJSON); err != nil {
				fatal(err)
			}
		}
	} else if *showMetrics || *metricsJSON != "" {
		fmt.Fprintln(os.Stderr, "dtucker: note: per-phase table/JSON applies to -method d-tucker only; kernel totals are shown above")
	}
}

func runDTucker(ctx context.Context, x *tensor.Dense, ranks []int, col *metrics.Collector, sliceRank int, tol float64, maxIters, workers int, seed int64, kernel string, profile *kernelsel.Profile, exactError bool, out string) error {
	dec, err := core.Decompose(x, core.Options{
		Config: core.Config{
			Ranks:       ranks,
			SliceRank:   sliceRank,
			Tol:         tol,
			MaxIters:    maxIters,
			Seed:        seed,
			SliceKernel: kernel,
		},
		Context: ctx,
		Workers: workers,
		Metrics: col,
		Profile: profile,
	})
	if err != nil {
		return err
	}
	s := dec.Stats
	conv := "converged"
	if !dec.Converged {
		conv = "tolerance NOT reached"
	}
	fmt.Printf("d-tucker: approximation %v, initialization %v, iteration %v (%d sweeps, %s), total %v\n",
		s.ApproxTime.Round(time.Millisecond), s.InitTime.Round(time.Millisecond),
		s.IterTime.Round(time.Millisecond), s.Iters, conv, s.Total().Round(time.Millisecond))
	fmt.Printf("fit estimate %.6f, model size %.1f kF\n", dec.Fit, float64(dec.StorageFloats())/1e3)
	if exactError {
		fmt.Printf("exact relative error %.6f\n", dec.RelError(x))
	}
	if out != "" {
		if err := saveModel(dec, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s.core.ten and %d factor files\n", out, len(dec.Factors))
	}
	return nil
}

// exportTrace writes the collector's recorded spans to the already-open
// destination file and closes it.
func exportTrace(col *metrics.Collector, f trace.Format, file *os.File, path string) error {
	tr := col.Tracer()
	if err := tr.Export(file, f); err != nil {
		file.Close()
		return fmt.Errorf("writing span trace: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("writing span trace: %w", err)
	}
	fmt.Printf("wrote span trace (%d spans, %s) to %s\n", tr.Len(), f, path)
	return nil
}

func runBaseline(x *tensor.Dense, method string, ranks []int, tol float64, maxIters int, seed int64, collect bool) {
	spec := bench.Spec{
		Dataset:  workload.Dataset{Name: "input", X: x},
		Ranks:    ranks,
		Seed:     seed,
		Tol:      tol,
		MaxIters: maxIters,
		Metrics:  collect,
	}
	r, err := bench.Run(method, spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: prep %v, solve %v, total %v, rel.err %.6f, %d iters\n",
		r.Method, r.Prep.Round(time.Millisecond), r.Solve.Round(time.Millisecond),
		r.Total().Round(time.Millisecond), r.RelErr, r.Iters)
	if collect {
		fmt.Printf("%s kernels: %d SVD, %d randomized SVD, %d QR, %.3g flops\n",
			r.Method, r.SVDCalls, r.RandSVDCalls, r.QRCalls, float64(r.Flops))
	}
}

// startDebugServer exposes /debug/pprof/ (imported net/http/pprof handlers)
// and /debug/vars (expvar, including the live dtucker_metrics counters) on
// addr for profiling long-running decompositions.
func startDebugServer(addr string) {
	metrics.PublishExpvar()
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "dtucker: debug server: %v\n", err)
		}
	}()
	fmt.Printf("debug server on http://%s (/debug/pprof/, /debug/vars)\n", addr)
}

// writeMetricsJSON dumps the collector's report as indented JSON to path
// ("-" writes to stdout).
func writeMetricsJSON(col *metrics.Collector, path string) error {
	b, err := json.MarshalIndent(col.Report(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote metrics report to %s\n", path)
	return nil
}

func saveModel(dec *core.Decomposition, prefix string) error {
	if err := dec.Core.SaveFile(prefix + ".core.ten"); err != nil {
		return err
	}
	for n, f := range dec.Factors {
		ft := tensor.New(f.Rows(), f.Cols())
		for i := 0; i < f.Rows(); i++ {
			for j := 0; j < f.Cols(); j++ {
				ft.Set(f.At(i, j), i, j)
			}
		}
		if err := ft.SaveFile(fmt.Sprintf("%s.factor%d.ten", prefix, n)); err != nil {
			return err
		}
	}
	return nil
}

func parseRanks(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ranks := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing rank %q: %w", p, err)
		}
		ranks[i] = v
	}
	return ranks, nil
}

func fatal(err error) {
	var c *dterr.CancelledError
	if errors.As(err, &c) {
		fmt.Fprintf(os.Stderr, "dtucker: interrupted during %s phase: %v\n", c.Phase, c.Err)
		os.Exit(exitInterrupted)
	}
	fmt.Fprintf(os.Stderr, "dtucker: %v\n", err)
	os.Exit(1)
}
