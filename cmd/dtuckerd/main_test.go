package main

import (
	"bufio"
	"context"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/tensor"
)

// TestDaemonEndToEnd builds the real binary, serves a decomposition over
// HTTP, verifies it is bit-identical to the in-process result, then sends
// SIGTERM and requires a graceful drain with exit status 0.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := dir + "/dtuckerd"
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-quiet", "-drain-timeout", "2s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// If the test dies early, don't leave the daemon behind.
	defer cmd.Process.Kill()

	// The ready line carries the resolved address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon exited before its ready line (%v)", sc.Err())
	}
	line := sc.Text()
	const prefix = "dtuckerd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected ready line %q", line)
	}
	addr := strings.TrimPrefix(line, prefix)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := repro.NewClient("http://" + addr)
	cl.PollInterval = 5 * time.Millisecond

	if h, err := cl.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}

	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 14, 12, 10)
	cfg := repro.Config{Ranks: []int{4, 4, 4}, Seed: 11}

	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Decompose(ctx, x, cfg, nil)
	if err != nil {
		t.Fatalf("served decomposition: %v", err)
	}
	if want.Fit != got.Fit {
		t.Fatalf("served fit %v differs from in-process %v", got.Fit, want.Fit)
	}
	for n := range want.Factors {
		wf, gf := want.Factors[n].Data(), got.Factors[n].Data()
		for i := range wf {
			if wf[i] != gf[i] {
				t.Fatalf("factor %d element %d differs", n, i)
			}
		}
	}

	// Resubmission must be answered from the cache.
	receipt, err := cl.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.CacheHit {
		t.Fatal("daemon resubmission missed the cache")
	}

	// Leave a job in flight: a sub-normal tolerance with unbounded sweeps
	// never converges on its own, so the drain deadline must cancel it.
	slow, err := cl.Submit(ctx, tensor.RandN(rng, 44, 40, 36),
		repro.Config{Ranks: []int{8, 8, 8}, Tol: 1e-300, MaxIters: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := cl.Job(ctx, slow.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "running" {
			break
		}
		if st.State != "queued" {
			t.Fatalf("slow job reached %q before SIGTERM", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM during the in-flight job → graceful drain (cancelling it at
	// the -drain-timeout deadline) → exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
}
