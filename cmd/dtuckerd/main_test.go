package main

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/tensor"
)

// buildDaemon compiles the real binary into a temp dir and returns its path.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := t.TempDir() + "/dtuckerd"
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary with the given extra env and args, waits
// for its ready line, and returns the process plus its resolved address.
func startDaemon(t *testing.T, bin string, extraEnv []string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	cmd.Env = append(os.Environ(), extraEnv...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("daemon exited before its ready line (%v)", sc.Err())
	}
	line := sc.Text()
	const prefix = "dtuckerd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected ready line %q", line)
	}
	return cmd, strings.TrimPrefix(line, prefix)
}

// waitExit waits for the process to exit and returns its exit code, failing
// the test if it does not exit within the deadline.
func waitExit(t *testing.T, cmd *exec.Cmd, within time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("waiting for daemon: %v", err)
	case <-time.After(within):
		t.Fatalf("daemon did not exit within %v", within)
	}
	return -1
}

// TestDaemonEndToEnd builds the real binary, serves a decomposition over
// HTTP, verifies it is bit-identical to the in-process result, then sends
// SIGTERM and requires a graceful drain with exit status 0.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	bin := buildDaemon(t)
	cmd, addr := startDaemon(t, bin, nil, "-drain-timeout", "2s")

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := repro.NewClient("http://" + addr)
	cl.PollInterval = 5 * time.Millisecond

	if h, err := cl.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("health = %+v, %v", h, err)
	}

	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 14, 12, 10)
	cfg := repro.Config{Ranks: []int{4, 4, 4}, Seed: 11}

	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Decompose(ctx, x, cfg, nil)
	if err != nil {
		t.Fatalf("served decomposition: %v", err)
	}
	if want.Fit != got.Fit {
		t.Fatalf("served fit %v differs from in-process %v", got.Fit, want.Fit)
	}
	for n := range want.Factors {
		wf, gf := want.Factors[n].Data(), got.Factors[n].Data()
		for i := range wf {
			if wf[i] != gf[i] {
				t.Fatalf("factor %d element %d differs", n, i)
			}
		}
	}

	// Resubmission must be answered from the cache.
	receipt, err := cl.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.CacheHit {
		t.Fatal("daemon resubmission missed the cache")
	}

	// Leave a job in flight: a sub-normal tolerance with unbounded sweeps
	// never converges on its own, so the drain deadline must cancel it.
	slow, err := cl.Submit(ctx, tensor.RandN(rng, 44, 40, 36),
		repro.Config{Ranks: []int{8, 8, 8}, Tol: 1e-300, MaxIters: 1 << 30}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := cl.Job(ctx, slow.JobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "running" {
			break
		}
		if st.State != "queued" {
			t.Fatalf("slow job reached %q before SIGTERM", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// SIGTERM during the in-flight job → graceful drain (cancelling it at
	// the -drain-timeout deadline) → exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, cmd, 30*time.Second); code != 0 {
		t.Fatalf("daemon exited %d after SIGTERM, want 0", code)
	}
}

// TestDaemonCrashRecovery proves the whole durability story end to end with
// a real process death: the daemon is armed (via DTUCKERD_FAULTS) to
// os.Exit(7) at the sweep-3 journal append of an accepted job, a fresh
// daemon is started over the same -data-dir, and the interrupted job must
// finish — resuming from its last checkpoint — with a result bit-identical
// to an uninterrupted in-process run.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	rng := rand.New(rand.NewSource(9))
	x := tensor.RandN(rng, 14, 12, 10)
	cfg := repro.Config{Ranks: []int{4, 3, 3}, Seed: 17, Tol: 1e-300, MaxIters: 5}
	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}

	// Per-job append order: accepted(1), started(2), sweep k(k+2). skip=4
	// arms the crash for hit 5 — the sweep-3 record — after the sweep-3
	// checkpoint has already been spilled.
	cmd1, addr1 := startDaemon(t, bin,
		[]string{"DTUCKERD_FAULTS=journal.append:skip=4,mode=exit"},
		"-data-dir", dataDir, "-checkpoint-every", "1")

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl1 := repro.NewClient("http://" + addr1)
	cl1.PollInterval = 5 * time.Millisecond

	receipt, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatalf("submit before crash: %v", err)
	}
	if code := waitExit(t, cmd1, 30*time.Second); code != 7 {
		t.Fatalf("crashed daemon exited %d, want injected-crash code 7", code)
	}

	// Restart over the same data dir, faults disarmed: replay must
	// re-enqueue the interrupted job and resume it from sweep 3.
	cmd2, addr2 := startDaemon(t, bin, nil,
		"-data-dir", dataDir, "-checkpoint-every", "1", "-drain-timeout", "5s")
	cl2 := repro.NewClient("http://" + addr2)
	cl2.PollInterval = 5 * time.Millisecond

	var st *repro.JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err = cl2.Job(ctx, receipt.JobID)
		if err != nil {
			t.Fatalf("polling recovered job: %v", err)
		}
		if st.State == "done" || st.State == "failed" || st.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("recovered job ended %q (%+v), want done", st.State, st.Error)
	}
	if !st.Recovered {
		t.Fatal("finished job is not flagged as recovered")
	}

	got, err := cl2.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatalf("fetching recovered result: %v", err)
	}
	if want.Fit != got.Fit {
		t.Fatalf("recovered fit %v differs from uninterrupted %v", got.Fit, want.Fit)
	}
	wc, gc := want.Core.Data(), got.Core.Data()
	for i := range wc {
		if wc[i] != gc[i] {
			t.Fatalf("core element %d differs after recovery", i)
		}
	}
	for n := range want.Factors {
		wf, gf := want.Factors[n].Data(), got.Factors[n].Data()
		for i := range wf {
			if wf[i] != gf[i] {
				t.Fatalf("factor %d element %d differs after recovery", n, i)
			}
		}
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := waitExit(t, cmd2, 30*time.Second); code != 0 {
		t.Fatalf("recovered daemon exited %d after SIGTERM, want 0", code)
	}
}
