// Command dtuckerd serves D-Tucker decompositions over HTTP.
//
// It wraps the library in a job API with admission control and a result
// cache: clients POST a serializable config plus tensor payload to
// /v1/decompose, poll /v1/jobs/{id}, and fetch the result as .dtd binary or
// JSON. Streaming sessions live under /v1/streams. When the bounded queue
// is full the daemon answers 429 with Retry-After instead of queueing
// unboundedly; /healthz reports liveness and /metricz exports counters and
// latency histograms through expvar.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops admitting
// work, finishes (or after -drain-timeout cancels) in-flight jobs, flushes
// final statistics to the log, and exits 0.
//
// Usage:
//
//	dtuckerd [-addr :7171] [-queue 16] [-runners 1] [-workers N]
//	         [-cache 64] [-drain-timeout 30s] [-quiet]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":7171", "listen address (host:port; port 0 picks one)")
		queue        = flag.Int("queue", 16, "job queue depth; beyond it submissions get 429")
		runners      = flag.Int("runners", 1, "jobs executing concurrently")
		workers      = flag.Int("workers", 0, "shared worker-pool size (0 = all CPUs)")
		cache        = flag.Int("cache", 64, "result-cache entries (negative disables)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs before cancelling them")
		quiet        = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "dtuckerd: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv := server.New(server.Config{
		QueueDepth: *queue,
		Runners:    *runners,
		Workers:    *workers,
		CacheSize:  *cache,
		RetryAfter: *retryAfter,
		Logf:       logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}

	// The ready line goes to stdout so scripts (and the e2e test) can wait
	// for it and learn the resolved address when port 0 was requested.
	fmt.Printf("dtuckerd listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		logger.Printf("received %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		return 1
	}

	// Drain while still serving, so clients can keep polling for results of
	// jobs that are finishing; only then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("shutdown: %v", err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	logger.Printf("drained, exiting")
	return 0
}
