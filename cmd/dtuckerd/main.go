// Command dtuckerd serves D-Tucker decompositions over HTTP.
//
// It wraps the library in a job API with admission control and a result
// cache: clients POST a serializable config plus tensor payload to
// /v1/decompose, poll /v1/jobs/{id}, and fetch the result as .dtd binary or
// JSON. Streaming sessions live under /v1/streams. When the bounded queue
// is full the daemon answers 429 with Retry-After instead of queueing
// unboundedly; /healthz reports liveness and /metricz exports counters and
// latency histograms (JSON by default, Prometheus text with
// ?format=prometheus).
//
// Observability: the daemon logs structured events (one line per admission
// decision and job lifecycle transition) to stderr, as logfmt-style text by
// default or JSONL with -log-format=json; -log-level sets the floor.
// Every request carries an X-Request-ID (client-sent or minted) that
// threads through events, job records, and traces. /debugz/requests serves
// the flight recorder — the last requests plus pinned slowest/error
// exemplars — and SIGQUIT dumps it to the event log. See docs/OPERATIONS.md
// ("Request observability").
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops admitting
// work, finishes (or after -drain-timeout cancels) in-flight jobs, flushes
// final statistics to the log, and exits 0.
//
// Multi-tenant admission: submissions carry an X-Tenant header (default
// "default") and an optional X-Priority header ("interactive" or "batch").
// -tenant-quota bounds each tenant's outstanding jobs, -tenant-weights
// assigns weighted-fair queueing shares, and identical in-flight
// submissions coalesce onto one execution unless -coalesce=false. See
// docs/OPERATIONS.md for the full operator guide.
//
// Kernel selection: -kernel-profile loads a calibrated cost-model profile
// (see `dtucker -autotune`) so requests with slice_kernel "auto" pick the
// cheapest SVD kernel per slice; -autotune calibrates one at startup
// instead. Results for auto requests are cached under the profile's
// fingerprint, so a profile change never serves stale entries.
//
// Range queries: GET /v1/streams/{id}/range?t0=&t1= answers any time
// window of a streaming session. Each session keeps a segment-tree range
// index over its preprocessed slice blocks, so overlapping windows are
// stitched from O(log T) cached node summaries instead of re-solved from
// scratch; windows below the stitch threshold solve directly, and results
// are cached append-stably. The -range-* flags tune the index and
// -range-index=false disables it. POST to the same path is a deprecated
// alias that answers with a Deprecation header. See docs/OPERATIONS.md
// ("Range queries").
//
// Durability: -data-dir enables the crash-safe job journal. Accepted
// decompose jobs are journaled before the 202 is written, checkpointed
// every -checkpoint-every ALS sweeps, and re-enqueued (resuming from
// their last checkpoint) when the daemon restarts after a crash. See
// docs/OPERATIONS.md ("Durability & recovery").
//
// Fault injection: the DTUCKERD_FAULTS environment variable arms crash
// sites in the durability path (see internal/faults.ActivateSpec); an
// injected exit terminates the process with status 7. Test-only.
//
// Usage:
//
//	dtuckerd [-addr :7171] [-queue 16] [-runners 1] [-workers N]
//	         [-cache 64] [-drain-timeout 30s] [-quiet]
//	         [-log-format text|json] [-log-level info] [-flight-recorder 256]
//	         [-tenant-quota 0] [-tenant-weights a=4,b=1]
//	         [-tenant-weight-default 1] [-coalesce=true]
//	         [-kernel-profile prof.json] [-autotune]
//	         [-range-index=true] [-range-block 8] [-range-rank 0]
//	         [-range-stitch-span 0] [-range-min-fit 0]
//	         [-data-dir /var/lib/dtuckerd] [-checkpoint-every 1]
//	         [-read-header-timeout 10s] [-idle-timeout 2m]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/kernelsel"
	"repro/internal/obs"
	"repro/internal/server"
)

// parseTenantWeights parses "a=4,b=1" into a weight map. Empty input is an
// empty map; malformed entries and non-positive weights are errors.
func parseTenantWeights(s string) (map[string]int, error) {
	weights := make(map[string]int)
	if s == "" {
		return weights, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("entry %q is not name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("entry %q needs a positive integer weight", part)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":7171", "listen address (host:port; port 0 picks one)")
		queue        = flag.Int("queue", 16, "job queue depth; beyond it submissions get 429")
		runners      = flag.Int("runners", 1, "jobs executing concurrently")
		workers      = flag.Int("workers", 0, "shared worker-pool size (0 = all CPUs)")
		cache        = flag.Int("cache", 64, "result-cache entries (negative disables)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs before cancelling them")
		quiet        = flag.Bool("quiet", false, "suppress per-job log lines (raises the log level to warn)")

		logFormat = flag.String("log-format", obs.FormatText, "structured-log format: text (logfmt-style) or json (JSONL)")
		logLevel  = flag.String("log-level", "info", "log level floor: debug, info, warn, or error")
		flightRec = flag.Int("flight-recorder", 256, "flight-recorder ring size at /debugz/requests (0 = default, negative disables)")

		tenantQuota   = flag.Int("tenant-quota", 0, "max outstanding jobs per tenant (0 = unlimited)")
		tenantWeights = flag.String("tenant-weights", "", "per-tenant WFQ weights as name=weight,... (e.g. prod=4,adhoc=1)")
		defaultWeight = flag.Int("tenant-weight-default", 1, "WFQ weight for tenants not listed in -tenant-weights")
		coalesce      = flag.Bool("coalesce", true, "coalesce identical in-flight submissions onto one execution")

		kernelProfile = flag.String("kernel-profile", "", "calibrated kernelsel profile JSON; requests with slice_kernel \"auto\" select against it, and it sets the matmul block sizes")
		autotune      = flag.Bool("autotune", false, "calibrate a kernel profile at startup instead of loading one; with -kernel-profile, also write it there")

		dataDir         = flag.String("data-dir", "", "directory for the durable job journal and checkpoints (empty = ephemeral)")
		checkpointEvery = flag.Int("checkpoint-every", 1, "checkpoint durable jobs every N ALS sweeps (1 = every sweep)")

		rangeIndex      = flag.Bool("range-index", true, "maintain per-stream range indexes; stream range queries stitch cached node summaries instead of re-solving")
		rangeBlock      = flag.Int("range-block", 0, "range-index block size in time steps (0 = default 8)")
		rangeRank       = flag.Int("range-rank", 0, "columns kept per range-index node summary (0 = auto from the request's ranks)")
		rangeStitchSpan = flag.Int("range-stitch-span", 0, "minimum window span to stitch; shorter windows solve directly (0 = 2×block, negative = always stitch)")
		rangeMinFit     = flag.Float64("range-min-fit", 0, "minimum acceptable fit of a stitched result; below it the query falls back to a direct solve (0 = accept any)")

		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "http.Server.ReadHeaderTimeout: limit on reading request headers (slowloris guard)")
		readTimeout       = flag.Duration("read-timeout", 2*time.Minute, "http.Server.ReadTimeout: limit on reading a full request including the tensor body (0 = unlimited)")
		writeTimeout      = flag.Duration("write-timeout", 2*time.Minute, "http.Server.WriteTimeout: limit on writing a full response including the result payload (0 = unlimited)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "http.Server.IdleTimeout: how long keep-alive connections may sit idle")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtuckerd: -log-level: %v\n", err)
		return 2
	}
	if *quiet && level < slog.LevelWarn {
		level = slog.LevelWarn
	}
	lg, err := obs.New(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtuckerd: -log-format: %v\n", err)
		return 2
	}
	logf := lg.Infof

	// Crash-injection arming for the e2e harness; no-op when unset.
	if spec := os.Getenv("DTUCKERD_FAULTS"); spec != "" {
		if err := faults.ActivateSpec(spec); err != nil {
			lg.Errorf("DTUCKERD_FAULTS: %v", err)
			return 2
		}
	}

	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		lg.Errorf("-tenant-weights: %v", err)
		return 2
	}

	var profile *kernelsel.Profile
	switch {
	case *autotune:
		profile, err = kernelsel.Calibrate(kernelsel.CalibrateOptions{Logf: logf})
		if err != nil {
			lg.Errorf("-autotune: %v", err)
			return 1
		}
		if *kernelProfile != "" {
			if err := kernelsel.Save(*kernelProfile, profile); err != nil {
				lg.Errorf("-autotune: %v", err)
				return 1
			}
			logf("wrote kernel profile %s", *kernelProfile)
		}
	case *kernelProfile != "":
		profile, err = kernelsel.Load(*kernelProfile)
		if err != nil {
			lg.Errorf("-kernel-profile: %v", err)
			return 2
		}
	}
	if profile != nil {
		profile.Apply() // install the autotuned matmul block sizes
		logf("kernel profile %s active (blocks %d×%d)", profile.Fingerprint(), profile.BlockK, profile.BlockN)
	}

	srv, err := server.New(server.Config{
		QueueDepth:          *queue,
		Runners:             *runners,
		Workers:             *workers,
		CacheSize:           *cache,
		RetryAfter:          *retryAfter,
		TenantQuota:         *tenantQuota,
		TenantWeights:       weights,
		DefaultTenantWeight: *defaultWeight,
		DisableCoalesce:     !*coalesce,
		KernelProfile:       profile,
		DataDir:             *dataDir,
		CheckpointEvery:     *checkpointEvery,
		DisableRangeIndex:   !*rangeIndex,
		RangeBlockSize:      *rangeBlock,
		RangeSummaryRank:    *rangeRank,
		RangeMinStitchSpan:  *rangeStitchSpan,
		RangeMinFit:         *rangeMinFit,
		Logf:                logf,
		Obs:                 lg,
		FlightRecorderSize:  *flightRec,
	})
	if err != nil {
		lg.Errorf("startup: %v", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Errorf("listen: %v", err)
		return 1
	}
	// Server-side timeouts: without them one stalled client connection can
	// pin a goroutine (and its buffers) forever. ReadHeaderTimeout alone
	// closes the slowloris hole; Read/Write bound full tensor uploads and
	// result downloads and so must cover the largest expected payload.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// The ready line goes to stdout so scripts (and the e2e test) can wait
	// for it and learn the resolved address when port 0 was requested.
	fmt.Printf("dtuckerd listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// SIGQUIT is the post-mortem trigger: dump the flight recorder to the
	// event log and keep serving (the Go runtime's stack-dump-and-exit
	// default is traded for this — use SIGABRT for goroutine dumps).
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			lg.Warnf("SIGQUIT received, dumping flight recorder")
			srv.FlightRecorder().DumpTo(lg)
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		lg.Infof("received %v, draining (timeout %v)", sig, *drainTimeout)
	case err := <-serveErr:
		lg.Errorf("serve: %v", err)
		return 1
	}

	// Drain while still serving, so clients can keep polling for results of
	// jobs that are finishing; only then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Errorf("shutdown: %v", err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	lg.Infof("drained, exiting")
	return 0
}
