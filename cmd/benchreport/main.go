// Command benchreport emits and compares machine-readable benchmark
// trajectories (schema-versioned BENCH_<UTC-date>.json files recording
// configuration, per-phase wall times, kernel counters, latency-histogram
// quantiles, fit, and peak heap).
//
// Emit a trajectory of the standard baseline workload:
//
//	benchreport [-out BENCH_2026-08-05.json] [-workers 1] [-shape 128,96,96]
//	            [-rank 8] [-ranks 8,8,8] [-seed 42] [-maxiters 30]
//
// Compare two trajectories, failing if the new one regressed:
//
//	benchreport -compare old.json new.json [-max-regress 10]
//
// -compare also accepts load reports (LOAD_*.json written by cmd/loadgen,
// kind "loadgen"): the file kind is sniffed and the serving-side comparator
// (goodput, shed rate, latency quantiles) is used. Both files must be of
// the same kind.
//
// Exit codes: 0 success / no regression, 1 runtime error, 2 usage,
// 4 regression past -max-regress percent. CI runs the compare form against
// the committed baseline (make bench-compare); the emit form refreshes it
// (make bench-json). See EXPERIMENTS.md, "Benchmark trajectories".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/loadgen"
	"repro/internal/workload"
)

// exitRegression distinguishes "new is measurably worse" from runtime (1)
// and usage (2) failures so CI can report it as a performance gate.
const exitRegression = 4

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "", "output path (default BENCH_<UTC-date>.json)")
		workers    = fs.Int("workers", 1, "worker-pool size for the measured run")
		shapeArg   = fs.String("shape", "", "tensor shape, e.g. 64,64,32 (default: standard baseline)")
		genRank    = fs.Int("rank", 8, "latent rank of the generated low-rank tensor")
		ranksArg   = fs.String("ranks", "", "target ranks, e.g. 8,8,8 (default: standard baseline)")
		seed       = fs.Int64("seed", 42, "random seed for generator and sketches")
		maxIters   = fs.Int("maxiters", 30, "maximum ALS sweeps")
		compare    = fs.Bool("compare", false, "compare two trajectory files: benchreport -compare old.json new.json")
		maxRegress = fs.Float64("max-regress", 10, "with -compare, fail (exit 4) if any metric regressed by more than this percent")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchreport: -compare needs exactly two files: old.json new.json")
			return 2
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *maxRegress, stdout, stderr)
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "benchreport: unexpected arguments %q (did you mean -compare?)\n", fs.Args())
		return 2
	}

	spec := bench.DefaultTrajectorySpec(*workers)
	spec.Seed = *seed
	spec.MaxIters = *maxIters
	if *shapeArg != "" || *ranksArg != "" {
		shape, err := parseInts(*shapeArg, "shape")
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 2
		}
		ranks, err := parseInts(*ranksArg, "ranks")
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 2
		}
		if len(shape) != len(ranks) {
			fmt.Fprintf(stderr, "benchreport: %d shape dims but %d ranks\n", len(shape), len(ranks))
			return 2
		}
		spec.Dataset = workload.LowRankNoise(shape, *genRank, 0.10, *seed)
		spec.Ranks = ranks
	}

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}

	fmt.Fprintf(stderr, "benchreport: running d-tucker on %s ranks %v, workers %d\n",
		spec.Dataset.Dims(), spec.Ranks, spec.Workers)
	tr, err := bench.CollectTrajectory(spec)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	if err := bench.SaveTrajectory(path, tr); err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: total %.3fs, fit %.4f, %d iters, peak heap %.1f MiB\n",
		path, tr.TotalSeconds, tr.Fit, tr.Iters, float64(tr.PeakHeapBytes)/(1<<20))
	return 0
}

// fileKind sniffs a report file's "kind" field; benchmark trajectories
// predate the field and carry none, so "" means trajectory.
func fileKind(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var k struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &k); err != nil {
		return "", fmt.Errorf("parsing %s: %w", path, err)
	}
	return k.Kind, nil
}

func runCompare(oldPath, newPath string, maxPct float64, stdout, stderr *os.File) int {
	oldKind, err := fileKind(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	newKind, err := fileKind(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchreport:", err)
		return 1
	}
	if oldKind != newKind {
		fmt.Fprintf(stderr, "benchreport: cannot compare kind %q against kind %q\n",
			kindName(oldKind), kindName(newKind))
		return 2
	}

	var regs []bench.Regression
	switch oldKind {
	case loadgen.ReportKind:
		old, err := loadgen.Load(oldPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
		cur, err := loadgen.Load(newPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
		regs = loadgen.Compare(old, cur, maxPct)
	case "":
		old, err := bench.LoadTrajectory(oldPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
		cur, err := bench.LoadTrajectory(newPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchreport:", err)
			return 1
		}
		regs = bench.CompareTrajectories(old, cur, maxPct)
	default:
		fmt.Fprintf(stderr, "benchreport: unknown report kind %q\n", oldKind)
		return 1
	}
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "no regression past %.1f%% (%s → %s)\n", maxPct, oldPath, newPath)
		return 0
	}
	fmt.Fprintf(stderr, "benchreport: %d metric(s) regressed past %.1f%%:\n", len(regs), maxPct)
	for _, r := range regs {
		fmt.Fprintf(stderr, "  %s\n", r)
	}
	return exitRegression
}

// kindName spells the empty trajectory kind for error messages.
func kindName(k string) string {
	if k == "" {
		return "trajectory"
	}
	return k
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s, what string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-shape and -ranks must be given together")
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad %s entry %q", what, p)
		}
		out[i] = v
	}
	return out, nil
}
