package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/loadgen"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("64, 64,32", "shape")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 64 || got[2] != 32 {
		t.Fatalf("parseInts = %v", got)
	}
	for _, bad := range []string{"", "8,x", "8,-1"} {
		if _, err := parseInts(bad, "shape"); err == nil {
			t.Errorf("parseInts(%q) accepted", bad)
		}
	}
}

// TestEndToEnd builds the binary, emits a trajectory on a deliberately tiny
// workload, validates the file, then exercises the compare gate in both the
// passing and the failing direction.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchreport")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}

	small := []string{"-shape", "16,14,6", "-rank", "3", "-ranks", "3,3,3", "-maxiters", "5"}
	emit := func(path string) {
		t.Helper()
		args := append([]string{"-out", path}, small...)
		if out, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("emit: %v\n%s", err, out)
		}
	}
	oldPath := filepath.Join(dir, "old.json")
	emit(oldPath)
	tr, err := bench.LoadTrajectory(oldPath)
	if err != nil {
		t.Fatalf("emitted file does not load: %v", err)
	}
	if tr.Schema != bench.TrajectorySchema || tr.TotalSeconds <= 0 || len(tr.Histograms) == 0 {
		t.Fatalf("emitted trajectory incomplete: %+v", tr)
	}

	newPath := filepath.Join(dir, "new.json")
	emit(newPath)
	// Same workload twice on the same machine: generous threshold passes.
	out, err := exec.Command(bin, "-compare", "-max-regress", "10000", oldPath, newPath).CombinedOutput()
	if err != nil {
		t.Fatalf("compare of twin runs failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no regression") {
		t.Fatalf("compare output: %s", out)
	}

	// Forge a 3× slowdown; the gate must fail with the dedicated exit code.
	worse := tr
	worse.TotalSeconds *= 3
	for i := range worse.Phases {
		worse.Phases[i].Seconds *= 3
	}
	worsePath := filepath.Join(dir, "worse.json")
	if err := bench.SaveTrajectory(worsePath, worse); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "-compare", "-max-regress", "10", oldPath, worsePath).CombinedOutput()
	var exit *exec.ExitError
	if err == nil || !strings.Contains(string(out), "regressed past") {
		t.Fatalf("forged regression not flagged: err=%v\n%s", err, out)
	}
	if !errors.As(err, &exit) || exit.ExitCode() != exitRegression {
		t.Fatalf("exit = %v, want code %d\n%s", err, exitRegression, out)
	}

	// Usage errors: -compare with one file, and a schema-less input.
	if out, err := exec.Command(bin, "-compare", oldPath).CombinedOutput(); err == nil {
		t.Fatalf("-compare with one file accepted:\n%s", out)
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte(`{"schema": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-compare", oldPath, badPath).CombinedOutput(); err == nil {
		t.Fatalf("wrong-schema file accepted:\n%s", out)
	}

	// The default output name is date-stamped; verify the shape of the name
	// without committing to today's date.
	verifyEmittedJSON(t, oldPath)
}

func verifyEmittedJSON(t *testing.T, oldPath string) {
	t.Helper()
	var doc map[string]any
	data, _ := os.ReadFile(oldPath)
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted file is not JSON: %v", err)
	}
	if doc["schema"] != float64(bench.TrajectorySchema) {
		t.Fatalf("schema field = %v, want %d", doc["schema"], bench.TrajectorySchema)
	}
}

// compareArgs invokes the in-process CLI entry point with -compare and
// returns the exit code plus the combined output.
func compareArgs(t *testing.T, maxRegress string, oldPath, newPath string) (int, string) {
	t.Helper()
	outFile, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	code := run([]string{"-compare", "-max-regress", maxRegress, oldPath, newPath}, outFile, outFile)
	data, err := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// TestCompareLoadReports covers the sniffed "loadgen" kind: twin load
// reports pass, a goodput collapse fails with the regression exit code, and
// mixing a load report with a benchmark trajectory is a usage error.
func TestCompareLoadReports(t *testing.T) {
	dir := t.TempDir()
	rep := loadgen.Report{
		Schema: loadgen.ReportSchema, Kind: loadgen.ReportKind,
		GoodputQPS: 20, ShedRate: 0.02,
		Totals: loadgen.OpStats{
			Offered: 200, Completed: 190, Shed: 4,
			Latency: loadgen.LatencySummary{Count: 190, P50Ms: 30, P95Ms: 90, P99Ms: 150},
		},
	}
	oldPath := filepath.Join(dir, "old_load.json")
	if err := loadgen.Save(oldPath, rep); err != nil {
		t.Fatal(err)
	}

	code, out := compareArgs(t, "10", oldPath, oldPath)
	if code != 0 || !strings.Contains(out, "no regression") {
		t.Fatalf("twin load reports: exit %d\n%s", code, out)
	}

	worse := rep
	worse.GoodputQPS = 8 // −60%
	worse.Totals.Latency.P99Ms = 400
	worsePath := filepath.Join(dir, "worse_load.json")
	if err := loadgen.Save(worsePath, worse); err != nil {
		t.Fatal(err)
	}
	code, out = compareArgs(t, "10", oldPath, worsePath)
	if code != exitRegression {
		t.Fatalf("goodput collapse: exit %d, want %d\n%s", code, exitRegression, out)
	}
	if !strings.Contains(out, "goodput_qps") || !strings.Contains(out, "latency_p99_ms") {
		t.Fatalf("regression listing missing metrics:\n%s", out)
	}

	// A trajectory (kind-less) against a load report is a category error.
	traj := bench.Trajectory{Schema: bench.TrajectorySchema}
	trajPath := filepath.Join(dir, "traj.json")
	if err := bench.SaveTrajectory(trajPath, traj); err != nil {
		t.Fatal(err)
	}
	code, out = compareArgs(t, "10", trajPath, oldPath)
	if code != 2 || !strings.Contains(out, "cannot compare kind") {
		t.Fatalf("mixed kinds: exit %d\n%s", code, out)
	}
}
