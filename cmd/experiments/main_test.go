package main

import "testing"

func TestRunOneComplexityTable(t *testing.T) {
	// The only experiment cheap enough for a unit test; the heavy ones are
	// exercised by the root bench suite.
	if err := runOne("table-complexity", true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("nope", true, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
