// Command experiments regenerates the paper's evaluation artifacts (E1–E7,
// see DESIGN.md §4) and the analytic complexity table.
//
// Usage:
//
//	experiments -exp e1            # one experiment
//	experiments -exp all           # everything
//	experiments -exp e4 -short     # reduced sizes for a quick pass
//	experiments -exp e1 -metrics -csvdir out   # CSVs with per-phase columns
//	experiments -exp table-complexity
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: "+strings.Join(bench.Experiments, ", ")+", table-complexity, or all")
	short := flag.Bool("short", false, "run at reduced dataset sizes")
	csvDir := flag.String("csvdir", "", "also write each experiment's measurements as CSV into this directory")
	withMetrics := flag.Bool("metrics", false, "collect per-phase timings and kernel counters (populates the trailing CSV columns; <2% overhead)")
	flag.Parse()
	if *withMetrics {
		bench.SetCollectMetrics(true)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		if err := runAllSuite(*short, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runOne(*exp, *short, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", *exp, err)
		os.Exit(1)
	}
}

// runAllSuite runs every experiment, deriving E3 from E1's measurements so
// the expensive comparison suite runs once.
func runAllSuite(short bool, csvDir string) error {
	w := os.Stdout
	fmt.Fprintln(w, "==== experiment e1: running time, all methods × all datasets")
	e1, err := bench.RunE1(w, short)
	if err != nil {
		return fmt.Errorf("e1: %w", err)
	}
	if err := maybeCSV(csvDir, "e1", e1); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n==== experiment e3: reconstruction error (derived from e1 runs)")
	bench.FormatErrorView(w, e1)
	for _, id := range []string{bench.ExpE2, bench.ExpE4, bench.ExpE5, bench.ExpE6, bench.ExpE7, bench.ExpE8, "table-complexity"} {
		fmt.Fprintln(w)
		if err := runOne(id, short, csvDir); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

func runOne(id string, short bool, csvDir string) error {
	w := os.Stdout
	fmt.Fprintf(w, "==== experiment %s %s\n", id, time.Now().Format(time.RFC3339))
	var (
		err     error
		results []bench.Result
	)
	switch id {
	case bench.ExpE1:
		fmt.Fprintln(w, "E1: running time and error, all methods × all datasets")
		results, err = bench.RunE1(w, short)
	case bench.ExpE2:
		fmt.Fprintln(w, "E2: space cost of stored representations")
		results, err = bench.RunE2(w, short)
	case bench.ExpE3:
		fmt.Fprintln(w, "E3: reconstruction error comparison")
		results, err = bench.RunE3(w, short)
	case bench.ExpE4:
		fmt.Fprintln(w, "E4: data scalability (time vs tensor size)")
		results, err = bench.RunE4(w, short)
	case bench.ExpE5:
		fmt.Fprintln(w, "E5: rank scalability (time/error vs rank)")
		results, err = bench.RunE5(w, short)
	case bench.ExpE6:
		fmt.Fprintln(w, "E6: D-Tucker phase breakdown and approximation reuse")
		err = bench.RunE6(w, short)
	case bench.ExpE7:
		fmt.Fprintln(w, "E7: accuracy under growing noise")
		results, err = bench.RunE7(w, short)
	case bench.ExpE8:
		fmt.Fprintln(w, "E8: slice-rank sensitivity (approximation knob)")
		results, err = bench.RunE8(w, short)
	case "table-complexity":
		fmt.Fprintln(w, "analytic time/space complexity per method")
		fmt.Fprintln(w, bench.ComplexityTable())
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	fmt.Fprintln(w)
	if err != nil {
		return err
	}
	return maybeCSV(csvDir, id, results)
}

// maybeCSV saves results to <dir>/<id>.csv when a CSV directory was given.
func maybeCSV(dir, id string, results []bench.Result) error {
	if dir == "" || len(results) == 0 {
		return nil
	}
	return bench.SaveCSV(fmt.Sprintf("%s/%s.csv", dir, id), results)
}
