// Package repro is the public API of dtucker-go, a pure-Go implementation
// of D-Tucker (Jang & Kang, ICDE 2020): fast and memory-efficient Tucker
// decomposition for large dense tensors.
//
// The package re-exports the library's user-facing surface — dense tensors,
// the D-Tucker decomposition with its three phases, the streaming and
// time-range-query extensions, and the Tucker model type shared with every
// baseline — so downstream modules depend only on this package while the
// implementation lives in internal/ sub-packages.
//
// # Quickstart
//
//	x, _ := repro.LoadTensor("data.ten")             // or build one in memory
//	dec, err := repro.Decompose(x, repro.Options{Ranks: []int{10, 10, 10}})
//	if err != nil { ... }
//	_ = dec.Core       // small dense core tensor
//	_ = dec.Factors    // column-orthonormal factor matrices
//	_ = dec.RelError(x) // exact relative reconstruction error
//
// # Streaming and range queries
//
//	st := repro.NewStream(repro.Options{Ranks: []int{10, 10, 10}})
//	st.Append(chunk)                    // compresses only the new slices
//	dec, _ := st.Decompose()            // warm-started model refresh
//	sub, _ := st.DecomposeRange(40, 70) // model of time steps [40,70)
//
// # Cancellation
//
// The Context-suffixed functions (DecomposeContext, ApproximateContext,
// DecomposeAdaptiveContext, and the Stream's AppendContext /
// DecomposeContext / DecomposeRangeContext methods) are the canonical
// entry points; the ctx-less variants are thin wrappers that leave
// Options.Context untouched. Prefer the Context variants anywhere a caller
// may need to abandon a run.
//
// # Serving
//
//	cl := repro.NewClient("http://127.0.0.1:7171")   // daemon: cmd/dtuckerd
//	dec, err := cl.Decompose(ctx, x, repro.Config{Ranks: []int{10, 10, 10}}, nil)
//
// cmd/dtuckerd serves decompositions over an HTTP job API with admission
// control and a result cache; Client is its Go client. The daemon runs the
// same deterministic library, so a served result is bit-identical to an
// in-process one.
//
// Baselines (Tucker-ALS, HOSVD, MACH, RTD, Tucker-ts/ttmts), synthetic
// workload generators, and the experiment harness live in the internal
// packages and are exercised through cmd/experiments and the root
// benchmarks.
package repro

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/tucker"
)

// Tensor is a dense N-order tensor with first-index-fastest layout.
// See the methods on tensor.Dense for unfoldings, n-mode products, and
// slicing.
type Tensor = tensor.Dense

// Matrix is a dense row-major matrix.
type Matrix = mat.Dense

// Model is a Tucker decomposition: a core tensor plus one factor matrix
// per mode, with reconstruction and error metrics.
type Model = tucker.Model

// Config holds the plain-data parameters of a decomposition — the
// serializable request type of the dtuckerd serving API. It JSON
// round-trips losslessly, Validate checks it without a tensor in hand, and
// Canonical renders the normalized cache key the server's result cache
// uses. The zero value of every field except Ranks selects the paper's
// defaults.
type Config = core.Config

// Options configures a D-Tucker decomposition: an embedded Config (the
// serializable request — ranks, tolerances, seed) plus the runtime
// attachments that cannot cross a process boundary (Context, Metrics,
// Pool, Workers). The zero value of every Config field except Ranks
// selects the paper's defaults (tol 1e-4, ≤100 sweeps, slice rank max of
// the two leading target ranks, single thread).
type Options = core.Options

// Decomposition is a D-Tucker result: the Model plus fit estimate and
// per-phase timing statistics.
type Decomposition = core.Decomposition

// Approximation is the compressed-slice representation produced by the
// approximation phase; reuse it to amortize the only pass over raw data
// across repeated decompositions.
type Approximation = core.Approximation

// Stream maintains a D-Tucker compression of a tensor growing along its
// last (temporal) mode, with warm-started refreshes and time-range queries.
type Stream = core.Stream

// Collector gathers per-phase wall times, kernel counters, memory samples,
// and the per-sweep fit trajectory of a decomposition when passed in
// Options.Metrics. The zero Collector and a nil *Collector are both valid;
// see NewCollector for the common path.
type Collector = metrics.Collector

// WorkerPool is a per-decomposition worker pool plus scratch-buffer arena.
// Options.Workers sizes one implicitly; pass an explicit pool via
// Options.Pool to share workers and scratch memory across decompositions.
// Every parallel site follows an owner-computes split, so results are
// bit-identical for every pool size.
type WorkerPool = pool.Pool

// Tracer records a hierarchical span trace of a decomposition — phases,
// sweeps, modes, and per-worker pool tasks on their own lanes — when
// attached to a Collector via SetTracer. Export the recording with
// WriteJSONL or WriteChrome (Perfetto / chrome://tracing), or Export with
// a TraceFormat parsed from a CLI flag.
type Tracer = trace.Tracer

// TraceFormat names a span-trace encoding: TraceJSONL or TraceChrome.
type TraceFormat = trace.Format

// Span-trace encodings accepted by Tracer.Export.
const (
	TraceJSONL  = trace.FormatJSONL
	TraceChrome = trace.FormatChrome
)

// NewTensor returns a zeroed tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromData wraps data (first-index-fastest, length ∏shape) without
// copying.
func TensorFromData(data []float64, shape ...int) *Tensor {
	return tensor.NewFromData(data, shape...)
}

// LoadTensor reads a tensor in the .ten binary format from path.
func LoadTensor(path string) (*Tensor, error) { return tensor.LoadFile(path) }

// ReadTensor reads a .ten-format tensor from r.
func ReadTensor(r io.Reader) (*Tensor, error) { return tensor.ReadFrom(r) }

// DecomposeContext is the canonical entry point: it runs the three
// D-Tucker phases (approximation, initialization, iteration) on x and
// returns the Tucker model in x's mode order. A done ctx stops the run at
// the next slice, factor, or sweep boundary, joins every worker goroutine,
// and returns a *CancelledError naming the interrupted phase (errors.Is
// context.Canceled / DeadlineExceeded both hold). It is equivalent to
// setting Options.Context.
func DecomposeContext(ctx context.Context, x *Tensor, opts Options) (*Decomposition, error) {
	opts.Context = ctx
	return core.Decompose(x, opts)
}

// Decompose is DecomposeContext without cancellation — a thin wrapper that
// leaves Options.Context untouched (nil means context.Background()). Use
// the Context variant anywhere a caller may need to abandon the run.
func Decompose(x *Tensor, opts Options) (*Decomposition, error) {
	return core.Decompose(x, opts)
}

// ApproximateContext runs only the approximation phase — the single pass
// over the raw tensor — returning a compressed representation whose
// Decompose method runs the remaining phases. Cancellation is observed at
// every slice-compression boundary, and ctx is retained in the returned
// Approximation's options, so its Decompose honours it too.
func ApproximateContext(ctx context.Context, x *Tensor, opts Options) (*Approximation, error) {
	opts.Context = ctx
	return core.Approximate(x, opts)
}

// Approximate is ApproximateContext without cancellation — a thin wrapper
// that leaves Options.Context untouched.
func Approximate(x *Tensor, opts Options) (*Approximation, error) {
	return core.Approximate(x, opts)
}

// NewStream creates an empty temporal stream with the given options.
func NewStream(opts Options) *Stream { return core.NewStream(opts) }

// NewTracer returns an empty span tracer ready to attach to a Collector:
//
//	col := repro.NewCollector()
//	tr := repro.NewTracer()
//	col.SetTracer(tr)
//	dec, _ := repro.Decompose(x, repro.Options{Ranks: ranks, Metrics: col})
//	tr.Export(w, repro.TraceChrome)
func NewTracer() *Tracer { return trace.New() }

// NewCollector enables the process-wide kernel counters and returns a fresh
// metrics collector to pass as Options.Metrics. When no collector is in
// use the counters stay disabled and the instrumentation is free — one
// atomic load per kernel call, zero allocations.
func NewCollector() *Collector { return metrics.New() }

// NewWorkerPool returns a pool running at most size concurrent workers, to
// pass as Options.Pool when several decompositions should share workers and
// scratch memory. size < 1 is treated as 1. A pool needs no Close.
func NewWorkerPool(size int) *WorkerPool { return pool.New(size) }

// DecomposeAdaptiveContext runs D-Tucker with data-driven ranks: per-mode
// target ranks are chosen from the compressed slices so each mode retains
// a (1 − eps²) fraction of its energy, capped at maxRank. It returns the
// decomposition and the chosen ranks; opts.Ranks is ignored. See
// DecomposeContext for the cancellation contract.
func DecomposeAdaptiveContext(ctx context.Context, x *Tensor, eps float64, maxRank int, opts Options) (*Decomposition, []int, error) {
	opts.Context = ctx
	return core.DecomposeAdaptive(x, eps, maxRank, opts)
}

// DecomposeAdaptive is DecomposeAdaptiveContext without cancellation — a
// thin wrapper that leaves Options.Context untouched.
func DecomposeAdaptive(x *Tensor, eps float64, maxRank int, opts Options) (*Decomposition, []int, error) {
	return core.DecomposeAdaptive(x, eps, maxRank, opts)
}
