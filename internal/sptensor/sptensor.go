// Package sptensor provides a coordinate-format (COO) sparse tensor and the
// sparse kernels required by the MACH baseline: sampling a dense tensor
// into sparse form, the Frobenius norm, and the chained tensor-times-matrix
// (TTMc) kernel that evaluates X ×_{k≠n} A(k)ᵀ one nonzero at a time.
package sptensor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// COO is a sparse tensor in coordinate format. Indices for entry e occupy
// Indices[e*order : (e+1)*order].
type COO struct {
	Shape   []int
	Indices []int32
	Values  []float64
}

// New returns an empty sparse tensor with the given shape.
func New(shape ...int) *COO {
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("sptensor: non-positive dimension in shape %v", shape))
		}
	}
	return &COO{Shape: append([]int(nil), shape...)}
}

// Order returns the number of modes.
func (s *COO) Order() int { return len(s.Shape) }

// NNZ returns the number of stored entries.
func (s *COO) NNZ() int { return len(s.Values) }

// Append adds one entry. Duplicate coordinates are summed implicitly by
// every downstream kernel, so callers need not deduplicate.
func (s *COO) Append(v float64, idx ...int) {
	if len(idx) != len(s.Shape) {
		panic(fmt.Sprintf("sptensor: index %v for order-%d tensor", idx, len(s.Shape)))
	}
	for k, i := range idx {
		if i < 0 || i >= s.Shape[k] {
			panic(fmt.Sprintf("sptensor: index %v out of range for shape %v", idx, s.Shape))
		}
		s.Indices = append(s.Indices, int32(i))
	}
	s.Values = append(s.Values, v)
}

// Norm returns the Frobenius norm of the stored entries.
func (s *COO) Norm() float64 {
	ss := 0.0
	for _, v := range s.Values {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// StorageFloats returns the space cost in float64 units, counting each
// int32 index as half a float64.
func (s *COO) StorageFloats() int {
	return len(s.Values) + (len(s.Indices)+1)/2
}

// Sample keeps each entry of x independently with probability rate and
// rescales kept entries by 1/rate, so the sample is an unbiased estimator
// of x — the MACH sparsification scheme (Tsourakakis 2010, after
// Achlioptas & McSherry).
func Sample(x *tensor.Dense, rate float64, rng *rand.Rand) *COO {
	if rate <= 0 || rate > 1 {
		panic(fmt.Sprintf("sptensor: sampling rate %g outside (0,1]", rate))
	}
	s := New(x.Shape()...)
	order := x.Order()
	shape := x.Shape()
	inv := 1 / rate
	idx := make([]int, order)
	for _, v := range x.Data() {
		if v != 0 && rng.Float64() < rate {
			for _, i := range idx {
				s.Indices = append(s.Indices, int32(i))
			}
			s.Values = append(s.Values, v*inv)
		}
		for k := 0; k < order; k++ {
			idx[k]++
			if idx[k] < shape[k] {
				break
			}
			idx[k] = 0
		}
	}
	return s
}

// TTMcUnfolded computes the mode-n unfolding of X ×_{k≠n} A(k)ᵀ directly
// from the nonzeros: an I_n × ∏_{k≠n} J_k dense matrix where each nonzero
// x(i₁..i_N) adds x · ⊗_{k≠n} A(k)[i_k,:] (lower modes fastest) to row i_n.
//
// Cost is O(nnz · ∏_{k≠n} J_k) — the reason sampling pays off for MACH.
func (s *COO) TTMcUnfolded(factors []*mat.Dense, n int) *mat.Dense {
	order := len(s.Shape)
	if len(factors) != order {
		panic(fmt.Sprintf("sptensor: %d factors for order-%d tensor", len(factors), order))
	}
	cols := 1
	for k := 0; k < order; k++ {
		if k != n {
			cols *= factors[k].Cols()
		}
	}
	out := mat.New(s.Shape[n], cols)
	if len(s.Values) == 0 {
		return out
	}
	krow := make([]float64, cols)
	rows := make([][]float64, 0, order-1)
	for e, v := range s.Values {
		base := e * order
		// Kronecker of the selected factor rows with LOWER modes fastest:
		// mat.KronRow makes its last argument fastest, so feed rows in
		// descending mode order.
		rows = rows[:0]
		for k := order - 1; k >= 0; k-- {
			if k == n {
				continue
			}
			rows = append(rows, factors[k].Row(int(s.Indices[base+k])))
		}
		mat.KronRow(krow, rows...)
		dst := out.Row(int(s.Indices[base+n]))
		for c, w := range krow {
			dst[c] += v * w
		}
	}
	return out
}

// CoreProject computes G = X ×₁ A(1)ᵀ … ×_N A(N)ᵀ from the nonzeros,
// returning the J1×…×JN core.
func (s *COO) CoreProject(factors []*mat.Dense) *tensor.Dense {
	order := len(s.Shape)
	ranks := make([]int, order)
	total := 1
	for k, f := range factors {
		ranks[k] = f.Cols()
		total *= f.Cols()
	}
	g := tensor.New(ranks...)
	gd := g.Data()
	krow := make([]float64, total)
	rows := make([][]float64, order)
	for e, v := range s.Values {
		base := e * order
		// Core layout is first-index-fastest, so the flattened core index
		// must have mode 1 fastest: feed KronRow in descending mode order.
		for k := 0; k < order; k++ {
			rows[k] = factors[order-1-k].Row(int(s.Indices[base+order-1-k]))
		}
		mat.KronRow(krow, rows...)
		for c, w := range krow {
			gd[c] += v * w
		}
	}
	return g
}

// Dense materializes the sparse tensor (summing duplicates).
func (s *COO) Dense() *tensor.Dense {
	t := tensor.New(s.Shape...)
	order := len(s.Shape)
	strides := make([]int, order)
	acc := 1
	for k, dim := range s.Shape {
		strides[k] = acc
		acc *= dim
	}
	d := t.Data()
	for e, v := range s.Values {
		off := 0
		for k := 0; k < order; k++ {
			off += int(s.Indices[e*order+k]) * strides[k]
		}
		d[off] += v
	}
	return t
}
