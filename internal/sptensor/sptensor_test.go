package sptensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestAppendAndNNZ(t *testing.T) {
	s := New(3, 4, 5)
	s.Append(1.5, 0, 1, 2)
	s.Append(-2, 2, 3, 4)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
	if got := s.Norm(); math.Abs(got-math.Sqrt(1.5*1.5+4)) > 1e-12 {
		t.Fatalf("Norm = %g", got)
	}
}

func TestAppendOutOfRangePanics(t *testing.T) {
	s := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Append did not panic")
		}
	}()
	s.Append(1, 2, 0)
}

func TestDenseRoundTrip(t *testing.T) {
	s := New(2, 3)
	s.Append(5, 1, 2)
	s.Append(3, 0, 0)
	s.Append(2, 1, 2) // duplicate coordinate sums
	d := s.Dense()
	if d.At(1, 2) != 7 || d.At(0, 0) != 3 || d.At(0, 1) != 0 {
		t.Fatalf("Dense() wrong: %v", d.Data())
	}
}

func TestSampleFullRateIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 4, 5, 3)
	s := Sample(x, 1.0, rng)
	if s.NNZ() != x.Len() {
		t.Fatalf("rate-1 sample kept %d of %d", s.NNZ(), x.Len())
	}
	if !s.Dense().EqualApprox(x, 1e-12) {
		t.Fatal("rate-1 sample differs from input")
	}
}

func TestSampleUnbiasedNorm(t *testing.T) {
	// E[sampled entry] = entry; the mean over entries of many samples
	// should track the original.
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 6, 6, 6)
	sum := tensor.New(6, 6, 6)
	trials := 200
	for i := 0; i < trials; i++ {
		sum.AddInPlace(Sample(x, 0.3, rng).Dense())
	}
	sum.ScaleInPlace(1 / float64(trials))
	rel := sum.Sub(x).Norm() / x.Norm()
	if rel > 0.15 {
		t.Fatalf("sample mean deviates by %g", rel)
	}
}

func TestSampleRateRoughlyRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 10, 10, 10)
	s := Sample(x, 0.25, rng)
	frac := float64(s.NNZ()) / float64(x.Len())
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("kept fraction %g for rate 0.25", frac)
	}
}

func TestSampleInvalidRatePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandN(rng, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("rate 0 accepted")
		}
	}()
	Sample(x, 0, rng)
}

func TestTTMcMatchesDense(t *testing.T) {
	// Sparse TTMc on a rate-1 sample must equal the dense computation.
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandN(rng, 4, 5, 3)
	s := Sample(x, 1.0, rng)
	factors := []*mat.Dense{
		mat.RandN(4, 2, rng),
		mat.RandN(5, 3, rng),
		mat.RandN(3, 2, rng),
	}
	for n := 0; n < 3; n++ {
		got := s.TTMcUnfolded(factors, n)
		want := x.TTMAllTransposed(factors, n).Unfold(n)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("TTMc mode %d disagrees with dense", n)
		}
	}
}

func TestCoreProjectMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandN(rng, 3, 4, 5)
	s := Sample(x, 1.0, rng)
	factors := []*mat.Dense{
		mat.RandN(3, 2, rng),
		mat.RandN(4, 2, rng),
		mat.RandN(5, 2, rng),
	}
	got := s.CoreProject(factors)
	want := x.TTMAllTransposed(factors, -1)
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("CoreProject disagrees with dense projection")
	}
}

func TestTTMcOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 3, 4, 2, 3)
	s := Sample(x, 1.0, rng)
	factors := []*mat.Dense{
		mat.RandN(3, 2, rng),
		mat.RandN(4, 2, rng),
		mat.RandN(2, 2, rng),
		mat.RandN(3, 2, rng),
	}
	got := s.TTMcUnfolded(factors, 2)
	want := x.TTMAllTransposed(factors, 2).Unfold(2)
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("order-4 TTMc mismatch")
	}
}

func TestStorageFloats(t *testing.T) {
	s := New(3, 3, 3)
	s.Append(1, 0, 0, 0)
	s.Append(2, 1, 1, 1)
	// 2 values + 6 int32 indices = 2 + 3 float-equivalents.
	if got := s.StorageFloats(); got != 5 {
		t.Fatalf("StorageFloats = %d, want 5", got)
	}
}

func TestEmptyTensorKernels(t *testing.T) {
	s := New(3, 4)
	factors := []*mat.Dense{mat.New(3, 2), mat.New(4, 2)}
	y := s.TTMcUnfolded(factors, 0)
	if y.Norm() != 0 {
		t.Fatal("empty TTMc nonzero")
	}
	g := s.CoreProject(factors)
	if g.Norm() != 0 {
		t.Fatal("empty CoreProject nonzero")
	}
}
