package rangeidx

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// lowRankTensor builds a noisy rank-r tensor, mirroring the core test
// helper, so stitched fits have headroom above the quality floor.
func lowRankTensor(rng *rand.Rand, noise float64, r int, shape ...int) *tensor.Dense {
	ranks := make([]int, len(shape))
	for i := range ranks {
		ranks[i] = r
	}
	g := tensor.RandN(rng, ranks...)
	x := g
	for n, s := range shape {
		x = x.ModeProduct(mat.RandOrthonormal(s, r, rng), n)
	}
	if noise > 0 {
		e := tensor.RandN(rng, shape...)
		scale := noise * x.Norm() / e.Norm()
		e.ScaleInPlace(scale)
		x.AddInPlace(e)
	}
	return x
}

// chunked splits x into pieces along its last mode.
func chunked(x *tensor.Dense, sizes ...int) []*tensor.Dense {
	order := x.Order()
	shape := x.Shape()
	area := 1
	for _, d := range shape[:order-1] {
		area *= d
	}
	var out []*tensor.Dense
	off := 0
	for _, sz := range sizes {
		cs := append([]int(nil), shape[:order-1]...)
		cs = append(cs, sz)
		out = append(out, tensor.NewFromData(append([]float64(nil), x.Data()[off*area:(off+sz)*area]...), cs...))
		off += sz
	}
	return out
}

// testStream builds a stream over a fixed 12×10×48 tensor (seeded, so every
// call sees the same data) with the given worker count.
func testStream(t *testing.T, workers int, chunkSizes ...int) *core.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	x := lowRankTensor(rng, 0.05, 3, 12, 10, 48)
	st := core.NewStream(core.Options{
		Config:  core.Config{Ranks: []int{3, 3, 3}, Seed: 9, NoReorder: true},
		Workers: workers,
	})
	if len(chunkSizes) == 0 {
		chunkSizes = []int{16, 16, 16}
	}
	for _, c := range chunked(x, chunkSizes...) {
		if err := st.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// sameDec reports whether two decompositions are bitwise identical: core
// data, every factor, and the fit.
func sameDec(a, b *core.Decomposition) bool {
	if a == nil || b == nil {
		return a == b
	}
	if math.Float64bits(a.Fit) != math.Float64bits(b.Fit) {
		return false
	}
	ad, bd := a.Core.Data(), b.Core.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	if len(a.Factors) != len(b.Factors) {
		return false
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n].Data(), b.Factors[n].Data()
		if len(fa) != len(fb) {
			return false
		}
		for i := range fa {
			if math.Float64bits(fa[i]) != math.Float64bits(fb[i]) {
				return false
			}
		}
	}
	return true
}

func TestPlanCanonical(t *testing.T) {
	const B = 4
	for _, tc := range []struct{ t0, t1 int }{
		{0, 48}, {1, 47}, {3, 5}, {0, 3}, {4, 12}, {5, 44}, {8, 40}, {17, 23}, {0, 64}, {31, 33},
	} {
		segs := plan(tc.t0, tc.t1, B)
		at := tc.t0
		for _, sg := range segs {
			if sg.t0 != at || sg.t1 <= sg.t0 {
				t.Fatalf("plan(%d,%d): segment [%d,%d) does not continue from %d", tc.t0, tc.t1, sg.t0, sg.t1, at)
			}
			if sg.n > 0 {
				if sg.n&(sg.n-1) != 0 || sg.b%sg.n != 0 {
					t.Fatalf("plan(%d,%d): run b=%d n=%d not dyadically aligned", tc.t0, tc.t1, sg.b, sg.n)
				}
				if sg.t0 != sg.b*B || sg.t1 != (sg.b+sg.n)*B {
					t.Fatalf("plan(%d,%d): run bounds disagree with blocks", tc.t0, tc.t1)
				}
			}
			at = sg.t1
		}
		if at != tc.t1 {
			t.Fatalf("plan(%d,%d): covers up to %d", tc.t0, tc.t1, at)
		}
		// O(log T): at most 2 partials plus 2·log₂(blocks) runs.
		blocks := (tc.t1 - tc.t0) / B
		limit := 2
		for n := 1; n <= blocks; n *= 2 {
			limit += 2
		}
		if len(segs) > limit {
			t.Fatalf("plan(%d,%d): %d segments exceeds O(log T) bound %d", tc.t0, tc.t1, len(segs), limit)
		}
	}
}

// TestStitchDeterministicAcrossCacheStates is the tentpole property: the
// stitched answer for a range is bit-identical no matter which nodes were
// already cached — a cold index, an Advance-warmed index, and an index
// warmed by different overlapping queries all produce the same bytes.
func TestStitchDeterministicAcrossCacheStates(t *testing.T) {
	ctx := context.Background()
	ranges := [][2]int{{0, 48}, {0, 40}, {8, 48}, {3, 45}, {16, 48}, {4, 36}}

	cold := func() *Index { return New(testStream(t, 1), Config{BlockSize: 4}) }

	// Reference answers from a cold index per range.
	want := make([]*core.Decomposition, len(ranges))
	for i, r := range ranges {
		dec, st, err := cold().Query(ctx, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if st.Path != PathStitch {
			t.Fatalf("range [%d,%d): path %s, want stitch", r[0], r[1], st.Path)
		}
		want[i] = dec
	}

	// Advance-warmed index.
	warm := New(testStream(t, 1), Config{BlockSize: 4})
	if err := warm.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	// One shared index answering all ranges in sequence, so later queries
	// run against a cache the earlier ones populated.
	shared := New(testStream(t, 1), Config{BlockSize: 4})
	for i, r := range ranges {
		for name, ix := range map[string]*Index{"warm": warm, "shared": shared} {
			dec, _, err := ix.Query(ctx, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if !sameDec(dec, want[i]) {
				t.Fatalf("%s index: range [%d,%d) differs from cold-index answer", name, r[0], r[1])
			}
		}
	}

	// Second query on the same index (all nodes now cached) — identical.
	dec1, st1, err := shared.Query(ctx, 3, 45)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Builds != 0 || st1.Hits != st1.Nodes {
		t.Fatalf("repeat query built %d nodes, hit %d of %d — want pure cache hits", st1.Builds, st1.Hits, st1.Nodes)
	}
	if !sameDec(dec1, want[3]) {
		t.Fatal("all-hits answer differs from cold answer")
	}
}

func TestStitchDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	ranges := [][2]int{{0, 48}, {2, 46}, {8, 40}}
	base := New(testStream(t, 1), Config{BlockSize: 4})
	for _, workers := range []int{2, 4} {
		ix := New(testStream(t, workers), Config{BlockSize: 4})
		for _, r := range ranges {
			a, _, err := base.Query(ctx, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := ix.Query(ctx, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if !sameDec(a, b) {
				t.Fatalf("workers=%d: range [%d,%d) differs from single-worker answer", workers, r[0], r[1])
			}
		}
	}
}

// TestAppendStability: appending more data must not change the answer for
// ranges inside the old prefix — node summaries are immutable, and the plan
// is absolute, so the exact bytes come back.
func TestAppendStability(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	x := lowRankTensor(rng, 0.05, 3, 12, 10, 48)
	chunks := chunked(x, 16, 16, 16)

	st := core.NewStream(core.Options{Config: core.Config{Ranks: []int{3, 3, 3}, Seed: 9, NoReorder: true}})
	ix := New(st, Config{BlockSize: 4})
	var before *core.Decomposition
	for i, c := range chunks {
		if err := st.Append(c); err != nil {
			t.Fatal(err)
		}
		if err := ix.Advance(ctx); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			dec, stat, err := ix.Query(ctx, 1, 15)
			if err != nil {
				t.Fatal(err)
			}
			if stat.Path != PathStitch {
				t.Fatalf("path %s, want stitch", stat.Path)
			}
			before = dec
		}
	}
	after, _, err := ix.Query(ctx, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDec(before, after) {
		t.Fatal("answer for [1,15) changed after later appends")
	}
	// And it matches a cold index over a stream that saw all appends first.
	coldDec, _, err := New(testStream(t, 1), Config{BlockSize: 4}).Query(ctx, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDec(before, coldDec) {
		t.Fatal("interleaved-append answer differs from all-appends-first answer")
	}
}

// TestFallbackMatchesDecomposeRange: the size-fallback path must be exactly
// the direct solve, byte for byte.
func TestFallbackMatchesDecomposeRange(t *testing.T) {
	ctx := context.Background()
	st := testStream(t, 2)
	ix := New(st, Config{BlockSize: 4}) // MinStitchSpan defaults to 8
	dec, stat, err := ix.Query(ctx, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Path != PathFallbackSize {
		t.Fatalf("path %s, want %s", stat.Path, PathFallbackSize)
	}
	want, err := st.DecomposeRange(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDec(dec, want) {
		t.Fatal("size-fallback answer differs from DecomposeRange")
	}
}

func TestQualityFallback(t *testing.T) {
	ctx := context.Background()
	st := testStream(t, 1)
	// A fit floor no truncated stitch can reach forces the quality path.
	ix := New(st, Config{BlockSize: 4, MinFit: 0.999999999})
	dec, stat, err := ix.Query(ctx, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Path != PathFallbackQuality {
		t.Fatalf("path %s, want %s", stat.Path, PathFallbackQuality)
	}
	if stat.Fit == 0 {
		t.Fatal("quality fallback did not report the rejected stitched fit")
	}
	want, err := st.DecomposeRange(0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !sameDec(dec, want) {
		t.Fatal("quality-fallback answer differs from DecomposeRange")
	}
}

// TestStitchQualityNearDirect: the stitched fit must land close to the full
// ALS fit — the quality contract that makes the stitch path a usable
// answer, not just a fast one.
func TestStitchQualityNearDirect(t *testing.T) {
	ctx := context.Background()
	st := testStream(t, 1)
	ix := New(st, Config{BlockSize: 4})
	for _, r := range [][2]int{{0, 48}, {4, 44}, {8, 40}} {
		dec, stat, err := ix.Query(ctx, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if stat.Path != PathStitch {
			t.Fatalf("path %s, want stitch", stat.Path)
		}
		direct, err := st.DecomposeRange(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if dec.Fit < direct.Fit-0.02 {
			t.Fatalf("range [%d,%d): stitched fit %.4f vs direct %.4f", r[0], r[1], dec.Fit, direct.Fit)
		}
	}
}

// TestFaultInjectionAtStitchBoundaries: an armed core.stitch.node site must
// surface as a typed injected error, poison nothing, and leave the index
// able to answer the same query bit-identically once the fault clears.
func TestFaultInjectionAtStitchBoundaries(t *testing.T) {
	ctx := context.Background()
	want, _, err := New(testStream(t, 1), Config{BlockSize: 4}).Query(ctx, 3, 45)
	if err != nil {
		t.Fatal(err)
	}

	ix := New(testStream(t, 1), Config{BlockSize: 4})
	// Fire on the 3rd summary build (a mid-plan boundary).
	if err := faults.Activate("core.stitch.node", faults.Plan{Skip: 2, Count: 1}); err != nil {
		t.Fatal(err)
	}
	_, _, qerr := ix.Query(ctx, 3, 45)
	faults.Reset()
	if qerr == nil {
		t.Fatal("query succeeded with an armed stitch-boundary fault")
	}
	if !errors.Is(qerr, dterr.ErrInjected) {
		t.Fatalf("fault surfaced as %v, want ErrInjected", qerr)
	}
	dec, stat, err := ix.Query(ctx, 3, 45)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Path != PathStitch {
		t.Fatalf("retry path %s, want stitch", stat.Path)
	}
	if !sameDec(dec, want) {
		t.Fatal("post-fault retry differs from clean answer")
	}
}

// TestAdvanceIncremental: after Advance, a full-stream aligned query is
// answered purely from cache, and per-append node build work is bounded.
func TestAdvanceIncremental(t *testing.T) {
	ctx := context.Background()
	st := testStream(t, 1)
	ix := New(st, Config{BlockSize: 4})
	if err := ix.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	n := ix.NodeCount()
	// 12 blocks: 12 leaves + 6 + 2(span-2 pairs at 8) + 1 = bounded by 2·blocks.
	if n == 0 || n > 24 {
		t.Fatalf("advance built %d nodes for 12 blocks", n)
	}
	if err := ix.Advance(ctx); err != nil {
		t.Fatal(err)
	}
	if ix.NodeCount() != n {
		t.Fatal("repeated Advance rebuilt nodes")
	}
	_, stat, err := ix.Query(ctx, 0, 48)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Builds != 0 {
		t.Fatalf("aligned query after Advance built %d nodes", stat.Builds)
	}
}

func TestQueryInvalidRanges(t *testing.T) {
	ctx := context.Background()
	ix := New(testStream(t, 1), Config{BlockSize: 4})
	for _, r := range [][2]int{{5, 5}, {9, 3}, {-1, 10}, {0, 100}} {
		_, _, err := ix.Query(ctx, r[0], r[1])
		if !errors.Is(err, dterr.ErrInvalidInput) {
			t.Fatalf("Query(%d,%d) = %v, want ErrInvalidInput", r[0], r[1], err)
		}
	}
}

// TestFallbackNoGoroutineLeak: the fallback path (including its metrics
// bracketing) must leave no goroutines behind.
func TestFallbackNoGoroutineLeak(t *testing.T) {
	ctx := context.Background()
	ix := New(testStream(t, 4), Config{BlockSize: 4})
	if _, _, err := ix.Query(ctx, 10, 16); err != nil { // warm pool paths once
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, _, err := ix.Query(ctx, 10, 16); err != nil {
			t.Fatal(err)
		}
	}
	var after int
	for i := 0; i < 50; i++ {
		if after = runtime.NumGoroutine(); after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before {
		t.Fatalf("goroutines grew from %d to %d across fallback queries", before, after)
	}
}

// TestQueryCancellation: a cancelled context aborts the stitch with a typed
// cancellation, and the index remains usable.
func TestQueryCancellation(t *testing.T) {
	ix := New(testStream(t, 1), Config{BlockSize: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ix.Query(ctx, 0, 48)
	if err == nil {
		t.Fatal("query succeeded under a cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v", err)
	}
	if _, _, err := ix.Query(context.Background(), 0, 48); err != nil {
		t.Fatalf("index unusable after cancellation: %v", err)
	}
}
