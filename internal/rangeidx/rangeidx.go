// Package rangeidx maintains a segment tree over a core.Stream's
// preprocessed slice blocks, turning arbitrary time-range decompositions
// into O(log T) stitches of cached node summaries — the TUCKET / Zoom-Tucker
// workload (see PAPERS.md) built on D-Tucker's slice structure.
//
// The tree is laid out over fixed-size blocks of BlockSize time steps with
// absolute dyadic alignment: a node covers blocks [b, b+2^k) only when
// b % 2^k == 0. Because alignment is absolute — independent of the stream's
// current length — a node's span never changes as the stream appends, and
// because the stream is append-only, a node's summary is immutable once
// built: the index never invalidates, it only grows. Advance maintains the
// tree incrementally as the stream appends (amortized O(1) node builds per
// completed block, O(log T) worst case), and Query lazily builds whatever a
// range needs, so an index is correct even if Advance is never called.
//
// A query [t0, t1) decomposes into a canonical plan — a partial head up to
// block alignment, a greedy sequence of maximal aligned dyadic runs, and a
// partial tail — that is a pure function of (t0, t1, BlockSize). Node
// summaries are deterministic pure functions of the slices they cover (see
// core.RangeSummary), and the stitch itself is owner-computes, so the
// stitched result is bit-identical no matter which nodes came from cache,
// how the cache was warmed, or how many workers ran the solve.
package rangeidx

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/dterr"
	"repro/internal/metrics"
)

// Config tunes one Index.
type Config struct {
	// BlockSize is the leaf span in time steps. Zero selects 8. Smaller
	// blocks give finer-grained reuse and more nodes; larger blocks give
	// cheaper trees and longer partial head/tail solves.
	BlockSize int
	// SummaryRank is the retained rank q of node summaries. Zero selects
	// the core default (twice the larger leading target rank, capped at
	// the slice dimensions).
	SummaryRank int
	// MinStitchSpan is the span (in time steps) below which Query skips the
	// stitch path and runs a direct DecomposeRange — short ranges are
	// cheap to solve exactly and would be dominated by partial-block
	// summaries anyway. Zero selects 2·BlockSize; negative disables the
	// size fallback entirely.
	MinStitchSpan int
	// MinFit, when positive, is the quality floor: a stitched result whose
	// fit falls below it is discarded and the query re-answered by a direct
	// DecomposeRange. Zero disables the quality fallback.
	MinFit float64
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 8
	}
	if c.MinStitchSpan == 0 {
		c.MinStitchSpan = 2 * c.BlockSize
	}
	return c
}

// Query answer paths, reported in QueryStats.Path.
const (
	PathStitch          = "stitch"
	PathFallbackSize    = "fallback_size"
	PathFallbackQuality = "fallback_quality"
)

// QueryStats describes how one Query was answered.
type QueryStats struct {
	// Path is one of the Path* constants.
	Path string
	// Nodes is the number of plan segments the range decomposed into
	// (0 on the size-fallback path).
	Nodes int
	// Hits and Builds count node summaries served from the cache versus
	// built (including recursive child builds) while answering this query.
	Hits, Builds int
	// Fit is the stitched fit when a stitch was attempted (also set on the
	// quality-fallback path, where it is the rejected stitched fit).
	Fit float64
}

type span struct{ t0, t1 int }

// Index is the segment tree over one stream. Methods are safe for
// concurrent use; long-running solves serialize on the index mutex, which
// matches the per-session serialization of the serving layer.
type Index struct {
	cfg Config
	st  *core.Stream

	mu    sync.Mutex
	nodes map[span]*core.RangeSummary
	built int // blocks with eagerly maintained dyadic nodes
}

// New creates an index over st. The stream must outlive the index; the
// index holds no slice data of its own, only span summaries.
func New(st *core.Stream, cfg Config) *Index {
	return &Index{cfg: cfg.withDefaults(), st: st, nodes: make(map[span]*core.RangeSummary)}
}

// Config returns the index's resolved configuration.
func (ix *Index) Config() Config { return ix.cfg }

// NodeCount returns the number of cached node summaries.
func (ix *Index) NodeCount() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.nodes)
}

// StorageFloats returns the float64 storage held by cached summaries.
func (ix *Index) StorageFloats() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	total := 0
	for _, s := range ix.nodes {
		total += s.StorageFloats()
	}
	return total
}

// node returns the summary for blocks [b, b+n) — n a power of two, b
// n-aligned — serving it from the cache or building it (leaves from the
// stream, internal nodes by merging their children, recursively). Caller
// holds ix.mu.
func (ix *Index) node(ctx context.Context, b, n int, st *QueryStats) (*core.RangeSummary, error) {
	B := ix.cfg.BlockSize
	sp := span{b * B, (b + n) * B}
	if s, ok := ix.nodes[sp]; ok {
		st.Hits++
		metrics.CountRangeNodeHit()
		return s, nil
	}
	var s *core.RangeSummary
	var err error
	if n == 1 {
		s, err = ix.st.SummarizeSpanContext(ctx, sp.t0, sp.t1, ix.cfg.SummaryRank)
	} else {
		var left, right *core.RangeSummary
		if left, err = ix.node(ctx, b, n/2, st); err != nil {
			return nil, err
		}
		if right, err = ix.node(ctx, b+n/2, n/2, st); err != nil {
			return nil, err
		}
		s, err = core.MergeSummaries(left, right, ix.cfg.SummaryRank)
	}
	if err != nil {
		return nil, err
	}
	st.Builds++
	ix.nodes[sp] = s
	return s, nil
}

// partial returns the summary of an unaligned span, cached by its exact
// bounds (overlapping dashboards re-ask the same window edges, so partials
// hit too). Caller holds ix.mu.
func (ix *Index) partial(ctx context.Context, t0, t1 int, st *QueryStats) (*core.RangeSummary, error) {
	sp := span{t0, t1}
	if s, ok := ix.nodes[sp]; ok {
		st.Hits++
		metrics.CountRangeNodeHit()
		return s, nil
	}
	s, err := ix.st.SummarizeSpanContext(ctx, t0, t1, ix.cfg.SummaryRank)
	if err != nil {
		return nil, err
	}
	st.Builds++
	ix.nodes[sp] = s
	return s, nil
}

// planSeg is one segment of a canonical plan: block-aligned dyadic runs
// carry (b, n); partial head/tail segments have n == 0.
type planSeg struct {
	t0, t1 int
	b, n   int
}

// plan decomposes [t0, t1) into its canonical segments: partial head to
// block alignment, maximal aligned dyadic runs, partial tail. It is a pure
// function of (t0, t1, blockSize) — every query for the same range walks
// the same nodes.
func plan(t0, t1, blockSize int) []planSeg {
	var segs []planSeg
	b0 := (t0 + blockSize - 1) / blockSize
	b1 := t1 / blockSize
	if b0 >= b1 {
		// The range does not cover one whole aligned block.
		return []planSeg{{t0: t0, t1: t1}}
	}
	if t0 < b0*blockSize {
		segs = append(segs, planSeg{t0: t0, t1: b0 * blockSize})
	}
	for b := b0; b < b1; {
		// Largest power-of-two run that keeps b aligned and fits in [b, b1).
		n := 1 << bits.Len(uint(b1-b)) >> 1
		if b != 0 {
			if a := b & -b; a < n {
				n = a
			}
		}
		segs = append(segs, planSeg{t0: b * blockSize, t1: (b + n) * blockSize, b: b, n: n})
		b += n
	}
	if b1*blockSize < t1 {
		segs = append(segs, planSeg{t0: b1 * blockSize, t1: t1})
	}
	return segs
}

// Advance eagerly builds the dyadic nodes completed by appends since the
// last Advance: each newly whole block's leaf, plus every aligned parent
// that block completes. Amortized O(1) node builds per block. Queries do
// not require it — they build lazily — but calling it after each append
// moves summary construction off the query path.
func (ix *Index) Advance(ctx context.Context) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	blocks := ix.st.Len() / ix.cfg.BlockSize
	var st QueryStats
	for b := ix.built; b < blocks; b++ {
		if _, err := ix.node(ctx, b, 1, &st); err != nil {
			return err
		}
		for n := 2; (b+1)%n == 0 && b+1 >= n; n *= 2 {
			if _, err := ix.node(ctx, b+1-n, n, &st); err != nil {
				return err
			}
		}
		ix.built = b + 1
	}
	return nil
}

// Query answers the range decomposition of [t0, t1): it gathers the
// canonical plan's node summaries (cache-first, building lazily) and
// stitches them via core.Stream.StitchRange, falling back to a direct
// DecomposeRange for short spans (Config.MinStitchSpan) or when the
// stitched fit lands below Config.MinFit. The returned stats say which
// path answered and how many nodes it touched.
func (ix *Index) Query(ctx context.Context, t0, t1 int) (*core.Decomposition, QueryStats, error) {
	var st QueryStats
	if t0 >= t1 {
		return nil, st, fmt.Errorf("rangeidx: range [%d,%d) is empty: %w", t0, t1, dterr.ErrInvalidInput)
	}
	if ix.cfg.MinStitchSpan > 0 && t1-t0 < ix.cfg.MinStitchSpan {
		st.Path = PathFallbackSize
		dec, err := ix.fallback(ctx, t0, t1)
		return dec, st, err
	}

	ix.mu.Lock()
	segs := plan(t0, t1, ix.cfg.BlockSize)
	st.Nodes = len(segs)
	parts := make([]*core.RangeSummary, len(segs))
	t0w := metrics.HistStart()
	for i, sg := range segs {
		var s *core.RangeSummary
		var err error
		if sg.n > 0 {
			s, err = ix.node(ctx, sg.b, sg.n, &st)
		} else {
			s, err = ix.partial(ctx, sg.t0, sg.t1, &st)
		}
		if err != nil {
			ix.mu.Unlock()
			return nil, st, err
		}
		parts[i] = s
	}
	ix.mu.Unlock()

	dec, err := ix.st.StitchRangeContext(ctx, t0, t1, parts)
	if err != nil {
		return nil, st, err
	}
	st.Fit = dec.Fit
	if ix.cfg.MinFit > 0 && dec.Fit < ix.cfg.MinFit {
		st.Path = PathFallbackQuality
		dec, err := ix.fallback(ctx, t0, t1)
		return dec, st, err
	}
	st.Path = PathStitch
	metrics.ObserveSince(metrics.HistRangeStitch(st.Nodes), t0w)
	metrics.CountRangeStitch()
	return dec, st, nil
}

// fallback runs the direct solve, instrumented as a range fallback. Its
// result is exactly DecomposeRange's — byte-identical to calling the
// stream directly.
func (ix *Index) fallback(ctx context.Context, t0, t1 int) (*core.Decomposition, error) {
	t0w := metrics.HistStart()
	dec, err := ix.st.DecomposeRangeContext(ctx, t0, t1)
	if err != nil {
		return nil, err
	}
	metrics.ObserveSince(metrics.HistRangeFallback, t0w)
	metrics.CountRangeFallback()
	return dec, nil
}
