package tensor

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dterr"
)

// tenHeader serializes a .ten header with arbitrary (possibly corrupt)
// order and shape entries, followed by payload data bytes.
func tenHeader(order uint32, shape []uint64, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(tenMagic[:])
	binary.Write(&buf, binary.LittleEndian, order)
	for _, s := range shape {
		binary.Write(&buf, binary.LittleEndian, s)
	}
	buf.Write(payload)
	return buf.Bytes()
}

func TestReadFromRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 4, 3, 5)
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !y.EqualApprox(x, 0) {
		t.Fatal("round trip changed the tensor")
	}
}

func TestReadFromRejectsOverflowingShapeProduct(t *testing.T) {
	// Each entry passes the per-dimension guard, but the product overflows
	// int64 (2^30 · 2^30 · 2^30 = 2^90): the checked multiplication must
	// reject it instead of wrapping past the element limit.
	d := uint64(1) << 30
	raw := tenHeader(3, []uint64{d, d, d}, nil)
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("overflowing shape product accepted")
	} else if !strings.Contains(err.Error(), "element limit") {
		t.Fatalf("overflow rejected with unexpected error: %v", err)
	}

	// A wrap that lands back on a tiny positive count is the classic
	// exploit shape; 2^31 · 2^33 ≡ 0 (mod 2^64) steps over every naive
	// int64 check that only looks at the final product.
	raw = tenHeader(4, []uint64{1 << 31, 1 << 31, 1 << 31, 8}, nil)
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrapping shape product accepted")
	}
}

func TestReadFromRejectsCorruptHeaders(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"zero order", tenHeader(0, nil, nil)},
		{"huge order", tenHeader(1 << 20, nil, nil)},
		{"zero dimension", tenHeader(2, []uint64{4, 0}, nil)},
		{"oversized dimension", tenHeader(1, []uint64{1 << 40}, nil)},
		{"bad magic", []byte("NOPE\x01\x00\x00\x00")},
		{"truncated shape", tenHeader(3, []uint64{2, 2}, nil)},
	}
	for _, tc := range cases {
		if _, err := ReadFrom(bytes.NewReader(tc.raw)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadFromRejectsNonFiniteData(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		payload := make([]byte, 4*8)
		binary.LittleEndian.PutUint64(payload[2*8:], math.Float64bits(v))
		raw := tenHeader(2, []uint64{2, 2}, payload)
		_, err := ReadFrom(bytes.NewReader(raw))
		if err == nil {
			t.Fatalf("data containing %v accepted", v)
		}
		if !errors.Is(err, dterr.ErrNonFiniteInput) {
			t.Fatalf("%v rejected with %v, want ErrNonFiniteInput", v, err)
		}
		if !strings.Contains(err.Error(), "element 2") {
			t.Fatalf("error %q does not locate the bad element", err)
		}
	}
}

func TestReadFromRejectsTruncatedData(t *testing.T) {
	// Header promises 2×3 = 6 elements; only 4 are present.
	payload := make([]byte, 4*8)
	raw := tenHeader(2, []uint64{2, 3}, payload)
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated data accepted")
	} else if !strings.Contains(err.Error(), "reading data element") {
		t.Fatalf("truncation rejected with unexpected error: %v", err)
	}
}

// halfWriter accepts only half of every buffer while claiming success —
// the io.Writer contract violation WriteTo must convert to an error
// instead of silently dropping bytes.
type halfWriter struct{}

func (halfWriter) Write(p []byte) (int, error) { return len(p) / 2, nil }

func TestWriteToReportsShortWrite(t *testing.T) {
	x := New(4, 4, 4)
	if _, err := x.WriteTo(halfWriter{}); err == nil {
		t.Fatal("short write went unreported")
	}
}

func TestWriteToCountsBytes(t *testing.T) {
	x := New(3, 2)
	var buf bytes.Buffer
	n, err := x.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if want := int64(4 + 4 + 2*8 + 6*8); n != want {
		t.Fatalf("wrote %d bytes for a 3×2 tensor, want %d", n, want)
	}
}
