// Package tensor implements dense N-order tensor algebra: mode-n
// matricization (unfolding) and its inverse, n-mode (tensor × matrix)
// products, frontal-slice access, mode permutation, and a compact binary
// serialization format.
//
// Storage follows the convention of Kolda & Bader ("Tensor Decompositions
// and Applications", SIAM Rev. 2009): the first index varies fastest, the
// generalization of column-major order. Consequently mode-1 fibers are
// contiguous and the I1×I2 frontal slices used by D-Tucker's approximation
// phase occupy contiguous blocks of the backing array.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// Dense is a dense tensor of float64 values with first-index-fastest
// (column-major style) layout.
type Dense struct {
	shape  []int
	stride []int
	data   []float64
}

// New returns a zeroed tensor with the given shape.
func New(shape ...int) *Dense {
	total := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		total *= s
	}
	return &Dense{
		shape:  append([]int(nil), shape...),
		stride: strides(shape),
		data:   make([]float64, total),
	}
}

// NewFromData wraps data (first-index-fastest, length ∏shape) without
// copying.
func NewFromData(data []float64, shape ...int) *Dense {
	total := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		total *= s
	}
	if len(data) != total {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Dense{
		shape:  append([]int(nil), shape...),
		stride: strides(shape),
		data:   data,
	}
}

func strides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for k, s := range shape {
		st[k] = acc
		acc *= s
	}
	return st
}

// Order returns the number of modes.
func (t *Dense) Order() int { return len(t.shape) }

// Shape returns a copy of the dimensionalities.
func (t *Dense) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the dimensionality of mode n (0-based).
func (t *Dense) Dim(n int) int {
	t.checkMode(n)
	return t.shape[n]
}

// Len returns the total number of elements.
func (t *Dense) Len() int { return len(t.data) }

// Data returns the backing slice; mutating it mutates the tensor.
func (t *Dense) Data() []float64 { return t.data }

func (t *Dense) checkMode(n int) {
	if n < 0 || n >= len(t.shape) {
		panic(fmt.Sprintf("tensor: mode %d out of range for order-%d tensor", n, len(t.shape)))
	}
}

// offset converts a multi-index to a linear offset.
func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v for order-%d tensor", idx, len(t.shape)))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= t.shape[k] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += i * t.stride[k]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Dense) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Dense) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	out := New(t.shape...)
	copy(out.data, t.data)
	return out
}

// Zero sets every element to zero.
func (t *Dense) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// ScaleInPlace multiplies every element by alpha.
func (t *Dense) ScaleInPlace(alpha float64) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// AddInPlace accumulates b into t; shapes must match.
func (t *Dense) AddInPlace(b *Dense) {
	t.checkSameShape(b, "AddInPlace")
	for i, v := range b.data {
		t.data[i] += v
	}
}

// Sub returns t − b as a new tensor.
func (t *Dense) Sub(b *Dense) *Dense {
	t.checkSameShape(b, "Sub")
	out := t.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

func (t *Dense) checkSameShape(b *Dense, op string) {
	if !sameShape(t.shape, b.shape) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, b.shape))
	}
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Norm returns the Frobenius norm.
func (t *Dense) Norm() float64 {
	scale, ssq := 0.0, 1.0
	for _, v := range t.data {
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// IsFinite reports whether every element is finite (no NaN, no ±Inf).
func (t *Dense) IsFinite() bool {
	for _, v := range t.data {
		// v != v catches NaN; IsInf catches both infinities.
		if v != v || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element.
func (t *Dense) MaxAbs() float64 {
	best := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}

// EqualApprox reports element-wise equality within tol, requiring equal
// shapes.
func (t *Dense) EqualApprox(b *Dense, tol float64) bool {
	if !sameShape(t.shape, b.shape) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// RandN fills a new tensor of the given shape with i.i.d. standard normals.
func RandN(rng *rand.Rand, shape ...int) *Dense {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64()
	}
	return t
}

// NumSlices returns the number of I1×I2 frontal slices, i.e. the product of
// the dimensionalities of modes 3..N. Order-2 tensors have exactly one
// slice.
func (t *Dense) NumSlices() int {
	if len(t.shape) < 2 {
		panic("tensor: NumSlices requires order ≥ 2")
	}
	n := 1
	for _, s := range t.shape[2:] {
		n *= s
	}
	return n
}

// FrontalSlice extracts slice l (0 ≤ l < NumSlices) as an I1×I2 matrix.
// Slice l corresponds to fixing modes 3..N at the multi-index returned by
// SliceIndex(l). The data is copied into row-major order.
func (t *Dense) FrontalSlice(l int) *mat.Dense {
	i1, i2 := t.shape[0], t.shape[1]
	block := t.sliceBlock(l)
	out := mat.New(i1, i2)
	// block is column-major I1×I2 (first index fastest): a tiled
	// transpose-copy keeps both operands cache-resident.
	gatherTiled(out.Data(), block, 0, i1, i2, 1, i1)
	return out
}

// SetFrontalSlice overwrites slice l with the contents of m (I1×I2).
func (t *Dense) SetFrontalSlice(l int, m *mat.Dense) {
	i1, i2 := t.shape[0], t.shape[1]
	if m.Rows() != i1 || m.Cols() != i2 {
		panic(fmt.Sprintf("tensor: SetFrontalSlice with %d×%d matrix, want %d×%d", m.Rows(), m.Cols(), i1, i2))
	}
	block := t.sliceBlock(l)
	md := m.Data()
	for j := 0; j < i2; j++ {
		col := block[j*i1 : (j+1)*i1]
		for i := range col {
			col[i] = md[i*i2+j]
		}
	}
}

func (t *Dense) sliceBlock(l int) []float64 {
	if len(t.shape) < 2 {
		panic("tensor: frontal slices require order ≥ 2")
	}
	ns := t.NumSlices()
	if l < 0 || l >= ns {
		panic(fmt.Sprintf("tensor: slice %d out of range (have %d)", l, ns))
	}
	area := t.shape[0] * t.shape[1]
	return t.data[l*area : (l+1)*area]
}

// SliceIndex decodes flat slice index l into the multi-index of modes 3..N
// (first of those modes fastest), matching FrontalSlice's enumeration.
func (t *Dense) SliceIndex(l int) []int {
	rest := t.shape[2:]
	idx := make([]int, len(rest))
	for k, s := range rest {
		idx[k] = l % s
		l /= s
	}
	return idx
}

// Permute returns a new tensor with modes reordered so that output mode k
// is input mode perm[k]. perm must be a permutation of 0..order-1.
func (t *Dense) Permute(perm []int) *Dense {
	n := len(t.shape)
	if len(perm) != n {
		panic(fmt.Sprintf("tensor: Permute with %d entries for order-%d tensor", len(perm), n))
	}
	seen := make([]bool, n)
	newShape := make([]int, n)
	for k, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
		newShape[k] = t.shape[p]
	}
	out := New(newShape...)
	// Walk the output linearly, tracking its multi-index incrementally and
	// maintaining the corresponding input offset.
	idx := make([]int, n)
	inOff := 0
	for p := range out.data {
		out.data[p] = t.data[inOff]
		for k := 0; k < n; k++ {
			idx[k]++
			inOff += t.stride[perm[k]]
			if idx[k] < newShape[k] {
				break
			}
			inOff -= idx[k] * t.stride[perm[k]]
			idx[k] = 0
		}
	}
	return out
}

// Reshape reinterprets the tensor's data with a new shape of equal total
// size, sharing storage.
func (t *Dense) Reshape(shape ...int) *Dense {
	total := 1
	for _, s := range shape {
		total *= s
	}
	if total != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, len(t.data)))
	}
	return NewFromData(t.data, shape...)
}
