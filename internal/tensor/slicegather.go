package tensor

import (
	"fmt"

	"repro/internal/mat"
)

// PermutedFrontalSlice returns frontal slice l of the mode-permuted tensor
// t.Permute(perm) WITHOUT materializing the permutation: the slice is
// gathered straight from t's storage with a cache-tiled strided copy.
//
// This is the hot path of D-Tucker's approximation phase: for a tensor
// whose two largest modes are not already leading, a materialized Permute
// costs a full out-of-cache pass over the tensor before slicing even
// begins; the direct gather touches each element exactly once.
func (t *Dense) PermutedFrontalSlice(perm []int, l int) *mat.Dense {
	n := len(t.shape)
	if len(perm) != n {
		panic(fmt.Sprintf("tensor: PermutedFrontalSlice with %d-entry permutation for order-%d tensor", len(perm), n))
	}
	if n < 2 {
		panic("tensor: PermutedFrontalSlice requires order ≥ 2")
	}
	rows := t.shape[perm[0]]
	cols := t.shape[perm[1]]
	rs := t.stride[perm[0]]
	cs := t.stride[perm[1]]

	nSlices := 1
	for _, p := range perm[2:] {
		nSlices *= t.shape[p]
	}
	if l < 0 || l >= nSlices {
		panic(fmt.Sprintf("tensor: slice %d out of range (have %d)", l, nSlices))
	}
	// Decode l over the permuted trailing modes (first of them fastest).
	base := 0
	rest := l
	for _, p := range perm[2:] {
		d := t.shape[p]
		base += (rest % d) * t.stride[p]
		rest /= d
	}

	out := mat.New(rows, cols)
	gatherTiled(out.Data(), t.data, base, rows, cols, rs, cs)
	return out
}

// gatherTiled copies the rows×cols strided plane starting at base into the
// row-major dst. When the source column stride is 1 the inner loop is a
// straight copy; otherwise the plane is walked in tiles so the strided
// operand stays cache-resident.
func gatherTiled(dst, src []float64, base, rows, cols, rs, cs int) {
	if cs == 1 {
		for i := 0; i < rows; i++ {
			copy(dst[i*cols:(i+1)*cols], src[base+i*rs:base+i*rs+cols])
		}
		return
	}
	if rs == 1 {
		// Contiguous source columns: walk column-major on the source and
		// scatter into dst in tiles to bound the write working set.
		const tile = 64
		for ib := 0; ib < rows; ib += tile {
			iend := ib + tile
			if iend > rows {
				iend = rows
			}
			for j := 0; j < cols; j++ {
				col := src[base+j*cs+ib : base+j*cs+iend]
				for k, v := range col {
					dst[(ib+k)*cols+j] = v
				}
			}
		}
		return
	}
	const tile = 64
	for ib := 0; ib < rows; ib += tile {
		iend := ib + tile
		if iend > rows {
			iend = rows
		}
		for jb := 0; jb < cols; jb += tile {
			jend := jb + tile
			if jend > cols {
				jend = cols
			}
			for i := ib; i < iend; i++ {
				srow := base + i*rs
				drow := dst[i*cols : (i+1)*cols]
				for j := jb; j < jend; j++ {
					drow[j] = src[srow+j*cs]
				}
			}
		}
	}
}
