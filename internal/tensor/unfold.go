package tensor

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/pool"
)

// Unfold returns the mode-n matricization X_(n) of the tensor: an
// I_n × ∏_{k≠n} I_k matrix whose columns enumerate the remaining modes with
// lower modes varying fastest (Kolda & Bader's convention).
func (t *Dense) Unfold(n int) *mat.Dense {
	t.checkMode(n)
	rows := t.shape[n]
	cols := len(t.data) / rows
	out := mat.New(rows, cols)
	od := out.Data()

	if n == 0 {
		// Mode-1 fibers are contiguous: column c of the unfolding is the
		// contiguous block data[c*rows:(c+1)*rows].
		for c := 0; c < cols; c++ {
			block := t.data[c*rows : (c+1)*rows]
			for i, v := range block {
				od[i*cols+c] = v
			}
		}
		return out
	}
	if n == len(t.shape)-1 {
		// The last mode is the slowest-varying index, so row i of the
		// unfolding is the contiguous block data[i*cols:(i+1)*cols].
		copy(od, t.data)
		return out
	}

	// General case: walk the tensor linearly (first index fastest),
	// tracking the column index of the unfolding incrementally.
	order := len(t.shape)
	idx := make([]int, order)
	// colStride[k] is the contribution of idx[k] to the unfolding column,
	// for k ≠ n, with lower ks fastest.
	colStride := make([]int, order)
	acc := 1
	for k := 0; k < order; k++ {
		if k == n {
			continue
		}
		colStride[k] = acc
		acc *= t.shape[k]
	}
	col := 0
	row := 0
	for _, v := range t.data {
		od[row*cols+col] = v
		for k := 0; k < order; k++ {
			idx[k]++
			if k == n {
				row++
			} else {
				col += colStride[k]
			}
			if idx[k] < t.shape[k] {
				break
			}
			if k == n {
				row = 0
			} else {
				col -= idx[k] * colStride[k]
			}
			idx[k] = 0
		}
	}
	return out
}

// Fold is the inverse of Unfold: it rebuilds a tensor of the given shape
// from its mode-n matricization.
func Fold(m *mat.Dense, n int, shape []int) *Dense {
	if n < 0 || n >= len(shape) {
		panic(fmt.Sprintf("tensor: Fold mode %d for shape %v", n, shape))
	}
	t := New(shape...)
	rows := shape[n]
	cols := len(t.data) / rows
	if m.Rows() != rows || m.Cols() != cols {
		panic(fmt.Sprintf("tensor: Fold with %d×%d matrix, want %d×%d for mode %d of %v",
			m.Rows(), m.Cols(), rows, cols, n, shape))
	}
	md := m.Data()

	if n == 0 {
		for c := 0; c < cols; c++ {
			block := t.data[c*rows : (c+1)*rows]
			for i := range block {
				block[i] = md[i*cols+c]
			}
		}
		return t
	}
	if n == len(shape)-1 {
		copy(t.data, md)
		return t
	}

	order := len(shape)
	idx := make([]int, order)
	colStride := make([]int, order)
	acc := 1
	for k := 0; k < order; k++ {
		if k == n {
			continue
		}
		colStride[k] = acc
		acc *= shape[k]
	}
	col, row := 0, 0
	for p := range t.data {
		t.data[p] = md[row*cols+col]
		for k := 0; k < order; k++ {
			idx[k]++
			if k == n {
				row++
			} else {
				col += colStride[k]
			}
			if idx[k] < shape[k] {
				break
			}
			if k == n {
				row = 0
			} else {
				col -= idx[k] * colStride[k]
			}
			idx[k] = 0
		}
	}
	return t
}

// ModeProduct returns the n-mode product X ×_n M for an r×I_n matrix M:
// the result has shape equal to X's with mode n replaced by r, and
// Y_(n) = M · X_(n).
func (t *Dense) ModeProduct(m *mat.Dense, n int) *Dense {
	t.checkMode(n)
	if m.Cols() != t.shape[n] {
		panic(fmt.Sprintf("tensor: ModeProduct mode-%d dimensionality %d, matrix is %d×%d",
			n, t.shape[n], m.Rows(), m.Cols()))
	}
	unf := t.Unfold(n)
	prod := mat.Mul(m, unf)
	outShape := t.Shape()
	outShape[n] = m.Rows()
	return Fold(prod, n, outShape)
}

// ModeProductP is ModeProduct with the multiply parallelized on p (nil p
// runs single-threaded). Each output row of the unfolded product is owned
// by one worker, so the result is bit-identical for every pool size.
func (t *Dense) ModeProductP(m *mat.Dense, n int, p *pool.Pool) *Dense {
	t.checkMode(n)
	if m.Cols() != t.shape[n] {
		panic(fmt.Sprintf("tensor: ModeProduct mode-%d dimensionality %d, matrix is %d×%d",
			n, t.shape[n], m.Rows(), m.Cols()))
	}
	unf := t.Unfold(n)
	prod := mat.MulP(m, unf, p)
	outShape := t.Shape()
	outShape[n] = m.Rows()
	return Fold(prod, n, outShape)
}

// MultiModeProduct applies ms[k] via n-mode product on every mode k where
// ms[k] is non-nil, in ascending mode order. Each ms[k] must have
// ms[k].Cols() == I_k at application time.
func (t *Dense) MultiModeProduct(ms ...*mat.Dense) *Dense {
	if len(ms) != len(t.shape) {
		panic(fmt.Sprintf("tensor: MultiModeProduct with %d matrices for order-%d tensor", len(ms), len(t.shape)))
	}
	out := t
	for k, m := range ms {
		if m == nil {
			continue
		}
		out = out.ModeProduct(m, k)
	}
	return out
}

// TTMAllTransposed computes X ×_1 A(1)ᵀ … ×_N A(N)ᵀ skipping mode `skip`
// (pass skip = -1 to project every mode). This is the workhorse of HOOI:
// projecting the tensor into the factor subspaces. Modes are applied in
// increasing size-reduction order is unnecessary here because every factor
// shrinks its mode to the small rank; ascending order keeps intermediates
// minimal after the first product.
func (t *Dense) TTMAllTransposed(factors []*mat.Dense, skip int) *Dense {
	if len(factors) != len(t.shape) {
		panic(fmt.Sprintf("tensor: TTMAllTransposed with %d factors for order-%d tensor", len(factors), len(t.shape)))
	}
	out := t
	for k, f := range factors {
		if k == skip || f == nil {
			continue
		}
		out = out.ModeProduct(f.T(), k)
	}
	return out
}
