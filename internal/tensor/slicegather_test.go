package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermutedFrontalSliceMatchesPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		shape []int
		perm  []int
	}{
		{[]int{4, 5, 6}, []int{0, 1, 2}},
		{[]int{4, 5, 6}, []int{2, 0, 1}},
		{[]int{4, 5, 6}, []int{1, 2, 0}},
		{[]int{3, 4, 5, 2}, []int{3, 1, 0, 2}},
		{[]int{7, 6}, []int{1, 0}},
		{[]int{2, 3, 4, 2, 2}, []int{4, 2, 0, 1, 3}},
	} {
		x := RandN(rng, tc.shape...)
		xp := x.Permute(tc.perm)
		for l := 0; l < xp.NumSlices(); l++ {
			got := x.PermutedFrontalSlice(tc.perm, l)
			want := xp.FrontalSlice(l)
			if !got.EqualApprox(want, 0) {
				t.Fatalf("shape %v perm %v slice %d mismatch", tc.shape, tc.perm, l)
			}
		}
	}
}

func TestPermutedFrontalSlicePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 2 + rng.Intn(3)
		shape := make([]int, order)
		for i := range shape {
			shape[i] = 1 + rng.Intn(5)
		}
		perm := rng.Perm(order)
		x := RandN(rng, shape...)
		xp := x.Permute(perm)
		l := rng.Intn(xp.NumSlices())
		return x.PermutedFrontalSlice(perm, l).EqualApprox(xp.FrontalSlice(l), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutedFrontalSliceLargeTiled(t *testing.T) {
	// Exercise the tiled strided-strided path with dimensions beyond one
	// tile.
	rng := rand.New(rand.NewSource(2))
	x := RandN(rng, 70, 90, 3)
	perm := []int{1, 2, 0} // rows stride ≠ 1 and cols stride ≠ 1 w.r.t. memory
	xp := x.Permute(perm)
	for l := 0; l < xp.NumSlices(); l++ {
		if !x.PermutedFrontalSlice(perm, l).EqualApprox(xp.FrontalSlice(l), 0) {
			t.Fatalf("tiled path mismatch at slice %d", l)
		}
	}
}

func TestPermutedFrontalSliceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandN(rng, 3, 4, 5)
	for _, fn := range []func(){
		func() { x.PermutedFrontalSlice([]int{0, 1}, 0) },
		func() { x.PermutedFrontalSlice([]int{0, 1, 2}, -1) },
		func() { x.PermutedFrontalSlice([]int{0, 1, 2}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid PermutedFrontalSlice call did not panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkFrontalSliceLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 256, 192, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < 8; l++ {
			x.FrontalSlice(l)
		}
	}
}

func BenchmarkPermutedFrontalSlice(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 192, 144, 16)
	perm := []int{2, 0, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < 16; l++ {
			x.PermutedFrontalSlice(perm, l)
		}
	}
}
