package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(3, 4, 5)
	if x.Order() != 3 {
		t.Fatalf("Order = %d", x.Order())
	}
	if x.Len() != 60 {
		t.Fatalf("Len = %d", x.Len())
	}
	if x.Dim(1) != 4 {
		t.Fatalf("Dim(1) = %d", x.Dim(1))
	}
	sh := x.Shape()
	sh[0] = 99
	if x.Dim(0) != 3 {
		t.Fatal("Shape() returned aliased slice")
	}
}

func TestNewInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dim did not panic")
		}
	}()
	New(3, 0, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Fatalf("At = %g", got)
	}
	if got := x.At(0, 0, 0); got != 0 {
		t.Fatalf("At(0,0,0) = %g", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	x.At(0, 2)
}

func TestLayoutFirstIndexFastest(t *testing.T) {
	x := New(2, 3)
	x.Set(1, 1, 0) // second element in memory
	if x.Data()[1] != 1 {
		t.Fatalf("layout is not first-index-fastest: %v", x.Data())
	}
	x.Set(2, 0, 1)
	if x.Data()[2] != 2 {
		t.Fatalf("layout is not first-index-fastest: %v", x.Data())
	}
}

func TestCloneSubAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 3, 4, 2)
	y := x.Clone()
	diff := x.Sub(y)
	if diff.Norm() != 0 {
		t.Fatal("x - clone(x) != 0")
	}
	y.AddInPlace(x)
	want := x.Clone()
	want.ScaleInPlace(2)
	if !y.EqualApprox(want, 1e-14) {
		t.Fatal("AddInPlace/ScaleInPlace mismatch")
	}
}

func TestNormMatchesManual(t *testing.T) {
	x := New(2, 2)
	x.Set(3, 0, 0)
	x.Set(4, 1, 1)
	if got := x.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %g, want 5", got)
	}
}

func TestUnfoldMode0Known(t *testing.T) {
	// X(i,j) over 2×3 with first-index-fastest data [1 2 3 4 5 6]:
	// X = [[1,3,5],[2,4,6]]; mode-0 unfolding equals X itself.
	x := NewFromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	u := x.Unfold(0)
	want := mat.FromRows([][]float64{{1, 3, 5}, {2, 4, 6}})
	if !u.EqualApprox(want, 0) {
		t.Fatalf("Unfold(0) = %v", u)
	}
}

func TestUnfoldMode1Known(t *testing.T) {
	x := NewFromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	u := x.Unfold(1)
	// Mode-1 unfolding: rows index j, columns index i.
	want := mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !u.EqualApprox(want, 0) {
		t.Fatalf("Unfold(1) = %v", u)
	}
}

func TestUnfoldKolda3Way(t *testing.T) {
	// The canonical example from Kolda & Bader: X ∈ R^{3×4×2} with
	// X(:,:,1) = [1 4 7 10; 2 5 8 11; 3 6 9 12],
	// X(:,:,2) = [13 16 19 22; 14 17 20 23; 15 18 21 24].
	data := make([]float64, 24)
	for i := range data {
		data[i] = float64(i + 1)
	}
	x := NewFromData(data, 3, 4, 2)
	u0 := x.Unfold(0)
	if u0.Rows() != 3 || u0.Cols() != 8 {
		t.Fatalf("U0 dims %d×%d", u0.Rows(), u0.Cols())
	}
	if u0.At(0, 0) != 1 || u0.At(0, 3) != 10 || u0.At(0, 4) != 13 || u0.At(2, 7) != 24 {
		t.Fatalf("U0 wrong: %v", u0)
	}
	u1 := x.Unfold(1)
	// Kolda: X_(2) row j enumerates (i,k) with i fastest:
	// first row: 1 2 3 13 14 15.
	wantRow := []float64{1, 2, 3, 13, 14, 15}
	for c, w := range wantRow {
		if u1.At(0, c) != w {
			t.Fatalf("U1 row 0 = %v", u1.Row(0))
		}
	}
	u2 := x.Unfold(2)
	// X_(3) row k enumerates (i,j) with i fastest: row 0 = 1..12.
	for c := 0; c < 12; c++ {
		if u2.At(0, c) != float64(c+1) {
			t.Fatalf("U2 row 0 = %v", u2.Row(0))
		}
	}
}

func TestFoldInvertsUnfold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][]int{{4, 5}, {3, 4, 5}, {2, 3, 4, 5}, {6, 1, 3}} {
		x := RandN(rng, shape...)
		for n := 0; n < len(shape); n++ {
			back := Fold(x.Unfold(n), n, shape)
			if !back.EqualApprox(x, 0) {
				t.Fatalf("Fold(Unfold(%d)) != X for shape %v", n, shape)
			}
		}
	}
}

func TestFoldUnfoldProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shape := []int{1 + rng.Intn(4), 1 + rng.Intn(4), 1 + rng.Intn(4)}
		x := RandN(rng, shape...)
		n := rng.Intn(3)
		return Fold(x.Unfold(n), n, shape).EqualApprox(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnfoldNormInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandN(rng, 3, 4, 5)
	for n := 0; n < 3; n++ {
		if math.Abs(x.Unfold(n).Norm()-x.Norm()) > 1e-12 {
			t.Fatalf("unfolding changed the norm for mode %d", n)
		}
	}
}

func TestModeProductIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := RandN(rng, 3, 4, 5)
	for n := 0; n < 3; n++ {
		y := x.ModeProduct(mat.Identity(x.Dim(n)), n)
		if !y.EqualApprox(x, 0) {
			t.Fatalf("X ×_%d I != X", n)
		}
	}
}

func TestModeProductAgainstDirectSum(t *testing.T) {
	// Y(j, i2, i3) = Σ_i M(j,i) X(i,i2,i3), checked element-wise.
	rng := rand.New(rand.NewSource(5))
	x := RandN(rng, 3, 4, 2)
	m := mat.RandN(5, 3, rng)
	y := x.ModeProduct(m, 0)
	if got := y.Shape(); got[0] != 5 || got[1] != 4 || got[2] != 2 {
		t.Fatalf("shape = %v", got)
	}
	for j := 0; j < 5; j++ {
		for i2 := 0; i2 < 4; i2++ {
			for i3 := 0; i3 < 2; i3++ {
				want := 0.0
				for i := 0; i < 3; i++ {
					want += m.At(j, i) * x.At(i, i2, i3)
				}
				if math.Abs(y.At(j, i2, i3)-want) > 1e-12 {
					t.Fatalf("ModeProduct mismatch at (%d,%d,%d)", j, i2, i3)
				}
			}
		}
	}
}

func TestModeProductCommutesAcrossModes(t *testing.T) {
	// (X ×_1 A) ×_2 B == (X ×_2 B) ×_1 A for distinct modes.
	rng := rand.New(rand.NewSource(6))
	x := RandN(rng, 3, 4, 5)
	a := mat.RandN(2, 3, rng)
	b := mat.RandN(6, 4, rng)
	lhs := x.ModeProduct(a, 0).ModeProduct(b, 1)
	rhs := x.ModeProduct(b, 1).ModeProduct(a, 0)
	if !lhs.EqualApprox(rhs, 1e-11) {
		t.Fatal("mode products across distinct modes do not commute")
	}
}

func TestModeProductSameModeComposes(t *testing.T) {
	// (X ×_n A) ×_n B == X ×_n (B·A).
	rng := rand.New(rand.NewSource(7))
	x := RandN(rng, 3, 4, 2)
	a := mat.RandN(5, 3, rng)
	b := mat.RandN(2, 5, rng)
	lhs := x.ModeProduct(a, 0).ModeProduct(b, 0)
	rhs := x.ModeProduct(mat.Mul(b, a), 0)
	if !lhs.EqualApprox(rhs, 1e-11) {
		t.Fatal("same-mode product composition violated")
	}
}

func TestModeProductMatchesKroneckerIdentity(t *testing.T) {
	// Y = X ×_1 A ⇒ Y_(1) = A·X_(1); and for the full Tucker identity,
	// (G ×_1 A ×_2 B ×_3 C)_(1) = A·G_(1)·(C⊗B)ᵀ.
	rng := rand.New(rand.NewSource(8))
	g := RandN(rng, 2, 3, 4)
	a := mat.RandN(5, 2, rng)
	b := mat.RandN(6, 3, rng)
	c := mat.RandN(7, 4, rng)
	full := g.ModeProduct(a, 0).ModeProduct(b, 1).ModeProduct(c, 2)
	lhs := full.Unfold(0)
	rhs := mat.Mul(mat.Mul(a, g.Unfold(0)), mat.Kronecker(c, b).T())
	if !lhs.EqualApprox(rhs, 1e-10) {
		t.Fatal("Tucker unfolding identity violated")
	}
}

func TestMultiModeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := RandN(rng, 3, 4, 5)
	a := mat.RandN(2, 3, rng)
	c := mat.RandN(2, 5, rng)
	got := x.MultiModeProduct(a, nil, c)
	want := x.ModeProduct(a, 0).ModeProduct(c, 2)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MultiModeProduct mismatch")
	}
}

func TestTTMAllTransposedSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := RandN(rng, 4, 5, 6)
	fs := []*mat.Dense{
		mat.RandN(4, 2, rng),
		mat.RandN(5, 2, rng),
		mat.RandN(6, 2, rng),
	}
	got := x.TTMAllTransposed(fs, 1)
	want := x.ModeProduct(fs[0].T(), 0).ModeProduct(fs[2].T(), 2)
	if !got.EqualApprox(want, 1e-11) {
		t.Fatal("TTMAllTransposed skip mismatch")
	}
}

func TestFrontalSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandN(rng, 3, 4, 5, 2)
	if x.NumSlices() != 10 {
		t.Fatalf("NumSlices = %d", x.NumSlices())
	}
	for l := 0; l < x.NumSlices(); l++ {
		s := x.FrontalSlice(l)
		idx := x.SliceIndex(l)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				if s.At(i, j) != x.At(i, j, idx[0], idx[1]) {
					t.Fatalf("slice %d mismatch at (%d,%d)", l, i, j)
				}
			}
		}
	}
	// Round-trip through SetFrontalSlice.
	y := New(3, 4, 5, 2)
	for l := 0; l < x.NumSlices(); l++ {
		y.SetFrontalSlice(l, x.FrontalSlice(l))
	}
	if !y.EqualApprox(x, 0) {
		t.Fatal("SetFrontalSlice round-trip failed")
	}
}

func TestSliceIndexEnumeration(t *testing.T) {
	x := New(2, 2, 3, 2)
	wants := [][]int{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}
	for l, want := range wants {
		got := x.SliceIndex(l)
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("SliceIndex(%d) = %v, want %v", l, got, want)
		}
	}
}

func TestFrontalSliceMatrixCase(t *testing.T) {
	x := NewFromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.NumSlices() != 1 {
		t.Fatalf("matrix NumSlices = %d", x.NumSlices())
	}
	s := x.FrontalSlice(0)
	if !s.EqualApprox(x.Unfold(0), 0) {
		t.Fatal("matrix frontal slice != itself")
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := RandN(rng, 3, 4, 5)
	perm := []int{2, 0, 1}
	y := x.Permute(perm)
	if sh := y.Shape(); sh[0] != 5 || sh[1] != 3 || sh[2] != 4 {
		t.Fatalf("permuted shape %v", sh)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				if y.At(k, i, j) != x.At(i, j, k) {
					t.Fatalf("Permute value mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	// Inverse permutation restores the original.
	inv := []int{1, 2, 0}
	if !y.Permute(inv).EqualApprox(x, 0) {
		t.Fatal("inverse permutation does not restore")
	}
}

func TestPermuteInvalidPanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid permutation did not panic")
		}
	}()
	x.Permute([]int{0, 0})
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 0, 0)
	if x.Data()[0] != 5 {
		t.Fatal("Reshape copied data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible Reshape did not panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := RandN(rng, 3, 4, 5)
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !y.EqualApprox(x, 0) {
		t.Fatal("serialize round-trip changed values")
	}
}

func TestSerializeFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := RandN(rng, 4, 3, 2)
	path := t.TempDir() + "/x.ten"
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	y, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !y.EqualApprox(x, 0) {
		t.Fatal("file round-trip changed values")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOPE and more bytes"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := RandN(rng, 3, 3)
	var buf bytes.Buffer
	if err := x.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-9]
	if _, err := ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestReadRejectsHugeShape(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("TEN1"))
	buf.Write([]byte{2, 0, 0, 0}) // order 2
	// 2^40 × 2^40 shape.
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("implausible shape accepted")
	}
}

func BenchmarkUnfoldMode2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 64, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Unfold(2)
	}
}

func BenchmarkModeProduct(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 64, 64, 64)
	m := mat.RandN(10, 64, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ModeProduct(m, 1)
	}
}
