package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/dterr"
)

// The .ten binary format (see docs/FORMATS.md for the cross-format
// reference):
//
//	magic   [4]byte  "TEN1"
//	order   uint32   number of modes (little endian)
//	shape   [order]uint64
//	data    [∏shape]float64, first-index-fastest, little endian
var tenMagic = [4]byte{'T', 'E', 'N', '1'}

// maxSerializedElems bounds the element count accepted when reading, to
// fail fast on corrupt headers instead of attempting a huge allocation.
const maxSerializedElems = 1 << 31

// CountingWriter wraps an io.Writer, counts the bytes that reach it, and
// converts short writes that violate the io.Writer contract (n < len(p)
// with a nil error) into io.ErrShortWrite instead of silently dropping
// bytes. Every WriteTo implementation in this repository routes through it
// so the (int64, error) it reports is trustworthy: either all bytes were
// accepted, or the error says otherwise.
type CountingWriter struct {
	W io.Writer
	N int64
}

// Write forwards to the underlying writer, accumulating the byte count.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	if n < 0 {
		n = 0
	}
	c.N += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// WriteTo serializes the tensor in .ten format, implementing io.WriterTo:
// it returns the number of bytes written and reports short writes as
// errors rather than ignoring io.Writer return values.
func (t *Dense) WriteTo(w io.Writer) (int64, error) {
	cw := &CountingWriter{W: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.Write(tenMagic[:]); err != nil {
		return cw.N, fmt.Errorf("tensor: writing magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.shape))); err != nil {
		return cw.N, fmt.Errorf("tensor: writing order: %w", err)
	}
	for _, s := range t.shape {
		if err := binary.Write(bw, binary.LittleEndian, uint64(s)); err != nil {
			return cw.N, fmt.Errorf("tensor: writing shape: %w", err)
		}
	}
	buf := make([]byte, 8)
	for _, v := range t.data {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return cw.N, fmt.Errorf("tensor: writing data: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.N, fmt.Errorf("tensor: flushing: %w", err)
	}
	return cw.N, nil
}

// Write serializes the tensor in .ten format. It is WriteTo without the
// byte count.
func (t *Dense) Write(w io.Writer) error {
	_, err := t.WriteTo(w)
	return err
}

// ReadFrom deserializes a tensor in .ten format.
func ReadFrom(r io.Reader) (*Dense, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading magic: %w", err)
	}
	if magic != tenMagic {
		return nil, fmt.Errorf("tensor: bad magic %q (not a .ten file)", magic[:])
	}
	var order uint32
	if err := binary.Read(br, binary.LittleEndian, &order); err != nil {
		return nil, fmt.Errorf("tensor: reading order: %w", err)
	}
	if order == 0 || order > 16 {
		return nil, fmt.Errorf("tensor: implausible order %d", order)
	}
	shape := make([]int, order)
	// The shape entries are untrusted input: accumulate the element count in
	// uint64 with an overflow check BEFORE each multiply (total stays ≤
	// maxSerializedElems, so total·s cannot wrap when the division-based
	// guard passes). Converting an unchecked product to int would overflow —
	// on 32-bit ints even a single dimension near 2³¹ would — and a wrapped
	// count could slip past the element limit into a bogus allocation.
	total := uint64(1)
	for k := range shape {
		var s uint64
		if err := binary.Read(br, binary.LittleEndian, &s); err != nil {
			return nil, fmt.Errorf("tensor: reading shape: %w", err)
		}
		if s == 0 || s > maxSerializedElems {
			return nil, fmt.Errorf("tensor: implausible dimensionality %d", s)
		}
		if total > maxSerializedElems/s {
			return nil, fmt.Errorf("tensor: shape %v·%d exceeds element limit", shape[:k], s)
		}
		total *= s
		shape[k] = int(s)
	}
	t := New(shape...)
	buf := make([]byte, 8)
	for i := range t.data {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("tensor: reading data element %d of %d: %w", i, total, err)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		// Reject corrupted data at the boundary (v != v catches NaN) so it
		// cannot propagate into silently broken decompositions.
		if v != v || math.IsInf(v, 0) {
			return nil, fmt.Errorf("tensor: data element %d is %v: %w", i, v, dterr.ErrNonFiniteInput)
		}
		t.data[i] = v
	}
	return t, nil
}

// SaveFile writes the tensor to path in .ten format.
func (t *Dense) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tensor: creating %s: %w", path, err)
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tensor: closing %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a .ten tensor from path.
func LoadFile(path string) (*Dense, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tensor: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadFrom(f)
}
