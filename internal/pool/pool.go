// Package pool is the shared execution layer of a decomposition: a worker
// pool that bounds parallelism, a scratch-buffer arena that recycles large
// float64 buffers across phases and sweeps, and utilization counters for
// the metrics report.
//
// A *Pool is per-decomposition state. It replaces the process-global
// parallelism knob (mat.SetWorkers) so two concurrent decompositions with
// different Workers settings cannot stomp each other: each carries its own
// pool through core.Options and the mat kernels accept it explicitly.
//
// # Determinism
//
// The pool itself never decides how work is split — callers choose task
// boundaries, and the helpers guarantee only scheduling, not arithmetic
// order. Callers achieve bit-identical results for every pool size by
// making each task own its output (e.g. one output row or one slice per
// task) so no cross-task reduction order exists. Every parallel site in
// internal/core and internal/mat follows this owner-computes rule, which is
// what upholds the core.Options.Seed contract ("results are independent of
// Workers").
//
// # Failure containment and cancellation
//
// Run and RunRanges are cancellable task groups. A task that returns an
// error — or panics — stops the group: the panic is recovered into a
// dterr.PanicError carrying the panic value and stack, remaining tasks are
// abandoned, in-flight tasks finish, and every worker goroutine is joined
// before the call returns, so a failed region never leaks goroutines or
// keeps writing into shared scratch after its caller has seen the error.
// When several tasks fail, the error of the lowest task index wins, keeping
// the reported failure deterministic under scheduling. A done context stops
// workers at the next task boundary and surfaces ctx.Err(). After any
// failure the pool itself remains fully reusable: group state is per-call.
//
// # Lifecycle
//
// A Pool has no background goroutines and needs no Close. Parallel regions
// spawn goroutines on demand (goroutine startup is far cheaper than the
// kernel work a region amortizes it over) and join before returning, so a
// Pool is trivially safe to share across sequential decompositions — the
// arena then recycles their scratch memory too.
package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// siteTask is the harness hook covering every task the pool dispatches; a
// ModePanic plan on it proves worker-panic containment end to end.
var siteTask = faults.NewSite("pool.task")

// Pool bounds the parallelism of one decomposition and owns its reusable
// scratch memory. A nil *Pool is valid and behaves as a single-threaded
// pool whose arena always allocates. Pools are safe for concurrent use;
// when one pool is shared by concurrent regions each region independently
// respects Size, so total goroutines can transiently exceed it.
type Pool struct {
	size int

	mu   sync.Mutex
	free map[int][][]float64

	regions atomic.Int64
	tasks   atomic.Int64
	busy    atomic.Int64 // summed worker-goroutine nanoseconds

	// tracer, when set, records one span per task of every labeled region
	// (RunLabeled/RunRangesLabeled) on the worker's lane. Atomic so it can
	// be attached while regions from another decomposition phase are live.
	tracer atomic.Pointer[trace.Tracer]
}

// New returns a pool running at most size concurrent workers per parallel
// region. size < 1 is treated as 1.
func New(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{size: size, free: make(map[int][][]float64)}
}

// Size returns the worker bound; 1 for a nil pool.
func (p *Pool) Size() int {
	if p == nil || p.size < 1 {
		return 1
	}
	return p.size
}

// SetTracer attaches a span tracer to the pool: from then on every task of a
// labeled region records one span on its worker's lane (see internal/trace).
// nil detaches. Safe to call at any time; in-flight regions keep the tracer
// they started with.
func (p *Pool) SetTracer(t *trace.Tracer) {
	if p == nil {
		return
	}
	p.tracer.Store(t)
}

// Tracer returns the attached tracer, nil when none or for a nil pool.
func (p *Pool) Tracer() *trace.Tracer {
	if p == nil {
		return nil
	}
	return p.tracer.Load()
}

// instrument wraps one region's task function with per-task observability:
// a queue-wait observation into the pool-wait histogram and, when a tracer
// is attached, a span per task named label on lane worker+1 whose parent is
// the innermost control span open at submission. Returns fn unchanged — no
// closure, no clock reads — when both are off, which keeps unlabeled and
// uninstrumented regions at their previous cost. The span ends via defer, so
// it closes (before safeCall's recover) even when the task panics.
func (p *Pool) instrument(label string, fn func(worker, task int) error) func(worker, task int) error {
	if p == nil || label == "" {
		return fn
	}
	tr := p.tracer.Load()
	histOn := metrics.Enabled()
	if tr == nil && !histOn {
		return fn
	}
	parent := tr.CurrentID()
	submit := time.Now()
	return func(worker, task int) error {
		if histOn {
			metrics.Observe(metrics.HistPoolWait, time.Since(submit))
		}
		sp := tr.BeginWorker(parent, worker+1, label, int64(task))
		defer sp.End()
		return fn(worker, task)
	}
}

// instrumentRange is instrument for contiguous-range tasks; the span's Idx
// is the range's lower bound.
func (p *Pool) instrumentRange(label string, fn func(worker, lo, hi int) error) func(worker, lo, hi int) error {
	if p == nil || label == "" {
		return fn
	}
	tr := p.tracer.Load()
	histOn := metrics.Enabled()
	if tr == nil && !histOn {
		return fn
	}
	parent := tr.CurrentID()
	submit := time.Now()
	return func(worker, lo, hi int) error {
		if histOn {
			metrics.Observe(metrics.HistPoolWait, time.Since(submit))
		}
		sp := tr.BeginWorker(parent, worker+1, label, int64(lo))
		defer sp.End()
		return fn(worker, lo, hi)
	}
}

// RunLabeled is Run with a region label for observability: each task records
// its queue-wait latency, and when a tracer is attached each task also
// records a span named label. An empty label (or no instrumentation) makes
// it exactly Run.
func (p *Pool) RunLabeled(ctx context.Context, label string, n int, fn func(worker, task int) error) error {
	return p.Run(ctx, n, p.instrument(label, fn))
}

// RunRangesLabeled is RunRanges with a region label (see RunLabeled).
func (p *Pool) RunRangesLabeled(ctx context.Context, label string, n, w int, fn func(worker, lo, hi int) error) error {
	return p.RunRanges(ctx, n, w, p.instrumentRange(label, fn))
}

// group is the per-call failure state of one parallel region.
type group struct {
	stop atomic.Bool

	mu      sync.Mutex
	err     error
	errTask int
}

// fail records a task failure, keeping the error of the lowest task index,
// and stops the group.
func (g *group) fail(task int, err error) {
	g.mu.Lock()
	if g.err == nil || task < g.errTask {
		g.err, g.errTask = err, task
	}
	g.mu.Unlock()
	g.stop.Store(true)
}

// ctxDone reports whether ctx is cancelled; a nil ctx never is.
func ctxDone(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// safeCall runs one task with panic containment: a panic becomes a
// dterr.PanicError carrying the panic value and stack.
func safeCall(fn func(worker, task int) error, worker, task int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = dterr.NewPanic("pool worker", r)
		}
	}()
	if err := siteTask.Inject(); err != nil {
		return err
	}
	return fn(worker, task)
}

// safeCallRange is safeCall for contiguous-range tasks.
func safeCallRange(fn func(worker, lo, hi int) error, worker, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = dterr.NewPanic("pool worker", r)
		}
	}()
	if err := siteTask.Inject(); err != nil {
		return err
	}
	return fn(worker, lo, hi)
}

// Run invokes fn(worker, task) for every task in [0, n), spreading tasks
// across up to Size goroutines by work stealing, as a cancellable group: the
// first task error (or contained panic) stops dispatch, the group drains,
// and the error is returned — lowest task index winning when several tasks
// fail. A done ctx (nil means none) stops dispatch at the next task boundary
// and returns ctx.Err(). Worker ids are dense in [0, min(Size, n)) and each
// id is held by exactly one goroutine for the region's duration, so fn may
// index per-worker scratch by worker. Which worker runs which task is
// scheduling-dependent; callers needing determinism must make each task's
// result independent of its worker (see the package comment).
func (p *Pool) Run(ctx context.Context, n int, fn func(worker, task int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Size()
	if w > n {
		w = n
	}
	if p != nil {
		p.regions.Add(1)
		p.tasks.Add(int64(n))
	}
	var g group
	if w <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			if ctxDone(ctx) {
				g.fail(i, ctx.Err())
				break
			}
			if err := safeCall(fn, 0, i); err != nil {
				g.fail(i, err)
				break
			}
		}
		if p != nil {
			p.busy.Add(int64(time.Since(start)))
		}
		return g.err
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(wk int) {
			defer wg.Done()
			start := time.Now()
			for !g.stop.Load() {
				if ctxDone(ctx) {
					// n is past every real task index, so a real task
					// failure always outranks the cancellation error.
					g.fail(n, ctx.Err())
					break
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				if err := safeCall(fn, wk, i); err != nil {
					g.fail(i, err)
					break
				}
			}
			p.busy.Add(int64(time.Since(start)))
		}(wk)
	}
	wg.Wait()
	return g.err
}

// RunRanges splits [0, n) into w contiguous ranges of near-equal length and
// invokes fn(worker, lo, hi) for each, one goroutine per range (w is capped
// at both Size and n), with the same containment and cancellation semantics
// as Run (each range is one task; cancellation is observed before a range
// starts, not inside it). Range boundaries depend only on n and w, never on
// scheduling. Row-parallel kernels use this so each output row is written by
// exactly one worker.
func (p *Pool) RunRanges(ctx context.Context, n, w int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if lim := p.Size(); w > lim {
		w = lim
	}
	if w > n {
		w = n
	}
	if p != nil {
		p.regions.Add(1)
		p.tasks.Add(int64(n))
	}
	var g group
	if w <= 1 {
		start := time.Now()
		if ctxDone(ctx) {
			g.fail(0, ctx.Err())
		} else if err := safeCallRange(fn, 0, 0, n); err != nil {
			g.fail(0, err)
		}
		if p != nil {
			p.busy.Add(int64(time.Since(start)))
		}
		return g.err
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for wk := 0; wk*chunk < n; wk++ {
		lo, hi := wk*chunk, (wk+1)*chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			start := time.Now()
			switch {
			case g.stop.Load():
			case ctxDone(ctx):
				g.fail(wk, ctx.Err())
			default:
				if err := safeCallRange(fn, wk, lo, hi); err != nil {
					g.fail(wk, err)
				}
			}
			p.busy.Add(int64(time.Since(start)))
		}(wk, lo, hi)
	}
	wg.Wait()
	return g.err
}

// Get returns a float64 buffer of exactly length n from the arena,
// allocating a fresh one when none is free. Contents are unspecified — the
// caller must overwrite or zero it. A nil pool always allocates.
func (p *Pool) Get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if p != nil {
		p.mu.Lock()
		if list := p.free[n]; len(list) > 0 {
			b := list[len(list)-1]
			p.free[n] = list[:len(list)-1]
			p.mu.Unlock()
			return b
		}
		p.mu.Unlock()
	}
	return make([]float64, n)
}

// Put returns a buffer obtained from Get to the arena for reuse. Putting a
// buffer the caller still references is a use-after-free hazard, exactly as
// with any free list. A nil pool drops the buffer.
func (p *Pool) Put(b []float64) {
	if p == nil || len(b) == 0 {
		return
	}
	p.mu.Lock()
	p.free[len(b)] = append(p.free[len(b)], b)
	p.mu.Unlock()
}

// Stats is a snapshot of a pool's lifetime utilization counters.
type Stats struct {
	// Workers is the pool's size.
	Workers int
	// Regions counts parallel regions executed (Run/RunRanges calls).
	Regions int64
	// Tasks counts tasks dispatched across all regions.
	Tasks int64
	// Busy is the summed wall time of all worker goroutines — divided by
	// region wall time it gives the effective parallel speedup.
	Busy time.Duration
}

// Stats returns a snapshot of the utilization counters; zero for nil pools.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{Workers: 1}
	}
	return Stats{
		Workers: p.Size(),
		Regions: p.regions.Load(),
		Tasks:   p.tasks.Load(),
		Busy:    time.Duration(p.busy.Load()),
	}
}
