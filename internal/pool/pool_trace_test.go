package pool

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dterr"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestRunLabeledRecordsWorkerSpans(t *testing.T) {
	p := New(4)
	tr := trace.New()
	p.SetTracer(tr)
	if p.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}

	region := tr.Begin("approximation")
	const n = 16
	err := p.RunLabeled(context.Background(), "slice", n, func(worker, task int) error {
		return nil
	})
	region.End()
	if err != nil {
		t.Fatal(err)
	}

	if open := tr.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans = %d", open)
	}
	spans := tr.Spans()
	var tasks int
	seen := map[int64]bool{}
	for _, sp := range spans {
		if sp.Name != "slice" {
			continue
		}
		tasks++
		if sp.Lane < 1 || sp.Lane > 4 {
			t.Fatalf("task span on lane %d", sp.Lane)
		}
		if parent := spanNamed(t, spans, "approximation").ID; sp.Parent != parent {
			t.Fatalf("task span parent %d, want region %d", sp.Parent, parent)
		}
		seen[sp.Idx] = true
	}
	if tasks != n || len(seen) != n {
		t.Fatalf("recorded %d task spans (%d distinct idx), want %d", tasks, len(seen), n)
	}
}

func spanNamed(t *testing.T, spans []trace.Span, name string) trace.Span {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no span %q", name)
	return trace.Span{}
}

// TestRunLabeledBalancedUnderPanic pins the containment interaction: a task
// that panics still records its span (the deferred End runs during the
// unwind, before safeCall's recover), so the trace stays balanced and the
// region reports the contained panic.
func TestRunLabeledBalancedUnderPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		tr := trace.New()
		p.SetTracer(tr)
		err := p.RunLabeled(context.Background(), "task", 8, func(worker, task int) error {
			if task == 3 {
				panic("boom")
			}
			return nil
		})
		var pe *dterr.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", workers, err)
		}
		if open := tr.OpenSpans(); open != 0 {
			t.Fatalf("workers=%d: OpenSpans = %d after contained panic", workers, open)
		}
		for _, sp := range tr.Spans() {
			if sp.Dur < 0 {
				t.Fatalf("workers=%d: negative span duration %+v", workers, sp)
			}
		}
	}
}

func TestRunRangesLabeledRecordsSpans(t *testing.T) {
	p := New(3)
	tr := trace.New()
	p.SetTracer(tr)
	err := p.RunRangesLabeled(context.Background(), "rows", 10, 3, func(worker, lo, hi int) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if open := tr.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans = %d", open)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d range spans, want 3", len(spans))
	}
	los := map[int64]bool{}
	for _, sp := range spans {
		if sp.Name != "rows" {
			t.Fatalf("unexpected span %+v", sp)
		}
		los[sp.Idx] = true
	}
	// Ranges of 10 over 3 workers: chunk 4 → lows 0, 4, 8.
	for _, lo := range []int64{0, 4, 8} {
		if !los[lo] {
			t.Fatalf("missing range span with lo %d: %v", lo, los)
		}
	}
}

func TestUnlabeledRunRecordsNoSpans(t *testing.T) {
	p := New(2)
	tr := trace.New()
	p.SetTracer(tr)
	if err := p.Run(context.Background(), 8, func(worker, task int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("unlabeled region recorded %d spans", n)
	}
}

func TestRunLabeledObservesPoolWait(t *testing.T) {
	prev := metrics.SetEnabled(true)
	metrics.ResetHists()
	defer func() {
		metrics.SetEnabled(prev)
		metrics.ResetHists()
	}()

	p := New(2)
	const n = 12
	err := p.RunLabeled(context.Background(), "task", n, func(worker, task int) error {
		time.Sleep(time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := metrics.SnapshotHist(metrics.HistPoolWait)
	if s.Count != n {
		t.Fatalf("pool-wait observations = %d, want %d", s.Count, n)
	}
}

// TestRunLabeledOffPathNoOverhead pins that a labeled region with tracing
// and metrics both off adds no allocations over plain Run: instrument
// returns the task function unchanged, no wrapper closure.
func TestRunLabeledOffPathNoOverhead(t *testing.T) {
	prev := metrics.SetEnabled(false)
	defer metrics.SetEnabled(prev)
	p := New(1)
	fn := func(worker, task int) error { return nil }
	base := testing.AllocsPerRun(200, func() {
		if err := p.Run(nil, 4, fn); err != nil {
			t.Fatal(err)
		}
	})
	labeled := testing.AllocsPerRun(200, func() {
		if err := p.RunLabeled(nil, "task", 4, fn); err != nil {
			t.Fatal(err)
		}
	})
	if labeled != base {
		t.Fatalf("off-path RunLabeled allocates %v/op vs Run's %v/op", labeled, base)
	}
}

func TestRunLabeledCancelled(t *testing.T) {
	p := New(2)
	tr := trace.New()
	p.SetTracer(tr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.RunLabeled(ctx, "task", 8, func(worker, task int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if open := tr.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans = %d after cancelled region", open)
	}
}
