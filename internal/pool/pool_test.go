package pool

import (
	"sync/atomic"
	"testing"
)

func TestNilPoolIsSingleThreaded(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool Size = %d", p.Size())
	}
	ran := 0
	p.Run(5, func(worker, task int) {
		if worker != 0 {
			t.Errorf("nil pool used worker %d", worker)
		}
		ran++
	})
	if ran != 5 {
		t.Fatalf("ran %d of 5 tasks", ran)
	}
	if b := p.Get(16); len(b) != 16 {
		t.Fatalf("nil pool Get length %d", len(b))
	}
	p.Put(make([]float64, 8)) // must not panic
	if s := p.Stats(); s.Workers != 1 || s.Regions != 0 {
		t.Fatalf("nil pool stats %+v", s)
	}
}

func TestRunCoversAllTasksOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 9} {
		p := New(size)
		const n = 137
		var hits [n]atomic.Int32
		p.Run(n, func(worker, task int) {
			if worker < 0 || worker >= size {
				t.Errorf("worker id %d outside [0,%d)", worker, size)
			}
			hits[task].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("size %d: task %d ran %d times", size, i, got)
			}
		}
	}
}

func TestRunWorkerIdsExclusive(t *testing.T) {
	// Each worker id must be held by one goroutine at a time, so per-worker
	// scratch indexing is safe. Non-atomic counters per worker would trip
	// the race detector if ids were shared.
	p := New(4)
	counts := make([]int, 4)
	p.Run(1000, func(worker, task int) {
		counts[worker]++
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("per-worker counts sum to %d, want 1000", total)
	}
}

func TestRunRangesPartition(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{10, 3}, {7, 7}, {5, 16}, {1, 4}, {100, 1}} {
		p := New(tc.w)
		covered := make([]atomic.Int32, tc.n)
		p.RunRanges(tc.n, tc.w, func(worker, lo, hi int) {
			if lo >= hi {
				t.Errorf("empty range [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if got := covered[i].Load(); got != 1 {
				t.Fatalf("n=%d w=%d: index %d covered %d times", tc.n, tc.w, i, got)
			}
		}
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	p := New(2)
	b := p.Get(64)
	b[0] = 42
	p.Put(b)
	c := p.Get(64)
	if &b[0] != &c[0] {
		t.Fatal("arena did not reuse the returned buffer")
	}
	if d := p.Get(64); &d[0] == &c[0] {
		t.Fatal("arena handed out an in-use buffer")
	}
	if p.Get(0) != nil {
		t.Fatal("Get(0) should return nil")
	}
}

func TestStatsCount(t *testing.T) {
	p := New(3)
	p.Run(10, func(worker, task int) {})
	p.RunRanges(8, 2, func(worker, lo, hi int) {})
	s := p.Stats()
	if s.Workers != 3 || s.Regions != 2 || s.Tasks != 18 {
		t.Fatalf("stats %+v", s)
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	if New(0).Size() != 1 || New(-5).Size() != 1 {
		t.Fatal("non-positive sizes not clamped to 1")
	}
	New(2).Run(0, func(worker, task int) { t.Fatal("ran a task for n=0") })
}
