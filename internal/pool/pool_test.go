package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dterr"
	"repro/internal/faults"
)

// ok wraps a no-error task body.
func ok(fn func(worker, task int)) func(int, int) error {
	return func(w, i int) error { fn(w, i); return nil }
}

func TestNilPoolIsSingleThreaded(t *testing.T) {
	var p *Pool
	if p.Size() != 1 {
		t.Fatalf("nil pool Size = %d", p.Size())
	}
	ran := 0
	err := p.Run(nil, 5, ok(func(worker, task int) {
		if worker != 0 {
			t.Errorf("nil pool used worker %d", worker)
		}
		ran++
	}))
	if err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("ran %d of 5 tasks", ran)
	}
	if b := p.Get(16); len(b) != 16 {
		t.Fatalf("nil pool Get length %d", len(b))
	}
	p.Put(make([]float64, 8)) // must not panic
	if s := p.Stats(); s.Workers != 1 || s.Regions != 0 {
		t.Fatalf("nil pool stats %+v", s)
	}
}

func TestRunCoversAllTasksOnce(t *testing.T) {
	for _, size := range []int{1, 2, 4, 9} {
		p := New(size)
		const n = 137
		var hits [n]atomic.Int32
		err := p.Run(nil, n, ok(func(worker, task int) {
			if worker < 0 || worker >= size {
				t.Errorf("worker id %d outside [0,%d)", worker, size)
			}
			hits[task].Add(1)
		}))
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("size %d: task %d ran %d times", size, i, got)
			}
		}
	}
}

func TestRunWorkerIdsExclusive(t *testing.T) {
	// Each worker id must be held by one goroutine at a time, so per-worker
	// scratch indexing is safe. Non-atomic counters per worker would trip
	// the race detector if ids were shared.
	p := New(4)
	counts := make([]int, 4)
	if err := p.Run(nil, 1000, ok(func(worker, task int) {
		counts[worker]++
	})); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1000 {
		t.Fatalf("per-worker counts sum to %d, want 1000", total)
	}
}

func TestRunRangesPartition(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{10, 3}, {7, 7}, {5, 16}, {1, 4}, {100, 1}} {
		p := New(tc.w)
		covered := make([]atomic.Int32, tc.n)
		err := p.RunRanges(nil, tc.n, tc.w, func(worker, lo, hi int) error {
			if lo >= hi {
				t.Errorf("empty range [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range covered {
			if got := covered[i].Load(); got != 1 {
				t.Fatalf("n=%d w=%d: index %d covered %d times", tc.n, tc.w, i, got)
			}
		}
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	p := New(2)
	b := p.Get(64)
	b[0] = 42
	p.Put(b)
	c := p.Get(64)
	if &b[0] != &c[0] {
		t.Fatal("arena did not reuse the returned buffer")
	}
	if d := p.Get(64); &d[0] == &c[0] {
		t.Fatal("arena handed out an in-use buffer")
	}
	if p.Get(0) != nil {
		t.Fatal("Get(0) should return nil")
	}
}

func TestStatsCount(t *testing.T) {
	p := New(3)
	p.Run(nil, 10, ok(func(worker, task int) {}))
	p.RunRanges(nil, 8, 2, func(worker, lo, hi int) error { return nil })
	s := p.Stats()
	if s.Workers != 3 || s.Regions != 2 || s.Tasks != 18 {
		t.Fatalf("stats %+v", s)
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	if New(0).Size() != 1 || New(-5).Size() != 1 {
		t.Fatal("non-positive sizes not clamped to 1")
	}
	New(2).Run(nil, 0, ok(func(worker, task int) { t.Fatal("ran a task for n=0") }))
}

func TestTaskErrorStopsGroup(t *testing.T) {
	for _, size := range []int{1, 4} {
		p := New(size)
		boom := errors.New("boom")
		var ran atomic.Int64
		err := p.Run(nil, 1000, func(worker, task int) error {
			ran.Add(1)
			if task == 3 {
				return fmt.Errorf("task 3: %w", boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("size %d: err = %v, want boom", size, err)
		}
		if got := ran.Load(); got >= 1000 {
			t.Fatalf("size %d: group did not stop early (%d tasks ran)", size, got)
		}
		// The pool stays reusable after a failed region.
		if err := p.Run(nil, 10, ok(func(worker, task int) {})); err != nil {
			t.Fatalf("size %d: pool unusable after failure: %v", size, err)
		}
	}
}

func TestLowestTaskIndexErrorWins(t *testing.T) {
	// Every task fails; whatever the scheduling, the reported error must be
	// task 0's, keeping failures deterministic under parallelism.
	for _, size := range []int{1, 4, 8} {
		p := New(size)
		err := p.Run(nil, 64, func(worker, task int) error {
			return fmt.Errorf("task %d failed", task)
		})
		if err == nil || err.Error() != "task 0 failed" {
			t.Fatalf("size %d: err = %v, want task 0's", size, err)
		}
	}
}

func TestPanicContainment(t *testing.T) {
	for _, size := range []int{1, 4} {
		p := New(size)
		err := p.Run(nil, 100, func(worker, task int) error {
			if task == 7 {
				panic("kaboom at task 7")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("size %d: worker panic did not surface as an error", size)
		}
		var pe *dterr.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("size %d: err %T is not a PanicError", size, err)
		}
		if !errors.Is(err, dterr.ErrPanic) {
			t.Fatalf("size %d: err %v is not errors.Is(ErrPanic)", size, err)
		}
		if pe.Value != "kaboom at task 7" || len(pe.Stack) == 0 {
			t.Fatalf("size %d: panic value/stack not captured: %+v", size, pe)
		}
		// Containment must leave the pool reusable.
		if err := p.Run(nil, 10, ok(func(worker, task int) {})); err != nil {
			t.Fatalf("size %d: pool unusable after panic: %v", size, err)
		}
	}
}

func TestPanicContainmentInRanges(t *testing.T) {
	p := New(3)
	err := p.RunRanges(nil, 30, 3, func(worker, lo, hi int) error {
		if lo == 0 {
			panic("range panic")
		}
		return nil
	})
	var pe *dterr.PanicError
	if !errors.As(err, &pe) || pe.Value != "range panic" {
		t.Fatalf("RunRanges panic not contained: %v", err)
	}
}

func TestContextCancellationStopsRun(t *testing.T) {
	for _, size := range []int{1, 4} {
		p := New(size)
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := p.Run(ctx, 10000, func(worker, task int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("size %d: err = %v, want context.Canceled", size, err)
		}
		if got := ran.Load(); got >= 10000 {
			t.Fatalf("size %d: cancellation did not stop dispatch (%d tasks)", size, got)
		}
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(4)
	err := p.Run(ctx, 100, func(worker, task int) error {
		t.Error("task ran under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if err := p.RunRanges(ctx, 100, 4, func(worker, lo, hi int) error {
		t.Error("range ran under a pre-cancelled context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunRanges err = %v", err)
	}
}

func TestTaskErrorOutranksCancellation(t *testing.T) {
	// When a task fails and the context is then cancelled, the task's error
	// must win: it names the root cause.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("real failure")
	p := New(4)
	err := p.Run(ctx, 100, func(worker, task int) error {
		if task == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error", err)
	}
}

func TestNoGoroutineLeakOnCancelOrPanic(t *testing.T) {
	p := New(8)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		p.Run(ctx, 1000, func(worker, task int) error { return nil })
		p.Run(nil, 100, func(worker, task int) error {
			if task == 3 {
				panic("leak check")
			}
			return nil
		})
	}
	// Workers join before Run returns; allow brief scheduler settling.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestInjectedPanicAtPoolTaskSite(t *testing.T) {
	defer faults.Reset()
	if err := faults.Activate("pool.task", faults.Plan{Skip: 2, Mode: faults.ModePanic}); err != nil {
		t.Fatal(err)
	}
	p := New(4)
	err := p.Run(nil, 50, func(worker, task int) error { return nil })
	if err == nil {
		t.Fatal("injected panic did not surface as an error")
	}
	var pe *dterr.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T is not a contained panic", err)
	}
	// The error must name the hook site.
	if got := err.Error(); !errors.Is(err, dterr.ErrInjected) || !strings.Contains(got, "pool.task") {
		t.Fatalf("contained injected panic %q does not name the site", got)
	}
}
