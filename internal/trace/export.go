package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Format names a span export encoding accepted by Export.
type Format string

const (
	// FormatJSONL writes one JSON span object per line — the grep/jq-friendly
	// encoding, schema documented on the Span type.
	FormatJSONL Format = "jsonl"
	// FormatChrome writes the Chrome trace-event format (complete "X" events
	// plus thread-name metadata), loadable in Perfetto and chrome://tracing.
	FormatChrome Format = "chrome"
)

// ParseFormat validates a format name from a CLI flag.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatJSONL, FormatChrome:
		return Format(s), nil
	}
	return "", fmt.Errorf("trace: unknown format %q (known: %s, %s)", s, FormatJSONL, FormatChrome)
}

// Export writes the recorded spans to w in the given format.
func (t *Tracer) Export(w io.Writer, f Format) error {
	switch f {
	case FormatJSONL:
		return t.WriteJSONL(w)
	case FormatChrome:
		return t.WriteChrome(w)
	}
	return fmt.Errorf("trace: unknown format %q", f)
}

// WriteJSONL writes one JSON object per span, in start order. A nil tracer
// writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, sp := range t.Spans() {
		if err := enc.Encode(sp); err != nil {
			return fmt.Errorf("trace: writing JSONL: %w", err)
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format. Complete ("X")
// events carry a duration, so every emitted span is balanced by
// construction; "M" metadata events name the lanes.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`  // microseconds
	// Dur is emitted on every X event (not omitempty: a zero-duration span
	// without a dur field renders as unterminated in some viewers).
	Dur float64 `json:"dur"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container variant of the format (both the
// bare-array and object forms are accepted by Perfetto; the object form
// self-describes its time unit).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the spans as a Chrome trace-event JSON document with
// one timeline row per lane: row 0 is the control lane, row w+1 is pool
// worker w. Load the file in https://ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	lanes := map[int]bool{}
	for _, sp := range spans {
		lanes[sp.Lane] = true
	}
	var events []chromeEvent
	for lane := 0; len(lanes) > 0; lane++ {
		if !lanes[lane] {
			// Lanes are dense in practice (0..workers); guard against gaps.
			delete(lanes, lane)
			continue
		}
		delete(lanes, lane)
		name := "control"
		if lane > 0 {
			name = fmt.Sprintf("worker %d", lane-1)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]any{"name": name},
		})
	}
	for _, sp := range spans {
		args := map[string]any{"id": int64(sp.ID), "parent": int64(sp.Parent)}
		if sp.Idx != NoIdx {
			args["idx"] = sp.Idx
		}
		if sp.Forced {
			args["forced"] = true
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Ph: "X", Pid: 1, Tid: sp.Lane,
			Ts:  float64(sp.Start.Nanoseconds()) / 1e3,
			Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("trace: writing Chrome trace: %w", err)
	}
	return nil
}
