package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// spanByName returns the first recorded span with the given name.
func spanByName(t *testing.T, spans []Span, name string) Span {
	t.Helper()
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	t.Fatalf("no span named %q in %v", name, spans)
	return Span{}
}

func TestControlSpanNesting(t *testing.T) {
	tr := New()
	root := tr.Begin("decompose")
	phase := tr.Begin("iteration")
	sweep := tr.BeginIdx("sweep", 1)
	sweep.End()
	phase.End()
	root.End()

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after balanced run", n)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	r := spanByName(t, spans, "decompose")
	p := spanByName(t, spans, "iteration")
	s := spanByName(t, spans, "sweep")
	if r.Parent != 0 || p.Parent != r.ID || s.Parent != p.ID {
		t.Fatalf("parent chain broken: root=%+v phase=%+v sweep=%+v", r, p, s)
	}
	if s.Idx != 1 {
		t.Fatalf("sweep idx = %d", s.Idx)
	}
	if r.Forced || p.Forced || s.Forced {
		t.Fatal("cleanly ended spans marked Forced")
	}
	// Deterministic dense IDs in begin order.
	if r.ID != 1 || p.ID != 2 || s.ID != 3 {
		t.Fatalf("IDs not dense begin-order: %d %d %d", r.ID, p.ID, s.ID)
	}
}

// TestForcedClose models an error/panic unwind: inner spans never see End,
// the deferred outer End closes them, marked Forced, and a later End on the
// already-closed inner handle is a no-op.
func TestForcedClose(t *testing.T) {
	tr := New()
	root := tr.Begin("decompose")
	phase := tr.Begin("iteration")
	sweep := tr.BeginIdx("sweep", 3)
	_ = sweep
	root.End() // unwind: closes sweep and phase too

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d after forced close", n)
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	if sp := spanByName(t, spans, "sweep"); !sp.Forced {
		t.Fatal("sweep not marked Forced")
	}
	if sp := spanByName(t, spans, "iteration"); !sp.Forced {
		t.Fatal("iteration not marked Forced")
	}
	if sp := spanByName(t, spans, "decompose"); sp.Forced {
		t.Fatal("the ending span itself marked Forced")
	}
	// Ending the force-closed handles must not double-record.
	sweep.End()
	phase.End()
	if n := tr.Len(); n != 3 {
		t.Fatalf("double-record: %d spans after re-End", n)
	}
}

func TestWorkerSpans(t *testing.T) {
	tr := New()
	region := tr.Begin("approximation")
	parent := tr.CurrentID()
	var wg sync.WaitGroup
	const workers, tasks = 4, 32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < tasks; i += workers {
				sp := tr.BeginWorker(parent, w+1, "slice", int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	region.End()

	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("OpenSpans = %d", n)
	}
	spans := tr.Spans()
	if len(spans) != tasks+1 {
		t.Fatalf("recorded %d spans, want %d", len(spans), tasks+1)
	}
	seen := map[int64]bool{}
	for _, sp := range spans {
		if sp.Name != "slice" {
			continue
		}
		if sp.Parent != parent {
			t.Fatalf("slice span parent %d, want %d", sp.Parent, parent)
		}
		if sp.Lane < 1 || sp.Lane > workers {
			t.Fatalf("slice span lane %d", sp.Lane)
		}
		if seen[sp.Idx] {
			t.Fatalf("slice %d recorded twice", sp.Idx)
		}
		seen[sp.Idx] = true
	}
	if len(seen) != tasks {
		t.Fatalf("%d distinct slice spans, want %d", len(seen), tasks)
	}
}

// TestNilTracerZeroAlloc pins the disabled path: every hook on a nil tracer
// must be allocation-free (this is what keeps tracing free when off).
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		c := tr.Begin("x")
		w := tr.BeginWorker(tr.CurrentID(), 1, "y", 0)
		w.End()
		c.End()
		_ = tr.OpenSpans()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates: %v allocs/op", allocs)
	}
}

func buildSample() *Tracer {
	tr := New()
	root := tr.Begin("decompose")
	phase := tr.Begin("approximation")
	parent := tr.CurrentID()
	for i := 0; i < 3; i++ {
		sp := tr.BeginWorker(parent, i%2+1, "slice", int64(i))
		sp.End()
	}
	phase.End()
	root.End()
	return tr
}

func TestWriteJSONL(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if sp.ID == 0 || sp.Name == "" {
			t.Fatalf("line %d missing fields: %+v", lines, sp)
		}
		lines++
	}
	if lines != tr.Len() {
		t.Fatalf("%d JSONL lines for %d spans", lines, tr.Len())
	}
}

func TestWriteChromeValid(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	var xEvents, meta int
	lanes := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			for _, field := range []string{"name", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[field]; !ok {
					t.Fatalf("X event missing %q: %v", field, ev)
				}
			}
			lanes[ev["tid"].(float64)] = true
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Fatalf("unexpected metadata event %v", ev)
			}
		default:
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
	}
	if xEvents != tr.Len() {
		t.Fatalf("%d X events for %d spans", xEvents, tr.Len())
	}
	// Control lane plus the two worker lanes used by buildSample.
	if !lanes[0] || !lanes[1] || !lanes[2] {
		t.Fatalf("missing lanes: %v", lanes)
	}
	if meta < 3 {
		t.Fatalf("%d thread_name metadata events, want one per lane (3)", meta)
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"jsonl", "chrome"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Fatalf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("protobuf"); err == nil || !strings.Contains(err.Error(), "protobuf") {
		t.Fatalf("bad format accepted: %v", err)
	}
}

// TestRecordRetroactive covers Record: retroactive closed spans land under
// the given parent, pre-tracer starts clamp to offset 0, and a nil tracer
// is a free no-op.
func TestRecordRetroactive(t *testing.T) {
	tr := New()
	root := tr.Begin("job")
	// A phase measured before the tracer existed clamps to offset zero.
	early := time.Now().Add(-time.Hour)
	id := tr.Record(root.ID(), "queue-wait", NoIdx, early, 5*time.Millisecond)
	if id == 0 {
		t.Fatal("Record returned no ID")
	}
	tr.Record(root.ID(), "admission", 3, time.Now(), -time.Second) // negative duration clamps
	root.End()

	spans := tr.Spans()
	qw := spanByName(t, spans, "queue-wait")
	if qw.Parent != root.ID() || qw.Start != 0 || qw.Dur != 5*time.Millisecond || qw.Lane != 0 {
		t.Errorf("queue-wait span = %+v", qw)
	}
	adm := spanByName(t, spans, "admission")
	if adm.Idx != 3 || adm.Dur != 0 {
		t.Errorf("admission span = %+v", adm)
	}
	if tr.OpenSpans() != 0 {
		t.Errorf("OpenSpans = %d after balanced run", tr.OpenSpans())
	}

	var nilT *Tracer
	if got := nilT.Record(0, "x", NoIdx, time.Now(), time.Second); got != 0 {
		t.Errorf("nil Record returned %d", got)
	}
}
