// Package trace is a low-overhead hierarchical span tracer for one
// decomposition run: it records where, inside each algorithm phase, time
// actually goes — per-slice compressions, per-sweep and per-mode factor
// updates, and the individual tasks the worker pool dispatches — as a tree
// of spans that exports to JSONL or to the Chrome trace-event format
// (loadable in Perfetto or chrome://tracing).
//
// # Model
//
// A span has a name, a deterministic ID (dense, assigned in Begin order
// from a per-tracer counter — fully reproducible in single-worker runs), a
// parent, a lane, and start/duration offsets measured against the tracer's
// creation time on the monotonic clock. Lane 0 is the control lane — the
// single goroutine driving the decomposition — and lane w+1 is pool worker
// w, so a Chrome export shows one row per worker with the scheduling gaps
// between their tasks visible.
//
// Control-lane spans (Begin/BeginIdx) form a stack owned by the driving
// goroutine. Worker-lane spans (BeginWorker) carry an explicit parent —
// captured on the control lane when the parallel region starts — because
// pool workers run concurrently and cannot consult the stack.
//
// # Balance under failure
//
// Every recorded span is closed by construction: a span only enters the
// buffer when it ends. Ending a control span force-closes any still-open
// descendants (marked Forced), so an error return or a contained panic that
// unwinds past inner spans — a cancelled sweep, an injected worker fault —
// still yields a balanced trace as long as the outermost spans end via
// defer, which every call site in internal/core does. OpenSpans reports
// what remains open, which tests drive to zero.
//
// # Cost
//
// A nil *Tracer is valid and every method on it is an allocation-free
// no-op, which is how the instrumented hot paths cost nothing when tracing
// is off (asserted by AllocsPerRun tests). An enabled tracer buffers spans
// in memory under one mutex; export happens after the run.
package trace

import (
	"sync"
	"time"
)

// SpanID identifies one span within a tracer. IDs are dense, starting at 1;
// 0 means "no span" (the parent of a root).
type SpanID int64

// NoIdx is the Idx value of spans that carry no index.
const NoIdx int64 = -1

// Span is one closed (recorded) span.
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent"`
	Name   string `json:"name"`
	// Lane is the span's timeline row: 0 is the control lane, w+1 is pool
	// worker w.
	Lane int `json:"lane"`
	// Idx is the span's generic index — slice number, sweep number, mode —
	// or NoIdx when the span has none.
	Idx int64 `json:"idx"`
	// Start and Dur are offsets from the tracer's creation, taken from the
	// monotonic clock.
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
	// Forced marks a span closed by an ancestor's End rather than its own —
	// the unwind path of an error return or a contained panic. Its Dur ends
	// at the ancestor's end time.
	Forced bool `json:"forced,omitempty"`
}

// openSpan is the in-flight state of a span that has begun but not ended.
type openSpan struct {
	id     SpanID
	parent SpanID
	name   string
	lane   int
	idx    int64
	start  time.Duration
}

// Tracer buffers the spans of one run. Create one per decomposition with
// New; a nil *Tracer disables tracing at zero cost. Methods are safe for
// concurrent use, with one ownership rule: Begin/BeginIdx/CurrentID belong
// to the single goroutine driving the run (they operate on the control
// stack), while BeginWorker and Ctx.End may be called from any goroutine.
type Tracer struct {
	start time.Time

	mu          sync.Mutex
	nextID      SpanID
	spans       []Span
	stack       []openSpan // open control-lane spans, innermost last
	openWorkers int        // open worker-lane spans
}

// New returns an enabled tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// Ctx is the handle to an active span, returned by the Begin variants and
// closed with End. The zero Ctx (from a nil tracer) is valid and End on it
// is a no-op.
type Ctx struct {
	t *Tracer
	// id identifies the span; control spans keep their state on the
	// tracer's stack, worker spans carry it here.
	id     SpanID
	worker bool
	rec    openSpan
}

// ID returns the span's ID, or 0 for the zero Ctx.
func (c Ctx) ID() SpanID { return c.id }

// Begin opens a control-lane span whose parent is the innermost open
// control span (a root span when none is open).
func (t *Tracer) Begin(name string) Ctx { return t.BeginIdx(name, NoIdx) }

// BeginIdx is Begin with an index attached (sweep number, mode, …).
func (t *Tracer) BeginIdx(name string, idx int64) Ctx {
	if t == nil {
		return Ctx{}
	}
	now := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	o := openSpan{id: t.nextID, name: name, lane: 0, idx: idx, start: now}
	if n := len(t.stack); n > 0 {
		o.parent = t.stack[n-1].id
	}
	t.stack = append(t.stack, o)
	return Ctx{t: t, id: o.id}
}

// BeginWorker opens a worker-lane span with an explicit parent (capture it
// with CurrentID on the control lane before the parallel region starts).
// Lane should be worker+1 so lane 0 stays the control lane.
func (t *Tracer) BeginWorker(parent SpanID, lane int, name string, idx int64) Ctx {
	if t == nil {
		return Ctx{}
	}
	now := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	o := openSpan{id: t.nextID, parent: parent, name: name, lane: lane, idx: idx, start: now}
	t.openWorkers++
	return Ctx{t: t, id: o.id, worker: true, rec: o}
}

// End closes the span. For a control span it also force-closes (and marks
// Forced) every control span begun after it that is still open — the
// descendants an error return or contained panic unwound past. Ending a
// span that was already force-closed is a no-op, so the pattern "End on the
// happy path, outer deferred End on every path" never double-records.
func (c Ctx) End() {
	if c.t == nil || c.id == 0 {
		return
	}
	t := c.t
	now := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	if c.worker {
		rec := c.rec
		t.spans = append(t.spans, Span{
			ID: rec.id, Parent: rec.parent, Name: rec.name, Lane: rec.lane,
			Idx: rec.idx, Start: rec.start, Dur: now - rec.start,
		})
		t.openWorkers--
		return
	}
	// Find the span on the control stack; absent means an ancestor already
	// force-closed it.
	at := -1
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i].id == c.id {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	for i := len(t.stack) - 1; i >= at; i-- {
		o := t.stack[i]
		t.spans = append(t.spans, Span{
			ID: o.id, Parent: o.parent, Name: o.name, Lane: o.lane,
			Idx: o.idx, Start: o.start, Dur: now - o.start, Forced: i > at,
		})
	}
	t.stack = t.stack[:at]
}

// Record appends an already-closed span retroactively: a phase measured
// with plain timestamps (queue wait, admission) that only becomes a span
// once the job's tracer takes over. The span lands on the control lane
// under the given parent (0 for a root), with start clamped to the
// tracer's creation time when it predates it. Safe from any goroutine; a
// nil tracer records nothing.
func (t *Tracer) Record(parent SpanID, name string, idx int64, start time.Time, d time.Duration) SpanID {
	if t == nil {
		return 0
	}
	off := start.Sub(t.start)
	if off < 0 {
		off = 0
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.spans = append(t.spans, Span{
		ID: t.nextID, Parent: parent, Name: name, Lane: 0, Idx: idx, Start: off, Dur: d,
	})
	return t.nextID
}

// CurrentID returns the ID of the innermost open control span, or 0.
// Parallel regions capture it as the parent for their worker spans.
func (t *Tracer) CurrentID() SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.stack); n > 0 {
		return t.stack[n-1].id
	}
	return 0
}

// OpenSpans returns how many spans have begun but not yet been recorded —
// zero after any correctly bracketed run, whatever path it exited through.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.stack) + t.openWorkers
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans sorted by start time (ties by
// ID, which is begin order).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// sortSpans orders spans by (Start, ID) with a simple insertion sort — span
// buffers are recorded nearly in order, so this is effectively linear.
func sortSpans(s []Span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func less(a, b Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.ID < b.ID
}
