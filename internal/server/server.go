// Package server implements dtuckerd, the D-Tucker decomposition service:
// an HTTP/JSON job API with admission control, a result cache, and graceful
// drain, on top of the core decomposition library.
//
// Requests are serializable core.Config values plus a tensor payload
// (base64 .ten bytes in JSON). Submissions pass through a bounded queue —
// when it is full the server sheds load with 429 and a Retry-After header
// instead of queueing unboundedly. Results are cached in an LRU keyed by
// (tensor digest, canonical config); the library's determinism makes a
// cached result bit-identical to a fresh computation. All jobs share one
// worker pool, so a saturated server runs at a bounded total parallelism.
//
// Every job carries its own metrics.Collector (phase breakdown in the job
// record) and, on request, a span tracer (GET /v1/jobs/{id}/trace).
// Process-wide counters and latency histograms are exported through expvar
// at GET /metricz.
//
// Endpoints:
//
//	POST   /v1/decompose             submit a decomposition job
//	GET    /v1/jobs/{id}             poll the job record
//	GET    /v1/jobs/{id}/result      fetch the result (.dtd binary, ?format=json)
//	GET    /v1/jobs/{id}/trace       fetch the span trace (jsonl, ?format=chrome)
//	DELETE /v1/jobs/{id}             cancel a queued or running job
//	POST   /v1/streams               open a streaming session
//	GET    /v1/streams/{id}          session status
//	DELETE /v1/streams/{id}          close the session
//	POST   /v1/streams/{id}/append   append a chunk (synchronous)
//	POST   /v1/streams/{id}/decompose submit a full-stream solve job
//	POST   /v1/streams/{id}/range    submit a time-range solve job
//	GET    /healthz                  liveness and queue state
//	GET    /metricz                  expvar: counters + latency histograms
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Config configures a Server. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with 429. Default 16.
	QueueDepth int
	// Runners is the number of jobs executing concurrently. Default 1 —
	// one decomposition at a time, using the whole pool.
	Runners int
	// Workers sizes the shared worker pool. Default runtime.NumCPU.
	Workers int
	// CacheSize bounds the result cache in entries; 0 means the default
	// (64), negative disables caching.
	CacheSize int
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies. Default 1 GiB.
	MaxBodyBytes int64
	// Logf, when set, receives one line per lifecycle event (job start,
	// finish, drain). Default: silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Runners <= 0 {
		c.Runners = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the dtuckerd service. Create with New, serve its Handler, and
// shut down with Drain. A Server's methods are safe for concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	pl    *pool.Pool
	cache *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue     chan *job
	stop      chan struct{} // closed after drain: runners exit
	jobsWG    sync.WaitGroup
	runnersWG sync.WaitGroup
	draining  atomic.Bool

	mu         sync.Mutex
	jobs       map[string]*job
	jobOrder   []string // insertion order, for pruning old finished records
	streams    map[string]*session
	nextJob    int64
	nextStream int64

	// Cumulative counters, exported on /metricz.
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64
	running   atomic.Int64
}

// maxJobRecords bounds the in-memory job registry; the oldest finished
// records are pruned beyond it.
const maxJobRecords = 4096

// New returns a ready Server. Start serving with an http.Server around
// Handler(); call Drain before exit.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		pl:      pool.New(cfg.Workers),
		cache:   newResultCache(cfg.CacheSize),
		queue:   make(chan *job, cfg.QueueDepth),
		stop:    make(chan struct{}),
		jobs:    make(map[string]*job),
		streams: make(map[string]*session),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.routes()
	for i := 0; i < cfg.Runners; i++ {
		s.runnersWG.Add(1)
		go s.runner()
	}
	metrics.PublishExpvar()
	publishServerExpvar()
	activeServer.Store(s)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/decompose", s.handleDecompose)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamGet)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("POST /v1/streams/{id}/append", s.handleStreamAppend)
	s.mux.HandleFunc("POST /v1/streams/{id}/decompose", s.handleStreamDecompose)
	s.mux.HandleFunc("POST /v1/streams/{id}/range", s.handleStreamRange)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metricz", expvar.Handler())
}

// newJob allocates a job record with its own cancellable context (child of
// the server's base context, so drain-with-deadline can cancel everything),
// per-job collector, and optional tracer.
func (s *Server) newJob(key string, timeout time.Duration, traced bool,
	exec func(ctx context.Context, pl *pool.Pool, col *metrics.Collector) (*core.Decomposition, error)) *job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		key:     key,
		exec:    exec,
		ctx:     ctx,
		cancel:  cancel,
		timeout: timeout,
		col:     metrics.New(),
		state:   StateQueued,
		created: time.Now(),
	}
	if traced {
		j.tracer = trace.New()
		j.col.SetTracer(j.tracer)
	}
	s.mu.Lock()
	s.nextJob++
	j.id = fmt.Sprintf("j-%06d", s.nextJob)
	s.mu.Unlock()
	return j
}

// register adds the job to the registry, pruning the oldest finished
// records past maxJobRecords.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > maxJobRecords {
		old, ok := s.jobs[s.jobOrder[0]]
		if ok {
			old.mu.Lock()
			finished := old.state == StateDone || old.state == StateFailed || old.state == StateCancelled
			old.mu.Unlock()
			if !finished {
				break // never prune live jobs; registry grows until they finish
			}
			delete(s.jobs, s.jobOrder[0])
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// errQueueFull and errDraining are admission-control rejections.
var (
	errQueueFull = errors.New("job queue is full")
	errDraining  = errors.New("server is draining")
)

// admit registers the job and places it on the bounded queue. It never
// blocks: a full queue or a draining server rejects immediately.
func (s *Server) admit(j *job) error {
	if s.draining.Load() {
		return errDraining
	}
	s.jobsWG.Add(1)
	select {
	case s.queue <- j:
		s.register(j)
		s.submitted.Add(1)
		return nil
	default:
		s.jobsWG.Done()
		s.rejected.Add(1)
		return errQueueFull
	}
}

func (s *Server) runner() {
	defer s.runnersWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.run(j)
		case <-s.stop:
			// Drain the queue before exiting so no admitted job is lost;
			// after stop closes nothing new is admitted.
			for {
				select {
				case j := <-s.queue:
					s.run(j)
				default:
					return
				}
			}
		}
	}
}

// run executes one job to completion. Exactly one runner runs a given job.
func (s *Server) run(j *job) {
	defer s.jobsWG.Done()
	s.running.Add(1)
	defer s.running.Add(-1)

	start := time.Now()
	metrics.Observe(metrics.HistJobQueueWait, start.Sub(j.created))
	j.setRunning(start)
	s.cfg.Logf("job %s: running (queued %v)", j.id, start.Sub(j.created).Round(time.Millisecond))

	ctx := j.ctx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}

	// The cache may have been filled by an identical job that ran while
	// this one waited in the queue.
	if j.key != "" {
		if dec, ok := s.cache.Get(j.key); ok {
			j.finish(dec, nil, true, time.Now())
			s.completed.Add(1)
			s.cfg.Logf("job %s: done (cache hit after queue)", j.id)
			return
		}
	}

	dec, err := j.exec(ctx, s.pl, j.col)
	end := time.Now()
	metrics.ObserveSince(metrics.HistJobRun, start)
	if err == nil && j.key != "" {
		s.cache.Put(j.key, dec)
	}
	j.finish(dec, err, false, end)

	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateDone:
		s.completed.Add(1)
		s.cfg.Logf("job %s: done in %v (fit %.6f)", j.id, end.Sub(start).Round(time.Millisecond), dec.Fit)
	case StateCancelled:
		s.cancelled.Add(1)
		s.cfg.Logf("job %s: cancelled after %v", j.id, end.Sub(start).Round(time.Millisecond))
	default:
		s.failed.Add(1)
		s.cfg.Logf("job %s: failed: %v", j.id, err)
	}
}

// Drain gracefully shuts the server down: it stops admitting work, waits
// for queued and running jobs to finish, and — if ctx expires first —
// cancels everything in flight and waits for the cancellations to land.
// After Drain returns no runner goroutines remain and final statistics have
// been flushed through Logf. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) {
	if s.draining.Swap(true) {
		// Another Drain is (or was) in progress; wait for the jobs either way.
		s.jobsWG.Wait()
		s.runnersWG.Wait()
		return
	}
	s.cfg.Logf("drain: no longer admitting jobs; %d queued, %d running",
		len(s.queue), s.running.Load())

	done := make(chan struct{})
	go func() { s.jobsWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Logf("drain: deadline reached, cancelling in-flight jobs")
		s.baseCancel() // cancels every job context at once
		<-done
	}
	close(s.stop)
	s.runnersWG.Wait()
	s.baseCancel()

	hits, misses := s.cache.Stats()
	s.cfg.Logf("drain: complete — %d submitted, %d done, %d failed, %d cancelled, %d rejected; cache %d hits / %d misses",
		s.submitted.Load(), s.completed.Load(), s.failed.Load(),
		s.cancelled.Load(), s.rejected.Load(), hits, misses)
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// health snapshots the serving state for /healthz.
func (s *Server) health() Health {
	h := Health{
		Status:   "ok",
		QueueLen: len(s.queue),
		QueueCap: cap(s.queue),
		Running:  int(s.running.Load()),
		Workers:  s.pl.Size(),
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	return h
}

// statsSnapshot is the expvar payload under the "dtuckerd" key.
func (s *Server) statsSnapshot() map[string]any {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	streams := len(s.streams)
	s.mu.Unlock()
	return map[string]any{
		"jobs_submitted": s.submitted.Load(),
		"jobs_completed": s.completed.Load(),
		"jobs_failed":    s.failed.Load(),
		"jobs_cancelled": s.cancelled.Load(),
		"jobs_rejected":  s.rejected.Load(),
		"jobs_running":   s.running.Load(),
		"cache_hits":     hits,
		"cache_misses":   misses,
		"cache_entries":  s.cache.Len(),
		"queue_len":      len(s.queue),
		"queue_cap":      cap(s.queue),
		"streams_open":   streams,
		"draining":       s.draining.Load(),
	}
}

// expvar wiring. expvar.Publish panics on duplicate names and tests create
// many Servers per process, so the published func reads through an atomic
// pointer to the most recently created server.
var (
	activeServer  atomic.Pointer[Server]
	publishServer sync.Once
)

func publishServerExpvar() {
	publishServer.Do(func() {
		expvar.Publish("dtuckerd", expvar.Func(func() any {
			s := activeServer.Load()
			if s == nil {
				return nil
			}
			return s.statsSnapshot()
		}))
	})
}

// ----- small HTTP helpers shared by the handler files -----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, e *WireError) {
	writeJSON(w, status, map[string]*WireError{"error": e})
}

// writeAdmissionError maps admit() failures onto HTTP load-shedding
// semantics: 429 + Retry-After for a full queue, 503 while draining.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, &WireError{Kind: KindQueueFull, Message: err.Error()})
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, &WireError{Kind: KindDraining, Message: err.Error()})
	default:
		writeError(w, http.StatusInternalServerError, &WireError{Kind: KindInternal, Message: err.Error()})
	}
}
