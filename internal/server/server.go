// Package server implements dtuckerd, the D-Tucker decomposition service:
// an HTTP/JSON job API with admission control, a result cache, and graceful
// drain, on top of the core decomposition library.
//
// Requests are serializable core.Config values plus a tensor payload
// (base64 .ten bytes in JSON; see docs/FORMATS.md for the binary formats).
// Submissions pass through multi-tenant admission control — per-tenant
// quotas, a bounded global queue, and singleflight coalescing of identical
// in-flight jobs — and queued work is dispatched through two strict-priority
// lanes (interactive preempts batch) with weighted fair queueing across
// tenants inside each lane; see sched.go and docs/OPERATIONS.md for the
// exact semantics. When a submission cannot be admitted the server sheds
// load with 429 and a Retry-After header instead of queueing unboundedly.
// Results are cached in an LRU keyed by (tensor digest, canonical config);
// the library's determinism makes a cached result bit-identical to a fresh
// computation. All jobs share one worker pool, so a saturated server runs
// at a bounded total parallelism. Tenancy and priority ride on the
// X-Tenant and X-Priority request headers.
//
// Every job carries its own metrics.Collector (phase breakdown in the job
// record) and, on request, a span tracer (GET /v1/jobs/{id}/trace) that
// merges server-side spans (admission, queue wait, run, serialize) with the
// core compute spans. Every request resolves a correlation ID (client
// X-Request-ID, W3C traceparent, or freshly minted — see internal/obs),
// echoed on every response; with Config.Obs set, each admission decision
// and job lifecycle transition emits one structured log event carrying it.
// Process-wide counters and latency histograms are exported at GET /metricz
// as curated JSON or, with ?format=prometheus, in Prometheus text format;
// GET /debugz/requests serves the flight recorder.
//
// Endpoints:
//
//	POST   /v1/decompose             submit a decomposition job
//	GET    /v1/jobs/{id}             poll the job record
//	GET    /v1/jobs/{id}/result      fetch the result (.dtd binary, ?format=json)
//	GET    /v1/jobs/{id}/trace       fetch the span trace (jsonl, ?format=chrome)
//	DELETE /v1/jobs/{id}             cancel a queued or running job
//	POST   /v1/streams               open a streaming session
//	GET    /v1/streams/{id}          session status
//	DELETE /v1/streams/{id}          close the session
//	POST   /v1/streams/{id}/append   append a chunk (synchronous)
//	POST   /v1/streams/{id}/decompose submit a full-stream solve job
//	GET    /v1/streams/{id}/range    submit a time-range query (?t0=&t1=)
//	POST   /v1/streams/{id}/range    deprecated alias of the GET endpoint
//	GET    /healthz                  liveness and queue state
//	GET    /metricz                  counters + histograms (?format=prometheus)
//	GET    /debugz/requests          flight recorder: recent requests + exemplars
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kernelsel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Config configures a Server. The zero value is usable: every field has a
// sensible default. Admission, fairness, and coalescing semantics are
// documented in detail in docs/OPERATIONS.md.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with 429. Default 16.
	QueueDepth int
	// Runners is the number of jobs executing concurrently. Default 1 —
	// one decomposition at a time, using the whole pool.
	Runners int
	// Workers sizes the shared worker pool. Default runtime.NumCPU.
	Workers int
	// CacheSize bounds the result cache in entries; 0 means the default
	// (64), negative disables caching.
	CacheSize int
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies. Default 1 GiB.
	MaxBodyBytes int64

	// TenantQuota bounds each tenant's outstanding (queued + running)
	// jobs; submissions beyond it are shed with 429/tenant_quota even when
	// the global queue has room. 0 means unlimited — only QueueDepth
	// applies.
	TenantQuota int
	// TenantWeights assigns weighted-fair-queueing weights by tenant name
	// (X-Tenant header). A tenant absent from the map gets
	// DefaultTenantWeight. Under contention, tenant throughput converges
	// to the weight ratio.
	TenantWeights map[string]int
	// DefaultTenantWeight is the WFQ weight of tenants not listed in
	// TenantWeights. Default 1.
	DefaultTenantWeight int
	// DisableCoalesce turns off singleflight coalescing of identical
	// in-flight jobs. By default a submission whose (tensor digest,
	// canonical config) key matches a queued or running job attaches to
	// it instead of executing again.
	DisableCoalesce bool

	// DataDir, when set, makes decompose jobs durable: accepted work is
	// journaled to DataDir/journal.dtjl and large artifacts (tensors,
	// checkpoints, results) are spilled under DataDir/jobs/, and on startup
	// the journal is replayed — finished jobs are restored, interrupted jobs
	// re-enqueued and resumed from their last checkpoint. Empty (the
	// default) keeps the server fully in-memory. See durability.go and
	// docs/OPERATIONS.md, "Durability & recovery".
	DataDir string
	// CheckpointEvery is the sweep cadence of durable checkpoints: iteration
	// state is persisted every N-th completed sweep (terminal sweeps are
	// always persisted). Default 1 — every sweep is a resume point. Only
	// meaningful with DataDir set.
	CheckpointEvery int

	// Range-index tuning. Each stream session maintains a rangeidx segment
	// tree over its appended blocks, so overlapping range queries stitch
	// cached node summaries instead of re-solving (see internal/rangeidx and
	// docs/OPERATIONS.md, "Range queries"). RangeBlockSize is the leaf span
	// in time steps (0 selects 8); RangeSummaryRank the retained summary
	// rank (0 selects the core default); RangeMinStitchSpan the span below
	// which queries run a direct solve (0 selects 2·RangeBlockSize, negative
	// disables the size fallback); RangeMinFit the stitched-fit floor below
	// which a query is re-answered directly (0 disables).
	RangeBlockSize     int
	RangeSummaryRank   int
	RangeMinStitchSpan int
	RangeMinFit        float64
	// DisableRangeIndex turns the segment tree off: range queries always run
	// a direct DecomposeRange (the pre-index behavior, kept as the loadgen
	// baseline and an operational escape hatch). Exact-range result caching
	// still applies either way.
	DisableRangeIndex bool

	// KernelProfile is the calibrated kernelsel profile that requests with
	// SliceKernel "auto" resolve against. Its fingerprint is stamped into
	// each auto request's Config before the cache key is computed, so
	// results are cached per profile; a request naming a different
	// fingerprint is rejected with 400. Nil selects kernelsel.Default().
	KernelProfile *kernelsel.Profile

	// Obs, when set, receives one structured event per admission decision
	// and job lifecycle transition (see internal/obs for the schema). Nil —
	// the default — disables event logging at zero per-request cost.
	Obs *obs.Logger
	// FlightRecorderSize is the number of recent request summaries the
	// flight recorder retains for GET /debugz/requests. 0 means the default
	// (256); negative disables the recorder.
	FlightRecorderSize int

	// Logf, when set, receives one line per diagnostic event (drain
	// progress, recovery, result-write failures). Default: silent. Job
	// lifecycle reporting goes through Obs instead.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Runners <= 0 {
		c.Runners = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	if c.DefaultTenantWeight <= 0 {
		c.DefaultTenantWeight = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.KernelProfile == nil {
		c.KernelProfile = kernelsel.Default()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the dtuckerd service. Create with New, serve its Handler, and
// shut down with Drain. A Server's methods are safe for concurrent use.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	pl    *pool.Pool
	cache *resultCache
	dur   *durability   // nil when Config.DataDir is unset
	obs   *obs.Logger   // nil-safe: nil disables structured events
	rec   *obs.Recorder // nil when Config.FlightRecorderSize < 0

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// schedMu guards sched; schedCond wakes runners blocked in nextJob.
	schedMu   sync.Mutex
	schedCond *sync.Cond
	sched     *scheduler

	jobsWG    sync.WaitGroup
	runnersWG sync.WaitGroup
	draining  atomic.Bool

	mu         sync.Mutex
	jobs       map[string]*job
	jobOrder   []string // insertion order, for pruning old finished records
	streams    map[string]*session
	nextJob    int64
	nextStream int64

	// Cumulative counters, exported on /metricz.
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	rejected  atomic.Int64
	coalesced atomic.Int64
	running   atomic.Int64
}

// maxJobRecords bounds the in-memory job registry; the oldest finished
// records are pruned beyond it.
const maxJobRecords = 4096

// New returns a ready Server. Start serving with an http.Server around
// Handler(); call Drain before exit.
//
// With Config.DataDir set, New replays the durability journal before any
// runner starts: jobs interrupted by the previous process death are back in
// the queue (resuming from their last checkpoint) by the time New returns.
// New fails only when the data directory itself is unusable — an unwritable
// path or a journal file that is not ours; corrupt records degrade per job
// instead (see durability.go).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		pl:      pool.New(cfg.Workers),
		cache:   newResultCache(cfg.CacheSize),
		sched:   newScheduler(cfg),
		jobs:    make(map[string]*job),
		streams: make(map[string]*session),
		obs:     cfg.Obs,
	}
	if cfg.FlightRecorderSize >= 0 {
		n := cfg.FlightRecorderSize
		if n == 0 {
			n = 256
		}
		s.rec = obs.NewRecorder(n)
	}
	s.schedCond = sync.NewCond(&s.schedMu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.routes()
	if cfg.DataDir != "" {
		dur, records, err := openDurability(cfg)
		if err != nil {
			return nil, err
		}
		s.dur = dur
		if err := s.recoverJobs(records); err != nil {
			dur.Close()
			return nil, err
		}
	}
	for i := 0; i < cfg.Runners; i++ {
		s.runnersWG.Add(1)
		go s.runner()
	}
	metrics.PublishExpvar()
	publishServerExpvar()
	activeServer.Store(s)
	return s, nil
}

// Handler returns the server's HTTP handler: the route mux wrapped in the
// request-ID / flight-recorder middleware, so every response — matched or
// not, success or shed — carries an X-Request-ID header.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// FlightRecorder returns the server's flight recorder (nil when disabled),
// for the daemon's SIGQUIT dump.
func (s *Server) FlightRecorder() *obs.Recorder { return s.rec }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/decompose", s.handleDecompose)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamCreate)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamGet)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("POST /v1/streams/{id}/append", s.handleStreamAppend)
	s.mux.HandleFunc("POST /v1/streams/{id}/decompose", s.handleStreamDecompose)
	s.mux.HandleFunc("GET /v1/streams/{id}/range", s.handleStreamRangeGet)
	s.mux.HandleFunc("POST /v1/streams/{id}/range", s.handleStreamRangePost)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	s.mux.HandleFunc("GET /debugz/requests", s.handleDebugzRequests)
}

// newJob allocates a job record with its own cancellable context (child of
// the server's base context, so drain-with-deadline can cancel everything),
// per-job collector, and optional tracer.
func (s *Server) newJob(key string, timeout time.Duration, traced bool,
	exec func(ctx context.Context, pl *pool.Pool, col *metrics.Collector) (*core.Decomposition, error)) *job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		key:     key,
		exec:    exec,
		ctx:     ctx,
		cancel:  cancel,
		timeout: timeout,
		col:     metrics.New(),
		state:   StateQueued,
		tenant:  defaultTenant,
		lane:    laneBatch,
		created: time.Now(),
	}
	if traced {
		j.tracer = trace.New()
		j.col.SetTracer(j.tracer)
		// The tracer is this job's own (not a shared stream-session tracer),
		// so the runner may record server-side spans into it.
		j.ownTracer = true
	}
	s.mu.Lock()
	s.nextJob++
	j.id = fmt.Sprintf("j-%06d", s.nextJob)
	s.mu.Unlock()
	return j
}

// register adds the job to the registry, pruning the oldest finished
// records past maxJobRecords.
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > maxJobRecords {
		old, ok := s.jobs[s.jobOrder[0]]
		if ok {
			old.mu.Lock()
			finished := old.state == StateDone || old.state == StateFailed || old.state == StateCancelled
			old.mu.Unlock()
			if !finished {
				break // never prune live jobs; registry grows until they finish
			}
			delete(s.jobs, s.jobOrder[0])
		}
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// admit places the job under admission control. It never blocks: a full
// queue, an exhausted tenant quota, or a draining server rejects
// immediately. Submissions identical to an in-flight job coalesce onto it —
// see admitOrCoalesce; admit itself reports coalesced submissions as
// admitted with no distinct leader.
func (s *Server) admit(j *job) error {
	_, err := s.admitOrCoalesce(j)
	return err
}

// admitOrCoalesce admits j, or attaches it as a follower of an identical
// in-flight leader (returned non-nil). The follower's record is registered
// like any job but it holds no queue slot and never executes; it finishes
// when its leader does.
func (s *Server) admitOrCoalesce(j *job) (*job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	s.jobsWG.Add(1)
	j.admitted = time.Now()
	s.schedMu.Lock()
	leader, err := s.sched.submitLocked(j, j.admitted)
	if err == nil && leader == nil {
		s.schedCond.Signal()
	}
	s.schedMu.Unlock()
	if err != nil {
		s.jobsWG.Done()
		s.rejected.Add(1)
		return nil, err
	}
	if leader != nil {
		// Coalesced: the leader's completion finishes this record, so it
		// holds no reference of its own in the drain wait group.
		s.jobsWG.Done()
		s.coalesced.Add(1)
	}
	s.register(j)
	s.submitted.Add(1)
	return leader, nil
}

// dequeue blocks until a job is dispatched or the scheduler is closed and
// empty (drain complete).
func (s *Server) dequeue() (*job, bool) {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	for {
		if j := s.sched.pickLocked(); j != nil {
			return j, true
		}
		if s.sched.closed {
			return nil, false
		}
		s.schedCond.Wait()
	}
}

func (s *Server) runner() {
	defer s.runnersWG.Done()
	for {
		j, ok := s.dequeue()
		if !ok {
			return
		}
		s.run(j)
	}
}

// run executes one job to completion, then finishes every follower that
// coalesced onto it. Exactly one runner runs a given job.
func (s *Server) run(j *job) {
	defer s.jobsWG.Done()
	defer j.cancel() // release the job context once the outcome is recorded
	s.running.Add(1)
	defer s.running.Add(-1)

	start := time.Now()
	wait := start.Sub(j.created)
	metrics.Observe(metrics.HistJobQueueWait, wait)
	if j.lane == laneInteractive {
		metrics.Observe(metrics.HistJobQueueWaitInteractive, wait)
	} else {
		metrics.Observe(metrics.HistJobQueueWaitBatch, wait)
	}
	if ch := j.durableReady; ch != nil {
		// Ack-after-commit barrier: wait for the accepted record to commit
		// before journaling anything else for this job. The submitting
		// handler closes the channel right after persistAccepted, so the
		// wait is bounded by one spill + one fsync.
		<-ch
	}
	j.setRunning(start)
	s.persistStarted(j)
	s.obs.Emit(obs.Event{
		Event: "job_start", RequestID: j.requestID, JobID: j.id,
		Tenant: j.tenant, Lane: j.lane.String(), Outcome: StateRunning,
		QueueWait: wait,
	})
	if j.ownTracer {
		// Retro-record the server-side phases so they land in the same tree
		// as the compute spans: admission (handler work before the queue) and
		// queue wait. admitted is zero for journal-recovered jobs, whose
		// pre-crash admission was in another process's tracer.
		adm := j.admitted
		if adm.IsZero() {
			adm = j.created
		}
		j.tracer.Record(0, "server:admission", trace.NoIdx, j.created, adm.Sub(j.created))
		j.tracer.Record(0, "server:queue-wait", trace.NoIdx, adm, start.Sub(adm))
	}

	ctx := j.ctx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}

	// The cache may have been filled by an identical job that ran while
	// this one waited in the queue.
	var (
		dec      *core.Decomposition
		err      error
		cacheHit bool
	)
	if j.key != "" {
		dec, cacheHit = s.cache.Get(j.key)
	}
	if !cacheHit {
		var runSpan trace.Ctx
		if j.ownTracer {
			runSpan = j.tracer.Begin("server:run")
		}
		dec, err = j.exec(ctx, s.pl, j.col)
		runSpan.End()
		metrics.ObserveSince(metrics.HistJobRun, start)
		if err == nil && j.key != "" {
			s.cache.Put(j.key, dec)
		}
	}
	end := time.Now()

	// Retire the job in the scheduler FIRST: after this, new identical
	// submissions either hit the cache (on success — Put already happened)
	// or start a fresh leader, and no late follower can attach unseen.
	s.schedMu.Lock()
	followers := s.sched.completeLocked(j)
	s.schedMu.Unlock()

	j.finish(dec, err, cacheHit, end)
	resultFile, resultDigest := s.persistFinished(j, dec, "", "")
	state := s.tally(j, err)
	s.obs.Emit(s.finishEvent(j, state, err, wait, end.Sub(start), cacheKind(cacheHit)))

	for _, f := range followers {
		metrics.Observe(metrics.HistJobCoalesceWait, end.Sub(f.created))
		f.finish(dec, err, false, end)
		f.cancel()
		s.persistFinished(f, dec, resultFile, resultDigest)
		fstate := s.tally(f, err)
		ev := s.finishEvent(f, fstate, err, end.Sub(f.created), 0, "coalesced")
		ev.Leader = j.id
		s.obs.Emit(ev)
	}
}

// emitAdmission logs one positive admission decision — accept, cache_hit,
// or coalesce (with the leader attached). Shed decisions are logged by
// writeAdmissionError, which is where the rejection is materialized.
func (s *Server) emitAdmission(j *job, outcome, leader string) {
	s.obs.Emit(obs.Event{
		Event: "admission", RequestID: j.requestID, JobID: j.id,
		Tenant: j.tenant, Lane: j.lane.String(), Outcome: outcome, Leader: leader,
	})
}

// finishEvent builds the job_finish event for one terminal job. Failures
// log at Warn so a level-filtered log still shows every bad outcome.
func (s *Server) finishEvent(j *job, state string, err error, wait, run time.Duration, cache string) obs.Event {
	ev := obs.Event{
		Event: "job_finish", RequestID: j.requestID, JobID: j.id,
		Tenant: j.tenant, Lane: j.lane.String(), Outcome: state,
		Cache: cache, QueueWait: wait, RunTime: run,
		Profile: s.cfg.KernelProfile.Fingerprint(),
	}
	if err != nil {
		ev.Err = wireError(err).Kind
	}
	if state == StateFailed {
		ev.Level = slog.LevelWarn
	}
	return ev
}

func cacheKind(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// tally records a finished job's terminal state in the global and per-tenant
// counters, returning the state. A job that was already finished (e.g. a
// follower cancelled individually before its leader completed) still tallies
// exactly once, here.
func (s *Server) tally(j *job, err error) string {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateDone:
		s.completed.Add(1)
	case StateCancelled:
		s.cancelled.Add(1)
	default:
		s.failed.Add(1)
	}
	s.schedMu.Lock()
	s.sched.tallyLocked(j, state)
	s.schedMu.Unlock()
	return state
}

// Drain gracefully shuts the server down: it stops admitting work, waits
// for queued and running jobs to finish, and — if ctx expires first —
// cancels everything in flight and waits for the cancellations to land.
// After Drain returns no runner goroutines remain and final statistics have
// been flushed through Logf. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) {
	if s.draining.Swap(true) {
		// Another Drain is (or was) in progress; wait for the jobs either way.
		s.jobsWG.Wait()
		s.runnersWG.Wait()
		return
	}
	s.cfg.Logf("drain: no longer admitting jobs; %d queued, %d running",
		s.queueLen(), s.running.Load())

	done := make(chan struct{})
	go func() { s.jobsWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Logf("drain: deadline reached, cancelling in-flight jobs")
		s.baseCancel() // cancels every job context at once
		<-done
	}
	s.schedMu.Lock()
	s.sched.closed = true
	s.schedCond.Broadcast()
	s.schedMu.Unlock()
	s.runnersWG.Wait()
	s.baseCancel()

	hits, misses := s.cache.Stats()
	s.cfg.Logf("drain: complete — %d submitted, %d done, %d failed, %d cancelled, %d rejected, %d coalesced; cache %d hits / %d misses",
		s.submitted.Load(), s.completed.Load(), s.failed.Load(),
		s.cancelled.Load(), s.rejected.Load(), s.coalesced.Load(), hits, misses)
	s.schedMu.Lock()
	for _, name := range s.sched.tenantNamesLocked() {
		st := s.sched.tenants[name].stats
		s.cfg.Logf("drain: tenant %s — %d submitted, %d done, %d coalesced, %d shed (queue %d / quota %d)",
			name, st.Submitted, st.Completed, st.Coalesced,
			st.RejectedQueue+st.RejectedQuota, st.RejectedQueue, st.RejectedQuota)
	}
	s.schedMu.Unlock()
	s.dur.Close()
}

// queueLen reports the number of jobs waiting to be dispatched.
func (s *Server) queueLen() int {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	return s.sched.queued
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// health snapshots the serving state for /healthz.
func (s *Server) health() Health {
	h := Health{
		Status:   "ok",
		QueueLen: s.queueLen(),
		QueueCap: s.cfg.QueueDepth,
		Running:  int(s.running.Load()),
		Workers:  s.pl.Size(),
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	return h
}

// statsSnapshot is the expvar payload under the "dtuckerd" key. Every field
// is documented in docs/OPERATIONS.md, "The /metricz surface".
func (s *Server) statsSnapshot() map[string]any {
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	streams := len(s.streams)
	s.mu.Unlock()
	s.schedMu.Lock()
	queued := s.sched.queued
	tenants := s.sched.snapshotLocked()
	s.schedMu.Unlock()
	durable := map[string]any{"enabled": false}
	if s.dur != nil {
		durable = s.dur.snapshot()
	}
	return map[string]any{
		"durability":     durable,
		"jobs_submitted": s.submitted.Load(),
		"jobs_completed": s.completed.Load(),
		"jobs_failed":    s.failed.Load(),
		"jobs_cancelled": s.cancelled.Load(),
		"jobs_rejected":  s.rejected.Load(),
		"jobs_coalesced": s.coalesced.Load(),
		"jobs_running":   s.running.Load(),
		"cache_hits":     hits,
		"cache_misses":   misses,
		"cache_entries":  s.cache.Len(),
		"queue_len":      queued,
		"queue_cap":      s.cfg.QueueDepth,
		"streams_open":   streams,
		"tenants":        tenants,
		"draining":       s.draining.Load(),
	}
}

// expvar wiring. expvar.Publish panics on duplicate names and tests create
// many Servers per process, so the published func reads through an atomic
// pointer to the most recently created server.
var (
	activeServer  atomic.Pointer[Server]
	publishServer sync.Once
)

func publishServerExpvar() {
	publishServer.Do(func() {
		expvar.Publish("dtuckerd", expvar.Func(func() any {
			s := activeServer.Load()
			if s == nil {
				return nil
			}
			return s.statsSnapshot()
		}))
	})
}

// ----- small HTTP helpers shared by the handler files -----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, e *WireError) {
	// Stash the error class for the flight recorder: shed 429s and other
	// errors written before any job record exists are otherwise invisible.
	if sw, ok := w.(*statusWriter); ok && sw.info != nil {
		sw.info.errClass = e.Kind
	}
	writeJSON(w, status, map[string]*WireError{"error": e})
}

// writeAdmissionError maps admit() failures onto HTTP load-shedding
// semantics — 429 + Retry-After for a full queue or exhausted tenant
// quota, 503 while draining — and emits the shed admission event. These
// responses exist before any job record, so the event carries whatever
// identity the request itself established (tenant, and job ID when a
// record was allocated before admission failed).
func (s *Server) writeAdmissionError(w http.ResponseWriter, r *http.Request, j *job, err error) {
	retryAfter := func() {
		secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	ev := obs.Event{
		Level: slog.LevelWarn, Event: "admission", RequestID: requestID(r),
	}
	if j != nil {
		ev.JobID = j.id
		ev.Tenant = j.tenant
		ev.Lane = j.lane.String()
	} else {
		ev.Tenant = requestTenant(r)
	}
	switch {
	case errors.Is(err, errQueueFull):
		ev.Outcome = "shed_queue_full"
		retryAfter()
		writeError(w, http.StatusTooManyRequests, &WireError{Kind: KindQueueFull, Message: err.Error()})
	case errors.Is(err, errTenantQuota):
		ev.Outcome = "shed_tenant_quota"
		retryAfter()
		writeError(w, http.StatusTooManyRequests, &WireError{Kind: KindTenantQuota, Message: err.Error()})
	case errors.Is(err, errDraining):
		ev.Outcome = "shed_draining"
		writeError(w, http.StatusServiceUnavailable, &WireError{Kind: KindDraining, Message: err.Error()})
	default:
		ev.Outcome = "error"
		ev.Err = err.Error()
		writeError(w, http.StatusInternalServerError, &WireError{Kind: KindInternal, Message: err.Error()})
	}
	s.obs.Emit(ev)
}
