package server

import (
	"net/http"
	"runtime"
	"sort"

	"repro/internal/metrics"
)

// handleMetricz is GET /metricz. The default (and ?format=expvar) payload
// is curated JSON: the dtucker kernel counters and histograms, the
// dtuckerd serving stats, and a small memstats subset — NOT the stock
// expvar handler, which leaks cmdline and the full runtime.MemStats dump
// (see docs/OPERATIONS.md for the breaking note). ?format=prometheus
// renders the same state in the Prometheus text exposition format for
// standard scrapers.
func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "expvar", "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"dtucker_metrics": metrics.Snapshot(),
			"dtucker_hists":   metrics.Histograms(),
			"dtuckerd":        s.statsSnapshot(),
			"memstats":        curatedMemstats(),
		})
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		p := metrics.NewPromWriter(w)
		s.writeServerProm(p)
		metrics.WriteCountersProm(p)
		metrics.WriteHistogramsProm(p)
	default:
		writeError(w, http.StatusBadRequest, &WireError{
			Kind:    KindInvalidInput,
			Message: "unknown format (want expvar or prometheus)",
		})
	}
}

// curatedMemstats is the deliberate subset of runtime.MemStats exported on
// /metricz: enough to watch heap pressure and GC cadence, without the
// ~30-field dump (and pause history arrays) the stock expvar handler
// publishes.
func curatedMemstats() map[string]any {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return map[string]any{
		"alloc":          m.Alloc,
		"total_alloc":    m.TotalAlloc,
		"sys":            m.Sys,
		"heap_alloc":     m.HeapAlloc,
		"heap_inuse":     m.HeapInuse,
		"heap_objects":   m.HeapObjects,
		"stack_inuse":    m.StackInuse,
		"num_gc":         m.NumGC,
		"pause_total_ns": m.PauseTotalNs,
		"last_gc":        m.LastGC,
		"goroutines":     runtime.NumGoroutine(),
	}
}

// writeServerProm renders the serving-layer state — job outcomes, queue
// and cache gauges, per-tenant admission counters, durability counters —
// onto p. Kernel counters and latency histograms follow from the metrics
// package's own renderers.
func (s *Server) writeServerProm(p *metrics.PromWriter) {
	const jobsHelp = "Jobs by terminal outcome or admission decision."
	p.Counter("dtuckerd_jobs_total", jobsHelp, s.submitted.Load(), "outcome", "submitted")
	p.Counter("dtuckerd_jobs_total", jobsHelp, s.completed.Load(), "outcome", "done")
	p.Counter("dtuckerd_jobs_total", jobsHelp, s.failed.Load(), "outcome", "failed")
	p.Counter("dtuckerd_jobs_total", jobsHelp, s.cancelled.Load(), "outcome", "cancelled")
	p.Counter("dtuckerd_jobs_total", jobsHelp, s.rejected.Load(), "outcome", "rejected")
	p.Counter("dtuckerd_jobs_total", jobsHelp, s.coalesced.Load(), "outcome", "coalesced")

	hits, misses := s.cache.Stats()
	p.Counter("dtuckerd_cache_hits_total", "Result-cache hits.", hits)
	p.Counter("dtuckerd_cache_misses_total", "Result-cache misses.", misses)

	s.mu.Lock()
	streams := len(s.streams)
	s.mu.Unlock()
	s.schedMu.Lock()
	queued := s.sched.queued
	tenants := s.sched.snapshotLocked()
	s.schedMu.Unlock()

	p.Gauge("dtuckerd_jobs_running", "Jobs currently executing.", float64(s.running.Load()))
	p.Gauge("dtuckerd_queue_len", "Jobs waiting in the admission queue.", float64(queued))
	p.Gauge("dtuckerd_queue_cap", "Admission queue capacity.", float64(s.cfg.QueueDepth))
	p.Gauge("dtuckerd_cache_entries", "Result-cache entries.", float64(s.cache.Len()))
	p.Gauge("dtuckerd_streams_open", "Open streaming sessions.", float64(streams))
	draining := 0.0
	if s.draining.Load() {
		draining = 1
	}
	p.Gauge("dtuckerd_draining", "1 while the server is draining.", draining)

	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	const tenantHelp = "Per-tenant admission and completion counters."
	for _, name := range names {
		st := tenants[name]
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.Submitted, "tenant", name, "outcome", "submitted")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.Completed, "tenant", name, "outcome", "done")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.Failed, "tenant", name, "outcome", "failed")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.Cancelled, "tenant", name, "outcome", "cancelled")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.RejectedQueue, "tenant", name, "outcome", "rejected_queue")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.RejectedQuota, "tenant", name, "outcome", "rejected_quota")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.Coalesced, "tenant", name, "outcome", "coalesced")
		p.Counter("dtuckerd_tenant_jobs_total", tenantHelp, st.CacheHits, "tenant", name, "outcome", "cache_hit")
	}

	if s.dur != nil {
		const durHelp = "Durability layer counters."
		snap := s.dur.snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if v, ok := snap[k].(int64); ok {
				p.Counter("dtuckerd_durability_"+k+"_total", durHelp, v)
			}
		}
	}
}

// handleDebugzRequests is GET /debugz/requests: the flight recorder's
// retained request summaries and pinned exemplars.
func (s *Server) handleDebugzRequests(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeError(w, http.StatusNotFound, &WireError{
			Kind:    KindNotFound,
			Message: "flight recorder disabled (Config.FlightRecorderSize < 0)",
		})
		return
	}
	writeJSON(w, http.StatusOK, s.rec.Snapshot())
}
