package server_test

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/rangeidx"
	"repro/internal/server"
	"repro/internal/tensor"
)

// testTensor builds a deterministic low-rank-plus-noise tensor.
func testTensor(seed int64, shape ...int) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	return tensor.RandN(rng, shape...)
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *repro.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	cl := repro.NewClient(hs.URL)
	cl.PollInterval = 2 * time.Millisecond
	return srv, hs, cl
}

// slowConfig and slowTensor build jobs that keep running until cancelled:
// a sub-normal tolerance with effectively unbounded sweeps on a tensor big
// enough that ALS does not reach a floating-point fixed point within the
// test's patience. Cancellation still lands quickly — it is observed at
// every sweep boundary.
func slowConfig() repro.Config {
	return repro.Config{Ranks: []int{8, 8, 8}, Tol: 1e-300, MaxIters: 1 << 30}
}

func slowTensor(seed int64) *tensor.Dense {
	return testTensor(seed, 44, 40, 36)
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func tensorB64(t *testing.T, x *tensor.Dense) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// TestServedResultBitIdentical is the core acceptance check: a result
// served over HTTP is bit-identical to an in-process Decompose with the
// same config — binary format, JSON format, and client convenience path.
func TestServedResultBitIdentical(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Workers: 2})
	x := testTensor(7, 16, 14, 12)
	cfg := repro.Config{Ranks: []int{5, 4, 3}, Seed: 42}

	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := cl.Decompose(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	// The JSON result format must agree too.
	receipt, err := cl.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.CacheHit {
		t.Fatalf("identical resubmission missed the cache: %+v", receipt)
	}
	resp, err := http.Get(hs.URL + "/v1/jobs/" + receipt.JobID + "/result?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaJSON core.Decomposition
	if err := json.NewDecoder(resp.Body).Decode(&viaJSON); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, &viaJSON)
}

func requireBitIdentical(t *testing.T, want, got *core.Decomposition) {
	t.Helper()
	if math.Float64bits(want.Fit) != math.Float64bits(got.Fit) {
		t.Fatalf("fit differs: %v vs %v", want.Fit, got.Fit)
	}
	wc, gc := want.Core.Data(), got.Core.Data()
	if len(wc) != len(gc) {
		t.Fatalf("core size differs: %d vs %d", len(wc), len(gc))
	}
	for i := range wc {
		if math.Float64bits(wc[i]) != math.Float64bits(gc[i]) {
			t.Fatalf("core element %d differs", i)
		}
	}
	for n := range want.Factors {
		wf, gf := want.Factors[n].Data(), got.Factors[n].Data()
		if len(wf) != len(gf) {
			t.Fatalf("factor %d size differs", n)
		}
		for i := range wf {
			if math.Float64bits(wf[i]) != math.Float64bits(gf[i]) {
				t.Fatalf("factor %d element %d differs", n, i)
			}
		}
	}
}

// TestResubmitHitsCache proves the (tensor digest, canonical config) cache
// key: an equivalent config spelled differently (explicit defaults vs zero
// values) must hit, a different seed must miss.
func TestResubmitHitsCache(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Workers: 1})
	x := testTensor(8, 12, 11, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	base := repro.Config{Ranks: []int{4, 4, 4}}
	if _, err := cl.Decompose(ctx, x, base, nil); err != nil {
		t.Fatal(err)
	}

	// Explicit defaults normalize to the same canonical key.
	spelled := repro.Config{Ranks: []int{4, 4, 4}, Tol: 1e-4, MaxIters: 100, Oversampling: 5, PowerIters: 1}
	receipt, err := cl.Submit(ctx, x, spelled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.CacheHit {
		t.Fatal("default-spelled config missed the cache")
	}
	if receipt.State != server.StateDone {
		t.Fatalf("cache-hit job state = %q, want done", receipt.State)
	}

	// A different seed is a different request.
	receipt, err = cl.Submit(ctx, x, repro.Config{Ranks: []int{4, 4, 4}, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if receipt.CacheHit {
		t.Fatal("different seed hit the cache")
	}
	if _, err := cl.Decompose(ctx, x, repro.Config{Ranks: []int{4, 4, 4}, Seed: 9}, nil); err != nil {
		t.Fatal(err)
	}

	// The hit must also show in the server's cache counter on /metricz.
	resp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ev struct {
		Dtuckerd struct {
			CacheHits   int64 `json:"cache_hits"`
			CacheMisses int64 `json:"cache_misses"`
		} `json:"dtuckerd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev.Dtuckerd.CacheHits < 1 {
		t.Fatalf("cache_hits = %d after a resubmission hit", ev.Dtuckerd.CacheHits)
	}
	if ev.Dtuckerd.CacheMisses < 1 {
		t.Fatalf("cache_misses = %d, want at least the first submission", ev.Dtuckerd.CacheMisses)
	}
}

// TestClientRetriesQueueFull exercises the client's 429 handling: against
// a rejecting server the typed error carries the Retry-After hint.
// (The exact shedding boundary is pinned deterministically in
// TestAdmissionControl, which parks runners on blocking jobs.)
func TestClientRetriesQueueFull(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{
		Workers: 1, Runners: 1, QueueDepth: 1, RetryAfter: 2 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	running, err := cl.Submit(ctx, slowTensor(9), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, running.JobID, server.StateRunning)

	queued, err := cl.Submit(ctx, slowTensor(10), slowConfig(), nil)
	if err != nil {
		t.Fatalf("queue-depth-1 submission rejected: %v", err)
	}

	_, err = cl.Submit(ctx, slowTensor(11), slowConfig(), nil)
	var apiErr *repro.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("overload submission returned %v, want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", apiErr.StatusCode)
	}
	if apiErr.Kind != server.KindQueueFull {
		t.Fatalf("kind = %q, want %q", apiErr.Kind, server.KindQueueFull)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %v, want 2s", apiErr.RetryAfter)
	}

	// Cancel both jobs so cleanup-drain is fast.
	for _, id := range []string{running.JobID, queued.JobID} {
		if err := cl.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{running.JobID, queued.JobID} {
		waitForState(t, cl, id, server.StateCancelled)
	}
}

func waitForState(t *testing.T, cl *repro.Client, id, want string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for {
		st, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		if st.State == server.StateFailed || (st.State == server.StateCancelled && want != server.StateCancelled) ||
			(st.State == server.StateDone && want != server.StateDone) {
			t.Fatalf("job %s reached %q while waiting for %q (err %v)", id, st.State, want, st.Error)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s stuck before %q", id, want)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestDrainFinishesInFlight: drain with a generous deadline lets queued and
// running jobs finish; submissions during or after drain get 503; no
// goroutines leak.
func TestDrainFinishesInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := server.New(server.Config{Workers: 2, Runners: 2})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	cl := repro.NewClient(hs.URL)
	cl.PollInterval = 2 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	x := testTensor(12, 14, 13, 12)
	cfg := repro.Config{Ranks: []int{4, 4, 4}}
	receipt, err := cl.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDrain()
	srv.Drain(drainCtx)

	st, err := cl.Job(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("in-flight job state after drain = %q, want done (err %v)", st.State, st.Error)
	}

	// The drained server still answers polls but rejects new work with 503.
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("health status = %q, want draining", h.Status)
	}
	_, err = cl.Submit(ctx, x, repro.Config{Ranks: []int{3, 3, 3}}, nil)
	var apiErr *repro.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining returned %v, want 503", err)
	}

	hs.Close()
	waitForGoroutines(t, before)
}

// TestDrainDeadlineCancels: a drain whose context is already expired must
// cancel in-flight jobs instead of waiting for them, and still return with
// every runner joined.
func TestDrainDeadlineCancels(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := server.New(server.Config{Workers: 1, Runners: 1})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	cl := repro.NewClient(hs.URL)
	cl.PollInterval = 2 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	receipt, err := cl.Submit(ctx, slowTensor(13), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, receipt.JobID, server.StateRunning)

	expired, cancelExpired := context.WithCancel(context.Background())
	cancelExpired()
	start := time.Now()
	srv.Drain(expired)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}

	st, err := cl.Job(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCancelled {
		t.Fatalf("job state after forced drain = %q, want cancelled", st.State)
	}
	if st.Error == nil || st.Error.Kind != server.KindCancelled {
		t.Fatalf("cancelled job error = %+v, want kind %q", st.Error, server.KindCancelled)
	}

	hs.Close()
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count returns to its baseline
// (plus slack for the test runner and finalizers), proving drain leaves no
// runner or job goroutines behind.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Idle keep-alive connections own goroutines; release them so the
		// count reflects only what the server may have leaked.
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFaultInjectionOverHTTP arms a library fault site and verifies the
// typed error crosses the HTTP boundary intact.
func TestFaultInjectionOverHTTP(t *testing.T) {
	faults.Reset()
	if err := faults.Activate("core.approx.slice", faults.Plan{Count: -1}); err != nil {
		t.Fatal(err)
	}
	defer faults.Reset()

	_, _, cl := newTestServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	_, err := cl.Decompose(ctx, testTensor(14, 10, 9, 8), repro.Config{Ranks: []int{3, 3, 3}}, nil)
	var apiErr *repro.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("injected fault surfaced as %v, want *APIError", err)
	}
	if apiErr.Kind != server.KindInjected {
		t.Fatalf("kind = %q, want %q", apiErr.Kind, server.KindInjected)
	}
	if !strings.Contains(apiErr.Message, "core.approx.slice") {
		t.Fatalf("error %q does not name the fault site", apiErr.Message)
	}
}

// TestRejectedRequests drives the 400 surface: malformed JSON, bad
// base64, corrupt tensor bytes, invalid configs, rank/order mismatch.
func TestRejectedRequests(t *testing.T) {
	_, hs, _ := newTestServer(t, server.Config{Workers: 1})
	x := testTensor(15, 6, 5, 4)

	cases := map[string]any{
		"bad config": server.DecomposeRequest{
			Config:    repro.Config{Ranks: []int{0, 1, 1}},
			TensorB64: tensorB64(t, x),
		},
		"bad base64": server.DecomposeRequest{
			Config:    repro.Config{Ranks: []int{2, 2, 2}},
			TensorB64: "not base64!!!",
		},
		"corrupt tensor": server.DecomposeRequest{
			Config:    repro.Config{Ranks: []int{2, 2, 2}},
			TensorB64: base64.StdEncoding.EncodeToString([]byte("XXXXXXXXXX")),
		},
		"rank/order mismatch": server.DecomposeRequest{
			Config:    repro.Config{Ranks: []int{2, 2}},
			TensorB64: tensorB64(t, x),
		},
	}
	for name, body := range cases {
		resp := postJSON(t, hs.URL+"/v1/decompose", body)
		var env struct {
			Error *server.WireError `json:"error"`
		}
		err := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if err != nil || env.Error == nil || env.Error.Kind != server.KindInvalidInput {
			t.Fatalf("%s: error envelope %+v (%v), want kind %q", name, env.Error, err, server.KindInvalidInput)
		}
	}

	// Unknown endpoint and unknown job must 404.
	resp, err := http.Get(hs.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestJobTimeoutCancels: a submitted timeout_ms bounds execution.
func TestJobTimeoutCancels(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	receipt, err := cl.Submit(ctx, slowTensor(16), slowConfig(),
		&repro.SubmitOptions{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, receipt.JobID, server.StateCancelled)
	st, err := cl.Job(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Error == nil || st.Error.Kind != server.KindCancelled {
		t.Fatalf("timed-out job error = %+v, want kind %q", st.Error, server.KindCancelled)
	}
}

// TestTraceAndMetrics: a traced job exposes spans and a metrics report;
// /metricz carries the expvar surface including the server counters.
func TestTraceAndMetrics(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	x := testTensor(17, 12, 11, 10)
	cfg := repro.Config{Ranks: []int{3, 3, 3}}
	if _, err := cl.Decompose(ctx, x, cfg, &repro.SubmitOptions{Trace: true}); err != nil {
		t.Fatal(err)
	}
	// Submit was through Decompose; find the job via a fresh submit (cache
	// hit shares the record shape but not the tracer), so instead submit a
	// distinct traced job and poll it.
	receipt, err := cl.Submit(ctx, x, repro.Config{Ranks: []int{3, 3, 3}, Seed: 5}, &repro.SubmitOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, receipt.JobID, server.StateDone)

	st, err := cl.Job(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Metrics == nil || len(st.Metrics.Phases) == 0 {
		t.Fatalf("finished job has no metrics report: %+v", st.Metrics)
	}
	if st.TraceSpans == 0 {
		t.Fatal("traced job recorded no spans")
	}

	resp, err := http.Get(hs.URL + "/v1/jobs/" + receipt.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", resp.StatusCode)
	}
	var firstSpan map[string]any
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&firstSpan); err != nil {
		t.Fatalf("trace output is not JSONL: %v", err)
	}

	mresp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var ev map[string]json.RawMessage
	if err := json.NewDecoder(mresp.Body).Decode(&ev); err != nil {
		t.Fatalf("/metricz is not JSON: %v", err)
	}
	raw, ok := ev["dtuckerd"]
	if !ok {
		t.Fatalf("/metricz has no dtuckerd key (have %d keys)", len(ev))
	}
	var stats struct {
		Submitted int64 `json:"jobs_submitted"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted == 0 {
		t.Fatal("dtuckerd expvar reports zero submissions")
	}
	if _, ok := ev["dtucker_hists"]; !ok {
		t.Fatal("/metricz has no latency histograms")
	}
}

// TestStreamSessions: append chunks over HTTP, solve, range-query, verify
// against an in-process Stream fed the same chunks, and check the range
// cache.
func TestStreamSessions(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cfg := repro.Config{Ranks: []int{3, 3, 3}, SliceRank: 4}
	chunks := []*tensor.Dense{
		testTensor(21, 10, 9, 4),
		testTensor(22, 10, 9, 3),
		testTensor(23, 10, 9, 5),
	}

	// In-process reference.
	opts := cfg.Options()
	ref := core.NewStream(opts)
	for _, c := range chunks {
		if err := ref.Append(c); err != nil {
			t.Fatal(err)
		}
	}

	// Served session.
	resp := postJSON(t, hs.URL+"/v1/streams", server.StreamRequest{Config: cfg})
	var sess server.StreamResponse
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sess.StreamID == "" {
		t.Fatalf("stream create: status %d, id %q", resp.StatusCode, sess.StreamID)
	}
	base := hs.URL + "/v1/streams/" + sess.StreamID
	for _, c := range chunks {
		r := postJSON(t, base+"/append", server.AppendRequest{TensorB64: tensorB64(t, c)})
		var st server.StreamResponse
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d", r.StatusCode)
		}
	}

	// Full-stream solve.
	want, err := ref.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	got := streamSolve(t, cl, base+"/decompose", server.SolveRequest{})
	requireBitIdentical(t, want, got)

	// Range query via the deprecated POST alias, twice: the second
	// submission must be a cache hit, and both responses must advertise the
	// deprecation.
	wantRange, err := ref.DecomposeRange(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	gotRange := streamSolve(t, cl, base+"/range", server.RangeRequest{T0: 2, T1: 9})
	requireBitIdentical(t, wantRange, gotRange)

	r := postJSON(t, base+"/range", server.RangeRequest{T0: 2, T1: 9})
	if r.Header.Get("Deprecation") == "" {
		t.Fatal("POST /range alias did not send a Deprecation header")
	}
	var receipt server.SubmitResponse
	if err := json.NewDecoder(r.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if !receipt.CacheHit {
		t.Fatal("repeated range query missed the cache")
	}
	cached, err := cl.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantRange, cached)

	// The first-class GET endpoint shares the POST alias's cache key: the
	// same window is a cache hit, answered bit-identically, and GET is not
	// deprecated.
	gr, err := http.Get(base + "/range?t0=2&t1=9")
	if err != nil {
		t.Fatal(err)
	}
	if gr.Header.Get("Deprecation") != "" {
		t.Fatal("GET /range sent a Deprecation header; it is the successor")
	}
	var greceipt server.SubmitResponse
	if err := json.NewDecoder(gr.Body).Decode(&greceipt); err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if !greceipt.CacheHit {
		t.Fatal("GET range for a POST-cached window missed the cache")
	}
	gcached, err := cl.Result(ctx, greceipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, wantRange, gcached)

	// A decompose body carrying the retired t0/t1 fields is rejected: range
	// parameters moved to the range endpoints.
	br := postJSON(t, base+"/decompose", map[string]int{"t0": 2, "t1": 9})
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("decompose with t0/t1 body: status %d, want 400", br.StatusCode)
	}

	// Delete, then 404.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("stream delete: status %d", dresp.StatusCode)
	}
	gresp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted stream GET: status %d, want 404", gresp.StatusCode)
	}
}

// TestStreamRangeGetValidation: the GET range endpoint rejects malformed
// and out-of-bounds windows up front with typed invalid_input errors — a
// bad URL never consumes a queue slot.
func TestStreamRangeGetValidation(t *testing.T) {
	_, hs, _ := newTestServer(t, server.Config{Workers: 1})
	resp := postJSON(t, hs.URL+"/v1/streams", server.StreamRequest{Config: repro.Config{Ranks: []int{3, 3, 3}, SliceRank: 4}})
	var sess server.StreamResponse
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	base := hs.URL + "/v1/streams/" + sess.StreamID
	r := postJSON(t, base+"/append", server.AppendRequest{TensorB64: tensorB64(t, testTensor(31, 10, 9, 4))})
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", r.StatusCode)
	}

	for _, q := range []string{
		"t0=2&t1=2",   // empty window
		"t0=9&t1=3",   // inverted
		"t0=-1&t1=3",  // negative start
		"t0=0&t1=100", // beyond the stream's 4 steps
		"t0=abc&t1=3", // not an integer
		"t0=0&t1=2&timeout_ms=soon",
	} {
		gr, err := http.Get(base + "/range?" + q)
		if err != nil {
			t.Fatal(err)
		}
		if gr.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET range?%s: status %d, want 400", q, gr.StatusCode)
		}
		if we := decodeWireError(t, gr); we.Kind != server.KindInvalidInput {
			t.Fatalf("GET range?%s: kind %q, want %q", q, we.Kind, server.KindInvalidInput)
		}
	}

	gr, err := http.Get(hs.URL + "/v1/streams/s-999999/range?t0=0&t1=2")
	if err != nil {
		t.Fatal(err)
	}
	if gr.StatusCode != http.StatusNotFound {
		t.Fatalf("GET range on missing stream: status %d, want 404", gr.StatusCode)
	}
	gr.Body.Close()

	// A well-formed window is admitted, and the response carries the
	// request-ID correlation header like every other submission endpoint.
	ok, err := http.Get(base + "/range?t0=0&t1=4&timeout_ms=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted && ok.StatusCode != http.StatusOK {
		t.Fatalf("valid GET range: status %d", ok.StatusCode)
	}
	if ok.Header.Get(server.HeaderRequestID) == "" {
		t.Fatal("GET range response missing the X-Request-ID header")
	}
	var receipt server.SubmitResponse
	if err := json.NewDecoder(ok.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	if receipt.JobID == "" || receipt.RequestID == "" {
		t.Fatalf("GET range receipt incomplete: %+v", receipt)
	}
}

// TestStreamRangeStitchE2E drives the range index over HTTP: with a small
// block size the served window takes the stitch path, the result is
// bit-identical to an in-process index over the same stream, and — because
// range keys are prefix-digests — the same window is a cache hit even
// after the stream has grown.
func TestStreamRangeStitchE2E(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{Workers: 2, RangeBlockSize: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	cfg := repro.Config{Ranks: []int{3, 3, 3}, SliceRank: 4}
	chunks := []*tensor.Dense{
		testTensor(41, 10, 9, 4),
		testTensor(42, 10, 9, 4),
		testTensor(43, 10, 9, 4),
	}

	// In-process reference index over an identical stream.
	ref := core.NewStream(cfg.Options())
	for _, c := range chunks {
		if err := ref.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	ridx := rangeidx.New(ref, rangeidx.Config{BlockSize: 2})
	want, stat, err := ridx.Query(ctx, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Path != rangeidx.PathStitch {
		t.Fatalf("reference query path %q, want stitch", stat.Path)
	}

	resp := postJSON(t, hs.URL+"/v1/streams", server.StreamRequest{Config: cfg})
	var sess server.StreamResponse
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	base := hs.URL + "/v1/streams/" + sess.StreamID
	for _, c := range chunks {
		r := postJSON(t, base+"/append", server.AppendRequest{TensorB64: tensorB64(t, c)})
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("append: status %d", r.StatusCode)
		}
	}

	got := streamRangeGet(t, cl, base, 0, 12)
	requireBitIdentical(t, want, got)

	// Grow the stream; the already-answered window must still hit the
	// cache — its covering prefix is unchanged by the append.
	r := postJSON(t, base+"/append", server.AppendRequest{TensorB64: tensorB64(t, testTensor(44, 10, 9, 4))})
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", r.StatusCode)
	}
	gr, err := http.Get(base + "/range?t0=0&t1=12")
	if err != nil {
		t.Fatal(err)
	}
	var receipt server.SubmitResponse
	if err := json.NewDecoder(gr.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if !receipt.CacheHit {
		t.Fatal("range re-query after append missed the cache; prefix keys should be append-stable")
	}
	cached, err := cl.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, cached)
}

// streamRangeGet submits GET /range and polls the job to completion.
func streamRangeGet(t *testing.T, cl *repro.Client, base string, t0, t1 int) *core.Decomposition {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/range?t0=%d&t1=%d", base, t0, t1))
	if err != nil {
		t.Fatal(err)
	}
	var receipt server.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&receipt)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("range submit: status %d", resp.StatusCode)
	}
	waitForState(t, cl, receipt.JobID, server.StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dec, err := cl.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// streamSolve submits a solve to url and polls it to completion.
func streamSolve(t *testing.T, cl *repro.Client, url string, req any) *core.Decomposition {
	t.Helper()
	resp := postJSON(t, url, req)
	var receipt server.SubmitResponse
	err := json.NewDecoder(resp.Body).Decode(&receipt)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("solve submit: status %d", resp.StatusCode)
	}
	waitForState(t, cl, receipt.JobID, server.StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dec, err := cl.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestResultBeforeDone: polling the result of a queued/running job answers
// 409 with the job's state, not a partial payload.
func TestResultBeforeDone(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	receipt, err := cl.Submit(ctx, slowTensor(24), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Result(ctx, receipt.JobID)
	var apiErr *repro.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("early result fetch returned %v, want 409", err)
	}
	if err := cl.Cancel(ctx, receipt.JobID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl, receipt.JobID, server.StateCancelled)
}

func ExampleClient() {
	srv, err := server.New(server.Config{Workers: 1})
	if err != nil {
		panic(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	cl := repro.NewClient(hs.URL)
	x := testTensor(30, 12, 10, 8)
	dec, err := cl.Decompose(context.Background(), x, repro.Config{Ranks: []int{3, 3, 3}}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("core shape:", dec.Core.Shape())
	srv.Drain(context.Background())
	// Output:
	// core shape: [3 3 3]
}
