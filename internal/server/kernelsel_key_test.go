package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernelsel"
)

// mustNew builds a Server or fails the test; in-package tests never hit
// New's only error path (durability recovery), which needs a DataDir.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func newDrainedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := mustNew(t, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// TestCacheKeyChangesWithProfile pins the cache-soundness invariant of
// auto kernel selection: two servers running profiles with different cost
// coefficients must produce different cache keys for the same auto
// request, while forced-kernel requests share keys across profiles.
func TestCacheKeyChangesWithProfile(t *testing.T) {
	slow := kernelsel.Default()
	slow.EigNsPerN3 *= 100 // different selection behavior → different profile
	sA := newDrainedServer(t, Config{Workers: 1, Runners: 1})
	sB := newDrainedServer(t, Config{Workers: 1, Runners: 1, KernelProfile: slow})

	auto := core.Config{Ranks: []int{3, 3, 3}, SliceKernel: "auto"}
	cfgA, cfgB := auto, auto
	if werr := sA.stampKernelProfile(&cfgA); werr != nil {
		t.Fatal(werr)
	}
	if werr := sB.stampKernelProfile(&cfgB); werr != nil {
		t.Fatal(werr)
	}
	if cfgA.KernelProfile == "" || cfgB.KernelProfile == "" {
		t.Fatal("stamping left a fingerprint empty")
	}
	if cacheKey("digest", cfgA) == cacheKey("digest", cfgB) {
		t.Fatal("different profiles produced the same cache key — a profile change could serve stale results")
	}

	// Same profile, restamped: stable key.
	cfgA2 := auto
	if werr := sA.stampKernelProfile(&cfgA2); werr != nil {
		t.Fatal(werr)
	}
	if cacheKey("digest", cfgA) != cacheKey("digest", cfgA2) {
		t.Fatal("restamping under the same profile changed the key")
	}

	// Forced kernels are profile-independent: identical keys on both
	// servers.
	forced := core.Config{Ranks: []int{3, 3, 3}, SliceKernel: "exact"}
	fA, fB := forced, forced
	if sA.stampKernelProfile(&fA) != nil || sB.stampKernelProfile(&fB) != nil {
		t.Fatal("stamping a forced-kernel config failed")
	}
	if cacheKey("digest", fA) != cacheKey("digest", fB) {
		t.Fatal("forced-kernel keys differ across profiles")
	}
}
