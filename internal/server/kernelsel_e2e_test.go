package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro"
	"repro/internal/kernelsel"
	"repro/internal/server"
)

// postWithHeaders posts a JSON body with extra headers and returns the
// response.
func postWithHeaders(t *testing.T, url string, body any, headers map[string]string) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeWireError(t *testing.T, resp *http.Response) *server.WireError {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Error *server.WireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	if env.Error == nil {
		t.Fatal("error response carried no wire error")
	}
	return env.Error
}

// TestBadPriorityHeaderRejected: an X-Priority value that names no lane must
// be a 400 with a typed invalid_input error on every job-submitting
// endpoint — not a silent demotion to the default lane.
func TestBadPriorityHeaderRejected(t *testing.T) {
	_, hs, _ := newTestServer(t, server.Config{Workers: 1})
	x := testTensor(3, 8, 7, 6)
	decompose := server.DecomposeRequest{
		Config:    repro.Config{Ranks: []int{2, 2, 2}},
		TensorB64: tensorB64(t, x),
	}

	for _, bad := range []string{"Interactive", "high", "BATCH"} {
		resp := postWithHeaders(t, hs.URL+"/v1/decompose", decompose, map[string]string{"X-Priority": bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("X-Priority %q: status %d, want 400", bad, resp.StatusCode)
		}
		if we := decodeWireError(t, resp); we.Kind != server.KindInvalidInput {
			t.Fatalf("X-Priority %q: kind %q, want %q", bad, we.Kind, server.KindInvalidInput)
		}
	}

	// The valid spellings still work.
	for _, good := range []string{"interactive", "batch", ""} {
		resp := postWithHeaders(t, hs.URL+"/v1/decompose", decompose, map[string]string{"X-Priority": good})
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("X-Priority %q: status %d, want accepted", good, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Stream endpoints apply the same validation.
	resp := postJSON(t, hs.URL+"/v1/streams", server.StreamRequest{Config: repro.Config{Ranks: []int{2, 2, 2}}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("stream create: status %d", resp.StatusCode)
	}
	var sr server.StreamResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, path := range []string{"/decompose", "/range"} {
		resp := postWithHeaders(t, hs.URL+"/v1/streams/"+sr.StreamID+path,
			server.SolveRequest{}, map[string]string{"X-Priority": "urgent"})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("stream %s with bad priority: status %d, want 400", path, resp.StatusCode)
		}
		if we := decodeWireError(t, resp); we.Kind != server.KindInvalidInput {
			t.Fatalf("stream %s: kind %q, want %q", path, we.Kind, server.KindInvalidInput)
		}
	}
}

// TestAutoKernelCacheKeyedByProfile: auto-selection requests are cached
// under the server's profile fingerprint — an identical resubmission hits,
// a request spelling the fingerprint explicitly hits the same entry, and a
// request pinning a different profile is rejected outright.
func TestAutoKernelCacheKeyedByProfile(t *testing.T) {
	profile := kernelsel.Default()
	_, _, cl := newTestServer(t, server.Config{Workers: 1, KernelProfile: profile})
	x := testTensor(9, 12, 11, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	auto := repro.Config{Ranks: []int{4, 4, 4}, SliceKernel: "auto"}
	if _, err := cl.Decompose(ctx, x, auto, nil); err != nil {
		t.Fatal(err)
	}
	receipt, err := cl.Submit(ctx, x, auto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.CacheHit {
		t.Fatal("identical auto-selection resubmission missed the cache")
	}

	// Naming the server's own fingerprint explicitly is the same request.
	pinned := auto
	pinned.KernelProfile = profile.Fingerprint()
	receipt, err = cl.Submit(ctx, x, pinned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.CacheHit {
		t.Fatal("fingerprint-pinned resubmission missed the cache")
	}

	// Pinning a profile the server does not run is an invalid request, not
	// a silent recompute under the wrong key.
	wrong := auto
	wrong.KernelProfile = "ffffffffffffffff"
	if _, err := cl.Submit(ctx, x, wrong, nil); err == nil {
		t.Fatal("mismatched profile fingerprint was accepted")
	}

	// A forced kernel ignores the profile: no fingerprint in its key, so it
	// caches identically whatever profile the server runs.
	forced := repro.Config{Ranks: []int{4, 4, 4}, SliceKernel: "randsvd", KernelProfile: "ffffffffffffffff"}
	if _, err := cl.Decompose(ctx, x, forced, nil); err != nil {
		t.Fatal(err)
	}
}
