package server

import (
	"context"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// reqInfo is the per-request correlation state: the request ID resolved by
// the instrument middleware plus whatever identity the handler learns along
// the way (job, tenant, lane, outcome). It travels in the request context
// so deep helpers — writeError, writeAdmissionError — can annotate the
// in-flight request without new parameters at every call site.
type reqInfo struct {
	id       string
	tenant   string
	lane     string
	jobID    string
	outcome  string
	errClass string
}

type reqInfoKey struct{}

// statusWriter captures the response status code for the flight recorder
// and carries the request's reqInfo so writeError can stash the error
// class of a response written before any job record exists (shed 429s).
type statusWriter struct {
	http.ResponseWriter
	status int
	info   *reqInfo
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

// instrument wraps the mux with the request-scoped observability envelope:
// it resolves the correlation ID (client X-Request-ID, then W3C
// traceparent, then freshly minted), sets the X-Request-ID response header
// before the handler runs — so every response, including errors and sheds,
// carries it — and records a summary into the flight recorder when the
// request finishes.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id, _ := obs.FromHTTP(r)
		info := &reqInfo{id: id}
		w.Header().Set(obs.HeaderRequestID, id)
		sw := &statusWriter{ResponseWriter: w, info: info}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info)))
		if s.rec == nil {
			return
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := info.outcome
		if outcome == "" {
			switch {
			case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
				outcome = "shed"
			case status >= 500:
				outcome = "error"
			case status >= 400:
				outcome = "client_error"
			default:
				outcome = "ok"
			}
		}
		s.rec.Record(obs.RequestSummary{
			RequestID: id,
			Route:     routeLabel(r.Method, r.URL.Path),
			Status:    status,
			Tenant:    info.tenant,
			Lane:      info.lane,
			JobID:     info.jobID,
			Outcome:   outcome,
			ErrClass:  info.errClass,
			StartMs:   start.UnixMilli(),
			LatencyMs: float64(time.Since(start)) / float64(time.Millisecond),
		})
	})
}

// routeLabel normalizes a request path onto its route shape — the ID
// segment of /v1/jobs/{id}... and /v1/streams/{id}... collapses to {id} —
// so flight-recorder exemplars group per endpoint, not per job.
func routeLabel(method, path string) string {
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(segs) >= 3 && segs[0] == "v1" && (segs[1] == "jobs" || segs[1] == "streams") {
		segs[2] = "{id}"
		path = "/" + strings.Join(segs, "/")
	}
	return method + " " + path
}

// requestID returns the correlation ID instrument resolved for this
// request. Requests served outside the instrumented handler (direct mux
// use in tests) mint a fresh ID so the event-log schema invariant — every
// event carries a request ID — holds unconditionally.
func requestID(r *http.Request) string {
	if info, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
		return info.id
	}
	return obs.NewRequestID()
}

func reqInfoFrom(r *http.Request) *reqInfo {
	info, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	return info
}

// annotateJob attributes the in-flight request to a job for the flight
// recorder: identity plus the admission outcome ("accept", "cache_hit",
// "coalesce").
func annotateJob(r *http.Request, j *job, outcome string) {
	info := reqInfoFrom(r)
	if info == nil {
		return
	}
	info.jobID = j.id
	info.tenant = j.tenant
	info.lane = j.lane.String()
	info.outcome = outcome
}
