package server_test

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

// fillQueue parks the server's single runner on a blocking job and fills
// the depth-1 queue with a second, so the next submission is shed with 429.
// It returns the two job IDs for cleanup.
func fillQueue(t *testing.T, cl *repro.Client, ctx context.Context) (running, queued string) {
	t.Helper()
	r, err := cl.Submit(ctx, slowTensor(31), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cl.Submit(ctx, slowTensor(32), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return r.JobID, q.JobID
}

// TestDecomposeRetryExhaustion pins the bounded-retry contract against the
// blocking-job 429 harness: with the queue pinned full, Decompose makes
// exactly MaxAttempts submissions, sleeps between them for the server's
// Retry-After hint (stretched by deterministic jitter), and surfaces the
// final 429 as a typed error. Every delay is observed through the Sleep
// seam, so the test never actually waits.
func TestDecomposeRetryExhaustion(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{
		Workers: 1, Runners: 1, QueueDepth: 1, RetryAfter: 2 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	running, queued := fillQueue(t, cl, ctx)
	defer func() {
		for _, id := range []string{running, queued} {
			if err := cl.Cancel(ctx, id); err != nil {
				t.Error(err)
			}
		}
	}()

	var slept []time.Duration
	cl.Retry = &repro.RetryPolicy{
		MaxAttempts: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
		Rand: func() float64 { return 0.5 },
	}
	_, err := cl.Decompose(ctx, slowTensor(33), slowConfig(), nil)
	var apiErr *repro.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("exhausted retries surfaced as %v, want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", apiErr.StatusCode)
	}
	if apiErr.Kind != server.KindQueueFull {
		t.Fatalf("kind = %q, want %q", apiErr.Kind, server.KindQueueFull)
	}
	// MaxAttempts 3 → 2 sleeps, each the 2s hint · (1 + 0.5·0.5) = 2.5s.
	want := 2500 * time.Millisecond
	if len(slept) != 2 || slept[0] != want || slept[1] != want {
		t.Fatalf("slept %v, want exactly [%v %v]", slept, want, want)
	}
}

// TestDecomposeRetryRecovers frees a queue slot inside the first backoff
// wait and checks the second attempt is admitted: the retry loop's purpose.
func TestDecomposeRetryRecovers(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{
		Workers: 1, Runners: 1, QueueDepth: 1, RetryAfter: time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	running, queued := fillQueue(t, cl, ctx)

	attempts := 0
	cl.Retry = &repro.RetryPolicy{
		MaxAttempts: 4,
		Sleep: func(ctx context.Context, d time.Duration) error {
			attempts++
			// Free the queue (and the runner, so the retried job executes):
			// cancellation lands at the next sweep boundary.
			for _, id := range []string{queued, running} {
				if err := cl.Cancel(ctx, id); err != nil {
					return err
				}
			}
			return nil
		},
	}
	x := testTensor(34, 10, 9, 8)
	dec, err := cl.Decompose(ctx, x, repro.Config{Ranks: []int{3, 3, 3}}, nil)
	if err != nil {
		t.Fatalf("Decompose after freed capacity: %v", err)
	}
	if dec == nil || attempts != 1 {
		t.Fatalf("got dec=%v after %d backoffs, want a result after exactly 1", dec, attempts)
	}
}

// TestDecomposeRetryContextCutoff: a context error from the backoff wait
// aborts the interaction immediately with that error.
func TestDecomposeRetryContextCutoff(t *testing.T) {
	_, _, cl := newTestServer(t, server.Config{
		Workers: 1, Runners: 1, QueueDepth: 1, RetryAfter: time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	running, queued := fillQueue(t, cl, ctx)
	defer func() {
		for _, id := range []string{running, queued} {
			if err := cl.Cancel(ctx, id); err != nil {
				t.Error(err)
			}
		}
	}()

	cl.Retry = &repro.RetryPolicy{
		MaxAttempts: 5,
		Sleep: func(ctx context.Context, d time.Duration) error {
			return context.DeadlineExceeded
		},
	}
	_, err := cl.Decompose(ctx, slowTensor(35), slowConfig(), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cut-off retry returned %v, want context.DeadlineExceeded", err)
	}
}
