package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Durability: the crash-safety layer of dtuckerd.
//
// When Config.DataDir is set, every job admitted through POST /v1/decompose
// is made durable before real work happens: the input tensor is spilled to
// DataDir/jobs/<id>.ten, and an "accepted" record — identity, tenant, lane,
// config, tensor digest — is committed to the write-ahead journal
// (DataDir/journal.dtjl, fsync per record). From then on the job's lifecycle
// is journaled: "started" when a runner picks it up, a "sweep" record for
// every committed checkpoint (DataDir/jobs/<id>.ckpt, replaced atomically
// each CheckpointEvery sweeps), and a terminal "finished" or "cancelled"
// record. Results of durable jobs are spilled to DataDir/jobs/<id>.dtd
// before the terminal record commits, so a restarted server can still serve
// them.
//
// On startup New replays the snapshot (DataDir/snapshot.dtjs) plus the
// journal records above its watermark, truncating any torn tail, and
// reconstructs the job registry: jobs with a terminal record are restored as
// finished records (results lazily loaded from their spill on first fetch);
// jobs without one are re-enqueued — bypassing admission quotas, they were
// already admitted once — with an exec closure that reloads the tensor
// spill, verifies its digest, and resumes from the latest intact checkpoint.
// Because the decomposition is bit-identical across worker counts and
// checkpoints capture exact iteration state, a job killed after any sweep
// finishes with exactly the bits an uninterrupted run would have produced.
//
// Corruption never aborts recovery, it degrades per artifact: a corrupt
// snapshot falls back to journal-only replay, a torn journal tail is
// truncated, a corrupt or foreign-fingerprint checkpoint restarts that job
// from sweep one, a corrupt tensor spill fails that one job with a typed
// corrupt_artifact error. Only an unreadable journal header (the file is not
// ours) fails startup — appending to a foreign file would destroy it.
//
// What is deliberately NOT journaled: stream sessions (their warm-start
// state is the history of every append — durably capturing it would mean
// journaling the full tensor stream; sessions are ephemeral and documented
// so), cache-hit submissions (born done; the answer was already served), and
// drain-time cancellations (a graceful restart must resume interrupted work,
// not abandon it — only client-requested DELETEs commit a "cancelled"
// record).

// durability is the server's journal handle plus recovery/observability
// counters, nil when Config.DataDir is unset.
type durability struct {
	dir     string
	jobsDir string
	every   int // checkpoint cadence in sweeps
	logf    func(format string, args ...any)
	jl      *journal.Journal

	// Counters, exported under "durability" on /metricz.
	replayedRecords atomic.Int64 // journal+snapshot records replayed at startup
	restoredJobs    atomic.Int64 // terminal jobs restored into the registry
	recoveredJobs   atomic.Int64 // interrupted jobs re-enqueued
	resumedJobs     atomic.Int64 // of those, resumed from an intact checkpoint
	tornTruncations atomic.Int64 // torn journal tails truncated
	corruptSkipped  atomic.Int64 // corrupt artifacts skipped (not aborted on)
	checkpoints     atomic.Int64 // checkpoint spills committed
	checkpointFails atomic.Int64 // checkpoint/result spills that failed
	appendFailures  atomic.Int64 // journal appends that failed (job continued)
}

// isCrashErr reports whether err is an injected crash: the simulated process
// death that must propagate (failing the in-flight job like a kill would)
// rather than be absorbed as a degraded write.
func isCrashErr(err error) bool {
	var ce *faults.CrashError
	return errors.As(err, &ce)
}

func nowMs() int64 { return time.Now().UnixMilli() }

func (d *durability) tensorPath(id string) string { return filepath.Join(d.jobsDir, id+".ten") }
func (d *durability) ckptPath(id string) string   { return filepath.Join(d.jobsDir, id+".ckpt") }
func (d *durability) resultPath(id string) string { return filepath.Join(d.jobsDir, id+".dtd") }

// snapshot returns the counters for /metricz.
func (d *durability) snapshot() map[string]any {
	frozen := false
	if d.jl != nil {
		frozen, _ = d.jl.Frozen()
	}
	return map[string]any{
		"enabled":             true,
		"frozen":              frozen,
		"replayed_records":    d.replayedRecords.Load(),
		"restored_jobs":       d.restoredJobs.Load(),
		"recovered_jobs":      d.recoveredJobs.Load(),
		"resumed_jobs":        d.resumedJobs.Load(),
		"torn_truncations":    d.tornTruncations.Load(),
		"corrupt_skipped":     d.corruptSkipped.Load(),
		"checkpoints_written": d.checkpoints.Load(),
		"checkpoint_failures": d.checkpointFails.Load(),
		"append_failures":     d.appendFailures.Load(),
	}
}

// openDurability opens (creating if needed) the data directory and journal
// and replays the committed record stream. The returned records merge the
// snapshot with the journal records above its watermark, in admission order.
func openDurability(cfg Config) (*durability, []journal.Record, error) {
	d := &durability{
		dir:     cfg.DataDir,
		jobsDir: filepath.Join(cfg.DataDir, "jobs"),
		every:   cfg.CheckpointEvery,
		logf:    cfg.Logf,
	}
	if err := os.MkdirAll(d.jobsDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durability: creating %s: %w", d.jobsDir, err)
	}

	snapPath := filepath.Join(d.dir, "snapshot.dtjs")
	snapSeq, snapRecs, err := journal.ReadSnapshot(snapPath)
	if err != nil {
		// A corrupt snapshot is survivable: the journal alone is authoritative,
		// the snapshot only bounds replay work.
		d.corruptSkipped.Add(1)
		d.logf("durability: snapshot unusable, recovering from journal alone: %v", err)
		snapSeq, snapRecs = 0, nil
	}

	jl, rep, err := journal.Open(filepath.Join(d.dir, "journal.dtjl"))
	if err != nil {
		return nil, nil, err
	}
	d.jl = jl
	if rep.TailError != nil {
		d.tornTruncations.Add(1)
		d.logf("durability: truncated %d-byte torn journal tail: %v", rep.TruncatedBytes, rep.TailError)
	}
	jl.BumpSeq(snapSeq)

	records := append([]journal.Record(nil), snapRecs...)
	for _, rec := range rep.Records {
		if rec.Seq > snapSeq {
			records = append(records, rec)
		}
	}
	d.replayedRecords.Add(int64(len(records)))
	return d, records, nil
}

// foldedJob is one job's replayed lifecycle.
type foldedJob struct {
	accepted *journal.Record
	sweep    *journal.Record // latest committed sweep, nil if none
	terminal *journal.Record // finished or cancelled, nil if interrupted
}

func (fj *foldedJob) sweepIndex() int {
	if fj.sweep == nil {
		return 0
	}
	return fj.sweep.Sweep
}

// foldRecords groups a replayed record stream per job, preserving admission
// order. Records for jobs with no accepted record (possible when the
// accepted frame itself was in a compacted-away epoch) are dropped — without
// the input tensor reference there is nothing to recover.
func foldRecords(records []journal.Record) (map[string]*foldedJob, []string) {
	jobs := map[string]*foldedJob{}
	var order []string
	for i := range records {
		rec := &records[i]
		fj := jobs[rec.Job]
		if fj == nil {
			fj = &foldedJob{}
			jobs[rec.Job] = fj
			order = append(order, rec.Job)
		}
		switch rec.Type {
		case journal.RecAccepted:
			fj.accepted = rec
		case journal.RecSweep:
			if fj.sweep == nil || rec.Sweep >= fj.sweep.Sweep {
				fj.sweep = rec
			}
		case journal.RecFinished, journal.RecCancelled:
			fj.terminal = rec
		}
	}
	var kept []string
	for _, id := range order {
		if jobs[id].accepted != nil {
			kept = append(kept, id)
		} else {
			delete(jobs, id)
		}
	}
	return jobs, kept
}

// recoverJobs rebuilds the job registry and queue from the replayed records,
// then compacts the journal into a fresh snapshot and garbage-collects
// unreferenced spill files. Called by New with no runners started yet, so
// re-enqueued jobs coalesce deterministically in admission order.
func (s *Server) recoverJobs(records []journal.Record) error {
	d := s.dur
	jobs, order := foldRecords(records)

	// Bound restored history like the live registry does: beyond
	// maxJobRecords the oldest *terminal* jobs are dropped entirely (from the
	// registry, the snapshot, and the jobs directory).
	if excess := len(order) - maxJobRecords; excess > 0 {
		var pruned []string
		for _, id := range order {
			if excess > 0 && jobs[id].terminal != nil {
				delete(jobs, id)
				excess--
				continue
			}
			pruned = append(pruned, id)
		}
		order = pruned
	}

	maxID := int64(0)
	live := map[string]bool{} // spill files still referenced
	for _, id := range order {
		if n := jobNumber(id); n > maxID {
			maxID = n
		}
		fj := jobs[id]
		if fj.terminal != nil {
			s.restoreTerminalJob(id, fj)
			if fj.terminal.Type == journal.RecFinished && fj.terminal.Outcome == "done" && fj.terminal.ResultFile != "" {
				live[filepath.Base(fj.terminal.ResultFile)] = true
			}
			continue
		}
		if err := s.requeueInterruptedJob(id, fj); err != nil {
			// Per-job degradation: log, count, and keep recovering the rest.
			d.corruptSkipped.Add(1)
			d.logf("durability: job %s not recoverable, skipped: %v", id, err)
			delete(jobs, id)
			continue
		}
		live[filepath.Base(d.tensorPath(id))] = true
		live[filepath.Base(d.ckptPath(id))] = true
	}

	s.mu.Lock()
	if maxID > s.nextJob {
		s.nextJob = maxID
	}
	s.mu.Unlock()

	// Re-derive the snapshot from what was actually kept, truncate the
	// journal, and sweep droppings (.tmp files, artifacts of dropped jobs).
	var keptRecords []journal.Record
	for _, rec := range records {
		if _, ok := jobs[rec.Job]; ok {
			keptRecords = append(keptRecords, rec)
		}
	}
	snapPath := filepath.Join(d.dir, "snapshot.dtjs")
	if err := journal.WriteSnapshot(snapPath, d.jl.Seq(), journal.Compact(keptRecords)); err != nil {
		return fmt.Errorf("durability: writing startup snapshot: %w", err)
	}
	if err := d.jl.Truncate(); err != nil {
		return fmt.Errorf("durability: truncating journal after snapshot: %w", err)
	}
	d.gcJobsDir(live)
	return nil
}

// jobNumber parses the numeric suffix of a "j-000042" id, 0 if malformed.
func jobNumber(id string) int64 {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(id[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// gcJobsDir removes every file in the jobs directory not in live.
func (d *durability) gcJobsDir(live map[string]bool) {
	entries, err := os.ReadDir(d.jobsDir)
	if err != nil {
		d.logf("durability: gc: %v", err)
		return
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || live[e.Name()] {
			continue
		}
		if err := os.Remove(filepath.Join(d.jobsDir, e.Name())); err == nil {
			removed++
		}
	}
	if removed > 0 {
		d.logf("durability: gc removed %d unreferenced files", removed)
	}
}

// restoreTerminalJob rebuilds the registry record of a job that finished in
// a previous process life. Done jobs keep their result spill on disk; the
// payload is loaded lazily on the first GET /result.
func (s *Server) restoreTerminalJob(id string, fj *foldedJob) {
	acc, term := fj.accepted, fj.terminal
	j := &job{
		id:        id,
		requestID: recoveredRequestID(acc),
		key:       acc.Key,
		tenant:    acc.Tenant,
		lane:      laneFromString(acc.Lane),
		recovered: true,
		created:   time.UnixMilli(acc.AtMs),
		finished:  time.UnixMilli(term.AtMs),
	}
	// Registered records need a context so DELETE stays a harmless no-op.
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.cancel()
	switch {
	case term.Type == journal.RecCancelled:
		j.state = StateCancelled
		j.err = &WireError{Kind: KindCancelled, Message: "cancelled before restart"}
	case term.Outcome == "done":
		j.state = StateDone
		j.restoredFit = term.Fit
		j.restoredConverged = term.Converged
		j.restoredIters = term.Iters
		j.resultFile = term.ResultFile
		j.resultDigest = term.ResultDigest
	default:
		j.state = StateFailed
		j.err = &WireError{Kind: term.ErrKind, Message: term.ErrMessage}
	}
	s.register(j)
	s.dur.restoredJobs.Add(1)
	s.obs.Emit(obs.Event{
		Event: "job_recovery", RequestID: j.requestID, JobID: j.id,
		Tenant: j.tenant, Lane: j.lane.String(), Outcome: "restored_" + j.state,
	})
	s.cfg.Logf("job %s: restored (%s)", id, j.state)
}

// recoveredRequestID restores the submitting request's correlation ID from
// the accepted record, minting a fresh one for journals written before the
// field existed — every job record and log event carries one either way.
func recoveredRequestID(acc *journal.Record) string {
	if acc.RequestID != "" {
		return acc.RequestID
	}
	return obs.NewRequestID()
}

// requeueInterruptedJob re-enqueues a job that was accepted but never
// reached a terminal record. The tensor spill is only opened when the job
// runs; admission bypasses quotas and queue capacity (the job was already
// admitted by a previous process life and must not be shed now).
func (s *Server) requeueInterruptedJob(id string, fj *foldedJob) error {
	d := s.dur
	acc := fj.accepted
	var cfg core.Config
	if err := json.Unmarshal(acc.Config, &cfg); err != nil {
		return fmt.Errorf("accepted record config: %w: %v", dterr.ErrCorruptArtifact, err)
	}
	if _, err := os.Stat(d.tensorPath(id)); err != nil {
		return fmt.Errorf("tensor spill: %w: %v", dterr.ErrCorruptArtifact, err)
	}

	j := s.newDurableJob(id, acc, cfg)
	s.jobsWG.Add(1)
	s.schedMu.Lock()
	leader := s.sched.restoreLocked(j)
	s.schedMu.Unlock()
	if leader != nil {
		s.jobsWG.Done()
		s.coalesced.Add(1)
	}
	s.register(j)
	s.submitted.Add(1)
	d.recoveredJobs.Add(1)
	s.obs.Emit(obs.Event{
		Event: "job_recovery", RequestID: j.requestID, JobID: j.id,
		Tenant: j.tenant, Lane: j.lane.String(), Outcome: "requeued",
	})
	s.cfg.Logf("job %s: recovered (tenant %s, %s, checkpointed sweep %d)", id, j.tenant, j.lane, fj.sweepIndex())
	return nil
}

// newDurableJob builds the runnable job record for a recovered submission,
// with an exec closure that reloads the tensor spill, verifies its digest,
// and resumes from the latest intact checkpoint.
func (s *Server) newDurableJob(id string, acc *journal.Record, cfg core.Config) *job {
	d := s.dur
	j := &job{
		id:        id,
		requestID: recoveredRequestID(acc),
		key:       acc.Key,
		tenant:    acc.Tenant,
		lane:      laneFromString(acc.Lane),
		timeout:   time.Duration(acc.TimeoutMs) * time.Millisecond,
		col:       metrics.New(),
		state:     StateQueued,
		recovered: true,
		created:   time.UnixMilli(acc.AtMs),
	}
	j.persist.Store(true)
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	if acc.Trace {
		j.tracer = trace.New()
		j.col.SetTracer(j.tracer)
		j.ownTracer = true
	}
	digest := acc.TensorDigest
	j.exec = func(ctx context.Context, pl *pool.Pool, col *metrics.Collector) (*core.Decomposition, error) {
		x, err := d.loadTensorSpill(j.id, digest)
		if err != nil {
			return nil, err
		}
		opts := cfg.Options()
		opts.Context = ctx
		opts.Pool = pl
		opts.Metrics = col
		opts.Profile = s.cfg.KernelProfile
		opts.CheckpointSink = s.checkpointSink(j)
		if cp := d.loadCheckpoint(j.id); cp != nil {
			opts.Resume = cp
			dec, err := core.Decompose(x, opts)
			if err == nil || !errors.Is(err, dterr.ErrCorruptArtifact) {
				if err == nil {
					d.resumedJobs.Add(1)
				}
				return dec, err
			}
			// The checkpoint read cleanly but belongs to a different
			// computation (foreign fingerprint, shape mismatch): skip it and
			// restart from scratch rather than fail the job.
			d.corruptSkipped.Add(1)
			d.logf("job %s: checkpoint rejected, restarting from scratch: %v", j.id, err)
			opts.Resume = nil
		}
		return core.Decompose(x, opts)
	}
	return j
}

// loadTensorSpill reads and digest-verifies a job's spilled input tensor. A
// corrupt spill is unrecoverable for that job — there is no other copy of
// the input — so the error is terminal and typed.
func (d *durability) loadTensorSpill(id, wantDigest string) (*tensor.Dense, error) {
	f, err := os.Open(d.tensorPath(id))
	if err != nil {
		return nil, fmt.Errorf("durability: tensor spill: %w: %v", dterr.ErrCorruptArtifact, err)
	}
	defer f.Close()
	x, err := tensor.ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("durability: tensor spill: %w: %v", dterr.ErrCorruptArtifact, err)
	}
	digest, err := tensorDigest(x)
	if err != nil {
		return nil, err
	}
	if wantDigest != "" && digest != wantDigest {
		return nil, fmt.Errorf("durability: tensor spill digest %.12s does not match accepted %.12s: %w",
			digest, wantDigest, dterr.ErrCorruptArtifact)
	}
	return x, nil
}

// loadCheckpoint reads a job's latest committed checkpoint, nil when absent
// or corrupt (a corrupt checkpoint restarts the job, it never fails it).
func (d *durability) loadCheckpoint(id string) *core.Checkpoint {
	f, err := os.Open(d.ckptPath(id))
	if err != nil {
		return nil // no checkpoint: the job restarts from sweep one
	}
	defer f.Close()
	cp, err := core.ReadCheckpoint(f)
	if err != nil {
		d.corruptSkipped.Add(1)
		d.logf("job %s: corrupt checkpoint skipped, restarting from scratch: %v", id, err)
		return nil
	}
	return cp
}

// persistAccepted makes a freshly admitted job durable: tensor spill first,
// then the accepted record, so a committed record always references a
// complete tensor. On any failure the job simply stays ephemeral (it was
// never acknowledged as durable), with the failure logged and counted.
func (s *Server) persistAccepted(j *job, x *tensor.Dense, cfg core.Config, digest string) {
	d := s.dur
	rawCfg, err := json.Marshal(cfg)
	if err != nil {
		j.persist.Store(false)
		d.logf("job %s: encoding config for journal: %v", j.id, err)
		return
	}
	if err := journal.WriteFileAtomic(d.tensorPath(j.id), func(w io.Writer) error {
		_, werr := x.WriteTo(w)
		return werr
	}); err != nil {
		j.persist.Store(false)
		d.checkpointFails.Add(1)
		if isCrashErr(err) {
			d.jl.Freeze(err) // simulated death: no write after this one
		}
		d.logf("job %s: tensor spill failed, job is not durable: %v", j.id, err)
		return
	}
	rec := journal.Record{
		Type:         journal.RecAccepted,
		Job:          j.id,
		AtMs:         nowMs(),
		RequestID:    j.requestID,
		Tenant:       j.tenant,
		Lane:         j.lane.String(),
		Key:          j.key,
		Config:       rawCfg,
		TensorFile:   filepath.Base(d.tensorPath(j.id)),
		TensorDigest: digest,
		Fingerprint:  cfg.Fingerprint(),
		TimeoutMs:    int64(j.timeout / time.Millisecond),
		Trace:        j.tracer != nil,
	}
	if err := d.jl.Append(rec); err != nil {
		j.persist.Store(false)
		d.appendFailures.Add(1)
		d.logf("job %s: accepted record not committed, job is not durable: %v", j.id, err)
	}
}

// persistStarted journals a runner picking the job up. Informational: a
// failure (or a frozen journal) degrades observability, not recoverability.
func (s *Server) persistStarted(j *job) {
	if s.dur == nil || !j.persist.Load() {
		return
	}
	if err := s.dur.jl.Append(journal.Record{Type: journal.RecStarted, Job: j.id, AtMs: nowMs()}); err != nil {
		s.dur.appendFailures.Add(1)
	}
}

// checkpointSink returns the core.Options.CheckpointSink for a durable job:
// every CheckpointEvery-th sweep (and every terminal sweep) the iteration
// state is spilled atomically and a sweep record committed. Real write
// failures degrade — the job continues, recovery just resumes from an older
// sweep — but an injected crash propagates, failing the job exactly as a
// process death at that write would have.
func (s *Server) checkpointSink(j *job) func(*core.Checkpoint) error {
	d := s.dur
	return func(cp *core.Checkpoint) error {
		if d.every > 1 && cp.Sweep%d.every != 0 && !cp.Done {
			return nil
		}
		if frozen, _ := d.jl.Frozen(); frozen {
			// The journal already froze (a prior simulated death or write
			// error): stop producing durability artifacts, keep computing.
			return nil
		}
		if err := journal.WriteFileAtomic(d.ckptPath(j.id), func(w io.Writer) error {
			_, werr := cp.WriteTo(w)
			return werr
		}); err != nil {
			d.checkpointFails.Add(1)
			if isCrashErr(err) {
				d.jl.Freeze(err) // simulated death: no write after this one
				return err
			}
			d.logf("job %s: checkpoint spill at sweep %d failed: %v", j.id, cp.Sweep, err)
			return nil
		}
		rec := journal.Record{
			Type:           journal.RecSweep,
			Job:            j.id,
			AtMs:           nowMs(),
			Sweep:          cp.Sweep,
			CheckpointFile: filepath.Base(d.ckptPath(j.id)),
		}
		if err := d.jl.Append(rec); err != nil {
			d.appendFailures.Add(1)
			if isCrashErr(err) {
				return err
			}
			d.logf("job %s: sweep %d record not committed: %v", j.id, cp.Sweep, err)
			return nil
		}
		d.checkpoints.Add(1)
		j.setSweep(cp.Sweep)
		return nil
	}
}

// persistFinished commits a durable job's terminal outcome. For done jobs
// the result is spilled before the record, so "finished done" always
// references a servable result; resultFile/resultDigest, when non-empty,
// reuse a spill already written (coalesced followers share their leader's).
// It returns the result file name and digest for followers to reuse.
//
// Drain-time cancellations are not journaled: the job stays "interrupted" on
// disk and a restarted server resumes it. Client-requested cancellations
// (job.userCancelled) and timeouts commit a cancelled record.
func (s *Server) persistFinished(j *job, dec *core.Decomposition, resultFile, resultDigest string) (string, string) {
	if s.dur == nil || !j.persist.Load() {
		return resultFile, resultDigest
	}
	d := s.dur
	j.mu.Lock()
	state := j.state
	errKind, errMessage := "", ""
	if we := wireError(j.err); we != nil {
		errKind, errMessage = we.Kind, we.Message
	}
	userCancelled := j.userCancelled
	j.mu.Unlock()

	if !j.terminalPersisted.CompareAndSwap(false, true) {
		return resultFile, resultDigest
	}
	rec := journal.Record{Job: j.id, AtMs: nowMs()}
	switch state {
	case StateDone:
		if resultFile == "" {
			resultFile = filepath.Base(d.resultPath(j.id))
			// The spill bytes are hashed as they are written: .dtd has no
			// internal checksum, so the digest in the finished record is what
			// lets a restart reject a bit-rotted result instead of serving it.
			h := sha256.New()
			if err := journal.WriteFileAtomic(d.resultPath(j.id), func(w io.Writer) error {
				_, werr := dec.WriteTo(io.MultiWriter(w, h))
				return werr
			}); err != nil {
				// No result spill, no terminal record: the job stays
				// interrupted on disk and recovery recomputes it (resuming
				// from its last checkpoint — likely the terminal one).
				d.checkpointFails.Add(1)
				if isCrashErr(err) {
					d.jl.Freeze(err) // simulated death: no write after this one
				} else {
					d.logf("job %s: result spill failed, outcome not committed: %v", j.id, err)
				}
				return "", ""
			}
			resultDigest = hex.EncodeToString(h.Sum(nil))
		}
		rec.Type = journal.RecFinished
		rec.Outcome = "done"
		rec.ResultFile = resultFile
		rec.ResultDigest = resultDigest
		rec.Fit = dec.Fit
		rec.Converged = dec.Converged
		rec.Iters = dec.Stats.Iters
	case StateCancelled:
		if !userCancelled && s.draining.Load() {
			return resultFile, resultDigest // graceful restart: resume, don't abandon
		}
		rec.Type = journal.RecCancelled
	default:
		rec.Type = journal.RecFinished
		rec.Outcome = "failed"
		rec.ErrKind = errKind
		rec.ErrMessage = errMessage
	}
	if err := d.jl.Append(rec); err != nil {
		d.appendFailures.Add(1)
		if !isCrashErr(err) {
			d.logf("job %s: terminal record not committed: %v", j.id, err)
		}
		return resultFile, resultDigest
	}
	// The terminal record is durable; the recovery-only artifacts are not
	// needed any more. (The result spill stays — restarts serve from it.)
	os.Remove(d.tensorPath(j.id))
	os.Remove(d.ckptPath(j.id))
	return resultFile, resultDigest
}

// loadRestoredResult serves GET /result for a job restored from the journal:
// the decomposition is read back from its spill on first fetch, memoized on
// the job record, and planted in the result cache.
func (s *Server) loadRestoredResult(j *job) (*core.Decomposition, error) {
	j.mu.Lock()
	dec, file, key, wantDigest := j.dec, j.resultFile, j.key, j.resultDigest
	j.mu.Unlock()
	if dec != nil {
		return dec, nil
	}
	if file == "" {
		return nil, fmt.Errorf("durability: restored job has no result spill: %w", dterr.ErrCorruptArtifact)
	}
	raw, err := os.ReadFile(filepath.Join(s.dur.jobsDir, filepath.Base(file)))
	if err != nil {
		s.dur.corruptSkipped.Add(1)
		return nil, fmt.Errorf("durability: result spill: %w: %v", dterr.ErrCorruptArtifact, err)
	}
	if wantDigest != "" {
		if got := sha256.Sum256(raw); hex.EncodeToString(got[:]) != wantDigest {
			s.dur.corruptSkipped.Add(1)
			return nil, fmt.Errorf("durability: result spill does not hash to its journaled digest %.12s: %w",
				wantDigest, dterr.ErrCorruptArtifact)
		}
	}
	dec, err = core.ReadDecomposition(bytes.NewReader(raw))
	if err != nil {
		s.dur.corruptSkipped.Add(1)
		return nil, fmt.Errorf("durability: result spill: %w: %v", dterr.ErrCorruptArtifact, err)
	}
	j.mu.Lock()
	j.dec = dec
	j.mu.Unlock()
	if key != "" {
		s.cache.Put(key, dec)
	}
	return dec, nil
}

// laneFromString parses a journaled lane name; unknown names fall back to
// batch (the conservative lane) instead of failing recovery.
func laneFromString(name string) lane {
	if name == "interactive" {
		return laneInteractive
	}
	return laneBatch
}

// Close flushes and closes the journal. Called at the end of Drain.
func (d *durability) Close() {
	if d == nil || d.jl == nil {
		return
	}
	if err := d.jl.Close(); err != nil {
		d.logf("durability: closing journal: %v", err)
	}
}
