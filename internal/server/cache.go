package server

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// resultCache is a size-bounded LRU over finished decompositions, keyed by
// (tensor digest, canonical config) — see digest.go for why that key is
// sound. Cached *Decomposition values are shared between requests and must
// be treated as immutable; handlers only ever serialize them.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element

	hits   int64
	misses int64
}

type cacheEntry struct {
	key string
	dec *core.Decomposition
}

// newResultCache returns a cache holding at most capacity results.
// capacity <= 0 disables caching: Get always misses and Put is a no-op.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *resultCache) Get(key string) (*core.Decomposition, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).dec, true
}

func (c *resultCache) Put(key string, dec *core.Decomposition) {
	if c.cap <= 0 || dec == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).dec = dec
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, dec: dec})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *resultCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
