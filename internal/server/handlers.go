package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// decodeBody decodes a JSON request body into v under the body-size limit.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, &WireError{
			Kind:    KindInvalidInput,
			Message: fmt.Sprintf("decoding request body: %v", err),
		})
		return false
	}
	return true
}

// decodeTensor decodes the base64 .ten payload of a request, applying the
// reader's corrupt-header and non-finite hardening.
func decodeTensor(b64 string) (*tensor.Dense, error) {
	raw, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("tensor_b64 is not valid base64: %w", err)
	}
	return tensor.ReadFrom(bytes.NewReader(raw))
}

// requestTenant extracts the tenant name from the X-Tenant header,
// defaulting and bounding it (an unbounded attacker-chosen tenant name
// would otherwise grow the per-tenant state maps without limit per byte
// of header).
func requestTenant(r *http.Request) string {
	t := r.Header.Get(HeaderTenant)
	if t == "" {
		return defaultTenant
	}
	if len(t) > 64 {
		t = t[:64]
	}
	return t
}

// stampKernelProfile resolves an auto-kernel-selection request against the
// server's calibrated profile: the profile's fingerprint is written into
// the config before the cache key is computed, so results are cached per
// profile and a profile change can never serve a stale entry. A request
// that explicitly names a different fingerprint is rejected — the client
// is pinning a profile this server does not run.
func (s *Server) stampKernelProfile(cfg *core.Config) *WireError {
	if cfg.SliceKernel != "auto" {
		return nil
	}
	fp := s.cfg.KernelProfile.Fingerprint()
	if cfg.KernelProfile != "" && cfg.KernelProfile != fp {
		return &WireError{
			Kind:    KindInvalidInput,
			Message: fmt.Sprintf("config names kernel profile %s but this server runs %s", cfg.KernelProfile, fp),
		}
	}
	cfg.KernelProfile = fp
	return nil
}

// handleDecompose is POST /v1/decompose: validate, answer from cache when
// possible, otherwise queue a job under admission control.
func (s *Server) handleDecompose(w http.ResponseWriter, r *http.Request) {
	var req DecomposeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.Config.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, wireError(err))
		return
	}
	x, err := decodeTensor(req.TensorB64)
	if err != nil {
		writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput, Message: err.Error()})
		return
	}
	if len(req.Config.Ranks) != x.Order() {
		writeError(w, http.StatusBadRequest, &WireError{
			Kind:    KindInvalidInput,
			Message: fmt.Sprintf("config has %d ranks for an order-%d tensor", len(req.Config.Ranks), x.Order()),
		})
		return
	}
	lane, werr := requestLane(r, laneBatch)
	if werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	if werr := s.stampKernelProfile(&req.Config); werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	digest, err := tensorDigest(x)
	if err != nil {
		writeError(w, http.StatusInternalServerError, &WireError{Kind: KindInternal, Message: err.Error()})
		return
	}
	key := cacheKey(digest, req.Config)
	tenant := requestTenant(r)
	rid := requestID(r)

	// A cache hit needs no queue slot: the job record is born done.
	if dec, ok := s.cache.Get(key); ok {
		j := s.newJob(key, 0, false, nil)
		j.requestID = rid
		j.tenant = tenant
		j.state = StateDone
		j.dec = dec
		j.cacheHit = true
		j.started = j.created
		j.finished = j.created
		s.register(j)
		s.submitted.Add(1)
		s.completed.Add(1)
		s.schedMu.Lock()
		s.sched.cacheHitLocked(tenant)
		s.schedMu.Unlock()
		s.emitAdmission(j, "cache_hit", "")
		annotateJob(r, j, "cache_hit")
		s.respondSubmitted(w, j, http.StatusOK)
		return
	}

	cfg := req.Config
	var j *job
	j = s.newJob(key, time.Duration(req.TimeoutMs)*time.Millisecond, req.Trace,
		func(ctx context.Context, pl *pool.Pool, col *metrics.Collector) (*core.Decomposition, error) {
			opts := cfg.Options()
			opts.Context = ctx
			opts.Pool = pl
			opts.Metrics = col
			opts.Profile = s.cfg.KernelProfile
			if s.dur != nil && j.persist.Load() {
				opts.CheckpointSink = s.checkpointSink(j)
			}
			return core.Decompose(x, opts)
		})
	j.requestID = rid
	j.tenant = tenant
	j.lane = lane
	if s.dur != nil {
		// Marked durable before admission so the runner (which may pick the
		// job up the instant it is enqueued) sees both the flag and the
		// barrier below.
		j.persist.Store(true)
		j.durableReady = make(chan struct{})
	}
	leader, err := s.admitOrCoalesce(j)
	if err != nil {
		j.cancel() // release the job context; it will never run
		s.writeAdmissionError(w, r, j, err)
		return
	}
	if leader != nil {
		s.emitAdmission(j, "coalesce", leader.id)
		annotateJob(r, j, "coalesce")
	} else {
		s.emitAdmission(j, "accept", "")
		annotateJob(r, j, "accept")
	}
	if s.dur != nil {
		// The durability commit happens after admission but before the 202
		// is written: an acknowledged durable job survives a process kill.
		// Followers are journaled too — after a restart they coalesce back
		// onto their (also journaled) leader. Closing the barrier releases
		// the runner, so no later record can precede this one.
		s.persistAccepted(j, x, cfg, digest)
		close(j.durableReady)
	}
	s.respondSubmitted(w, j, http.StatusAccepted)
}

func (s *Server) respondSubmitted(w http.ResponseWriter, j *job, status int) {
	j.mu.Lock()
	resp := SubmitResponse{
		JobID:     j.id,
		RequestID: j.requestID,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Coalesced: j.coalesced,
		StatusURL: "/v1/jobs/" + j.id,
		ResultURL: "/v1/jobs/" + j.id + "/result",
	}
	j.mu.Unlock()
	writeJSON(w, status, resp)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobResult is GET /v1/jobs/{id}/result: the decomposition payload,
// as .dtd binary by default or JSON with ?format=json. A job that is not
// done yet answers 409 with its current state.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	dec := j.result()
	if dec == nil && s.dur != nil {
		// A job restored from the journal holds only its result summary; the
		// payload comes from its spill file on first fetch.
		if st := j.status(); st.State == StateDone && st.ResultURL != "" {
			restored, err := s.loadRestoredResult(j)
			if err != nil {
				s.cfg.Logf("job %s: %v", j.id, err)
				writeError(w, http.StatusInternalServerError, wireError(err))
				return
			}
			dec = restored
		}
	}
	if dec == nil {
		st := j.status()
		if st.Error != nil {
			writeError(w, http.StatusConflict, st.Error)
			return
		}
		writeError(w, http.StatusConflict, &WireError{
			Kind:    KindConflict,
			Message: fmt.Sprintf("job is %s; poll %s until done", st.State, "/v1/jobs/"+j.id),
		})
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "binary", "dtd":
		w.Header().Set("Content-Type", "application/octet-stream")
		serStart := time.Now()
		_, err := dec.WriteTo(w)
		if j.ownTracer {
			// The serialize phase joins the job's span tree retroactively —
			// result fetches happen long after the compute spans closed.
			j.tracer.Record(0, "server:serialize", trace.NoIdx, serStart, time.Since(serStart))
		}
		if err != nil {
			s.cfg.Logf("job %s: writing result: %v", j.id, err)
		}
	case "json":
		writeJSON(w, http.StatusOK, dec)
	default:
		writeError(w, http.StatusBadRequest, &WireError{
			Kind:    KindInvalidInput,
			Message: "unknown format (want binary or json)",
		})
	}
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the span trace recorded for a
// job submitted with "trace": true, as JSONL (default) or Chrome trace
// JSON with ?format=chrome.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	if j.tracer == nil {
		writeError(w, http.StatusNotFound, &WireError{
			Kind:    KindNotFound,
			Message: "job was not submitted with trace enabled",
		})
		return
	}
	var format trace.Format
	switch r.URL.Query().Get("format") {
	case "", "jsonl":
		format = trace.FormatJSONL
		w.Header().Set("Content-Type", "application/jsonl")
	case "chrome":
		format = trace.FormatChrome
		w.Header().Set("Content-Type", "application/json")
	default:
		writeError(w, http.StatusBadRequest, &WireError{
			Kind:    KindInvalidInput,
			Message: "unknown format (want jsonl or chrome)",
		})
		return
	}
	if err := j.tracer.Export(w, format); err != nil {
		s.cfg.Logf("job %s: writing trace: %v", j.id, err)
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel a queued or running job.
// The job transitions to cancelled when the decomposition observes the
// context, at the next phase or sweep boundary. Cancelling a coalesced
// follower detaches only that record — the leader (and any other
// followers) keep running.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such job"})
		return
	}
	j.markUserCancelled() // only client DELETEs journal a cancelled record
	j.cancel()
	if j.coalesced {
		// Followers have no runner watching their context; finish them
		// here. finish is idempotent, so racing with the leader's
		// completion keeps whichever outcome landed first.
		j.finish(nil, context.Canceled, false, time.Now())
		if j.status().State == StateCancelled {
			s.persistFinished(j, nil, "", "")
		}
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	status := http.StatusOK
	if h.Status != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}
