package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/server"
)

// The durability acceptance suite: kill a durable server at every sweep
// boundary (simulated in-process via crash-injection sites — the journal
// freezes exactly as a dead process would stop writing), restart over the
// same data directory, and require the recovered run to finish with the
// exact bits an uninterrupted run produces. Corruption of each on-disk
// artifact must degrade (skip, restart, or fail one job) — never abort
// recovery.

// durableConfig is a fixed-length run: Tol below any reachable fit delta
// means exactly MaxIters sweeps execute, so crash points are deterministic.
func durableConfig(iters int) repro.Config {
	return repro.Config{Ranks: []int{4, 3, 3}, Seed: 17, Tol: 1e-300, MaxIters: iters}
}

// metriczDurability fetches the "durability" sub-map of /metricz.
func metriczDurability(t *testing.T, hs *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	srv, ok := all["dtuckerd"].(map[string]any)
	if !ok {
		t.Fatalf("metricz has no dtuckerd map: %v", all["dtuckerd"])
	}
	dur, ok := srv["durability"].(map[string]any)
	if !ok {
		t.Fatalf("metricz has no durability map: %v", srv["durability"])
	}
	return dur
}

func counter(t *testing.T, m map[string]any, key string) float64 {
	t.Helper()
	v, ok := m[key].(float64)
	if !ok {
		t.Fatalf("durability counter %q missing or not numeric: %v", key, m[key])
	}
	return v
}

// corruptFile flips a byte in the middle of a file (headers stay plausible,
// checksums break).
func corruptFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatalf("%s is empty, nothing to corrupt", path)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitForFailedKind polls until the job fails with the wanted error kind.
func waitForFailedKind(t *testing.T, cl *repro.Client, id, kind string) {
	t.Helper()
	waitForState(t, cl, id, server.StateFailed)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := cl.Job(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Error == nil || st.Error.Kind != kind {
		t.Fatalf("job %s failed with %+v, want kind %q", id, st.Error, kind)
	}
}

// TestCrashResumeBitIdenticalEverySweep is the headline durability check:
// for every sweep boundary of a 5-sweep run, and across worker counts, a
// server killed at that boundary (journal append crash — the journal
// freezes, simulating the process death) restarts over the same data
// directory, resumes the job from its last intact checkpoint, and finishes
// with bits identical to an uninterrupted in-process run. The restarted
// server must also leak no goroutines.
func TestCrashResumeBitIdenticalEverySweep(t *testing.T) {
	const sweeps = 5
	cfg := durableConfig(sweeps)
	x := testTensor(21, 14, 12, 10)
	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.Iters != sweeps {
		t.Fatalf("reference ran %d sweeps, want %d", want.Stats.Iters, sweeps)
	}

	for _, workers := range []int{1, 3} {
		for kill := 1; kill <= sweeps; kill++ {
			t.Run(fmt.Sprintf("%dworkers-killsweep%d", workers, kill), func(t *testing.T) {
				before := runtime.NumGoroutine()
				dir := t.TempDir()
				t.Cleanup(faults.Reset)

				// Per-job append order is accepted(1), started(2), then one
				// sweep record per checkpoint: Skip=kill+1 crashes the append
				// of sweep `kill`'s record, with 5 torn bytes left behind.
				if err := faults.Activate("journal.append", faults.Plan{Skip: int64(kill + 1), TornBytes: 5}); err != nil {
					t.Fatal(err)
				}
				srv1, _, cl1 := newTestServer(t, server.Config{Workers: workers, DataDir: dir})
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				receipt, err := cl1.Submit(ctx, x, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				waitForFailedKind(t, cl1, receipt.JobID, server.KindInjected)
				drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer dcancel()
				srv1.Drain(drainCtx)
				faults.Reset()

				// Restart over the same directory: the interrupted job must be
				// back in the queue and complete without a new submission.
				srv2, hs2, cl2 := newTestServer(t, server.Config{Workers: workers, DataDir: dir})
				waitForState(t, cl2, receipt.JobID, server.StateDone)
				st, err := cl2.Job(ctx, receipt.JobID)
				if err != nil {
					t.Fatal(err)
				}
				if !st.Recovered {
					t.Fatalf("job %s not marked recovered: %+v", receipt.JobID, st)
				}
				got, err := cl2.Result(ctx, receipt.JobID)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, want, got)

				dur := metriczDurability(t, hs2)
				if counter(t, dur, "recovered_jobs") != 1 {
					t.Fatalf("recovered_jobs = %v, want 1", dur["recovered_jobs"])
				}
				if counter(t, dur, "resumed_jobs") != 1 {
					t.Fatalf("resumed_jobs = %v, want 1 (kill sweep %d)", dur["resumed_jobs"], kill)
				}
				if counter(t, dur, "torn_truncations") < 1 {
					t.Fatalf("torn_truncations = %v, want >= 1 (5 torn bytes were written)", dur["torn_truncations"])
				}

				// Drain both servers (the cleanup drains are idempotent): no
				// goroutines may survive the crash-restart cycle.
				hs2.Close()
				ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel2()
				srv2.Drain(ctx2)
				deadline := time.Now().Add(10 * time.Second)
				for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
					time.Sleep(10 * time.Millisecond)
				}
				if after := runtime.NumGoroutine(); after > before+4 {
					t.Fatalf("goroutines grew %d -> %d across crash-restart", before, after)
				}
			})
		}
	}
}

// TestCrashBeforeFirstCheckpointRestartsFromScratch kills the very first
// checkpoint spill (before any sweep record exists): recovery finds an
// accepted job with no checkpoint and restarts it from sweep one,
// bit-identical.
func TestCrashBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	cfg := durableConfig(4)
	x := testTensor(22, 12, 11, 10)
	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	t.Cleanup(faults.Reset)

	// Spill-site hits: the startup snapshot (1), this job's tensor spill
	// (2), then the sweep-1 checkpoint (3) — crash there, torn mid-write.
	if err := faults.Activate("journal.spill.write", faults.Plan{Skip: 2, TornBytes: 9}); err != nil {
		t.Fatal(err)
	}
	srv1, _, cl1 := newTestServer(t, server.Config{Workers: 1, DataDir: dir})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	receipt, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForFailedKind(t, cl1, receipt.JobID, server.KindInjected)
	drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	srv1.Drain(drainCtx)
	faults.Reset()

	_, hs2, cl2 := newTestServer(t, server.Config{Workers: 1, DataDir: dir})
	waitForState(t, cl2, receipt.JobID, server.StateDone)
	got, err := cl2.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)
	dur := metriczDurability(t, hs2)
	if counter(t, dur, "resumed_jobs") != 0 {
		t.Fatalf("resumed_jobs = %v, want 0 (no checkpoint survived)", dur["resumed_jobs"])
	}
	// The torn .tmp dropping must have been garbage-collected at startup.
	tmps, _ := filepath.Glob(filepath.Join(dir, "jobs", "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("torn spill droppings survived recovery: %v", tmps)
	}
}

// TestRestartRestoresTerminalJobs: finished and client-cancelled jobs
// survive a restart as queryable records; a done job's result is served
// bit-identically from its spill and re-seeds the result cache.
func TestRestartRestoresTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(4)
	x := testTensor(23, 13, 12, 11)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	srv1, _, cl1 := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	doneReceipt, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl1, doneReceipt.JobID, server.StateDone)
	want, err := cl1.Result(ctx, doneReceipt.JobID)
	if err != nil {
		t.Fatal(err)
	}

	// A second, never-finishing job cancelled by client DELETE: that — and
	// only that — kind of cancellation must survive the restart.
	slow, err := cl1.Submit(ctx, slowTensor(24), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl1, slow.JobID, server.StateRunning)
	if err := cl1.Cancel(ctx, slow.JobID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl1, slow.JobID, server.StateCancelled)
	drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	srv1.Drain(drainCtx)

	_, _, cl2 := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	st, err := cl2.Job(ctx, doneReceipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || !st.Recovered {
		t.Fatalf("done job restored as %+v", st)
	}
	if st.Fit != want.Fit {
		t.Fatalf("restored fit %v, want %v", st.Fit, want.Fit)
	}
	got, err := cl2.Result(ctx, doneReceipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)

	// The lazy result load re-seeds the cache: an identical fresh
	// submission is answered without executing.
	re, err := cl2.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !re.CacheHit {
		t.Fatal("identical submission after restore missed the re-seeded cache")
	}

	cst, err := cl2.Job(ctx, slow.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if cst.State != server.StateCancelled || !cst.Recovered {
		t.Fatalf("cancelled job restored as %+v", cst)
	}
}

// TestDrainInterruptedJobResumesAfterRestart: drain-time cancellations are
// deliberately not journaled — a job cancelled only because the server shut
// down is re-enqueued on restart and completes. Coalesced duplicates
// re-coalesce after the restart and share one execution.
func TestDrainInterruptedJobResumesAfterRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(5)
	x := testTensor(25, 14, 12, 10)
	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// One runner, parked on a never-finishing job; the real job (and an
	// identical duplicate, which coalesces) queue behind it. An
	// already-expired drain context cancels everything immediately; none of
	// those cancellations may reach the journal.
	srv1, _, cl1 := newTestServer(t, server.Config{Workers: 1, Runners: 1, DataDir: dir})
	blocker, err := cl1.Submit(ctx, slowTensor(26), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl1, blocker.JobID, server.StateRunning)
	lead, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Coalesced {
		t.Fatalf("duplicate did not coalesce: %+v", dup)
	}
	expired, ecancel := context.WithCancel(context.Background())
	ecancel()
	srv1.Drain(expired)

	// Restart with two runners so the blocker cannot starve the queue.
	srv2, hs2, cl2 := newTestServer(t, server.Config{Workers: 1, Runners: 2, DataDir: dir})
	waitForState(t, cl2, lead.JobID, server.StateDone)
	waitForState(t, cl2, dup.JobID, server.StateDone)
	for _, id := range []string{lead.JobID, dup.JobID} {
		got, err := cl2.Result(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, want, got)
	}
	bst, err := cl2.Job(ctx, blocker.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if bst.State != server.StateQueued && bst.State != server.StateRunning {
		t.Fatalf("drain-cancelled blocker was not resumed: %+v", bst)
	}
	dur := metriczDurability(t, hs2)
	if got := counter(t, dur, "recovered_jobs"); got != 3 {
		t.Fatalf("recovered_jobs = %v, want 3 (blocker + leader + duplicate)", got)
	}

	// The blocker never converges; cut it down before the cleanup drain.
	expired2, ecancel2 := context.WithCancel(context.Background())
	ecancel2()
	srv2.Drain(expired2)
}

// interruptedJobWithCheckpoint crashes a durable job right after sweep 2's
// checkpoint spill committed (the sweep-2 journal append dies), drains the
// wedged server, and returns the data dir, job id, and submitted inputs.
func interruptedJobWithCheckpoint(t *testing.T, cfg repro.Config, seed int64) (dir, jobID string) {
	t.Helper()
	dir = t.TempDir()
	t.Cleanup(faults.Reset)
	if err := faults.Activate("journal.append", faults.Plan{Skip: 3}); err != nil {
		t.Fatal(err)
	}
	srv, _, cl := newTestServer(t, server.Config{Workers: 1, DataDir: dir})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	receipt, err := cl.Submit(ctx, testTensor(seed, 14, 12, 10), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForFailedKind(t, cl, receipt.JobID, server.KindInjected)
	drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	srv.Drain(drainCtx)
	faults.Reset()
	return dir, receipt.JobID
}

// TestCorruptCheckpointRestartsFromScratch: a checkpoint whose bytes were
// damaged on disk is skipped — the recovered job restarts from sweep one
// and still finishes bit-identical. Same for a *valid* checkpoint that
// belongs to a different computation (foreign config fingerprint).
func TestCorruptCheckpointRestartsFromScratch(t *testing.T) {
	cfg := durableConfig(5)
	x := testTensor(27, 14, 12, 10)
	want, err := core.Decompose(x, cfg.Options())
	if err != nil {
		t.Fatal(err)
	}

	damage := map[string]func(t *testing.T, ckpt string){
		"flipped-byte": func(t *testing.T, ckpt string) {
			corruptFile(t, ckpt)
		},
		"foreign-fingerprint": func(t *testing.T, ckpt string) {
			// A perfectly valid checkpoint from a different config: reading
			// succeeds, resume must reject the fingerprint. The checkpoint
			// aliases live iteration state, so it is serialized inside the
			// sink, at the sweep boundary it describes.
			other := durableConfig(5)
			other.Seed = 99
			var foreign bytes.Buffer
			opts := other.Options()
			opts.CheckpointSink = func(cp *core.Checkpoint) error {
				if foreign.Len() == 0 {
					if _, err := cp.WriteTo(&foreign); err != nil {
						return err
					}
				}
				return nil
			}
			if _, err := core.Decompose(x, opts); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(ckpt, foreign.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damageFn := range damage {
		t.Run(name, func(t *testing.T) {
			dir, jobID := interruptedJobWithCheckpoint(t, cfg, 27)
			ckpt := filepath.Join(dir, "jobs", jobID+".ckpt")
			if _, err := os.Stat(ckpt); err != nil {
				t.Fatalf("expected a committed checkpoint: %v", err)
			}
			damageFn(t, ckpt)

			_, hs2, cl2 := newTestServer(t, server.Config{Workers: 1, DataDir: dir})
			waitForState(t, cl2, jobID, server.StateDone)
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			got, err := cl2.Result(ctx, jobID)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, want, got)
			dur := metriczDurability(t, hs2)
			if counter(t, dur, "corrupt_skipped") < 1 {
				t.Fatalf("corrupt_skipped = %v, want >= 1", dur["corrupt_skipped"])
			}
			if counter(t, dur, "resumed_jobs") != 0 {
				t.Fatalf("resumed_jobs = %v, want 0 (checkpoint was unusable)", dur["resumed_jobs"])
			}
		})
	}
}

// TestCorruptTensorSpillFailsOneJob: the input tensor has no other copy, so
// a damaged spill fails that one job with a typed corrupt_artifact error —
// recovery itself proceeds.
func TestCorruptTensorSpillFailsOneJob(t *testing.T) {
	cfg := durableConfig(5)
	dir, jobID := interruptedJobWithCheckpoint(t, cfg, 28)
	corruptFile(t, filepath.Join(dir, "jobs", jobID+".ten"))

	_, _, cl2 := newTestServer(t, server.Config{Workers: 1, DataDir: dir})
	waitForFailedKind(t, cl2, jobID, server.KindCorruptData)
}

// TestCorruptSnapshotFallsBackToJournal: a damaged snapshot never aborts
// startup — the journal alone reconstructs the state.
func TestCorruptSnapshotFallsBackToJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(4)
	x := testTensor(29, 13, 11, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	srv1, _, cl1 := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	receipt, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl1, receipt.JobID, server.StateDone)
	want, err := cl1.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	srv1.Drain(drainCtx)

	if err := os.WriteFile(filepath.Join(dir, "snapshot.dtjs"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hs2, cl2 := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	st, err := cl2.Job(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone || !st.Recovered {
		t.Fatalf("job not restored from journal alone: %+v", st)
	}
	got, err := cl2.Result(ctx, receipt.JobID)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, want, got)
	if dur := metriczDurability(t, hs2); counter(t, dur, "corrupt_skipped") < 1 {
		t.Fatalf("corrupt_skipped = %v, want >= 1 (snapshot was garbage)", dur["corrupt_skipped"])
	}
}

// TestCorruptResultSpillTypedError: a restored done job whose result spill
// was damaged answers GET /result with a typed corrupt_artifact error
// instead of a panic or a silent wrong payload.
func TestCorruptResultSpillTypedError(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(4)
	x := testTensor(31, 12, 11, 10)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	srv1, _, cl1 := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	receipt, err := cl1.Submit(ctx, x, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, cl1, receipt.JobID, server.StateDone)
	drainCtx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	srv1.Drain(drainCtx)

	corruptFile(t, filepath.Join(dir, "jobs", receipt.JobID+".dtd"))
	_, hs2, _ := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	resp, err := http.Get(hs2.URL + "/v1/jobs/" + receipt.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt result spill answered %d, want 500", resp.StatusCode)
	}
	var body struct {
		Error *server.WireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == nil || body.Error.Kind != server.KindCorruptData {
		t.Fatalf("error = %+v, want kind %q", body.Error, server.KindCorruptData)
	}
}

// TestForeignJournalHeaderFailsStartup: the one corruption that must abort —
// a journal file that is not ours. Appending to it would destroy someone
// else's data, so New refuses.
func TestForeignJournalHeaderFailsStartup(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal.dtjl"), []byte("TOTALLY-NOT-A-JOURNAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := server.New(server.Config{Workers: 1, DataDir: dir})
	if err == nil {
		t.Fatal("New accepted a foreign journal file")
	}
	if !strings.Contains(err.Error(), "journal") {
		t.Fatalf("startup error does not name the journal: %v", err)
	}
}

// TestDurabilityCountersOnMetricz pins the /metricz durability surface: a
// durable server reports enabled with its checkpoint count, an ephemeral
// one reports enabled=false.
func TestDurabilityCountersOnMetricz(t *testing.T) {
	dir := t.TempDir()
	_, hs, cl := newTestServer(t, server.Config{Workers: 2, DataDir: dir})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Decompose(ctx, testTensor(32, 12, 11, 10), durableConfig(3), nil); err != nil {
		t.Fatal(err)
	}
	dur := metriczDurability(t, hs)
	if dur["enabled"] != true {
		t.Fatalf("durability.enabled = %v, want true", dur["enabled"])
	}
	if got := counter(t, dur, "checkpoints_written"); got != 3 {
		t.Fatalf("checkpoints_written = %v, want 3 (one per sweep)", got)
	}
	if frozen := dur["frozen"]; frozen != false {
		t.Fatalf("durability.frozen = %v, want false", frozen)
	}

	_, hsEphemeral, _ := newTestServer(t, server.Config{Workers: 1})
	if durE := metriczDurability(t, hsEphemeral); durE["enabled"] != false {
		t.Fatalf("ephemeral server durability.enabled = %v, want false", durE["enabled"])
	}
}

// TestCheckpointEveryCadence: CheckpointEvery=2 commits sweeps 2 and 4, and
// always the terminal sweep.
func TestCheckpointEveryCadence(t *testing.T) {
	dir := t.TempDir()
	_, hs, cl := newTestServer(t, server.Config{Workers: 1, DataDir: dir, CheckpointEvery: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Decompose(ctx, testTensor(33, 12, 11, 10), durableConfig(5), nil); err != nil {
		t.Fatal(err)
	}
	// Sweeps 2 and 4 by cadence, sweep 5 because it is terminal.
	if got := counter(t, metriczDurability(t, hs), "checkpoints_written"); got != 3 {
		t.Fatalf("checkpoints_written = %v, want 3 with CheckpointEvery=2 over 5 sweeps", got)
	}
}
