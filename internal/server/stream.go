package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dterr"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/trace"
)

// session is one streaming decomposition: a core.Stream plus the identity
// and instrumentation the serving layer needs. The mutex serializes every
// stream operation — appends are synchronous HTTP calls, solves run as
// queued jobs, and both take the lock, so a solve sees a frozen stream.
//
// The rolling digest identifies the ordered sequence of appended chunks.
// Range-query results are cached under (digest, range, canonical config):
// DecomposeRange is a pure function of the compressed slices in range.
// Full-stream solves are NOT cached — Decompose warm-starts from the
// previous solve's factors, so its result depends on the session's solve
// history, not only on the appended data.
type session struct {
	id  string
	cfg core.Config
	col *metrics.Collector
	tr  *trace.Tracer // non-nil when the session was created with trace:true

	mu     sync.Mutex
	st     *core.Stream
	digest string
}

func (s *Server) newSession(cfg core.Config, traced bool) *session {
	col := metrics.New()
	var tr *trace.Tracer
	if traced {
		tr = trace.New()
		col.SetTracer(tr)
	}
	opts := cfg.Options()
	opts.Pool = s.pl
	opts.Metrics = col
	opts.Profile = s.cfg.KernelProfile
	sess := &session{cfg: cfg, col: col, tr: tr, st: core.NewStream(opts)}
	s.mu.Lock()
	s.nextStream++
	sess.id = fmt.Sprintf("s-%06d", s.nextStream)
	s.streams[sess.id] = sess
	s.mu.Unlock()
	return sess
}

func (s *Server) lookupStream(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// statusLocked snapshots the session; callers hold sess.mu.
func (sess *session) statusLocked() StreamResponse {
	return StreamResponse{
		StreamID:      sess.id,
		Len:           sess.st.Len(),
		Shape:         sess.st.Shape(),
		StorageFloats: sess.st.StorageFloats(),
	}
}

// handleStreamCreate is POST /v1/streams: open a session. The config's
// ranks must match the order of the chunks that will be appended; the
// temporal (last) rank applies to the growing mode.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAdmissionError(w, r, nil, errDraining)
		return
	}
	var req StreamRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.Config.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, wireError(err))
		return
	}
	if werr := s.stampKernelProfile(&req.Config); werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	sess := s.newSession(req.Config, req.Trace)
	sess.mu.Lock()
	resp := sess.statusLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	sess.mu.Lock()
	resp := sess.statusLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	_, ok := s.streams[r.PathValue("id")]
	delete(s.streams, r.PathValue("id"))
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// handleStreamAppend is POST /v1/streams/{id}/append: compress a chunk into
// the stream, synchronously — by the time the response arrives the chunk is
// part of the compressed state. Appends honour request cancellation; a
// failed or cancelled append leaves the stream unchanged (the library
// guarantees no partial slices are retained).
func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	if s.draining.Load() {
		s.writeAdmissionError(w, r, nil, errDraining)
		return
	}
	var req AppendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	chunk, err := decodeTensor(req.TensorB64)
	if err != nil {
		writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput, Message: err.Error()})
		return
	}
	chunkDigest, err := tensorDigest(chunk)
	if err != nil {
		writeError(w, http.StatusInternalServerError, &WireError{Kind: KindInternal, Message: err.Error()})
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.st.AppendContext(r.Context(), chunk); err != nil {
		we := wireError(err)
		status := http.StatusBadRequest
		if we.Kind == KindInternal || we.Kind == KindPanic {
			status = http.StatusInternalServerError
		}
		writeError(w, status, we)
		return
	}
	sess.digest = chainDigest(sess.digest, chunkDigest)
	writeJSON(w, http.StatusOK, sess.statusLocked())
}

// handleStreamDecompose is POST /v1/streams/{id}/decompose: queue a
// full-stream solve. The job holds the session lock while it runs, so
// concurrent appends wait for it. Uncached by design — see session.
func (s *Server) handleStreamDecompose(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	lane, werr := requestLane(r, laneBatch)
	if werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	j := s.newStreamJob(sess, time.Duration(req.TimeoutMs)*time.Millisecond, "",
		func(ctx context.Context) (*core.Decomposition, error) {
			return sess.st.DecomposeContext(ctx)
		})
	j.requestID = requestID(r)
	j.tenant = requestTenant(r)
	j.lane = lane
	if err := s.admit(j); err != nil {
		j.cancel()
		s.writeAdmissionError(w, r, j, err)
		return
	}
	s.emitAdmission(j, "accept", "")
	annotateJob(r, j, "accept")
	s.respondSubmitted(w, j, http.StatusAccepted)
}

// handleStreamRange is POST /v1/streams/{id}/range: queue a time-range
// query over steps [t0, t1). Range results are pure functions of the
// compressed slices, so they are cached keyed by (stream digest at
// submission, range, canonical config); the job re-checks under the
// session lock that the stream has not grown past the submitted digest.
func (s *Server) handleStreamRange(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	lane, werr := requestLane(r, laneInteractive)
	if werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	sess.mu.Lock()
	digest := sess.digest
	sess.mu.Unlock()
	tenant := requestTenant(r)
	key := fmt.Sprintf("stream:%s|range:%d-%d|%s", digest, req.T0, req.T1, sess.cfg.Canonical())
	if dec, ok := s.cache.Get(key); ok {
		j := s.newJob(key, 0, false, nil)
		j.requestID = requestID(r)
		j.tenant = tenant
		j.lane = laneInteractive
		j.col = sess.col
		j.tracer = sess.tr
		j.state = StateDone
		j.dec = dec
		j.cacheHit = true
		j.started = j.created
		j.finished = j.created
		s.register(j)
		s.submitted.Add(1)
		s.completed.Add(1)
		s.schedMu.Lock()
		s.sched.cacheHitLocked(tenant)
		s.schedMu.Unlock()
		s.emitAdmission(j, "cache_hit", "")
		annotateJob(r, j, "cache_hit")
		s.respondSubmitted(w, j, http.StatusOK)
		return
	}
	t0, t1 := req.T0, req.T1
	j := s.newStreamJob(sess, time.Duration(req.TimeoutMs)*time.Millisecond, key,
		func(ctx context.Context) (*core.Decomposition, error) {
			if sess.digest != digest {
				return nil, fmt.Errorf("core: stream changed while the range query was queued (resubmit): %w",
					dterr.ErrInvalidInput)
			}
			return sess.st.DecomposeRangeContext(ctx, t0, t1)
		})
	j.requestID = requestID(r)
	j.tenant = tenant
	// Range queries are the interactive workload: they dispatch ahead of
	// every queued batch solve unless the client explicitly demotes them.
	j.lane = lane
	if err := s.admit(j); err != nil {
		j.cancel()
		s.writeAdmissionError(w, r, j, err)
		return
	}
	s.emitAdmission(j, "accept", "")
	annotateJob(r, j, "accept")
	s.respondSubmitted(w, j, http.StatusAccepted)
}

// newStreamJob wraps a session operation as a queued job. The exec closure
// runs under the session lock; the job reports the session's cumulative
// collector and tracer (stream instrumentation is per-session, because the
// underlying core.Stream binds its collector at creation).
func (s *Server) newStreamJob(sess *session, timeout time.Duration, key string,
	op func(ctx context.Context) (*core.Decomposition, error)) *job {
	j := s.newJob(key, timeout, false,
		func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
			sess.mu.Lock()
			defer sess.mu.Unlock()
			return op(ctx)
		})
	j.col = sess.col
	j.tracer = sess.tr
	return j
}
