package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/rangeidx"
	"repro/internal/trace"
)

// session is one streaming decomposition: a core.Stream plus the identity
// and instrumentation the serving layer needs. The mutex serializes every
// stream operation — appends are synchronous HTTP calls, solves run as
// queued jobs, and both take the lock, so a solve sees a frozen stream.
//
// The rolling digest identifies the ordered sequence of appended chunks;
// marks additionally record the digest after every append, so a range
// query is keyed by the shortest chunk prefix covering it (see rangeKey) —
// append-stable, because an append-only stream never changes the slices an
// already-covered range reads. Range-query results are cached under
// rangeKey(prefix digest, range, canonical config): both the direct
// DecomposeRange and the rangeidx stitch are pure functions of the covered
// slices. Full-stream solves are NOT cached — Decompose warm-starts from
// the previous solve's factors, so its result depends on the session's
// solve history, not only on the appended data.
type session struct {
	id  string
	cfg core.Config
	col *metrics.Collector
	tr  *trace.Tracer // non-nil when the session was created with trace:true

	mu     sync.Mutex
	st     *core.Stream
	idx    *rangeidx.Index // nil with Config.DisableRangeIndex
	digest string
	marks  []streamMark
}

// streamMark records the rolling digest after one successful append: the
// identity of the chunk prefix holding the first len time steps.
type streamMark struct {
	len    int
	digest string
}

// prefixDigestLocked returns the digest of the shortest appended-chunk
// prefix covering [0, t1). Callers hold sess.mu and guarantee t1 ≤ Len().
func (sess *session) prefixDigestLocked(t1 int) string {
	for _, m := range sess.marks {
		if m.len >= t1 {
			return m.digest
		}
	}
	return sess.digest
}

func (s *Server) newSession(cfg core.Config, traced bool) *session {
	col := metrics.New()
	var tr *trace.Tracer
	if traced {
		tr = trace.New()
		col.SetTracer(tr)
	}
	opts := cfg.Options()
	opts.Pool = s.pl
	opts.Metrics = col
	opts.Profile = s.cfg.KernelProfile
	sess := &session{cfg: cfg, col: col, tr: tr, st: core.NewStream(opts)}
	if !s.cfg.DisableRangeIndex {
		sess.idx = rangeidx.New(sess.st, rangeidx.Config{
			BlockSize:     s.cfg.RangeBlockSize,
			SummaryRank:   s.cfg.RangeSummaryRank,
			MinStitchSpan: s.cfg.RangeMinStitchSpan,
			MinFit:        s.cfg.RangeMinFit,
		})
	}
	s.mu.Lock()
	s.nextStream++
	sess.id = fmt.Sprintf("s-%06d", s.nextStream)
	s.streams[sess.id] = sess
	s.mu.Unlock()
	return sess
}

func (s *Server) lookupStream(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

// statusLocked snapshots the session; callers hold sess.mu.
func (sess *session) statusLocked() StreamResponse {
	return StreamResponse{
		StreamID:      sess.id,
		Len:           sess.st.Len(),
		Shape:         sess.st.Shape(),
		StorageFloats: sess.st.StorageFloats(),
	}
}

// handleStreamCreate is POST /v1/streams: open a session. The config's
// ranks must match the order of the chunks that will be appended; the
// temporal (last) rank applies to the growing mode.
func (s *Server) handleStreamCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeAdmissionError(w, r, nil, errDraining)
		return
	}
	var req StreamRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.Config.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, wireError(err))
		return
	}
	if werr := s.stampKernelProfile(&req.Config); werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	sess := s.newSession(req.Config, req.Trace)
	sess.mu.Lock()
	resp := sess.statusLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleStreamGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	sess.mu.Lock()
	resp := sess.statusLocked()
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	_, ok := s.streams[r.PathValue("id")]
	delete(s.streams, r.PathValue("id"))
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// handleStreamAppend is POST /v1/streams/{id}/append: compress a chunk into
// the stream, synchronously — by the time the response arrives the chunk is
// part of the compressed state. Appends honour request cancellation; a
// failed or cancelled append leaves the stream unchanged (the library
// guarantees no partial slices are retained).
func (s *Server) handleStreamAppend(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	if s.draining.Load() {
		s.writeAdmissionError(w, r, nil, errDraining)
		return
	}
	var req AppendRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	chunk, err := decodeTensor(req.TensorB64)
	if err != nil {
		writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput, Message: err.Error()})
		return
	}
	chunkDigest, err := tensorDigest(chunk)
	if err != nil {
		writeError(w, http.StatusInternalServerError, &WireError{Kind: KindInternal, Message: err.Error()})
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := sess.st.AppendContext(r.Context(), chunk); err != nil {
		we := wireError(err)
		status := http.StatusBadRequest
		if we.Kind == KindInternal || we.Kind == KindPanic {
			status = http.StatusInternalServerError
		}
		writeError(w, status, we)
		return
	}
	sess.digest = chainDigest(sess.digest, chunkDigest)
	sess.marks = append(sess.marks, streamMark{len: sess.st.Len(), digest: sess.digest})
	if sess.idx != nil {
		// Best-effort eager indexing: fold the new steps into the range
		// index's node cache so later range queries hit warm summaries. A
		// failure here only loses the warm-up — queries rebuild nodes
		// lazily — so it must not fail the append.
		if err := sess.idx.Advance(r.Context()); err != nil {
			s.cfg.Logf("stream %s: range-index advance: %v", sess.id, err)
		}
	}
	writeJSON(w, http.StatusOK, sess.statusLocked())
}

// handleStreamDecompose is POST /v1/streams/{id}/decompose: queue a
// full-stream solve. The job holds the session lock while it runs, so
// concurrent appends wait for it. Uncached by design — see session.
func (s *Server) handleStreamDecompose(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	var req SolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	lane, werr := requestLane(r, laneBatch)
	if werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	j := s.newStreamJob(sess, time.Duration(req.TimeoutMs)*time.Millisecond, "",
		func(ctx context.Context) (*core.Decomposition, error) {
			return sess.st.DecomposeContext(ctx)
		})
	j.requestID = requestID(r)
	j.tenant = requestTenant(r)
	j.lane = lane
	if err := s.admit(j); err != nil {
		j.cancel()
		s.writeAdmissionError(w, r, j, err)
		return
	}
	s.emitAdmission(j, "accept", "")
	annotateJob(r, j, "accept")
	s.respondSubmitted(w, j, http.StatusAccepted)
}

// handleStreamRangeGet is GET /v1/streams/{id}/range?t0=&t1=: queue a
// time-range query over steps [t0, t1). GET fits the operation — a range
// query reads the stream, mutating nothing an idempotent retry could
// observe — and makes range URLs addressable (curl, dashboards, HTTP
// caches). Bounds are validated up front with typed invalid_input errors;
// the optional timeout_ms parameter mirrors SolveRequest.TimeoutMs.
func (s *Server) handleStreamRangeGet(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	q := r.URL.Query()
	t0, err := strconv.Atoi(q.Get("t0"))
	if err != nil {
		writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput,
			Message: fmt.Sprintf("range: t0 %q is not an integer", q.Get("t0"))})
		return
	}
	t1, err := strconv.Atoi(q.Get("t1"))
	if err != nil {
		writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput,
			Message: fmt.Sprintf("range: t1 %q is not an integer", q.Get("t1"))})
		return
	}
	var timeoutMs int64
	if v := q.Get("timeout_ms"); v != "" {
		timeoutMs, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput,
				Message: fmt.Sprintf("range: timeout_ms %q is not an integer", v)})
			return
		}
	}
	s.submitRange(w, r, sess, t0, t1, timeoutMs)
}

// handleStreamRangePost is POST /v1/streams/{id}/range, the deprecated
// body-carried alias for handleStreamRangeGet. It accepts the historical
// RangeRequest body unchanged and answers with a Deprecation header (RFC
// 9745) pointing at the GET endpoint, so existing clients keep working
// while new ones migrate.
func (s *Server) handleStreamRangePost(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupStream(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, &WireError{Kind: KindNotFound, Message: "no such stream"})
		return
	}
	var req RangeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/streams/{id}/range?t0=&t1=>; rel="successor-version"`)
	s.submitRange(w, r, sess, req.T0, req.T1, req.TimeoutMs)
}

// submitRange queues (or cache-answers) a range query on behalf of both
// range endpoints. Results are cached under rangeKey — the covering chunk
// prefix's digest plus bounds and canonical config — which stays valid
// across later appends, so no submission-time staleness check is needed.
// The job itself goes through the session's range index when one is
// enabled, composing the answer from O(log T) cached node summaries, and
// falls back to a direct DecomposeRange otherwise.
func (s *Server) submitRange(w http.ResponseWriter, r *http.Request, sess *session, t0, t1 int, timeoutMs int64) {
	lane, werr := requestLane(r, laneInteractive)
	if werr != nil {
		writeError(w, http.StatusBadRequest, werr)
		return
	}
	sess.mu.Lock()
	n := sess.st.Len()
	if t0 < 0 || t0 >= t1 || t1 > n {
		sess.mu.Unlock()
		writeError(w, http.StatusBadRequest, &WireError{Kind: KindInvalidInput,
			Message: fmt.Sprintf("range: [%d, %d) is not a valid window into a stream of %d steps", t0, t1, n)})
		return
	}
	key := rangeKey(sess.prefixDigestLocked(t1), t0, t1, sess.cfg)
	sess.mu.Unlock()
	tenant := requestTenant(r)
	if dec, ok := s.cache.Get(key); ok {
		j := s.newJob(key, 0, false, nil)
		j.requestID = requestID(r)
		j.tenant = tenant
		j.lane = laneInteractive
		j.col = sess.col
		j.tracer = sess.tr
		j.state = StateDone
		j.dec = dec
		j.cacheHit = true
		j.started = j.created
		j.finished = j.created
		s.register(j)
		s.submitted.Add(1)
		s.completed.Add(1)
		s.schedMu.Lock()
		s.sched.cacheHitLocked(tenant)
		s.schedMu.Unlock()
		s.emitAdmission(j, "cache_hit", "")
		annotateJob(r, j, "cache_hit")
		s.respondSubmitted(w, j, http.StatusOK)
		return
	}
	j := s.newStreamJob(sess, time.Duration(timeoutMs)*time.Millisecond, key,
		func(ctx context.Context) (*core.Decomposition, error) {
			if sess.idx != nil {
				dec, _, err := sess.idx.Query(ctx, t0, t1)
				return dec, err
			}
			return sess.st.DecomposeRangeContext(ctx, t0, t1)
		})
	j.requestID = requestID(r)
	j.tenant = tenant
	// Range queries are the interactive workload: they dispatch ahead of
	// every queued batch solve unless the client explicitly demotes them.
	j.lane = lane
	if err := s.admit(j); err != nil {
		j.cancel()
		s.writeAdmissionError(w, r, j, err)
		return
	}
	s.emitAdmission(j, "accept", "")
	annotateJob(r, j, "accept")
	s.respondSubmitted(w, j, http.StatusAccepted)
}

// newStreamJob wraps a session operation as a queued job. The exec closure
// runs under the session lock; the job reports the session's cumulative
// collector and tracer (stream instrumentation is per-session, because the
// underlying core.Stream binds its collector at creation).
func (s *Server) newStreamJob(sess *session, timeout time.Duration, key string,
	op func(ctx context.Context) (*core.Decomposition, error)) *job {
	j := s.newJob(key, timeout, false,
		func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
			sess.mu.Lock()
			defer sess.mu.Unlock()
			return op(ctx)
		})
	j.col = sess.col
	j.tracer = sess.tr
	return j
}
