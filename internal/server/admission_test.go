package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/tensor"
)

// blockingJob returns a job whose exec parks until release closes (or its
// context is cancelled) — a deterministic way to hold a runner busy, with
// no dependence on decomposition timing.
func blockingJob(s *Server, release <-chan struct{}) *job {
	return s.newJob("", 0, false,
		func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
			select {
			case <-release:
				return nil, context.Canceled // treated as cancelled; fine for these tests
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
}

func waitJobState(t *testing.T, j *job, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q waiting for %q", j.id, state, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionControl pins the exact shedding boundary: with one runner
// parked and a depth-1 queue holding a second job, the next HTTP
// submission is rejected with 429 + Retry-After, and admission reopens as
// soon as the queue drains.
func TestAdmissionControl(t *testing.T) {
	s := mustNew(t, Config{Runners: 1, QueueDepth: 1, Workers: 1, RetryAfter: 3 * time.Second})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	release := make(chan struct{})
	defer close(release)

	running := blockingJob(s, release)
	if err := s.admit(running); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, running, StateRunning)

	queued := blockingJob(s, release)
	if err := s.admit(queued); err != nil {
		t.Fatalf("queue-depth-1 admission failed: %v", err)
	}

	// The queue is now full: direct admission and the HTTP path must both
	// shed load.
	overflow := blockingJob(s, release)
	if err := s.admit(overflow); err != errQueueFull {
		t.Fatalf("overflow admission returned %v, want errQueueFull", err)
	}
	overflow.cancel()

	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	if _, err := tensor.RandN(rng, 4, 4, 4).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(DecomposeRequest{
		Config:    core.Config{Ranks: []int{2, 2, 2}},
		TensorB64: base64.StdEncoding.EncodeToString(buf.Bytes()),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/decompose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error *WireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if env.Error == nil || env.Error.Kind != KindQueueFull {
		t.Fatalf("error envelope %+v, want kind %q", env.Error, KindQueueFull)
	}

	// Cancel the parked jobs; the queue drains and admission reopens.
	running.cancel()
	queued.cancel()
	waitJobState(t, running, StateCancelled)
	waitJobState(t, queued, StateCancelled)

	resp2, err := http.Post(hs.URL+"/v1/decompose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain submission status = %d, want 202", resp2.StatusCode)
	}
}

// TestDrainCancelsBlockedJobs proves the drain deadline path without
// decomposition timing: jobs that never finish on their own are cancelled
// when the drain context expires, and Drain still returns with all runners
// joined.
func TestDrainCancelsBlockedJobs(t *testing.T) {
	s := mustNew(t, Config{Runners: 2, QueueDepth: 4, Workers: 1})
	never := make(chan struct{}) // intentionally never closed
	j1 := blockingJob(s, never)
	j2 := blockingJob(s, never)
	for _, j := range []*job{j1, j2} {
		if err := s.admit(j); err != nil {
			t.Fatal(err)
		}
	}
	waitJobState(t, j1, StateRunning)
	waitJobState(t, j2, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() { s.Drain(ctx); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after its context expired")
	}
	for _, j := range []*job{j1, j2} {
		waitJobState(t, j, StateCancelled)
	}
	if !s.Draining() {
		t.Fatal("server does not report draining after Drain")
	}
}

// TestCacheLRUEviction pins the cache's bound and recency order.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	d := &core.Decomposition{}
	c.Put("a", d)
	c.Put("b", d)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", d) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache len %d, want 2", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 1 {
		t.Fatalf("stats %d/%d, want 3 hits / 1 miss", hits, misses)
	}

	// Disabled cache never stores.
	off := newResultCache(-1)
	off.Put("x", d)
	if _, ok := off.Get("x"); ok {
		t.Fatal("disabled cache stored a result")
	}
}
