package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Admission and scheduling.
//
// The server's queue is not a FIFO: it is a two-level scheduler that decides
// both *whether* a submission is admitted and *which* queued job the next
// free runner executes.
//
// Admission (scheduler.submit) applies three gates, in order:
//
//  1. Coalescing — a submission whose cache key matches a job already
//     queued or running attaches to that leader instead of executing
//     again. The follower consumes no queue slot and no runner time; when
//     the leader finishes, every follower receives the same result
//     (bit-identical, because the library is deterministic). This is
//     singleflight in front of the LRU result cache: the cache serves
//     repeats *after* a result exists, coalescing serves repeats *while*
//     it is being computed.
//  2. Per-tenant quota — each tenant may have at most Config.TenantQuota
//     leaders outstanding (queued + running). Beyond it the submission is
//     shed with 429/tenant_quota regardless of global queue headroom, so
//     one tenant cannot occupy the whole queue.
//  3. Global capacity — at most Config.QueueDepth jobs may wait. Beyond it
//     the submission is shed with 429/queue_full.
//
// Dispatch (scheduler.next) serves two strict-priority lanes: any queued
// interactive job (range queries, or anything submitted with
// "X-Priority: interactive") is dispatched before every batch job. Within
// a lane, tenants are served by weighted fair queueing: each tenant carries
// a virtual time that advances by 1/weight per dispatched job, and the
// tenant with the smallest virtual time goes next, so over any backlogged
// interval tenant throughput converges to the ratio of the configured
// weights. A tenant going idle does not bank credit: when it becomes
// backlogged again its virtual time is brought forward to the scheduler's
// clock.

// lane is a strict-priority class. Higher lanes are dispatched first.
type lane int

const (
	// laneBatch is the default lane for decompose and full-stream solves.
	laneBatch lane = iota
	// laneInteractive is the default lane for range queries; it preempts
	// (is always dispatched before) laneBatch.
	laneInteractive
	numLanes
)

// String returns the lane's wire name.
func (l lane) String() string {
	if l == laneInteractive {
		return "interactive"
	}
	return "batch"
}

// requestLane maps a request's X-Priority header onto a lane. An absent
// header keeps the endpoint's default; anything else must name a lane
// exactly — unknown values are a 400, not a silent fall-through, so a
// client typo ("Interactive", "high") cannot quietly demote its jobs.
func requestLane(r *http.Request, def lane) (lane, *WireError) {
	switch v := r.Header.Get(HeaderPriority); v {
	case "":
		return def, nil
	case "interactive":
		return laneInteractive, nil
	case "batch":
		return laneBatch, nil
	default:
		return def, &WireError{
			Kind:    KindInvalidInput,
			Message: fmt.Sprintf("unknown %s value %q (want interactive or batch)", HeaderPriority, v),
		}
	}
}

// defaultTenant is the tenant jobs belong to when the request carries no
// X-Tenant header.
const defaultTenant = "default"

// Admission-control rejections, mapped onto 429s by writeAdmissionError.
var (
	errQueueFull   = errors.New("job queue is full")
	errTenantQuota = errors.New("tenant has too many jobs outstanding")
	errDraining    = errors.New("server is draining")
)

// TenantStats is one tenant's cumulative admission and completion counters,
// exported per tenant under the "tenants" key of /metricz.
type TenantStats struct {
	Submitted     int64 `json:"submitted"`      // admitted leaders + coalesced followers + cache hits
	Completed     int64 `json:"completed"`      // jobs finished in state done
	Failed        int64 `json:"failed"`         // jobs finished in state failed
	Cancelled     int64 `json:"cancelled"`      // jobs finished in state cancelled
	RejectedQueue int64 `json:"rejected_queue"` // shed: global queue full
	RejectedQuota int64 `json:"rejected_quota"` // shed: per-tenant quota exceeded
	Coalesced     int64 `json:"coalesced"`      // submissions attached to an in-flight leader
	CacheHits     int64 `json:"cache_hits"`     // submissions answered from the result cache
}

// tenantState is one tenant's live scheduling state. All fields are guarded
// by the owning scheduler's mutex.
type tenantState struct {
	name        string
	weight      int
	vtime       float64        // WFQ virtual time; smallest backlogged tenant runs next
	queues      [numLanes][]*job
	outstanding int            // leaders queued + running, charged against the quota
	stats       TenantStats
}

func (ts *tenantState) backlogged() bool {
	for l := range ts.queues {
		if len(ts.queues[l]) > 0 {
			return true
		}
	}
	return false
}

// scheduler owns admission and dispatch. It is created by New from the
// server Config and shares the server's mutex discipline: one internal lock,
// never held across job execution.
type scheduler struct {
	// Immutable after creation.
	capacity      int
	quota         int // per-tenant outstanding bound; 0 = unlimited
	weights       map[string]int
	defaultWeight int
	coalesce      bool

	// Guarded by the server's scheduling mutex (see Server.sched usage);
	// the scheduler embeds its own synchronization via schedMu/schedCond in
	// Server to keep a single lock order. Fields below are only touched
	// under that lock.
	closed   bool
	queued   int
	vclock   float64
	tenants  map[string]*tenantState
	inflight map[string]*job // cache key → queued-or-running leader
}

func newScheduler(cfg Config) *scheduler {
	return &scheduler{
		capacity:      cfg.QueueDepth,
		quota:         cfg.TenantQuota,
		weights:       cfg.TenantWeights,
		defaultWeight: cfg.DefaultTenantWeight,
		coalesce:      !cfg.DisableCoalesce,
		tenants:       make(map[string]*tenantState),
		inflight:      make(map[string]*job),
	}
}

// tenantLocked returns (creating if needed) the tenant's state.
func (sc *scheduler) tenantLocked(name string) *tenantState {
	if name == "" {
		name = defaultTenant
	}
	ts, ok := sc.tenants[name]
	if !ok {
		w := sc.defaultWeight
		if cfg, ok := sc.weights[name]; ok && cfg > 0 {
			w = cfg
		}
		if w <= 0 {
			w = 1
		}
		ts = &tenantState{name: name, weight: w}
		sc.tenants[name] = ts
	}
	return ts
}

// submitLocked admits j, coalesces it onto an in-flight leader, or rejects
// it. It returns (leader, nil) when j was attached as a follower, (nil, nil)
// when j was enqueued, and (nil, err) when it was shed. Callers hold the
// server's scheduling lock and signal the dispatch condition on success.
func (sc *scheduler) submitLocked(j *job, now time.Time) (*job, error) {
	ts := sc.tenantLocked(j.tenant)
	if sc.coalesce && j.key != "" {
		if leader := sc.inflight[j.key]; leader != nil {
			j.coalesced = true
			leader.followers = append(leader.followers, j)
			ts.stats.Submitted++
			ts.stats.Coalesced++
			return leader, nil
		}
	}
	if sc.quota > 0 && ts.outstanding >= sc.quota {
		ts.stats.RejectedQuota++
		return nil, errTenantQuota
	}
	if sc.queued >= sc.capacity {
		ts.stats.RejectedQueue++
		if age := sc.headAgeLocked(now); age > 0 {
			metrics.Observe(metrics.HistJobShedHeadAge, age)
		}
		return nil, errQueueFull
	}
	if !ts.backlogged() && ts.vtime < sc.vclock {
		// The tenant was idle: bring it forward so it cannot spend banked
		// virtual time starving the tenants that kept the server busy.
		ts.vtime = sc.vclock
	}
	ts.queues[j.lane] = append(ts.queues[j.lane], j)
	ts.outstanding++
	ts.stats.Submitted++
	sc.queued++
	if j.key != "" {
		sc.inflight[j.key] = j
	}
	return nil, nil
}

// restoreLocked re-enqueues a job recovered from the durability journal. It
// is submitLocked minus the quota and capacity gates: the job was already
// admitted by a previous process life, and shedding it now would turn an
// acknowledged submission into a silent drop. Coalescing still applies, so
// identical recovered jobs execute once. Returns the leader when j attached
// as a follower, nil when it was enqueued.
func (sc *scheduler) restoreLocked(j *job) *job {
	ts := sc.tenantLocked(j.tenant)
	if sc.coalesce && j.key != "" {
		if leader := sc.inflight[j.key]; leader != nil {
			j.coalesced = true
			leader.followers = append(leader.followers, j)
			ts.stats.Submitted++
			ts.stats.Coalesced++
			return leader
		}
	}
	if !ts.backlogged() && ts.vtime < sc.vclock {
		ts.vtime = sc.vclock
	}
	ts.queues[j.lane] = append(ts.queues[j.lane], j)
	ts.outstanding++
	ts.stats.Submitted++
	sc.queued++
	if j.key != "" {
		sc.inflight[j.key] = j
	}
	return nil
}

// headAgeLocked returns the age of the oldest queued job — how far behind
// the queue head is at the moment load is shed.
func (sc *scheduler) headAgeLocked(now time.Time) time.Duration {
	var oldest time.Time
	for _, ts := range sc.tenants {
		for l := range ts.queues {
			if len(ts.queues[l]) == 0 {
				continue
			}
			if c := ts.queues[l][0].created; oldest.IsZero() || c.Before(oldest) {
				oldest = c
			}
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// pickLocked dequeues the next job by lane priority then weighted fairness,
// or returns nil when nothing is queued. Ties on virtual time break by
// tenant name so dispatch order is deterministic.
func (sc *scheduler) pickLocked() *job {
	for l := numLanes - 1; l >= 0; l-- {
		var best *tenantState
		for _, ts := range sc.tenants {
			if len(ts.queues[l]) == 0 {
				continue
			}
			if best == nil || ts.vtime < best.vtime ||
				(ts.vtime == best.vtime && ts.name < best.name) {
				best = ts
			}
		}
		if best == nil {
			continue
		}
		j := best.queues[l][0]
		best.queues[l] = best.queues[l][1:]
		sc.queued--
		sc.vclock = best.vtime
		best.vtime += 1 / float64(best.weight)
		return j
	}
	return nil
}

// completeLocked retires a finished leader: releases its quota charge,
// removes its in-flight coalescing entry, and detaches its followers for
// the caller to finish outside the lock.
func (sc *scheduler) completeLocked(j *job) []*job {
	ts := sc.tenantLocked(j.tenant)
	ts.outstanding--
	if j.key != "" && sc.inflight[j.key] == j {
		delete(sc.inflight, j.key)
	}
	followers := j.followers
	j.followers = nil
	return followers
}

// tallyLocked records a finished job's terminal state in its tenant's
// counters.
func (sc *scheduler) tallyLocked(j *job, state string) {
	ts := sc.tenantLocked(j.tenant)
	switch state {
	case StateDone:
		ts.stats.Completed++
	case StateCancelled:
		ts.stats.Cancelled++
	default:
		ts.stats.Failed++
	}
}

// cacheHitLocked records a submission answered directly from the result
// cache (the job never entered the queue).
func (sc *scheduler) cacheHitLocked(tenant string) {
	ts := sc.tenantLocked(tenant)
	ts.stats.Submitted++
	ts.stats.CacheHits++
	ts.stats.Completed++
}

// snapshotLocked copies every tenant's counters, keyed by tenant name.
func (sc *scheduler) snapshotLocked() map[string]TenantStats {
	out := make(map[string]TenantStats, len(sc.tenants))
	for name, ts := range sc.tenants {
		out[name] = ts.stats
	}
	return out
}

// tenantNamesLocked returns the known tenants in sorted order (used by the
// log line Drain flushes).
func (sc *scheduler) tenantNamesLocked() []string {
	names := make([]string, 0, len(sc.tenants))
	for name := range sc.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
