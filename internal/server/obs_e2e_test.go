package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// eventLog is a concurrency-safe sink for the structured event log plus a
// JSONL decoder over what has been written so far.
type eventLog struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

// events decodes every line written so far. Lines are complete JSON
// documents because slog writes each record with a single Write call.
func (l *eventLog) events(t *testing.T) []map[string]any {
	t.Helper()
	l.mu.Lock()
	raw := l.b.String()
	l.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("event log line %q is not JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// find returns the events matching event kind and request_id.
func findEvents(evs []map[string]any, kind, rid string) []map[string]any {
	var out []map[string]any
	for _, e := range evs {
		if e["event"] == kind && e["request_id"] == rid {
			out = append(out, e)
		}
	}
	return out
}

// waitEvent polls the log until exactly want events of the kind exist for
// rid (job events are emitted by the runner goroutine, which races with the
// HTTP status flipping to done).
func waitEvent(t *testing.T, l *eventLog, kind, rid string, want int) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		evs := findEvents(l.events(t), kind, rid)
		if len(evs) >= want {
			if len(evs) > want {
				t.Fatalf("%d %q events for %s, want %d", len(evs), kind, rid, want)
			}
			return evs
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q event for %s after 10s", kind, rid)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func obsTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *eventLog) {
	t.Helper()
	l := &eventLog{}
	lg, err := obs.New(l, obs.FormatJSON, slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = lg
	if cfg.FlightRecorderSize == 0 {
		cfg.FlightRecorderSize = 16
	}
	s := mustNew(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, hs, l
}

func decomposeBody(t *testing.T, seed int64, traced bool) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	if _, err := tensor.RandN(rng, 6, 5, 4).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(DecomposeRequest{
		Config:    core.Config{Ranks: []int{2, 2, 2}},
		TensorB64: base64.StdEncoding.EncodeToString(buf.Bytes()),
		Trace:     traced,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postWithRID(t *testing.T, url, rid string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set(HeaderRequestID, rid)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestObsCorrelatedStory is the end-to-end acceptance path of the
// observability layer: one traced request's ID must appear on the response
// header, in the submit receipt, on every log event of the job's lifecycle,
// in the flight recorder, and its server-side spans must land in the same
// trace tree as the compute spans.
func TestObsCorrelatedStory(t *testing.T) {
	_, hs, l := obsTestServer(t, Config{Workers: 1, Runners: 1})
	const rid = "story-rid-1"

	resp := postWithRID(t, hs.URL+"/v1/decompose", rid, decomposeBody(t, 42, true))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != rid {
		t.Fatalf("response %s = %q, want %q", HeaderRequestID, got, rid)
	}
	var receipt SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if receipt.RequestID != rid {
		t.Fatalf("receipt request_id = %q, want %q", receipt.RequestID, rid)
	}

	// Poll to done, then fetch the result so the serialize span is recorded.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := http.Get(hs.URL + "/v1/jobs/" + receipt.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var js JobStatus
		if err := json.NewDecoder(st.Body).Decode(&js); err != nil {
			t.Fatal(err)
		}
		st.Body.Close()
		if js.RequestID != rid {
			t.Fatalf("job status request_id = %q, want %q", js.RequestID, rid)
		}
		if js.State == StateDone {
			break
		}
		if js.State == StateFailed || js.State == StateCancelled {
			t.Fatalf("job ended %s", js.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	res, err := http.Get(hs.URL + "/v1/jobs/" + receipt.JobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", res.StatusCode)
	}

	// One admission, one job_start, one job_finish — all carrying the ID.
	adm := waitEvent(t, l, "admission", rid, 1)
	if adm[0]["outcome"] != "accept" {
		t.Fatalf("admission outcome = %v, want accept", adm[0]["outcome"])
	}
	if adm[0]["job_id"] != receipt.JobID {
		t.Fatalf("admission job_id = %v, want %s", adm[0]["job_id"], receipt.JobID)
	}
	waitEvent(t, l, "job_start", rid, 1)
	fin := waitEvent(t, l, "job_finish", rid, 1)
	if fin[0]["outcome"] != StateDone {
		t.Fatalf("job_finish outcome = %v, want done", fin[0]["outcome"])
	}
	if fin[0]["job_id"] != receipt.JobID {
		t.Fatalf("job_finish job_id = %v, want %s", fin[0]["job_id"], receipt.JobID)
	}
	if fin[0]["cache"] != "miss" {
		t.Fatalf("job_finish cache = %v, want miss", fin[0]["cache"])
	}

	// The trace tree holds server-side and compute spans together.
	tr, err := http.Get(hs.URL + "/v1/jobs/" + receipt.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, err := io.ReadAll(tr.Body)
	tr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(string(traceBody)), "\n") {
		var span struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		names = append(names, span.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"server:admission", "server:queue-wait", "server:run", "server:serialize"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace spans %v missing %q", names, want)
		}
	}
	compute := 0
	for _, n := range names {
		if !strings.HasPrefix(n, "server:") {
			compute++
		}
	}
	if compute == 0 {
		t.Fatalf("trace spans %v hold no compute spans alongside the server spans", names)
	}

	// The flight recorder retains the request, keyed by the same ID.
	dbg, err := http.Get(hs.URL + "/debugz/requests")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(dbg.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	dbg.Body.Close()
	found := false
	for _, s := range snap.Recent {
		if s.RequestID == rid && s.Route == "POST /v1/decompose" && s.JobID == receipt.JobID {
			found = true
		}
	}
	if !found {
		t.Fatalf("flight recorder %+v holds no entry for %s", snap.Recent, rid)
	}
}

// TestObsGeneratedRequestID pins the no-header path: the daemon mints an ID
// and still echoes it on the response.
func TestObsGeneratedRequestID(t *testing.T) {
	_, hs, l := obsTestServer(t, Config{Workers: 1, Runners: 1})
	resp := postWithRID(t, hs.URL+"/v1/decompose", "", decomposeBody(t, 43, false))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	rid := resp.Header.Get(HeaderRequestID)
	if rid == "" {
		t.Fatal("no X-Request-ID on response to header-less request")
	}
	var receipt SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&receipt); err != nil {
		t.Fatal(err)
	}
	if receipt.RequestID != rid {
		t.Fatalf("receipt request_id %q != header %q", receipt.RequestID, rid)
	}
	waitEvent(t, l, "admission", rid, 1)
}

// TestObsShedCarriesRequestID pins the bugfix: a 429 emitted before any job
// record exists still echoes the request ID and lands in the event log and
// the flight recorder's last-shed pin.
func TestObsShedCarriesRequestID(t *testing.T) {
	s, hs, l := obsTestServer(t, Config{Runners: 1, QueueDepth: 1, Workers: 1, RetryAfter: time.Second})
	release := make(chan struct{})
	defer close(release)

	running := blockingJob(s, release)
	if err := s.admit(running); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, running, StateRunning)
	queued := blockingJob(s, release)
	if err := s.admit(queued); err != nil {
		t.Fatal(err)
	}

	const rid = "shed-rid-1"
	resp := postWithRID(t, hs.URL+"/v1/decompose", rid, decomposeBody(t, 44, false))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderRequestID); got != rid {
		t.Fatalf("429 response %s = %q, want %q", HeaderRequestID, got, rid)
	}

	evs := waitEvent(t, l, "admission", rid, 1)
	if evs[0]["outcome"] != "shed_queue_full" {
		t.Fatalf("shed admission outcome = %v, want shed_queue_full", evs[0]["outcome"])
	}
	if evs[0]["level"] != "WARN" {
		t.Fatalf("shed admission level = %v, want WARN", evs[0]["level"])
	}

	dbg, err := http.Get(hs.URL + "/debugz/requests")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(dbg.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	dbg.Body.Close()
	if snap.LastShed == nil || snap.LastShed.RequestID != rid {
		t.Fatalf("flight recorder last_shed = %+v, want request %s", snap.LastShed, rid)
	}
	if snap.LastShed.ErrClass != KindQueueFull {
		t.Fatalf("last_shed error_class = %q, want %q", snap.LastShed.ErrClass, KindQueueFull)
	}
}

// TestMetriczFormats pins the exposition surface: the JSON document carries
// the curated namespaced state (no cmdline, no full memstats dump), and the
// Prometheus rendering passes the repo's own format linter.
func TestMetriczFormats(t *testing.T) {
	metrics.SetEnabled(true)
	t.Cleanup(func() { metrics.SetEnabled(false) })
	_, hs, _ := obsTestServer(t, Config{Workers: 1, Runners: 1})

	resp := postWithRID(t, hs.URL+"/v1/decompose", "", decomposeBody(t, 45, false))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	js, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(js.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	js.Body.Close()
	if _, ok := doc["cmdline"]; ok {
		t.Fatal("/metricz still exposes cmdline")
	}
	for _, want := range []string{"dtucker_metrics", "dtuckerd", "memstats"} {
		if _, ok := doc[want]; !ok {
			t.Fatalf("/metricz JSON missing %q key", want)
		}
	}
	var mem map[string]any
	if err := json.Unmarshal(doc["memstats"], &mem); err != nil {
		t.Fatal(err)
	}
	if _, ok := mem["PauseNs"]; ok {
		t.Fatal("/metricz memstats is the full runtime dump, want the curated subset")
	}

	prom, err := http.Get(hs.URL + "/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if ct := prom.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus content-type = %q", ct)
	}
	body, err := io.ReadAll(prom.Body)
	prom.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.LintPrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("prometheus rendering invalid: %v\n%s", err, body)
	}
	for _, want := range []string{"dtuckerd_jobs_total{outcome=\"submitted\"}", "dtucker_latency_seconds_bucket"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("prometheus rendering missing %q", want)
		}
	}

	bad, err := http.Get(hs.URL + "/metricz?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format status = %d, want 400", bad.StatusCode)
	}
}
