package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Cache keys. A decomposition result is fully determined by the input
// tensor's bytes and the canonical form of its config (the library is
// deterministic for a fixed seed and bit-identical across worker counts),
// so (tensor digest, Config.Canonical) is a sound cache key: two requests
// with the same key would receive bit-identical results anyway.

// tensorDigest returns the hex SHA-256 of the tensor's .ten serialization.
func tensorDigest(x *tensor.Dense) (string, error) {
	h := sha256.New()
	if _, err := x.WriteTo(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheKey combines a content digest with the canonical config string.
func cacheKey(digest string, cfg core.Config) string {
	return digest + "|" + cfg.Canonical()
}

// chainDigest folds one chunk digest into a stream's rolling digest, so a
// stream's identity is the ordered sequence of its appended chunks.
func chainDigest(prev, chunk string) string {
	h := sha256.Sum256([]byte(prev + "+" + chunk))
	return hex.EncodeToString(h[:])
}

// rangeKey is the single builder for range-query cache keys: a prefix
// digest identifying the appended chunks that cover [0, t1), the range
// bounds, and the canonical config — which includes the kernel-selection
// profile fingerprint for "auto" requests, so results computed under
// different profiles never collide (the same guarantee cacheKey gives
// decompose jobs). Keying by the covering *prefix* digest rather than the
// whole-stream rolling digest makes range results append-stable: a range
// answered before later appends is a cache hit after them, because an
// append-only stream never changes the slices a submitted range covers.
func rangeKey(prefixDigest string, t0, t1 int, cfg core.Config) string {
	return fmt.Sprintf("stream:%s|range:%d-%d|%s", prefixDigest, t0, t1, cfg.Canonical())
}
