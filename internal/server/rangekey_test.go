package server

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernelsel"
)

// TestRangeKeyProfileParticipation pins the range-cache analogue of the
// decompose-cache invariant: every range key flows through the single
// rangeKey builder, and the canonical config — including the kernel
// profile fingerprint stamped on auto requests — participates, so two
// servers with different profiles can never serve each other's entries.
func TestRangeKeyProfileParticipation(t *testing.T) {
	slow := kernelsel.Default()
	slow.EigNsPerN3 *= 100
	sA := newDrainedServer(t, Config{Workers: 1, Runners: 1})
	sB := newDrainedServer(t, Config{Workers: 1, Runners: 1, KernelProfile: slow})

	auto := core.Config{Ranks: []int{3, 3, 3}, SliceKernel: "auto"}
	cfgA, cfgB := auto, auto
	if werr := sA.stampKernelProfile(&cfgA); werr != nil {
		t.Fatal(werr)
	}
	if werr := sB.stampKernelProfile(&cfgB); werr != nil {
		t.Fatal(werr)
	}
	if rangeKey("d", 2, 9, cfgA) == rangeKey("d", 2, 9, cfgB) {
		t.Fatal("different profiles produced the same range key — a profile change could serve stale range results")
	}
	if rangeKey("d", 2, 9, cfgA) != rangeKey("d", 2, 9, cfgA) {
		t.Fatal("rangeKey is not deterministic")
	}

	// Distinct windows and distinct prefixes must key distinct entries.
	if rangeKey("d", 2, 9, cfgA) == rangeKey("d", 2, 8, cfgA) {
		t.Fatal("different windows share a range key")
	}
	if rangeKey("d1", 2, 9, cfgA) == rangeKey("d2", 2, 9, cfgA) {
		t.Fatal("different stream prefixes share a range key")
	}
}

// TestPrefixDigestAppendStable pins what makes range keys survive appends:
// the covering-prefix digest for a window depends only on the chunks up to
// the first mark covering it, so later appends change nothing.
func TestPrefixDigestAppendStable(t *testing.T) {
	sess := &session{}
	digest := ""
	for i, chunk := range []string{"c1", "c2", "c3"} {
		digest = chainDigest(digest, chunk)
		sess.digest = digest
		sess.marks = append(sess.marks, streamMark{len: (i + 1) * 4, digest: digest})
	}
	before := sess.prefixDigestLocked(7) // covered by the first two chunks

	digest = chainDigest(digest, "c4")
	sess.digest = digest
	sess.marks = append(sess.marks, streamMark{len: 16, digest: digest})

	if after := sess.prefixDigestLocked(7); after != before {
		t.Fatalf("prefix digest for a covered window changed after an append: %q → %q", before, after)
	}
	if sess.prefixDigestLocked(16) != digest {
		t.Fatal("full-length window should be keyed by the whole-stream digest")
	}
	if sess.prefixDigestLocked(8) == sess.prefixDigestLocked(12) {
		t.Fatal("windows needing different prefixes share a digest")
	}
}
