package server

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/dterr"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// This file defines the JSON wire surface of the dtuckerd API. Tensors
// travel as base64-encoded .ten bytes inside the JSON envelope, so a
// request is one self-contained document; results travel as .dtd binary
// (GET /v1/jobs/{id}/result) or as Decomposition JSON with ?format=json.

// Admission-identity headers, honoured on every submission endpoint and set
// by repro.Client. A missing X-Tenant means tenant "default"; a missing
// X-Priority keeps the endpoint's default lane (batch for decompose and
// full-stream solves, interactive for range queries).
const (
	HeaderTenant   = "X-Tenant"
	HeaderPriority = "X-Priority"
)

// HeaderRequestID is the correlation header (see internal/obs): accepted
// on every request, echoed on every response.
const HeaderRequestID = obs.HeaderRequestID

// DecomposeRequest is the body of POST /v1/decompose.
type DecomposeRequest struct {
	// Config is the serializable decomposition request (see core.Config);
	// together with the tensor digest it forms the result-cache key.
	Config core.Config `json:"config"`
	// TensorB64 is the input tensor as base64 (standard encoding) of the
	// .ten binary format.
	TensorB64 string `json:"tensor_b64"`
	// TimeoutMs, when positive, bounds the decomposition's runtime once it
	// starts executing (queue wait does not count). The job fails with
	// kind "cancelled" when exceeded.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Trace records a hierarchical span trace of the run, retrievable at
	// GET /v1/jobs/{id}/trace once the job finishes.
	Trace bool `json:"trace,omitempty"`
}

// StreamRequest is the body of POST /v1/streams.
type StreamRequest struct {
	Config core.Config `json:"config"`
	// Trace attaches a span tracer to the session; every append and solve
	// records into it, and solve jobs expose it at /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// AppendRequest is the body of POST /v1/streams/{id}/append.
type AppendRequest struct {
	TensorB64 string `json:"tensor_b64"`
}

// SolveRequest is the body of POST /v1/streams/{id}/decompose. Earlier
// API versions also carried T0/T1 here for the range endpoint; range
// parameters now live in RangeRequest (the POST alias body) or, for the
// first-class GET endpoint, in the query string — a decompose body naming
// t0/t1 is rejected as an unknown field.
type SolveRequest struct {
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	Trace     bool  `json:"trace,omitempty"`
}

// RangeRequest is the body of the deprecated POST /v1/streams/{id}/range
// alias. It is wire-compatible with the SolveRequest shape that endpoint
// historically accepted; new clients should use
// GET /v1/streams/{id}/range?t0=&t1= instead.
type RangeRequest struct {
	T0        int   `json:"t0,omitempty"`
	T1        int   `json:"t1,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	Trace     bool  `json:"trace,omitempty"`
}

// SubmitResponse acknowledges an accepted (or cache-answered) job.
type SubmitResponse struct {
	JobID string `json:"job_id"`
	// RequestID is the correlation ID of the submitting request, also
	// echoed in the X-Request-ID response header; it indexes this job's
	// structured log events and flight-recorder entry.
	RequestID string `json:"request_id,omitempty"`
	State     string `json:"state"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	// Coalesced reports that the submission attached to an identical job
	// already queued or running: this record finishes when that job does,
	// with a bit-identical result, and no additional execution happens.
	Coalesced bool `json:"coalesced,omitempty"`
	// StatusURL and ResultURL are the polling endpoints for this job.
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
}

// StreamResponse describes a stream session.
type StreamResponse struct {
	StreamID string `json:"stream_id"`
	Len      int    `json:"len"`
	Shape    []int  `json:"shape,omitempty"`
	// StorageFloats is the size of the compressed stream state.
	StorageFloats int `json:"storage_floats"`
}

// JobStatus is the job record served at GET /v1/jobs/{id}.
type JobStatus struct {
	ID string `json:"id"`
	// RequestID is the correlation ID of the submitting request (restored
	// from the journal for recovered jobs).
	RequestID string `json:"request_id,omitempty"`
	State     string `json:"state"`
	// Tenant and Priority echo the admission identity the job was
	// submitted under (X-Tenant / X-Priority headers; "default" and the
	// endpoint's default lane when absent).
	Tenant    string `json:"tenant,omitempty"`
	Priority  string `json:"priority,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// Recovered marks a job reconstructed from the durability journal after
	// a server restart; Sweep is its latest durably checkpointed ALS sweep
	// (0 until the first checkpoint commits).
	Recovered bool       `json:"recovered,omitempty"`
	Sweep     int        `json:"sweep,omitempty"`
	Error     *WireError `json:"error,omitempty"`

	// CreatedMs/StartedMs/FinishedMs are Unix epoch milliseconds; zero
	// means "not yet".
	CreatedMs  int64 `json:"created_ms"`
	StartedMs  int64 `json:"started_ms,omitempty"`
	FinishedMs int64 `json:"finished_ms,omitempty"`

	// Result summary, present once the job is done. The payload itself is
	// fetched from ResultURL.
	Fit       float64 `json:"fit,omitempty"`
	Converged bool    `json:"converged,omitempty"`
	Iters     int     `json:"iters,omitempty"`
	Ranks     []int   `json:"ranks,omitempty"`

	// Metrics is the per-job collector's report (phases, counters, fit
	// trajectory), present once the job finished either way.
	Metrics *metrics.Report `json:"metrics,omitempty"`
	// TraceSpans is the number of recorded spans when the job was
	// submitted with "trace": true; fetch them from /v1/jobs/{id}/trace.
	TraceSpans int `json:"trace_spans,omitempty"`

	ResultURL string `json:"result_url,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	Running  int    `json:"running"`
	Workers  int    `json:"workers"`
}

// WireError is the typed error carried by failed jobs and 4xx responses.
// Kind is stable API; Message is human-oriented detail.
type WireError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Phase names the interrupted phase for kind "cancelled".
	Phase string `json:"phase,omitempty"`
}

func (e *WireError) Error() string { return e.Kind + ": " + e.Message }

// Error kinds. Every job failure maps onto exactly one of these, mirroring
// the library's error taxonomy (package dterr), so HTTP clients can switch
// on a stable string the way library callers switch on errors.Is.
const (
	KindInvalidInput   = "invalid_input"
	KindNonFinite      = "non_finite_input"
	KindBreakdown      = "numerical_breakdown"
	KindPanic          = "panic"
	KindCancelled      = "cancelled"
	KindInjected       = "injected_fault"
	KindCorruptData    = "corrupt_artifact"
	KindQueueFull      = "queue_full"
	KindTenantQuota    = "tenant_quota"
	KindDraining       = "draining"
	KindNotFound       = "not_found"
	KindConflict       = "conflict"
	KindInternal       = "internal"
	KindNotImplemented = "not_implemented"
)

// wireError converts a library error into its typed wire form.
func wireError(err error) *WireError {
	if err == nil {
		return nil
	}
	var we *WireError
	if errors.As(err, &we) {
		return we // already typed (e.g. a restored job's replayed error)
	}
	var c *dterr.CancelledError
	if errors.As(err, &c) {
		return &WireError{Kind: KindCancelled, Message: err.Error(), Phase: c.Phase}
	}
	switch {
	case errors.Is(err, dterr.ErrCorruptArtifact):
		return &WireError{Kind: KindCorruptData, Message: err.Error()}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return &WireError{Kind: KindCancelled, Message: err.Error()}
	case errors.Is(err, dterr.ErrInjected):
		return &WireError{Kind: KindInjected, Message: err.Error()}
	case errors.Is(err, dterr.ErrInvalidInput):
		return &WireError{Kind: KindInvalidInput, Message: err.Error()}
	case errors.Is(err, dterr.ErrNonFiniteInput):
		return &WireError{Kind: KindNonFinite, Message: err.Error()}
	case errors.Is(err, dterr.ErrNumericalBreakdown):
		return &WireError{Kind: KindBreakdown, Message: err.Error()}
	case errors.Is(err, dterr.ErrPanic):
		return &WireError{Kind: KindPanic, Message: err.Error()}
	default:
		return &WireError{Kind: KindInternal, Message: err.Error()}
	}
}
