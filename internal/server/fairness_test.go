package server

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pool"
)

// tenantJob builds a job for a tenant and lane whose exec parks until
// release closes (or its context is cancelled), optionally recording its
// dispatch into order — the deterministic probe these tests use to observe
// the scheduler's decisions.
func tenantJob(s *Server, tenant string, l lane, key string, release <-chan struct{},
	record func()) *job {
	j := s.newJob(key, 0, false,
		func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
			if record != nil {
				record()
			}
			select {
			case <-release:
				return nil, context.Canceled
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
	j.tenant = tenant
	j.lane = l
	return j
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
}

// parkRunner occupies the single runner with a blocking job of its own
// tenant so subsequent submissions pile up in the queue; the returned
// channel releases it.
func parkRunner(t *testing.T, s *Server) chan struct{} {
	t.Helper()
	release := make(chan struct{})
	park := tenantJob(s, "park", laneBatch, "", release, nil)
	if err := s.admit(park); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, park, StateRunning)
	return release
}

// TestTenantQuotaEnforced pins the quota gate: a tenant at its outstanding
// bound is shed with errTenantQuota while other tenants (and the same
// tenant, once a job completes) keep being admitted.
func TestTenantQuotaEnforced(t *testing.T) {
	s := mustNew(t, Config{Runners: 1, QueueDepth: 8, Workers: 1, TenantQuota: 2})
	defer drainServer(t, s)
	release := make(chan struct{})
	defer close(release)

	a1 := tenantJob(s, "a", laneBatch, "", release, nil)
	if err := s.admit(a1); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, a1, StateRunning) // running leaders count against the quota
	a2 := tenantJob(s, "a", laneBatch, "", release, nil)
	if err := s.admit(a2); err != nil {
		t.Fatal(err)
	}

	over := tenantJob(s, "a", laneBatch, "", release, nil)
	if err := s.admit(over); err != errTenantQuota {
		t.Fatalf("third outstanding job for tenant a admitted with %v, want errTenantQuota", err)
	}
	over.cancel()

	// Queue headroom is 7 of 8: tenant b is not affected by a's quota.
	b1 := tenantJob(s, "b", laneBatch, "", release, nil)
	if err := s.admit(b1); err != nil {
		t.Fatalf("tenant b shed by tenant a's quota: %v", err)
	}

	// Completion releases the charge.
	a1.cancel()
	waitJobState(t, a1, StateCancelled)
	a3 := tenantJob(s, "a", laneBatch, "", release, nil)
	if err := s.admit(a3); err != nil {
		t.Fatalf("tenant a still shed after a completion: %v", err)
	}

	s.schedMu.Lock()
	st := s.sched.tenants["a"].stats
	s.schedMu.Unlock()
	if st.RejectedQuota != 1 {
		t.Fatalf("tenant a rejected_quota = %d, want 1", st.RejectedQuota)
	}
}

// TestWFQWeightedShares pins weighted fairness under asymmetric offered
// load: tenants a (weight 3) and b (weight 1) both backlogged, a offering
// 3× the jobs. Dispatch order is fully deterministic (virtual-time ties
// break by name), so the test asserts the exact interleaving: every window
// of 4 dispatches serves a three times and b once.
func TestWFQWeightedShares(t *testing.T) {
	s := mustNew(t, Config{
		Runners: 1, QueueDepth: 64, Workers: 1,
		TenantWeights: map[string]int{"a": 3, "b": 1},
	})
	defer drainServer(t, s)
	release := parkRunner(t, s)

	var mu sync.Mutex
	var order []string
	rec := func(tenant string) func() {
		return func() {
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
		}
	}
	jobRelease := make(chan struct{})
	close(jobRelease) // probe jobs finish immediately once dispatched

	var jobs []*job
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			j := tenantJob(s, tenant, laneBatch, "", jobRelease, rec(tenant))
			if err := s.admit(j); err != nil {
				t.Fatalf("admitting %s job %d: %v", tenant, i, err)
			}
			jobs = append(jobs, j)
		}
	}
	submit("a", 24)
	submit("b", 8)

	close(release) // unpark: the runner drains the queue sequentially
	for _, j := range jobs {
		waitJobState(t, j, StateCancelled)
	}

	mu.Lock()
	got := strings.Join(order, "")
	mu.Unlock()
	if len(got) != 32 {
		t.Fatalf("dispatched %d jobs, want 32", len(got))
	}
	if want := strings.Repeat("abaa", 8); !strings.HasPrefix(got, want) {
		t.Fatalf("dispatch order %q, want prefix %q (3:1 weighted interleave)", got, want)
	}
	if na, nb := strings.Count(got, "a"), strings.Count(got, "b"); na != 24 || nb != 8 {
		t.Fatalf("served a=%d b=%d, want 24/8", na, nb)
	}
}

// TestPriorityLanePreemption pins the strict lanes: every queued
// interactive job dispatches before any batch job, even when the batch
// jobs were submitted first, across tenants.
func TestPriorityLanePreemption(t *testing.T) {
	s := mustNew(t, Config{Runners: 1, QueueDepth: 16, Workers: 1})
	defer drainServer(t, s)
	release := parkRunner(t, s)

	var mu sync.Mutex
	var order []string
	jobRelease := make(chan struct{})
	close(jobRelease)

	var jobs []*job
	submit := func(tenant string, l lane) {
		label := tenant + ":" + l.String()
		j := tenantJob(s, tenant, l, "", jobRelease, func() {
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
		})
		if err := s.admit(j); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	submit("a", laneBatch)
	submit("b", laneBatch)
	submit("a", laneBatch)
	submit("a", laneInteractive)
	submit("b", laneInteractive)

	close(release)
	for _, j := range jobs {
		waitJobState(t, j, StateCancelled)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("dispatched %d jobs, want 5", len(order))
	}
	for i, label := range order[:2] {
		if !strings.HasSuffix(label, ":interactive") {
			t.Fatalf("dispatch %d was %s, want the interactive lane drained first (order %v)",
				i, label, order)
		}
	}
	for i, label := range order[2:] {
		if !strings.HasSuffix(label, ":batch") {
			t.Fatalf("dispatch %d was %s, want batch after interactive (order %v)", 2+i, label, order)
		}
	}
}

// TestCoalesceSingleExecution pins singleflight: identical queued
// submissions attach to the leader, the exec runs exactly once, and every
// follower finishes with the leader's result object.
func TestCoalesceSingleExecution(t *testing.T) {
	// CacheSize -1 disables the result cache: the duplicates must be served
	// through coalescing itself, not a cache fill.
	s := mustNew(t, Config{Runners: 1, QueueDepth: 8, Workers: 1, CacheSize: -1})
	defer drainServer(t, s)
	release := parkRunner(t, s)
	defer close(release)

	var execs atomic.Int64
	want := &core.Decomposition{Fit: 0.5}
	leader := s.newJob("K", 0, false,
		func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
			execs.Add(1)
			return want, nil
		})
	if got, err := s.admitOrCoalesce(leader); err != nil || got != nil {
		t.Fatalf("leader admission = (%v, %v), want enqueued", got, err)
	}

	var followers []*job
	for i := 0; i < 2; i++ {
		f := s.newJob("K", 0, false, nil)
		got, err := s.admitOrCoalesce(f)
		if err != nil || got != leader {
			t.Fatalf("duplicate %d admission = (%v, %v), want coalesced onto the leader", i, got, err)
		}
		if !f.coalesced {
			t.Fatalf("duplicate %d not marked coalesced", i)
		}
		followers = append(followers, f)
	}

	// Followers hold no queue slot: the queue holds exactly the leader.
	if n := s.queueLen(); n != 1 {
		t.Fatalf("queue length %d with 2 followers attached, want 1", n)
	}

	release <- struct{}{} // let the parked job go; the leader runs next
	waitJobState(t, leader, StateDone)
	for i, f := range followers {
		waitJobState(t, f, StateDone)
		f.mu.Lock()
		dec := f.dec
		f.mu.Unlock()
		if dec != want {
			t.Fatalf("follower %d finished with %p, want the leader's result %p", i, dec, want)
		}
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("exec ran %d times for 3 identical submissions, want exactly 1", n)
	}

	s.schedMu.Lock()
	inflight := len(s.sched.inflight)
	outstanding := s.sched.tenants[defaultTenant].outstanding
	coalesced := s.sched.tenants[defaultTenant].stats.Coalesced
	s.schedMu.Unlock()
	if inflight != 0 || outstanding != 0 {
		t.Fatalf("scheduler left inflight=%d outstanding=%d, want 0/0", inflight, outstanding)
	}
	if coalesced != 2 {
		t.Fatalf("tenant coalesced counter = %d, want 2", coalesced)
	}
}

// TestCoalesceFollowerCancel: cancelling a follower detaches only that
// record; the leader and the other followers are unaffected.
func TestCoalesceFollowerCancel(t *testing.T) {
	s := mustNew(t, Config{Runners: 1, QueueDepth: 8, Workers: 1, CacheSize: -1})
	defer drainServer(t, s)
	release := parkRunner(t, s)
	defer close(release)

	want := &core.Decomposition{Fit: 0.25}
	leader := s.newJob("K2", 0, false,
		func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
			return want, nil
		})
	s.cache.cap = 0
	if _, err := s.admitOrCoalesce(leader); err != nil {
		t.Fatal(err)
	}
	f1 := s.newJob("K2", 0, false, nil)
	f2 := s.newJob("K2", 0, false, nil)
	for _, f := range []*job{f1, f2} {
		if got, err := s.admitOrCoalesce(f); err != nil || got != leader {
			t.Fatalf("follower admission = (%v, %v)", got, err)
		}
	}

	// Cancel f1 the way the HTTP handler does.
	f1.cancel()
	f1.finish(nil, context.Canceled, false, time.Now())
	waitJobState(t, f1, StateCancelled)

	release <- struct{}{}
	waitJobState(t, leader, StateDone)
	waitJobState(t, f2, StateDone)
	waitJobState(t, f1, StateCancelled) // finish is idempotent: outcome kept
}

// TestCoalesceDisabled: with DisableCoalesce identical submissions queue
// (and execute) independently.
func TestCoalesceDisabled(t *testing.T) {
	s := mustNew(t, Config{Runners: 1, QueueDepth: 8, Workers: 1, DisableCoalesce: true, CacheSize: -1})
	defer drainServer(t, s)
	release := parkRunner(t, s)

	var execs atomic.Int64
	mk := func() *job {
		return s.newJob("K3", 0, false,
			func(ctx context.Context, _ *pool.Pool, _ *metrics.Collector) (*core.Decomposition, error) {
				execs.Add(1)
				return &core.Decomposition{}, nil
			})
	}
	j1, j2 := mk(), mk()
	for _, j := range []*job{j1, j2} {
		if got, err := s.admitOrCoalesce(j); err != nil || got != nil {
			t.Fatalf("admission with coalescing disabled = (%v, %v), want plain enqueue", got, err)
		}
	}
	close(release)
	waitJobState(t, j1, StateDone)
	waitJobState(t, j2, StateDone)
	if n := execs.Load(); n != 2 {
		t.Fatalf("exec ran %d times, want 2 (no coalescing)", n)
	}
}
