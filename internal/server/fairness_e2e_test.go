package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

// metriczSnapshot fetches /metricz and decodes the dtuckerd section.
func metriczSnapshot(t *testing.T, baseURL string) struct {
	JobsCoalesced int64                         `json:"jobs_coalesced"`
	JobsRejected  int64                         `json:"jobs_rejected"`
	Tenants       map[string]server.TenantStats `json:"tenants"`
} {
	t.Helper()
	resp, err := http.Get(baseURL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ev struct {
		Dtuckerd struct {
			JobsCoalesced int64                         `json:"jobs_coalesced"`
			JobsRejected  int64                         `json:"jobs_rejected"`
			Tenants       map[string]server.TenantStats `json:"tenants"`
		} `json:"dtuckerd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	return ev.Dtuckerd
}

func fetchResultBytes(t *testing.T, cl *repro.Client, baseURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch for %s: HTTP %d", id, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitDone(t *testing.T, cl *repro.Client, ctx context.Context, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == server.StateDone {
			return
		}
		if st.State == server.StateFailed || st.State == server.StateCancelled {
			t.Fatalf("job %s ended %s: %+v", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescedDuplicatesE2E runs the full wire path: three identical
// submissions while the runner is busy yield one leader and two coalesced
// followers, all three finish with byte-identical .dtd results, /metricz
// reports the coalescing, and draining the server leaks no goroutines.
func TestCoalescedDuplicatesE2E(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, err := server.New(server.Config{Workers: 2, Runners: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	cl := repro.NewClient(hs.URL)
	cl.PollInterval = 2 * time.Millisecond
	cl.Tenant = "dup"
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Park the single runner so the duplicates stay queued together.
	parked, err := cl.Submit(ctx, slowTensor(41), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}

	x := testTensor(42, 12, 11, 10)
	cfg := repro.Config{Ranks: []int{4, 3, 3}, Seed: 7}
	var ids []string
	for i := 0; i < 3; i++ {
		receipt, err := cl.Submit(ctx, x, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wantCoalesced := i > 0; receipt.Coalesced != wantCoalesced {
			t.Fatalf("submission %d coalesced = %v, want %v", i, receipt.Coalesced, wantCoalesced)
		}
		ids = append(ids, receipt.JobID)
	}

	if err := cl.Cancel(ctx, parked.JobID); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		waitDone(t, cl, ctx, id)
	}

	want := fetchResultBytes(t, cl, hs.URL, ids[0])
	for _, id := range ids[1:] {
		got := fetchResultBytes(t, cl, hs.URL, id)
		if string(got) != string(want) {
			t.Fatalf("job %s result differs from the leader's (%d vs %d bytes)", id, len(got), len(want))
		}
	}

	m := metriczSnapshot(t, hs.URL)
	if m.JobsCoalesced != 2 {
		t.Fatalf("/metricz jobs_coalesced = %d, want 2", m.JobsCoalesced)
	}
	ts, ok := m.Tenants["dup"]
	if !ok {
		t.Fatalf("/metricz has no tenant \"dup\": %+v", m.Tenants)
	}
	if ts.Coalesced != 2 {
		t.Fatalf("tenant dup coalesced = %d, want 2", ts.Coalesced)
	}
	// 4 submissions: the parked job (cancelled) + leader + 2 followers.
	if ts.Submitted != 4 || ts.Completed != 3 || ts.Cancelled != 1 {
		t.Fatalf("tenant dup stats %+v, want submitted 4 / completed 3 / cancelled 1", ts)
	}

	hs.Close()
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	srv.Drain(drainCtx)

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d across the coalescing run", before, after)
	}
}

// TestTenantQuotaE2E pins quota shedding on the wire: tenant alice at her
// quota gets 429/tenant_quota with Retry-After while tenant bob's
// submission is still admitted, and the job records echo the tenant.
func TestTenantQuotaE2E(t *testing.T) {
	_, hs, cl := newTestServer(t, server.Config{
		Workers: 1, Runners: 1, QueueDepth: 8, TenantQuota: 1, RetryAfter: 2 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	alice := repro.NewClient(hs.URL)
	alice.Tenant = "alice"
	bob := repro.NewClient(hs.URL)
	bob.Tenant = "bob"

	a1, err := alice.Submit(ctx, slowTensor(51), slowConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = alice.Submit(ctx, slowTensor(52), slowConfig(), nil)
	var apiErr *repro.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-quota submission returned %v, want *APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests || apiErr.Kind != server.KindTenantQuota {
		t.Fatalf("over-quota error = %d/%q, want 429/%q", apiErr.StatusCode, apiErr.Kind, server.KindTenantQuota)
	}
	if apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %v, want 2s", apiErr.RetryAfter)
	}

	b1, err := bob.Submit(ctx, slowTensor(53), slowConfig(), nil)
	if err != nil {
		t.Fatalf("tenant bob shed by alice's quota: %v", err)
	}
	st, err := bob.Job(ctx, b1.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "bob" || st.Priority != "batch" {
		t.Fatalf("job record tenant/priority = %q/%q, want bob/batch", st.Tenant, st.Priority)
	}

	m := metriczSnapshot(t, hs.URL)
	if got := m.Tenants["alice"].RejectedQuota; got != 1 {
		t.Fatalf("alice rejected_quota = %d, want 1", got)
	}

	for _, id := range []string{a1.JobID, b1.JobID} {
		if err := cl.Cancel(ctx, id); err != nil {
			t.Error(err)
		}
	}
}
