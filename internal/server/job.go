package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Job states, in lifecycle order. A job moves queued → running →
// {done, failed, cancelled}; cache hits are born done.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// job is one queued decomposition. The exec closure abstracts over the two
// job sources — a one-shot tensor decomposition and a stream solve — so the
// runner, cache, and drain logic are shared.
type job struct {
	id  string
	key string // result-cache key; "" disables caching and coalescing for this job

	// requestID is the correlation ID of the submitting request (restored
	// from the journal for recovered jobs): the key tying this record to the
	// client call, the structured event log, and the flight recorder.
	requestID string

	// tenant and lane are the admission identity: tenant charges the quota
	// and the WFQ share, lane decides dispatch priority. Both are fixed at
	// submission (from the X-Tenant / X-Priority headers).
	tenant string
	lane   lane

	// exec runs the decomposition. It receives the job's context (already
	// carrying any per-job timeout) and must honour it.
	exec func(ctx context.Context, pl *pool.Pool, col *metrics.Collector) (*core.Decomposition, error)

	ctx     context.Context
	cancel  context.CancelFunc
	timeout time.Duration // applied when the job starts running, not while queued

	col    *metrics.Collector
	tracer *trace.Tracer
	// ownTracer marks a tracer created for this job alone (traced
	// decompose submissions). Server-side spans are only recorded into own
	// tracers: a stream job shares its session's tracer, whose control-lane
	// stack belongs to the session operations.
	ownTracer bool
	// admitted is when the job passed admission control (zero for
	// journal-recovered jobs); queue wait is measured from here.
	admitted time.Time

	// coalesced marks a follower: a submission attached to an identical
	// in-flight leader. Followers never execute; the leader's completion
	// finishes them. followers is the reverse edge on the leader, guarded
	// by the server's scheduling lock until completeLocked detaches it.
	coalesced bool
	followers []*job

	// persist marks a durable job: its lifecycle is journaled and its
	// artifacts spilled under the server's data directory (durability.go).
	// Atomic because the submitting handler commits the accepted record
	// concurrently with the runner potentially already executing the job.
	// recovered marks a record reconstructed from the journal after a
	// restart — either re-enqueued (interrupted) or restored (terminal).
	persist   atomic.Bool
	recovered bool
	// durableReady is the ack-after-commit barrier: the submitting handler
	// closes it once the accepted record has committed, and the runner
	// waits on it before executing. Without it a fast job could journal a
	// started/sweep record — or spill a checkpoint — before its own
	// accepted record exists, leaving replay a lifecycle with no identity.
	// Nil for non-durable and journal-restored jobs (their accepted record
	// is already on disk).
	durableReady chan struct{}
	// terminalPersisted makes persistFinished exactly-once: a cancelled
	// follower is finished both by its DELETE handler and by its leader's
	// completion, and must not journal two terminal records.
	terminalPersisted atomic.Bool

	mu       sync.Mutex
	state    string
	cacheHit bool
	err      error
	dec      *core.Decomposition
	created  time.Time
	started  time.Time
	finished time.Time
	// sweep is the latest durably checkpointed ALS sweep (0 until the first
	// checkpoint commits).
	sweep int
	// userCancelled distinguishes a client-requested DELETE from a drain
	// or timeout cancellation; only the former journals a cancelled record.
	userCancelled bool
	// Restored-terminal-job state: the result summary replayed from the
	// journal, the spill file the payload is lazily loaded from, and the
	// sha256 the spill's bytes must hash to (.dtd has no own checksum).
	restoredFit       float64
	restoredConverged bool
	restoredIters     int
	resultFile        string
	resultDigest      string
}

func (j *job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.mu.Unlock()
}

// setSweep records the latest durably checkpointed sweep.
func (j *job) setSweep(sweep int) {
	j.mu.Lock()
	if sweep > j.sweep {
		j.sweep = sweep
	}
	j.mu.Unlock()
}

// markUserCancelled flags a client-requested cancellation (DELETE), the
// only kind that commits a journal record — see persistFinished.
func (j *job) markUserCancelled() {
	j.mu.Lock()
	j.userCancelled = true
	j.mu.Unlock()
}

// finish moves the job to its terminal state. It is idempotent: a job that
// already finished (e.g. a coalesced follower cancelled individually before
// its leader completed) keeps its first outcome.
func (j *job) finish(dec *core.Decomposition, err error, cacheHit bool, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		return
	}
	j.finished = now
	j.cacheHit = j.cacheHit || cacheHit
	if err == nil {
		j.state = StateDone
		j.dec = dec
		return
	}
	j.err = err
	if wireError(err).Kind == KindCancelled {
		j.state = StateCancelled
	} else {
		j.state = StateFailed
	}
}

// result returns the decomposition when the job is done, else nil.
func (j *job) result() *core.Decomposition {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	return j.dec
}

// status snapshots the job record for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		RequestID: j.requestID,
		State:     j.state,
		Tenant:    j.tenant,
		Priority:  j.lane.String(),
		CacheHit:  j.cacheHit,
		Coalesced: j.coalesced,
		Recovered: j.recovered,
		Sweep:     j.sweep,
		Error:     wireError(j.err),
		CreatedMs: j.created.UnixMilli(),
	}
	if !j.started.IsZero() {
		st.StartedMs = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMs = j.finished.UnixMilli()
	}
	if j.state == StateDone && j.dec != nil {
		st.Fit = j.dec.Fit
		st.Converged = j.dec.Converged
		st.Iters = j.dec.Stats.Iters
		st.Ranks = j.dec.Core.Shape()
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	} else if j.state == StateDone && j.resultFile != "" {
		// Restored after a restart: the summary comes from the journal; the
		// payload is loaded from its spill on the first result fetch.
		st.Fit = j.restoredFit
		st.Converged = j.restoredConverged
		st.Iters = j.restoredIters
		st.ResultURL = "/v1/jobs/" + j.id + "/result"
	}
	if j.state == StateDone || j.state == StateFailed || j.state == StateCancelled {
		if j.col != nil {
			r := j.col.Report()
			st.Metrics = &r
		}
		if j.tracer != nil {
			st.TraceSpans = j.tracer.Len()
		}
	}
	return st
}
