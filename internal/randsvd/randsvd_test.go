package randsvd

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/metrics"
)

// lowRankPlusNoise builds an m×n matrix with exact rank r plus Gaussian
// noise of the given magnitude.
func lowRankPlusNoise(m, n, r int, noise float64, rng *rand.Rand) *mat.Dense {
	u := mat.RandN(m, r, rng)
	v := mat.RandN(r, n, rng)
	a := mat.Mul(u, v)
	if noise > 0 {
		e := mat.RandN(m, n, rng)
		a.AddScaledInPlace(noise, e)
	}
	return a
}

func reconstruct(res mat.SVDResult) *mat.Dense {
	k := len(res.S)
	sig := mat.New(k, k)
	for i, v := range res.S {
		sig.Set(i, i, v)
	}
	return mat.Mul(mat.Mul(res.U, sig), res.V.T())
}

func TestExactRecoveryOfLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := lowRankPlusNoise(60, 40, 5, 0, rng)
	res, err := SVD(a, 5, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	rel := a.Sub(reconstruct(res)).Norm() / a.Norm()
	if rel > 1e-9 {
		t.Fatalf("relative error %g for exactly rank-5 input", rel)
	}
}

func TestFactorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := lowRankPlusNoise(30, 50, 8, 0.1, rng)
	res, err := SVD(a, 8, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Gram(res.U).EqualApprox(mat.Identity(8), 1e-9) {
		t.Fatal("U not orthonormal")
	}
	if !mat.Gram(res.V).EqualApprox(mat.Identity(8), 1e-9) {
		t.Fatal("V not orthonormal")
	}
}

func TestNearOptimalError(t *testing.T) {
	// Randomized SVD error should be within a modest factor of the exact
	// rank-k truncation error.
	rng := rand.New(rand.NewSource(3))
	a := lowRankPlusNoise(50, 50, 10, 0.3, rng)
	exact, err := mat.SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	tail := 0.0
	for _, s := range exact.S[k:] {
		tail += s * s
	}
	optimal := math.Sqrt(tail)

	res, err := SVD(a, k, Options{Rng: rng, PowerIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := a.Sub(reconstruct(res)).Norm()
	if got > 1.5*optimal+1e-12 {
		t.Fatalf("randomized error %g vs optimal %g", got, optimal)
	}
}

func TestPowerIterationsImproveAccuracy(t *testing.T) {
	// With slowly decaying spectrum, q=3 should beat q=0 (in expectation;
	// seeds fixed so the test is deterministic).
	rng := rand.New(rand.NewSource(4))
	a := lowRankPlusNoise(80, 80, 10, 1.0, rng)
	res0, err := SVD(a, 10, Options{Rng: rand.New(rand.NewSource(7)), PowerIters: -1})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := SVD(a, 10, Options{Rng: rand.New(rand.NewSource(7)), PowerIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	err0 := a.Sub(reconstruct(res0)).Norm()
	err3 := a.Sub(reconstruct(res3)).Norm()
	if err3 > err0 {
		t.Fatalf("power iterations made things worse: %g vs %g", err3, err0)
	}
}

func TestRankClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.RandN(6, 4, rng)
	res, err := SVD(a, 100, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != 4 {
		t.Fatalf("rank not clamped: got %d singular values", len(res.S))
	}
}

func TestWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := lowRankPlusNoise(10, 200, 4, 0, rng)
	res, err := SVD(a, 4, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	rel := a.Sub(reconstruct(res)).Norm() / a.Norm()
	if rel > 1e-9 {
		t.Fatalf("relative error %g on wide low-rank input", rel)
	}
}

func TestErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := mat.RandN(5, 5, rng)
	if _, err := SVD(a, 3, Options{}); err == nil {
		t.Fatal("missing Rng accepted")
	}
	if _, err := SVD(a, 0, Options{Rng: rng}); err == nil {
		t.Fatal("zero rank accepted")
	}
}

func TestSingularValuesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := lowRankPlusNoise(40, 30, 6, 0.2, rng)
	res, err := SVD(a, 6, Options{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", res.S)
		}
	}
}

func TestNonFiniteInputIsBreakdown(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := mat.RandN(20, 20, rng)
	a.Set(3, 4, math.NaN())
	_, err := SVD(a, 5, Options{Rng: rng})
	if !errors.Is(err, dterr.ErrNumericalBreakdown) {
		t.Fatalf("NaN input: got %v, want ErrNumericalBreakdown", err)
	}
	a.Set(3, 4, math.Inf(1))
	_, err = SVD(a, 5, Options{Rng: rand.New(rand.NewSource(9))})
	if !errors.Is(err, dterr.ErrNumericalBreakdown) {
		t.Fatalf("Inf input: got %v, want ErrNumericalBreakdown", err)
	}
}

func TestZeroMatrixIsNotBreakdown(t *testing.T) {
	// The all-zero matrix legitimately produces a zero sketch; that is not a
	// numerical failure.
	rng := rand.New(rand.NewSource(10))
	res, err := SVD(mat.New(12, 9), 3, Options{Rng: rng})
	if err != nil {
		t.Fatalf("zero matrix: %v", err)
	}
	for _, s := range res.S {
		if s != 0 {
			t.Fatalf("zero matrix produced nonzero singular value %g", s)
		}
	}
}

func TestFallbackOnInjectedSketchFault(t *testing.T) {
	defer faults.Reset()
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)
	metrics.Reset()

	rng := rand.New(rand.NewSource(11))
	a := lowRankPlusNoise(40, 30, 5, 0.1, rng)

	// Break every sketch for key 7: both the first attempt and the retry
	// fail, forcing the dense fallback.
	if err := faults.Activate("randsvd.sketch", faults.Plan{Keys: []int64{7}, Count: -1}); err != nil {
		t.Fatal(err)
	}
	res, fell, err := SVDWithFallback(a, 5, Options{Rng: rand.New(rand.NewSource(12)), FaultKey: 7})
	if err != nil {
		t.Fatalf("fallback chain failed: %v", err)
	}
	if !fell {
		t.Fatal("expected the dense fallback to produce the result")
	}
	rel := a.Sub(reconstruct(res)).Norm() / a.Norm()
	exact, _ := mat.SVD(a)
	want := reconstruct(exact.Truncate(5))
	if !reconstruct(res).EqualApprox(want, 1e-9) {
		t.Fatalf("fallback result differs from exact truncated SVD (rel err %g)", rel)
	}
	snap := metrics.Snapshot()
	if snap.RandSVDRetries != 1 || snap.RandSVDFallbacks != 1 {
		t.Fatalf("counters: retries=%d fallbacks=%d, want 1 and 1",
			snap.RandSVDRetries, snap.RandSVDFallbacks)
	}
}

func TestRetryRecoversFromSingleFault(t *testing.T) {
	defer faults.Reset()
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)
	metrics.Reset()

	rng := rand.New(rand.NewSource(13))
	a := lowRankPlusNoise(30, 30, 4, 0, rng)

	// One hit only: the first attempt breaks down, the retry succeeds.
	if err := faults.Activate("randsvd.svd", faults.Plan{Count: 1}); err != nil {
		t.Fatal(err)
	}
	res, fell, err := SVDWithFallback(a, 4, Options{Rng: rand.New(rand.NewSource(14))})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if fell {
		t.Fatal("retry should have recovered without the dense fallback")
	}
	rel := a.Sub(reconstruct(res)).Norm() / a.Norm()
	if rel > 1e-9 {
		t.Fatalf("retry result inaccurate: rel err %g", rel)
	}
	snap := metrics.Snapshot()
	if snap.RandSVDRetries != 1 || snap.RandSVDFallbacks != 0 {
		t.Fatalf("counters: retries=%d fallbacks=%d, want 1 and 0",
			snap.RandSVDRetries, snap.RandSVDFallbacks)
	}
}

func TestFallbackPassesThroughCallerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := mat.RandN(8, 8, rng)
	if _, _, err := SVDWithFallback(a, 0, Options{Rng: rng}); err == nil {
		t.Fatal("zero rank should not be recovered by the fallback chain")
	}
	if _, _, err := SVDWithFallback(a, 3, Options{}); err == nil {
		t.Fatal("missing Rng should not be recovered by the fallback chain")
	}
}

func BenchmarkRandSVD512x512Rank10(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := lowRankPlusNoise(512, 512, 10, 0.1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SVD(a, 10, Options{Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}
