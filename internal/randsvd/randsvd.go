// Package randsvd implements the randomized singular value decomposition of
// Halko, Martinsson & Tropp ("Finding Structure with Randomness", SIAM Rev.
// 2011): a Gaussian range finder with optional power iterations, followed by
// an exact SVD of the projected matrix. It is the kernel of D-Tucker's
// approximation phase, which compresses every I1×I2 slice of the input
// tensor to rank J in O(I1·I2·J) time.
//
// # Breakdown detection and recovery
//
// A randomized sketch can break down: overflow in the power iteration
// produces a non-finite sketch, a pathological spectrum can zero out sketch
// columns, and the projected SVD's iteration can fail to converge. SVD
// detects all three and reports them as an error wrapping
// dterr.ErrNumericalBreakdown. SVDWithFallback is the recovery chain core
// uses: it retries once with fresh random draws, then falls back to a
// deterministic dense SVD of the full input — same result for every seed and
// worker count — counting retries and fallbacks in internal/metrics.
package randsvd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/metrics"
)

// Fault-injection hook points (no-ops unless a test arms them):
// randsvd.sketch poisons the Gaussian sketch with a NaN — keyed by
// Options.FaultKey so tests can break the same slices for every worker
// count — and randsvd.svd fails the projected SVD.
var (
	siteSketch = faults.NewSite("randsvd.sketch")
	siteSVD    = faults.NewSite("randsvd.svd")
)

// Options configures the randomized SVD.
type Options struct {
	// Oversampling is the number of extra random directions beyond the
	// target rank (Halko et al. recommend 5–10). Defaults to 5 when zero;
	// negative values are treated as 0.
	Oversampling int
	// PowerIters is the number of subspace (power) iterations, which
	// sharpen the spectrum when singular values decay slowly. Defaults to
	// 1 when zero; set to -1 for none.
	PowerIters int
	// Rng drives the Gaussian sketch. Required.
	Rng *rand.Rand
	// FaultKey is a stable identity for this call — core passes the slice
	// index — used only by the fault-injection harness so injected
	// breakdowns are deterministic per call site, independent of worker
	// scheduling. Zero is a valid key.
	FaultKey int64
}

func (o Options) normalized() Options {
	if o.Oversampling == 0 {
		o.Oversampling = 5
	}
	if o.Oversampling < 0 {
		o.Oversampling = 0
	}
	if o.PowerIters == 0 {
		o.PowerIters = 1
	}
	if o.PowerIters < 0 {
		o.PowerIters = 0
	}
	return o
}

// breakdown wraps a detected numerical failure so callers can errors.Is it
// against dterr.ErrNumericalBreakdown.
func breakdown(format string, args ...any) error {
	return fmt.Errorf("randsvd: "+format+": %w", append(args, dterr.ErrNumericalBreakdown)...)
}

// checkSketch validates a sketch stage: every entry finite and, unless the
// input itself is zero, no zero-norm column (a Gaussian sketch of a nonzero
// matrix has almost surely full column norms — a zero column means the
// arithmetic collapsed).
func checkSketch(stage string, y *mat.Dense, inputNonzero bool) error {
	if !y.IsFinite() {
		return breakdown("non-finite %s", stage)
	}
	if !inputNonzero {
		return nil
	}
	rows, cols := y.Dims()
	for j := 0; j < cols; j++ {
		norm := 0.0
		for i := 0; i < rows; i++ {
			v := y.At(i, j)
			norm += v * v
		}
		if norm == 0 {
			return breakdown("zero-norm column %d in %s", j, stage)
		}
	}
	return nil
}

// SVD returns a rank-k approximate SVD of a: U (m×k, orthonormal columns),
// S (k, descending), V (n×k, orthonormal columns) with A ≈ U·diag(S)·Vᵀ.
//
// k is clamped to min(m, n). The error, in expectation, is within a small
// polynomial factor of the optimal rank-k error σ_{k+1} (Halko et al.,
// Thm. 10.6), improving geometrically with each power iteration.
//
// A numerical breakdown (non-finite sketch, zero-norm sketch column, failed
// projected SVD) returns an error wrapping dterr.ErrNumericalBreakdown; see
// SVDWithFallback for the recovery chain.
func SVD(a *mat.Dense, k int, opts Options) (mat.SVDResult, error) {
	opts = opts.normalized()
	if opts.Rng == nil {
		return mat.SVDResult{}, fmt.Errorf("randsvd: Options.Rng must be set")
	}
	metrics.CountRandSVD()
	m, n := a.Dims()
	if k <= 0 {
		return mat.SVDResult{}, fmt.Errorf("randsvd: non-positive rank %d", k)
	}
	if k > m {
		k = m
	}
	if k > n {
		k = n
	}
	p := k + opts.Oversampling
	if p > m {
		p = m
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	nonzero := a.MaxAbs() > 0

	// Stage A: find an orthonormal basis Q for the approximate range of a.
	tA := metrics.HistStart()
	omega := mat.RandN(n, p, opts.Rng)
	y := mat.Mul(a, omega) // m×p
	if siteSketch.FireKey(opts.FaultKey) {
		y.Set(0, 0, math.NaN())
	}
	if err := checkSketch("range sketch", y, nonzero); err != nil {
		return mat.SVDResult{}, err
	}
	q := mat.Orthonormalize(y)
	for it := 0; it < opts.PowerIters; it++ {
		// Orthonormalize between applications for numerical stability
		// (the "subspace iteration" variant).
		z := mat.MulTA(a, q) // n×p
		qz := mat.Orthonormalize(z)
		y = mat.Mul(a, qz)
		if err := checkSketch(fmt.Sprintf("power-iteration %d sketch", it+1), y, nonzero); err != nil {
			return mat.SVDResult{}, err
		}
		q = mat.Orthonormalize(y)
	}
	metrics.ObserveSince(metrics.HistRandSVDSketch, tA)

	// Stage B: exact SVD of the small projection B = Qᵀ·A (p×n).
	tB := metrics.HistStart()
	b := mat.MulTA(q, a)
	if siteSVD.Fire() {
		return mat.SVDResult{}, breakdown("injected projected-SVD failure at site %q", siteSVD.Name())
	}
	res, err := mat.SVD(b)
	if err != nil {
		// The projected SVD's iteration limit is the "failed convergence"
		// breakdown signal.
		return mat.SVDResult{}, breakdown("projected SVD: %v", err)
	}
	res = res.Truncate(k)
	out := mat.SVDResult{U: mat.Mul(q, res.U), S: res.S, V: res.V}
	metrics.ObserveSince(metrics.HistRandSVDProject, tB)
	return out, nil
}

// SVDWithFallback is the numerical-failure recovery chain around SVD: on a
// breakdown it retries once with fresh draws from the same generator, and if
// the retry breaks down too it completes with an exact dense SVD of a,
// truncated to rank k — a deterministic path with no randomness, so the
// result is identical for every seed and worker count. Retries and completed
// fallbacks are counted in internal/metrics (RandSVDRetries,
// RandSVDFallbacks). The second return value reports whether the dense
// fallback produced the result.
//
// Non-breakdown errors (a missing Rng, a non-positive rank) are returned
// unchanged: the chain recovers numerical failures, not caller mistakes.
func SVDWithFallback(a *mat.Dense, k int, opts Options) (mat.SVDResult, bool, error) {
	res, err := SVD(a, k, opts)
	if err == nil || !errors.Is(err, dterr.ErrNumericalBreakdown) {
		return res, false, err
	}
	metrics.CountRandSVDRetry()
	res, retryErr := SVD(a, k, opts)
	if retryErr == nil {
		return res, false, nil
	}
	if !errors.Is(retryErr, dterr.ErrNumericalBreakdown) {
		return mat.SVDResult{}, false, retryErr
	}
	exact, exactErr := mat.SVD(a)
	if exactErr != nil {
		return mat.SVDResult{}, false, fmt.Errorf(
			"randsvd: dense fallback after breakdown (%v): %w", err, exactErr)
	}
	metrics.CountRandSVDFallback()
	return exact.Truncate(k), true, nil
}

// FlopEstimate is the leading-order floating-point cost of one rank-k
// randomized SVD of an m×n matrix under the given oversampling and
// power-iteration settings, mirroring SVD's actual stages: the Gaussian
// range sketch, the orthonormalizations, the optional subspace iterations,
// and the projected small SVD. Oversampling and powerIters are resolved
// exactly as SVD resolves them (zero selects the defaults, negative values
// the documented sentinels), so the estimate and the kernel cannot drift
// apart. The kernel-selection cost model (internal/kernelsel) scales this
// estimate by a calibrated ns-per-flop coefficient.
func FlopEstimate(m, n, k, oversampling, powerIters int) int64 {
	o := Options{Oversampling: oversampling, PowerIters: powerIters}.normalized()
	if k > m {
		k = m
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	p := k + o.Oversampling
	if p > m {
		p = m
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	fm, fn, fp, fk := int64(m), int64(n), int64(p), int64(k)
	sketch := 2 * fm * fn * fp // y = a·omega
	orth := 2 * fm * fp * fp   // orthonormalize y
	power := int64(o.PowerIters) * (2*fm*fn*fp + 2*fn*fp*fp + 2*fm*fn*fp + 2*fm*fp*fp)
	project := 2*fm*fn*fp + 2*fn*fp*fp // b = qᵀa and its small SVD
	lift := 2 * fm * fp * fk           // u = q·u_b
	return sketch + orth + power + project + lift
}
