// Package randsvd implements the randomized singular value decomposition of
// Halko, Martinsson & Tropp ("Finding Structure with Randomness", SIAM Rev.
// 2011): a Gaussian range finder with optional power iterations, followed by
// an exact SVD of the projected matrix. It is the kernel of D-Tucker's
// approximation phase, which compresses every I1×I2 slice of the input
// tensor to rank J in O(I1·I2·J) time.
package randsvd

import (
	"fmt"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/metrics"
)

// Options configures the randomized SVD.
type Options struct {
	// Oversampling is the number of extra random directions beyond the
	// target rank (Halko et al. recommend 5–10). Defaults to 5 when zero.
	Oversampling int
	// PowerIters is the number of subspace (power) iterations, which
	// sharpen the spectrum when singular values decay slowly. Defaults to
	// 1 when zero; set to -1 for none.
	PowerIters int
	// Rng drives the Gaussian sketch. Required.
	Rng *rand.Rand
}

func (o Options) normalized() Options {
	if o.Oversampling == 0 {
		o.Oversampling = 5
	}
	if o.PowerIters == 0 {
		o.PowerIters = 1
	}
	if o.PowerIters < 0 {
		o.PowerIters = 0
	}
	return o
}

// SVD returns a rank-k approximate SVD of a: U (m×k, orthonormal columns),
// S (k, descending), V (n×k, orthonormal columns) with A ≈ U·diag(S)·Vᵀ.
//
// k is clamped to min(m, n). The error, in expectation, is within a small
// polynomial factor of the optimal rank-k error σ_{k+1} (Halko et al.,
// Thm. 10.6), improving geometrically with each power iteration.
func SVD(a *mat.Dense, k int, opts Options) (mat.SVDResult, error) {
	opts = opts.normalized()
	if opts.Rng == nil {
		return mat.SVDResult{}, fmt.Errorf("randsvd: Options.Rng must be set")
	}
	metrics.CountRandSVD()
	m, n := a.Dims()
	if k <= 0 {
		return mat.SVDResult{}, fmt.Errorf("randsvd: non-positive rank %d", k)
	}
	if k > m {
		k = m
	}
	if k > n {
		k = n
	}
	p := k + opts.Oversampling
	if p > m {
		p = m
	}
	if p > n {
		p = n
	}

	// Stage A: find an orthonormal basis Q for the approximate range of a.
	omega := mat.RandN(n, p, opts.Rng)
	y := mat.Mul(a, omega) // m×p
	q := mat.Orthonormalize(y)
	for it := 0; it < opts.PowerIters; it++ {
		// Orthonormalize between applications for numerical stability
		// (the "subspace iteration" variant).
		z := mat.MulTA(a, q) // n×p
		qz := mat.Orthonormalize(z)
		y = mat.Mul(a, qz)
		q = mat.Orthonormalize(y)
	}

	// Stage B: exact SVD of the small projection B = Qᵀ·A (p×n).
	b := mat.MulTA(q, a)
	res, err := mat.SVD(b)
	if err != nil {
		return mat.SVDResult{}, fmt.Errorf("randsvd: projected SVD: %w", err)
	}
	res = res.Truncate(k)
	return mat.SVDResult{U: mat.Mul(q, res.U), S: res.S, V: res.V}, nil
}
