package kernelsel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	p := Default()
	p.RandSVDNsPerFlop = 0.42
	p.BlockK, p.BlockN = 64, 256
	if err := Save(path, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if *got != *p {
		t.Fatalf("round-trip mismatch: %+v != %+v", got, p)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Fatalf("fingerprint changed across round-trip")
	}
}

func TestLoadRejectsBadProfiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"wrong-schema": `{"schema": 99, "randsvd_ns_per_flop": 1, "exact_svd_ns_per_flop": 1, "gram_ns_per_flop": 1, "eig_ns_per_n3": 1}`,
		"zero-coeff":   `{"schema": 1, "randsvd_ns_per_flop": 0, "exact_svd_ns_per_flop": 1, "gram_ns_per_flop": 1, "eig_ns_per_n3": 1}`,
		"neg-block":    `{"schema": 1, "randsvd_ns_per_flop": 1, "exact_svd_ns_per_flop": 1, "gram_ns_per_flop": 1, "eig_ns_per_n3": 1, "block_k": -1}`,
		"not-json":     `schema: 1`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("Load(%s) accepted a bad profile", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("Load of a missing file succeeded")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Default()
	fp := base.Fingerprint()
	if fp != Default().Fingerprint() {
		t.Fatal("fingerprint is not stable for identical profiles")
	}

	coeff := Default()
	coeff.ExactSVDNsPerFlop *= 2
	if coeff.Fingerprint() == fp {
		t.Error("changing a cost coefficient did not change the fingerprint")
	}

	// Block sizes and environment records never change results, so they
	// must not change the fingerprint (re-tuning blocks must not invalidate
	// the serving cache).
	blocks := Default()
	blocks.BlockK, blocks.BlockN = 64, 256
	blocks.CreatedUTC = "2026-08-08T00:00:00Z"
	blocks.GOARCH = "riscv64"
	blocks.NumCPU = 128
	if blocks.Fingerprint() != fp {
		t.Error("block sizes or environment records leaked into the fingerprint")
	}
}

func TestChooseDeterministicAndSane(t *testing.T) {
	p := Default()
	// Purity: same inputs, same answer, many times over.
	for i := 0; i < 100; i++ {
		if p.Choose(512, 512, 8, 5, 1) != p.Choose(512, 512, 8, 5, 1) {
			t.Fatal("Choose is not deterministic")
		}
	}
	// Low rank on a big slice: randomized SVD's O(mnr) must beat both
	// O(mns) dense routes.
	if k := p.Choose(2048, 2048, 4, 5, 1); k != KernelRandSVD {
		t.Errorf("Choose(2048,2048,4) = %v, want randsvd", k)
	}
	// Rank equal to the small dimension: sketching saves nothing, and on a
	// very rectangular slice the Gram route halves the big-dimension work.
	if k := p.Choose(4096, 32, 32, 5, 1); k != KernelGramEig {
		t.Errorf("Choose(4096,32,32) = %v, want gram", k)
	}
	// A profile with a prohibitive eig constant flips the same shape to the
	// exact kernel — the whole point of calibrating per machine.
	slow := Default()
	slow.EigNsPerN3 = 1e9
	if k := slow.Choose(4096, 32, 32, 5, 1); k != KernelExactSVD {
		t.Errorf("Choose with slow eig = %v, want exact", k)
	}
	if got := KernelRandSVD.String() + KernelExactSVD.String() + KernelGramEig.String(); got != "randsvd"+"exact"+"gram" {
		t.Errorf("kernel names = %q", got)
	}
}

// TestCalibrateQuick is the autotune determinism smoke test wired into make
// verify: a quick calibration must produce a valid, saveable profile whose
// schema round-trips, with sane block sizes.
func TestCalibrateQuick(t *testing.T) {
	var lines []string
	p, err := Calibrate(CalibrateOptions{Quick: true, Logf: func(f string, a ...any) {
		lines = append(lines, f)
	}})
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("calibrated profile invalid: %v", err)
	}
	if p.BlockK <= 0 || p.BlockN <= 0 {
		t.Fatalf("calibration left block sizes unset: %d×%d", p.BlockK, p.BlockN)
	}
	if p.CreatedUTC == "" || p.GOARCH == "" {
		t.Error("calibration did not stamp environment metadata")
	}
	if len(lines) == 0 {
		t.Error("Logf never called")
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := Save(path, p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Error("fingerprint changed across save/load")
	}
	if got.Schema != Schema {
		t.Errorf("schema = %d, want %d", got.Schema, Schema)
	}
	// Fingerprints are coefficients only, so the JSON must contain the
	// block sizes separately (they are applied, not fingerprinted).
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "block_k") {
		t.Error("saved profile is missing block sizes")
	}
}
