package kernelsel

import (
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/mat"
	"repro/internal/randsvd"
)

// CalibrateOptions configures the one-time micro-benchmark autotuner.
type CalibrateOptions struct {
	// Seed drives the deterministic benchmark inputs (0 selects 1). The
	// measured timings — and therefore the written coefficients — still
	// vary with the machine; that is the point of calibrating.
	Seed int64
	// Quick shrinks the benchmark sizes for smoke tests: the profile is
	// structurally identical but calibrated on toy inputs.
	Quick bool
	// Logf, when set, receives one line per measurement.
	Logf func(format string, args ...any)
}

// calSize is one (slice shape, rank) micro-benchmark point.
type calSize struct{ m, n, r int }

// blockCand is one candidate (BlockK, BlockN) pair for the matmul tuning.
type blockCand struct{ kc, nc int }

// Calibrate measures the three slice-compression kernels and the blocked
// matmul on deterministic synthetic inputs and returns a profile holding
// the fitted cost coefficients and the fastest block sizes. This is the
// only place the selection layer touches a clock: decompose-time selection
// reads the written profile and stays a pure function.
func Calibrate(o CalibrateOptions) (*Profile, error) {
	if o.Seed == 0 {
		o.Seed = 1
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sizes := []calSize{{256, 192, 16}, {192, 192, 32}, {512, 64, 16}}
	mulM, mulK, mulN := 256, 1024, 768
	cands := []blockCand{{64, 256}, {64, 512}, {128, 256}, {128, 512}, {128, 1024}, {256, 512}, {256, 1024}}
	reps := 3
	if o.Quick {
		sizes = []calSize{{64, 48, 8}, {96, 32, 8}}
		mulM, mulK, mulN = 64, 256, 96
		cands = []blockCand{{32, 128}, {64, 128}, {64, 256}}
		reps = 2
	}

	rng := rand.New(rand.NewSource(o.Seed))
	var randC, exactC, gramC, eigC []float64
	for _, sz := range sizes {
		a := mat.RandN(sz.m, sz.n, rng)
		s := float64(min(sz.m, sz.n))

		t := bestOf(reps, func() error {
			_, err := randsvd.SVD(a, sz.r, randsvd.Options{Rng: rand.New(rand.NewSource(o.Seed))})
			return err
		})
		if t >= 0 {
			randC = append(randC, t/float64(randsvd.FlopEstimate(sz.m, sz.n, sz.r, 0, 0)))
		}

		t = bestOf(reps, func() error { _, err := mat.SVD(a); return err })
		if t >= 0 {
			exactC = append(exactC, t/exactFlops(sz.m, sz.n))
		}

		var g *mat.Dense
		t = bestOf(reps, func() error { g = mat.Gram(a); return nil })
		gramC = append(gramC, t/(float64(sz.m)*float64(sz.n)*s))

		t = bestOf(reps, func() error { _, err := mat.SymEig(g); return err })
		if t >= 0 {
			eigC = append(eigC, t/(s*s*s))
		}
		logf("kernelsel: calibrated %dx%d r=%d", sz.m, sz.n, sz.r)
	}

	p := Default()
	p.CreatedUTC = time.Now().UTC().Format(time.RFC3339)
	p.GoVersion = runtime.Version()
	p.GOOS = runtime.GOOS
	p.GOARCH = runtime.GOARCH
	p.NumCPU = runtime.NumCPU()
	// Keep the built-in coefficient when a kernel produced no clean
	// measurement (it cannot happen on finite random input, but a profile
	// must never come out unusable).
	if v, ok := median(randC); ok {
		p.RandSVDNsPerFlop = v
	}
	if v, ok := median(exactC); ok {
		p.ExactSVDNsPerFlop = v
	}
	if v, ok := median(gramC); ok {
		p.GramNsPerFlop = v
	}
	if v, ok := median(eigC); ok {
		p.EigNsPerN3 = v
	}

	p.BlockK, p.BlockN = tuneBlocks(mulM, mulK, mulN, cands, rng, logf)
	logf("kernelsel: coefficients rand=%.3g exact=%.3g gram=%.3g eig=%.3g, blocks %dx%d",
		p.RandSVDNsPerFlop, p.ExactSVDNsPerFlop, p.GramNsPerFlop, p.EigNsPerN3, p.BlockK, p.BlockN)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// tuneBlocks times the accumulation matmul kernel under each candidate
// block pair and returns the fastest (first candidate wins ties). The
// process-wide block setting is restored before returning.
func tuneBlocks(m, k, n int, cands []blockCand, rng *rand.Rand, logf func(string, ...any)) (int, int) {
	prevK, prevN := mat.BlockSizes()
	defer mat.SetBlockSizes(prevK, prevN)
	a := mat.RandN(m, k, rng)
	b := mat.RandN(k, n, rng)
	dst := mat.New(m, n)
	bestK, bestN, bestT := cands[0].kc, cands[0].nc, 0.0
	for i, c := range cands {
		mat.SetBlockSizes(c.kc, c.nc)
		t := bestOf(2, func() error {
			dst.Zero()
			mat.MulAddInto(dst, a, b)
			return nil
		})
		logf("kernelsel: blocks %dx%d: %.2fms", c.kc, c.nc, t/1e6)
		if i == 0 || t < bestT {
			bestK, bestN, bestT = c.kc, c.nc, t
		}
	}
	return bestK, bestN
}

// exactFlops is the cost model's dense-SVD term (see Profile.CostNanos).
func exactFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	s := fn
	if fm < fn {
		s = fm
	}
	return 4*fm*fn*s + 8*s*s*s
}

// bestOf returns the fastest of reps timed runs in nanoseconds, or -1 if
// fn ever failed.
func bestOf(reps int, fn func() error) float64 {
	best := -1.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		if d := float64(time.Since(t0)); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// median returns the middle value of a sorted copy of xs (mean of the two
// middles for even lengths) and whether xs was non-empty.
func median(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid], true
	}
	return (s[mid-1] + s[mid]) / 2, true
}
