// Package kernelsel is the input-adaptive kernel-selection layer for
// D-Tucker's approximation phase: given a slice shape and target rank, it
// picks the cheapest of the three slice-compression kernels — randomized
// SVD, exact dense SVD, or Gram-eigendecomposition — from a small cost
// model whose per-flop coefficients are calibrated once by a
// micro-benchmark autotuner (Calibrate) and persisted as a versioned JSON
// profile.
//
// Selection is a pure function of (shape, rank, profile): Choose never
// consults the clock at decompose time, so a decomposition's result is
// deterministic for a given (tensor, config, profile) triple and the
// serving layer's result cache stays sound. The profile's Fingerprint
// joins the cache key through core.Config.KernelProfile; changing the
// calibrated coefficients changes the fingerprint and therefore the key,
// while re-tuning only the matmul block sizes — which never change results,
// only timing — does not.
package kernelsel

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"

	"repro/internal/mat"
	"repro/internal/randsvd"
)

// Kernel names one slice-compression kernel. The enumeration order is the
// deterministic tie-break: when two kernels model to the same cost, the
// lower value wins.
type Kernel int

const (
	// KernelRandSVD is the paper's default: a rank-r randomized SVD
	// (Halko et al.) behind the retry-then-dense-SVD recovery chain.
	KernelRandSVD Kernel = iota
	// KernelExactSVD is a full dense SVD truncated to rank r — the
	// accuracy ablation, and the cheapest choice when r approaches the
	// small dimension.
	KernelExactSVD
	// KernelGramEig forms the smaller Gram matrix, eigendecomposes it, and
	// recovers the other factor — cheapest for very rectangular slices at
	// the price of a squared condition number (fine for dominant
	// subspaces; see mat.GramSVD).
	KernelGramEig
	numKernels
)

// String returns the kernel's config-file name, matching the values of
// core.Config.SliceKernel.
func (k Kernel) String() string {
	switch k {
	case KernelRandSVD:
		return "randsvd"
	case KernelExactSVD:
		return "exact"
	case KernelGramEig:
		return "gram"
	}
	return "kernel(?)"
}

// Schema is the version stamp of the profile JSON format. Load rejects
// files with a different schema instead of guessing.
const Schema = 1

// Profile holds the calibrated constants of the kernel cost model plus the
// autotuned matmul block sizes. A Profile is plain data: Save/Load
// round-trip it as JSON, Fingerprint identifies its selection-relevant
// content, and Choose evaluates the model without touching the clock.
type Profile struct {
	Schema     int    `json:"schema"`
	CreatedUTC string `json:"created_utc,omitempty"`

	// Environment the profile was calibrated on, recorded so a profile
	// copied across machines can be recognized (the model still works, it
	// is just tuned for somewhere else).
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	NumCPU    int    `json:"num_cpu,omitempty"`

	// Cost-model coefficients, in nanoseconds per modeled unit. The first
	// three scale flop counts; EigNsPerN3 scales s³ for the cyclic-Jacobi
	// eigendecomposition of the s×s Gram matrix, kept separate because its
	// effective constant is far from the matmul kernels'.
	RandSVDNsPerFlop  float64 `json:"randsvd_ns_per_flop"`
	ExactSVDNsPerFlop float64 `json:"exact_svd_ns_per_flop"`
	GramNsPerFlop     float64 `json:"gram_ns_per_flop"`
	EigNsPerN3        float64 `json:"eig_ns_per_n3"`

	// BlockK and BlockN are the autotuned cache-block sizes for the
	// accumulation matmul kernel (mat.SetBlockSizes). They shape timing
	// only, never results, so they are excluded from Fingerprint.
	BlockK int `json:"block_k"`
	BlockN int `json:"block_n"`
}

// Default returns the built-in profile used when no calibrated one is
// supplied: coefficient ratios from the repo's reference measurements, and
// the default block sizes. Its fingerprint is stable across processes, so
// "auto" selection without a profile file is still cacheable.
func Default() *Profile {
	return &Profile{
		Schema:            Schema,
		RandSVDNsPerFlop:  1.0,
		ExactSVDNsPerFlop: 1.6,
		GramNsPerFlop:     1.0,
		EigNsPerN3:        30.0,
		BlockK:            0, // 0 = keep mat's compiled-in defaults
		BlockN:            0,
	}
}

// Validate checks the profile is usable: matching schema, finite positive
// coefficients, non-negative block sizes.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("kernelsel: nil profile")
	}
	if p.Schema != Schema {
		return fmt.Errorf("kernelsel: profile schema %d, want %d", p.Schema, Schema)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"randsvd_ns_per_flop", p.RandSVDNsPerFlop},
		{"exact_svd_ns_per_flop", p.ExactSVDNsPerFlop},
		{"gram_ns_per_flop", p.GramNsPerFlop},
		{"eig_ns_per_n3", p.EigNsPerN3},
	} {
		if !(c.v > 0) || math.IsInf(c.v, 0) {
			return fmt.Errorf("kernelsel: profile coefficient %s = %v is not a positive finite number", c.name, c.v)
		}
	}
	if p.BlockK < 0 || p.BlockN < 0 {
		return fmt.Errorf("kernelsel: negative block sizes %d×%d", p.BlockK, p.BlockN)
	}
	return nil
}

// Fingerprint identifies the profile's selection-relevant content: the
// schema and the four cost coefficients. Two profiles with equal
// fingerprints select the same kernel for every input, so they may share
// cache entries; the block sizes and environment records are deliberately
// excluded because they cannot change results.
func (p *Profile) Fingerprint() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	sum := sha256.Sum256([]byte(fmt.Sprintf("kernelsel:v%d;rand=%s;exact=%s;gram=%s;eig=%s",
		p.Schema, g(p.RandSVDNsPerFlop), g(p.ExactSVDNsPerFlop), g(p.GramNsPerFlop), g(p.EigNsPerN3))))
	return hex.EncodeToString(sum[:8])
}

// CostNanos evaluates the model for one kernel on an m×n slice compressed
// to rank r under the given randomized-SVD settings. Pure arithmetic — no
// clock, no allocation.
func (p *Profile) CostNanos(k Kernel, m, n, r, oversampling, powerIters int) float64 {
	fm, fn := float64(m), float64(n)
	s := math.Min(fm, fn)
	fr := math.Min(float64(r), s)
	switch k {
	case KernelRandSVD:
		return p.RandSVDNsPerFlop * float64(randsvd.FlopEstimate(m, n, r, oversampling, powerIters))
	case KernelExactSVD:
		// R-bidiagonalized Golub–Kahan with both vector sets:
		// 4·m·n·s for the reduction, ~8·s³ for the diagonalization.
		return p.ExactSVDNsPerFlop * exactFlops(m, n)
	case KernelGramEig:
		// Forming the symmetric Gram matrix (m·n·s), recovering the long
		// factor (2·m·n·r), plus the s×s Jacobi eigendecomposition.
		return p.GramNsPerFlop*(fm*fn*s+2*fm*fn*fr) + p.EigNsPerN3*s*s*s
	}
	return math.Inf(1)
}

// Choose picks the modeled-cheapest kernel for an m×n slice at rank r — a
// pure function of its arguments and the profile's coefficients, so the
// choice is identical across workers, runs, and processes. Ties break to
// the lowest Kernel value.
func (p *Profile) Choose(m, n, r, oversampling, powerIters int) Kernel {
	best, bestCost := KernelRandSVD, math.Inf(1)
	for k := KernelRandSVD; k < numKernels; k++ {
		if c := p.CostNanos(k, m, n, r, oversampling, powerIters); c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}

// Apply installs the profile's block sizes as the process-wide matmul
// blocking (a no-op when the profile carries none). Block sizes shape
// timing only, so applying a profile never changes any result.
func (p *Profile) Apply() {
	if p.BlockK > 0 && p.BlockN > 0 {
		mat.SetBlockSizes(p.BlockK, p.BlockN)
	}
}

// Save writes the profile as indented JSON.
func Save(path string, p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("kernelsel: encoding profile: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("kernelsel: writing profile: %w", err)
	}
	return nil
}

// Load reads and validates a profile file, rejecting unknown schemas and
// unusable coefficients.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("kernelsel: reading profile: %w", err)
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("kernelsel: parsing profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("kernelsel: profile %s: %w", path, err)
	}
	return &p, nil
}
