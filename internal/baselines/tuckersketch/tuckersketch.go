// Package tuckersketch implements the two TensorSketch-based Tucker
// algorithms of Malik & Becker ("Low-Rank Tucker Decomposition of Large
// Tensors Using TensorSketch", NeurIPS 2018):
//
//   - Tucker-ts: each ALS subproblem is solved as a sketched least-squares
//     problem, using unfolding sketches Z_n = TS(X_(n)ᵀ) computed in one
//     preprocessing pass and the FFT-combined sketch of the Kronecker
//     factor product.
//   - Tucker-ttmts: the cheaper variant that replaces the sketched
//     least-squares solves with sketched TTM products — the mode-n design
//     matrix Zᵀ_n·TS(⊗A) approximates X_(n)(⊗A) directly (E[SᵀS] = I), so
//     factors come from an SVD and the core from one sketched projection.
//
// Both share the property D-Tucker's evaluation highlights: their
// preprocessing (the Z_n) is not separable along any single mode, and the
// sketch dimensions needed for accuracy grow with J^{N-1}, which is what
// makes them lose to slice-based compression on dense tensors.
//
// Substitution notes (documented in DESIGN.md): large sketched
// least-squares core solves use CGLS instead of dense QR (same minimizer,
// iterative), and sketch dimensions default to 4·J^{N-1} / 4·J^N rounded up
// to powers of two rather than the paper's larger constants, to keep pure-Go
// runtimes proportionate. Both are knobs in Options.
package tuckersketch

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mat"
	"repro/internal/sketch"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Algorithm selects the Malik–Becker variant.
type Algorithm int

const (
	// TS is Tucker-ts: sketched least-squares ALS.
	TS Algorithm = iota
	// TTMTS is Tucker-ttmts: sketched TTM ALS.
	TTMTS
)

func (a Algorithm) String() string {
	if a == TTMTS {
		return "tucker-ttmts"
	}
	return "tucker-ts"
}

// Options configures both algorithms.
type Options struct {
	// Ranks holds the target core dimensionalities, one per mode. Required.
	Ranks []int
	// K1 is the unfolding sketch dimension (rounded up to a power of two).
	// Zero selects 4·max_n ∏_{k≠n} J_k.
	K1 int
	// K2 is the vectorization sketch dimension (rounded up to a power of
	// two). Zero selects 4·∏ J_k.
	K2 int
	// Tol stops iterating when the fit-proxy change is below it
	// (default 1e-4).
	Tol float64
	// MaxIters caps the ALS sweeps (default 50).
	MaxIters int
	// Seed drives all sketches and the initialization.
	Seed int64
	// CGIters caps the CGLS iterations for large core solves (default 60).
	CGIters int
	// Leading selects the singular-vector extraction path (TTMTS only).
	Leading mat.LeadingMethod
}

// Result is the outcome of a run.
type Result struct {
	tucker.Model
	Algorithm  Algorithm
	Iters      int
	K1, K2     int
	SketchTime time.Duration
	IterTime   time.Duration
}

// Decompose runs the selected algorithm on x.
func Decompose(x *tensor.Dense, alg Algorithm, opts Options) (*Result, error) {
	order := x.Order()
	if len(opts.Ranks) != order {
		return nil, fmt.Errorf("tuckersketch: %d ranks for an order-%d tensor", len(opts.Ranks), order)
	}
	prodAll := 1
	for n, j := range opts.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("tuckersketch: rank %d invalid for mode %d of dimensionality %d", j, n, x.Dim(n))
		}
		prodAll *= j
	}
	maxRest := 0
	for n := range opts.Ranks {
		rest := prodAll / opts.Ranks[n]
		if rest > maxRest {
			maxRest = rest
		}
	}
	if opts.K1 == 0 {
		opts.K1 = 4 * maxRest
	}
	if opts.K2 == 0 {
		opts.K2 = 4 * prodAll
	}
	m1 := sketch.NextPow2(opts.K1)
	m2 := sketch.NextPow2(opts.K2)
	if opts.Tol == 0 {
		opts.Tol = 1e-4
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 50
	}
	if opts.CGIters == 0 {
		opts.CGIters = 60
	}

	t0 := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	ts := sketch.SketchTensor(x, m1, m2, rng)
	sketchTime := time.Since(t0)

	t1 := time.Now()
	factors := make([]*mat.Dense, order)
	for n := range factors {
		factors[n] = mat.RandOrthonormal(x.Dim(n), opts.Ranks[n], rng)
	}
	core := tensor.New(opts.Ranks...)
	normX := x.Norm()
	if alg == TS {
		// Tucker-ts needs a non-degenerate core before the first factor
		// sweep: solve the sketched core least squares once from the
		// random factors.
		if err := solveCoreTS(ts, factors, &core, opts); err != nil {
			return nil, err
		}
	}

	var (
		iters     int
		prevProxy = math.Inf(1)
	)
	for iters = 1; iters <= opts.MaxIters; iters++ {
		var err error
		if alg == TS {
			err = sweepTS(ts, factors, &core, opts)
		} else {
			err = sweepTTMTS(ts, factors, &core, opts)
		}
		if err != nil {
			return nil, err
		}
		proxy := tucker.FitFromCore(normX, core.Norm())
		if iters > 1 && math.Abs(proxy-prevProxy) < opts.Tol {
			break
		}
		prevProxy = proxy
	}
	if iters > opts.MaxIters {
		iters = opts.MaxIters
	}
	return &Result{
		Model:      tucker.Model{Core: core, Factors: factors},
		Algorithm:  alg,
		Iters:      iters,
		K1:         m1,
		K2:         m2,
		SketchTime: sketchTime,
		IterTime:   time.Since(t1),
	}, nil
}

// sweepTS performs one Tucker-ts ALS sweep: per-mode sketched least squares
// for the factors, then a sketched least squares for the core.
func sweepTS(ts *sketch.TensorSketches, factors []*mat.Dense, core **tensor.Dense, opts Options) error {
	order := len(factors)
	for n := 0; n < order; n++ {
		t := kronSketchSkip(ts, factors, n, ts.M1, true) // m1 × ∏_{k≠n}J_k
		design := mat.Mul(t, (*core).Unfold(n).T())      // m1 × J_n
		at, err := mat.LeastSquares(design, ts.Z[n])     // J_n × I_n
		if err != nil {
			// Rank-deficient sketched system (e.g. zero core on the first
			// sweep): fall back to ridge-regularized normal equations.
			at, err = ridgeSolve(design, ts.Z[n])
			if err != nil {
				return fmt.Errorf("tuckersketch: mode-%d least squares: %w", n, err)
			}
		}
		factors[n] = at.T()
	}
	return solveCoreTS(ts, factors, core, opts)
}

// solveCoreTS solves min‖T2·vec(G) − z2‖ with T2 = TS(⊗ all factors).
func solveCoreTS(ts *sketch.TensorSketches, factors []*mat.Dense, core **tensor.Dense, opts Options) error {
	t2 := kronSketchSkip(ts, factors, -1, ts.M2, false) // m2 × ∏J
	cols := t2.Cols()
	var g []float64
	if cols <= 200 {
		rhs := mat.NewFromData(len(ts.Z2), 1, append([]float64(nil), ts.Z2...))
		sol, err := mat.LeastSquares(t2, rhs)
		if err != nil {
			solM, rerr := ridgeSolve(t2, rhs)
			if rerr != nil {
				return fmt.Errorf("tuckersketch: core least squares: %w", err)
			}
			sol = solM.T()
		}
		g = make([]float64, cols)
		for i := range g {
			g[i] = sol.At(i, 0)
		}
	} else {
		g = cgls(t2, ts.Z2, opts.CGIters)
	}
	ranks := make([]int, len(factors))
	for k, f := range factors {
		ranks[k] = f.Cols()
	}
	*core = tensor.NewFromData(g, ranks...)
	return nil
}

// sweepTTMTS performs one Tucker-ttmts sweep: the mode-n HOOI matrix
// X_(n)·(⊗A) is approximated by Z_nᵀ·TS(⊗A) and factors come from its
// leading singular vectors; the core is the sketched projection T2ᵀ·z2.
func sweepTTMTS(ts *sketch.TensorSketches, factors []*mat.Dense, core **tensor.Dense, opts Options) error {
	order := len(factors)
	for n := 0; n < order; n++ {
		t := kronSketchSkip(ts, factors, n, ts.M1, true)
		y := mat.MulTA(ts.Z[n], t) // I_n × ∏_{k≠n}J_k ≈ X_(n)(⊗A)
		f, err := mat.LeadingLeft(y, factors[n].Cols(), opts.Leading)
		if err != nil {
			return fmt.Errorf("tuckersketch: mode-%d singular vectors: %w", n, err)
		}
		factors[n] = f
	}
	t2 := kronSketchSkip(ts, factors, -1, ts.M2, false)
	g := mat.MulVecT(t2, ts.Z2) // ∏J ≈ (⊗A)ᵀ vec X = vec(X ×ₖ Aᵀ)
	ranks := make([]int, order)
	for k, f := range factors {
		ranks[k] = f.Cols()
	}
	*core = tensor.NewFromData(g, ranks...)
	return nil
}

// kronSketchSkip builds TS(⊗_{k≠skip} factors[k]) with the level-1 (useM1)
// or level-2 per-mode CountSketches; skip = -1 includes every mode.
func kronSketchSkip(ts *sketch.TensorSketches, factors []*mat.Dense, skip, m int, useM1 bool) *mat.Dense {
	var (
		css []sketch.CountSketch
		fs  []*mat.Dense
	)
	for k, f := range factors {
		if k == skip {
			continue
		}
		if useM1 {
			css = append(css, ts.CS1[k])
		} else {
			css = append(css, ts.CS2[k])
		}
		fs = append(fs, f)
	}
	return sketch.KroneckerSketch(css, fs, m)
}

// ridgeSolve solves the normal equations (AᵀA + λI)X = AᵀB with a small
// ridge, as a fallback for rank-deficient sketched systems.
func ridgeSolve(a, b *mat.Dense) (*mat.Dense, error) {
	g := mat.Gram(a)
	lambda := 1e-8 * (1 + g.Trace()/float64(g.Rows()))
	for i := 0; i < g.Rows(); i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	return mat.SolveSPD(g, mat.MulTA(a, b))
}

// cgls runs conjugate-gradient least squares on min‖A·x − b‖ for a dense A,
// the iterative route for core solves too large for dense QR. CGLS applies
// A and Aᵀ once per iteration and is mathematically equivalent to CG on the
// normal equations without forming them.
func cgls(a *mat.Dense, b []float64, iters int) []float64 {
	_, n := a.Dims()
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b − A·x, x = 0
	s := mat.MulVecT(a, r)            // s = Aᵀr
	p := append([]float64(nil), s...)
	gamma := mat.Dot(s, s)
	if gamma == 0 {
		return x
	}
	for it := 0; it < iters; it++ {
		q := mat.MulVec(a, p)
		qq := mat.Dot(q, q)
		if qq == 0 {
			break
		}
		alpha := gamma / qq
		mat.Axpy(alpha, p, x)
		mat.Axpy(-alpha, q, r)
		s = mat.MulVecT(a, r)
		gammaNew := mat.Dot(s, s)
		if gammaNew <= 1e-28*gamma {
			break
		}
		beta := gammaNew / gamma
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
		gamma = gammaNew
	}
	return x
}
