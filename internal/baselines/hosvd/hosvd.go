// Package hosvd implements the truncated higher-order SVD (De Lathauwer et
// al., 2000): each factor matrix is the leading left singular vectors of
// the corresponding unfolding of the raw tensor, and the core is the
// projection of the tensor onto those subspaces.
//
// Truncated HOSVD is quasi-optimal (within √N of the best rank-(J1..JN)
// approximation) and serves both as a baseline and as the conventional
// initializer for HOOI.
package hosvd

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Options configures a truncated HOSVD.
type Options struct {
	// Ranks holds the target core dimensionalities, one per mode.
	Ranks []int
	// Leading selects the singular-vector extraction path.
	Leading mat.LeadingMethod
}

// Decompose computes the truncated HOSVD of x.
func Decompose(x *tensor.Dense, opts Options) (*tucker.Model, error) {
	if len(opts.Ranks) != x.Order() {
		return nil, fmt.Errorf("hosvd: %d ranks for an order-%d tensor", len(opts.Ranks), x.Order())
	}
	factors := make([]*mat.Dense, x.Order())
	for n := 0; n < x.Order(); n++ {
		j := opts.Ranks[n]
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("hosvd: rank %d invalid for mode %d of dimensionality %d", j, n, x.Dim(n))
		}
		f, err := mat.LeadingLeft(x.Unfold(n), j, opts.Leading)
		if err != nil {
			return nil, fmt.Errorf("hosvd: mode-%d singular vectors: %w", n, err)
		}
		factors[n] = f
	}
	core := x.TTMAllTransposed(factors, -1)
	return &tucker.Model{Core: core, Factors: factors}, nil
}
