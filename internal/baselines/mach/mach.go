// Package mach implements MACH (Tsourakakis, SDM 2010): randomized Tucker
// decomposition by entry sampling. The tensor is sparsified by keeping each
// entry with probability p (rescaled by 1/p so the sample is unbiased), and
// Tucker-ALS is then run on the sparse sample using sparse TTMc kernels.
//
// MACH trades accuracy for speed through p: the per-sweep cost drops from
// O(J·∏I_k) to O(p·∏I_k·J^{N-1}), but the sampling noise floors the
// achievable reconstruction error — the accuracy gap the paper's
// experiments exhibit.
package mach

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines/hosvd"
	"repro/internal/mat"
	"repro/internal/sptensor"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Options configures MACH.
type Options struct {
	// Ranks holds the target core dimensionalities, one per mode. Required.
	Ranks []int
	// SampleRate is the keep probability p ∈ (0,1]; default 0.1.
	SampleRate float64
	// Tol stops iterating when the fit change is below it (default 1e-4).
	Tol float64
	// MaxIters caps the ALS sweeps (default 100).
	MaxIters int
	// Seed drives the sampling and initialization.
	Seed int64
	// Leading selects the singular-vector extraction path.
	Leading mat.LeadingMethod
}

// Result is the outcome of a MACH run.
type Result struct {
	tucker.Model
	// Fit is the ALS fit estimate measured against the SAMPLED tensor
	// (the only data MACH sees); the true error against the dense input
	// is available via Model.RelError.
	Fit   float64
	Iters int
	// NNZ is the number of sampled entries actually processed.
	NNZ        int
	SampleTime time.Duration
	IterTime   time.Duration
}

// Decompose sparsifies x and runs sparse Tucker-ALS on the sample.
func Decompose(x *tensor.Dense, opts Options) (*Result, error) {
	if len(opts.Ranks) != x.Order() {
		return nil, fmt.Errorf("mach: %d ranks for an order-%d tensor", len(opts.Ranks), x.Order())
	}
	for n, j := range opts.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("mach: rank %d invalid for mode %d of dimensionality %d", j, n, x.Dim(n))
		}
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 0.1
	}
	if opts.SampleRate < 0 || opts.SampleRate > 1 {
		return nil, fmt.Errorf("mach: sample rate %g outside (0,1]", opts.SampleRate)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-4
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 100
	}

	t0 := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	sp := sptensor.Sample(x, opts.SampleRate, rng)
	sampleTime := time.Since(t0)

	t1 := time.Now()
	factors, err := initFactors(sp, opts, rng)
	if err != nil {
		return nil, err
	}
	normS := sp.Norm()
	var (
		core    *tensor.Dense
		fit     float64
		prevFit float64
		iters   int
	)
	for iters = 1; iters <= opts.MaxIters; iters++ {
		for n := 0; n < sp.Order(); n++ {
			y := sp.TTMcUnfolded(factors, n)
			f, err := mat.LeadingLeft(y, opts.Ranks[n], opts.Leading)
			if err != nil {
				return nil, fmt.Errorf("mach: mode-%d update: %w", n, err)
			}
			factors[n] = f
		}
		core = sp.CoreProject(factors)
		fit = tucker.FitFromCore(normS, core.Norm())
		if iters > 1 && absf(fit-prevFit) < opts.Tol {
			break
		}
		prevFit = fit
	}
	if iters > opts.MaxIters {
		iters = opts.MaxIters
	}
	return &Result{
		Model:      tucker.Model{Core: core, Factors: factors},
		Fit:        fit,
		Iters:      iters,
		NNZ:        sp.NNZ(),
		SampleTime: sampleTime,
		IterTime:   time.Since(t1),
	}, nil
}

// initFactors seeds the ALS with an HOSVD of the (densified) sample when it
// is small, else with random orthonormal matrices. The densified path is
// only taken for modest tensors, where it mirrors the reference
// implementation's use of Tensor-Toolbox defaults.
func initFactors(sp *sptensor.COO, opts Options, rng *rand.Rand) ([]*mat.Dense, error) {
	total := 1
	for _, s := range sp.Shape {
		total *= s
	}
	if total <= 1<<22 {
		m, err := hosvd.Decompose(sp.Dense(), hosvd.Options{Ranks: opts.Ranks, Leading: opts.Leading})
		if err == nil {
			return m.Factors, nil
		}
	}
	factors := make([]*mat.Dense, len(sp.Shape))
	for n := range factors {
		factors[n] = mat.RandOrthonormal(sp.Shape[n], opts.Ranks[n], rng)
	}
	return factors, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
