// Package tuckerals implements the standard Tucker-ALS algorithm (HOOI —
// higher-order orthogonal iteration; De Lathauwer et al., 2000; Kolda &
// Bader, 2009, Fig. 4.4), operating directly on the raw dense tensor.
//
// Every sweep projects the full tensor onto all-but-one factor subspaces
// for each mode and extracts leading singular vectors, costing
// O(N·J·∏I_k) time per sweep with the raw tensor resident in memory —
// the cost profile D-Tucker's compressed phases avoid.
package tuckerals

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines/hosvd"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// InitMethod selects how the factor matrices are initialized.
type InitMethod int

const (
	// InitHOSVD seeds the factors with a truncated HOSVD (the common
	// default; deterministic).
	InitHOSVD InitMethod = iota
	// InitRandom seeds with random orthonormal matrices.
	InitRandom
)

// Options configures Tucker-ALS.
type Options struct {
	// Ranks holds the target core dimensionalities, one per mode. Required.
	Ranks []int
	// Tol stops iterating when the fit change is below it (default 1e-4).
	Tol float64
	// MaxIters caps the sweeps (default 100).
	MaxIters int
	// Init selects the initialization (default InitHOSVD).
	Init InitMethod
	// Seed drives InitRandom.
	Seed int64
	// Leading selects the singular-vector extraction path.
	Leading mat.LeadingMethod
}

// Result is the outcome of a Tucker-ALS run.
type Result struct {
	tucker.Model
	// Fit is the ALS fit estimate 1 − ‖X−X̂‖/‖X‖ from the core-norm
	// identity (exact for HOOI since the core is a projection of X).
	Fit   float64
	Iters int
	// InitTime and IterTime split the wall time.
	InitTime time.Duration
	IterTime time.Duration
}

// Decompose runs HOOI on x.
func Decompose(x *tensor.Dense, opts Options) (*Result, error) {
	if len(opts.Ranks) != x.Order() {
		return nil, fmt.Errorf("tuckerals: %d ranks for an order-%d tensor", len(opts.Ranks), x.Order())
	}
	for n, j := range opts.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("tuckerals: rank %d invalid for mode %d of dimensionality %d", j, n, x.Dim(n))
		}
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-4
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 100
	}
	if opts.MaxIters < 0 {
		return nil, fmt.Errorf("tuckerals: negative MaxIters %d", opts.MaxIters)
	}

	t0 := time.Now()
	factors, err := initialize(x, opts)
	if err != nil {
		return nil, err
	}
	initTime := time.Since(t0)

	t1 := time.Now()
	normX := x.Norm()
	var (
		core    *tensor.Dense
		fit     float64
		prevFit float64
		iters   int
	)
	for iters = 1; iters <= opts.MaxIters; iters++ {
		var y *tensor.Dense
		for n := 0; n < x.Order(); n++ {
			y = x.TTMAllTransposed(factors, n)
			f, err := mat.LeadingLeft(y.Unfold(n), opts.Ranks[n], opts.Leading)
			if err != nil {
				return nil, fmt.Errorf("tuckerals: mode-%d update: %w", n, err)
			}
			factors[n] = f
		}
		// The last projected tensor y omits only the last mode, so one more
		// product yields the core.
		core = y.ModeProduct(factors[x.Order()-1].T(), x.Order()-1)
		fit = tucker.FitFromCore(normX, core.Norm())
		if iters > 1 && absf(fit-prevFit) < opts.Tol {
			break
		}
		prevFit = fit
	}
	if iters > opts.MaxIters {
		iters = opts.MaxIters
	}
	return &Result{
		Model:    tucker.Model{Core: core, Factors: factors},
		Fit:      fit,
		Iters:    iters,
		InitTime: initTime,
		IterTime: time.Since(t1),
	}, nil
}

func initialize(x *tensor.Dense, opts Options) ([]*mat.Dense, error) {
	switch opts.Init {
	case InitRandom:
		rng := rand.New(rand.NewSource(opts.Seed))
		factors := make([]*mat.Dense, x.Order())
		for n := range factors {
			factors[n] = mat.RandOrthonormal(x.Dim(n), opts.Ranks[n], rng)
		}
		return factors, nil
	default:
		m, err := hosvd.Decompose(x, hosvd.Options{Ranks: opts.Ranks, Leading: opts.Leading})
		if err != nil {
			return nil, fmt.Errorf("tuckerals: HOSVD initialization: %w", err)
		}
		return m.Factors, nil
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
