// Package rtd implements a randomized Tucker decomposition in the style of
// Che & Wei ("Randomized algorithms for the approximations of Tucker and
// the tensor train decompositions", Adv. Comput. Math. 2019): a single
// sequentially-truncating pass where each mode's factor comes from a
// randomized range finder applied to the current (already shrunken)
// tensor, with no ALS iterations.
//
// RTD is the "fast but one-shot" end of the accuracy/speed spectrum the
// paper compares against: one pass over the data per mode, with accuracy
// limited by the lack of refinement sweeps.
package rtd

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/mat"
	"repro/internal/randsvd"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Options configures the randomized Tucker decomposition.
type Options struct {
	// Ranks holds the target core dimensionalities, one per mode. Required.
	Ranks []int
	// Oversampling extends the random sketch beyond the rank (default 5).
	Oversampling int
	// PowerIters sharpens the sketch (default 1; -1 disables).
	PowerIters int
	// Seed drives the Gaussian sketches.
	Seed int64
}

// Result is the outcome of an RTD run.
type Result struct {
	tucker.Model
	Time time.Duration
}

// Decompose runs the sequentially truncated randomized Tucker pass.
//
// After processing mode n the working tensor has its first n modes already
// reduced to rank size, so later sketches touch geometrically less data —
// the property that makes the method one-pass cheap.
func Decompose(x *tensor.Dense, opts Options) (*Result, error) {
	if len(opts.Ranks) != x.Order() {
		return nil, fmt.Errorf("rtd: %d ranks for an order-%d tensor", len(opts.Ranks), x.Order())
	}
	for n, j := range opts.Ranks {
		if j <= 0 || j > x.Dim(n) {
			return nil, fmt.Errorf("rtd: rank %d invalid for mode %d of dimensionality %d", j, n, x.Dim(n))
		}
	}
	t0 := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	g := x
	factors := make([]*mat.Dense, x.Order())
	for n := 0; n < x.Order(); n++ {
		res, err := randsvd.SVD(g.Unfold(n), opts.Ranks[n], randsvd.Options{
			Oversampling: opts.Oversampling,
			PowerIters:   opts.PowerIters,
			Rng:          rng,
		})
		if err != nil {
			return nil, fmt.Errorf("rtd: mode-%d range finder: %w", n, err)
		}
		factors[n] = res.U
		g = g.ModeProduct(res.U.T(), n)
	}
	return &Result{
		Model: tucker.Model{Core: g, Factors: factors},
		Time:  time.Since(t0),
	}, nil
}
