// Package baselines groups the Tucker decomposition methods the paper's
// evaluation compares D-Tucker against, each reimplemented from its source
// publication in a subpackage:
//
//   - tuckerals: standard Tucker-ALS / HOOI on the raw tensor
//   - hosvd: truncated higher-order SVD
//   - mach: MACH entry-sampling randomized Tucker
//   - rtd: randomized Tucker in the style of Che & Wei
//   - tuckersketch: Tucker-ts and Tucker-ttmts (TensorSketch-based)
//
// The package itself holds no code — the cross-method integration tests in
// baselines_test.go exercise every subpackage on shared synthetic inputs.
// All methods are driven uniformly through internal/bench, which also
// attributes per-method kernel counters (internal/metrics) so comparisons
// against D-Tucker are apples to apples.
package baselines
