// Package baselines_test exercises all baseline Tucker methods end to end
// on shared synthetic inputs, checking both individual correctness and the
// cross-method accuracy relationships the paper's evaluation relies on.
package baselines_test

import (
	"math/rand"
	"testing"

	"repro/internal/baselines/hosvd"
	"repro/internal/baselines/mach"
	"repro/internal/baselines/rtd"
	"repro/internal/baselines/tuckerals"
	"repro/internal/baselines/tuckersketch"
	"repro/internal/mat"
	"repro/internal/tensor"
)

func lowRankTensor(rng *rand.Rand, noise float64, r int, shape ...int) *tensor.Dense {
	ranks := make([]int, len(shape))
	for i := range ranks {
		ranks[i] = r
	}
	x := tensor.RandN(rng, ranks...)
	for n, s := range shape {
		x = x.ModeProduct(mat.RandOrthonormal(s, r, rng), n)
	}
	if noise > 0 {
		e := tensor.RandN(rng, shape...)
		e.ScaleInPlace(noise * x.Norm() / e.Norm())
		x.AddInPlace(e)
	}
	return x
}

func uniform(order, j int) []int {
	r := make([]int, order)
	for i := range r {
		r[i] = j
	}
	return r
}

func TestHOSVDExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0, 3, 12, 10, 8)
	m, err := hosvd.Decompose(x, hosvd.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if rel := m.RelError(x); rel > 1e-9 {
		t.Fatalf("HOSVD relative error %g on exact low-rank input", rel)
	}
}

func TestHOSVDFactorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 8, 7, 6)
	m, err := hosvd.Decompose(x, hosvd.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range m.Factors {
		if !mat.Gram(f).EqualApprox(mat.Identity(3), 1e-9) {
			t.Fatalf("HOSVD factor %d not orthonormal", n)
		}
	}
}

func TestHOSVDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 5, 5, 5)
	if _, err := hosvd.Decompose(x, hosvd.Options{Ranks: []int{3, 3}}); err == nil {
		t.Fatal("wrong rank count accepted")
	}
	if _, err := hosvd.Decompose(x, hosvd.Options{Ranks: []int{3, 6, 3}}); err == nil {
		t.Fatal("rank above dimensionality accepted")
	}
}

func TestTuckerALSExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := lowRankTensor(rng, 0, 4, 15, 12, 10)
	res, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: uniform(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RelError(x); rel > 1e-9 {
		t.Fatalf("Tucker-ALS relative error %g", rel)
	}
	if res.Fit < 1-1e-9 {
		t.Fatalf("Fit = %g", res.Fit)
	}
}

func TestTuckerALSImprovesOnHOSVD(t *testing.T) {
	// HOOI refines the HOSVD initialization; its error can never be worse.
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandN(rng, 14, 12, 10) // full-rank: room to improve
	h, err := hosvd.Decompose(x, hosvd.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if a.RelError(x) > h.RelError(x)+1e-9 {
		t.Fatalf("HOOI (%g) worse than HOSVD (%g)", a.RelError(x), h.RelError(x))
	}
}

func TestTuckerALSRandomInit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankTensor(rng, 0.05, 3, 12, 10, 8)
	res, err := tuckerals.Decompose(x, tuckerals.Options{
		Ranks: uniform(3, 3), Init: tuckerals.InitRandom, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RelError(x); rel > 0.15 {
		t.Fatalf("random-init ALS relative error %g", rel)
	}
}

func TestTuckerALSMaxIters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 10, 10, 10)
	res, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: uniform(3, 2), MaxIters: 3, Tol: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters > 3 {
		t.Fatalf("Iters = %d", res.Iters)
	}
}

func TestTuckerALSFitMatchesExactError(t *testing.T) {
	// For HOOI the core-norm fit identity is exact.
	rng := rand.New(rand.NewSource(8))
	x := lowRankTensor(rng, 0.2, 3, 12, 11, 10)
	res, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	exact := res.RelError(x)
	if d := exact - (1 - res.Fit); d > 1e-9 || d < -1e-9 {
		t.Fatalf("fit identity violated: exact %g, estimate %g", exact, 1-res.Fit)
	}
}

func TestRTDExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := lowRankTensor(rng, 0, 3, 14, 12, 10)
	res, err := rtd.Decompose(x, rtd.Options{Ranks: uniform(3, 3), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RelError(x); rel > 1e-8 {
		t.Fatalf("RTD relative error %g on exact low-rank input", rel)
	}
}

func TestRTDNoWorseThanALSByMuch(t *testing.T) {
	// One-pass RTD should be in the same error ballpark on benign noisy
	// low-rank input (it has no refinement, so allow generous slack).
	rng := rand.New(rand.NewSource(10))
	x := lowRankTensor(rng, 0.1, 3, 16, 14, 12)
	r, err := rtd.Decompose(x, rtd.Options{Ranks: uniform(3, 3), Seed: 3, PowerIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if r.RelError(x) > 2*a.RelError(x)+0.05 {
		t.Fatalf("RTD error %g vs ALS %g", r.RelError(x), a.RelError(x))
	}
}

func TestRTDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandN(rng, 5, 5)
	if _, err := rtd.Decompose(x, rtd.Options{Ranks: []int{9, 2}}); err == nil {
		t.Fatal("rank above dimensionality accepted")
	}
}

func TestMACHFullRateMatchesALS(t *testing.T) {
	// Sampling at rate 1 keeps everything: MACH degenerates to sparse ALS
	// on the exact tensor and must reach the same error as dense ALS.
	rng := rand.New(rand.NewSource(12))
	x := lowRankTensor(rng, 0.05, 3, 10, 9, 8)
	m, err := mach.Decompose(x, mach.Options{Ranks: uniform(3, 3), SampleRate: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tuckerals.Decompose(x, tuckerals.Options{Ranks: uniform(3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if m.RelError(x) > a.RelError(x)+1e-6 {
		t.Fatalf("rate-1 MACH error %g vs ALS %g", m.RelError(x), a.RelError(x))
	}
	if m.NNZ != x.Len() {
		t.Fatalf("rate-1 NNZ = %d, want %d", m.NNZ, x.Len())
	}
}

func TestMACHSampledStillRecoversStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := lowRankTensor(rng, 0.02, 3, 20, 18, 16)
	m, err := mach.Decompose(x, mach.Options{Ranks: uniform(3, 3), SampleRate: 0.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// At 40% sampling the rescaled sample carries elementwise noise of
	// magnitude √((1−p)/p) ≈ 1.2× the signal, so recovery is coarse on a
	// tensor this small; it must still clearly beat the trivial zero model
	// (error 1.0).
	if rel := m.RelError(x); rel > 0.7 {
		t.Fatalf("MACH at 40%% sampling has error %g", rel)
	}
}

func TestMACHSamplingDegradesAccuracy(t *testing.T) {
	// The accuracy gap at low sampling rates is the paper's argument
	// against MACH: error at 5% sampling must exceed error at 100%.
	rng := rand.New(rand.NewSource(14))
	x := lowRankTensor(rng, 0.05, 3, 18, 16, 14)
	lo, err := mach.Decompose(x, mach.Options{Ranks: uniform(3, 3), SampleRate: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := mach.Decompose(x, mach.Options{Ranks: uniform(3, 3), SampleRate: 1.0, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lo.RelError(x) <= hi.RelError(x) {
		t.Fatalf("5%% sampling (%g) not worse than 100%% (%g)", lo.RelError(x), hi.RelError(x))
	}
}

func TestMACHValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := tensor.RandN(rng, 5, 5, 5)
	if _, err := mach.Decompose(x, mach.Options{Ranks: uniform(3, 3), SampleRate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestTuckerTSRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := lowRankTensor(rng, 0.01, 2, 14, 12, 10)
	res, err := tuckersketch.Decompose(x, tuckersketch.TS, tuckersketch.Options{
		Ranks: uniform(3, 2), Seed: 6, MaxIters: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RelError(x); rel > 0.25 {
		t.Fatalf("Tucker-ts relative error %g", rel)
	}
}

func TestTuckerTTMTSRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := lowRankTensor(rng, 0.01, 2, 14, 12, 10)
	res, err := tuckersketch.Decompose(x, tuckersketch.TTMTS, tuckersketch.Options{
		Ranks: uniform(3, 2), Seed: 6, MaxIters: 15, K1: 256, K2: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RelError(x); rel > 0.3 {
		t.Fatalf("Tucker-ttmts relative error %g", rel)
	}
}

func TestTuckerSketchLargerSketchHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	x := lowRankTensor(rng, 0.05, 2, 16, 14, 12)
	small, err := tuckersketch.Decompose(x, tuckersketch.TS, tuckersketch.Options{
		Ranks: uniform(3, 2), Seed: 7, K1: 8, K2: 16, MaxIters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := tuckersketch.Decompose(x, tuckersketch.TS, tuckersketch.Options{
		Ranks: uniform(3, 2), Seed: 7, K1: 512, K2: 1024, MaxIters: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.RelError(x) > small.RelError(x)+0.02 {
		t.Fatalf("bigger sketch (%g) worse than tiny sketch (%g)", big.RelError(x), small.RelError(x))
	}
}

func TestTuckerSketchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x := tensor.RandN(rng, 5, 5, 5)
	if _, err := tuckersketch.Decompose(x, tuckersketch.TS, tuckersketch.Options{Ranks: []int{3}}); err == nil {
		t.Fatal("wrong rank count accepted")
	}
}

func TestTuckerSketchAlgorithmString(t *testing.T) {
	if tuckersketch.TS.String() != "tucker-ts" || tuckersketch.TTMTS.String() != "tucker-ttmts" {
		t.Fatal("Algorithm String() wrong")
	}
}

func TestTuckerSketchOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := lowRankTensor(rng, 0.02, 2, 8, 7, 6, 5)
	res, err := tuckersketch.Decompose(x, tuckersketch.TTMTS, tuckersketch.Options{
		Ranks: uniform(4, 2), Seed: 8, MaxIters: 12, K1: 256, K2: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.RelError(x); rel > 0.35 {
		t.Fatalf("order-4 ttmts relative error %g", rel)
	}
}
