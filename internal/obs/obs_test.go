package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// decodeLines parses a JSONL buffer into one map per line.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	return lines
}

// TestEventSchema pins the JSONL event contract: every emitted event line
// carries ts/level/msg plus the stable event, request_id, and outcome keys;
// optional fields appear exactly when set; diagnostics carry no "event" key.
func TestEventSchema(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, FormatJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{
		Event:     "job_finish",
		RequestID: "req-1",
		JobID:     "j-000001",
		Tenant:    "prod",
		Lane:      "batch",
		Outcome:   "done",
		Cache:     "miss",
		QueueWait: 1500 * time.Microsecond,
		RunTime:   2 * time.Millisecond,
		Profile:   "fp-abc",
	})
	l.Emit(Event{Event: "admission", RequestID: "req-2", Outcome: "shed_queue_full"})
	l.Infof("drain: %d jobs", 3)

	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Event lines: the stable schema keys must all be present.
	for _, m := range lines[:2] {
		for _, key := range []string{"time", "level", "msg", "event", "request_id", "outcome"} {
			if _, ok := m[key]; !ok {
				t.Errorf("event line %v missing key %q", m, key)
			}
		}
		if m["request_id"] == "" || m["outcome"] == "" {
			t.Errorf("event line %v has empty request_id or outcome", m)
		}
	}
	first := lines[0]
	if first["event"] != "job_finish" || first["msg"] != "job_finish" {
		t.Errorf("event/msg = %v/%v, want job_finish", first["event"], first["msg"])
	}
	if first["queue_wait_ms"] != 1.5 || first["run_time_ms"] != 2.0 {
		t.Errorf("durations = %v / %v, want 1.5 / 2", first["queue_wait_ms"], first["run_time_ms"])
	}
	if first["cache"] != "miss" || first["profile"] != "fp-abc" {
		t.Errorf("cache/profile = %v/%v", first["cache"], first["profile"])
	}
	// Unset optional fields must be absent, not empty.
	if _, ok := lines[1]["job_id"]; ok {
		t.Errorf("unset job_id leaked into %v", lines[1])
	}
	// The diagnostic line must not look like an event.
	if _, ok := lines[2]["event"]; ok {
		t.Errorf("diagnostic line %v carries an event key", lines[2])
	}
	if lines[2]["msg"] != "drain: 3 jobs" {
		t.Errorf("diagnostic msg = %v", lines[2]["msg"])
	}
}

// TestLevelGate proves the level filter drops events and diagnostics below
// the configured level.
func TestLevelGate(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, FormatJSON, slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{Event: "admission", RequestID: "r", Outcome: "accept"}) // info: dropped
	l.Infof("quiet")                                                     // dropped
	l.Emit(Event{Level: slog.LevelWarn, Event: "job_finish", RequestID: "r", Outcome: "failed"})
	l.Errorf("boom")
	if lines := decodeLines(t, &buf); len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (info filtered): %s", len(lines), buf.String())
	}
}

// TestTextFormat smoke-checks the human-readable handler.
func TestTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l, err := New(&buf, FormatText, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{Event: "admission", RequestID: "rid-9", Outcome: "accept", Tenant: "t"})
	out := buf.String()
	for _, want := range []string{"event=admission", "request_id=rid-9", "outcome=accept", "tenant=t"} {
		if !strings.Contains(out, want) {
			t.Errorf("text line %q missing %q", out, want)
		}
	}
	if _, err := New(&buf, "yaml", slog.LevelInfo); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

// TestDisabledPathsAllocationFree is the cost contract: a nil logger, a
// level-gated emit on an enabled logger, and a nil recorder must all
// allocate nothing — the serving hot paths call these unconditionally.
func TestDisabledPathsAllocationFree(t *testing.T) {
	var nilLogger *Logger
	ev := Event{Event: "admission", RequestID: "r", JobID: "j", Outcome: "accept"}
	if n := testing.AllocsPerRun(100, func() { nilLogger.Emit(ev) }); n != 0 {
		t.Errorf("nil Logger.Emit allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { nilLogger.Infof("x") }); n != 0 {
		t.Errorf("nil Logger.Infof allocates %v per call, want 0", n)
	}

	var buf bytes.Buffer
	gated, err := New(&buf, FormatJSON, slog.LevelError)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() { gated.Emit(ev) }); n != 0 {
		t.Errorf("level-gated Emit allocates %v per call, want 0", n)
	}
	if buf.Len() != 0 {
		t.Errorf("gated logger wrote %q", buf.String())
	}

	var nilRec *Recorder
	sum := RequestSummary{RequestID: "r", Route: "POST /v1/decompose", Status: 202, Outcome: "ok"}
	if n := testing.AllocsPerRun(100, func() { nilRec.Record(sum) }); n != 0 {
		t.Errorf("nil Recorder.Record allocates %v per call, want 0", n)
	}
}
