package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sync/atomic"
)

// HeaderRequestID is the request-correlation header: accepted on every
// request, generated when absent, and echoed on every response (including
// errors and shed 429s) so one ID ties the client call, the event log, the
// job record, and the flight recorder together.
const HeaderRequestID = "X-Request-ID"

// headerTraceparent is the W3C Trace Context header. When a request carries
// one (and no X-Request-ID), its trace-id becomes the request ID, so a
// caller already inside a distributed trace keeps its correlation key.
const headerTraceparent = "Traceparent"

// ridFallback seeds request IDs when the system's entropy source fails —
// still unique within the process, which is all correlation needs.
var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// FromHTTP resolves the request's correlation ID: a sanitized X-Request-ID
// header wins, then the trace-id of a valid W3C traceparent header, then a
// freshly generated ID. generated reports whether the ID was minted here
// (no usable client-supplied identity).
func FromHTTP(r *http.Request) (id string, generated bool) {
	if id := SanitizeID(r.Header.Get(HeaderRequestID)); id != "" {
		return id, false
	}
	if tid, ok := ParseTraceparent(r.Header.Get(headerTraceparent)); ok {
		return tid, false
	}
	return NewRequestID(), true
}

// SanitizeID bounds and validates a client-supplied request ID: at most 128
// characters of [0-9A-Za-z._-]. Anything else returns "" — an unbounded or
// log-injectable attacker-chosen ID would otherwise flow verbatim into
// every log line and response header.
func SanitizeID(s string) string {
	if s == "" || len(s) > 128 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}

// ParseTraceparent extracts the trace-id from a W3C traceparent header
// value: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". It
// accepts future versions (any 2-hex version except the reserved "ff") and
// rejects the all-zero trace-id, per the Trace Context spec.
func ParseTraceparent(v string) (traceID string, ok bool) {
	// version(2) - traceid(32) - parentid(16) - flags(2)
	if len(v) < 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return "", false
	}
	if !isLowerHex(v[:2]) || v[:2] == "ff" {
		return "", false
	}
	tid := v[3:35]
	if !isLowerHex(tid) || tid == "00000000000000000000000000000000" {
		return "", false
	}
	if !isLowerHex(v[36:52]) || !isLowerHex(v[53:55]) {
		return "", false
	}
	return tid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
