// Package obs is the request-scoped observability layer of the serving
// stack: a structured event logger over log/slog, request-ID generation and
// propagation (X-Request-ID and W3C traceparent), and a flight recorder of
// recent request summaries.
//
// The package follows the cost discipline of internal/metrics and
// internal/trace: a nil *Logger and a nil *Recorder are valid, every method
// on them is an allocation-free no-op, and an enabled logger pays for
// attribute construction only after the level gate passes. This is asserted
// by AllocsPerRun tests.
//
// # Events vs diagnostics
//
// Emit writes one schema'd event line: a fixed vocabulary of keys (event,
// request_id, job_id, tenant, lane, outcome, queue_wait_ms, run_time_ms,
// cache, profile, err, ...) on top of slog's ts/level/msg. Every event
// carries a non-empty request_id and outcome — the schema contract tests
// and dashboards rely on. Infof/Warnf/Errorf/Debugf are free-form
// diagnostics (startup lines, drain summaries); they never carry an "event"
// key, so log consumers can split the two streams with one filter.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"
)

// Log formats accepted by New (and the dtuckerd -log-format flag).
const (
	FormatText = "text"
	FormatJSON = "json"
)

// Event is one structured log event. Zero-valued fields are omitted from
// the output except RequestID and Outcome, which are always written — the
// stable part of the schema every consumer can key on.
type Event struct {
	// Level defaults to slog.LevelInfo when zero.
	Level slog.Level
	// Event names the event type: "admission", "job_start", "job_finish",
	// "flight_recorder", ... It doubles as the slog message.
	Event     string
	RequestID string
	JobID     string
	Tenant    string
	Lane      string
	// Outcome is the event's result: "accept", "cache_hit", "coalesce",
	// "shed_queue_full", "shed_tenant_quota", "shed_draining", "running",
	// "done", "failed", "cancelled", ...
	Outcome string
	// Leader is the leader job a coalesced follower attached to.
	Leader string
	// Cache is the result provenance of a finished job: "hit", "miss", or
	// "coalesced".
	Cache string
	// QueueWait and RunTime are the job's admission→dispatch and
	// dispatch→finish durations, logged in milliseconds.
	QueueWait time.Duration
	RunTime   time.Duration
	// Profile is the kernel-profile fingerprint the job resolves against.
	Profile string
	// Err is the error kind/message of a failed outcome.
	Err string
	// Route and Status describe the HTTP surface of flight-recorder dumps.
	Route  string
	Status int
	// Section labels which flight-recorder bucket a dumped entry came from
	// ("recent", "slowest", "last_error", "last_shed").
	Section string
}

// Logger writes structured JSONL or logfmt-style text lines. A nil *Logger
// is valid: every method is an allocation-free no-op. Create with New.
type Logger struct {
	sl *slog.Logger
}

// New returns a Logger writing to w in the given format (FormatText or
// FormatJSON), dropping records below level.
func New(w io.Writer, format string, level slog.Level) (*Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case FormatJSON:
		h = slog.NewJSONHandler(w, opts)
	case FormatText, "":
		h = slog.NewTextHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s or %s)", format, FormatText, FormatJSON)
	}
	return &Logger{sl: slog.New(h)}, nil
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// enabled is the common gate: false for a nil logger or a filtered level,
// checked before any attribute is built so disabled paths stay
// allocation-free.
func (l *Logger) enabled(level slog.Level) bool {
	return l != nil && l.sl.Enabled(context.Background(), level)
}

// Emit writes one structured event line. Every emitted event carries the
// request_id and outcome keys; other fields appear only when set.
func (l *Logger) Emit(e Event) {
	if !l.enabled(e.Level) {
		return
	}
	attrs := make([]slog.Attr, 0, 16)
	attrs = append(attrs,
		slog.String("event", e.Event),
		slog.String("request_id", e.RequestID),
		slog.String("outcome", e.Outcome),
	)
	if e.JobID != "" {
		attrs = append(attrs, slog.String("job_id", e.JobID))
	}
	if e.Tenant != "" {
		attrs = append(attrs, slog.String("tenant", e.Tenant))
	}
	if e.Lane != "" {
		attrs = append(attrs, slog.String("lane", e.Lane))
	}
	if e.Leader != "" {
		attrs = append(attrs, slog.String("leader", e.Leader))
	}
	if e.Cache != "" {
		attrs = append(attrs, slog.String("cache", e.Cache))
	}
	if e.QueueWait != 0 {
		attrs = append(attrs, slog.Float64("queue_wait_ms", durMs(e.QueueWait)))
	}
	if e.RunTime != 0 {
		attrs = append(attrs, slog.Float64("run_time_ms", durMs(e.RunTime)))
	}
	if e.Profile != "" {
		attrs = append(attrs, slog.String("profile", e.Profile))
	}
	if e.Err != "" {
		attrs = append(attrs, slog.String("err", e.Err))
	}
	if e.Route != "" {
		attrs = append(attrs, slog.String("route", e.Route))
	}
	if e.Status != 0 {
		attrs = append(attrs, slog.Int("status", e.Status))
	}
	if e.Section != "" {
		attrs = append(attrs, slog.String("section", e.Section))
	}
	l.sl.LogAttrs(context.Background(), e.Level, e.Event, attrs...)
}

func durMs(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// logf writes one free-form diagnostic line (no "event" key).
func (l *Logger) logf(level slog.Level, format string, args ...any) {
	if !l.enabled(level) {
		return
	}
	l.sl.Log(context.Background(), level, fmt.Sprintf(format, args...))
}

// Debugf, Infof, Warnf, and Errorf write free-form diagnostic lines at the
// corresponding level. On a nil logger they are allocation-free no-ops.
func (l *Logger) Debugf(format string, args ...any) { l.logf(slog.LevelDebug, format, args...) }
func (l *Logger) Infof(format string, args ...any)  { l.logf(slog.LevelInfo, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.logf(slog.LevelWarn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.logf(slog.LevelError, format, args...) }
