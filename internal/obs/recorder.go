package obs

import (
	"sort"
	"sync"
	"time"
)

// RequestSummary is one finished HTTP request as the flight recorder keeps
// it: identity, route, status, and latency — enough to correlate a bad
// quantile in a load report back to the exact request and its log events.
type RequestSummary struct {
	RequestID string `json:"request_id"`
	// Route is the matched mux pattern ("POST /v1/decompose"), so exemplars
	// group by endpoint shape, not by concrete job IDs in the path.
	Route   string `json:"route"`
	Status  int    `json:"status"`
	Tenant  string `json:"tenant,omitempty"`
	Lane    string `json:"lane,omitempty"`
	JobID   string `json:"job_id,omitempty"`
	Outcome string `json:"outcome"`
	// ErrClass is the WireError kind of an error response ("queue_full",
	// "invalid_input", ...), empty on success.
	ErrClass  string  `json:"error_class,omitempty"`
	StartMs   int64   `json:"start_ms"` // Unix epoch milliseconds
	LatencyMs float64 `json:"latency_ms"`
}

// Recorder is a lock-cheap flight recorder: a fixed ring of the last N
// request summaries plus pinned exemplars — the slowest request per route,
// the most recent error per error class, and the last shed request. One
// mutex guards a Record that only copies into pre-allocated storage (map
// growth stops once every route and error class has been seen), so the
// steady-state per-request cost is a short critical section and no
// allocation. A nil *Recorder is valid and records nothing at zero cost.
type Recorder struct {
	mu    sync.Mutex
	ring  []RequestSummary
	next  int
	total uint64
	// Pinned exemplars.
	slowest  map[string]RequestSummary // by route
	lastErr  map[string]RequestSummary // by error class
	lastShed RequestSummary
	hasShed  bool
}

// NewRecorder returns a recorder keeping the last n requests (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{
		ring:    make([]RequestSummary, n),
		slowest: make(map[string]RequestSummary),
		lastErr: make(map[string]RequestSummary),
	}
}

// Record adds one finished request. Safe for concurrent use; a no-op on a
// nil recorder.
func (rec *Recorder) Record(s RequestSummary) {
	if rec == nil {
		return
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	rec.ring[rec.next] = s
	rec.next = (rec.next + 1) % len(rec.ring)
	rec.total++
	if prev, ok := rec.slowest[s.Route]; !ok || s.LatencyMs > prev.LatencyMs {
		rec.slowest[s.Route] = s
	}
	if s.ErrClass != "" {
		rec.lastErr[s.ErrClass] = s
	}
	if s.Outcome == "shed" || (len(s.Outcome) > 5 && s.Outcome[:5] == "shed_") {
		rec.lastShed = s
		rec.hasShed = true
	}
}

// Snapshot is the recorder's exported state: the retained requests (oldest
// first) and every pinned exemplar.
type Snapshot struct {
	// Total counts every request ever recorded; Capacity is the ring size.
	Total    uint64 `json:"total"`
	Capacity int    `json:"capacity"`
	// Recent holds the retained request summaries, oldest first.
	Recent []RequestSummary `json:"recent"`
	// SlowestByRoute pins the slowest request seen per route; LastErrorByClass
	// pins the most recent error response per error class; LastShed pins the
	// most recent load-shed request.
	SlowestByRoute   map[string]RequestSummary `json:"slowest_by_route"`
	LastErrorByClass map[string]RequestSummary `json:"last_error_by_class,omitempty"`
	LastShed         *RequestSummary           `json:"last_shed,omitempty"`
}

// Snapshot copies the recorder's state. Nil recorders return an empty
// snapshot with Capacity 0 (recorder disabled).
func (rec *Recorder) Snapshot() Snapshot {
	if rec == nil {
		return Snapshot{}
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	snap := Snapshot{
		Total:            rec.total,
		Capacity:         len(rec.ring),
		SlowestByRoute:   make(map[string]RequestSummary, len(rec.slowest)),
		LastErrorByClass: make(map[string]RequestSummary, len(rec.lastErr)),
	}
	n := int(rec.total)
	if n > len(rec.ring) {
		n = len(rec.ring)
	}
	snap.Recent = make([]RequestSummary, 0, n)
	for i := 0; i < n; i++ {
		// Oldest retained entry first: walk forward from next-n.
		snap.Recent = append(snap.Recent, rec.ring[((rec.next-n+i)%len(rec.ring)+len(rec.ring))%len(rec.ring)])
	}
	for k, v := range rec.slowest {
		snap.SlowestByRoute[k] = v
	}
	for k, v := range rec.lastErr {
		snap.LastErrorByClass[k] = v
	}
	if rec.hasShed {
		shed := rec.lastShed
		snap.LastShed = &shed
	}
	return snap
}

// DumpTo writes the recorder's state to the event log as one
// "flight_recorder" event per entry (sections: recent, slowest, last_error,
// last_shed), the SIGQUIT post-mortem path. No-op when either side is nil.
func (rec *Recorder) DumpTo(l *Logger) {
	if rec == nil || l == nil {
		return
	}
	snap := rec.Snapshot()
	l.Infof("flight recorder: %d recorded, dumping %d recent + %d slowest + %d error exemplars",
		snap.Total, len(snap.Recent), len(snap.SlowestByRoute), len(snap.LastErrorByClass))
	emit := func(section string, s RequestSummary) {
		l.Emit(Event{
			Event:     "flight_recorder",
			Section:   section,
			RequestID: s.RequestID,
			JobID:     s.JobID,
			Tenant:    s.Tenant,
			Lane:      s.Lane,
			Outcome:   s.Outcome,
			Err:       s.ErrClass,
			Route:     s.Route,
			Status:    s.Status,
			RunTime:   msDur(s.LatencyMs),
		})
	}
	for _, s := range snap.Recent {
		emit("recent", s)
	}
	for _, route := range sortedKeys(snap.SlowestByRoute) {
		emit("slowest", snap.SlowestByRoute[route])
	}
	for _, class := range sortedKeys(snap.LastErrorByClass) {
		emit("last_error", snap.LastErrorByClass[class])
	}
	if snap.LastShed != nil {
		emit("last_shed", *snap.LastShed)
	}
}

func msDur(ms float64) time.Duration { return time.Duration(ms * float64(time.Millisecond)) }

func sortedKeys(m map[string]RequestSummary) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
