package workload

import (
	"math"
	"testing"

	"repro/internal/baselines/hosvd"
	"repro/internal/core"
)

func TestVideoLikeShapeAndDeterminism(t *testing.T) {
	a := VideoLike(32, 24, 16, 7)
	if s := a.X.Shape(); s[0] != 32 || s[1] != 24 || s[2] != 16 {
		t.Fatalf("shape %v", s)
	}
	b := VideoLike(32, 24, 16, 7)
	if !a.X.EqualApprox(b.X, 0) {
		t.Fatal("same seed produced different video tensors")
	}
	c := VideoLike(32, 24, 16, 8)
	if a.X.EqualApprox(c.X, 1e-9) {
		t.Fatal("different seeds produced identical video tensors")
	}
}

func TestVideoLikeIsCompressible(t *testing.T) {
	// The whole point of the generator: a rank-10 Tucker model must
	// explain most of the variance (video-like structure), unlike white
	// noise where it would explain almost nothing.
	ds := VideoLike(48, 36, 32, 7)
	m, err := hosvd.Decompose(ds.X, hosvd.Options{Ranks: []int{10, 10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := m.RelError(ds.X); rel > 0.2 {
		t.Fatalf("video-like tensor not low-rank: rank-10 error %g", rel)
	}
}

func TestStockLikeCompressible(t *testing.T) {
	ds := StockLike(60, 12, 80, 7)
	m, err := hosvd.Decompose(ds.X, hosvd.Options{Ranks: []int{8, 8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	// The generator uses 8 latent factors, so rank 8 captures the signal;
	// only the 10% observation noise should remain.
	if rel := m.RelError(ds.X); rel > 0.3 {
		t.Fatalf("stock-like tensor not rank-8 compressible: error %g", rel)
	}
}

func TestMusicLikeNonNegativeBeforeNoise(t *testing.T) {
	ds := MusicLike(20, 40, 16, 7)
	// log1p of a non-negative mixture plus tiny noise: values must sit
	// mostly above a small negative bound.
	neg := 0
	for _, v := range ds.X.Data() {
		if v < -0.2 {
			neg++
		}
	}
	if frac := float64(neg) / float64(ds.X.Len()); frac > 0.01 {
		t.Fatalf("%f%% of spectrogram strongly negative", 100*frac)
	}
}

func TestClimateLikeOrder4Compressible(t *testing.T) {
	ds := ClimateLike(18, 12, 6, 24, 7)
	if ds.X.Order() != 4 {
		t.Fatalf("order %d", ds.X.Order())
	}
	m, err := hosvd.Decompose(ds.X, hosvd.Options{Ranks: []int{4, 4, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := m.RelError(ds.X); rel > 0.2 {
		t.Fatalf("climate-like tensor not rank-4 compressible: error %g", rel)
	}
}

func TestLowRankNoiseErrorFloor(t *testing.T) {
	// With noise σ, the best rank-r model's error should land near
	// σ/√(1+σ²); D-Tucker at the true rank must reach that floor.
	ds := LowRankNoise([]int{24, 20, 16}, 4, 0.2, 7)
	dec, err := core.Decompose(ds.X, core.Options{Config: core.Config{Ranks: []int{4, 4, 4}, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rel := dec.RelError(ds.X)
	floor := 0.2 / math.Sqrt(1+0.04)
	if rel > floor*1.3 {
		t.Fatalf("error %g far above noise floor %g", rel, floor)
	}
}

func TestLowRankNoiseZeroNoiseExact(t *testing.T) {
	ds := LowRankNoise([]int{15, 12, 10}, 3, 0, 7)
	dec, err := core.Decompose(ds.X, core.Options{Config: core.Config{Ranks: []int{3, 3, 3}, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(ds.X); rel > 1e-7 {
		t.Fatalf("noiseless low-rank tensor error %g", rel)
	}
}

func TestDimsString(t *testing.T) {
	ds := LowRankNoise([]int{3, 4, 5}, 2, 0, 1)
	if got := ds.Dims(); got != "3×4×5" {
		t.Fatalf("Dims = %q", got)
	}
}

func TestReflectBounds(t *testing.T) {
	for _, p := range []float64{-17.3, -1, 0, 0.5, 9.99, 10, 23.7, 119} {
		got := reflect(p, 10)
		if got < 0 || got >= 10 {
			t.Fatalf("reflect(%g, 10) = %g out of bounds", p, got)
		}
	}
	if reflect(3, 0) != 0 {
		t.Fatal("reflect with zero limit")
	}
}

func TestGeneratorsFiniteValues(t *testing.T) {
	for _, ds := range []Dataset{
		VideoLike(16, 12, 8, 1),
		StockLike(20, 8, 16, 2),
		MusicLike(10, 16, 8, 3),
		ClimateLike(8, 6, 4, 8, 4),
		LowRankNoise([]int{8, 8, 8}, 3, 0.5, 5),
	} {
		for i, v := range ds.X.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite value at %d", ds.Name, i)
			}
		}
		if ds.X.Norm() == 0 {
			t.Fatalf("%s: all-zero tensor", ds.Name)
		}
	}
}
