// Package workload generates the synthetic dense tensors used throughout
// the experiment suite. The original D-Tucker evaluation used real datasets
// (video, stock, hyperspectral, climate) that are not available offline;
// each generator here reproduces the corresponding *shape class* — two
// dominant leading modes, smooth low-rank structure, realistic noise — so
// the relative behaviour of the algorithms (who wins, by what factor,
// where accuracy degrades) is preserved. See DESIGN.md §3 for the
// substitution rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Dataset bundles a generated tensor with its provenance.
type Dataset struct {
	Name        string
	Description string
	X           *tensor.Dense
}

// Dims returns the tensor shape as a compact string, e.g. "256×192×64".
func (d Dataset) Dims() string {
	s := ""
	for i, v := range d.X.Shape() {
		if i > 0 {
			s += "×"
		}
		s += fmt.Sprint(v)
	}
	return s
}

// VideoLike generates an h×w×frames grayscale-video-style tensor: a smooth
// static background of Gaussian bumps, a global illumination drift, a few
// moving objects, and pixel noise. Mirrors the Boats/Walking video class
// (two large spatial modes, long smooth time mode).
func VideoLike(h, w, frames int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(h, w, frames)

	type bump struct{ cy, cx, sy, sx, amp float64 }
	bumps := make([]bump, 6)
	for i := range bumps {
		bumps[i] = bump{
			cy:  rng.Float64() * float64(h),
			cx:  rng.Float64() * float64(w),
			sy:  (0.08 + 0.22*rng.Float64()) * float64(h),
			sx:  (0.08 + 0.22*rng.Float64()) * float64(w),
			amp: 0.4 + rng.Float64(),
		}
	}
	bg := make([]float64, h*w)
	for j := 0; j < w; j++ {
		for i := 0; i < h; i++ {
			v := 0.2
			for _, b := range bumps {
				dy := (float64(i) - b.cy) / b.sy
				dx := (float64(j) - b.cx) / b.sx
				v += b.amp * math.Exp(-(dy*dy+dx*dx)/2)
			}
			bg[j*h+i] = v
		}
	}

	type object struct{ y0, x0, vy, vx, size, amp float64 }
	objs := make([]object, 3)
	for i := range objs {
		objs[i] = object{
			y0:   rng.Float64() * float64(h),
			x0:   rng.Float64() * float64(w),
			vy:   (rng.Float64() - 0.5) * float64(h) / float64(frames) * 2,
			vx:   (rng.Float64() - 0.5) * float64(w) / float64(frames) * 2,
			size: (0.02 + 0.05*rng.Float64()) * float64(min(h, w)),
			amp:  0.8 + rng.Float64(),
		}
	}

	data := x.Data()
	area := h * w
	for t := 0; t < frames; t++ {
		illum := 1 + 0.15*math.Sin(2*math.Pi*float64(t)/float64(frames)*3)
		frame := data[t*area : (t+1)*area]
		copy(frame, bg)
		for i := range frame {
			frame[i] *= illum
		}
		for _, o := range objs {
			// Bounce the object around the frame.
			oy := reflect(o.y0+o.vy*float64(t), float64(h))
			ox := reflect(o.x0+o.vx*float64(t), float64(w))
			r := int(3 * o.size)
			for dj := -r; dj <= r; dj++ {
				j := int(ox) + dj
				if j < 0 || j >= w {
					continue
				}
				for di := -r; di <= r; di++ {
					i := int(oy) + di
					if i < 0 || i >= h {
						continue
					}
					d2 := float64(di*di+dj*dj) / (o.size * o.size)
					frame[j*h+i] += o.amp * math.Exp(-d2/2)
				}
			}
		}
		for i := range frame {
			frame[i] += 0.02 * rng.NormFloat64()
		}
	}
	return Dataset{
		Name:        "video",
		Description: "grayscale-video-like (height, width, time): smooth background + moving objects + pixel noise",
		X:           x,
	}
}

// reflect folds p into [0, limit) with mirror boundary conditions.
func reflect(p, limit float64) float64 {
	if limit <= 0 {
		return 0
	}
	period := 2 * limit
	p = math.Mod(p, period)
	if p < 0 {
		p += period
	}
	if p >= limit {
		p = period - p - 1e-9
	}
	return p
}

// StockLike generates a stocks×features×days tensor driven by a few latent
// market factors following random walks with regime shifts, per-stock
// loadings, and per-feature response weights — the Korea-stock dataset
// class (one large entity mode, small feature mode, long time mode).
func StockLike(stocks, features, days int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const nf = 8 // latent market factors

	// Latent factor paths: random walks with occasional regime jumps.
	paths := make([][]float64, nf)
	for k := range paths {
		p := make([]float64, days)
		v := rng.NormFloat64()
		for t := 0; t < days; t++ {
			v += 0.1 * rng.NormFloat64()
			if rng.Float64() < 2.0/float64(days) {
				v += 2 * rng.NormFloat64() // regime shift
			}
			p[t] = v
		}
		paths[k] = p
	}
	load := make([][]float64, stocks)
	for s := range load {
		load[s] = make([]float64, nf)
		for k := range load[s] {
			load[s][k] = rng.NormFloat64()
		}
	}
	resp := make([][]float64, features)
	for f := range resp {
		resp[f] = make([]float64, nf)
		for k := range resp[f] {
			resp[f][k] = rng.NormFloat64() * (0.5 + rng.Float64())
		}
	}

	x := tensor.New(stocks, features, days)
	data := x.Data()
	area := stocks * features
	for t := 0; t < days; t++ {
		slab := data[t*area : (t+1)*area]
		for f := 0; f < features; f++ {
			for s := 0; s < stocks; s++ {
				v := 0.0
				for k := 0; k < nf; k++ {
					v += load[s][k] * resp[f][k] * paths[k][t]
				}
				slab[f*stocks+s] = v + 0.1*rng.NormFloat64()
			}
		}
	}
	return Dataset{
		Name:        "stock",
		Description: "stock-market-like (stock, feature, day): latent factor walks with regime shifts + noise",
		X:           x,
	}
}

// MusicLike generates a songs×freqs×frames log-spectrogram-style tensor:
// each song is a stack of harmonics with amplitude envelopes — the FMA
// music dataset class (large song mode, large frequency mode, short time).
func MusicLike(songs, freqs, frames int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(songs, freqs, frames)
	data := x.Data()
	area := songs * freqs

	type voice struct{ f0, width, amp, decay float64 }
	songVoices := make([][]voice, songs)
	for s := range songVoices {
		nv := 2 + rng.Intn(3)
		vs := make([]voice, nv)
		for i := range vs {
			vs[i] = voice{
				f0:    (0.05 + 0.2*rng.Float64()) * float64(freqs),
				width: 1 + 2*rng.Float64(),
				amp:   0.5 + rng.Float64(),
				decay: 0.5 + 2*rng.Float64(),
			}
		}
		songVoices[s] = vs
	}
	for t := 0; t < frames; t++ {
		slab := data[t*area : (t+1)*area]
		tt := float64(t) / float64(frames)
		for f := 0; f < freqs; f++ {
			for s := 0; s < songs; s++ {
				v := 0.0
				for _, vo := range songVoices[s] {
					env := vo.amp * math.Exp(-vo.decay*tt)
					for harm := 1.0; harm <= 3; harm++ {
						d := (float64(f) - vo.f0*harm) / vo.width
						if d > -6 && d < 6 {
							v += env / harm * math.Exp(-d*d/2)
						}
					}
				}
				slab[f*songs+s] = math.Log1p(v) + 0.02*rng.NormFloat64()
			}
		}
	}
	return Dataset{
		Name:        "music",
		Description: "log-spectrogram-like (song, frequency, time): harmonic stacks with envelopes + noise",
		X:           x,
	}
}

// ClimateLike generates a lon×lat×alt×time 4-order tensor of smooth
// separable geophysical fields with a seasonal cycle — the Absorb aerosol
// dataset class (4 modes, smooth spatial structure).
func ClimateLike(lon, lat, alt, steps int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const nc = 4 // spatial components
	lonB := smoothBasis(lon, nc, rng)
	latB := smoothBasis(lat, nc, rng)
	altB := smoothBasis(alt, nc, rng)
	x := tensor.New(lon, lat, alt, steps)
	data := x.Data()
	p := 0
	for t := 0; t < steps; t++ {
		season := make([]float64, nc)
		for c := 0; c < nc; c++ {
			season[c] = 1 + 0.5*math.Sin(2*math.Pi*(float64(t)/float64(steps)*float64(c+1)+rngPhase(c)))
		}
		for a := 0; a < alt; a++ {
			for la := 0; la < lat; la++ {
				for lo := 0; lo < lon; lo++ {
					v := 0.0
					for c := 0; c < nc; c++ {
						v += season[c] * lonB[c][lo] * latB[c][la] * altB[c][a]
					}
					data[p] = v + 0.03*rng.NormFloat64()
					p++
				}
			}
		}
	}
	return Dataset{
		Name:        "climate",
		Description: "aerosol-absorption-like (lon, lat, alt, time): smooth separable fields with seasonal cycles + noise",
		X:           x,
	}
}

func rngPhase(c int) float64 { return float64(c) * 0.37 }

// smoothBasis returns nc smooth 1-D components over n points (random
// low-frequency Fourier mixtures).
func smoothBasis(n, nc int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, nc)
	for c := range out {
		b := make([]float64, n)
		for m := 1; m <= 3; m++ {
			amp := rng.NormFloat64() / float64(m)
			phase := rng.Float64() * 2 * math.Pi
			for i := 0; i < n; i++ {
				b[i] += amp * math.Sin(2*math.Pi*float64(m)*float64(i)/float64(n)+phase)
			}
		}
		out[c] = b
	}
	return out
}

// LowRankNoise generates an exactly rank-(r,…,r) Tucker tensor plus
// Gaussian noise at the given relative magnitude — the controlled input
// for scalability and noise-robustness experiments.
func LowRankNoise(shape []int, r int, noise float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ranks := make([]int, len(shape))
	for i := range ranks {
		ranks[i] = r
	}
	x := tensor.RandN(rng, ranks...)
	for n, s := range shape {
		x = x.ModeProduct(mat.RandOrthonormal(s, r, rng), n)
	}
	if noise > 0 {
		e := tensor.RandN(rng, shape...)
		e.ScaleInPlace(noise * x.Norm() / e.Norm())
		x.AddInPlace(e)
	}
	return Dataset{
		Name:        fmt.Sprintf("lowrank-r%d", r),
		Description: fmt.Sprintf("synthetic rank-%d Tucker tensor + %.0f%% noise", r, noise*100),
		X:           x,
	}
}
