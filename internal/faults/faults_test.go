package faults

import (
	"errors"
	"testing"

	"repro/internal/dterr"
)

// Test sites are registered once for the whole test binary.
var (
	siteA = NewSite("test.a")
	siteB = NewSite("test.b")
)

func TestDisarmedNeverFires(t *testing.T) {
	Reset()
	if siteA.Fire() || siteA.FireKey(0) {
		t.Fatal("disarmed site fired")
	}
	if err := siteA.Inject(); err != nil {
		t.Fatalf("disarmed Inject = %v", err)
	}
	if siteA.Hits() != 0 {
		t.Fatalf("disarmed site recorded %d hits", siteA.Hits())
	}
}

func TestSkipAndCount(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Skip: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, siteA.Fire())
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if siteA.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", siteA.Fired())
	}
	// A plan on one site must not leak into another.
	if siteB.Fire() {
		t.Fatal("unplanned site fired")
	}
}

func TestCountZeroTriggersOnce(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{}); err != nil {
		t.Fatal(err)
	}
	if !siteA.Fire() || siteA.Fire() {
		t.Fatal("Plan{} should trigger exactly once")
	}
}

func TestNegativeCountAlwaysTriggers(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Count: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !siteA.Fire() {
			t.Fatalf("hit %d did not trigger under Count=-1", i)
		}
	}
}

func TestKeyedPlan(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Keys: []int64{1, 3}}); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[int64]bool{0: false, 1: true, 2: false, 3: true, 4: false} {
		if got := siteA.FireKey(key); got != want {
			t.Fatalf("FireKey(%d) = %v, want %v", key, got, want)
		}
	}
	// Hit-ordered Fire never triggers a keyed plan.
	if siteA.Fire() {
		t.Fatal("Fire triggered a keyed plan")
	}
}

func TestSeededProbIsDeterministic(t *testing.T) {
	run := func() []bool {
		defer Reset()
		if err := Activate("test.a", Plan{Count: -1, Prob: 0.5, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		var seq []bool
		for i := 0; i < 32; i++ {
			seq = append(seq, siteA.Fire())
		}
		return seq
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; generator looks broken", fired, len(a))
	}
}

func TestInjectModes(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	err := siteA.Inject()
	if err == nil {
		t.Fatal("ModeError Inject returned nil")
	}
	if !errors.Is(err, dterr.ErrInjected) {
		t.Fatalf("injected error %v is not errors.Is(ErrInjected)", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "test.a" {
		t.Fatalf("injected error %v does not name the site", err)
	}

	Reset()
	if err := Activate("test.a", Plan{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	didPanic := func() (v any) {
		defer func() { v = recover() }()
		siteA.Inject()
		return nil
	}()
	pe, ok := didPanic.(*InjectedError)
	if !ok || pe.Site != "test.a" {
		t.Fatalf("ModePanic panicked with %v, want *InjectedError naming test.a", didPanic)
	}
}

func TestActivateUnknownSite(t *testing.T) {
	defer Reset()
	if err := Activate("no.such.site", Plan{}); err == nil {
		t.Fatal("Activate accepted an unknown site")
	}
}

func TestSitesListsRegistered(t *testing.T) {
	found := map[string]bool{}
	for _, n := range Sites() {
		found[n] = true
	}
	if !found["test.a"] || !found["test.b"] {
		t.Fatalf("Sites() = %v missing test sites", Sites())
	}
}

func TestResetRestoresDisarmed(t *testing.T) {
	if err := Activate("test.a", Plan{Count: -1}); err != nil {
		t.Fatal(err)
	}
	Reset()
	if siteA.Fire() {
		t.Fatal("site fired after Reset")
	}
}

// BenchmarkDisarmedFire documents the cost of a disabled hook: one atomic
// load, no allocation.
func BenchmarkDisarmedFire(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if siteA.Fire() {
			b.Fatal("fired")
		}
	}
}
