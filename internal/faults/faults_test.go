package faults

import (
	"errors"
	"testing"

	"repro/internal/dterr"
)

// Test sites are registered once for the whole test binary.
var (
	siteA = NewSite("test.a")
	siteB = NewSite("test.b")
)

func TestDisarmedNeverFires(t *testing.T) {
	Reset()
	if siteA.Fire() || siteA.FireKey(0) {
		t.Fatal("disarmed site fired")
	}
	if err := siteA.Inject(); err != nil {
		t.Fatalf("disarmed Inject = %v", err)
	}
	if siteA.Hits() != 0 {
		t.Fatalf("disarmed site recorded %d hits", siteA.Hits())
	}
}

func TestSkipAndCount(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Skip: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, siteA.Fire())
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if siteA.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", siteA.Fired())
	}
	// A plan on one site must not leak into another.
	if siteB.Fire() {
		t.Fatal("unplanned site fired")
	}
}

func TestCountZeroTriggersOnce(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{}); err != nil {
		t.Fatal(err)
	}
	if !siteA.Fire() || siteA.Fire() {
		t.Fatal("Plan{} should trigger exactly once")
	}
}

func TestNegativeCountAlwaysTriggers(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Count: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !siteA.Fire() {
			t.Fatalf("hit %d did not trigger under Count=-1", i)
		}
	}
}

func TestKeyedPlan(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Keys: []int64{1, 3}}); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[int64]bool{0: false, 1: true, 2: false, 3: true, 4: false} {
		if got := siteA.FireKey(key); got != want {
			t.Fatalf("FireKey(%d) = %v, want %v", key, got, want)
		}
	}
	// Hit-ordered Fire never triggers a keyed plan.
	if siteA.Fire() {
		t.Fatal("Fire triggered a keyed plan")
	}
}

func TestSeededProbIsDeterministic(t *testing.T) {
	run := func() []bool {
		defer Reset()
		if err := Activate("test.a", Plan{Count: -1, Prob: 0.5, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		var seq []bool
		for i := 0; i < 32; i++ {
			seq = append(seq, siteA.Fire())
		}
		return seq
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; generator looks broken", fired, len(a))
	}
}

func TestInjectModes(t *testing.T) {
	defer Reset()
	if err := Activate("test.a", Plan{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	err := siteA.Inject()
	if err == nil {
		t.Fatal("ModeError Inject returned nil")
	}
	if !errors.Is(err, dterr.ErrInjected) {
		t.Fatalf("injected error %v is not errors.Is(ErrInjected)", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "test.a" {
		t.Fatalf("injected error %v does not name the site", err)
	}

	Reset()
	if err := Activate("test.a", Plan{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	didPanic := func() (v any) {
		defer func() { v = recover() }()
		siteA.Inject()
		return nil
	}()
	pe, ok := didPanic.(*InjectedError)
	if !ok || pe.Site != "test.a" {
		t.Fatalf("ModePanic panicked with %v, want *InjectedError naming test.a", didPanic)
	}
}

func TestCrashModes(t *testing.T) {
	defer Reset()

	// Disarmed: free and nil.
	Reset()
	if ce := siteA.Crash(); ce != nil {
		t.Fatalf("disarmed Crash = %v", ce)
	}

	// ModeError (the in-process simulation): a *CrashError carrying the
	// plan's torn-byte budget, errors.Is-able against ErrInjected.
	if err := Activate("test.a", Plan{Skip: 1, TornBytes: 9}); err != nil {
		t.Fatal(err)
	}
	if ce := siteA.Crash(); ce != nil {
		t.Fatalf("skipped hit crashed: %v", ce)
	}
	ce := siteA.Crash()
	if ce == nil {
		t.Fatal("armed Crash did not trigger")
	}
	if ce.Site != "test.a" || ce.Torn != 9 {
		t.Fatalf("CrashError = %+v, want site test.a torn 9", ce)
	}
	if !errors.Is(ce, dterr.ErrInjected) {
		t.Fatalf("crash error %v is not errors.Is(ErrInjected)", ce)
	}

	// ModeExit goes through the exit seam instead of returning.
	Reset()
	if err := Activate("test.a", Plan{Mode: ModeExit}); err != nil {
		t.Fatal(err)
	}
	exited := -1
	restore := SetExitFunc(func(code int) { exited = code })
	defer restore()
	ce = siteA.Crash()
	if exited != CrashExitCode {
		t.Fatalf("ModeExit exited with %d, want %d", exited, CrashExitCode)
	}
	// The stub exit returns, so the simulated-crash error still comes back —
	// matching what the caller would never observe under a real os.Exit.
	if ce == nil {
		t.Fatal("ModeExit with stubbed exit returned nil CrashError")
	}
}

func TestActivateSpec(t *testing.T) {
	defer Reset()
	spec := "test.a:skip=2,count=1,torn=16,mode=exit; test.b:mode=panic"
	if err := ActivateSpec(spec); err != nil {
		t.Fatal(err)
	}
	restore := SetExitFunc(func(int) {})
	defer restore()
	if ce := siteA.Crash(); ce != nil {
		t.Fatalf("hit 1 crashed: %v", ce)
	}
	if ce := siteA.Crash(); ce != nil {
		t.Fatalf("hit 2 crashed: %v", ce)
	}
	ce := siteA.Crash()
	if ce == nil || ce.Torn != 16 {
		t.Fatalf("hit 3: CrashError = %+v, want torn 16", ce)
	}
	if ce := siteA.Crash(); ce != nil {
		t.Fatalf("count=1 exhausted plan crashed again: %v", ce)
	}
	didPanic := func() (v any) {
		defer func() { v = recover() }()
		siteB.Inject()
		return nil
	}()
	if _, ok := didPanic.(*InjectedError); !ok {
		t.Fatalf("test.b mode=panic: Inject panicked with %v", didPanic)
	}

	for _, bad := range []string{
		"no.such.site:skip=1",
		"test.a:skip",
		"test.a:skip=x",
		"test.a:mode=vanish",
		"test.a:zap=1",
	} {
		Reset()
		if err := ActivateSpec(bad); err == nil {
			t.Fatalf("ActivateSpec(%q) accepted a malformed spec", bad)
		}
	}
}

func TestActivateUnknownSite(t *testing.T) {
	defer Reset()
	if err := Activate("no.such.site", Plan{}); err == nil {
		t.Fatal("Activate accepted an unknown site")
	}
}

func TestSitesListsRegistered(t *testing.T) {
	found := map[string]bool{}
	for _, n := range Sites() {
		found[n] = true
	}
	if !found["test.a"] || !found["test.b"] {
		t.Fatalf("Sites() = %v missing test sites", Sites())
	}
}

func TestResetRestoresDisarmed(t *testing.T) {
	if err := Activate("test.a", Plan{Count: -1}); err != nil {
		t.Fatal(err)
	}
	Reset()
	if siteA.Fire() {
		t.Fatal("site fired after Reset")
	}
}

// BenchmarkDisarmedFire documents the cost of a disabled hook: one atomic
// load, no allocation.
func BenchmarkDisarmedFire(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if siteA.Fire() {
			b.Fatal("fired")
		}
	}
}
