// Package faults is a deterministic fault-injection harness for the
// execution layer. Packages declare named hook points (sites) at package
// init; tests arm a site with a Plan describing exactly which hits should
// trigger, run the code under test, and assert that the injected failure
// ends in a clean error, a completed fallback, or a prompt cancellation —
// never a process crash or silently corrupt output.
//
// # Cost when disabled
//
// The harness is disarmed by default and in production: every Fire/FireKey/
// Inject call is then a single atomic load followed by an immediate return —
// no locks, no allocation, no branch the compiler cannot predict. Arming
// happens only when a test calls Activate.
//
// # Determinism
//
// Two trigger mechanisms exist:
//
//   - Hit-ordered plans (Skip/Count, optionally Prob+Seed): the site's global
//     hit counter decides. Deterministic for serial execution; under a
//     parallel pool the hit order is scheduling-dependent, so tests that
//     need exact reproducibility across worker counts should either run with
//     Workers=1 or use a keyed site.
//   - Keyed plans (Keys): the call site passes a stable identity — a slice
//     index, a task id — and the plan triggers iff that key is listed,
//     independent of scheduling. This is how the randsvd fallback test
//     injects a breakdown into the same slices for every Workers value.
//
// Sites are process-global (registered once, from package init), matching
// how the instrumented packages are linked; Reset restores the fully
// disarmed state between tests.
package faults

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dterr"
)

// Mode selects what an Inject call does when its site triggers.
type Mode int

const (
	// ModeError makes Inject return an *InjectedError.
	ModeError Mode = iota
	// ModePanic makes Inject panic with an *InjectedError — simulating a
	// worker panic, to prove containment boundaries hold.
	ModePanic
	// ModeExit makes a Crash call terminate the process via the package exit
	// function (os.Exit(7) by default; see SetExitFunc) — a real kill, for
	// subprocess crash-recovery tests. In-process tests leave the mode at
	// ModeError, where Crash returns a *CrashError the durability layer
	// converts into a simulated crash (freeze all writes, fail the
	// operation).
	ModeExit
)

// String returns the mode's presentation name.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeExit:
		return "exit"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// CrashExitCode is what ModeExit passes to the exit function, so harnesses
// can tell an injected crash from every organic exit path.
const CrashExitCode = 7

// exitFunc is what ModeExit calls; swapped by SetExitFunc in tests.
var exitFunc atomic.Pointer[func(int)]

func init() {
	f := os.Exit
	exitFunc.Store(&f)
}

// SetExitFunc replaces the function ModeExit crashes through (default
// os.Exit) and returns a restore func. In-process tests that sweep exit-mode
// plans install a recording stub; the dtuckerd e2e harness keeps the real
// os.Exit so the daemon genuinely dies mid-write.
func SetExitFunc(f func(int)) (restore func()) {
	prev := exitFunc.Swap(&f)
	return func() { exitFunc.Store(prev) }
}

// Plan describes which hits of a site trigger the fault.
type Plan struct {
	// Skip suppresses the first Skip hits.
	Skip int64
	// Count bounds how many hits trigger after Skip: n > 0 triggers exactly
	// n times, 0 triggers once, and a negative Count triggers on every hit.
	Count int64
	// Keys, when non-empty, switches the site to keyed triggering: a
	// FireKey(k) call triggers iff k is listed, and Skip/Count/Prob are
	// ignored (hit-ordered Fire calls never trigger a keyed plan).
	Keys []int64
	// Prob, when in (0,1), triggers each eligible hit with this probability,
	// drawn from a generator seeded with Seed — a deterministic sequence for
	// a fixed hit order.
	Prob float64
	// Seed seeds the Prob generator.
	Seed int64
	// Mode selects error versus panic injection at Inject sites (and error
	// versus process exit at Crash sites). Fire/FireKey sites implement
	// their own corruption and ignore it.
	Mode Mode
	// TornBytes configures Crash sites: when the site triggers, the caller
	// is told to persist exactly this many bytes of the write it was about
	// to perform before dying — 0 models a crash at a clean record
	// boundary, a small positive value a torn write. Negative means "after
	// the full write but before acknowledging it".
	TornBytes int64
}

// InjectedError is the failure Inject sites produce. It wraps
// dterr.ErrInjected and names the site, so a contained injected panic
// surfaces as an error naming the hook site.
type InjectedError struct {
	Site string
	Mode Mode
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s at site %q", e.Mode, e.Site)
}

// Unwrap makes every injected failure errors.Is-able against
// dterr.ErrInjected.
func (e *InjectedError) Unwrap() error { return dterr.ErrInjected }

// Site is one named hook point. Declare it as a package-level variable so
// registration happens exactly once, at init:
//
//	var siteSweep = faults.NewSite("core.iter.sweep")
type Site struct {
	name string

	mu    sync.Mutex
	plan  *Plan
	hits  int64
	fired int64
	keys  map[int64]bool
	rng   *rand.Rand
}

// armed gates every hook's fast path: while false (the default), hooks cost
// one atomic load.
var armed atomic.Bool

var (
	regMu    sync.Mutex
	registry = map[string]*Site{}
)

// NewSite registers a named hook point. Registering the same name twice
// panics: sites are package-level singletons and a duplicate is a
// programming error caught at init.
func NewSite(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("faults: duplicate site %q", name))
	}
	s := &Site{name: name}
	registry[name] = s
	return s
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Sites returns the sorted names of every registered hook point — the
// surface the `make faults` sweep iterates.
func Sites() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Activate arms a site with a plan (and the harness globally). It returns an
// error for unknown site names so sweeps fail loudly on typos.
func Activate(name string, p Plan) error {
	regMu.Lock()
	s, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return fmt.Errorf("faults: unknown site %q (registered: %v)", name, Sites())
	}
	s.mu.Lock()
	plan := p
	s.plan = &plan
	s.hits, s.fired = 0, 0
	s.keys = nil
	if len(p.Keys) > 0 {
		s.keys = make(map[int64]bool, len(p.Keys))
		for _, k := range p.Keys {
			s.keys[k] = true
		}
	}
	s.rng = nil
	if p.Prob > 0 && p.Prob < 1 {
		s.rng = rand.New(rand.NewSource(p.Seed))
	}
	s.mu.Unlock()
	armed.Store(true)
	return nil
}

// Reset clears every plan and hit counter and disarms the harness, restoring
// the zero-cost state. Tests must defer it after Activate.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range registry {
		s.mu.Lock()
		s.plan = nil
		s.hits, s.fired = 0, 0
		s.keys = nil
		s.rng = nil
		s.mu.Unlock()
	}
	armed.Store(false)
}

// Hits returns how many times the site was reached while armed (triggered or
// not) — the observability hook sweep tests use to prove a site is actually
// on the executed path.
func (s *Site) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Fired returns how many hits triggered.
func (s *Site) Fired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Fire reports whether a hit-ordered fault triggers at this call. The call
// site implements the corruption itself (poisoning a value, skipping a
// write), which keeps the simulated failure realistic. Disarmed cost: one
// atomic load.
func (s *Site) Fire() bool {
	if !armed.Load() {
		return false
	}
	fired, _ := s.fire(false, 0)
	return fired
}

// FireKey reports whether a keyed fault triggers for key — scheduling-
// independent, because triggering depends only on the key's membership in
// the plan. A site called with FireKey never triggers from hit-ordered
// plans and vice versa.
func (s *Site) FireKey(key int64) bool {
	if !armed.Load() {
		return false
	}
	fired, _ := s.fire(true, key)
	return fired
}

func (s *Site) fire(keyed bool, key int64) (bool, Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.plan
	if p == nil {
		return false, ModeError
	}
	s.hits++
	if keyed != (s.keys != nil) {
		return false, p.Mode
	}
	if keyed {
		if !s.keys[key] {
			return false, p.Mode
		}
		s.fired++
		return true, p.Mode
	}
	if s.hits <= p.Skip {
		return false, p.Mode
	}
	if p.Count >= 0 {
		limit := p.Count
		if limit == 0 {
			limit = 1
		}
		if s.fired >= limit {
			return false, p.Mode
		}
	}
	if s.rng != nil && s.rng.Float64() >= p.Prob {
		return false, p.Mode
	}
	s.fired++
	return true, p.Mode
}

// Inject triggers a generic failure when the site fires: ModeError returns
// an *InjectedError, ModePanic panics with one (for containment-boundary
// tests). It returns nil when the site does not trigger.
func (s *Site) Inject() error {
	if !armed.Load() {
		return nil
	}
	fired, mode := s.fire(false, 0)
	if !fired {
		return nil
	}
	err := &InjectedError{Site: s.name, Mode: mode}
	if mode == ModePanic {
		panic(err)
	}
	return err
}

// CrashError is what a Crash site produces in ModeError: the instruction to
// simulate a process death at this write. Torn carries the plan's TornBytes,
// telling the caller how much of the in-flight write to persist before
// "dying". It wraps dterr.ErrInjected like every other injected failure.
type CrashError struct {
	Site string
	// Torn is how many bytes of the interrupted write to persist: 0 for a
	// clean boundary, n > 0 for a torn prefix, negative for "all bytes
	// written but the operation unacknowledged".
	Torn int64
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("faults: injected crash at site %q (torn %d bytes)", e.Site, e.Torn)
}

// Unwrap makes injected crashes errors.Is-able against dterr.ErrInjected.
func (e *CrashError) Unwrap() error { return dterr.ErrInjected }

// Crash is the hook durability write paths place immediately before a
// persistence operation. When the site triggers in ModeExit the process
// exits with CrashExitCode (through the SetExitFunc seam) — the caller
// never observes the return. In every other mode it returns a *CrashError
// telling the caller to persist Torn bytes of the write, freeze further
// durability writes, and fail — an in-process simulation of the same death.
// It returns nil when the site does not trigger.
func (s *Site) Crash() *CrashError {
	if !armed.Load() {
		return nil
	}
	s.mu.Lock()
	var torn int64
	if s.plan != nil {
		torn = s.plan.TornBytes
	}
	s.mu.Unlock()
	fired, mode := s.fire(false, 0)
	if !fired {
		return nil
	}
	if mode == ModeExit {
		(*exitFunc.Load())(CrashExitCode)
	}
	return &CrashError{Site: s.name, Torn: torn}
}

// ActivateSpec arms sites from a textual spec, the form the DTUCKERD_FAULTS
// environment variable uses so subprocess crash tests can arm the daemon
// without a test hook. Each clause is
//
//	site[:key=value[,key=value...]]
//
// with clauses separated by ';'. Keys: skip, count, torn (int64s), mode
// (error|panic|exit), prob (float), seed (int64). Example:
//
//	journal.append:skip=3,mode=exit;journal.spill.rename:mode=exit
func ActivateSpec(spec string) error {
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, opts, _ := strings.Cut(clause, ":")
		var p Plan
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return fmt.Errorf("faults: spec clause %q: %q is not key=value", clause, kv)
				}
				var err error
				switch k {
				case "skip":
					p.Skip, err = strconv.ParseInt(v, 10, 64)
				case "count":
					p.Count, err = strconv.ParseInt(v, 10, 64)
				case "torn":
					p.TornBytes, err = strconv.ParseInt(v, 10, 64)
				case "prob":
					p.Prob, err = strconv.ParseFloat(v, 64)
				case "seed":
					p.Seed, err = strconv.ParseInt(v, 10, 64)
				case "mode":
					switch v {
					case "error":
						p.Mode = ModeError
					case "panic":
						p.Mode = ModePanic
					case "exit":
						p.Mode = ModeExit
					default:
						err = fmt.Errorf("unknown mode %q", v)
					}
				default:
					err = fmt.Errorf("unknown key %q", k)
				}
				if err != nil {
					return fmt.Errorf("faults: spec clause %q: %v", clause, err)
				}
			}
		}
		if err := Activate(name, p); err != nil {
			return err
		}
	}
	return nil
}
