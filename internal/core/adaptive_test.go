package core

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestRanksForEnergyRecoversTrueRank(t *testing.T) {
	// Exactly rank-(4,4,4) tensor: a tight energy threshold must select
	// exactly 4 per mode.
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0, 4, 24, 20, 16)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 12), SliceRank: 12, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := ap.RanksForEnergy(1e-4, 12)
	if err != nil {
		t.Fatal(err)
	}
	for n, r := range ranks {
		if r != 4 {
			t.Fatalf("mode %d rank %d, want 4 (all: %v)", n, r, ranks)
		}
	}
}

func TestRanksForEnergyMonotoneInTolerance(t *testing.T) {
	// Looser tolerance must never demand more rank.
	rng := rand.New(rand.NewSource(2))
	x := lowRankTensor(rng, 0.3, 5, 24, 20, 16)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 14), SliceRank: 14, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ap.RanksForEnergy(0.05, 14)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := ap.RanksForEnergy(0.5, 14)
	if err != nil {
		t.Fatal(err)
	}
	for n := range tight {
		if loose[n] > tight[n] {
			t.Fatalf("mode %d: loose rank %d > tight rank %d", n, loose[n], tight[n])
		}
	}
}

func TestRanksForEnergyRespectsCapAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Ascending dims force an internal reorder: output must still be in
	// the original mode order (rank ≤ dim per mode).
	x := tensor.RandN(rng, 6, 14, 30)
	ap, err := Approximate(x, Options{Config: Config{Ranks: []int{5, 5, 5}, SliceRank: 5, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := ap.RanksForEnergy(0.2, 50)
	if err != nil {
		t.Fatal(err)
	}
	for n, r := range ranks {
		if r < 1 || r > x.Dim(n) {
			t.Fatalf("mode %d rank %d outside [1,%d]", n, r, x.Dim(n))
		}
	}
}

func TestRanksForEnergyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.RandN(rng, 8, 8, 8)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		eps float64
		max int
	}{{0, 4}, {1, 4}, {-0.1, 4}, {0.1, 0}} {
		if _, err := ap.RanksForEnergy(bad.eps, bad.max); err == nil {
			t.Fatalf("invalid args (%g,%d) accepted", bad.eps, bad.max)
		}
	}
}

func TestDecomposeAdaptiveMeetsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := lowRankTensor(rng, 0.05, 4, 28, 24, 20)
	dec, ranks, err := DecomposeAdaptive(x, 0.10, 12, Options{Config: Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(x.Shape()); err != nil {
		t.Fatal(err)
	}
	for n, r := range ranks {
		if dec.Core.Dim(n) != r {
			t.Fatalf("core mode %d is %d, ranks say %d", n, dec.Core.Dim(n), r)
		}
	}
	// The achieved error should be near the requested 10% (noise floor 5%).
	if rel := dec.RelError(x); rel > 0.2 {
		t.Fatalf("adaptive error %g for 0.10 target", rel)
	}
}

func TestDecomposeAdaptiveOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankTensor(rng, 0.05, 2, 12, 10, 8, 6)
	dec, ranks, err := DecomposeAdaptive(x, 0.15, 6, Options{Config: Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 4 {
		t.Fatalf("ranks %v", ranks)
	}
	if rel := dec.RelError(x); rel > 0.25 {
		t.Fatalf("order-4 adaptive error %g", rel)
	}
}

func TestDecomposeAdaptiveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 8, 8, 8)
	if _, _, err := DecomposeAdaptive(x, 0.1, 0, Options{}); err == nil {
		t.Fatal("maxRank 0 accepted")
	}
	if _, _, err := DecomposeAdaptive(x, 0, 4, Options{}); err == nil {
		t.Fatal("eps 0 accepted")
	}
}
