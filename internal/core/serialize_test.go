package core

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"
)

func testDecomposition(t *testing.T, seed int64) *Decomposition {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := lowRankTensor(rng, 0.05, 3, 14, 12, 9)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func decsBitIdentical(t *testing.T, a, b *Decomposition) {
	t.Helper()
	if !bitIdentical(a.Core.Data(), b.Core.Data()) {
		t.Fatal("core differs after round trip")
	}
	for n := range a.Factors {
		if !bitIdentical(a.Factors[n].Data(), b.Factors[n].Data()) {
			t.Fatalf("factor %d differs after round trip", n)
		}
	}
	if math.Float64bits(a.Fit) != math.Float64bits(b.Fit) {
		t.Fatalf("fit %v vs %v", a.Fit, b.Fit)
	}
	if a.Converged != b.Converged {
		t.Fatal("convergence flag differs")
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestDecompositionBinaryRoundTrip(t *testing.T) {
	orig := testDecomposition(t, 31)
	var buf bytes.Buffer
	wn, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wn != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", wn, buf.Len())
	}
	got, err := ReadDecomposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	decsBitIdentical(t, orig, got)

	// The byte count must cover the whole stream: a second reader starting
	// after rn bytes sees exactly nothing.
	r := bytes.NewReader(buf.Bytes())
	var d2 Decomposition
	rn, err := d2.ReadFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	if rn != wn {
		t.Fatalf("ReadFrom consumed %d of %d bytes", rn, wn)
	}
	if rest, _ := io.ReadAll(r); len(rest) != 0 {
		t.Fatalf("%d unread bytes after ReadFrom", len(rest))
	}
}

func TestDecompositionJSONRoundTrip(t *testing.T) {
	orig := testDecomposition(t, 32)
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Decomposition
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	decsBitIdentical(t, orig, &got)
}

func TestDecompositionCorruptInput(t *testing.T) {
	orig := testDecomposition(t, 33)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for name, mutate := range map[string]func([]byte) []byte{
		"bad magic": func(b []byte) []byte { b[0] = 'Z'; return b },
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"converged byte 7": func(b []byte) []byte {
			// converged sits 8+1+24+4 = 37 bytes from the end, right after fit.
			b[len(b)-29] = 7
			return b
		},
		"negative duration": func(b []byte) []byte {
			for i := len(b) - 28; i < len(b)-20; i++ {
				b[i] = 0xff
			}
			return b
		},
	} {
		b := append([]byte(nil), good...)
		if _, err := ReadDecomposition(bytes.NewReader(mutate(b))); err == nil {
			t.Fatalf("%s: corrupt result accepted", name)
		}
	}

	// A failed read must leave the receiver untouched.
	d := Decomposition{Fit: 0.5, Stats: Stats{Iters: 3, IterTime: time.Second}}
	if _, err := d.ReadFrom(bytes.NewReader(good[:10])); err == nil {
		t.Fatal("truncated result accepted")
	}
	if d.Fit != 0.5 || d.Stats.Iters != 3 {
		t.Fatal("failed ReadFrom clobbered the receiver")
	}
}

func TestDecompositionJSONRejectsMalformed(t *testing.T) {
	for name, js := range map[string]string{
		"no model":     `{"fit":0.5,"converged":true,"stats":{}}`,
		"negative ns":  `{"model":{"core":{"shape":[1],"data":[1]},"factors":[{"rows":2,"cols":1,"data":[1,0]}]},"fit":1,"stats":{"iter_ns":-5}}`,
		"invalid json": `{"model":`,
	} {
		var d Decomposition
		if err := json.Unmarshal([]byte(js), &d); err == nil {
			t.Fatalf("%s: malformed result accepted", name)
		}
	}
}
