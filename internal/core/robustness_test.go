package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/tensor"
)

// wantInvalid asserts err wraps dterr.ErrInvalidInput with a descriptive
// message.
func wantInvalid(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("malformed input accepted")
	}
	if !errors.Is(err, dterr.ErrInvalidInput) {
		t.Fatalf("err = %v, want ErrInvalidInput", err)
	}
	if !strings.Contains(err.Error(), "core:") {
		t.Fatalf("error message %q does not name the violation", err)
	}
}

// TestMalformedInputRejected audits every exported entry point of the
// package against malformed arguments: each must return an error wrapping
// dterr.ErrInvalidInput — never panic, never proceed.
func TestMalformedInputRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandN(rng, 6, 5, 4)
	chunk := tensor.RandN(rng, 6, 5, 2)

	filled := func() *Stream {
		s := NewStream(Options{Config: Config{Ranks: []int{2, 2, 2}}})
		if err := s.Append(chunk); err != nil {
			t.Fatal(err)
		}
		return s
	}

	cases := []struct {
		name string
		run  func() error
	}{
		{"Decompose nil tensor", func() error {
			_, err := Decompose(nil, Options{Config: Config{Ranks: []int{2, 2, 2}}})
			return err
		}},
		{"Decompose ranks length mismatch", func() error {
			_, err := Decompose(x, Options{Config: Config{Ranks: []int{2, 2}}})
			return err
		}},
		{"Decompose zero rank", func() error {
			_, err := Decompose(x, Options{Config: Config{Ranks: []int{2, 0, 2}}})
			return err
		}},
		{"Decompose negative rank", func() error {
			_, err := Decompose(x, Options{Config: Config{Ranks: []int{2, -3, 2}}})
			return err
		}},
		{"Decompose negative MaxIters", func() error {
			_, err := Decompose(x, Options{Config: Config{Ranks: []int{2, 2, 2}, MaxIters: -1}})
			return err
		}},
		{"Approximate nil tensor", func() error {
			_, err := Approximate(nil, Options{Config: Config{Ranks: []int{2, 2, 2}}})
			return err
		}},
		{"Approximate order-1 tensor", func() error {
			_, err := Approximate(tensor.RandN(rng, 5), Options{Config: Config{Ranks: []int{2}}})
			return err
		}},
		{"Stream nil chunk", func() error {
			return NewStream(Options{Config: Config{Ranks: []int{2, 2, 2}}}).Append(nil)
		}},
		{"Stream order-2 chunk", func() error {
			return NewStream(Options{Config: Config{Ranks: []int{2, 2}}}).Append(tensor.RandN(rng, 5, 4))
		}},
		{"Stream rank exceeds dimensionality", func() error {
			return NewStream(Options{Config: Config{Ranks: []int{9, 2, 2}}}).Append(chunk)
		}},
		{"Stream empty Decompose", func() error {
			_, err := NewStream(Options{Config: Config{Ranks: []int{2, 2, 2}}}).Decompose()
			return err
		}},
		{"Stream empty DecomposeRange", func() error {
			_, err := NewStream(Options{Config: Config{Ranks: []int{2, 2, 2}}}).DecomposeRange(0, 1)
			return err
		}},
		{"Stream inverted range", func() error {
			_, err := filled().DecomposeRange(2, 1)
			return err
		}},
		{"Stream range out of bounds", func() error {
			_, err := filled().DecomposeRange(0, 99)
			return err
		}},
		{"RanksForEnergy eps out of range", func() error {
			ap, err := Approximate(x, Options{Config: Config{Ranks: []int{2, 2, 2}}})
			if err != nil {
				t.Fatal(err)
			}
			_, err = ap.RanksForEnergy(1.5, 3)
			return err
		}},
		{"RanksForEnergy non-positive maxRank", func() error {
			ap, err := Approximate(x, Options{Config: Config{Ranks: []int{2, 2, 2}}})
			if err != nil {
				t.Fatal(err)
			}
			_, err = ap.RanksForEnergy(0.1, 0)
			return err
		}},
		{"DecomposeAdaptive nil tensor", func() error {
			_, _, err := DecomposeAdaptive(nil, 0.1, 3, Options{})
			return err
		}},
		{"DecomposeAdaptive non-positive maxRank", func() error {
			_, _, err := DecomposeAdaptive(x, 0.1, -2, Options{})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantInvalid(t, tc.run())
		})
	}
}

// TestNonFiniteInputRejected proves corrupt data is stopped at the boundary:
// NaN/Inf in the input yields ErrNonFiniteInput before any phase runs.
func TestNonFiniteInputRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	poison := func(v float64) *tensor.Dense {
		x := tensor.RandN(rng, 6, 5, 4)
		x.Set(v, 3, 2, 1)
		return x
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"Decompose NaN", func() error {
			_, err := Decompose(poison(math.NaN()), Options{Config: Config{Ranks: []int{2, 2, 2}}})
			return err
		}},
		{"Decompose +Inf", func() error {
			_, err := Decompose(poison(math.Inf(1)), Options{Config: Config{Ranks: []int{2, 2, 2}}})
			return err
		}},
		{"Approximate -Inf", func() error {
			_, err := Approximate(poison(math.Inf(-1)), Options{Config: Config{Ranks: []int{2, 2, 2}}})
			return err
		}},
		{"Stream Append NaN", func() error {
			return NewStream(Options{Config: Config{Ranks: []int{2, 2, 2}}}).Append(poison(math.NaN()))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("non-finite input accepted")
			}
			if !errors.Is(err, dterr.ErrNonFiniteInput) {
				t.Fatalf("err = %v, want ErrNonFiniteInput", err)
			}
		})
	}
}

// wantCancelled asserts err is a *dterr.CancelledError tagged with phase
// whose chain still satisfies errors.Is against the context sentinel.
func wantCancelled(t *testing.T, err error, phase string, sentinel error) {
	t.Helper()
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	var c *dterr.CancelledError
	if !errors.As(err, &c) {
		t.Fatalf("err = %v (%T), want *CancelledError", err, err)
	}
	if c.Phase != phase {
		t.Fatalf("interrupted phase %q, want %q (err: %v)", c.Phase, phase, err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v does not satisfy errors.Is(%v)", err, sentinel)
	}
}

// TestPreCancelledContext runs each entry point under an already-cancelled
// context: every one must refuse to start and name the phase it would have
// entered.
func TestPreCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := tensor.RandN(rng, 8, 7, 6)
	chunk := tensor.RandN(rng, 8, 7, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("Decompose", func(t *testing.T) {
		_, err := Decompose(x, Options{Config: Config{Ranks: []int{3, 3, 3}}, Context: ctx})
		wantCancelled(t, err, "approximation", context.Canceled)
	})
	t.Run("ApproximationDecompose", func(t *testing.T) {
		ap, err := Approximate(x, Options{Config: Config{Ranks: []int{3, 3, 3}}})
		if err != nil {
			t.Fatal(err)
		}
		ap.opts.Context = ctx
		_, err = ap.Decompose()
		wantCancelled(t, err, "initialization", context.Canceled)
	})
	t.Run("StreamAppend", func(t *testing.T) {
		s := NewStream(Options{Config: Config{Ranks: []int{3, 3, 2}}})
		err := s.AppendContext(ctx, chunk)
		wantCancelled(t, err, "approximation", context.Canceled)
		if s.Len() != 0 {
			t.Fatalf("cancelled Append mutated the stream: Len = %d", s.Len())
		}
		// The stream must remain fully usable afterwards.
		if err := s.Append(chunk); err != nil {
			t.Fatalf("stream unusable after cancelled Append: %v", err)
		}
	})
	t.Run("StreamDecompose", func(t *testing.T) {
		s := NewStream(Options{Config: Config{Ranks: []int{3, 3, 2}}})
		if err := s.Append(chunk); err != nil {
			t.Fatal(err)
		}
		_, err := s.DecomposeContext(ctx)
		wantCancelled(t, err, "initialization", context.Canceled)
	})
	t.Run("StreamDecomposeRange", func(t *testing.T) {
		s := NewStream(Options{Config: Config{Ranks: []int{3, 3, 2}}})
		if err := s.Append(chunk); err != nil {
			t.Fatal(err)
		}
		_, err := s.DecomposeRangeContext(ctx, 0, 3)
		wantCancelled(t, err, "initialization", context.Canceled)
	})
}

// TestDeadlineExceededTagged proves a timed-out run reports
// context.DeadlineExceeded through the same CancelledError shape.
func TestDeadlineExceededTagged(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := tensor.RandN(rng, 8, 7, 6)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Decompose(x, Options{Config: Config{Ranks: []int{3, 3, 3}}, Context: ctx})
	wantCancelled(t, err, "approximation", context.DeadlineExceeded)
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (parallel regions join before returning, so any excess beyond a
// small runtime-internal slack is a leak).
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<17)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, n, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelMidRun cancels a live parallel decomposition from inside its own
// progress trace — first during the approximation phase, then between
// initialization and iteration — and asserts the reported phase, that all
// worker goroutines are joined, and that the pool survives for a clean rerun.
func TestCancelMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := lowRankTensor(rng, 0.1, 4, 24, 20, 10)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 9}, Workers: 4}

	// Sink messages arrive prefixed with a monotonic timestamp, so matching
	// is on content, not prefix.
	cancelOn := func(marker string) (*metrics.Collector, context.Context) {
		ctx, cancel := context.WithCancel(context.Background())
		col := metrics.New()
		col.SetTrace(func(msg string) {
			if strings.Contains(msg, marker) {
				cancel()
			}
		})
		return col, ctx
	}

	before := runtime.NumGoroutine()

	t.Run("approximation", func(t *testing.T) {
		o := opts
		o.Metrics, o.Context = cancelOn("approximation: compressing")
		_, err := Decompose(x, o)
		wantCancelled(t, err, "approximation", context.Canceled)
	})
	t.Run("iteration", func(t *testing.T) {
		// The "initialization done" trace fires as initFactors returns, so
		// the very next boundary the run reaches is the first sweep.
		o := opts
		o.Metrics, o.Context = cancelOn("initialization done")
		_, err := Decompose(x, o)
		wantCancelled(t, err, "iteration", context.Canceled)
	})
	t.Run("stream iteration", func(t *testing.T) {
		col, ctx := cancelOn("initialization done")
		s := NewStream(Options{Config: Config{Ranks: []int{4, 4, 3}, Seed: 9}, Workers: 4, Metrics: col})
		if err := s.Append(lowRankTensor(rng, 0.1, 4, 24, 20, 6)); err != nil {
			t.Fatal(err)
		}
		_, err := s.DecomposeContext(ctx)
		wantCancelled(t, err, "iteration", context.Canceled)
	})

	settleGoroutines(t, before)

	t.Run("pool reusable after cancellation", func(t *testing.T) {
		pl := pool.New(4)
		o := opts
		o.Pool = pl
		o.Metrics, o.Context = cancelOn("initialization done")
		if _, err := Decompose(x, o); err == nil {
			t.Fatal("cancelled run succeeded")
		}
		o = opts
		o.Pool = pl
		dec, err := Decompose(x, o)
		if err != nil {
			t.Fatalf("pool unusable after cancelled run: %v", err)
		}
		if rel := dec.RelError(x); rel > 0.2 {
			t.Fatalf("rerun on reused pool: relative error %g", rel)
		}
	})
}

// TestKeyedFaultFallbackBitIdentical forces the randomized SVD of two
// specific slices to break down (retry included) via a keyed fault plan, so
// those slices take the dense-SVD fallback, and asserts the decomposition is
// bit-identical for Workers=1 and Workers=4: keyed triggering plus the
// deterministic fallback keep the owner-computes guarantee intact even under
// injected numerical failures.
func TestKeyedFaultFallbackBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := lowRankTensor(rng, 0.05, 3, 16, 14, 8)

	defer faults.Reset()
	if err := faults.Activate("randsvd.sketch", faults.Plan{Keys: []int64{1, 3}, Count: -1}); err != nil {
		t.Fatal(err)
	}
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	run := func(workers int) *Decomposition {
		t.Helper()
		base := metrics.Snapshot()
		dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 21}, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		d := metrics.Snapshot().Sub(base)
		// Both targeted slices break down twice (initial + retry) and then
		// complete through the dense fallback.
		if d.RandSVDRetries != 2 || d.RandSVDFallbacks != 2 {
			t.Fatalf("workers=%d: %d retries / %d fallbacks, want 2 / 2",
				workers, d.RandSVDRetries, d.RandSVDFallbacks)
		}
		return dec
	}

	a, b := run(1), run(4)
	if !bitIdentical(a.Core.Data(), b.Core.Data()) {
		t.Fatal("cores differ between Workers=1 and Workers=4 under injected fallback")
	}
	for n := range a.Factors {
		if !bitIdentical(a.Factors[n].Data(), b.Factors[n].Data()) {
			t.Fatalf("factor %d differs between Workers=1 and Workers=4 under injected fallback", n)
		}
	}
	if rel := a.RelError(x); rel > 0.2 || math.IsNaN(rel) {
		t.Fatalf("fallback decomposition relative error %g", rel)
	}
}
