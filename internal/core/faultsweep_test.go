package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// sweepPlan describes how the fault sweep arms one registered hook site.
type sweepPlan struct {
	plan  faults.Plan
	modes []faults.Mode
	// surface marks Inject sites, whose fault must come back as an error;
	// Fire/FireKey sites corrupt state instead and the randsvd recovery
	// chain (retry, then dense fallback) absorbs them, so their runs must
	// complete with finite output.
	surface bool
	// stitch marks sites that sit on the range-engine merge path
	// (SummarizeSpan / MergeSummaries / StitchRange) instead of the
	// decompose paths; the sweep drives them through a stitched range solve.
	stitch bool
}

// sweepPlans maps every registered site to its sweep configuration. The
// sweep fails on any site missing here, so adding a hook point forces a
// decision about how it is covered.
func sweepPlans() map[string]sweepPlan {
	both := []faults.Mode{faults.ModeError, faults.ModePanic}
	one := faults.Plan{Count: 1}
	return map[string]sweepPlan{
		"pool.task":         {plan: one, modes: both, surface: true},
		"core.approx.slice": {plan: one, modes: both, surface: true},
		"core.init.factor":  {plan: one, modes: both, surface: true},
		"core.iter.sweep":   {plan: one, modes: both, surface: true},
		"core.stitch.node":  {plan: one, modes: both, surface: true, stitch: true},
		// The sketch site is keyed (slice identity), the SVD site
		// hit-ordered; both ignore Mode.
		"randsvd.sketch": {plan: faults.Plan{Keys: []int64{0}, Count: -1}, modes: []faults.Mode{faults.ModeError}},
		"randsvd.svd":    {plan: faults.Plan{Count: 1}, modes: []faults.Mode{faults.ModeError}},
	}
}

// wantInjected asserts err is the fault we planted: errors.Is-able against
// ErrInjected, naming the site, and — for panic-mode injections — also
// class-checkable as a contained panic.
func wantInjected(t *testing.T, err error, site string, mode faults.Mode) {
	t.Helper()
	if !errors.Is(err, dterr.ErrInjected) {
		t.Fatalf("err = %v, want a fault injected at %q", err, site)
	}
	if !strings.Contains(err.Error(), site) {
		t.Fatalf("error %q does not name the hook site %q", err, site)
	}
	if mode == faults.ModePanic && !errors.Is(err, dterr.ErrPanic) {
		t.Fatalf("panic-mode fault surfaced without ErrPanic in its chain: %v", err)
	}
}

// checkModel asserts a decomposition that completed despite an armed fault
// produced only finite numbers.
func checkModel(t *testing.T, dec *Decomposition) {
	t.Helper()
	if dec == nil {
		t.Fatal("nil decomposition without error")
	}
	if !dec.Core.IsFinite() {
		t.Fatal("core contains NaN/Inf after absorbed fault")
	}
	for n, f := range dec.Factors {
		if !f.IsFinite() {
			t.Fatalf("factor %d contains NaN/Inf after absorbed fault", n)
		}
	}
}

// TestFaultSweep arms every registered hook point in turn — in error mode
// and, for Inject sites, panic mode — and drives both a plain decomposition
// and a streaming Append+Decompose through it. Whatever the site, the
// outcome must be one of exactly two things: a clean error naming the site,
// or a completed run with finite output. An escaped panic fails the test
// (and a worker-goroutine panic escaping containment would crash the test
// binary, which is the point of the sweep).
func TestFaultSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := lowRankTensor(rng, 0.05, 3, 12, 10, 6)
	chunk := lowRankTensor(rng, 0.05, 3, 12, 10, 4)
	plans := sweepPlans()

	prevEnabled := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prevEnabled)
	defer faults.Reset()
	before := runtime.NumGoroutine()

	for _, site := range faults.Sites() {
		sp, ok := plans[site]
		if !ok {
			t.Fatalf("site %q is registered but not covered by the sweep; add it to sweepPlans", site)
		}
		for _, mode := range sp.modes {
			plan := sp.plan
			plan.Mode = mode

			if sp.stitch {
				t.Run(fmt.Sprintf("%s/%s/stitch", site, mode), func(t *testing.T) {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("injected fault escaped as a panic: %v", r)
						}
					}()
					faults.Reset()
					s := NewStream(Options{Config: Config{Ranks: []int{3, 3, 2}, Seed: 4, MaxIters: 8}, Workers: 2})
					if err := s.Append(x); err != nil {
						t.Fatal(err)
					}
					if err := faults.Activate(site, plan); err != nil {
						t.Fatal(err)
					}
					defer faults.Reset()
					runStitch := func() error {
						a, err := s.SummarizeSpan(0, 3, 0)
						if err != nil {
							return err
						}
						b, err := s.SummarizeSpan(3, 6, 0)
						if err != nil {
							return err
						}
						m, err := MergeSummaries(a, b, 0)
						if err != nil {
							return err
						}
						dec, err := s.StitchRange(0, 6, []*RangeSummary{m})
						if err != nil {
							return err
						}
						checkModel(t, dec)
						return nil
					}
					if err := runStitch(); err != nil {
						wantInjected(t, err, site, mode)
					} else {
						t.Fatalf("fault at %q never surfaced from the stitch path", site)
					}
					// The contained failure must not poison the stream: a
					// clean retry completes.
					faults.Reset()
					if err := runStitch(); err != nil {
						t.Fatalf("stitch path unusable after contained fault: %v", err)
					}
				})
				continue
			}

			t.Run(fmt.Sprintf("%s/%s/decompose", site, mode), func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("injected fault escaped as a panic: %v", r)
					}
				}()
				faults.Reset()
				if err := faults.Activate(site, plan); err != nil {
					t.Fatal(err)
				}
				defer faults.Reset()
				base := metrics.Snapshot()
				dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 4, MaxIters: 8}, Workers: 2})
				if err != nil {
					wantInjected(t, err, site, mode)
					return
				}
				if sp.surface {
					t.Fatalf("fault at %q never surfaced", site)
				}
				checkModel(t, dec)
				// Recovery must actually have happened, proving the site is
				// on the executed path and not silently skipped.
				if d := metrics.Snapshot().Sub(base); d.RandSVDRetries+d.RandSVDFallbacks == 0 {
					t.Fatalf("fault at %q absorbed without any retry/fallback recorded", site)
				}
			})

			t.Run(fmt.Sprintf("%s/%s/stream", site, mode), func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("injected fault escaped as a panic: %v", r)
					}
				}()
				faults.Reset()
				if err := faults.Activate(site, plan); err != nil {
					t.Fatal(err)
				}
				defer faults.Reset()
				s := NewStream(Options{Config: Config{Ranks: []int{3, 3, 2}, Seed: 4, MaxIters: 8}, Workers: 2})
				if err := s.Append(chunk); err != nil {
					wantInjected(t, err, site, mode)
					if s.Len() != 0 {
						t.Fatalf("failed Append left %d slices behind", s.Len())
					}
					return
				}
				dec, err := s.Decompose()
				if err != nil {
					wantInjected(t, err, site, mode)
					return
				}
				if sp.surface {
					t.Fatalf("fault at %q never surfaced from the stream", site)
				}
				checkModel(t, dec)
			})
		}
	}

	settleGoroutines(t, before)
}
