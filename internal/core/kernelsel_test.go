package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dterr"
	"repro/internal/kernelsel"
	"repro/internal/metrics"
)

// TestSliceKernelBitIdenticalAcrossWorkers extends the worker-count
// determinism contract to every selectable slice kernel: forced randsvd,
// exact, gram, and the cost-model auto selection must each produce
// bit-identical factors, core, and fit for Workers ∈ {1, 4, 8}.
func TestSliceKernelBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := lowRankTensor(rng, 0.1, 3, 14, 11, 4, 3)
	for _, kernel := range []string{"randsvd", "exact", "gram", "auto"} {
		base := Options{Config: Config{Ranks: uniformRanks(4, 3), Seed: 12, SliceKernel: kernel}}
		ref, err := Decompose(x, base)
		if err != nil {
			t.Fatalf("kernel %s: %v", kernel, err)
		}
		for _, workers := range []int{4, 8} {
			opts := base
			opts.Workers = workers
			dec, err := Decompose(x, opts)
			if err != nil {
				t.Fatalf("kernel %s workers %d: %v", kernel, workers, err)
			}
			if dec.Fit != ref.Fit {
				t.Fatalf("kernel %s workers %d: fit %v differs from serial %v", kernel, workers, dec.Fit, ref.Fit)
			}
			for n := range ref.Factors {
				if !bitIdentical(dec.Factors[n].Data(), ref.Factors[n].Data()) {
					t.Fatalf("kernel %s workers %d: factor %d differs from serial run", kernel, workers, n)
				}
			}
			if !bitIdentical(dec.Core.Data(), ref.Core.Data()) {
				t.Fatalf("kernel %s workers %d: core differs from serial run", kernel, workers)
			}
		}
	}
}

// TestAutoSelectionDeterministic checks that under SliceKernel "auto" the
// per-kernel counter split — i.e. which kernel every slice picked — is
// identical across worker counts and across repeated runs with the same
// profile, and that every slice was attributed to exactly one kernel.
func TestAutoSelectionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := lowRankTensor(rng, 0.1, 3, 16, 12, 5)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 7, SliceKernel: "auto"}}

	countKernels := func(workers int) metrics.Counters {
		t.Helper()
		prev := metrics.SetEnabled(true)
		defer metrics.SetEnabled(prev)
		metrics.Reset()
		o := opts
		o.Workers = workers
		if _, err := Decompose(x, o); err != nil {
			t.Fatal(err)
		}
		return metrics.Snapshot()
	}

	ref := countKernels(1)
	if ref.SliceSVDs == 0 {
		t.Fatal("no slice compressions recorded")
	}
	if got := ref.SliceKernelRand + ref.SliceKernelExact + ref.SliceKernelGram; got != ref.SliceSVDs {
		t.Fatalf("kernel split %d does not cover all %d slices", got, ref.SliceSVDs)
	}
	for _, workers := range []int{4, 8, 1} { // trailing 1 = repeated run
		c := countKernels(workers)
		if c.SliceKernelRand != ref.SliceKernelRand ||
			c.SliceKernelExact != ref.SliceKernelExact ||
			c.SliceKernelGram != ref.SliceKernelGram {
			t.Fatalf("workers=%d: kernel split (%d,%d,%d) differs from reference (%d,%d,%d)",
				workers, c.SliceKernelRand, c.SliceKernelExact, c.SliceKernelGram,
				ref.SliceKernelRand, ref.SliceKernelExact, ref.SliceKernelGram)
		}
	}
}

// TestAutoSelectionPicksByShape pins the cost model's qualitative behavior
// through the real decomposition path: low rank on big slices stays with
// the randomized kernel, rank at the slice limit on rectangular slices
// routes to a dense route (gram or exact), never randsvd.
func TestAutoSelectionPicksByShape(t *testing.T) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)
	rng := rand.New(rand.NewSource(33))

	metrics.Reset()
	lowRank := lowRankTensor(rng, 0.1, 2, 64, 48, 3)
	if _, err := Approximate(lowRank, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 1, SliceKernel: "auto"}}); err != nil {
		t.Fatal(err)
	}
	if c := metrics.Snapshot(); c.SliceKernelRand != c.SliceSVDs {
		t.Fatalf("low-rank wide slices: %d/%d slices not randsvd", c.SliceSVDs-c.SliceKernelRand, c.SliceSVDs)
	}

	metrics.Reset()
	fullRank := lowRankTensor(rng, 0.1, 3, 40, 8, 3)
	if _, err := Approximate(fullRank, Options{Config: Config{Ranks: []int{8, 8, 3}, Seed: 1, SliceKernel: "auto"}}); err != nil {
		t.Fatal(err)
	}
	if c := metrics.Snapshot(); c.SliceKernelRand != 0 {
		t.Fatalf("rank-saturated slices: %d slices still chose randsvd", c.SliceKernelRand)
	}
}

// TestProfileMismatchRejected: a config naming one profile fingerprint must
// not decompose under a different profile — the result would be cached
// under a key describing a computation that never ran.
func TestProfileMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x := lowRankTensor(rng, 0.1, 3, 10, 9, 3)
	opts := Options{Config: Config{
		Ranks:         uniformRanks(3, 3),
		SliceKernel:   "auto",
		KernelProfile: "0123456789abcdef",
	}}
	if _, err := Decompose(x, opts); !errors.Is(err, dterr.ErrInvalidInput) {
		t.Fatalf("mismatched profile: err = %v, want ErrInvalidInput", err)
	}

	// The matching fingerprint — and the empty "whatever the process runs"
	// form — must both pass.
	opts.KernelProfile = kernelsel.Default().Fingerprint()
	if _, err := Decompose(x, opts); err != nil {
		t.Fatalf("matching profile rejected: %v", err)
	}
	opts.KernelProfile = ""
	if _, err := Decompose(x, opts); err != nil {
		t.Fatalf("empty profile rejected: %v", err)
	}
}

func TestConfigCanonicalKernelKeys(t *testing.T) {
	base := Config{Ranks: []int{3, 3, 3}}

	// The legacy flag and the new spelling are the same computation and
	// must share a cache key.
	legacy := base
	legacy.ExactSliceSVD = true
	spelled := base
	spelled.SliceKernel = "exact"
	if legacy.Canonical() != spelled.Canonical() {
		t.Fatalf("ExactSliceSVD and SliceKernel=exact disagree:\n%s\n%s", legacy.Canonical(), spelled.Canonical())
	}

	// A profile fingerprint participates in the key only under "auto":
	// forced-kernel results do not depend on the profile.
	forced := base
	forced.SliceKernel = "gram"
	forced.KernelProfile = "aaaaaaaaaaaaaaaa"
	if strings.Contains(forced.Canonical(), "aaaaaaaaaaaaaaaa") {
		t.Fatal("profile fingerprint leaked into a forced-kernel key")
	}
	autoA := base
	autoA.SliceKernel = "auto"
	autoA.KernelProfile = "aaaaaaaaaaaaaaaa"
	autoB := base
	autoB.SliceKernel = "auto"
	autoB.KernelProfile = "bbbbbbbbbbbbbbbb"
	if autoA.Canonical() == autoB.Canonical() {
		t.Fatal("different profiles produced the same auto-selection cache key")
	}

	// Unknown kernel names are rejected up front.
	bad := base
	bad.SliceKernel = "fastest"
	if err := bad.Validate(); !errors.Is(err, dterr.ErrInvalidInput) {
		t.Fatalf("Validate(SliceKernel=fastest) = %v, want ErrInvalidInput", err)
	}
	conflict := base
	conflict.ExactSliceSVD = true
	conflict.SliceKernel = "gram"
	if err := conflict.Validate(); !errors.Is(err, dterr.ErrInvalidInput) {
		t.Fatalf("Validate(conflicting kernels) = %v, want ErrInvalidInput", err)
	}
}

// TestGramKernelAccuracy: the Gram route must recover a low-rank tensor as
// well as the exact kernel does (squared conditioning is irrelevant for
// dominant subspaces of well-conditioned data).
func TestGramKernelAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	x := lowRankTensor(rng, 0, 3, 20, 15, 6)
	for _, kernel := range []string{"exact", "gram"} {
		dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 4, SliceKernel: kernel}})
		if err != nil {
			t.Fatalf("kernel %s: %v", kernel, err)
		}
		if dec.Fit < 0.999 {
			t.Errorf("kernel %s: fit %v on exactly low-rank data, want ≈1", kernel, dec.Fit)
		}
	}
}
