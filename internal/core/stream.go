package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/dterr"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/tensor"
)

// Stream maintains a D-Tucker compression of a temporal tensor that grows
// along its LAST mode, the natural streaming axis. Each Append compresses
// only the newly arrived slices — the paper's extensibility property: the
// preprocessing of old data is never redone — and Decompose warm-starts the
// iteration phase from the previous factors, so refreshing the model after
// new data costs a few sweeps instead of a full decomposition.
//
// This implements the online direction the paper lists as future work; it
// is labelled an extension in DESIGN.md.
type Stream struct {
	opts    Options
	shape   []int // full current shape; shape[last] grows
	slices  []SliceSVD
	sliceSq []float64 // exact per-slice ‖X_l‖², for range-query norms
	sumSq   float64   // Σ‖chunk‖², so NormX is maintained incrementally
	rank    int       // slice rank, fixed by the first chunk

	prevFactors []*mat.Dense // warm-start state from the last Decompose

	// pl is shared across every Append and Decompose of the stream, so
	// refreshes recycle scratch memory from earlier phases via its arena.
	pl *pool.Pool
}

// pool returns the stream's worker pool, creating it on first use.
func (s *Stream) pool() *pool.Pool {
	if s.pl == nil {
		s.pl = s.opts.newPool()
	}
	return s.pl
}

// NewStream creates an empty stream. opts.Ranks must match the order of the
// chunks that will be appended; opts.NoReorder is implied (the stream's
// slice structure is defined by the incoming mode order, with the first two
// modes as slice modes).
func NewStream(opts Options) *Stream {
	opts.NoReorder = true
	return &Stream{opts: opts}
}

// Len returns the current length of the temporal (last) mode.
func (s *Stream) Len() int {
	if s.shape == nil {
		return 0
	}
	return s.shape[len(s.shape)-1]
}

// Shape returns the current full shape, or nil before the first Append.
func (s *Stream) Shape() []int { return append([]int(nil), s.shape...) }

// StorageFloats returns the size of the compressed stream state.
func (s *Stream) StorageFloats() int {
	total := 0
	for _, sl := range s.slices {
		total += sl.U.Rows()*sl.U.Cols() + len(sl.S) + sl.V.Rows()*sl.V.Cols()
	}
	return total
}

// Append compresses a new chunk and extends the stream. The chunk must have
// the same shape as previous chunks in every mode except the last, and
// order ≥ 3 (order-2 streams have no slice structure to extend). A failed or
// cancelled Append leaves the stream exactly as it was — no partial slices
// are retained.
func (s *Stream) Append(chunk *tensor.Dense) (err error) {
	defer dterr.RecoverTo(&err, "core.Stream.Append")
	root := s.opts.Metrics.Tracer().Begin("append")
	defer root.End()
	if chunk == nil {
		return fmt.Errorf("core: nil chunk: %w", dterr.ErrInvalidInput)
	}
	if chunk.Order() < 3 {
		return fmt.Errorf("core: stream chunks must have order ≥ 3, got %d: %w",
			chunk.Order(), dterr.ErrInvalidInput)
	}
	if !chunk.IsFinite() {
		return fmt.Errorf("core: chunk contains NaN or Inf: %w", dterr.ErrNonFiniteInput)
	}
	if err := s.opts.cancelled("approximation"); err != nil {
		return err
	}
	// First-chunk setup runs on locals and commits only after the chunk
	// compresses successfully, so a failed Append leaves the stream empty.
	firstOpts, firstRank := s.opts, s.rank
	if s.shape == nil {
		opts, err := s.opts.withDefaults(chunk.Order())
		if err != nil {
			return err
		}
		for n, j := range opts.Ranks[:chunk.Order()-1] {
			if j > chunk.Dim(n) {
				return fmt.Errorf("core: rank %d exceeds dimensionality %d of mode %d: %w",
					j, chunk.Dim(n), n, dterr.ErrInvalidInput)
			}
		}
		firstOpts = opts
		firstRank = opts.SliceRank
		if firstRank <= 0 {
			firstRank = opts.Ranks[0]
			if opts.Ranks[1] > firstRank {
				firstRank = opts.Ranks[1]
			}
		}
		if m := min(chunk.Dim(0), chunk.Dim(1)); firstRank > m {
			firstRank = m
		}
	} else {
		cs := chunk.Shape()
		if len(cs) != len(s.shape) {
			return fmt.Errorf("core: chunk order %d does not match stream order %d", len(cs), len(s.shape))
		}
		for n := 0; n < len(cs)-1; n++ {
			if cs[n] != s.shape[n] {
				return fmt.Errorf("core: chunk mode-%d dimensionality %d does not match stream's %d", n, cs[n], s.shape[n])
			}
		}
	}

	// Compress the chunk's slices. Because the temporal mode is the
	// slowest-varying in the slice enumeration, new slices append cleanly
	// at the end of the existing list.
	col := firstOpts.Metrics
	col.StartPhase(metrics.PhaseApprox)
	defer col.EndPhase(metrics.PhaseApprox)
	chunkOpts := firstOpts
	chunkOpts.Seed = firstOpts.Seed + int64(len(s.slices))
	if s.pl == nil {
		// Built from the normalized options, so Workers is already ≥ 1.
		s.pl = firstOpts.newPool()
	}
	newSlices, err := compressSlices(chunk, identityPerm(chunk.Order()), firstRank,
		int64(len(s.slices)), chunkOpts, s.pl)
	if err != nil {
		return err
	}
	if s.shape == nil {
		s.opts, s.rank = firstOpts, firstRank
		s.shape = chunk.Shape()
		s.shape[len(s.shape)-1] = 0
	}
	if col.Tracing() {
		col.Tracef("stream append: %d new slices (stream now %d long)",
			len(newSlices), s.Len()+chunk.Dim(chunk.Order()-1))
	}
	s.slices = append(s.slices, newSlices...)
	s.shape[len(s.shape)-1] += chunk.Dim(chunk.Order() - 1)
	// Exact per-slice energies: each frontal slice occupies one contiguous
	// I1×I2 block of the chunk's backing array.
	area := chunk.Dim(0) * chunk.Dim(1)
	data := chunk.Data()
	for off := 0; off < len(data); off += area {
		var q float64
		for _, v := range data[off : off+area] {
			q += v * v
		}
		s.sliceSq = append(s.sliceSq, q)
		s.sumSq += q
	}
	// The temporal factor's shape changed; the non-temporal warm start
	// remains valid.
	return nil
}

// Decompose produces the Tucker model of everything appended so far. The
// first call runs the full initialization; later calls warm-start from the
// previous factors, refreshing only the temporal factor before iterating.
func (s *Stream) Decompose() (_ *Decomposition, err error) {
	defer dterr.RecoverTo(&err, "core.Stream.Decompose")
	root := s.opts.Metrics.Tracer().Begin("solve")
	defer root.End()
	if s.shape == nil {
		return nil, fmt.Errorf("core: Decompose on an empty stream: %w", dterr.ErrInvalidInput)
	}
	order := len(s.shape)
	if s.opts.Ranks[order-1] > s.shape[order-1] {
		return nil, fmt.Errorf("core: temporal rank %d exceeds current stream length %d: %w",
			s.opts.Ranks[order-1], s.shape[order-1], dterr.ErrInvalidInput)
	}
	ap := &Approximation{
		Slices:    s.slices,
		Shape:     append([]int(nil), s.shape...),
		Perm:      identityPerm(order),
		Ranks:     append([]int(nil), s.opts.Ranks...),
		NormX:     math.Sqrt(s.sumSq),
		SliceRank: s.rank,
		opts:      s.opts,
		pl:        s.pool(),
	}

	t0 := time.Now()
	var factors []*mat.Dense
	if s.prevFactors == nil {
		factors, err = ap.initFactors()
	} else {
		factors, err = s.warmFactors(ap)
	}
	if err != nil {
		return nil, err
	}
	initTime := time.Since(t0)

	t1 := time.Now()
	core, fit, iters, converged, err := ap.iterate(factors, 1, 0)
	if err != nil {
		return nil, err
	}
	ap.recordPoolStats()
	s.prevFactors = append([]*mat.Dense(nil), factors...)

	return &Decomposition{
		Model:     ap.toOriginalOrder(core, factors),
		Fit:       fit,
		Converged: converged,
		Stats:     Stats{InitTime: initTime, IterTime: time.Since(t1), Iters: iters},
	}, nil
}

// warmFactors reuses the previous non-temporal factors and rebuilds only
// the temporal factor (whose row count grew) from the projected tensor.
func (s *Stream) warmFactors(ap *Approximation) ([]*mat.Dense, error) {
	col := ap.opts.Metrics
	col.StartPhase(metrics.PhaseInit)
	defer col.EndPhase(metrics.PhaseInit)
	order := len(ap.Shape)
	factors := make([]*mat.Dense, order)
	copy(factors, s.prevFactors)
	w, err := ap.projectedTensor("initialization", factors[0], factors[1])
	if err != nil {
		return nil, err
	}
	y := w
	for k := 2; k < order-1; k++ {
		y = y.ModeProduct(factors[k].T(), k)
	}
	f, err := mat.LeadingLeft(y.Unfold(order-1), ap.Ranks[order-1], ap.opts.Leading)
	if err != nil {
		return nil, fmt.Errorf("core: warm-starting temporal factor: %w", err)
	}
	factors[order-1] = f
	return factors, nil
}

// withContext runs fn with ctx temporarily installed as the stream's
// cancellation context, restoring the previous one afterwards (the stream's
// phases read Options.Context at every boundary).
func (s *Stream) withContext(ctx context.Context, fn func() error) error {
	prev := s.opts.Context
	s.opts.Context = ctx
	defer func() { s.opts.Context = prev }()
	return fn()
}

// AppendContext is Append under a cancellation context: a done ctx stops the
// chunk compression at the next slice boundary, returning a
// dterr.CancelledError, and leaves the stream unchanged.
func (s *Stream) AppendContext(ctx context.Context, chunk *tensor.Dense) error {
	return s.withContext(ctx, func() error { return s.Append(chunk) })
}

// DecomposeContext is Decompose under a cancellation context, observed at
// every initialization-factor and iteration-sweep boundary.
func (s *Stream) DecomposeContext(ctx context.Context) (*Decomposition, error) {
	var dec *Decomposition
	err := s.withContext(ctx, func() error {
		var err error
		dec, err = s.Decompose()
		return err
	})
	return dec, err
}

// DecomposeRangeContext is DecomposeRange under a cancellation context.
func (s *Stream) DecomposeRangeContext(ctx context.Context, t0, t1 int) (*Decomposition, error) {
	var dec *Decomposition
	err := s.withContext(ctx, func() error {
		var err error
		dec, err = s.DecomposeRange(t0, t1)
		return err
	})
	return dec, err
}
