package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/kernelsel"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/randsvd"
	"repro/internal/tensor"
)

// siteApproxSlice is the fault-injection hook covering each slice
// compression of the approximation phase (no-op unless a test arms it).
var siteApproxSlice = faults.NewSite("core.approx.slice")

// SliceSVD is the rank-r compression of one I1×I2 frontal slice:
// X_l ≈ U·diag(S)·Vᵀ.
type SliceSVD struct {
	U *mat.Dense // I1×r
	S []float64  // r, descending
	V *mat.Dense // I2×r
}

// Approximation is the output of D-Tucker's approximation phase: the
// compressed slices plus the bookkeeping needed to run the remaining phases
// and to map results back to the input's mode order. It replaces the raw
// tensor for all subsequent computation.
type Approximation struct {
	// Slices holds the per-slice rank-r SVDs, enumerated with mode 3
	// fastest (the tensor's frontal-slice order), in reordered mode space.
	Slices []SliceSVD
	// Shape is the tensor shape in reordered mode space.
	Shape []int
	// Perm maps reordered positions to original modes: reordered mode k is
	// original mode Perm[k].
	Perm []int
	// Ranks are the target core dimensionalities in reordered mode space.
	Ranks []int
	// NormX is the Frobenius norm of the input tensor, captured here so
	// the iteration phase can estimate fits without the raw data.
	NormX float64
	// SliceRank is the compression rank r.
	SliceRank int

	opts Options
	// pl is the decomposition's worker pool (see internal/pool); created by
	// Approximate, or lazily for literal-built Approximations.
	pl *pool.Pool
	// scratch caches the per-mode iteration buffers (see accScratch);
	// iterate releases them back to the pool arena when it returns.
	scratch [2]*accScratch
}

// workerPool returns the Approximation's pool, creating it from the
// options on first use. It is called from the single goroutine driving the
// decomposition, never from pool workers.
func (ap *Approximation) workerPool() *pool.Pool {
	if ap.pl == nil {
		ap.pl = ap.opts.newPool()
	}
	return ap.pl
}

// recordPoolStats snapshots the pool's utilization counters into the run's
// metrics collector (a nil collector makes this a no-op).
func (ap *Approximation) recordPoolStats() {
	col := ap.opts.Metrics
	if col == nil || ap.pl == nil {
		return
	}
	st := ap.pl.Stats()
	col.RecordPool(metrics.PoolStats{
		Workers:   st.Workers,
		Regions:   st.Regions,
		Tasks:     st.Tasks,
		BusyNanos: int64(st.Busy),
	})
}

// modeOrder returns the permutation sorting modes by decreasing
// dimensionality (stable, so equal modes keep their relative order).
func modeOrder(shape []int) []int {
	perm := make([]int, len(shape))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return shape[perm[a]] > shape[perm[b]] })
	return perm
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func isIdentityPerm(p []int) bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Approximate runs the approximation phase: it reorders modes so the two
// largest lead (unless opts.NoReorder), splits the tensor into frontal
// slices, and compresses each slice with a rank-r randomized SVD.
//
// This is the only phase that reads the raw tensor; its output is the
// compressed representation every later phase works from.
func Approximate(x *tensor.Dense, opts Options) (_ *Approximation, err error) {
	defer dterr.RecoverTo(&err, "core.Approximate")
	if x == nil {
		return nil, fmt.Errorf("core: nil tensor: %w", dterr.ErrInvalidInput)
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("core: D-Tucker requires an order ≥ 2 tensor, got order %d: %w",
			x.Order(), dterr.ErrInvalidInput)
	}
	if !x.IsFinite() {
		return nil, fmt.Errorf("core: input tensor contains NaN or Inf: %w", dterr.ErrNonFiniteInput)
	}
	opts, err = opts.withDefaults(x.Order())
	if err != nil {
		return nil, err
	}
	if err := opts.cancelled("approximation"); err != nil {
		return nil, err
	}

	perm := identityPerm(x.Order())
	if !opts.NoReorder {
		perm = modeOrder(x.Shape())
	}
	shape := make([]int, len(perm))
	ranks := make([]int, len(perm))
	for k, p := range perm {
		shape[k] = x.Dim(p)
		ranks[k] = opts.Ranks[p]
		if ranks[k] > shape[k] {
			return nil, fmt.Errorf("core: rank %d exceeds dimensionality %d of mode %d", ranks[k], shape[k], p)
		}
	}
	r := opts.SliceRank
	if r <= 0 {
		r = ranks[0]
		if ranks[1] > r {
			r = ranks[1]
		}
	}
	if lim := min(shape[0], shape[1]); r > lim {
		r = lim
	}

	col := opts.Metrics
	col.StartPhase(metrics.PhaseApprox)
	ap := &Approximation{
		Shape:     shape,
		Perm:      perm,
		Ranks:     ranks,
		NormX:     x.Norm(),
		SliceRank: r,
		opts:      opts,
		pl:        opts.newPool(),
	}
	if col.Tracing() {
		l := 1
		for _, d := range shape[2:] {
			l *= d
		}
		col.Tracef("approximation: compressing %d slices of %d×%d to rank %d (%d workers)",
			l, shape[0], shape[1], r, opts.Workers)
	}
	// Slices are gathered straight from x's storage (no materialized
	// permutation) and compressed.
	ap.Slices, err = compressSlices(x, perm, r, 0, opts, ap.pl)
	col.EndPhase(metrics.PhaseApprox)
	if err != nil {
		return nil, err
	}
	return ap, nil
}

// compressSlices runs the per-slice randomized SVDs in the mode order
// given by perm, one pool task per slice. Slice l always draws from a
// generator seeded Seed+l and writes only its own entry, so the result is
// identical regardless of Workers. keyBase offsets the fault-injection keys
// (streams pass their running slice count so keys stay absolute). A failed
// or cancelled region drains before returning — no slice is half-written.
func compressSlices(x *tensor.Dense, perm []int, r int, keyBase int64, opts Options, pl *pool.Pool) ([]SliceSVD, error) {
	ns := 1
	for _, p := range perm[2:] {
		ns *= x.Dim(p)
	}
	slices := make([]SliceSVD, ns)
	err := pl.RunLabeled(opts.Context, "slice", ns, func(_, l int) error {
		if err := siteApproxSlice.Inject(); err != nil {
			return fmt.Errorf("core: compressing slice %d: %w", l, err)
		}
		t0 := metrics.HistStart()
		res, kern, fell, err := sliceSVD(x.PermutedFrontalSlice(perm, l), r, l, keyBase, opts)
		metrics.ObserveSince(metrics.HistSliceSVD, t0)
		if err != nil {
			return fmt.Errorf("core: compressing slice %d: %w", l, err)
		}
		if fell {
			opts.Metrics.Tracef("slice %d: %s kernel broke down, dense fallback used", l, kern)
		}
		slices[l] = SliceSVD{U: res.U, S: res.S, V: res.V}
		metrics.CountSliceSVD()
		switch kern {
		case kernelsel.KernelExactSVD:
			metrics.ObserveSince(metrics.HistSliceSVDExact, t0)
			metrics.CountSliceKernelExact()
		case kernelsel.KernelGramEig:
			metrics.ObserveSince(metrics.HistSliceSVDGram, t0)
			metrics.CountSliceKernelGram()
		default:
			metrics.ObserveSince(metrics.HistSliceSVDRand, t0)
			metrics.CountSliceKernelRand()
		}
		return nil
	})
	if err != nil {
		return nil, wrapCancel("approximation", err)
	}
	return slices, nil
}

// sliceSVD compresses one slice to rank r with the kernel the normalized
// config selects: a forced kernel name, or — under "auto" — the cost-model
// choice, which is a pure function of (shape, rank, profile) and therefore
// identical across workers, runs, and processes. The randomized path draws
// from a per-slice seed so its result is independent of worker scheduling
// and runs behind the retry-then-dense-SVD recovery chain; the Gram path
// falls back deterministically to the exact SVD if the eigensolver fails.
// Returns the result, the kernel that was selected, and whether a fallback
// produced the result.
func sliceSVD(slice *mat.Dense, r, l int, keyBase int64, opts Options) (mat.SVDResult, kernelsel.Kernel, bool, error) {
	kern := kernelsel.KernelRandSVD
	switch opts.SliceKernel {
	case "exact":
		kern = kernelsel.KernelExactSVD
	case "gram":
		kern = kernelsel.KernelGramEig
	case "auto":
		m, n := slice.Dims()
		kern = opts.Profile.Choose(m, n, r, opts.Oversampling, opts.PowerIters)
	}
	switch kern {
	case kernelsel.KernelExactSVD:
		res, err := mat.SVD(slice)
		if err != nil {
			return mat.SVDResult{}, kern, false, err
		}
		return res.Truncate(r), kern, false, nil
	case kernelsel.KernelGramEig:
		res, err := mat.GramSVD(slice, r)
		if err == nil {
			return res, kern, false, nil
		}
		// The Jacobi eigensolver failing to converge is input-determined, so
		// this fallback fires for every worker count alike and results stay
		// deterministic.
		res, err = mat.SVD(slice)
		if err != nil {
			return mat.SVDResult{}, kern, true, err
		}
		return res.Truncate(r), kern, true, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(l)))
	res, fell, err := randsvd.SVDWithFallback(slice, r, randsvd.Options{
		Oversampling: opts.Oversampling,
		PowerIters:   opts.PowerIters,
		Rng:          rng,
		FaultKey:     keyBase + int64(l),
	})
	return res, kern, fell, err
}

// NumSlices returns the number of compressed slices L.
func (ap *Approximation) NumSlices() int { return len(ap.Slices) }

// StorageFloats returns the number of float64 values the compressed
// representation stores: L·(I1·r + r + I2·r). This is the preprocessing
// space cost reported in the experiments.
func (ap *Approximation) StorageFloats() int {
	total := 0
	for _, s := range ap.Slices {
		total += s.U.Rows()*s.U.Cols() + len(s.S) + s.V.Rows()*s.V.Cols()
	}
	return total
}

// sliceIndex decodes flat slice index l into the multi-index over modes
// 3..N (mode 3 fastest), mirroring tensor.Dense.SliceIndex.
func (ap *Approximation) sliceIndex(l int, idx []int) []int {
	rest := ap.Shape[2:]
	if cap(idx) < len(rest) {
		idx = make([]int, len(rest))
	}
	idx = idx[:len(rest)]
	for k, s := range rest {
		idx[k] = l % s
		l /= s
	}
	return idx
}

// ApproxRelError returns the relative Frobenius error of the slice-SVD
// approximation itself — the floor below which the Tucker fit cannot go.
func (ap *Approximation) ApproxRelError() float64 {
	if ap.NormX == 0 {
		return 0
	}
	var kept float64
	for _, s := range ap.Slices {
		for _, v := range s.S {
			kept += v * v
		}
	}
	resid2 := ap.NormX*ap.NormX - kept
	if resid2 < 0 {
		resid2 = 0
	}
	return math.Sqrt(resid2) / ap.NormX
}
