// Package core implements D-Tucker (Jang & Kang, ICDE 2020): a fast and
// memory-efficient Tucker decomposition for large dense tensors.
//
// D-Tucker runs in three phases.
//
//  1. Approximation: the tensor is viewed as L = ∏_{n≥3} I_n frontal slices
//     of size I1×I2 (after reordering modes so the two largest come first),
//     and each slice is compressed once with a rank-r randomized SVD,
//     X_l ≈ U_l·diag(S_l)·V_lᵀ. Every later phase touches only these
//     compressed slices — the raw tensor is never revisited.
//  2. Initialization: the factor matrix of mode 1 is initialized from the
//     SVD of the stacked [U_1S_1 … U_LS_L], mode 2 from [V_1S_1 … V_LS_L],
//     and the remaining modes plus the core from the small projected tensor
//     W with slices W_l = (A(1)ᵀU_l)·diag(S_l)·(V_lᵀA(2)).
//  3. Iteration: ALS (HOOI) updates evaluated through the slice SVDs, so a
//     full sweep costs O(L·(I1+I2)·(J² + J^{N-1})) instead of the
//     O(J·∏I_k) a raw-tensor sweep costs.
//
// Complexity (I1 ≥ I2 ≥ … , L slices, slice rank r ≈ J, M iterations):
//
//	approximation: O(L·I1·I2·r) time, O(L·(I1+I2+1)·r) space
//	initialization: O(L·(I1+I2)·r·J) time
//	iteration:      O(M·N·L·(I1+I2)·(J·r + J^{N-1})) time,
//	                O(L·(I1+I2)·r + I1·J^{N-1}) space
//
// matching the figures attributed to D-Tucker in follow-up work (time
// O(I^{N-2}·M·N·J²·I), space O(I^{N-2}·J·I) for an I-cube).
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dterr"
	"repro/internal/kernelsel"
	"repro/internal/metrics"
	"repro/internal/pool"
)

// Options configures a D-Tucker decomposition: the serializable Config —
// the plain-data request, see its doc — plus the runtime attachments that
// only make sense inside one process (cancellation context, metrics
// collector, worker pool). The split is what lets the dtuckerd serving
// layer ship a request across the wire and re-attach process-local state on
// the other side.
type Options struct {
	Config

	// Context, when non-nil, cancels the decomposition cooperatively: it is
	// checked at every per-slice boundary of the approximation phase, every
	// per-factor boundary of the initialization phase, and every sweep
	// boundary of the iteration phase. A cancelled run returns a
	// dterr.CancelledError naming the interrupted phase and wrapping the
	// context's error (errors.Is context.Canceled / DeadlineExceeded), with
	// all worker goroutines joined before the call returns.
	Context context.Context

	// Workers sizes this decomposition's worker pool, which parallelizes
	// all three phases: slice compression in the approximation phase, and
	// the slice/row-parallel iteration kernels plus the projected-tensor
	// mode products in the later phases. Zero selects 1, matching the
	// paper's single-thread protocol. Every parallel site follows an
	// owner-computes split, so results are bit-identical for every value
	// (see Config.Seed).
	Workers int

	// Pool optionally supplies an externally owned worker pool, sharing
	// workers and the scratch-buffer arena across decompositions (a Stream
	// does this internally for its refreshes, and dtuckerd shares one pool
	// across every job). Nil — the default — creates a fresh pool of
	// Workers size per decomposition. When set, it takes precedence over
	// Workers. Unlike the deprecated process-global mat.SetWorkers, a pool
	// is explicit context: concurrent decompositions with different
	// settings cannot stomp each other.
	Pool *pool.Pool

	// Metrics, when non-nil, receives per-phase wall times, kernel counter
	// deltas (SVD/QR/matmul calls and flop estimates), memory samples, and
	// the iteration-level fit trajectory, and carries the optional progress
	// trace sink. A nil Metrics — the default — adds no allocations and no
	// measurable overhead to the decomposition (every hook is a nil-safe
	// no-op). Counters are shared process-wide; see package metrics.
	Metrics *metrics.Collector

	// CheckpointSink, when non-nil, receives the live iteration state at the
	// end of every ALS sweep — after the sweep's fit is computed, before the
	// convergence decision is acted on. The checkpoint aliases working
	// state: the sink must serialize or deep-copy before returning and must
	// not retain the pointers. The call is synchronous and its error fails
	// the decomposition (fail-stop durability: a run whose checkpoints
	// cannot be persisted is not allowed to advance past what recovery could
	// reproduce). Terminal sweeps are marked Done so a resumed run can
	// short-circuit to the result.
	CheckpointSink func(*Checkpoint) error

	// Resume, when non-nil, continues the iteration phase from a previously
	// captured checkpoint instead of running initialization: the
	// approximation phase is recomputed (it is deterministic and cheap
	// relative to lost sweeps), initFactors is skipped, and sweeps continue
	// at Resume.Sweep+1 with the checkpoint's fit as the convergence
	// baseline. Because every parallel site is owner-computes, the resumed
	// run's factors, core, and fit are bit-identical to an uninterrupted
	// one. The checkpoint must carry this config's Fingerprint; a mismatch
	// (or any shape inconsistency) is a dterr.ErrCorruptArtifact error.
	Resume *Checkpoint

	// Profile supplies the calibrated kernelsel cost model that SliceKernel
	// "auto" resolves against. Nil selects kernelsel.Default(). When
	// Config.KernelProfile is non-empty it must equal this profile's
	// fingerprint — a mismatch is an invalid-input error, because a result
	// computed under a different profile than the one named in the cache key
	// would poison the serving cache.
	Profile *kernelsel.Profile
}

func (o Options) withDefaults(order int) (Options, error) {
	if len(o.Ranks) != order {
		return o, fmt.Errorf("core: %d ranks for an order-%d tensor: %w",
			len(o.Ranks), order, dterr.ErrInvalidInput)
	}
	if err := o.Config.Validate(); err != nil {
		return o, err
	}
	o.Config = o.Config.Normalized()
	if o.Profile == nil {
		o.Profile = kernelsel.Default()
	}
	if o.SliceKernel == "auto" && o.KernelProfile != "" {
		if fp := o.Profile.Fingerprint(); o.KernelProfile != fp {
			return o, fmt.Errorf("core: config names kernel profile %s but the process runs %s: %w",
				o.KernelProfile, fp, dterr.ErrInvalidInput)
		}
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.Pool != nil {
		o.Workers = o.Pool.Size()
	}
	return o, nil
}

// cancelled returns the phase-tagged cancellation error when the options'
// context is done, nil otherwise. Phase boundaries call it so a cancelled
// run stops within one slice/sweep of the signal.
func (o Options) cancelled(phase string) error {
	if o.Context != nil && o.Context.Err() != nil {
		return dterr.Cancelled(phase, o.Context.Err())
	}
	return nil
}

// wrapCancel tags a context error surfaced by a parallel region with the
// phase it interrupted; errors already phase-tagged, and all non-context
// errors, pass through unchanged.
func wrapCancel(phase string, err error) error {
	if err == nil {
		return nil
	}
	var tagged *dterr.CancelledError
	if errors.As(err, &tagged) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return dterr.Cancelled(phase, err)
	}
	return err
}

// newPool returns the decomposition's execution pool: the caller-supplied
// one when set, otherwise a fresh pool of Workers size carrying the
// collector's span tracer so labeled parallel regions record per-task spans
// on worker lanes. A caller-supplied pool is externally owned, so its tracer
// (or lack of one) is left alone.
func (o Options) newPool() *pool.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	p := pool.New(o.Workers)
	p.SetTracer(o.Metrics.Tracer())
	return p
}
