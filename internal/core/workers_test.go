package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pool"
	"repro/internal/tensor"
)

// bitIdentical reports whether two float slices are equal bit for bit —
// no tolerance, the Options.Seed contract.
func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestApproximateBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := lowRankTensor(rng, 0.1, 3, 13, 11, 18)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	a, err := Approximate(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	b, err := Approximate(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Slices) != len(b.Slices) {
		t.Fatalf("slice counts differ: %d vs %d", len(a.Slices), len(b.Slices))
	}
	for l := range a.Slices {
		if !bitIdentical(a.Slices[l].U.Data(), b.Slices[l].U.Data()) ||
			!bitIdentical(a.Slices[l].S, b.Slices[l].S) ||
			!bitIdentical(a.Slices[l].V.Data(), b.Slices[l].V.Data()) {
			t.Fatalf("slice %d SVD differs across worker counts", l)
		}
	}
}

func TestDecomposeBitIdenticalAcrossWorkerCounts(t *testing.T) {
	// Full pipeline, several worker counts (including more workers than
	// slices): every run must produce the exact bits of the serial run.
	rng := rand.New(rand.NewSource(21))
	x := lowRankTensor(rng, 0.1, 3, 12, 10, 4, 3)
	base := Options{Config: Config{Ranks: uniformRanks(4, 3), Seed: 33}}
	ref, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		opts := base
		opts.Workers = workers
		dec, err := Decompose(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Fit != ref.Fit || dec.Stats.Iters != ref.Stats.Iters || dec.Converged != ref.Converged {
			t.Fatalf("workers=%d: fit/iters/converged %v/%d/%v differ from serial %v/%d/%v",
				workers, dec.Fit, dec.Stats.Iters, dec.Converged, ref.Fit, ref.Stats.Iters, ref.Converged)
		}
		for n := range ref.Factors {
			if !bitIdentical(dec.Factors[n].Data(), ref.Factors[n].Data()) {
				t.Fatalf("workers=%d: factor %d differs from serial run", workers, n)
			}
		}
		if !bitIdentical(dec.Core.Data(), ref.Core.Data()) {
			t.Fatalf("workers=%d: core differs from serial run", workers)
		}
	}
}

func TestConcurrentDecomposeDifferentWorkers(t *testing.T) {
	// Concurrent decompositions with DIFFERENT Workers settings must not
	// interfere: parallelism is per-decomposition pool state, not a process
	// global. Run under -race this also proves the pools share nothing.
	rng := rand.New(rand.NewSource(22))
	x := lowRankTensor(rng, 0.1, 3, 12, 12, 12)
	base := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 17}}
	ref, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	decs := make([]*Decomposition, 8)
	for i := range decs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := base
			opts.Workers = 1 + i%4
			decs[i], errs[i] = Decompose(x, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
		if !bitIdentical(decs[i].Core.Data(), ref.Core.Data()) {
			t.Fatalf("concurrent run %d (workers=%d) differs from serial reference", i, 1+i%4)
		}
	}
}

func TestSharedPoolAcrossDecompositions(t *testing.T) {
	// An externally owned pool can be reused across decompositions; results
	// still match a per-run pool, and the pool's size wins over Workers.
	rng := rand.New(rand.NewSource(23))
	x := lowRankTensor(rng, 0.1, 3, 12, 12, 12)
	base := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 17}}
	ref, err := Decompose(x, base)
	if err != nil {
		t.Fatal(err)
	}
	pl := pool.New(3)
	for round := 0; round < 2; round++ {
		opts := base
		opts.Pool = pl
		dec, err := Decompose(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(dec.Core.Data(), ref.Core.Data()) {
			t.Fatalf("round %d: shared-pool run differs from serial reference", round)
		}
	}
	if st := pl.Stats(); st.Regions == 0 || st.Tasks == 0 {
		t.Fatalf("shared pool saw no work: %+v", st)
	}
}

func TestIterateReportsNonConvergence(t *testing.T) {
	// With Tol = 0 the stopping test |Δfit| < 0 can never pass, so iterate
	// must run all MaxIters sweeps and report converged = false — not clamp
	// the count and pretend the run settled (the pre-fix behavior).
	rng := rand.New(rand.NewSource(24))
	x := tensor.RandN(rng, 10, 9, 8) // full rank: fit keeps moving
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 2), Seed: 3, MaxIters: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ap.opts.Tol = 0 // withDefaults maps 0 to 1e-4, so set it after the fact
	fs, err := ap.initFactors()
	if err != nil {
		t.Fatal(err)
	}
	_, _, iters, converged, err := ap.iterate(fs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if converged {
		t.Fatal("iterate reported convergence with Tol = 0")
	}
	if iters != 3 {
		t.Fatalf("iters = %d, want the full MaxIters = 3 budget", iters)
	}
}

func TestDecomposeSurfacesConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(25))

	// Exactly low-rank data settles within the default budget.
	easy := lowRankTensor(rng, 0, 3, 14, 12, 10)
	dec, err := Decompose(easy, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Converged {
		t.Fatal("easy decomposition did not report convergence")
	}

	// A 1-sweep budget cannot converge (the stopping test needs two fits).
	hard := tensor.RandN(rng, 12, 11, 10)
	dec, err = Decompose(hard, Options{Config: Config{Ranks: uniformRanks(3, 2), Seed: 6, MaxIters: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Converged {
		t.Fatal("1-sweep run reported convergence")
	}
	if dec.Stats.Iters != 1 {
		t.Fatalf("Iters = %d, want 1", dec.Stats.Iters)
	}
}

func TestAccumulateSliceModeSteadyStateAllocFree(t *testing.T) {
	// After the first sweep warms the arena-backed scratch, the serial
	// accumulation path must not allocate at all.
	rng := rand.New(rand.NewSource(26))
	x := lowRankTensor(rng, 0.1, 3, 12, 10, 8)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	fs := randomFactors(rand.New(rand.NewSource(1)), ap.Shape, ap.Ranks)
	for mode := 0; mode < 2; mode++ {
		ap.accumulateSliceMode(mode, fs) // warm the scratch
		allocs := testing.AllocsPerRun(10, func() {
			ap.accumulateSliceMode(mode, fs)
		})
		if allocs > 0 {
			t.Errorf("mode %d: %v allocs per steady-state accumulation, want 0", mode, allocs)
		}
	}
	ap.releaseScratch()
}

func TestIterateReleasesScratchToArena(t *testing.T) {
	// iterate must hand its scratch back: a second Decompose on the same
	// Approximation reuses the arena instead of leaking per-sweep buffers.
	rng := rand.New(rand.NewSource(27))
	x := lowRankTensor(rng, 0.1, 3, 12, 10, 8)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Decompose(); err != nil {
		t.Fatal(err)
	}
	if ap.scratch[0] != nil || ap.scratch[1] != nil {
		t.Fatal("iterate returned with scratch still held")
	}
	// The arena now holds the released buffers; the next accumulation's
	// scratch rebuild must come from it without fresh large allocations.
	fs := randomFactors(rand.New(rand.NewSource(1)), ap.Shape, ap.Ranks)
	ap.accumulateSliceMode(0, fs)
	got := ap.scratch[0].y.Data()
	ap.releaseScratchMode(0)
	reused := ap.pl.Get(len(got))
	if &reused[0] != &got[0] {
		t.Error("released accumulation buffer was not recycled by the arena")
	}
	ap.pl.Put(reused)
}

func TestPoolPrecedenceOverWorkers(t *testing.T) {
	opts, err := Options{Config: Config{Ranks: []int{2, 2}}, Workers: 7, Pool: pool.New(2)}.withDefaults(2)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 2 {
		t.Fatalf("Workers = %d after withDefaults, want the pool's size 2", opts.Workers)
	}
	if opts.newPool() != opts.Pool {
		t.Fatal("newPool did not return the supplied pool")
	}
}
