package core

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// exactApproximation builds an Approximation whose slice SVDs are EXACT
// (full-rank), so the slice-based phase kernels must agree with dense
// computation to machine precision.
func exactApproximation(t *testing.T, x *tensor.Dense, ranks []int) *Approximation {
	t.Helper()
	opts, err := Options{Config: Config{Ranks: ranks, Seed: 3}}.withDefaults(x.Order())
	if err != nil {
		t.Fatal(err)
	}
	opts.NoReorder = true
	full := min(x.Dim(0), x.Dim(1))
	ap := &Approximation{
		Shape:     x.Shape(),
		Perm:      identityPerm(x.Order()),
		Ranks:     ranks,
		NormX:     x.Norm(),
		SliceRank: full,
		opts:      opts,
	}
	for l := 0; l < x.NumSlices(); l++ {
		res, err := mat.SVD(x.FrontalSlice(l))
		if err != nil {
			t.Fatal(err)
		}
		ap.Slices = append(ap.Slices, SliceSVD{U: res.U, S: res.S, V: res.V})
	}
	return ap
}

func randomFactors(rng *rand.Rand, shape, ranks []int) []*mat.Dense {
	fs := make([]*mat.Dense, len(shape))
	for n := range shape {
		fs[n] = mat.RandOrthonormal(shape[n], ranks[n], rng)
	}
	return fs
}

func TestProjectedTensorMatchesDense(t *testing.T) {
	// W must equal X ×₁ A(1)ᵀ ×₂ A(2)ᵀ when the slice SVDs are exact.
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 7, 6, 5, 3)
	ranks := []int{3, 2, 2, 2}
	ap := exactApproximation(t, x, ranks)
	fs := randomFactors(rng, x.Shape(), ranks)

	got, err := ap.projectedTensor("initialization", fs[0], fs[1])
	if err != nil {
		t.Fatal(err)
	}
	want := x.ModeProduct(fs[0].T(), 0).ModeProduct(fs[1].T(), 1)
	if !got.EqualApprox(want, 1e-9) {
		t.Fatal("projectedTensor disagrees with dense projection")
	}
}

func TestAccumulateSliceModeMatchesDense(t *testing.T) {
	// The mode-1/2 accumulations must equal the dense HOOI matrices
	// (X ×_{k≠n} A(k)ᵀ unfolded) when the slice SVDs are exact.
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][]int{{6, 5, 4}, {7, 6, 3, 2}, {5, 8}} {
		x := tensor.RandN(rng, shape...)
		ranks := make([]int, len(shape))
		for i := range ranks {
			ranks[i] = 2
		}
		ap := exactApproximation(t, x, ranks)
		fs := randomFactors(rng, shape, ranks)
		for mode := 0; mode < 2; mode++ {
			got, err := ap.accumulateSliceMode(mode, fs)
			if err != nil {
				t.Fatal(err)
			}
			want := x.TTMAllTransposed(fs, mode).Unfold(mode)
			if !got.EqualApprox(want, 1e-9) {
				t.Fatalf("shape %v mode %d: slice accumulation disagrees with dense", shape, mode)
			}
		}
	}
}

func TestIterateMatchesDenseHOOISweep(t *testing.T) {
	// One full D-Tucker sweep from a fixed initialization must match one
	// dense HOOI sweep exactly (up to sign/rotation of singular vectors —
	// compare subspaces via projectors) when slice SVDs are exact.
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 8, 7, 6)
	ranks := []int{3, 3, 3}
	ap := exactApproximation(t, x, ranks)
	ap.opts.MaxIters = 1
	ap.opts.Leading = mat.LeadingJacobi

	init := randomFactors(rng, x.Shape(), ranks)
	sliceFs := append([]*mat.Dense(nil), init...)
	core1, _, _, _, err := ap.iterate(sliceFs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	denseFs := append([]*mat.Dense(nil), init...)
	for n := 0; n < 3; n++ {
		y := x.TTMAllTransposed(denseFs, n)
		f, err := mat.LeadingLeft(y.Unfold(n), ranks[n], mat.LeadingJacobi)
		if err != nil {
			t.Fatal(err)
		}
		denseFs[n] = f
	}
	core2 := x.TTMAllTransposed(denseFs, -1)

	for n := 0; n < 3; n++ {
		// Compare projectors P = F·Fᵀ, which are rotation-invariant.
		p1 := mat.MulTB(sliceFs[n], sliceFs[n])
		p2 := mat.MulTB(denseFs[n], denseFs[n])
		if !p1.EqualApprox(p2, 1e-7) {
			t.Fatalf("mode-%d subspace differs between slice-based and dense sweep", n)
		}
	}
	if d := core1.Norm() - core2.Norm(); d > 1e-7 || d < -1e-7 {
		t.Fatalf("core norms differ: %g vs %g", core1.Norm(), core2.Norm())
	}
}

func TestInitFactorsOrthonormalAndAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := lowRankTensor(rng, 0.05, 3, 14, 12, 10)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ap.initFactors()
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range fs {
		if !mat.Gram(f).EqualApprox(mat.Identity(f.Cols()), 1e-8) {
			t.Fatalf("init factor %d not orthonormal", n)
		}
		if f.Rows() != ap.Shape[n] || f.Cols() != ap.Ranks[n] {
			t.Fatalf("init factor %d has shape %d×%d", n, f.Rows(), f.Cols())
		}
	}
	// On exactly low-rank data the initialization alone should already
	// capture most of the energy: one subsequent sweep must converge.
	core, fit, iters, _, err := ap.iterate(fs, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fit < 0.9 {
		t.Fatalf("fit %g after iterate from init", fit)
	}
	if core == nil || iters < 1 {
		t.Fatal("iterate returned no core")
	}
}

func TestSliceIndexConsistentWithTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandN(rng, 4, 3, 5, 2, 3)
	ap := &Approximation{Shape: x.Shape()}
	var idx []int
	for l := 0; l < x.NumSlices(); l++ {
		idx = ap.sliceIndex(l, idx)
		want := x.SliceIndex(l)
		for k := range want {
			if idx[k] != want[k] {
				t.Fatalf("sliceIndex(%d) = %v, want %v", l, idx, want)
			}
		}
	}
}

func TestModeOrderStableDescending(t *testing.T) {
	perm := modeOrder([]int{5, 9, 9, 2})
	// 9s keep relative order (stable): modes 1, 2, then 0, then 3.
	want := []int{1, 2, 0, 3}
	for i, p := range perm {
		if p != want[i] {
			t.Fatalf("modeOrder = %v, want %v", perm, want)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	o, err := Options{Config: Config{Ranks: []int{2, 2}}}.withDefaults(2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Tol != 1e-4 || o.MaxIters != 100 || o.Oversampling != 5 || o.PowerIters != 1 || o.Workers != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if _, err := (Options{Config: Config{Ranks: []int{2}}}).withDefaults(2); err == nil {
		t.Fatal("rank-count mismatch accepted")
	}
}
