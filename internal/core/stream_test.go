package core

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// chunked splits x into pieces along its last mode.
func chunked(x *tensor.Dense, sizes ...int) []*tensor.Dense {
	order := x.Order()
	shape := x.Shape()
	area := 1
	for _, d := range shape[:order-1] {
		area *= d
	}
	var out []*tensor.Dense
	off := 0
	for _, sz := range sizes {
		cs := append([]int(nil), shape[:order-1]...)
		cs = append(cs, sz)
		chunk := tensor.NewFromData(append([]float64(nil), x.Data()[off*area:(off+sz)*area]...), cs...)
		out = append(out, chunk)
		off += sz
	}
	return out
}

func TestStreamMatchesBatchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0.1, 3, 16, 14, 24)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5, NoReorder: true}}

	batch, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}

	st := NewStream(opts)
	for _, c := range chunked(x, 8, 8, 8) {
		if err := st.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 24 {
		t.Fatalf("stream Len = %d", st.Len())
	}
	dec, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	be, se := batch.RelError(x), dec.RelError(x)
	if se > be+0.03 {
		t.Fatalf("stream error %g vs batch %g", se, be)
	}
}

func TestStreamIncrementalDecompose(t *testing.T) {
	// Decompose after each chunk; errors must stay small throughout and
	// warm starts must not break anything.
	rng := rand.New(rand.NewSource(2))
	x := lowRankTensor(rng, 0.05, 3, 14, 12, 30)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := NewStream(opts)
	chunks := chunked(x, 10, 10, 10)
	seen := 0
	for _, c := range chunks {
		if err := st.Append(c); err != nil {
			t.Fatal(err)
		}
		seen += c.Dim(2)
		dec, err := st.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		// Compare against the prefix of x observed so far.
		prefix := tensor.NewFromData(append([]float64(nil), x.Data()[:14*12*seen]...), 14, 12, seen)
		if rel := dec.RelError(prefix); rel > 0.15 {
			t.Fatalf("after %d steps: relative error %g", seen, rel)
		}
	}
}

func TestStreamWarmStartConvergesFaster(t *testing.T) {
	// After appending a small new chunk, the warm-started solve should
	// need no more sweeps than a cold solve of the same data.
	rng := rand.New(rand.NewSource(3))
	x := lowRankTensor(rng, 0.1, 3, 16, 14, 40)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5, Tol: 1e-5}}

	st := NewStream(opts)
	cs := chunked(x, 32, 8)
	if err := st.Append(cs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Decompose(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(cs[1]); err != nil {
		t.Fatal(err)
	}
	warm, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}

	cold := NewStream(opts)
	if err := cold.Append(cs[0]); err != nil {
		t.Fatal(err)
	}
	if err := cold.Append(cs[1]); err != nil {
		t.Fatal(err)
	}
	coldDec, err := cold.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Iters > coldDec.Stats.Iters+1 {
		t.Fatalf("warm start took %d sweeps vs cold %d", warm.Stats.Iters, coldDec.Stats.Iters)
	}
}

func TestStreamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := NewStream(opts)
	if _, err := st.Decompose(); err == nil {
		t.Fatal("Decompose on empty stream accepted")
	}
	if err := st.Append(tensor.RandN(rng, 5, 6)); err == nil {
		t.Fatal("order-2 chunk accepted")
	}
	if err := st.Append(tensor.RandN(rng, 8, 8, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(tensor.RandN(rng, 9, 8, 4)); err == nil {
		t.Fatal("mismatched chunk shape accepted")
	}
	if err := st.Append(tensor.RandN(rng, 8, 8, 4, 2)); err == nil {
		t.Fatal("mismatched chunk order accepted")
	}
	// Temporal rank 3 > current length 2 after a short stream must error.
	st2 := NewStream(Options{Config: Config{Ranks: []int{3, 3, 3}, Seed: 5}})
	if err := st2.Append(tensor.RandN(rng, 8, 8, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Decompose(); err == nil {
		t.Fatal("temporal rank above stream length accepted")
	}
}

func TestStreamStorageGrowsLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := NewStream(opts)
	if err := st.Append(tensor.RandN(rng, 10, 9, 4)); err != nil {
		t.Fatal(err)
	}
	s1 := st.StorageFloats()
	if err := st.Append(tensor.RandN(rng, 10, 9, 4)); err != nil {
		t.Fatal(err)
	}
	if st.StorageFloats() != 2*s1 {
		t.Fatalf("storage %d after doubling, want %d", st.StorageFloats(), 2*s1)
	}
	if got := st.Shape(); got[2] != 8 {
		t.Fatalf("Shape = %v", got)
	}
}

func TestStreamOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankTensor(rng, 0.05, 2, 10, 9, 4, 12)
	opts := Options{Config: Config{Ranks: uniformRanks(4, 2), Seed: 5}}
	st := NewStream(opts)
	area := 10 * 9 * 4
	for off := 0; off < 12; off += 4 {
		chunk := tensor.NewFromData(append([]float64(nil), x.Data()[off*area:(off+4)*area]...), 10, 9, 4, 4)
		if err := st.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	dec, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 0.15 {
		t.Fatalf("order-4 stream error %g", rel)
	}
}
