package core

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// subRange extracts x[:,:,t0:t1] (last mode) as a fresh tensor.
func subRange(x *tensor.Dense, t0, t1 int) *tensor.Dense {
	order := x.Order()
	shape := x.Shape()
	area := 1
	for _, d := range shape[:order-1] {
		area *= d
	}
	cs := append([]int(nil), shape[:order-1]...)
	cs = append(cs, t1-t0)
	return tensor.NewFromData(append([]float64(nil), x.Data()[t0*area:t1*area]...), cs...)
}

func rangeStream(t *testing.T, x *tensor.Dense, opts Options) *Stream {
	t.Helper()
	st := NewStream(opts)
	if err := st.Append(x); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDecomposeRangeMatchesDirectDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0.1, 3, 16, 14, 40)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := rangeStream(t, x, opts)

	for _, r := range [][2]int{{0, 40}, {10, 30}, {0, 8}, {32, 40}, {17, 23}} {
		t0, t1 := r[0], r[1]
		dec, err := st.DecomposeRange(t0, t1)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", t0, t1, err)
		}
		sub := subRange(x, t0, t1)
		if got := dec.Factors[2].Rows(); got != t1-t0 {
			t.Fatalf("range [%d,%d): temporal factor has %d rows", t0, t1, got)
		}
		relRange := dec.RelError(sub)

		direct, err := Decompose(sub, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5, NoReorder: true}})
		if err != nil {
			t.Fatal(err)
		}
		relDirect := direct.RelError(sub)
		if relRange > relDirect+0.05 {
			t.Fatalf("range [%d,%d): query error %g vs direct %g", t0, t1, relRange, relDirect)
		}
	}
}

func TestDecomposeRangeLocalPattern(t *testing.T) {
	// A local burst confined to steps 20..24 must be captured much better
	// by a narrow range query over it than by the model of the whole
	// stream — the zoom-in motivation.
	rng := rand.New(rand.NewSource(2))
	x := lowRankTensor(rng, 0.05, 2, 14, 12, 40)
	// Inject a strong rank-1 burst in steps 20..24.
	u := make([]float64, 14)
	v := make([]float64, 12)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	for tt := 20; tt < 25; tt++ {
		for j := 0; j < 12; j++ {
			for i := 0; i < 14; i++ {
				x.Set(x.At(i, j, tt)+3*u[i]*v[j], i, j, tt)
			}
		}
	}
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := rangeStream(t, x, opts)

	whole, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := st.DecomposeRange(20, 25)
	if err != nil {
		t.Fatal(err)
	}
	sub := subRange(x, 20, 25)
	wholeErr := whole.RelError(x) // global model on global data, for context
	narrowErr := narrow.RelError(sub)
	if narrowErr > wholeErr {
		t.Fatalf("narrow query error %g not better than global %g on burst range", narrowErr, wholeErr)
	}
}

func TestDecomposeRangeAfterMultipleAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := lowRankTensor(rng, 0.1, 3, 12, 10, 30)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := NewStream(opts)
	for _, c := range chunked(x, 10, 10, 10) {
		if err := st.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	// A range crossing chunk boundaries.
	dec, err := st.DecomposeRange(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(subRange(x, 5, 25)); rel > 0.15 {
		t.Fatalf("cross-chunk range error %g", rel)
	}
}

func TestDecomposeRangeOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := lowRankTensor(rng, 0.05, 2, 10, 9, 4, 20)
	opts := Options{Config: Config{Ranks: uniformRanks(4, 2), Seed: 5}}
	st := rangeStream(t, x, opts)
	dec, err := st.DecomposeRange(6, 14)
	if err != nil {
		t.Fatal(err)
	}
	sub := subRange(x, 6, 14)
	if rel := dec.RelError(sub); rel > 0.15 {
		t.Fatalf("order-4 range error %g", rel)
	}
}

func TestDecomposeRangeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	empty := NewStream(opts)
	if _, err := empty.DecomposeRange(0, 1); err == nil {
		t.Fatal("range query on empty stream accepted")
	}
	st := rangeStream(t, tensor.RandN(rng, 8, 8, 20), opts)
	for _, r := range [][2]int{{-1, 5}, {5, 5}, {6, 4}, {0, 21}} {
		if _, err := st.DecomposeRange(r[0], r[1]); err == nil {
			t.Fatalf("invalid range %v accepted", r)
		}
	}
	// Range shorter than the temporal rank must be rejected.
	if _, err := st.DecomposeRange(0, 2); err == nil {
		t.Fatal("range shorter than temporal rank accepted")
	}
}

func TestDecomposeRangeDoesNotDisturbStream(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankTensor(rng, 0.1, 3, 12, 10, 24)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 5}}
	st := rangeStream(t, x, opts)
	before, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	nSlices, nSq := len(st.slices), len(st.sliceSq)
	if _, err := st.DecomposeRange(4, 16); err != nil {
		t.Fatal(err)
	}
	if len(st.slices) != nSlices || len(st.sliceSq) != nSq || st.Len() != 24 {
		t.Fatal("range query mutated stream bookkeeping")
	}
	// A subsequent full decomposition must stay equally accurate (it
	// warm-starts, so the factors need not be bit-identical).
	after, err := st.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	be, ae := before.RelError(x), after.RelError(x)
	if ae > be+0.02 {
		t.Fatalf("accuracy degraded after range query: %g vs %g", ae, be)
	}
}
