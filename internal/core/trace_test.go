package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// tracedCollector returns a collector carrying a fresh tracer, with the
// global instrumentation enabled for the test's duration.
func tracedCollector(t *testing.T) (*metrics.Collector, *trace.Tracer) {
	t.Helper()
	prev := metrics.SetEnabled(true)
	t.Cleanup(func() { metrics.SetEnabled(prev) })
	col := &metrics.Collector{}
	tr := trace.New()
	col.SetTracer(tr)
	return col, tr
}

func spanNames(tr *trace.Tracer) map[string]int {
	names := map[string]int{}
	for _, sp := range tr.Spans() {
		names[sp.Name]++
	}
	return names
}

// TestDecomposeTraceShape runs a full parallel decomposition under the
// tracer and checks the span tree has the documented shape: one root, the
// three phase spans beneath it, sweeps under the iteration phase, and
// per-slice worker spans on worker lanes — all balanced.
func TestDecomposeTraceShape(t *testing.T) {
	col, tr := tracedCollector(t)
	rng := rand.New(rand.NewSource(21))
	x := lowRankTensor(rng, 0.1, 4, 24, 20, 8)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 7}, Workers: 4, Metrics: col})
	if err != nil {
		t.Fatal(err)
	}
	if open := tr.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans = %d after clean run", open)
	}
	names := spanNames(tr)
	for _, want := range []string{"decompose", "approximation", "initialization", "iteration", "factor", "sweep", "mode", "project", "slice", "core-update"} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded; got %v", want, names)
		}
	}
	if names["sweep"] != dec.Stats.Iters {
		t.Errorf("%d sweep spans for %d sweeps", names["sweep"], dec.Stats.Iters)
	}
	if names["slice"] != 8 {
		t.Errorf("%d slice spans for 8 slices", names["slice"])
	}

	spans := tr.Spans()
	var root, solve trace.Span
	for _, sp := range spans {
		switch sp.Name {
		case "decompose":
			root = sp
		case "solve":
			solve = sp
		}
	}
	if root.ID == 0 || root.Parent != 0 || root.Lane != 0 {
		t.Fatalf("bad root span %+v", root)
	}
	if solve.ID == 0 || solve.Parent != root.ID {
		t.Fatalf("solve span %+v not a child of the root", solve)
	}
	workerLanes := map[int]bool{}
	for _, sp := range spans {
		if sp.Forced {
			t.Errorf("clean run recorded forced span %+v", sp)
		}
		switch sp.Name {
		case "approximation":
			if sp.Parent != root.ID {
				t.Errorf("phase %q parent %d, want root %d", sp.Name, sp.Parent, root.ID)
			}
		case "initialization", "iteration":
			// The solve stage owns the post-approximation phases.
			if sp.Parent != solve.ID {
				t.Errorf("phase %q parent %d, want solve %d", sp.Name, sp.Parent, solve.ID)
			}
		case "slice", "project-slice", "acc-slice", "acc-rows":
			if sp.Lane < 1 {
				t.Errorf("task span %q on control lane: %+v", sp.Name, sp)
			}
			workerLanes[sp.Lane] = true
		}
	}
	if len(workerLanes) == 0 {
		t.Fatal("no worker-lane spans recorded")
	}

	// The Chrome export of a real decomposition must be one valid JSON
	// document with one complete event per span and a control lane.
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export invalid: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != tr.Len() {
		t.Fatalf("%d complete events for %d spans", complete, tr.Len())
	}
}

// TestTraceBalancedUnderCancellation drives a run cancelled before it starts
// and one cancelled mid-iteration; both must leave zero open spans, the
// mid-run one by force-closing whatever the unwind skipped.
func TestTraceBalancedUnderCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := lowRankTensor(rng, 0.1, 4, 24, 20, 8)

	t.Run("pre-cancelled", func(t *testing.T) {
		col, tr := tracedCollector(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 7}, Workers: 4, Metrics: col, Context: ctx})
		if err == nil {
			t.Fatal("cancelled run succeeded")
		}
		if open := tr.OpenSpans(); open != 0 {
			t.Fatalf("OpenSpans = %d", open)
		}
	})

	t.Run("mid-run", func(t *testing.T) {
		col, tr := tracedCollector(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// Cancel from inside the run's own trace stream, right as the
		// initialization phase completes — the next boundary is a sweep.
		col.SetTrace(func(msg string) {
			if strings.Contains(msg, "initialization done") {
				cancel()
			}
		})
		_, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 7}, Workers: 4, Metrics: col, Context: ctx})
		if err == nil {
			t.Fatal("cancelled run succeeded")
		}
		if open := tr.OpenSpans(); open != 0 {
			t.Fatalf("OpenSpans = %d after mid-run cancellation", open)
		}
		forced := 0
		for _, sp := range tr.Spans() {
			if sp.Forced {
				forced++
			}
		}
		if forced == 0 {
			t.Fatal("mid-run cancellation force-closed nothing — unwind path not exercised")
		}
	})
}

// TestTraceBalancedUnderFaults arms every registered fault site in panic
// mode (error mode for the sites that ignore Mode) and checks the trace is
// balanced whatever path the contained failure unwound through.
func TestTraceBalancedUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := lowRankTensor(rng, 0.05, 3, 12, 10, 6)
	plans := sweepPlans()
	defer faults.Reset()

	for _, site := range faults.Sites() {
		sp, ok := plans[site]
		if !ok {
			t.Fatalf("site %q not covered by sweepPlans", site)
		}
		// The harshest covered mode: panic where supported.
		mode := sp.modes[len(sp.modes)-1]
		plan := sp.plan
		plan.Mode = mode
		t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
			col, tr := tracedCollector(t)
			faults.Reset()
			if err := faults.Activate(site, plan); err != nil {
				t.Fatal(err)
			}
			defer faults.Reset()
			_, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 4, MaxIters: 8}, Workers: 2, Metrics: col})
			if err != nil && sp.surface {
				wantInjected(t, err, site, mode)
			}
			if open := tr.OpenSpans(); open != 0 {
				t.Fatalf("OpenSpans = %d after fault at %q", open, site)
			}
		})
	}
}

// TestHistogramCountsDeterministicAcrossWorkers pins the owner-computes
// determinism contract at the histogram level: the same decomposition run
// with 1 and 4 workers must observe exactly the same number of slice SVDs,
// matmuls, and randomized-SVD stages. Latency values differ run to run;
// observation counts must not. The pool-wait histogram is excluded — a
// single-worker run takes the inline serial path that never queues tasks.
func TestHistogramCountsDeterministicAcrossWorkers(t *testing.T) {
	prev := metrics.SetEnabled(true)
	t.Cleanup(func() {
		metrics.SetEnabled(prev)
		metrics.ResetHists()
	})
	rng := rand.New(rand.NewSource(24))
	x := lowRankTensor(rng, 0.1, 4, 24, 20, 8)

	countsFor := func(workers int) map[string]int64 {
		metrics.ResetHists()
		_, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 7, MaxIters: 6}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, h := range metrics.Histograms() {
			if h.Name == "pool-wait" {
				continue
			}
			out[h.Name] = h.Count
		}
		return out
	}

	serial := countsFor(1)
	parallel := countsFor(4)
	if len(serial) == 0 {
		t.Fatal("no histogram observations recorded")
	}
	for _, name := range []string{"slice-svd", "matmul", "randsvd-sketch", "randsvd-project"} {
		if serial[name] == 0 {
			t.Errorf("histogram %q empty after an instrumented run", name)
		}
	}
	if len(serial) != len(parallel) {
		t.Fatalf("histogram sets differ: %v vs %v", serial, parallel)
	}
	for name, n := range serial {
		if parallel[name] != n {
			t.Errorf("histogram %q: %d observations with 1 worker, %d with 4", name, n, parallel[name])
		}
	}
}
