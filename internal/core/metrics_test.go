package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// decomposeCounters runs one instrumented decomposition and returns the
// total kernel counters attributed to it by the collector.
func decomposeCounters(t *testing.T, x *tensor.Dense, workers int) (metrics.Counters, *Decomposition) {
	t.Helper()
	col := &metrics.Collector{}
	dec, err := Decompose(x, Options{
		Config:  Config{Ranks: []int{6, 6, 6}, Seed: 11},
		Workers: workers,
		Metrics: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Report().Total.Counters, dec
}

// TestCountersDeterministicAcrossWorkers asserts the measurement contract
// the EXPERIMENTS.md methodology section documents: the kernel-call and
// flop counts of a decomposition are a function of the input and options,
// not of the parallelism — Workers only changes wall time.
func TestCountersDeterministicAcrossWorkers(t *testing.T) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	x := workload.LowRankNoise([]int{40, 32, 12}, 4, 0.05, 3).X
	c1, d1 := decomposeCounters(t, x, 1)
	c4, d4 := decomposeCounters(t, x, 4)

	if c1 != c4 {
		t.Errorf("counters differ across worker counts:\n  workers=1: %+v\n  workers=4: %+v", c1, c4)
	}
	if c1.SliceSVDs != 12 {
		t.Errorf("slice SVD count = %d, want 12 (one per frontal slice)", c1.SliceSVDs)
	}
	if c1.MatmulFlops == 0 || c1.SVDCalls == 0 {
		t.Errorf("instrumented run recorded no kernel activity: %+v", c1)
	}
	if d1.Fit != d4.Fit {
		t.Errorf("fit differs across worker counts: %v vs %v", d1.Fit, d4.Fit)
	}
}

// TestDisabledMetricsPhaseBreakdownStillReported checks that the plain
// Stats timings keep working with no collector attached (the default path).
func TestDisabledMetricsPhaseBreakdownStillReported(t *testing.T) {
	x := workload.LowRankNoise([]int{24, 20, 8}, 3, 0.05, 5).X
	dec, err := Decompose(x, Options{Config: Config{Ranks: []int{3, 3, 3}, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.Total() <= 0 || dec.Stats.Iters < 1 {
		t.Fatalf("stats not populated: %+v", dec.Stats)
	}
}

// TestCollectorFitTrajectoryMatchesIters asserts one fit sample per sweep.
func TestCollectorFitTrajectoryMatchesIters(t *testing.T) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	x := workload.LowRankNoise([]int{24, 20, 8}, 3, 0.05, 5).X
	col := &metrics.Collector{}
	dec, err := Decompose(x, Options{Config: Config{Ranks: []int{3, 3, 3}, Seed: 1}, Metrics: col})
	if err != nil {
		t.Fatal(err)
	}
	traj := col.FitTrajectory()
	if len(traj) != dec.Stats.Iters {
		t.Fatalf("%d fit samples for %d sweeps", len(traj), dec.Stats.Iters)
	}
	last := traj[len(traj)-1]
	if last.Fit != dec.Fit {
		t.Errorf("last trajectory fit %v != decomposition fit %v", last.Fit, dec.Fit)
	}
	if last.Sweep != dec.Stats.Iters {
		t.Errorf("last sweep %d, want %d", last.Sweep, dec.Stats.Iters)
	}
}

// TestStreamPhaseAttribution checks that streaming Appends land in the
// approximation phase and Decompose in initialization/iteration.
func TestStreamPhaseAttribution(t *testing.T) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)

	col := &metrics.Collector{}
	st := NewStream(Options{Config: Config{Ranks: []int{4, 4, 3}, Seed: 2}, Metrics: col})
	chunk := workload.LowRankNoise([]int{20, 16, 5}, 3, 0.05, 9).X
	if err := st.Append(chunk); err != nil {
		t.Fatal(err)
	}
	if got := col.PhaseStats(metrics.PhaseApprox).Counters.SliceSVDs; got != 5 {
		t.Fatalf("approx phase slice SVDs = %d, want 5", got)
	}
	if _, err := st.Decompose(); err != nil {
		t.Fatal(err)
	}
	if col.PhaseStats(metrics.PhaseInit).Wall <= 0 {
		t.Error("no initialization wall time recorded")
	}
	if col.PhaseStats(metrics.PhaseIter).Wall <= 0 {
		t.Error("no iteration wall time recorded")
	}
}

// TestNilCollectorHookAllocsFree verifies the acceptance criterion that
// disabled metrics add zero allocations on the hot path: the hooks the
// iteration phase executes per sweep (phase brackets, fit recording) are
// allocation-free on a nil collector with counters off.
func TestNilCollectorHookAllocsFree(t *testing.T) {
	prev := metrics.SetEnabled(false)
	defer metrics.SetEnabled(prev)

	var col *metrics.Collector
	allocs := testing.AllocsPerRun(1000, func() {
		col.StartPhase(metrics.PhaseIter)
		col.RecordFit(1, 0.5)
		metrics.CountSliceSVD()
		metrics.CountMatmul(64, 64, 64)
		col.EndPhase(metrics.PhaseIter)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics hooks allocated %v times per run", allocs)
	}
}
