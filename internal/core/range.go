package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dterr"
)

// DecomposeRange produces the Tucker model of the sub-tensor covering time
// steps [t0, t1) of the stream's temporal (last) mode, using only the
// compressed slices that fall inside the range — no raw data is touched and
// nothing is recompressed.
//
// This extends D-Tucker's block structure to the time-range query problem
// its follow-up work addresses: because the stream compresses the tensor
// slice by slice along time, any contiguous temporal range corresponds to a
// contiguous run of compressed slices, and the initialization + iteration
// phases run on that subset directly. The query cost is proportional to the
// range length, not the stream length. Labelled an extension in DESIGN.md.
func (s *Stream) DecomposeRange(t0, t1 int) (_ *Decomposition, err error) {
	defer dterr.RecoverTo(&err, "core.Stream.DecomposeRange")
	root := s.opts.Metrics.Tracer().Begin("solve-range")
	defer root.End()
	if s.shape == nil {
		return nil, fmt.Errorf("core: DecomposeRange on an empty stream: %w", dterr.ErrInvalidInput)
	}
	order := len(s.shape)
	length := s.shape[order-1]
	if t0 < 0 || t1 > length || t0 >= t1 {
		return nil, fmt.Errorf("core: range [%d,%d) invalid for stream of length %d: %w",
			t0, t1, length, dterr.ErrInvalidInput)
	}
	span := t1 - t0
	if s.opts.Ranks[order-1] > span {
		return nil, fmt.Errorf("core: temporal rank %d exceeds range length %d: %w",
			s.opts.Ranks[order-1], span, dterr.ErrInvalidInput)
	}

	// Slices enumerate modes 3..N with mode 3 fastest and time slowest, so
	// time step t owns the contiguous block [t·mid, (t+1)·mid).
	mid := 1
	for _, d := range s.shape[2 : order-1] {
		mid *= d
	}
	sub := s.slices[t0*mid : t1*mid]

	// The exact sub-range norm: Σ over covered slices of the exact
	// per-slice energy captured at Append time.
	var sumSq float64
	for _, q := range s.sliceSq[t0*mid : t1*mid] {
		sumSq += q
	}

	shape := append([]int(nil), s.shape...)
	shape[order-1] = span
	ap := &Approximation{
		Slices:    sub,
		Shape:     shape,
		Perm:      identityPerm(order),
		Ranks:     append([]int(nil), s.opts.Ranks...),
		NormX:     math.Sqrt(sumSq),
		SliceRank: s.rank,
		opts:      s.opts,
		pl:        s.pool(),
	}

	t0w := time.Now()
	factors, err := ap.initFactors()
	if err != nil {
		return nil, err
	}
	initTime := time.Since(t0w)
	t1w := time.Now()
	core, fit, iters, converged, err := ap.iterate(factors, 1, 0)
	if err != nil {
		return nil, err
	}
	ap.recordPoolStats()
	return &Decomposition{
		Model:     ap.toOriginalOrder(core, factors),
		Fit:       fit,
		Converged: converged,
		Stats:     Stats{InitTime: initTime, IterTime: time.Since(t1w), Iters: iters},
	}, nil
}
