package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// lowRankTensor builds an exactly rank-(r,...,r) Tucker tensor of the given
// shape plus optional Gaussian noise.
func lowRankTensor(rng *rand.Rand, noise float64, r int, shape ...int) *tensor.Dense {
	ranks := make([]int, len(shape))
	for i := range ranks {
		ranks[i] = r
	}
	g := tensor.RandN(rng, ranks...)
	x := g
	for n, s := range shape {
		x = x.ModeProduct(mat.RandOrthonormal(s, r, rng), n)
	}
	if noise > 0 {
		e := tensor.RandN(rng, shape...)
		scale := noise * x.Norm() / e.Norm()
		e.ScaleInPlace(scale)
		x.AddInPlace(e)
	}
	return x
}

func uniformRanks(order, j int) []int {
	r := make([]int, order)
	for i := range r {
		r[i] = j
	}
	return r
}

func TestDecomposeRecoversExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0, 4, 20, 15, 12)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 1e-6 {
		t.Fatalf("relative error %g on exactly low-rank input", rel)
	}
	if dec.Fit < 1-1e-6 {
		t.Fatalf("fit estimate %g, want ≈1", dec.Fit)
	}
}

func TestDecomposeNoisyLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := lowRankTensor(rng, 0.1, 5, 30, 25, 20)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 5), Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	rel := dec.RelError(x)
	// Noise is 10% of signal norm; error should land near noise level.
	if rel > 0.15 {
		t.Fatalf("relative error %g, want ≲ 0.15", rel)
	}
}

func TestDecomposeOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := lowRankTensor(rng, 0.05, 3, 12, 10, 8, 6)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(4, 3), Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 0.1 {
		t.Fatalf("order-4 relative error %g", rel)
	}
	if got := dec.Core.Shape(); len(got) != 4 {
		t.Fatalf("core order %d", len(got))
	}
}

func TestDecomposeMatrixInput(t *testing.T) {
	// Order-2 input: D-Tucker degenerates to a truncated SVD.
	rng := rand.New(rand.NewSource(4))
	x := lowRankTensor(rng, 0, 3, 25, 18)
	dec, err := Decompose(x, Options{Config: Config{Ranks: []int{3, 3}, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 1e-6 {
		t.Fatalf("matrix relative error %g", rel)
	}
}

func TestFactorsOrthonormalAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := lowRankTensor(rng, 0.2, 4, 16, 24, 9)
	ranks := []int{4, 5, 3}
	dec, err := Decompose(x, Options{Config: Config{Ranks: ranks, Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(x.Shape()); err != nil {
		t.Fatal(err)
	}
	for n, f := range dec.Factors {
		if f.Rows() != x.Dim(n) || f.Cols() != ranks[n] {
			t.Fatalf("factor %d is %d×%d, want %d×%d", n, f.Rows(), f.Cols(), x.Dim(n), ranks[n])
		}
		if !mat.Gram(f).EqualApprox(mat.Identity(ranks[n]), 1e-8) {
			t.Fatalf("factor %d not column-orthonormal", n)
		}
	}
	for n, j := range ranks {
		if dec.Core.Dim(n) != j {
			t.Fatalf("core mode %d is %d, want %d", n, dec.Core.Dim(n), j)
		}
	}
}

func TestModeReorderingTransparent(t *testing.T) {
	// Results must be expressed in the ORIGINAL mode order even when the
	// input needs reordering (here mode sizes are ascending, forcing a
	// full reversal internally).
	rng := rand.New(rand.NewSource(6))
	x := lowRankTensor(rng, 0, 3, 8, 14, 30)
	dec, err := Decompose(x, Options{Config: Config{Ranks: []int{3, 4, 5}, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Validate(x.Shape()); err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 1e-6 {
		t.Fatalf("relative error %g with reordering", rel)
	}
}

func TestNoReorderMatchesReorderAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := lowRankTensor(rng, 0.1, 3, 10, 20, 15)
	a, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 1, NoReorder: true}})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.RelError(x), b.RelError(x)
	if math.Abs(ra-rb) > 0.05 {
		t.Fatalf("reorder %g vs no-reorder %g differ too much", ra, rb)
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	// The Seed contract: every parallel site is owner-computes, so results
	// are BIT-identical — not merely close — for every Workers value.
	rng := rand.New(rand.NewSource(8))
	x := lowRankTensor(rng, 0.1, 3, 12, 12, 16)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 42}}
	a, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	b, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := range a.Factors {
		if !bitIdentical(a.Factors[n].Data(), b.Factors[n].Data()) {
			t.Fatalf("factor %d differs across worker counts", n)
		}
	}
	if !bitIdentical(a.Core.Data(), b.Core.Data()) {
		t.Fatal("core differs across worker counts")
	}
}

func TestApproximationReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := lowRankTensor(rng, 0.1, 3, 14, 18, 10)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := ap.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ap.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Core.EqualApprox(d2.Core, 1e-9) {
		t.Fatal("repeated Decompose on one Approximation is not deterministic")
	}
}

func TestApproximationStorageAndError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := lowRankTensor(rng, 0, 3, 20, 16, 12)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	wantPerSlice := 20*3 + 3 + 16*3 // U + S + V at slice rank 3
	if got := ap.StorageFloats(); got != 12*wantPerSlice {
		t.Fatalf("StorageFloats = %d, want %d", got, 12*wantPerSlice)
	}
	if got := ap.StorageFloats(); got >= x.Len() {
		t.Fatalf("compressed storage %d not smaller than input %d", got, x.Len())
	}
	if e := ap.ApproxRelError(); e > 1e-8 {
		t.Fatalf("ApproxRelError = %g on exactly low-rank input", e)
	}
}

func TestApproxRelErrorReflectsTruncation(t *testing.T) {
	// Full-rank random tensor compressed at small slice rank must report a
	// substantial approximation error.
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandN(rng, 20, 20, 6)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if e := ap.ApproxRelError(); e < 0.3 {
		t.Fatalf("ApproxRelError = %g, expected large truncation error", e)
	}
}

func TestOptionsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.RandN(rng, 5, 5, 5)
	cases := []Options{
		{},                                       // missing ranks
		{Config: Config{Ranks: []int{3, 3}}},     // wrong count
		{Config: Config{Ranks: []int{3, -1, 3}}}, // negative rank
		{Config: Config{Ranks: []int{6, 3, 3}}},  // rank exceeds dim
		{Config: Config{Ranks: []int{3, 3, 3}, MaxIters: -1}}, // negative iters
	}
	for i, opts := range cases {
		if _, err := Decompose(x, opts); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
	if _, err := Decompose(tensor.RandN(rng, 7), Options{Config: Config{Ranks: []int{2}}}); err == nil {
		t.Fatal("order-1 tensor accepted")
	}
}

func TestSliceRankOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := lowRankTensor(rng, 0.05, 3, 16, 14, 8)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), SliceRank: 6, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rel := dec.RelError(x); rel > 0.1 {
		t.Fatalf("relative error %g with larger slice rank", rel)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := lowRankTensor(rng, 0.1, 3, 12, 12, 12)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.Iters < 1 {
		t.Fatalf("Iters = %d", dec.Stats.Iters)
	}
	if dec.Stats.Total() <= 0 {
		t.Fatal("zero total time")
	}
}

func TestMaxItersRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := tensor.RandN(rng, 15, 15, 15) // full rank: slow convergence
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 3), MaxIters: 2, Tol: 1e-12, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats.Iters > 2 {
		t.Fatalf("Iters = %d, want ≤ 2", dec.Stats.Iters)
	}
}

func TestFitEstimateTracksExactError(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	x := lowRankTensor(rng, 0.2, 4, 20, 18, 12)
	dec, err := Decompose(x, Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	exact := dec.RelError(x)
	estimate := 1 - dec.Fit
	if math.Abs(exact-estimate) > 0.05 {
		t.Fatalf("fit estimate error %g vs exact %g", estimate, exact)
	}
}

func TestRanksDifferPerMode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := lowRankTensor(rng, 0.05, 6, 24, 20, 16)
	dec, err := Decompose(x, Options{Config: Config{Ranks: []int{6, 5, 4}, Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Core.Shape(); got[0] != 6 || got[1] != 5 || got[2] != 4 {
		t.Fatalf("core shape %v", got)
	}
}

func BenchmarkDecompose64Cube(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0.1, 10, 64, 64, 64)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 10), Seed: 1, MaxIters: 10}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApproxWorkers1(b *testing.B) { benchApproxWorkers(b, 1) }
func BenchmarkApproxWorkers4(b *testing.B) { benchApproxWorkers(b, 4) }

func benchApproxWorkers(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0.1, 10, 96, 96, 32)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 10), Seed: 1}, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Approximate(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExactSliceSVDAblation(t *testing.T) {
	// Exact slice SVDs must be at least as accurate as randomized ones on
	// data where the slice rank truncates real energy.
	rng := rand.New(rand.NewSource(18))
	x := tensor.RandN(rng, 24, 20, 8) // full-rank slices
	opts := Options{Config: Config{Ranks: uniformRanks(3, 4), Seed: 4}}
	rnd, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ExactSliceSVD = true
	exact, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	re, ee := rnd.RelError(x), exact.RelError(x)
	if ee > re+0.01 {
		t.Fatalf("exact slice SVD error %g worse than randomized %g", ee, re)
	}
}

func BenchmarkApproxRandomized(b *testing.B) { benchApproxExact(b, false) }
func BenchmarkApproxExact(b *testing.B)      { benchApproxExact(b, true) }

func benchApproxExact(b *testing.B, exact bool) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0.1, 10, 128, 96, 24)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 10), Seed: 1, ExactSliceSVD: exact}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Approximate(x, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelIterationMatchesSequential(t *testing.T) {
	// The two-phase slice accumulation is owner-computes in both phases, so
	// the parallel path must reproduce the sequential one bit for bit.
	// Two Approximations are built (the accumulation reuses pool-owned
	// scratch, so one Approximation's result would be overwritten).
	rng := rand.New(rand.NewSource(19))
	x := lowRankTensor(rng, 0.1, 3, 14, 12, 20)
	opts := Options{Config: Config{Ranks: uniformRanks(3, 3), Seed: 9}}
	seqAp, err := Approximate(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	parAp, err := Approximate(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]*mat.Dense, 3)
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 3; n++ {
		fs[n] = mat.RandOrthonormal(seqAp.Shape[n], 3, r)
	}
	for mode := 0; mode < 2; mode++ {
		seq, err := seqAp.accumulateSliceMode(mode, fs)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parAp.accumulateSliceMode(mode, fs)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(seq.Data(), par.Data()) {
			t.Fatalf("mode %d: parallel accumulation disagrees with sequential", mode)
		}
	}
}

func BenchmarkIterateWorkers1(b *testing.B) { benchIterWorkers(b, 1) }
func BenchmarkIterateWorkers4(b *testing.B) { benchIterWorkers(b, 4) }
func BenchmarkIterateWorkers8(b *testing.B) { benchIterWorkers(b, 8) }

func benchIterWorkers(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	x := lowRankTensor(rng, 0.1, 10, 96, 96, 64)
	ap, err := Approximate(x, Options{Config: Config{Ranks: uniformRanks(3, 10), Seed: 1, MaxIters: 5}, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	init, err := ap.initFactors()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := append([]*mat.Dense(nil), init...)
		if _, _, _, _, err := ap.iterate(fs, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
