package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dterr"
	"repro/internal/mat"
)

// Config holds the plain-data parameters of a D-Tucker decomposition — the
// part of Options that can cross a process boundary. It is the request type
// of the dtuckerd serving API: JSON round-trips losslessly, Validate checks
// it without a tensor in hand, and Canonical renders a normalized cache key
// so two requests asking for the same computation are recognized as equal.
//
// The zero value of every field except Ranks selects the paper's defaults
// (tol 1e-4, ≤100 sweeps, slice rank max of the two leading target ranks).
// Runtime attachments — context, metrics, worker pools — live on Options,
// which embeds Config.
type Config struct {
	// Ranks holds the target core dimensionalities J_n, one per mode of
	// the input tensor, in the input's original mode order. Required.
	Ranks []int `json:"ranks"`

	// SliceRank r is the rank of the per-slice randomized SVDs in the
	// approximation phase. Zero selects max(J of the two slice modes),
	// the paper's choice of matching the slice rank to the target rank.
	SliceRank int `json:"slice_rank,omitempty"`

	// Tol stops the iteration phase when the fit change drops below it.
	// Zero selects 1e-4, the tolerance used in the paper's experiments.
	Tol float64 `json:"tol,omitempty"`

	// MaxIters bounds the iteration phase. Zero selects 100, the paper's
	// cap.
	MaxIters int `json:"max_iters,omitempty"`

	// Oversampling and PowerIters are passed to the randomized SVD
	// (defaults 5 and 1; PowerIters = -1 disables power iterations).
	Oversampling int `json:"oversampling,omitempty"`
	PowerIters   int `json:"power_iters,omitempty"`

	// Seed makes the randomized sketches reproducible. Slice l draws from
	// a generator seeded with Seed+l, so results are independent of
	// Workers.
	Seed int64 `json:"seed,omitempty"`

	// Leading selects how dominant singular vectors are extracted during
	// the iteration phase (see mat.LeadingMethod). The default LeadingAuto
	// picks the Gram path for very rectangular matrices.
	Leading mat.LeadingMethod `json:"leading,omitempty"`

	// NoReorder keeps the input's mode order instead of sorting modes by
	// decreasing dimensionality. Mostly useful in tests and when the
	// caller knows the first two modes are already the largest.
	NoReorder bool `json:"no_reorder,omitempty"`

	// ExactSliceSVD replaces the randomized slice SVDs of the
	// approximation phase with exact ones — the accuracy-versus-speed
	// ablation of the paper's choice of randomized SVD. Exact slice SVDs
	// cost O(I1·I2·min(I1,I2)) per slice instead of O(I1·I2·r).
	//
	// Deprecated: equivalent to SliceKernel "exact"; kept for wire
	// compatibility. The two spellings normalize to the same canonical key.
	ExactSliceSVD bool `json:"exact_slice_svd,omitempty"`

	// SliceKernel selects the slice-compression kernel of the
	// approximation phase: "randsvd" (the paper's default), "exact" (dense
	// SVD, the accuracy ablation), "gram" (Gram-eigendecomposition, cheap
	// for very rectangular slices), or "auto" (per-slice cost-model choice
	// via internal/kernelsel). Empty selects "exact" when ExactSliceSVD is
	// set and "randsvd" otherwise.
	SliceKernel string `json:"slice_kernel,omitempty"`

	// KernelProfile is the fingerprint of the kernelsel profile that "auto"
	// selection resolves against (kernelsel.Profile.Fingerprint). It exists
	// so the profile joins the cache key: the serving layer stamps it before
	// hashing, and Decompose rejects a mismatch between this field and the
	// profile actually supplied in Options. Ignored unless SliceKernel is
	// "auto"; empty means "whatever profile the process runs with".
	KernelProfile string `json:"kernel_profile,omitempty"`
}

// Validate checks the config's internal consistency without a tensor in
// hand: Ranks must be present and positive, numeric knobs finite and within
// range, Leading a defined method. The per-tensor checks (Ranks length
// versus order, ranks versus dimensionalities) happen at decomposition time.
// Every violation wraps dterr.ErrInvalidInput.
func (c Config) Validate() error {
	if len(c.Ranks) == 0 {
		return fmt.Errorf("core: config has no ranks: %w", dterr.ErrInvalidInput)
	}
	for n, j := range c.Ranks {
		if j <= 0 {
			return fmt.Errorf("core: non-positive rank %d for mode %d: %w", j, n, dterr.ErrInvalidInput)
		}
	}
	if c.SliceRank < 0 {
		return fmt.Errorf("core: negative SliceRank %d: %w", c.SliceRank, dterr.ErrInvalidInput)
	}
	if math.IsNaN(c.Tol) || math.IsInf(c.Tol, 0) || c.Tol < 0 {
		return fmt.Errorf("core: tolerance %v is not a finite non-negative number: %w", c.Tol, dterr.ErrInvalidInput)
	}
	if c.MaxIters < 0 {
		return fmt.Errorf("core: negative MaxIters %d: %w", c.MaxIters, dterr.ErrInvalidInput)
	}
	if c.PowerIters < -1 {
		return fmt.Errorf("core: PowerIters %d below -1 (the disable sentinel): %w", c.PowerIters, dterr.ErrInvalidInput)
	}
	if c.Leading < mat.LeadingAuto || c.Leading > mat.LeadingGram {
		return fmt.Errorf("core: unknown LeadingMethod %d: %w", int(c.Leading), dterr.ErrInvalidInput)
	}
	switch c.SliceKernel {
	case "", "auto", "randsvd", "exact", "gram":
	default:
		return fmt.Errorf("core: unknown SliceKernel %q (want auto, randsvd, exact, or gram): %w",
			c.SliceKernel, dterr.ErrInvalidInput)
	}
	if c.ExactSliceSVD && c.SliceKernel != "" && c.SliceKernel != "exact" {
		return fmt.Errorf("core: ExactSliceSVD conflicts with SliceKernel %q: %w",
			c.SliceKernel, dterr.ErrInvalidInput)
	}
	return nil
}

// Normalized returns the config with the paper's defaults substituted for
// zero values, exactly as the decomposition itself resolves them: tol 1e-4,
// 100 sweeps, oversampling 5 (negative coerced to 0), one power iteration
// (−1 stays "disabled"). SliceRank 0 is kept as the "auto" sentinel because
// its resolution needs the tensor shape. Two configs with equal Normalized
// forms request the same computation.
func (c Config) Normalized() Config {
	c.Ranks = append([]int(nil), c.Ranks...)
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	if c.MaxIters == 0 {
		c.MaxIters = 100
	}
	if c.Oversampling == 0 {
		c.Oversampling = 5
	}
	if c.Oversampling < 0 {
		c.Oversampling = 0
	}
	if c.PowerIters == 0 {
		c.PowerIters = 1
	}
	// Fold the legacy ExactSliceSVD flag and the SliceKernel string into one
	// resolved spelling, so {ExactSliceSVD: true} and {SliceKernel: "exact"}
	// request — and cache — the same computation.
	if c.SliceKernel == "" {
		if c.ExactSliceSVD {
			c.SliceKernel = "exact"
		} else {
			c.SliceKernel = "randsvd"
		}
	}
	c.ExactSliceSVD = c.SliceKernel == "exact"
	// The profile fingerprint only matters for per-slice auto selection;
	// clearing it otherwise keeps forced-kernel requests cache-compatible
	// across processes running different profiles.
	if c.SliceKernel != "auto" {
		c.KernelProfile = ""
	}
	return c
}

// Canonical renders the normalized config as a deterministic string — the
// config half of the serving layer's result-cache key. Equal strings mean
// "same computation on the same tensor yields bit-identical results": every
// field that influences the output participates, and defaults are resolved
// first so an explicit tol=1e-4 and the zero value collide as they should.
func (c Config) Canonical() string {
	n := c.Normalized()
	var sb strings.Builder
	sb.WriteString("ranks=")
	for i, r := range n.Ranks {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(r))
	}
	fmt.Fprintf(&sb, ";slicerank=%d;tol=%s;maxiters=%d;os=%d;pi=%d;seed=%d;leading=%d;noreorder=%t;kernel=%s;profile=%s",
		n.SliceRank, strconv.FormatFloat(n.Tol, 'g', -1, 64), n.MaxIters,
		n.Oversampling, n.PowerIters, n.Seed, int(n.Leading), n.NoReorder, n.SliceKernel, n.KernelProfile)
	return sb.String()
}

// Fingerprint returns a short stable identifier of the normalized config —
// the compatibility stamp checkpoints carry. Two configs with equal
// fingerprints run the same deterministic computation (randomness is seeded
// from Config.Seed, so the fingerprint is RNG-free), which is what makes a
// checkpoint taken under one process resumable in another: a resume under a
// different fingerprint would splice states from two different trajectories
// and is rejected as a corrupt artifact.
func (c Config) Fingerprint() string {
	sum := sha256.Sum256([]byte("dtucker-config-fp-v1|" + c.Canonical()))
	return hex.EncodeToString(sum[:8])
}

// Options returns the config wrapped in a plain Options value with no
// runtime attachments — the form the library entry points take. Callers
// attach context, metrics, or a pool on the result.
func (c Config) Options() Options { return Options{Config: c} }
