package core

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dterr"
	"repro/internal/mat"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := Config{
		Ranks:         []int{10, 8, 6},
		SliceRank:     12,
		Tol:           3e-5,
		MaxIters:      40,
		Oversampling:  7,
		PowerIters:    -1,
		Seed:          99,
		Leading:       mat.LeadingGram,
		NoReorder:     true,
		ExactSliceSVD: true,
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Config
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Canonical() != orig.Canonical() {
		t.Fatalf("round trip changed the config:\n  in  %s\n  out %s", orig.Canonical(), got.Canonical())
	}
	// The zero value must round-trip to the zero value (omitempty on every
	// defaultable field keeps the wire form minimal).
	b, err = json.Marshal(Config{Ranks: []int{3, 3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"ranks":[3,3,3]}`; string(b) != want {
		t.Fatalf("minimal config serialized as %s, want %s", b, want)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Ranks: []int{4, 4, 4}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Ranks: []int{4, 0, 4}},
		{Ranks: []int{4, -2, 4}},
		{Ranks: []int{4}, SliceRank: -1},
		{Ranks: []int{4}, Tol: math.NaN()},
		{Ranks: []int{4}, Tol: math.Inf(1)},
		{Ranks: []int{4}, Tol: -1e-4},
		{Ranks: []int{4}, MaxIters: -1},
		{Ranks: []int{4}, PowerIters: -2},
		{Ranks: []int{4}, Leading: mat.LeadingMethod(9)},
	}
	for i, c := range bad {
		err := c.Validate()
		if err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
		if !errors.Is(err, dterr.ErrInvalidInput) {
			t.Fatalf("case %d: error %v does not wrap ErrInvalidInput", i, err)
		}
	}
}

func TestConfigCanonicalResolvesDefaults(t *testing.T) {
	// The zero-default form and the explicitly spelled-out paper defaults
	// request the same computation, so they must share a cache key.
	zero := Config{Ranks: []int{5, 5, 5}}
	full := Config{Ranks: []int{5, 5, 5}, Tol: 1e-4, MaxIters: 100, Oversampling: 5, PowerIters: 1}
	if zero.Canonical() != full.Canonical() {
		t.Fatalf("defaults not canonicalized:\n  %s\n  %s", zero.Canonical(), full.Canonical())
	}
	// Every result-shaping field must separate keys.
	distinct := []Config{
		{Ranks: []int{5, 5, 4}},
		{Ranks: []int{5, 5, 5}, SliceRank: 7},
		{Ranks: []int{5, 5, 5}, Tol: 1e-6},
		{Ranks: []int{5, 5, 5}, MaxIters: 7},
		{Ranks: []int{5, 5, 5}, Oversampling: 2},
		{Ranks: []int{5, 5, 5}, PowerIters: 2},
		{Ranks: []int{5, 5, 5}, Seed: 1},
		{Ranks: []int{5, 5, 5}, Leading: mat.LeadingJacobi},
		{Ranks: []int{5, 5, 5}, NoReorder: true},
		{Ranks: []int{5, 5, 5}, ExactSliceSVD: true},
	}
	seen := map[string]int{zero.Canonical(): -1}
	for i, c := range distinct {
		key := c.Canonical()
		if prev, dup := seen[key]; dup {
			t.Fatalf("configs %d and %d share key %s", prev, i, key)
		}
		seen[key] = i
	}
}

func TestConfigNormalizedDoesNotAliasRanks(t *testing.T) {
	c := Config{Ranks: []int{3, 3, 3}}
	n := c.Normalized()
	n.Ranks[0] = 99
	if c.Ranks[0] != 3 {
		t.Fatal("Normalized aliased the original Ranks slice")
	}
}

func TestConfigOptionsBridge(t *testing.T) {
	c := Config{Ranks: []int{4, 4, 4}, Seed: 3}
	o := c.Options()
	if o.Context != nil || o.Metrics != nil || o.Pool != nil || o.Workers != 0 {
		t.Fatal("Config.Options attached runtime state")
	}
	if o.Seed != 3 || len(o.Ranks) != 3 {
		t.Fatal("Config.Options dropped config fields")
	}
	// withDefaults must agree with Normalized for the shared fields, so the
	// cache key and the executed computation cannot drift apart.
	resolved, err := o.withDefaults(3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resolved.Config.Canonical(), c.Normalized().Canonical(); got != want {
		t.Fatalf("withDefaults and Normalized disagree:\n  %s\n  %s", got, want)
	}
	if !strings.Contains(c.Canonical(), "ranks=4,4,4") {
		t.Fatalf("canonical form %q missing ranks", c.Canonical())
	}
}
