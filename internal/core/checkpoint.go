package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/dterr"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Checkpoint is the complete iteration state at one ALS sweep boundary — in
// reordered mode space, exactly as iterate holds it. Because every parallel
// site follows the owner-computes contract, this state is a pure function of
// (tensor, config) up to the sweep index: resuming from it reproduces the
// factors, core, and fit of an uninterrupted run bit for bit.
//
// A checkpoint handed to Options.CheckpointSink aliases the iteration's
// working state; the sink must serialize (WriteTo) or deep-copy it before
// returning and must not retain the pointers.
type Checkpoint struct {
	// Sweep is the 1-based index of the completed sweep.
	Sweep int
	// Fit is the fit estimate after this sweep — the prevFit of the next
	// one, which the convergence test needs to resume exactly.
	Fit float64
	// Done marks a terminal checkpoint: the run converged at this sweep or
	// exhausted MaxIters. Resuming a done checkpoint returns the result
	// without running any further sweeps.
	Done bool
	// Converged distinguishes "done because Tol was reached" from "done
	// because the sweep budget ran out".
	Converged bool
	// Fingerprint is Config.Fingerprint() of the run that wrote the
	// checkpoint. Resume rejects a mismatch.
	Fingerprint string
	// Factors are the factor matrices in reordered mode space, after this
	// sweep's updates.
	Factors []*mat.Dense
	// Core is the core tensor computed in this sweep, reordered space.
	Core *tensor.Dense
}

// The .dtc binary format of a Checkpoint (see docs/FORMATS.md):
//
//	magic        [4]byte "DTC1"
//	version      uint32  (currently 1)
//	fingerprint  uint16 length + bytes
//	sweep        uint32
//	fit          float64
//	flags        uint8   bit 0 done, bit 1 converged
//	model        .tkm bytes (core + factors, reordered mode space)
//	crc          uint32  CRC32-Castagnoli of every preceding byte
//
// All integers little endian. The trailing checksum covers the whole file,
// so a torn or bit-flipped checkpoint is detected before any of its state
// is trusted; readers reject it with a typed dterr.ErrCorruptArtifact and
// the recovering job simply restarts from scratch.
var checkpointMagic = [4]byte{'D', 'T', 'C', '1'}

// CheckpointVersion is the checkpoint schema version this build writes;
// readers reject every other version.
const CheckpointVersion = 1

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

var checkpointCRCTable = crc32.MakeTable(crc32.Castagnoli)

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.sum = crc32.Update(c.sum, checkpointCRCTable, p[:n])
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// crcReader tees reads into a running CRC32C.
type crcReader struct {
	r   io.Reader
	n   int64
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	c.sum = crc32.Update(c.sum, checkpointCRCTable, p[:n])
	return n, err
}

// corruptCheckpoint wraps a checkpoint format violation as a typed
// corrupt-artifact error.
func corruptCheckpoint(format string, args ...any) error {
	return fmt.Errorf("core: checkpoint: "+format+": %w", append(args, dterr.ErrCorruptArtifact)...)
}

// WriteTo serializes the checkpoint in .dtc binary format, implementing
// io.WriterTo.
func (cp *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	cw := &crcWriter{w: w}
	if _, err := cw.Write(checkpointMagic[:]); err != nil {
		return cw.n, fmt.Errorf("core: writing checkpoint magic: %w", err)
	}
	if len(cp.Fingerprint) > math.MaxUint16 {
		return cw.n, fmt.Errorf("core: checkpoint fingerprint of %d bytes", len(cp.Fingerprint))
	}
	flags := uint8(0)
	if cp.Done {
		flags |= 1
	}
	if cp.Converged {
		flags |= 2
	}
	head := []any{
		uint32(CheckpointVersion),
		uint16(len(cp.Fingerprint)), []byte(cp.Fingerprint),
		uint32(cp.Sweep), cp.Fit, flags,
	}
	for _, v := range head {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.n, fmt.Errorf("core: writing checkpoint header: %w", err)
		}
	}
	model := tucker.Model{Core: cp.Core, Factors: cp.Factors}
	if _, err := model.WriteTo(cw); err != nil {
		return cw.n, fmt.Errorf("core: writing checkpoint state: %w", err)
	}
	if err := binary.Write(cw.w, binary.LittleEndian, cw.sum); err != nil {
		return cw.n, fmt.Errorf("core: writing checkpoint checksum: %w", err)
	}
	return cw.n + 4, nil
}

// ReadCheckpoint deserializes a .dtc checkpoint, verifying the trailing
// checksum before any of the state is returned. Every malformed input —
// wrong magic, foreign schema version, torn file, checksum mismatch,
// inconsistent flags — is a typed dterr.ErrCorruptArtifact.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	cr := &crcReader{r: r}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, corruptCheckpoint("short magic")
	}
	if magic != checkpointMagic {
		return nil, corruptCheckpoint("bad magic %q (not a .dtc checkpoint)", magic[:])
	}
	var version uint32
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return nil, corruptCheckpoint("short header")
	}
	if version != CheckpointVersion {
		return nil, corruptCheckpoint("schema version %d (this build reads %d)", version, CheckpointVersion)
	}
	var fplen uint16
	if err := binary.Read(cr, binary.LittleEndian, &fplen); err != nil {
		return nil, corruptCheckpoint("short header")
	}
	if fplen > 256 {
		return nil, corruptCheckpoint("fingerprint length %d out of range", fplen)
	}
	fp := make([]byte, fplen)
	if _, err := io.ReadFull(cr, fp); err != nil {
		return nil, corruptCheckpoint("short fingerprint")
	}
	var (
		sweep uint32
		fit   float64
		flags uint8
	)
	for _, v := range []any{&sweep, &fit, &flags} {
		if err := binary.Read(cr, binary.LittleEndian, v); err != nil {
			return nil, corruptCheckpoint("short header")
		}
	}
	if math.IsNaN(fit) || math.IsInf(fit, 0) {
		return nil, corruptCheckpoint("fit is %v", fit)
	}
	if sweep == 0 || sweep > 1<<30 {
		return nil, corruptCheckpoint("sweep index %d out of range", sweep)
	}
	if flags > 3 {
		return nil, corruptCheckpoint("unknown flag bits %#x", flags)
	}
	var model tucker.Model
	if _, err := model.ReadFrom(cr); err != nil {
		return nil, corruptCheckpoint("reading state: %v", err)
	}
	computed := cr.sum
	var stored uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &stored); err != nil {
		return nil, corruptCheckpoint("short checksum")
	}
	if stored != computed {
		return nil, corruptCheckpoint("checksum mismatch (stored %08x, computed %08x)", stored, computed)
	}
	return &Checkpoint{
		Sweep:       int(sweep),
		Fit:         fit,
		Done:        flags&1 != 0,
		Converged:   flags&2 != 0,
		Fingerprint: string(fp),
		Factors:     model.Factors,
		Core:        model.Core,
	}, nil
}

// validateResume checks a checkpoint against this approximation before any
// of its state is spliced into the iteration. Every violation is a typed
// corrupt-artifact error: the checkpoint belongs to a different computation
// (fingerprint, shapes) or is internally inconsistent.
func (ap *Approximation) validateResume(cp *Checkpoint) error {
	if want := ap.opts.Config.Fingerprint(); cp.Fingerprint != want {
		return corruptCheckpoint("config fingerprint %s does not match this run's %s", cp.Fingerprint, want)
	}
	if cp.Sweep < 1 || cp.Sweep > ap.opts.MaxIters {
		return corruptCheckpoint("sweep %d outside this run's budget of %d", cp.Sweep, ap.opts.MaxIters)
	}
	if cp.Sweep == ap.opts.MaxIters && !cp.Done {
		return corruptCheckpoint("sweep %d exhausted the budget but is not marked done", cp.Sweep)
	}
	if cp.Converged && !cp.Done {
		return corruptCheckpoint("converged but not done")
	}
	order := len(ap.Shape)
	if len(cp.Factors) != order {
		return corruptCheckpoint("%d factors for an order-%d tensor", len(cp.Factors), order)
	}
	for k, f := range cp.Factors {
		if f == nil {
			return corruptCheckpoint("missing factor %d", k)
		}
		if r, c := f.Dims(); r != ap.Shape[k] || c != ap.Ranks[k] {
			return corruptCheckpoint("factor %d is %d×%d, want %d×%d", k, r, c, ap.Shape[k], ap.Ranks[k])
		}
	}
	if cp.Core == nil {
		return corruptCheckpoint("missing core")
	}
	cs := cp.Core.Shape()
	if len(cs) != order {
		return corruptCheckpoint("core has order %d, want %d", len(cs), order)
	}
	for k, d := range cs {
		if d != ap.Ranks[k] {
			return corruptCheckpoint("core dimension %d is %d, want %d", k, d, ap.Ranks[k])
		}
	}
	return nil
}
