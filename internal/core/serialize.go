package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/tensor"
	"repro/internal/tucker"
)

// The .dtd binary format of a Decomposition — the result payload of the
// dtuckerd serving API (see docs/FORMATS.md for the cross-format
// reference):
//
//	magic      [4]byte  "DTD1"
//	model      .tkm bytes (see tucker.Model.WriteTo)
//	fit        float64
//	converged  uint8    0 or 1
//	stats      approx, init, iter int64 nanoseconds; iters uint32
//
// All values little endian. Readers reject trailers that disagree with the
// format (non-finite fit, converged bytes other than 0/1, negative
// durations) so a truncated or corrupted result cannot be mistaken for a
// valid one.
var decMagic = [4]byte{'D', 'T', 'D', '1'}

// WriteTo serializes the decomposition (model, fit, convergence flag, and
// phase statistics) in .dtd binary format, implementing io.WriterTo.
// Short writes surface as errors instead of being dropped.
func (d *Decomposition) WriteTo(w io.Writer) (int64, error) {
	cw := &tensor.CountingWriter{W: w}
	if _, err := cw.Write(decMagic[:]); err != nil {
		return cw.N, fmt.Errorf("core: writing result magic: %w", err)
	}
	if _, err := d.Model.WriteTo(cw); err != nil {
		return cw.N, fmt.Errorf("core: writing result model: %w", err)
	}
	conv := uint8(0)
	if d.Converged {
		conv = 1
	}
	trailer := []any{
		d.Fit, conv,
		int64(d.Stats.ApproxTime), int64(d.Stats.InitTime), int64(d.Stats.IterTime),
		uint32(d.Stats.Iters),
	}
	for _, v := range trailer {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return cw.N, fmt.Errorf("core: writing result trailer: %w", err)
		}
	}
	return cw.N, nil
}

// ReadFrom deserializes a .dtd decomposition into d, replacing its
// contents, and implements io.ReaderFrom. It applies the model reader's
// checked-shape hardening and validates the trailer; a failed read leaves
// d untouched.
func (d *Decomposition) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	var magic [4]byte
	m, err := io.ReadFull(r, magic[:])
	n += int64(m)
	if err != nil {
		return n, fmt.Errorf("core: reading result magic: %w", err)
	}
	if magic != decMagic {
		return n, fmt.Errorf("core: bad magic %q (not a .dtd result)", magic[:])
	}
	var read Decomposition
	mn, err := read.Model.ReadFrom(r)
	n += mn
	if err != nil {
		return n, err
	}
	var (
		fit                  float64
		conv                 uint8
		approx, init_, iter_ int64
		iters                uint32
	)
	for _, v := range []any{&fit, &conv, &approx, &init_, &iter_, &iters} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return n, fmt.Errorf("core: reading result trailer: %w", err)
		}
	}
	n += 8 + 1 + 3*8 + 4
	if math.IsNaN(fit) || math.IsInf(fit, 0) {
		return n, fmt.Errorf("core: result fit is %v", fit)
	}
	if conv > 1 {
		return n, fmt.Errorf("core: result convergence byte %d is not 0/1", conv)
	}
	if approx < 0 || init_ < 0 || iter_ < 0 {
		return n, fmt.Errorf("core: negative phase duration in result trailer")
	}
	read.Fit = fit
	read.Converged = conv == 1
	read.Stats = Stats{
		ApproxTime: time.Duration(approx),
		InitTime:   time.Duration(init_),
		IterTime:   time.Duration(iter_),
		Iters:      int(iters),
	}
	*d = read
	return n, nil
}

// ReadDecomposition deserializes a .dtd result from r.
func ReadDecomposition(r io.Reader) (*Decomposition, error) {
	var d Decomposition
	if _, err := d.ReadFrom(r); err != nil {
		return nil, err
	}
	return &d, nil
}

// statsJSON is the wire form of Stats: explicit nanosecond fields, so the
// JSON surface does not depend on time.Duration's encoding.
type statsJSON struct {
	ApproxNs int64 `json:"approx_ns"`
	InitNs   int64 `json:"init_ns"`
	IterNs   int64 `json:"iter_ns"`
	Iters    int   `json:"iters"`
}

type decompositionJSON struct {
	Model     *tucker.Model `json:"model"`
	Fit       float64       `json:"fit"`
	Converged bool          `json:"converged"`
	Stats     statsJSON     `json:"stats"`
}

// MarshalJSON encodes the decomposition for the serving API's JSON
// surface. It is explicit rather than derived because the embedded Model's
// own marshaller would otherwise hijack the whole struct.
func (d *Decomposition) MarshalJSON() ([]byte, error) {
	return json.Marshal(decompositionJSON{
		Model:     &d.Model,
		Fit:       d.Fit,
		Converged: d.Converged,
		Stats: statsJSON{
			ApproxNs: int64(d.Stats.ApproxTime),
			InitNs:   int64(d.Stats.InitTime),
			IterNs:   int64(d.Stats.IterTime),
			Iters:    d.Stats.Iters,
		},
	})
}

// UnmarshalJSON decodes a decomposition, with the model's shape and
// finiteness validation applied.
func (d *Decomposition) UnmarshalJSON(b []byte) error {
	var dj decompositionJSON
	dj.Model = &tucker.Model{}
	if err := json.Unmarshal(b, &dj); err != nil {
		return fmt.Errorf("core: decoding result JSON: %w", err)
	}
	if dj.Model.Core == nil {
		return fmt.Errorf("core: result JSON has no model")
	}
	if math.IsNaN(dj.Fit) || math.IsInf(dj.Fit, 0) {
		return fmt.Errorf("core: result fit is %v", dj.Fit)
	}
	if dj.Stats.ApproxNs < 0 || dj.Stats.InitNs < 0 || dj.Stats.IterNs < 0 {
		return fmt.Errorf("core: negative phase duration in result JSON")
	}
	*d = Decomposition{
		Model:     *dj.Model,
		Fit:       dj.Fit,
		Converged: dj.Converged,
		Stats: Stats{
			ApproxTime: time.Duration(dj.Stats.ApproxNs),
			InitTime:   time.Duration(dj.Stats.InitNs),
			IterTime:   time.Duration(dj.Stats.IterNs),
			Iters:      dj.Stats.Iters,
		},
	}
	return nil
}
