package core

import (
	"fmt"
	"time"

	"repro/internal/dterr"
	"repro/internal/mat"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Stats records per-phase wall times and the iteration count of a run.
type Stats struct {
	ApproxTime time.Duration
	InitTime   time.Duration
	IterTime   time.Duration
	Iters      int
}

// Total returns the end-to-end wall time.
func (s Stats) Total() time.Duration { return s.ApproxTime + s.InitTime + s.IterTime }

// Decomposition is the result of a D-Tucker run: the Tucker model in the
// input's original mode order, plus the fit estimate and phase statistics.
type Decomposition struct {
	tucker.Model
	// Fit is the ALS fit estimate 1 − ‖X−X̂‖/‖X‖ computed from the
	// compressed representation (see tucker.FitFromCore). For the exact
	// error against the raw tensor use Model.RelError.
	Fit float64
	// Converged reports whether the iteration phase actually reached
	// Options.Tol. False means all MaxIters sweeps ran with the fit still
	// moving, so Stats.Iters is the exhausted budget, not a settling point.
	Converged bool
	Stats     Stats
}

// Decompose runs all three D-Tucker phases on x.
func Decompose(x *tensor.Dense, opts Options) (*Decomposition, error) {
	root := opts.Metrics.Tracer().Begin("decompose")
	defer root.End()
	t0 := time.Now()
	ap, err := Approximate(x, opts)
	if err != nil {
		return nil, err
	}
	approxTime := time.Since(t0)
	dec, err := ap.Decompose()
	if err != nil {
		return nil, err
	}
	dec.Stats.ApproxTime = approxTime
	return dec, nil
}

// Decompose runs the initialization and iteration phases on an existing
// approximation. Reusing one Approximation across calls amortizes the only
// phase that reads the raw tensor — the pattern the ablation experiments
// measure.
func (ap *Approximation) Decompose() (_ *Decomposition, err error) {
	defer dterr.RecoverTo(&err, "core.Approximation.Decompose")
	root := ap.opts.Metrics.Tracer().Begin("solve")
	defer root.End()

	// A resumed run skips initialization and re-enters the iteration loop
	// where the checkpoint left off. The initialization it skips is exactly
	// what the original run computed (deterministic in the seed), so the
	// resumed trajectory continues the original one, not a lookalike.
	startSweep, prevFit := 1, 0.0
	var factors []*mat.Dense
	initTime := time.Duration(0)
	if cp := ap.opts.Resume; cp != nil {
		if err := ap.validateResume(cp); err != nil {
			return nil, err
		}
		factors = append([]*mat.Dense(nil), cp.Factors...)
		if cp.Done {
			// Terminal checkpoint: the original run finished this sweep and
			// died before acknowledging; the result is already in hand.
			model := ap.toOriginalOrder(cp.Core, factors)
			if err := model.Validate(nil); err != nil {
				return nil, fmt.Errorf("core: resumed checkpoint state: %w: %v", dterr.ErrCorruptArtifact, err)
			}
			return &Decomposition{
				Model:     model,
				Fit:       cp.Fit,
				Converged: cp.Converged,
				Stats:     Stats{Iters: cp.Sweep},
			}, nil
		}
		startSweep, prevFit = cp.Sweep+1, cp.Fit
	} else {
		t0 := time.Now()
		factors, err = ap.initFactors()
		if err != nil {
			return nil, err
		}
		initTime = time.Since(t0)
	}

	t1 := time.Now()
	core, fit, iters, converged, err := ap.iterate(factors, startSweep, prevFit)
	if err != nil {
		return nil, err
	}
	iterTime := time.Since(t1)
	ap.recordPoolStats()

	model := ap.toOriginalOrder(core, factors)
	if err := model.Validate(nil); err != nil {
		return nil, fmt.Errorf("core: internal inconsistency: %w", err)
	}
	return &Decomposition{
		Model:     model,
		Fit:       fit,
		Converged: converged,
		Stats:     Stats{InitTime: initTime, IterTime: iterTime, Iters: iters},
	}, nil
}

// toOriginalOrder maps the reordered-space core and factors back to the
// input's original mode order.
func (ap *Approximation) toOriginalOrder(core *tensor.Dense, factors []*mat.Dense) tucker.Model {
	order := len(ap.Perm)
	if isIdentityPerm(ap.Perm) {
		return tucker.Model{Core: core, Factors: factors}
	}
	origFactors := make([]*mat.Dense, order)
	// pos[m] is the reordered position of original mode m.
	pos := make([]int, order)
	for k, p := range ap.Perm {
		origFactors[p] = factors[k]
		pos[p] = k
	}
	return tucker.Model{Core: core.Permute(pos), Factors: origFactors}
}
