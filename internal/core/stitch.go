package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/tucker"
)

// This file implements the merge path of the segment-tree range engine
// (package rangeidx): compact per-span summaries of the stream's compressed
// slices, a pairwise merge, and a stitched range solve that initializes the
// leading factors from O(log T) summaries instead of the full stacked SVD a
// DecomposeRange runs. The construction follows the block-wise stitching of
// TUCKET / Zoom-Tucker (see PAPERS.md) adapted to D-Tucker's slice SVDs.
//
// Every step is deterministic: summaries are exact truncated SVDs (no RNG),
// merges are exact SVDs of small concatenations, and the stitched solve
// reuses the owner-computes projected-tensor path. A summary is therefore a
// pure function of the slices it covers, and a stitched result is a pure
// function of (t0, t1, summaries' spans) — bit-identical no matter which
// cache the summaries came from or how many workers computed them.

// siteStitchNode is the fault-injection hook covering every summary build
// and merge of the range engine (no-op unless a test arms it).
var siteStitchNode = faults.NewSite("core.stitch.node")

// RangeSummary is the compressed representation of one contiguous temporal
// span [T0, T1) of a stream: the dominant left subspaces of the stacked
// [U_l·S_l] and [V_l·S_l] matrices over the span's slices, each kept as a
// singular-value-scaled basis B = U·diag(σ) so that B·Bᵀ preserves the
// stack's Gram matrix — which is exactly what merging and factor
// initialization consume.
type RangeSummary struct {
	T0, T1 int
	B1     *mat.Dense // I1×q, U·diag(σ) of the stacked [U_l·S_l]
	B2     *mat.Dense // I2×q, U·diag(σ) of the stacked [V_l·S_l]
	// SumSq is the exact Σ‖X_l‖² over the span's slices, so stitched fits
	// use the true sub-range norm rather than a truncated estimate.
	SumSq float64
}

// Rank returns the summary's retained rank q.
func (rs *RangeSummary) Rank() int { return rs.B1.Cols() }

// StorageFloats returns the float64 storage the summary holds.
func (rs *RangeSummary) StorageFloats() int {
	return rs.B1.Rows()*rs.B1.Cols() + rs.B2.Rows()*rs.B2.Cols()
}

// summaryRank resolves q: an explicit positive q is capped at min(I1, I2);
// q ≤ 0 selects twice the larger leading target rank (so the summary keeps
// headroom above what factor initialization extracts), same cap.
func (s *Stream) summaryRank(q int) int {
	if q <= 0 {
		q = 2 * max(s.opts.Ranks[0], s.opts.Ranks[1])
	}
	if lim := min(s.shape[0], s.shape[1]); q > lim {
		q = lim
	}
	return q
}

// scaledLeft returns B = U·diag(σ) of the exact rank-q truncated SVD of y.
// Exact (not randomized) so the result carries no RNG state and two builds
// of the same span are bit-identical.
func scaledLeft(y *mat.Dense, q int) (*mat.Dense, error) {
	res, err := mat.SVD(y)
	if err != nil {
		return nil, err
	}
	res = res.Truncate(q)
	b := res.U.Clone()
	scaleCols(b, res.S)
	return b, nil
}

// SummarizeSpan builds the RangeSummary of time steps [t0, t1) directly from
// the stream's compressed slices: an exact truncated SVD of the stacked
// [U_l·S_l] (and [V_l·S_l]) over the span. q ≤ 0 selects the default
// summary rank (see summaryRank). Cost is O((I1+I2)·(span·mid·r)·q) — a leaf
// operation of the segment tree, intended for block-sized spans.
func (s *Stream) SummarizeSpan(t0, t1, q int) (_ *RangeSummary, err error) {
	defer dterr.RecoverTo(&err, "core.Stream.SummarizeSpan")
	if s.shape == nil {
		return nil, fmt.Errorf("core: SummarizeSpan on an empty stream: %w", dterr.ErrInvalidInput)
	}
	order := len(s.shape)
	length := s.shape[order-1]
	if t0 < 0 || t1 > length || t0 >= t1 {
		return nil, fmt.Errorf("core: span [%d,%d) invalid for stream of length %d: %w",
			t0, t1, length, dterr.ErrInvalidInput)
	}
	if err := s.opts.cancelled("stitch"); err != nil {
		return nil, err
	}
	if err := siteStitchNode.Inject(); err != nil {
		return nil, fmt.Errorf("core: summarizing span [%d,%d): %w", t0, t1, err)
	}
	q = s.summaryRank(q)
	mid := 1
	for _, d := range s.shape[2 : order-1] {
		mid *= d
	}
	sub := s.slices[t0*mid : t1*mid]
	t0w := metrics.HistStart()

	r := s.rank
	y1 := mat.New(s.shape[0], len(sub)*r)
	y2 := mat.New(s.shape[1], len(sub)*r)
	for l := range sub {
		writeScaledBlock(y1, sub[l].U, sub[l].S, l*r)
		writeScaledBlock(y2, sub[l].V, sub[l].S, l*r)
	}
	b1, err := scaledLeft(y1, q)
	if err != nil {
		return nil, fmt.Errorf("core: summarizing span [%d,%d): %w", t0, t1, err)
	}
	b2, err := scaledLeft(y2, q)
	if err != nil {
		return nil, fmt.Errorf("core: summarizing span [%d,%d): %w", t0, t1, err)
	}
	var sumSq float64
	for _, e := range s.sliceSq[t0*mid : t1*mid] {
		sumSq += e
	}
	metrics.ObserveSince(metrics.HistRangeNodeBuild, t0w)
	metrics.CountRangeNodeBuild()
	return &RangeSummary{T0: t0, T1: t1, B1: b1, B2: b2, SumSq: sumSq}, nil
}

// MergeSummaries combines two adjacent span summaries into their parent's:
// an exact truncated SVD of the column concatenation [B_a B_b], which
// preserves the concatenated Gram matrix the children preserve. q ≤ 0 keeps
// the larger of the children's ranks. Cost O((I1+I2)·q²·…) — independent of
// span length, which is what makes internal segment-tree nodes cheap.
func MergeSummaries(a, b *RangeSummary, q int) (_ *RangeSummary, err error) {
	defer dterr.RecoverTo(&err, "core.MergeSummaries")
	if a == nil || b == nil {
		return nil, fmt.Errorf("core: merging nil summary: %w", dterr.ErrInvalidInput)
	}
	if a.T1 != b.T0 {
		return nil, fmt.Errorf("core: merging non-adjacent spans [%d,%d) and [%d,%d): %w",
			a.T0, a.T1, b.T0, b.T1, dterr.ErrInvalidInput)
	}
	if a.B1.Rows() != b.B1.Rows() || a.B2.Rows() != b.B2.Rows() {
		return nil, fmt.Errorf("core: merging summaries with mismatched shapes: %w", dterr.ErrInvalidInput)
	}
	if err := siteStitchNode.Inject(); err != nil {
		return nil, fmt.Errorf("core: merging spans [%d,%d)+[%d,%d): %w", a.T0, a.T1, b.T0, b.T1, err)
	}
	if q <= 0 {
		q = max(a.Rank(), b.Rank())
	}
	t0w := metrics.HistStart()
	b1, err := scaledLeft(hcat(a.B1, b.B1), q)
	if err != nil {
		return nil, fmt.Errorf("core: merging spans [%d,%d)+[%d,%d): %w", a.T0, a.T1, b.T0, b.T1, err)
	}
	b2, err := scaledLeft(hcat(a.B2, b.B2), q)
	if err != nil {
		return nil, fmt.Errorf("core: merging spans [%d,%d)+[%d,%d): %w", a.T0, a.T1, b.T0, b.T1, err)
	}
	metrics.ObserveSince(metrics.HistRangeNodeBuild, t0w)
	metrics.CountRangeNodeBuild()
	return &RangeSummary{T0: a.T0, T1: b.T1, B1: b1, B2: b2, SumSq: a.SumSq + b.SumSq}, nil
}

// hcat returns the column concatenation [ms[0] ms[1] …].
func hcat(ms ...*mat.Dense) *mat.Dense {
	rows, cols := ms[0].Rows(), 0
	for _, m := range ms {
		cols += m.Cols()
	}
	out := mat.New(rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			off += copy(dst[off:], m.Row(i))
		}
	}
	return out
}

// StitchRange solves the Tucker model of time steps [t0, t1) from
// precomputed span summaries instead of a from-scratch DecomposeRange: the
// leading factors A(1)/A(2) are extracted from the concatenated summary
// bases (O(log T) columns instead of O(range) columns), and the remaining
// modes plus the core come from one owner-computes projected-tensor pass —
// no ALS sweeps. parts must tile [t0, t1) exactly, in order.
//
// The result is a deterministic pure function of (t0, t1, the parts' spans,
// the stream contents): bit-identical across worker counts and across
// whether each summary was freshly built or cached. It is NOT bit-identical
// to DecomposeRange — that runs full ALS — but its fit lands within the
// summaries' truncation error of the ALS fit, which rangeidx polices with a
// configurable quality fallback.
func (s *Stream) StitchRange(t0, t1 int, parts []*RangeSummary) (_ *Decomposition, err error) {
	defer dterr.RecoverTo(&err, "core.Stream.StitchRange")
	root := s.opts.Metrics.Tracer().Begin("solve-stitch")
	defer root.End()
	if s.shape == nil {
		return nil, fmt.Errorf("core: StitchRange on an empty stream: %w", dterr.ErrInvalidInput)
	}
	order := len(s.shape)
	length := s.shape[order-1]
	if t0 < 0 || t1 > length || t0 >= t1 {
		return nil, fmt.Errorf("core: range [%d,%d) invalid for stream of length %d: %w",
			t0, t1, length, dterr.ErrInvalidInput)
	}
	span := t1 - t0
	if s.opts.Ranks[order-1] > span {
		return nil, fmt.Errorf("core: temporal rank %d exceeds range length %d: %w",
			s.opts.Ranks[order-1], span, dterr.ErrInvalidInput)
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: StitchRange with no summaries: %w", dterr.ErrInvalidInput)
	}
	at := t0
	for _, p := range parts {
		if p == nil || p.T0 != at {
			return nil, fmt.Errorf("core: summaries do not tile [%d,%d): gap at %d: %w",
				t0, t1, at, dterr.ErrInvalidInput)
		}
		at = p.T1
	}
	if at != t1 {
		return nil, fmt.Errorf("core: summaries cover [%d,%d), want [%d,%d): %w",
			t0, at, t0, t1, dterr.ErrInvalidInput)
	}

	col := s.opts.Metrics
	col.StartPhase(metrics.PhaseInit)
	t0w := time.Now()

	// A(1)/A(2) from the concatenated summary bases. Each B already carries
	// its singular-value scaling, so the concatenation's Gram matrix equals
	// (up to each summary's truncation) the full stacked matrix's — the same
	// quantity initFactors' stacked SVD diagonalizes.
	b1s := make([]*mat.Dense, len(parts))
	b2s := make([]*mat.Dense, len(parts))
	var sumSq float64
	for i, p := range parts {
		b1s[i], b2s[i] = p.B1, p.B2
		sumSq += p.SumSq
	}
	a1, err := mat.LeadingLeft(hcat(b1s...), s.opts.Ranks[0], s.opts.Leading)
	if err != nil {
		col.EndPhase(metrics.PhaseInit)
		return nil, fmt.Errorf("core: stitching mode-1 factor: %w", err)
	}
	a2, err := mat.LeadingLeft(hcat(b2s...), s.opts.Ranks[1], s.opts.Leading)
	if err != nil {
		col.EndPhase(metrics.PhaseInit)
		return nil, fmt.Errorf("core: stitching mode-2 factor: %w", err)
	}
	col.EndPhase(metrics.PhaseInit)

	// Remaining modes and the core from the range's projected tensor — the
	// same owner-computes path DecomposeRange iterates over, run once.
	mid := 1
	for _, d := range s.shape[2 : order-1] {
		mid *= d
	}
	shape := append([]int(nil), s.shape...)
	shape[order-1] = span
	ap := &Approximation{
		Slices:    s.slices[t0*mid : t1*mid],
		Shape:     shape,
		Perm:      identityPerm(order),
		Ranks:     append([]int(nil), s.opts.Ranks...),
		NormX:     math.Sqrt(sumSq),
		SliceRank: s.rank,
		opts:      s.opts,
		pl:        s.pool(),
	}
	col.StartPhase(metrics.PhaseIter)
	defer col.EndPhase(metrics.PhaseIter)
	factors := make([]*mat.Dense, order)
	factors[0], factors[1] = a1, a2
	w, err := ap.projectedTensor("stitch", a1, a2)
	if err != nil {
		return nil, err
	}
	pl := ap.workerPool()
	for n := 2; n < order; n++ {
		if err := s.opts.cancelled("stitch"); err != nil {
			return nil, err
		}
		y := w
		for k := 2; k < order; k++ {
			if k == n {
				continue
			}
			y = y.ModeProductP(factors[k].T(), k, pl)
		}
		f, err := mat.LeadingLeft(y.Unfold(n), ap.Ranks[n], s.opts.Leading)
		if err != nil {
			return nil, fmt.Errorf("core: stitching mode-%d factor: %w", n+1, err)
		}
		factors[n] = f
	}
	core := w
	for k := 2; k < order; k++ {
		core = core.ModeProductP(factors[k].T(), k, pl)
	}
	fit := tucker.FitFromCore(ap.NormX, core.Norm())
	ap.recordPoolStats()
	return &Decomposition{
		Model:     ap.toOriginalOrder(core, factors),
		Fit:       fit,
		Converged: true,
		Stats:     Stats{InitTime: time.Since(t0w)},
	}, nil
}

// SummarizeSpanContext is SummarizeSpan under a cancellation context.
func (s *Stream) SummarizeSpanContext(ctx context.Context, t0, t1, q int) (*RangeSummary, error) {
	var rs *RangeSummary
	err := s.withContext(ctx, func() error {
		var err error
		rs, err = s.SummarizeSpan(t0, t1, q)
		return err
	})
	return rs, err
}

// StitchRangeContext is StitchRange under a cancellation context, observed
// at the projected-tensor and per-factor boundaries.
func (s *Stream) StitchRangeContext(ctx context.Context, t0, t1 int, parts []*RangeSummary) (*Decomposition, error) {
	var dec *Decomposition
	err := s.withContext(ctx, func() error {
		var err error
		dec, err = s.StitchRange(t0, t1, parts)
		return err
	})
	return dec, err
}
