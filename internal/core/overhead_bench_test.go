package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

func benchDecompose(b *testing.B, col *metrics.Collector) {
	x := workload.LowRankNoise([]int{128, 96, 200}, 8, 0.10, 42).X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompose(x, Options{Config: Config{Ranks: []int{8, 8, 8}, Seed: 42}, Metrics: col}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuickstartMetricsOff(b *testing.B) {
	metrics.SetEnabled(false)
	benchDecompose(b, nil)
}

func BenchmarkQuickstartMetricsOn(b *testing.B) {
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)
	benchDecompose(b, &metrics.Collector{})
}

// BenchmarkQuickstartTraceOn measures the fully instrumented path: counters,
// histograms, and a live span tracer recording the whole run. Compare
// against MetricsOff (nothing on — the tracer-off baseline, whose hooks are
// nil no-ops) and MetricsOn (counters + histograms, no spans).
func BenchmarkQuickstartTraceOn(b *testing.B) {
	metrics.SetEnabled(true)
	defer metrics.SetEnabled(false)
	x := workload.LowRankNoise([]int{128, 96, 200}, 8, 0.10, 42).X
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := &metrics.Collector{}
		col.SetTracer(trace.New())
		if _, err := Decompose(x, Options{Config: Config{Ranks: []int{8, 8, 8}, Seed: 42}, Metrics: col}); err != nil {
			b.Fatal(err)
		}
	}
}
