package core

import (
	"fmt"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/randsvd"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Fault-injection hooks at the remaining phase boundaries (no-ops unless a
// test arms them): one per factor computed during initialization, one per
// ALS sweep.
var (
	siteInitFactor = faults.NewSite("core.init.factor")
	siteIterSweep  = faults.NewSite("core.iter.sweep")
)

// initFactors runs the initialization phase in reordered mode space:
// A(1) from the stacked [U_l·S_l], A(2) from the stacked [V_l·S_l], and
// the remaining modes from a truncated HOSVD of the projected tensor W.
// Cancellation is observed between factors.
func (ap *Approximation) initFactors() ([]*mat.Dense, error) {
	col := ap.opts.Metrics
	col.StartPhase(metrics.PhaseInit)
	defer col.EndPhase(metrics.PhaseInit)
	tr := col.Tracer()
	order := len(ap.Shape)
	i1, i2 := ap.Shape[0], ap.Shape[1]
	r := ap.SliceRank
	L := len(ap.Slices)
	rng := rand.New(rand.NewSource(ap.opts.Seed ^ 0x5eed1217))

	factors := make([]*mat.Dense, order)

	// Per-factor spans end on the happy path; error returns leave them to be
	// force-closed by the phase span the deferred EndPhase ends.

	// A(1) ← leading J1 left singular vectors of [U_1S_1 … U_LS_L].
	sp := tr.BeginIdx("factor", 1)
	if err := ap.initBoundary(); err != nil {
		return nil, err
	}
	y1 := mat.New(i1, L*r)
	for l, s := range ap.Slices {
		writeScaledBlock(y1, s.U, s.S, l*r)
	}
	a1, err := leadingOfStack(y1, ap.Ranks[0], rng, ap.opts)
	if err != nil {
		return nil, fmt.Errorf("core: initializing mode-1 factor: %w", err)
	}
	factors[0] = a1
	sp.End()

	// A(2) ← leading J2 left singular vectors of [V_1S_1 … V_LS_L].
	sp = tr.BeginIdx("factor", 2)
	if err := ap.initBoundary(); err != nil {
		return nil, err
	}
	y2 := mat.New(i2, L*r)
	for l, s := range ap.Slices {
		writeScaledBlock(y2, s.V, s.S, l*r)
	}
	a2, err := leadingOfStack(y2, ap.Ranks[1], rng, ap.opts)
	if err != nil {
		return nil, fmt.Errorf("core: initializing mode-2 factor: %w", err)
	}
	factors[1] = a2
	sp.End()

	// Remaining modes from the small projected tensor W (truncated HOSVD).
	if order > 2 {
		w, err := ap.projectedTensor("initialization", a1, a2)
		if err != nil {
			return nil, err
		}
		for n := 2; n < order; n++ {
			sp = tr.BeginIdx("factor", int64(n+1))
			if err := ap.initBoundary(); err != nil {
				return nil, err
			}
			f, err := mat.LeadingLeft(w.Unfold(n), ap.Ranks[n], ap.opts.Leading)
			if err != nil {
				return nil, fmt.Errorf("core: initializing mode-%d factor: %w", n+1, err)
			}
			factors[n] = f
			sp.End()
		}
	}
	return factors, nil
}

// initBoundary is the per-factor boundary of the initialization phase:
// cancellation check plus the core.init.factor fault hook.
func (ap *Approximation) initBoundary() error {
	if err := ap.opts.cancelled("initialization"); err != nil {
		return err
	}
	if err := siteInitFactor.Inject(); err != nil {
		return fmt.Errorf("core: initialization: %w", err)
	}
	return nil
}

// writeScaledBlock writes u·diag(s) into dst starting at column col0.
func writeScaledBlock(dst, u *mat.Dense, s []float64, col0 int) {
	rows, r := u.Dims()
	for i := 0; i < rows; i++ {
		urow := u.Row(i)
		drow := dst.Row(i)
		for j := 0; j < r; j++ {
			drow[col0+j] = urow[j] * s[j]
		}
	}
}

// leadingOfStack extracts k leading left singular vectors of the (typically
// very wide) stacked matrix. A randomized SVD keeps this O(rows·cols·k)
// instead of the O(rows²·cols) an exact factorization would cost; for small
// stacks the exact path is used directly.
func leadingOfStack(y *mat.Dense, k int, rng *rand.Rand, opts Options) (*mat.Dense, error) {
	rows, cols := y.Dims()
	if cols <= 3*k+8 || rows*cols < 1<<14 {
		return mat.LeadingLeft(y, k, opts.Leading)
	}
	// Stack keys are negative so keyed fault plans aimed at slice indices
	// (which are ≥ 0) never hit the initialization stacks.
	res, _, err := randsvd.SVDWithFallback(y, k, randsvd.Options{
		Oversampling: opts.Oversampling,
		PowerIters:   opts.PowerIters,
		Rng:          rng,
		FaultKey:     -1,
	})
	if err != nil {
		return nil, err
	}
	if res.U.Cols() < k {
		// Degenerate stack; fall back to the exact path, which pads with
		// an orthonormal completion.
		return mat.LeadingLeft(y, k, mat.LeadingJacobi)
	}
	return res.U, nil
}

// projectedTensor builds W ∈ R^{J1×J2×I3×…} with frontal slices
// W_l = (A(1)ᵀU_l)·diag(S_l)·(V_lᵀA(2)) — the whole input projected into
// the current mode-1/2 subspaces, computed purely from the compressed
// slices.
func (ap *Approximation) projectedTensor(phase string, a1, a2 *mat.Dense) (*tensor.Dense, error) {
	shape := append([]int{a1.Cols(), a2.Cols()}, ap.Shape[2:]...)
	w := tensor.New(shape...)
	// One pool task per slice; slice l writes only its own frontal block of
	// w, so the result is identical for every pool size. phase tags a
	// cancellation observed inside the region (initialization and iteration
	// both build projected tensors).
	pl := ap.workerPool()
	sp := ap.opts.Metrics.Tracer().Begin("project")
	defer sp.End()
	err := pl.RunLabeled(ap.opts.Context, "project-slice", len(ap.Slices), func(_, l int) error {
		ap.projectSlice(w, l, a1, a2)
		return nil
	})
	if err != nil {
		return nil, wrapCancel(phase, err)
	}
	return w, nil
}

// projectSlice computes W_l = (A(1)ᵀU_l)·diag(S_l)·(V_lᵀA(2)) and stores it
// as frontal slice l. The inner product runs single-threaded (nil pool):
// projectSlice already executes inside a slice-parallel region.
func (ap *Approximation) projectSlice(w *tensor.Dense, l int, a1, a2 *mat.Dense) {
	s := &ap.Slices[l]
	left := mat.MulTA(a1, s.U) // J1×r
	scaleCols(left, s.S)
	right := mat.MulTA(s.V, a2) // r×J2
	w.SetFrontalSlice(l, mat.MulP(left, right, nil))
}

func scaleCols(m *mat.Dense, s []float64) {
	rows, cols := m.Dims()
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := 0; j < cols; j++ {
			row[j] *= s[j]
		}
	}
}

// accScratch holds the reusable buffers of one accumulateSliceMode target
// (mode 1 or mode 2). All float64 storage comes from the pool arena, so
// steady-state sweeps allocate nothing; iterate releases it when it returns.
type accScratch struct {
	rows, blk, c int

	y *mat.Dense // rows × blk·c accumulation output, reused every sweep

	// Phase A outputs, one owner per slice: t[l] is the r_l×blk projection
	// diag(S_l)·(V_lᵀA(2)) (resp. diag(S_l)·(U_lᵀA(1))), and w[l·c:(l+1)·c]
	// is slice l's Kronecker weight row over the trailing factors.
	t []*mat.Dense
	w []float64

	// Per-worker scratch, indexed by the dense worker ids the pool hands
	// out: a blk-length product row for phase B, and the multi-index plus
	// Kronecker row pointers for phase A.
	prow [][]float64
	idx  [][]int
	kron [][][]float64
}

// accScratchFor returns the cached scratch for mode, rebuilding it from the
// pool arena when the problem dimensions changed since the last sweep.
func (ap *Approximation) accScratchFor(mode int, factors []*mat.Dense) *accScratch {
	pl := ap.workerPool()
	order := len(ap.Shape)
	c := 1
	for k := 2; k < order; k++ {
		c *= factors[k].Cols()
	}
	var rows, blk int
	if mode == 0 {
		rows, blk = ap.Shape[0], factors[1].Cols()
	} else {
		rows, blk = ap.Shape[1], factors[0].Cols()
	}
	L := len(ap.Slices)
	if sc := ap.scratch[mode]; sc != nil {
		if sc.rows == rows && sc.blk == blk && sc.c == c && len(sc.t) == L && len(sc.prow) >= pl.Size() {
			return sc
		}
		ap.releaseScratchMode(mode)
	}
	sc := &accScratch{rows: rows, blk: blk, c: c}
	sc.y = mat.NewFromData(rows, blk*c, pl.Get(rows*blk*c))
	sc.t = make([]*mat.Dense, L)
	for l := range sc.t {
		// Slice SVDs of degenerate slices can carry fewer than SliceRank
		// columns, so each projection is sized from its own slice.
		r := ap.Slices[l].V.Cols()
		if mode == 1 {
			r = ap.Slices[l].U.Cols()
		}
		sc.t[l] = mat.NewFromData(r, blk, pl.Get(r*blk))
	}
	sc.w = pl.Get(L * c)
	nw := pl.Size()
	sc.prow = make([][]float64, nw)
	sc.idx = make([][]int, nw)
	sc.kron = make([][][]float64, nw)
	for k := 0; k < nw; k++ {
		sc.prow[k] = pl.Get(blk)
		sc.idx[k] = make([]int, order-2)
		sc.kron[k] = make([][]float64, order-2)
	}
	ap.scratch[mode] = sc
	return sc
}

// releaseScratchMode returns one mode's scratch buffers to the pool arena.
func (ap *Approximation) releaseScratchMode(mode int) {
	sc := ap.scratch[mode]
	if sc == nil {
		return
	}
	pl := ap.workerPool()
	pl.Put(sc.y.Data())
	for _, t := range sc.t {
		pl.Put(t.Data())
	}
	pl.Put(sc.w)
	for _, b := range sc.prow {
		pl.Put(b)
	}
	ap.scratch[mode] = nil
}

// releaseScratch returns all iteration scratch to the pool arena, so a
// shared pool can recycle it into the next decomposition or sweep shape.
func (ap *Approximation) releaseScratch() {
	for mode := range ap.scratch {
		ap.releaseScratchMode(mode)
	}
}

// accProjectSlice runs phase A of the accumulation for slice l: the small
// projection t_l and the Kronecker weight row. It writes only slice l's
// scratch entries, so phase A tasks are independent of worker scheduling.
func (ap *Approximation) accProjectSlice(sc *accScratch, mode int, factors []*mat.Dense, worker, l int) {
	s := &ap.Slices[l]
	t := sc.t[l]
	if mode == 0 {
		mat.MulTAInto(t, s.V, factors[1]) // r×J2
	} else {
		mat.MulTAInto(t, s.U, factors[0]) // r×J1
	}
	scaleRows(t, s.S)
	// Phase B applies U_l·t_l (resp. V_l·t_l) row by row; account for it
	// here, once per slice, so counters stay independent of Workers.
	metrics.CountMatmul(sc.rows, t.Rows(), sc.blk)
	// Kronecker row over the trailing factors with mode 3 fastest: KronRow
	// makes its *last* argument fastest, so feed rows in reverse mode order.
	idx := ap.sliceIndex(l, sc.idx[worker])
	kron := sc.kron[worker]
	for k := range kron {
		kron[len(kron)-1-k] = factors[2+k].Row(idx[k])
	}
	mat.KronRow(sc.w[l*sc.c:(l+1)*sc.c], kron...)
}

// accRowRange runs phase B for output rows [lo, hi): row i accumulates, over
// slices in ascending order, the slice's projected row scaled by its
// Kronecker weights. Each output row is owned by exactly one worker and the
// per-row arithmetic never depends on the range split, so the result is
// bit-identical for every pool size — and to the serial evaluation.
func (ap *Approximation) accRowRange(sc *accScratch, mode, worker, lo, hi int) {
	blk, c := sc.blk, sc.c
	prow := sc.prow[worker]
	for i := lo; i < hi; i++ {
		yrow := sc.y.Row(i)
		for j := range yrow {
			yrow[j] = 0
		}
		for l := range ap.Slices {
			s := &ap.Slices[l]
			f := s.U
			if mode == 1 {
				f = s.V
			}
			frow := f.Row(i)
			t := sc.t[l]
			// prow = frow·t_l with the same i-k-j ordering and zero
			// skipping as the mat kernels.
			for j := range prow {
				prow[j] = 0
			}
			for k, av := range frow {
				if av == 0 {
					continue
				}
				trow := t.Row(k)
				for j, tv := range trow {
					prow[j] += av * tv
				}
			}
			wl := sc.w[l*c : (l+1)*c]
			for cc, wc := range wl {
				if wc == 0 {
					continue
				}
				dst := yrow[cc*blk : (cc+1)*blk]
				for j, pv := range prow {
					dst[j] += wc * pv
				}
			}
		}
	}
}

// accumulateSliceMode computes the mode-1 (mode = 0) or mode-2 (mode = 1)
// ALS matrix Y_(n) = X ×_{k≠n} A(k)ᵀ unfolded along mode n, evaluated
// through the compressed slices:
//
//	mode 0: Y = Σ_l [U_l·diag(S)·(V_lᵀA(2))] ⊗ kronrow_l  (I1 × J2·C)
//	mode 1: Y = Σ_l [V_l·diag(S)·(U_lᵀA(1))] ⊗ kronrow_l  (I2 × J1·C)
//
// where kronrow_l is the Kronecker product of the rows of A(3..N) selected
// by slice l's multi-index and C = ∏_{k≥3} J_k.
//
// The work is split in two pool phases. Phase A computes each slice's small
// projection and weight row, one task per slice, each writing only its own
// scratch entries. Phase B accumulates the output, one owner per row, with
// slices visited in ascending order inside every row. No cross-worker
// reduction exists in either phase, so the result is bit-identical for every
// pool size (the Options.Seed contract) — including the serial path, which
// runs the same loops inline without spawning goroutines or closures.
//
// The returned matrix is pool-owned scratch: it is valid until the next
// accumulateSliceMode call for the same mode (callers consume it
// immediately via mat.LeadingLeft).
func (ap *Approximation) accumulateSliceMode(mode int, factors []*mat.Dense) (*mat.Dense, error) {
	sc := ap.accScratchFor(mode, factors)
	pl := ap.workerPool()
	ctx := ap.opts.Context
	L := len(ap.Slices)
	if pl.Size() <= 1 {
		// Inline serial path: same loops, no closures, so steady-state
		// sweeps stay allocation-free. Cancellation is still observed at
		// every slice boundary.
		for l := 0; l < L; l++ {
			if err := ap.opts.cancelled("iteration"); err != nil {
				return nil, err
			}
			ap.accProjectSlice(sc, mode, factors, 0, l)
		}
		if err := ap.opts.cancelled("iteration"); err != nil {
			return nil, err
		}
		ap.accRowRange(sc, mode, 0, 0, sc.rows)
		return sc.y, nil
	}
	err := pl.RunLabeled(ctx, "acc-slice", L, func(worker, l int) error {
		ap.accProjectSlice(sc, mode, factors, worker, l)
		return nil
	})
	if err == nil {
		err = pl.RunRangesLabeled(ctx, "acc-rows", sc.rows, pl.Size(), func(worker, lo, hi int) error {
			ap.accRowRange(sc, mode, worker, lo, hi)
			return nil
		})
	}
	if err != nil {
		return nil, wrapCancel("iteration", err)
	}
	return sc.y, nil
}

func scaleRows(m *mat.Dense, s []float64) {
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[i]
		}
	}
}

// iterate runs the iteration phase: ALS sweeps over all modes evaluated on
// the compressed slices, stopping when the fit change drops below Tol or
// MaxIters is reached. It returns the core, the fit estimate, the number of
// sweeps executed, and whether the tolerance was actually reached —
// converged == false means the sweep budget ran out with the fit still
// moving (callers surface this instead of silently reporting MaxIters
// sweeps as if the run had settled).
//
// startSweep and prevFit exist for checkpoint resume: a fresh run passes
// (1, 0); a resumed run passes the checkpointed sweep + 1 and the
// checkpointed fit, so the convergence test |fit − prevFit| < Tol sees
// exactly the values the uninterrupted run would have — the resumed
// trajectory is bit-identical, decisions included.
func (ap *Approximation) iterate(factors []*mat.Dense, startSweep int, prevFit float64) (*tensor.Dense, float64, int, bool, error) {
	col := ap.opts.Metrics
	col.StartPhase(metrics.PhaseIter)
	defer col.EndPhase(metrics.PhaseIter)
	defer ap.releaseScratch()
	tr := col.Tracer()
	pl := ap.workerPool()
	order := len(ap.Shape)
	fingerprint := ""
	if ap.opts.CheckpointSink != nil {
		fingerprint = ap.opts.Config.Fingerprint()
	}
	var (
		core      *tensor.Dense
		fit       float64
		iters     int
		converged bool
	)
	// Sweep and mode spans end on the happy path; any error return leaves
	// them to be force-closed by the phase span the deferred EndPhase ends,
	// so the trace stays balanced on every exit.
	for iters = startSweep; iters <= ap.opts.MaxIters; iters++ {
		sweep := tr.BeginIdx("sweep", int64(iters))
		// Sweep boundary: a cancelled run stops here, before the next sweep
		// touches any scratch, and the core.iter.sweep fault hook fires.
		if err := ap.opts.cancelled("iteration"); err != nil {
			return nil, 0, iters, false, err
		}
		if err := siteIterSweep.Inject(); err != nil {
			return nil, 0, iters, false, fmt.Errorf("core: sweep %d: %w", iters, err)
		}
		// Modes 1 and 2: leading left singular vectors of the slice-based
		// accumulation.
		for mode := 0; mode < 2; mode++ {
			msp := tr.BeginIdx("mode", int64(mode+1))
			y, err := ap.accumulateSliceMode(mode, factors)
			if err != nil {
				return nil, 0, iters, false, err
			}
			f, err := mat.LeadingLeft(y, ap.Ranks[mode], ap.opts.Leading)
			if err != nil {
				return nil, 0, iters, false, fmt.Errorf("core: updating mode-%d factor: %w", mode+1, err)
			}
			factors[mode] = f
			msp.End()
		}
		// Remaining modes and the core from the small projected tensor.
		w, err := ap.projectedTensor("iteration", factors[0], factors[1])
		if err != nil {
			return nil, 0, iters, false, err
		}
		for n := 2; n < order; n++ {
			msp := tr.BeginIdx("mode", int64(n+1))
			y := w
			for k := 2; k < order; k++ {
				if k == n {
					continue
				}
				y = y.ModeProductP(factors[k].T(), k, pl)
			}
			f, err := mat.LeadingLeft(y.Unfold(n), ap.Ranks[n], ap.opts.Leading)
			if err != nil {
				return nil, 0, iters, false, fmt.Errorf("core: updating mode-%d factor: %w", n+1, err)
			}
			factors[n] = f
			msp.End()
		}
		csp := tr.Begin("core-update")
		core = w
		for k := 2; k < order; k++ {
			core = core.ModeProductP(factors[k].T(), k, pl)
		}

		fit = tucker.FitFromCore(ap.NormX, core.Norm())
		csp.End()
		col.RecordFit(iters, fit)
		// The convergence decision is made before the checkpoint is cut so a
		// terminal sweep can be marked Done — a resume from it short-circuits
		// straight to the result instead of re-running a sweep the original
		// run never ran.
		conv := iters > 1 && abs(fit-prevFit) < ap.opts.Tol
		if sink := ap.opts.CheckpointSink; sink != nil {
			t0 := metrics.HistStart()
			err := sink(&Checkpoint{
				Sweep:       iters,
				Fit:         fit,
				Done:        conv || iters == ap.opts.MaxIters,
				Converged:   conv,
				Fingerprint: fingerprint,
				Factors:     factors,
				Core:        core,
			})
			if err != nil {
				return nil, 0, iters, false, fmt.Errorf("core: sweep %d checkpoint: %w", iters, err)
			}
			metrics.ObserveSince(metrics.HistCheckpointWrite, t0)
		}
		sweep.End()
		if conv {
			converged = true
			break
		}
		prevFit = fit
	}
	if !converged {
		// The loop fell off the end: every budgeted sweep ran.
		iters = ap.opts.MaxIters
	}
	return core, fit, iters, converged, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
