package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/randsvd"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// initFactors runs the initialization phase in reordered mode space:
// A(1) from the stacked [U_l·S_l], A(2) from the stacked [V_l·S_l], and
// the remaining modes from a truncated HOSVD of the projected tensor W.
func (ap *Approximation) initFactors() ([]*mat.Dense, error) {
	col := ap.opts.Metrics
	col.StartPhase(metrics.PhaseInit)
	defer col.EndPhase(metrics.PhaseInit)
	order := len(ap.Shape)
	i1, i2 := ap.Shape[0], ap.Shape[1]
	r := ap.SliceRank
	L := len(ap.Slices)
	rng := rand.New(rand.NewSource(ap.opts.Seed ^ 0x5eed1217))

	factors := make([]*mat.Dense, order)

	// A(1) ← leading J1 left singular vectors of [U_1S_1 … U_LS_L].
	y1 := mat.New(i1, L*r)
	for l, s := range ap.Slices {
		writeScaledBlock(y1, s.U, s.S, l*r)
	}
	a1, err := leadingOfStack(y1, ap.Ranks[0], rng, ap.opts)
	if err != nil {
		return nil, fmt.Errorf("core: initializing mode-1 factor: %w", err)
	}
	factors[0] = a1

	// A(2) ← leading J2 left singular vectors of [V_1S_1 … V_LS_L].
	y2 := mat.New(i2, L*r)
	for l, s := range ap.Slices {
		writeScaledBlock(y2, s.V, s.S, l*r)
	}
	a2, err := leadingOfStack(y2, ap.Ranks[1], rng, ap.opts)
	if err != nil {
		return nil, fmt.Errorf("core: initializing mode-2 factor: %w", err)
	}
	factors[1] = a2

	// Remaining modes from the small projected tensor W (truncated HOSVD).
	if order > 2 {
		w := ap.projectedTensor(a1, a2)
		for n := 2; n < order; n++ {
			f, err := mat.LeadingLeft(w.Unfold(n), ap.Ranks[n], ap.opts.Leading)
			if err != nil {
				return nil, fmt.Errorf("core: initializing mode-%d factor: %w", n+1, err)
			}
			factors[n] = f
		}
	}
	return factors, nil
}

// writeScaledBlock writes u·diag(s) into dst starting at column col0.
func writeScaledBlock(dst, u *mat.Dense, s []float64, col0 int) {
	rows, r := u.Dims()
	for i := 0; i < rows; i++ {
		urow := u.Row(i)
		drow := dst.Row(i)
		for j := 0; j < r; j++ {
			drow[col0+j] = urow[j] * s[j]
		}
	}
}

// leadingOfStack extracts k leading left singular vectors of the (typically
// very wide) stacked matrix. A randomized SVD keeps this O(rows·cols·k)
// instead of the O(rows²·cols) an exact factorization would cost; for small
// stacks the exact path is used directly.
func leadingOfStack(y *mat.Dense, k int, rng *rand.Rand, opts Options) (*mat.Dense, error) {
	rows, cols := y.Dims()
	if cols <= 3*k+8 || rows*cols < 1<<14 {
		return mat.LeadingLeft(y, k, opts.Leading)
	}
	res, err := randsvd.SVD(y, k, randsvd.Options{
		Oversampling: opts.Oversampling,
		PowerIters:   opts.PowerIters,
		Rng:          rng,
	})
	if err != nil {
		return nil, err
	}
	if res.U.Cols() < k {
		// Degenerate stack; fall back to the exact path, which pads with
		// an orthonormal completion.
		return mat.LeadingLeft(y, k, mat.LeadingJacobi)
	}
	return res.U, nil
}

// projectedTensor builds W ∈ R^{J1×J2×I3×…} with frontal slices
// W_l = (A(1)ᵀU_l)·diag(S_l)·(V_lᵀA(2)) — the whole input projected into
// the current mode-1/2 subspaces, computed purely from the compressed
// slices.
func (ap *Approximation) projectedTensor(a1, a2 *mat.Dense) *tensor.Dense {
	shape := append([]int{a1.Cols(), a2.Cols()}, ap.Shape[2:]...)
	w := tensor.New(shape...)
	for l, s := range ap.Slices {
		left := mat.MulTA(a1, s.U) // J1×r
		scaleCols(left, s.S)
		right := mat.MulTA(s.V, a2) // r×J2
		w.SetFrontalSlice(l, mat.Mul(left, right))
	}
	return w
}

func scaleCols(m *mat.Dense, s []float64) {
	rows, cols := m.Dims()
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := 0; j < cols; j++ {
			row[j] *= s[j]
		}
	}
	_ = rows
}

// accumulateSliceMode computes the mode-1 (mode = 0) or mode-2 (mode = 1)
// ALS matrix Y_(n) = X ×_{k≠n} A(k)ᵀ unfolded along mode n, evaluated
// through the compressed slices:
//
//	mode 0: Y += Σ_l [U_l·diag(S)·(V_lᵀA(2))] ⊗ kronrow_l  (I1 × J2·C)
//	mode 1: Y += Σ_l [V_l·diag(S)·(U_lᵀA(1))] ⊗ kronrow_l  (I2 × J1·C)
//
// where kronrow_l is the Kronecker product of the rows of A(3..N) selected
// by slice l's multi-index and C = ∏_{k≥3} J_k.
//
// With opts.Workers > 1 the slice range is split across goroutines, each
// accumulating into a private matrix; the partials are reduced in a fixed
// order so the result is deterministic for a given worker count.
func (ap *Approximation) accumulateSliceMode(mode int, factors []*mat.Dense) *mat.Dense {
	order := len(ap.Shape)
	c := 1
	for k := 2; k < order; k++ {
		c *= factors[k].Cols()
	}
	var rows, blk int
	if mode == 0 {
		rows, blk = ap.Shape[0], factors[1].Cols()
	} else {
		rows, blk = ap.Shape[1], factors[0].Cols()
	}

	accumulate := func(y *mat.Dense, lo, hi int) {
		w := make([]float64, c)
		kronRows := make([][]float64, order-2)
		idx := make([]int, order-2)
		for l := lo; l < hi; l++ {
			s := ap.Slices[l]
			var p *mat.Dense
			if mode == 0 {
				t := mat.MulTA(s.V, factors[1]) // r×J2
				scaleRows(t, s.S)
				p = mat.Mul(s.U, t) // I1×J2
			} else {
				t := mat.MulTA(s.U, factors[0]) // r×J1
				scaleRows(t, s.S)
				p = mat.Mul(s.V, t) // I2×J1
			}
			// Kronecker row over the trailing factors with mode 3
			// fastest: KronRow makes its *last* argument fastest, so feed
			// rows in reverse mode order.
			idx = ap.sliceIndex(l, idx)
			for k := range kronRows {
				kronRows[len(kronRows)-1-k] = factors[2+k].Row(idx[k])
			}
			mat.KronRow(w, kronRows...)

			for i := 0; i < rows; i++ {
				prow := p.Row(i)
				yrow := y.Row(i)
				for cc, wc := range w {
					if wc == 0 {
						continue
					}
					dst := yrow[cc*blk : (cc+1)*blk]
					for j, pv := range prow {
						dst[j] += wc * pv
					}
				}
			}
		}
	}

	nw := ap.opts.Workers
	if nw > len(ap.Slices) {
		nw = len(ap.Slices)
	}
	if nw <= 1 {
		y := mat.New(rows, blk*c)
		accumulate(y, 0, len(ap.Slices))
		return y
	}
	partials := make([]*mat.Dense, nw)
	var wg sync.WaitGroup
	chunk := (len(ap.Slices) + nw - 1) / nw
	for wk := 0; wk < nw; wk++ {
		lo := wk * chunk
		hi := min(lo+chunk, len(ap.Slices))
		partials[wk] = mat.New(rows, blk*c)
		wg.Add(1)
		go func(y *mat.Dense, lo, hi int) {
			defer wg.Done()
			accumulate(y, lo, hi)
		}(partials[wk], lo, hi)
	}
	wg.Wait()
	y := partials[0]
	for _, p := range partials[1:] {
		y.AddInPlace(p)
	}
	return y
}

func scaleRows(m *mat.Dense, s []float64) {
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s[i]
		}
	}
}

// iterate runs the iteration phase: ALS sweeps over all modes evaluated on
// the compressed slices, stopping when the fit change drops below Tol or
// MaxIters is reached. It returns the core, the fit estimate, and the
// number of sweeps executed.
func (ap *Approximation) iterate(factors []*mat.Dense) (*tensor.Dense, float64, int, error) {
	col := ap.opts.Metrics
	col.StartPhase(metrics.PhaseIter)
	defer col.EndPhase(metrics.PhaseIter)
	order := len(ap.Shape)
	var (
		core    *tensor.Dense
		fit     float64
		prevFit float64
		iters   int
	)
	for iters = 1; iters <= ap.opts.MaxIters; iters++ {
		// Modes 1 and 2: leading left singular vectors of the slice-based
		// accumulation.
		for mode := 0; mode < 2; mode++ {
			y := ap.accumulateSliceMode(mode, factors)
			f, err := mat.LeadingLeft(y, ap.Ranks[mode], ap.opts.Leading)
			if err != nil {
				return nil, 0, iters, fmt.Errorf("core: updating mode-%d factor: %w", mode+1, err)
			}
			factors[mode] = f
		}
		// Remaining modes and the core from the small projected tensor.
		w := ap.projectedTensor(factors[0], factors[1])
		for n := 2; n < order; n++ {
			y := w
			for k := 2; k < order; k++ {
				if k == n {
					continue
				}
				y = y.ModeProduct(factors[k].T(), k)
			}
			f, err := mat.LeadingLeft(y.Unfold(n), ap.Ranks[n], ap.opts.Leading)
			if err != nil {
				return nil, 0, iters, fmt.Errorf("core: updating mode-%d factor: %w", n+1, err)
			}
			factors[n] = f
		}
		core = w
		for k := 2; k < order; k++ {
			core = core.ModeProduct(factors[k].T(), k)
		}

		fit = tucker.FitFromCore(ap.NormX, core.Norm())
		col.RecordFit(iters, fit)
		if iters > 1 && abs(fit-prevFit) < ap.opts.Tol {
			break
		}
		prevFit = fit
	}
	if iters > ap.opts.MaxIters {
		iters = ap.opts.MaxIters
	}
	return core, fit, iters, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
