package core

import (
	"fmt"
	"math/rand"

	"repro/internal/dterr"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/randsvd"
	"repro/internal/tensor"
)

// RanksForEnergy suggests per-mode target ranks, in the INPUT's original
// mode order, such that each mode's factor subspace retains at least a
// (1 − eps²) fraction of that mode's unfolding energy, capped at maxRank
// per mode. It is computed entirely from the compressed slices — no pass
// over raw data — making rank exploration nearly free once the
// approximation phase has run.
//
// This answers the practical question the paper's fixed-rank protocol
// leaves open ("which J do I pick?") and is labelled an extension in
// DESIGN.md.
func (ap *Approximation) RanksForEnergy(eps float64, maxRank int) (_ []int, err error) {
	defer dterr.RecoverTo(&err, "core.Approximation.RanksForEnergy")
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: energy tolerance %g outside (0,1): %w", eps, dterr.ErrInvalidInput)
	}
	if maxRank <= 0 {
		return nil, fmt.Errorf("core: non-positive maxRank %d: %w", maxRank, dterr.ErrInvalidInput)
	}
	// Rank exploration is initialization-phase work: it runs on the
	// compressed slices to pick the subspace dimensions.
	col := ap.opts.Metrics
	col.StartPhase(metrics.PhaseInit)
	defer col.EndPhase(metrics.PhaseInit)
	order := len(ap.Shape)
	// Truncation errors accumulate across modes (the HOSVD bound:
	// ‖X−X̂‖² ≤ Σ_n tail_n²), so each mode gets an eps²/N share of the
	// squared error budget.
	keep := 1 - eps*eps/float64(order)
	rng := rand.New(rand.NewSource(ap.opts.Seed ^ 0x7a9e))

	permRanks := make([]int, order)

	// Modes 1 and 2: spectra of the stacked slice factors. The stack's
	// total energy is Σ S² exactly (orthonormal slice factors), so the
	// retained fraction needs only the leading singular values.
	total := 0.0
	for _, s := range ap.Slices {
		for _, v := range s.S {
			total += v * v
		}
	}
	for mode := 0; mode < 2; mode++ {
		dim := ap.Shape[mode]
		rankCap := min(min(maxRank, dim), len(ap.Slices)*ap.SliceRank)
		y := ap.stackedFactors(mode)
		sv, err := leadingValuesOfStack(y, rankCap, rng, ap.opts)
		if err != nil {
			return nil, fmt.Errorf("core: mode-%d spectrum: %w", mode+1, err)
		}
		permRanks[mode] = ranksForFraction(sv, total, keep, rankCap)
	}

	// Trailing modes: spectra of the projected tensor W built with
	// provisional mode-1/2 bases at the capped rank.
	if order > 2 {
		a1, err := leadingOfStack(ap.stackedFactors(0), min(maxRank, ap.Shape[0]), rng, ap.opts)
		if err != nil {
			return nil, err
		}
		a2, err := leadingOfStack(ap.stackedFactors(1), min(maxRank, ap.Shape[1]), rng, ap.opts)
		if err != nil {
			return nil, err
		}
		w, err := ap.projectedTensor("initialization", a1, a2)
		if err != nil {
			return nil, err
		}
		wNorm := w.Norm()
		wTotal := wNorm * wNorm
		for n := 2; n < order; n++ {
			rankCap := min(maxRank, ap.Shape[n])
			sv, err := unfoldingSpectrum(w, n, rankCap)
			if err != nil {
				return nil, fmt.Errorf("core: mode-%d spectrum: %w", n+1, err)
			}
			permRanks[n] = ranksForFraction(sv, wTotal, keep, rankCap)
		}
	}

	// Map back to the original mode order.
	ranks := make([]int, order)
	for k, p := range ap.Perm {
		ranks[p] = permRanks[k]
	}
	return ranks, nil
}

// stackedFactors materializes [F_1·S_1 … F_L·S_L] where F is U (mode 0) or
// V (mode 1).
func (ap *Approximation) stackedFactors(mode int) *mat.Dense {
	r := ap.SliceRank
	dim := ap.Shape[mode]
	y := mat.New(dim, len(ap.Slices)*r)
	for l, s := range ap.Slices {
		f := s.U
		if mode == 1 {
			f = s.V
		}
		writeScaledBlock(y, f, s.S, l*r)
	}
	return y
}

// leadingValuesOfStack returns the k leading singular values of the stack,
// exactly for small stacks and via randomized SVD for large ones.
func leadingValuesOfStack(y *mat.Dense, k int, rng *rand.Rand, opts Options) ([]float64, error) {
	rows, cols := y.Dims()
	if cols <= 3*k+8 || rows*cols < 1<<14 {
		res, err := mat.SVD(y)
		if err != nil {
			return nil, err
		}
		if k < len(res.S) {
			return res.S[:k], nil
		}
		return res.S, nil
	}
	// Negative fault key: keyed plans target slice indices (≥ 0), not the
	// spectrum estimates.
	res, _, err := randsvd.SVDWithFallback(y, k, randsvd.Options{
		Oversampling: opts.Oversampling,
		PowerIters:   opts.PowerIters,
		Rng:          rng,
		FaultKey:     -1,
	})
	if err != nil {
		return nil, err
	}
	return res.S, nil
}

// ranksForFraction returns the smallest count of leading squared singular
// values reaching keep·total, capped at rankCap.
func ranksForFraction(sv []float64, total, keep float64, rankCap int) int {
	if total <= 0 {
		return 1
	}
	acc := 0.0
	for i, v := range sv {
		acc += v * v
		if acc >= keep*total {
			return min(i+1, rankCap)
		}
	}
	return rankCap
}

// unfoldingSpectrum returns the k leading singular values of the mode-n
// unfolding of w.
func unfoldingSpectrum(w *tensor.Dense, n, k int) ([]float64, error) {
	res, err := mat.SVD(w.Unfold(n))
	if err != nil {
		return nil, err
	}
	sv := res.S
	if k < len(sv) {
		sv = sv[:k]
	}
	return sv, nil
}

// DecomposeAdaptive runs D-Tucker with data-driven ranks: the tensor is
// compressed once at slice rank maxRank, per-mode ranks are chosen so each
// retains (1 − eps²) of its energy (capped at maxRank), and the remaining
// phases run at those ranks. opts.Ranks is ignored.
func DecomposeAdaptive(x *tensor.Dense, eps float64, maxRank int, opts Options) (*Decomposition, []int, error) {
	if x == nil {
		return nil, nil, fmt.Errorf("core: nil tensor: %w", dterr.ErrInvalidInput)
	}
	if maxRank <= 0 {
		return nil, nil, fmt.Errorf("core: non-positive maxRank %d: %w", maxRank, dterr.ErrInvalidInput)
	}
	root := opts.Metrics.Tracer().Begin("decompose-adaptive")
	defer root.End()
	provisional := make([]int, x.Order())
	for n := range provisional {
		provisional[n] = min(maxRank, x.Dim(n))
	}
	opts.Ranks = provisional
	if opts.SliceRank <= 0 {
		opts.SliceRank = maxRank
	}
	ap, err := Approximate(x, opts)
	if err != nil {
		return nil, nil, err
	}
	ranks, err := ap.RanksForEnergy(eps, maxRank)
	if err != nil {
		return nil, nil, err
	}
	if opts.Metrics.Tracing() {
		opts.Metrics.Tracef("adaptive ranks selected: %v (eps %g, max %d)", ranks, eps, maxRank)
	}
	for k, p := range ap.Perm {
		ap.Ranks[k] = ranks[p]
	}
	ap.opts.Ranks = ranks
	dec, err := ap.Decompose()
	if err != nil {
		return nil, nil, err
	}
	return dec, ranks, nil
}
