package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dterr"
	"repro/internal/mat"
)

// checkpointConfig is a tiny problem whose tolerance is unreachable, so the
// iteration runs a fixed, known number of sweeps — every sweep index is a
// crash point the resume matrix can hit.
func checkpointConfig(maxIters int) Config {
	return Config{Ranks: []int{3, 3, 2}, Tol: 1e-300, MaxIters: maxIters, Seed: 7}
}

// collectCheckpoints runs a decomposition capturing a deep serialized copy
// of every sweep checkpoint, returning the result and the checkpoints in
// sweep order.
func collectCheckpoints(t *testing.T, cfg Config, workers int) (*Decomposition, []*Checkpoint) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := lowRankTensor(rng, 0.3, 2, 11, 9, 6)
	var cps []*Checkpoint
	opts := cfg.Options()
	opts.Workers = workers
	opts.CheckpointSink = func(cp *Checkpoint) error {
		// Serialize and re-read: the round trip is the deep copy, and it
		// exercises the exact bytes a crash-recovery resume would load.
		var buf bytes.Buffer
		if _, err := cp.WriteTo(&buf); err != nil {
			return err
		}
		got, err := ReadCheckpoint(&buf)
		if err != nil {
			return err
		}
		cps = append(cps, got)
		return nil
	}
	dec, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	return dec, cps
}

func requireSameResult(t *testing.T, label string, ref, got *Decomposition) {
	t.Helper()
	if math.Float64bits(got.Fit) != math.Float64bits(ref.Fit) {
		t.Fatalf("%s: fit %v differs from reference %v", label, got.Fit, ref.Fit)
	}
	if got.Converged != ref.Converged || got.Stats.Iters != ref.Stats.Iters {
		t.Fatalf("%s: converged/iters %v/%d differ from reference %v/%d",
			label, got.Converged, got.Stats.Iters, ref.Converged, ref.Stats.Iters)
	}
	if !bitIdentical(got.Core.Data(), ref.Core.Data()) {
		t.Fatalf("%s: core differs from reference", label)
	}
	for n := range ref.Factors {
		if !bitIdentical(got.Factors[n].Data(), ref.Factors[n].Data()) {
			t.Fatalf("%s: factor %d differs from reference", label, n)
		}
	}
}

// TestResumeMatrixBitIdentical is the acceptance-criteria matrix: a run
// interrupted after any sweep k, resumed from the checkpoint serialized at
// that boundary, must reproduce the uninterrupted run's factors, core, and
// fit bit for bit — for every k and for more than one worker count.
func TestResumeMatrixBitIdentical(t *testing.T) {
	const maxIters = 5
	cfg := checkpointConfig(maxIters)
	rng := rand.New(rand.NewSource(99))
	x := lowRankTensor(rng, 0.3, 2, 11, 9, 6)

	ref, cps := collectCheckpoints(t, cfg, 1)
	if len(cps) != maxIters {
		t.Fatalf("captured %d checkpoints, want %d (tolerance should be unreachable)", len(cps), maxIters)
	}
	if ref.Stats.Iters != maxIters || ref.Converged {
		t.Fatalf("reference run iters/converged = %d/%v, want %d/false", ref.Stats.Iters, ref.Converged, maxIters)
	}

	for _, workers := range []int{1, 3} {
		// Checkpoints are identical across worker counts (the owner-computes
		// contract), so one capture serves every resume.
		for k, cp := range cps {
			opts := cfg.Options()
			opts.Workers = workers
			opts.Resume = cp
			got, err := Decompose(x, opts)
			if err != nil {
				t.Fatalf("resume at sweep %d (workers %d): %v", k+1, workers, err)
			}
			requireSameResult(t, fmt.Sprintf("resume at sweep %d, workers %d", k+1, workers), ref, got)
		}
	}

	// The terminal checkpoint short-circuits: no sweeps run, same result.
	last := cps[len(cps)-1]
	if !last.Done {
		t.Fatalf("final checkpoint not marked done: %+v", last)
	}
}

// TestResumeAfterConvergence covers the converged-terminal checkpoint: a run
// that reaches Tol marks its last checkpoint Done+Converged, and resuming it
// returns the converged result directly.
func TestResumeAfterConvergence(t *testing.T) {
	cfg := Config{Ranks: []int{3, 3, 2}, Tol: 1e-2, MaxIters: 50, Seed: 7}
	ref, cps := collectCheckpoints(t, cfg, 1)
	if !ref.Converged {
		t.Fatalf("run did not converge (iters %d); pick a looser tolerance", ref.Stats.Iters)
	}
	last := cps[len(cps)-1]
	if !last.Done || !last.Converged || last.Sweep != ref.Stats.Iters {
		t.Fatalf("terminal checkpoint %+v does not match run (iters %d)", last, ref.Stats.Iters)
	}
	rng := rand.New(rand.NewSource(99))
	x := lowRankTensor(rng, 0.3, 2, 11, 9, 6)
	opts := cfg.Options()
	opts.Resume = last
	got, err := Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "resume of converged terminal checkpoint", ref, got)
}

// TestCheckpointSinkFailStop: a sink error fails the decomposition instead
// of advancing past unpersistable state.
func TestCheckpointSinkFailStop(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	x := lowRankTensor(rng, 0.3, 2, 11, 9, 6)
	opts := checkpointConfig(4).Options()
	sinkErr := errors.New("disk on fire")
	calls := 0
	opts.CheckpointSink = func(*Checkpoint) error {
		calls++
		if calls == 2 {
			return sinkErr
		}
		return nil
	}
	_, err := Decompose(x, opts)
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Decompose with failing sink = %v, want the sink error", err)
	}
	if calls != 2 {
		t.Fatalf("sink called %d times, want 2 (fail-stop after the error)", calls)
	}
}

func TestCheckpointCorruptionRejected(t *testing.T) {
	_, cps := collectCheckpoints(t, checkpointConfig(2), 1)
	cp := cps[0]
	var buf bytes.Buffer
	if _, err := cp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, raw []byte) {
		t.Helper()
		_, err := ReadCheckpoint(bytes.NewReader(raw))
		if !errors.Is(err, dterr.ErrCorruptArtifact) {
			t.Fatalf("%s: ReadCheckpoint err = %v, want ErrCorruptArtifact", name, err)
		}
	}

	badMagic := append([]byte(nil), good...)
	copy(badMagic, "NOPE")
	check("bad magic", badMagic)

	badVersion := append([]byte(nil), good...)
	badVersion[4] = 0x63 // schema version 99
	check("mismatched schema version", badVersion)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-20] ^= 0x01 // inside the model payload
	check("flipped payload byte", flipped)

	check("truncated", good[:len(good)-7])

	// Valid bytes, wrong computation: an unknown config fingerprint must be
	// rejected at resume validation.
	reread, err := ReadCheckpoint(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	reread.Fingerprint = "0123456789abcdef"
	rng := rand.New(rand.NewSource(99))
	x := lowRankTensor(rng, 0.3, 2, 11, 9, 6)
	opts := checkpointConfig(2).Options()
	opts.Resume = reread
	if _, err := Decompose(x, opts); !errors.Is(err, dterr.ErrCorruptArtifact) {
		t.Fatalf("resume with unknown fingerprint = %v, want ErrCorruptArtifact", err)
	}

	// Shape mismatch (checkpoint from a different config/tensor).
	reread2, err := ReadCheckpoint(bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	otherCfg := Config{Ranks: []int{2, 2, 2}, Tol: 1e-300, MaxIters: 2, Seed: 7}
	reread2.Fingerprint = otherCfg.Fingerprint()
	opts = otherCfg.Options()
	opts.Resume = reread2
	if _, err := Decompose(x, opts); !errors.Is(err, dterr.ErrCorruptArtifact) {
		t.Fatalf("resume with mismatched shapes = %v, want ErrCorruptArtifact", err)
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Config{Ranks: []int{3, 3, 2}, Seed: 7}
	b := Config{Ranks: []int{3, 3, 2}, Seed: 7, Tol: 1e-4, MaxIters: 100}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("defaults-resolved configs fingerprint differently: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	c := Config{Ranks: []int{3, 3, 2}, Seed: 8}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds share a fingerprint")
	}
	if len(a.Fingerprint()) != 16 {
		t.Fatalf("fingerprint %q is not 16 hex chars", a.Fingerprint())
	}
}

// TestCheckpointStateAliasSafety guards the documented contract that the
// sink's serialized copy is decoupled from the live iteration: mutating the
// iteration's factors after the sink returns must not change what was
// serialized.
func TestCheckpointStateAliasSafety(t *testing.T) {
	var first []byte
	var firstFactors []*mat.Dense
	rng := rand.New(rand.NewSource(99))
	x := lowRankTensor(rng, 0.3, 2, 11, 9, 6)
	opts := checkpointConfig(3).Options()
	opts.CheckpointSink = func(cp *Checkpoint) error {
		if first == nil {
			var buf bytes.Buffer
			if _, err := cp.WriteTo(&buf); err != nil {
				return err
			}
			first = buf.Bytes()
			firstFactors = append([]*mat.Dense(nil), cp.Factors...)
		}
		return nil
	}
	if _, err := Decompose(x, opts); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	for n := range firstFactors {
		if !bitIdentical(cp.Factors[n].Data(), firstFactors[n].Data()) {
			t.Fatalf("serialized factor %d drifted after later sweeps", n)
		}
	}
}
