// Package dterr is the error taxonomy of the D-Tucker reproduction: the
// sentinel values and typed errors every layer of the pipeline agrees on.
//
// It is a leaf package — imported by internal/pool, internal/randsvd,
// internal/tensor, and internal/core — so one error vocabulary can flow from
// the kernels up through the exported API without import cycles. The root
// repro package re-exports the sentinels (repro.ErrNonFiniteInput and
// friends) for downstream errors.Is / errors.As checks.
//
// Taxonomy:
//
//   - ErrInvalidInput: a malformed argument an exported entry point rejected
//     up front (mismatched rank counts, non-positive ranks, nil tensors,
//     shape mismatches). The wrapping message names the exact violation.
//   - ErrNonFiniteInput: the input data contains NaN or ±Inf. Rejected at
//     every boundary that admits raw data (Decompose, Approximate,
//     Stream.Append, tensor.ReadFrom) so corruption cannot propagate into
//     silently broken factors.
//   - ErrNumericalBreakdown: a numerical kernel could not complete (a
//     non-finite randomized sketch, a zero-norm sketch column, a
//     non-converging SVD). internal/randsvd recovers from it with a
//     deterministic dense-SVD fallback; if the error escapes to a caller the
//     fallback failed too.
//   - CancelledError: the run observed Options.Context cancellation at a
//     slice or sweep boundary. It wraps the context's error, so
//     errors.Is(err, context.Canceled) and context.DeadlineExceeded both
//     keep working, and names the phase that was interrupted.
//   - PanicError: a panic captured at a containment boundary (a pool worker
//     or an exported entry point), carrying the panic value and stack. It
//     wraps ErrPanic.
package dterr

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel values; see the package comment for when each applies.
var (
	ErrInvalidInput       = errors.New("invalid input")
	ErrNonFiniteInput     = errors.New("non-finite input")
	ErrNumericalBreakdown = errors.New("numerical breakdown")
	// ErrPanic is wrapped by every PanicError, so callers can class-check
	// contained panics without naming the concrete type.
	ErrPanic = errors.New("contained panic")
	// ErrInjected is wrapped by every fault the internal/faults harness
	// injects, letting tests distinguish injected failures from organic ones.
	ErrInjected = errors.New("injected fault")
	// ErrCorruptArtifact marks a durability artifact — a journal record, a
	// snapshot, a checkpoint, a spill file — that failed its integrity or
	// schema checks on recovery (bad magic or version, checksum mismatch,
	// unknown config fingerprint, digest mismatch). Recovery rejects the
	// artifact and degrades per job: it never aborts recovery of the
	// remaining jobs over one corrupt file.
	ErrCorruptArtifact = errors.New("corrupt durability artifact")
)

// CancelledError reports that a decomposition observed context cancellation
// at a phase boundary. Phase is the metrics-style phase name
// ("approximation", "initialization", "iteration").
type CancelledError struct {
	Phase string
	Err   error // the context's error: context.Canceled or DeadlineExceeded
}

func (e *CancelledError) Error() string {
	return fmt.Sprintf("%s phase interrupted: %v", e.Phase, e.Err)
}

// Unwrap exposes the context error, so errors.Is(err, context.Canceled)
// holds for a cancelled run and context.DeadlineExceeded for a timed-out one.
func (e *CancelledError) Unwrap() error { return e.Err }

// Cancelled wraps ctx's error (which must be non-nil) with the phase it
// interrupted.
func Cancelled(phase string, err error) *CancelledError {
	return &CancelledError{Phase: phase, Err: err}
}

// PanicError is a panic converted to an error at a containment boundary: a
// pool worker goroutine, or the deferred recover of an exported entry point.
// Value is the original panic value and Stack the goroutine stack captured
// at recovery time.
type PanicError struct {
	// Op names the containment boundary ("pool worker", "core.Decompose").
	Op    string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Op, e.Value)
}

// Unwrap makes every contained panic errors.Is-able against ErrPanic, and —
// when the panic value was itself an error (as injected faults are) —
// against that error's chain too.
func (e *PanicError) Unwrap() []error {
	if err, ok := e.Value.(error); ok {
		return []error{ErrPanic, err}
	}
	return []error{ErrPanic}
}

// NewPanic captures the current stack and wraps a recovered panic value.
func NewPanic(op string, value any) *PanicError {
	return &PanicError{Op: op, Value: value, Stack: debug.Stack()}
}

// RecoverTo converts a panic on the current goroutine into a *PanicError
// stored in *errp, preserving an already-contained PanicError rather than
// re-wrapping it. It must be invoked directly as a deferred call:
//
//	defer dterr.RecoverTo(&err, "core.Decompose")
//
// A goroutine exiting via runtime.Goexit (e.g. t.Fatal) is not intercepted:
// recover returns nil for it.
func RecoverTo(errp *error, op string) {
	r := recover()
	if r == nil {
		return
	}
	if pe, ok := r.(*PanicError); ok {
		*errp = pe
		return
	}
	if err, ok := r.(error); ok {
		var pe *PanicError
		if errors.As(err, &pe) {
			*errp = err
			return
		}
	}
	*errp = NewPanic(op, r)
}
