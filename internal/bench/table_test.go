package bench

import (
	"strings"
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		350 * time.Microsecond:  "0.35ms",
		42 * time.Millisecond:   "42ms",
		1500 * time.Millisecond: "1.50s",
	}
	for in, want := range cases {
		if got := fmtDur(in); got != want {
			t.Fatalf("fmtDur(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestAlignRowsColumnsLineUp(t *testing.T) {
	rows := [][]string{
		{"a", "bb", "c"},
		{"long", "x", "yy"},
		{"m", "middle", "z"},
	}
	out := alignRows(rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Column 2 must start at the same offset in every non-rule line.
	off := strings.Index(lines[0], "bb")
	for _, l := range []string{lines[2], lines[3]} {
		if len(l) <= off {
			t.Fatalf("line too short: %q", l)
		}
	}
	if strings.Index(lines[2], "x") != off || strings.Index(lines[3], "middle") != off {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestAlignRowsUnicodeWidths(t *testing.T) {
	// The × and — glyphs are multi-byte; alignment must count runes.
	rows := [][]string{
		{"h1", "h2"},
		{"1.0×", "a"},
		{"——", "b"},
	}
	out := alignRows(rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	col2 := []int{
		strings.Index(lines[0], "h2"),
		strings.IndexRune(lines[2], 'a'),
		strings.IndexRune(lines[3], 'b'),
	}
	// Rune-based offsets must agree.
	r0 := len([]rune(lines[0][:col2[0]]))
	r2 := len([]rune(lines[2][:col2[1]]))
	r3 := len([]rune(lines[3][:col2[2]]))
	if r0 != r2 || r0 != r3 {
		t.Fatalf("unicode columns misaligned: %d %d %d\n%s", r0, r2, r3, out)
	}
}

func TestComplexityTableMentionsEveryMethod(t *testing.T) {
	table := ComplexityTable()
	for _, m := range Methods {
		if !strings.Contains(table, m) {
			t.Fatalf("complexity table missing %s:\n%s", m, table)
		}
	}
}

func TestSketchInfeasible(t *testing.T) {
	// 3-order rank 10: K2 = 4096, product 1000 → 4M floats: feasible.
	if SketchInfeasible([]int{10, 10, 10}, 0) {
		t.Fatal("3-order rank-10 config flagged infeasible")
	}
	// 4-order rank 10: K2 = 65536, product 10000 → 655M floats: infeasible.
	if !SketchInfeasible([]int{10, 10, 10, 10}, 0) {
		t.Fatal("4-order rank-10 config not flagged infeasible")
	}
	// Explicit small K2 keeps the 4-order config feasible.
	if SketchInfeasible([]int{10, 10, 10, 10}, 1024) {
		t.Fatal("explicit small K2 flagged infeasible")
	}
}

func TestFormatErrorViewSkipsMissingError(t *testing.T) {
	var sb strings.Builder
	FormatErrorView(&sb, []Result{
		{Dataset: "d", Method: "m1", RelErr: 0.5},
		{Dataset: "d", Method: "m2", RelErr: -1},
	})
	out := sb.String()
	if !strings.Contains(out, "0.5000") || !strings.Contains(out, "—") {
		t.Fatalf("error view wrong:\n%s", out)
	}
}
