package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Experiment identifiers, one per reproduced evaluation artifact (see
// DESIGN.md §4 for the mapping to the paper's evaluation axes).
const (
	ExpE1 = "e1" // running-time comparison across datasets
	ExpE2 = "e2" // space cost of stored representations
	ExpE3 = "e3" // reconstruction-error comparison
	ExpE4 = "e4" // data scalability
	ExpE5 = "e5" // rank scalability
	ExpE6 = "e6" // phase breakdown + preprocessing reuse
	ExpE7 = "e7" // noise robustness
	ExpE8 = "e8" // slice-rank sensitivity (approximation quality knob)
)

// Experiments lists all experiment ids in canonical order.
var Experiments = []string{ExpE1, ExpE2, ExpE3, ExpE4, ExpE5, ExpE6, ExpE7, ExpE8}

// E1Datasets generates the four real-dataset stand-ins at evaluation scale
// (or at reduced scale when short is set, for quick runs and CI).
func E1Datasets(short bool) []workload.Dataset {
	if short {
		return []workload.Dataset{
			workload.VideoLike(96, 72, 64, 11),
			workload.StockLike(200, 20, 128, 12),
			workload.MusicLike(128, 64, 32, 13),
			workload.ClimateLike(36, 24, 12, 24, 14),
		}
	}
	return []workload.Dataset{
		workload.VideoLike(192, 144, 256, 11),
		workload.StockLike(400, 40, 512, 12),
		workload.MusicLike(512, 256, 64, 13),
		workload.ClimateLike(72, 48, 12, 96, 14),
	}
}

func uniformRanks(order, j int) []int {
	r := make([]int, order)
	for i := range r {
		r[i] = j
	}
	return r
}

// e1Rank is the paper's rank setting (J_n = 10 for every mode).
const e1Rank = 10

func e1Spec(ds workload.Dataset, short bool) Spec {
	j := e1Rank
	if short {
		j = 5
	}
	// Clamp to the smallest mode (the 4-order climate tensor has a short
	// altitude mode in short runs).
	for _, d := range ds.X.Shape() {
		if d < j {
			j = d
		}
	}
	return Spec{
		Dataset:  ds,
		Ranks:    uniformRanks(ds.X.Order(), j),
		Seed:     7,
		MaxIters: 15,
	}
}

// SketchInfeasible reports whether the TensorSketch methods would exceed a
// reasonable memory budget on this configuration: their core system
// materializes a K2 × ∏J_k matrix, which explodes for high-order tensors at
// the paper's rank (e.g. J=10 on a 4-order tensor needs 65536×10⁴ floats
// ≈ 5 GB). Such entries are reported as o.o.m., mirroring the o.o.t./o.o.m.
// markers in published comparisons.
func SketchInfeasible(ranks []int, k2 int) bool {
	prod := 1
	for _, j := range ranks {
		prod *= j
	}
	if k2 == 0 {
		k2 = 4 * prod
	}
	m2 := nextPow2(k2)
	const budgetFloats = 64 << 20 // 512 MB of float64
	return m2*prod > budgetFloats
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// e1Skips returns the methods to skip for a spec (infeasible sketch
// configurations), with a human-readable reason per method.
func e1Skips(spec Spec) ([]string, string) {
	if SketchInfeasible(spec.Ranks, spec.SketchK2) {
		return []string{TuckerTS, TuckerTTMTS},
			fmt.Sprintf("  (%s, %s: o.o.m. — sketched core system exceeds the memory budget at ranks %v)",
				TuckerTS, TuckerTTMTS, spec.Ranks)
	}
	return nil, ""
}

// RunE1 executes the running-time / error comparison over every method and
// dataset, writing the full measurement table, the speedup view, and the
// error view (E1 and E3 share these runs; E3 is the error column).
func RunE1(w io.Writer, short bool) ([]Result, error) {
	var all []Result
	for _, ds := range E1Datasets(short) {
		fmt.Fprintf(w, "dataset %s (%s): %s\n", ds.Name, ds.Dims(), ds.Description)
		spec := e1Spec(ds, short)
		skips, note := e1Skips(spec)
		if note != "" {
			fmt.Fprintln(w, note)
		}
		rs, err := RunAll(spec, skips...)
		if err != nil {
			return all, err
		}
		all = append(all, rs...)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, FormatTable(all))
	fmt.Fprintln(w, FormatSpeedups(all))
	return all, nil
}

// FormatErrorView prints the error-centric view of existing results (the
// E3 presentation, derivable from E1's runs without re-running).
func FormatErrorView(w io.Writer, results []Result) {
	current := ""
	for _, r := range results {
		if r.Dataset != current {
			current = r.Dataset
			fmt.Fprintf(w, "dataset %s\n", current)
		}
		errStr := "—"
		if r.RelErr >= 0 {
			errStr = fmt.Sprintf("%.4f", r.RelErr)
		}
		fmt.Fprintf(w, "  %-13s rel.err %s   total %v\n", r.Method, errStr, r.Total().Round(time.Millisecond))
	}
}

// RunE2 reports the stored-representation sizes (the space-cost figure):
// every method runs with a single sweep and no error pass, since the
// stored size does not depend on convergence.
func RunE2(w io.Writer, short bool) ([]Result, error) {
	var all []Result
	for _, ds := range E1Datasets(short) {
		spec := e1Spec(ds, short)
		spec.MaxIters = 1
		spec.SkipError = true
		skips, _ := e1Skips(spec)
		rs, err := RunAll(spec, skips...)
		if err != nil {
			return all, err
		}
		input := ds.X.Len()
		fmt.Fprintf(w, "dataset %s (%s), input tensor: %.3f MF\n", ds.Name, ds.Dims(), float64(input)/1e6)
		for _, r := range rs {
			fmt.Fprintf(w, "  %-13s stored %10.3f MF   (%6.1f× smaller than input)\n",
				r.Method, float64(r.StoredFloats)/1e6, float64(input)/float64(r.StoredFloats))
		}
		all = append(all, rs...)
	}
	return all, nil
}

// RunE3 is the reconstruction-error comparison; it reuses the E1 protocol
// and prints the error-centric view.
func RunE3(w io.Writer, short bool) ([]Result, error) {
	var all []Result
	for _, ds := range E1Datasets(short) {
		spec := e1Spec(ds, short)
		skips, note := e1Skips(spec)
		rs, err := RunAll(spec, skips...)
		if err != nil {
			return all, err
		}
		if note != "" {
			fmt.Fprintln(w, note)
		}
		FormatErrorView(w, rs)
		all = append(all, rs...)
	}
	return all, nil
}

// E4Sizes returns the data-scalability cube sizes.
func E4Sizes(short bool) []int {
	if short {
		return []int{32, 48, 64}
	}
	return []int{64, 96, 128, 192, 256}
}

// RunE4 measures total time versus tensor size on growing I×I×128 cubes for
// the methods whose scaling the paper contrasts (D-Tucker vs from-scratch
// ALS vs the one-pass randomized method).
func RunE4(w io.Writer, short bool) ([]Result, error) {
	depth := 128
	if short {
		depth = 32
	}
	methods := []string{DTucker, TuckerALS, RTD}
	var all []Result
	fmt.Fprintf(w, "%-8s", "size")
	for _, m := range methods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)
	for _, i := range E4Sizes(short) {
		ds := workload.LowRankNoise([]int{i, i, depth}, e1Rank, 0.1, 21)
		ds.Name = fmt.Sprintf("cube-%d", i)
		spec := Spec{Dataset: ds, Ranks: uniformRanks(3, e1Rank), Seed: 7, MaxIters: 15, SkipError: true}
		fmt.Fprintf(w, "%-8s", fmt.Sprintf("%d³ₓ%d", i, depth))
		for _, m := range methods {
			r, err := Run(m, spec)
			if err != nil {
				return all, err
			}
			all = append(all, r)
			fmt.Fprintf(w, "%14s", fmtDur(r.Total()))
		}
		fmt.Fprintln(w)
	}
	return all, nil
}

// E5Ranks returns the rank-scalability sweep.
func E5Ranks(short bool) []int {
	if short {
		return []int{2, 4, 6}
	}
	return []int{2, 4, 6, 8, 10, 12, 14}
}

// RunE5 measures time and error versus target rank for D-Tucker and
// Tucker-ALS on a fixed video-like tensor.
func RunE5(w io.Writer, short bool) ([]Result, error) {
	var ds workload.Dataset
	if short {
		ds = workload.VideoLike(80, 60, 48, 31)
	} else {
		ds = workload.VideoLike(160, 120, 192, 31)
	}
	var all []Result
	fmt.Fprintf(w, "dataset %s (%s)\n", ds.Name, ds.Dims())
	fmt.Fprintf(w, "%-6s %22s %22s\n", "rank", DTucker, TuckerALS)
	for _, j := range E5Ranks(short) {
		spec := Spec{Dataset: ds, Ranks: uniformRanks(3, j), Seed: 7, MaxIters: 15}
		var cells string
		for _, m := range []string{DTucker, TuckerALS} {
			r, err := Run(m, spec)
			if err != nil {
				return all, err
			}
			all = append(all, r)
			cells += fmt.Sprintf(" %9s err=%.4f", fmtDur(r.Total()), r.RelErr)
		}
		fmt.Fprintf(w, "J=%-4d%s\n", j, cells)
	}
	return all, nil
}

// RunE6 reports D-Tucker's per-phase timing and the payoff of reusing the
// approximation phase across repeated decompositions (e.g. exploring
// several target ranks of one tensor).
func RunE6(w io.Writer, short bool) error {
	var ds workload.Dataset
	if short {
		ds = workload.VideoLike(96, 72, 64, 41)
	} else {
		ds = workload.VideoLike(192, 144, 256, 41)
	}
	j := e1Rank
	if short {
		j = 5
	}
	opts := core.Options{Config: core.Config{Ranks: uniformRanks(3, j), Seed: 7, MaxIters: 15}}

	dec, err := core.Decompose(ds.X, opts)
	if err != nil {
		return err
	}
	s := dec.Stats
	fmt.Fprintf(w, "dataset %s (%s), J=%d\n", ds.Name, ds.Dims(), j)
	fmt.Fprintf(w, "phase breakdown: approximation %v (%.0f%%), initialization %v (%.0f%%), iteration %v (%.0f%%, %d sweeps)\n",
		s.ApproxTime.Round(time.Millisecond), pct(s.ApproxTime, s.Total()),
		s.InitTime.Round(time.Millisecond), pct(s.InitTime, s.Total()),
		s.IterTime.Round(time.Millisecond), pct(s.IterTime, s.Total()), s.Iters)

	// Reuse: one approximation, then k solve phases (as when exploring
	// ranks or re-running with different tolerances).
	const k = 5
	t0 := time.Now()
	ap, err := core.Approximate(ds.X, opts)
	if err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		if _, err := ap.Decompose(); err != nil {
			return err
		}
	}
	reuse := time.Since(t0)
	t1 := time.Now()
	for i := 0; i < k; i++ {
		if _, err := core.Decompose(ds.X, opts); err != nil {
			return err
		}
	}
	scratch := time.Since(t1)
	fmt.Fprintf(w, "%d decompositions: reuse approximation %v vs from scratch %v (%.1f× faster)\n",
		k, reuse.Round(time.Millisecond), scratch.Round(time.Millisecond), float64(scratch)/float64(reuse))
	return nil
}

func pct(part, total time.Duration) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// E7Noises returns the noise sweep magnitudes.
func E7Noises() []float64 { return []float64{0, 0.01, 0.1, 0.5, 1.0} }

// RunE7 measures accuracy degradation under growing noise for D-Tucker,
// Tucker-ALS, and HOSVD on a controlled rank-5 tensor — the "comparable
// accuracy" claim under stress.
func RunE7(w io.Writer, short bool) ([]Result, error) {
	shape := []int{96, 80, 64}
	if short {
		shape = []int{48, 40, 32}
	}
	methods := []string{DTucker, TuckerALS, HOSVD}
	var all []Result
	fmt.Fprintf(w, "%-8s", "noise")
	for _, m := range methods {
		fmt.Fprintf(w, "%14s", m)
	}
	fmt.Fprintln(w)
	for _, noise := range E7Noises() {
		ds := workload.LowRankNoise(shape, 5, noise, 51)
		ds.Name = fmt.Sprintf("noise-%.2f", noise)
		spec := Spec{Dataset: ds, Ranks: uniformRanks(3, 5), Seed: 7, MaxIters: 15}
		fmt.Fprintf(w, "%-8.2f", noise)
		for _, m := range methods {
			r, err := Run(m, spec)
			if err != nil {
				return all, err
			}
			all = append(all, r)
			fmt.Fprintf(w, "%14.4f", r.RelErr)
		}
		fmt.Fprintln(w)
	}
	return all, nil
}

// RunE8 sweeps D-Tucker's slice rank r — the knob controlling how much of
// each slice's spectrum the approximation phase retains (the analog of the
// block-size sensitivity analysis in this line of work). Small r is fast
// but floors the achievable accuracy on data whose slices are not exactly
// low-rank; r beyond the target rank buys accuracy at linear extra cost.
func RunE8(w io.Writer, short bool) ([]Result, error) {
	var ds workload.Dataset
	j := 8
	if short {
		ds = workload.VideoLike(80, 60, 48, 61)
	} else {
		ds = workload.VideoLike(192, 144, 192, 61)
	}
	fmt.Fprintf(w, "dataset %s (%s), target ranks J=%d\n", ds.Name, ds.Dims(), j)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "sliceRank", "prep", "solve", "rel.err", "stored(MF)")
	// This sweep calls core.Decompose directly (it varies SliceRank, which
	// Spec does not carry), so it collects kernel counters itself the same
	// way Run does.
	if collectMetrics {
		prev := metrics.SetEnabled(true)
		defer metrics.SetEnabled(prev)
	}
	var all []Result
	for _, r := range []int{4, 8, 12, 16, 24, 32} {
		before := metrics.Snapshot()
		dec, err := core.Decompose(ds.X, core.Options{Config: core.Config{
			Ranks:     uniformRanks(3, j),
			SliceRank: r,
			Seed:      7,
			MaxIters:  15,
		}})
		if err != nil {
			return all, err
		}
		// Delta before RelError so the exact-error pass is not charged.
		delta := metrics.Snapshot().Sub(before)
		// L·(I1+I2+1)·r in reordered space, computed analytically.
		stored := dtuckerStoredFloatsAtRank(ds.X.Shape(), r)
		res := Result{
			Method:       DTucker,
			Dataset:      fmt.Sprintf("slicerank-%d", r),
			Prep:         dec.Stats.ApproxTime,
			Solve:        dec.Stats.InitTime + dec.Stats.IterTime,
			RelErr:       dec.RelError(ds.X),
			StoredFloats: stored,
			ModelFloats:  dec.StorageFloats(),
			Iters:        dec.Stats.Iters,
			Converged:    dec.Converged,
			ApproxTime:   dec.Stats.ApproxTime,
			InitTime:     dec.Stats.InitTime,
			IterTime:     dec.Stats.IterTime,
		}
		if collectMetrics {
			fillCounters(&res, delta)
		}
		all = append(all, res)
		fmt.Fprintf(w, "r=%-8d %12s %12s %12.4f %12.3f\n",
			r, fmtDur(res.Prep), fmtDur(res.Solve), res.RelErr, float64(stored)/1e6)
	}
	return all, nil
}

// dtuckerStoredFloatsAtRank is dtuckerStoredFloats with an explicit slice
// rank instead of the rank-derived default.
func dtuckerStoredFloatsAtRank(shape []int, r int) int {
	perm := make([]int, len(shape))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return shape[perm[a]] > shape[perm[b]] })
	i1, i2 := shape[perm[0]], shape[perm[1]]
	if m := min(i1, i2); r > m {
		r = m
	}
	l := 1
	for _, p := range perm[2:] {
		l *= shape[p]
	}
	return l * (i1*r + r + i2*r)
}

// ComplexityTable renders the analytic complexity comparison (the paper's
// complexity table) for an order-N tensor with I-sized modes, L slices,
// rank J, and M iterations.
func ComplexityTable() string {
	rows := [][]string{
		{"method", "time", "space"},
		{DTucker, "O(L·I₁·I₂·J + M·N·L·(I₁+I₂)·(J² + J^(N-1)))", "O(L·(I₁+I₂)·J)"},
		{TuckerALS, "O(M·N·J·∏Iₖ)", "O(∏Iₖ)"},
		{HOSVD, "O(N·J·∏Iₖ)", "O(∏Iₖ)"},
		{MACH, "O(M·N·p·∏Iₖ·J^(N-1))", "O(p·∏Iₖ)"},
		{RTD, "O(N·J·∏Iₖ)", "O(∏Iₖ)"},
		{TuckerTS, "O(N·∏Iₖ + M·(K₁·J^(N-1)·logK₁ + K₂·J^N))", "O(K₁·ΣIₖ + K₂)"},
		{TuckerTTMTS, "O(N·∏Iₖ + M·N·K₁·J^(N-1))", "O(K₁·ΣIₖ + K₂)"},
	}
	return alignRows(rows)
}
