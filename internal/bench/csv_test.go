package bench

import (
	"bytes"
	"encoding/csv"
	"os"
	"strings"
	"testing"
	"time"
)

func sampleResults() []Result {
	return []Result{
		{Dataset: "d1", Method: DTucker, Prep: 100 * time.Millisecond, Solve: 200 * time.Millisecond, RelErr: 0.05, StoredFloats: 1000, ModelFloats: 50, Iters: 3, Converged: true},
		{Dataset: "d1", Method: TuckerALS, Solve: 2 * time.Second, RelErr: -1, StoredFloats: 9000, ModelFloats: 50, Iters: 5},
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResults()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0][0] != "dataset" || recs[0][5] != "rel_err" {
		t.Fatalf("header %v", recs[0])
	}
	if recs[1][1] != DTucker || recs[1][4] != "0.3" {
		t.Fatalf("row 1: %v", recs[1])
	}
	if recs[2][5] != "" {
		t.Fatalf("skipped error not empty: %q", recs[2][5])
	}
	last := len(recs[0]) - 1
	if recs[0][last] != "converged" {
		t.Fatalf("last header column %q, want converged", recs[0][last])
	}
	if recs[1][last] != "true" {
		t.Fatalf("d-tucker converged column %q, want true", recs[1][last])
	}
	if recs[2][last] != "" {
		t.Fatalf("non-d-tucker converged column %q, want empty", recs[2][last])
	}
}

func TestSaveCSV(t *testing.T) {
	path := t.TempDir() + "/out.csv"
	if err := SaveCSV(path, sampleResults()); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "d-tucker") {
		t.Fatalf("file content:\n%s", data)
	}
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
