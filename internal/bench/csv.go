package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV emits results as CSV with a fixed header, the machine-readable
// companion to the text tables (times in seconds, space in float64 counts;
// rel_err is empty when the error pass was skipped). The trailing per-phase
// and kernel-counter columns are zero unless the run collected metrics
// (Spec.Metrics or SetCollectMetrics).
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"dataset", "method", "prep_s", "solve_s", "total_s", "rel_err",
		"stored_floats", "model_floats", "iters",
		"approx_s", "init_s", "iter_s",
		"slice_svds", "svd_calls", "randsvd_calls", "qr_calls", "flops",
		"converged",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("bench: writing CSV header: %w", err)
	}
	for _, r := range results {
		errStr := ""
		if r.RelErr >= 0 {
			errStr = strconv.FormatFloat(r.RelErr, 'g', 8, 64)
		}
		// Only d-tucker reports convergence; other methods leave the
		// column empty rather than claiming a false negative.
		convStr := ""
		if r.Method == DTucker {
			convStr = strconv.FormatBool(r.Converged)
		}
		rec := []string{
			r.Dataset,
			r.Method,
			strconv.FormatFloat(r.Prep.Seconds(), 'g', 8, 64),
			strconv.FormatFloat(r.Solve.Seconds(), 'g', 8, 64),
			strconv.FormatFloat(r.Total().Seconds(), 'g', 8, 64),
			errStr,
			strconv.Itoa(r.StoredFloats),
			strconv.Itoa(r.ModelFloats),
			strconv.Itoa(r.Iters),
			strconv.FormatFloat(r.ApproxTime.Seconds(), 'g', 8, 64),
			strconv.FormatFloat(r.InitTime.Seconds(), 'g', 8, 64),
			strconv.FormatFloat(r.IterTime.Seconds(), 'g', 8, 64),
			strconv.FormatInt(r.SliceSVDs, 10),
			strconv.FormatInt(r.SVDCalls, 10),
			strconv.FormatInt(r.RandSVDCalls, 10),
			strconv.FormatInt(r.QRCalls, 10),
			strconv.FormatInt(r.Flops, 10),
			convStr,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing CSV record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes results to path, creating or truncating it.
func SaveCSV(path string, results []Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: creating %s: %w", path, err)
	}
	if err := WriteCSV(f, results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench: closing %s: %w", path, err)
	}
	return nil
}
