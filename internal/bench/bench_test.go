package bench

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func smallSpec(t *testing.T) Spec {
	t.Helper()
	ds := workload.LowRankNoise([]int{20, 16, 12}, 3, 0.05, 1)
	return Spec{Dataset: ds, Ranks: []int{3, 3, 3}, Seed: 1, MaxIters: 10}
}

func TestRunEveryMethod(t *testing.T) {
	spec := smallSpec(t)
	for _, m := range Methods {
		r, err := Run(m, spec)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.Method != m || r.Dataset != spec.Dataset.Name {
			t.Fatalf("%s: result identity wrong: %+v", m, r)
		}
		if r.Total() <= 0 {
			t.Fatalf("%s: non-positive total time", m)
		}
		// MACH at 10% sampling on a tensor this small fits mostly
		// rescaled sampling noise and can exceed 1; only reject values
		// signalling NaN propagation or sign bugs.
		if r.RelErr < 0 || r.RelErr > 5 || r.RelErr != r.RelErr {
			t.Fatalf("%s: implausible relative error %g", m, r.RelErr)
		}
		if r.ModelFloats <= 0 || r.StoredFloats <= 0 {
			t.Fatalf("%s: space metrics missing: %+v", m, r)
		}
	}
}

func TestRunUnknownMethod(t *testing.T) {
	if _, err := Run("nope", smallSpec(t)); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunAllAndSkip(t *testing.T) {
	spec := smallSpec(t)
	rs, err := RunAll(spec, TuckerTS, TuckerTTMTS, MACH)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(Methods)-3 {
		t.Fatalf("RunAll returned %d results", len(rs))
	}
	if rs[0].Method != DTucker {
		t.Fatalf("first method %s, want %s", rs[0].Method, DTucker)
	}
}

func TestSkipError(t *testing.T) {
	spec := smallSpec(t)
	spec.SkipError = true
	r, err := Run(DTucker, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.RelErr != -1 {
		t.Fatalf("RelErr = %g with SkipError", r.RelErr)
	}
}

func TestDTuckerStoredSmallerThanInput(t *testing.T) {
	// The headline space claim at small scale: compressed slices beat the
	// raw tensor.
	spec := smallSpec(t)
	d, err := Run(DTucker, spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(TuckerALS, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.StoredFloats >= a.StoredFloats {
		t.Fatalf("D-Tucker stored %d ≥ raw tensor %d", d.StoredFloats, a.StoredFloats)
	}
}

func TestDTuckerStoredFloatsFormula(t *testing.T) {
	// 20×16×12 reordered is already descending; r = 3, L = 12.
	want := 12 * (20*3 + 3 + 16*3)
	if got := dtuckerStoredFloats([]int{20, 16, 12}, []int{3, 3, 3}); got != want {
		t.Fatalf("dtuckerStoredFloats = %d, want %d", got, want)
	}
	// Reordering: 12×16×20 must give the same value.
	if got := dtuckerStoredFloats([]int{12, 16, 20}, []int{3, 3, 3}); got != want {
		t.Fatalf("reordered dtuckerStoredFloats = %d, want %d", got, want)
	}
}

func TestAccuracyOrderingOnBenignInput(t *testing.T) {
	// On benign low-rank data the paper's accuracy story must hold at
	// small scale: D-Tucker is comparable to Tucker-ALS, and MACH at its
	// default 10% sampling is clearly worse.
	spec := smallSpec(t)
	d, err := Run(DTucker, spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(TuckerALS, spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(MACH, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.RelErr > a.RelErr+0.02 {
		t.Fatalf("D-Tucker err %g not comparable to ALS %g", d.RelErr, a.RelErr)
	}
	if m.RelErr < a.RelErr {
		t.Fatalf("MACH err %g unexpectedly beats ALS %g", m.RelErr, a.RelErr)
	}
}

func TestFormatTable(t *testing.T) {
	spec := smallSpec(t)
	rs, err := RunAll(spec, TuckerTS, TuckerTTMTS)
	if err != nil {
		t.Fatal(err)
	}
	table := FormatTable(rs)
	for _, want := range []string{"dataset", "d-tucker", "tucker-als", "rel.err"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != len(rs)+2 { // header + rule + rows
		t.Fatalf("table has %d lines, want %d", len(lines), len(rs)+2)
	}
}

func TestFormatSpeedups(t *testing.T) {
	spec := smallSpec(t)
	rs, err := RunAll(spec, TuckerTS, TuckerTTMTS, MACH, HOSVD, RTD)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatSpeedups(rs)
	if !strings.Contains(out, "vs d-tucker") || !strings.Contains(out, "×") {
		t.Fatalf("speedup table malformed:\n%s", out)
	}
}
