// Package bench is the experiment harness: it runs every Tucker method on a
// workload under the paper's protocol (single thread, rank 10, tol 1e-4),
// and reports wall time split into preprocessing/solve, exact relative
// reconstruction error, and two deterministic space metrics — the size of
// the stored (preprocessed) representation and of the output model, both in
// float64 units so results are machine-independent.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines/hosvd"
	"repro/internal/baselines/mach"
	"repro/internal/baselines/rtd"
	"repro/internal/baselines/tuckerals"
	"repro/internal/baselines/tuckersketch"
	"repro/internal/core"
	"repro/internal/kernelsel"
	"repro/internal/metrics"
	"repro/internal/tucker"
	"repro/internal/workload"
)

// Method names accepted by Run, in canonical presentation order
// (the proposed method first, then baselines as in the paper).
const (
	DTucker     = "d-tucker"
	TuckerALS   = "tucker-als"
	HOSVD       = "hosvd"
	MACH        = "mach"
	RTD         = "rtd"
	TuckerTS    = "tucker-ts"
	TuckerTTMTS = "tucker-ttmts"
)

// Methods lists every runnable method in presentation order.
var Methods = []string{DTucker, TuckerALS, HOSVD, MACH, RTD, TuckerTS, TuckerTTMTS}

// Spec describes one experimental configuration.
type Spec struct {
	Dataset  workload.Dataset
	Ranks    []int
	Seed     int64
	Tol      float64 // 0 → 1e-4 (paper protocol)
	MaxIters int     // 0 → method default
	// SampleRate is MACH's keep probability (0 → 0.1).
	SampleRate float64
	// SketchK1/K2 override the TensorSketch dimensions (0 → defaults).
	SketchK1, SketchK2 int
	// SkipError skips the exact reconstruction-error pass (used by pure
	// timing sweeps where the extra full-tensor pass would distort
	// nothing but costs time).
	SkipError bool
	// Workers sizes D-Tucker's per-decomposition worker pool (0 → 1, the
	// paper's single-thread protocol). Baselines ignore it: they have no
	// pool-aware entry points, which keeps method comparisons honest.
	Workers int
	// SliceKernel selects D-Tucker's approximation-phase SVD kernel
	// ("randsvd", "exact", "gram", or "auto"; "" → randsvd). Baselines
	// ignore it.
	SliceKernel string
	// Profile is the calibrated cost model consulted when SliceKernel is
	// "auto" (nil → kernelsel.Default()).
	Profile *kernelsel.Profile
	// Metrics enables per-phase and kernel-level instrumentation for this
	// run (see Result's phase/counter fields). Collection costs < 2% on
	// the quickstart workload (EXPERIMENTS.md, "Measurement methodology");
	// it is off by default so timing sweeps match the paper protocol
	// exactly. SetCollectMetrics turns it on harness-wide.
	Metrics bool
}

// collectMetrics is the harness-wide metrics switch, set by the
// cmd/experiments -metrics flag so every Spec built internally by the
// experiment definitions is instrumented without plumbing a flag through
// each of them.
var collectMetrics bool

// SetCollectMetrics enables or disables instrumentation for every
// subsequent Run, returning the previous setting.
func SetCollectMetrics(on bool) bool {
	prev := collectMetrics
	collectMetrics = on
	return prev
}

// Result is one (method, dataset) measurement.
type Result struct {
	Method  string
	Dataset string
	// Prep is preprocessing time (D-Tucker approximation, MACH sampling,
	// TensorSketch pass); zero for from-scratch methods.
	Prep time.Duration
	// Solve is everything after preprocessing (init + iterations).
	Solve time.Duration
	// RelErr is ‖X−X̂‖_F/‖X‖_F against the raw tensor (NaN if skipped).
	RelErr float64
	// StoredFloats is the size of the representation the method keeps
	// around to answer decompositions: compressed slices for D-Tucker,
	// the sample for MACH, the sketches for tucker-ts/ttmts, and the raw
	// tensor itself for from-scratch methods.
	StoredFloats int
	// ModelFloats is the size of the output (core + factors).
	ModelFloats int
	Iters       int
	// Converged reports whether the iteration reached its tolerance rather
	// than exhausting MaxIters. Only d-tucker surfaces this; for other
	// methods it stays false and the CSV column is left empty.
	Converged bool

	// Per-phase wall times, populated when metrics collection is on.
	// For D-Tucker and Tucker-ALS the split is native; methods without an
	// initialization phase report their whole solve as IterTime.
	ApproxTime time.Duration
	InitTime   time.Duration
	IterTime   time.Duration
	// Kernel-level counters for the whole run (excluding the exact-error
	// pass), from the process-global metrics counters — the same
	// instrumentation for every method, so flop and SVD-call comparisons
	// are apples-to-apples. Flops combines the matmul and QR estimates.
	SliceSVDs    int64
	SVDCalls     int64
	RandSVDCalls int64
	QRCalls      int64
	Flops        int64
}

// Total returns end-to-end wall time.
func (r Result) Total() time.Duration { return r.Prep + r.Solve }

// Run executes one method under the spec.
func Run(method string, spec Spec) (Result, error) {
	x := spec.Dataset.X
	res := Result{Method: method, Dataset: spec.Dataset.Name}
	var model tucker.Model

	collect := spec.Metrics || collectMetrics
	var before metrics.Counters
	if collect {
		prev := metrics.SetEnabled(true)
		defer metrics.SetEnabled(prev)
		before = metrics.Snapshot()
	}

	switch method {
	case DTucker:
		dec, err := core.Decompose(x, core.Options{
			Config: core.Config{
				Ranks:       spec.Ranks,
				Tol:         spec.Tol,
				MaxIters:    spec.MaxIters,
				Seed:        spec.Seed,
				SliceKernel: spec.SliceKernel,
			},
			Workers: spec.Workers,
			Profile: spec.Profile,
		})
		if err != nil {
			return res, err
		}
		model = dec.Model
		res.Prep = dec.Stats.ApproxTime
		res.Solve = dec.Stats.InitTime + dec.Stats.IterTime
		res.Iters = dec.Stats.Iters
		res.Converged = dec.Converged
		res.ApproxTime = dec.Stats.ApproxTime
		res.InitTime = dec.Stats.InitTime
		res.IterTime = dec.Stats.IterTime
		// Recompute the stored size from the model-independent formula:
		// the approximation object is not retained by Decompose, so size
		// it analytically (identical to Approximation.StorageFloats).
		res.StoredFloats = dtuckerStoredFloats(x.Shape(), spec.Ranks)

	case TuckerALS:
		r, err := tuckerals.Decompose(x, tuckerals.Options{
			Ranks:    spec.Ranks,
			Tol:      spec.Tol,
			MaxIters: spec.MaxIters,
			Seed:     spec.Seed,
		})
		if err != nil {
			return res, err
		}
		model = r.Model
		res.Solve = r.InitTime + r.IterTime
		res.Iters = r.Iters
		res.StoredFloats = x.Len()
		res.InitTime = r.InitTime
		res.IterTime = r.IterTime

	case HOSVD:
		t0 := time.Now()
		m, err := hosvd.Decompose(x, hosvd.Options{Ranks: spec.Ranks})
		if err != nil {
			return res, err
		}
		model = *m
		res.Solve = time.Since(t0)
		res.Iters = 1
		res.StoredFloats = x.Len()

	case MACH:
		r, err := mach.Decompose(x, mach.Options{
			Ranks:      spec.Ranks,
			SampleRate: spec.SampleRate,
			Tol:        spec.Tol,
			MaxIters:   spec.MaxIters,
			Seed:       spec.Seed,
		})
		if err != nil {
			return res, err
		}
		model = r.Model
		res.Prep = r.SampleTime
		res.Solve = r.IterTime
		res.Iters = r.Iters
		// values + indices at half a float each.
		res.StoredFloats = r.NNZ + (r.NNZ*x.Order()+1)/2

	case RTD:
		r, err := rtd.Decompose(x, rtd.Options{Ranks: spec.Ranks, Seed: spec.Seed})
		if err != nil {
			return res, err
		}
		model = r.Model
		res.Solve = r.Time
		res.Iters = 1
		res.StoredFloats = x.Len()

	case TuckerTS, TuckerTTMTS:
		alg := tuckersketch.TS
		if method == TuckerTTMTS {
			alg = tuckersketch.TTMTS
		}
		r, err := tuckersketch.Decompose(x, alg, tuckersketch.Options{
			Ranks:    spec.Ranks,
			K1:       spec.SketchK1,
			K2:       spec.SketchK2,
			Tol:      spec.Tol,
			MaxIters: spec.MaxIters,
			Seed:     spec.Seed,
		})
		if err != nil {
			return res, err
		}
		model = r.Model
		res.Prep = r.SketchTime
		res.Solve = r.IterTime
		res.Iters = r.Iters
		stored := r.K2
		for _, d := range x.Shape() {
			stored += r.K1 * d
		}
		res.StoredFloats = stored

	default:
		return res, fmt.Errorf("bench: unknown method %q (known: %s)", method, strings.Join(Methods, ", "))
	}

	if collect {
		// Snapshot before the exact-error pass so its large multiplies are
		// not charged to the method.
		fillCounters(&res, metrics.Snapshot().Sub(before))
	}
	// Methods without a native phase split report prep/solve as
	// approximation/iteration.
	if res.ApproxTime == 0 && res.InitTime == 0 && res.IterTime == 0 {
		res.ApproxTime = res.Prep
		res.IterTime = res.Solve
	}

	res.ModelFloats = model.StorageFloats()
	if spec.SkipError {
		res.RelErr = -1
	} else {
		res.RelErr = model.RelError(x)
	}
	return res, nil
}

// fillCounters copies a kernel-counter delta into a Result's CSV columns.
func fillCounters(res *Result, d metrics.Counters) {
	res.SliceSVDs = d.SliceSVDs
	res.SVDCalls = d.SVDCalls
	res.RandSVDCalls = d.RandSVDCalls
	res.QRCalls = d.QRCalls
	res.Flops = d.MatmulFlops + d.QRFlops
}

// dtuckerStoredFloats computes L·(I1·r + r + I2·r) after the descending
// mode reorder, mirroring core.Approximation.StorageFloats.
func dtuckerStoredFloats(shape, ranks []int) int {
	order := len(shape)
	perm := make([]int, order)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return shape[perm[a]] > shape[perm[b]] })
	i1, i2 := shape[perm[0]], shape[perm[1]]
	r := ranks[perm[0]]
	if ranks[perm[1]] > r {
		r = ranks[perm[1]]
	}
	if m := min(i1, i2); r > m {
		r = m
	}
	l := 1
	for _, p := range perm[2:] {
		l *= shape[p]
	}
	return l * (i1*r + r + i2*r)
}

// RunAll runs every method in Methods on the spec, returning results in
// presentation order. Methods listed in skip are omitted (e.g. known
// out-of-time configurations, mirroring the paper's o.o.t. entries).
func RunAll(spec Spec, skip ...string) ([]Result, error) {
	skipSet := map[string]bool{}
	for _, s := range skip {
		skipSet[s] = true
	}
	var out []Result
	for _, m := range Methods {
		if skipSet[m] {
			continue
		}
		r, err := Run(m, spec)
		if err != nil {
			return out, fmt.Errorf("bench: %s on %s: %w", m, spec.Dataset.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
