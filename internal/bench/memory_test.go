package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestMeasureAllocSeesAllocations(t *testing.T) {
	const want = 8 << 20
	var sink []byte
	got := MeasureAlloc(func() {
		sink = make([]byte, want)
	})
	if got < want {
		t.Fatalf("MeasureAlloc = %d, want ≥ %d", got, want)
	}
	_ = sink
}

func TestMeasureHeapDeltaRetained(t *testing.T) {
	var sink []byte
	delta := MeasureHeapDelta(func() {
		sink = make([]byte, 8<<20)
	})
	if delta < 7<<20 {
		t.Fatalf("retained delta %d for an 8 MiB allocation", delta)
	}
	runtimeKeepAlive(sink)
}

// runtimeKeepAlive prevents the compiler from proving sink dead before the
// measurement completes.
//
//go:noinline
func runtimeKeepAlive(b []byte) { _ = b }

func TestDTuckerAllocatesLessThanALS(t *testing.T) {
	// Allocation volume is a machine-independent proxy for working-set
	// pressure: D-Tucker's solve phases must allocate less than raw-tensor
	// ALS at the same spec.
	ds := workload.LowRankNoise([]int{48, 40, 64}, 5, 0.1, 3)
	spec := Spec{Dataset: ds, Ranks: []int{5, 5, 5}, Seed: 1, MaxIters: 8, SkipError: true}

	dt := MeasureAlloc(func() {
		if _, err := Run(DTucker, spec); err != nil {
			t.Error(err)
		}
	})
	als := MeasureAlloc(func() {
		if _, err := Run(TuckerALS, spec); err != nil {
			t.Error(err)
		}
	})
	if dt >= als {
		t.Fatalf("D-Tucker allocated %d ≥ ALS %d", dt, als)
	}
}

func TestApproximationRetainsCompressedSize(t *testing.T) {
	// The retained footprint of an Approximation should be of the same
	// order as its analytic StorageFloats (within slack for slice headers
	// and allocator rounding), far below the raw tensor.
	ds := workload.LowRankNoise([]int{64, 48, 64}, 5, 0.1, 4)
	var ap *core.Approximation
	delta := MeasureHeapDelta(func() {
		var err error
		ap, err = core.Approximate(ds.X, core.Options{Config: core.Config{Ranks: []int{5, 5, 5}, Seed: 1}})
		if err != nil {
			t.Error(err)
		}
	})
	analytic := int64(ap.StorageFloats() * 8)
	if delta > 4*analytic {
		t.Fatalf("retained %d bytes, analytic %d", delta, analytic)
	}
	raw := int64(ds.X.Len() * 8)
	if delta > raw/2 {
		t.Fatalf("approximation retains %d bytes, more than half the raw tensor %d", delta, raw)
	}
}
