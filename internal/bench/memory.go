package bench

import "runtime"

// MeasureAlloc runs fn and returns the total bytes allocated on the Go heap
// during the call (cumulative allocations, not peak residency — the
// machine-independent space metrics in Result are the primary space
// numbers; this is supporting evidence that the implementations allocate
// in proportion to them).
func MeasureAlloc(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// MeasureHeapDelta runs fn and returns the change in live heap bytes across
// the call (after a GC on both sides), approximating the retained footprint
// of whatever fn left reachable.
func MeasureHeapDelta(fn func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc)
}
