package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TrajectorySchema is the version stamp written into every trajectory file.
// Readers reject files with a different schema instead of guessing, so the
// format can evolve without silently mis-comparing old baselines.
const TrajectorySchema = 1

// PhaseSeconds is one named phase's wall time in a trajectory.
type PhaseSeconds struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Trajectory is one machine-readable benchmark measurement: the full
// configuration that produced it, per-phase wall times, kernel counters,
// latency-histogram quantiles, solution quality, and peak heap. Committed
// as BENCH_<UTC-date>.json files, these form the repo's performance record;
// CompareTrajectories turns two of them into a regression verdict.
type Trajectory struct {
	Schema     int    `json:"schema"`
	CreatedUTC string `json:"created_utc"`

	// Environment — recorded so a regression can be told apart from a
	// machine change.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Configuration.
	Dataset  string  `json:"dataset"`
	Shape    []int   `json:"shape"`
	Ranks    []int   `json:"ranks"`
	Workers  int     `json:"workers"`
	Seed     int64   `json:"seed"`
	Tol      float64 `json:"tol"`
	MaxIters int     `json:"max_iters"`

	// Measurements.
	Phases       []PhaseSeconds         `json:"phases"`
	TotalSeconds float64                `json:"total_seconds"`
	Fit          float64                `json:"fit"` // 1 − ‖X−X̂‖_F/‖X‖_F
	Converged    bool                   `json:"converged"`
	Iters        int                    `json:"iters"`
	Counters     metrics.Counters       `json:"counters"`
	Histograms   []metrics.HistSnapshot `json:"histograms,omitempty"`
	// PeakHeapBytes is the maximum live-heap size (runtime HeapAlloc)
	// sampled during the run — residency, not cumulative allocation.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// CollectTrajectory runs D-Tucker once under full instrumentation (counters,
// histograms, heap sampling) and returns the measurement. The process-global
// metrics state is reset first and restored to its previous enablement after,
// so the call composes with an otherwise uninstrumented process.
func CollectTrajectory(spec Spec) (Trajectory, error) {
	prev := metrics.SetEnabled(true)
	defer metrics.SetEnabled(prev)
	metrics.Reset()
	metrics.ResetHists()

	spec.Metrics = true
	var res Result
	var runErr error
	peak := sampleHeapPeak(func() {
		res, runErr = Run(DTucker, spec)
	})
	if runErr != nil {
		return Trajectory{}, runErr
	}

	tr := Trajectory{
		Schema:     TrajectorySchema,
		CreatedUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Dataset:    spec.Dataset.Name,
		Shape:      spec.Dataset.X.Shape(),
		Ranks:      spec.Ranks,
		Workers:    spec.Workers,
		Seed:       spec.Seed,
		Tol:        spec.Tol,
		MaxIters:   spec.MaxIters,
		Phases: []PhaseSeconds{
			{Name: "approximation", Seconds: res.ApproxTime.Seconds()},
			{Name: "initialization", Seconds: res.InitTime.Seconds()},
			{Name: "iteration", Seconds: res.IterTime.Seconds()},
		},
		TotalSeconds:  res.Total().Seconds(),
		Fit:           1 - res.RelErr,
		Converged:     res.Converged,
		Iters:         res.Iters,
		Counters:      metrics.Snapshot(),
		Histograms:    metrics.Histograms(),
		PeakHeapBytes: peak,
	}
	if spec.SkipError {
		tr.Fit = math.NaN()
	}
	return tr, nil
}

// sampleHeapPeak runs fn while polling the live-heap size on a short period,
// returning the maximum observed HeapAlloc. A sampler misses short spikes
// between polls; it is a lower bound on the true peak, which is what a
// committed trajectory needs — stable to read, cheap to collect.
func sampleHeapPeak(fn func()) uint64 {
	var (
		peak uint64
		ms   runtime.MemStats
	)
	read := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	runtime.GC()
	read()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				read()
			}
		}
	}()
	fn()
	close(done)
	wg.Wait()
	read()
	return peak
}

// DefaultTrajectorySpec is the committed-baseline configuration: a low-rank
// video-class tensor small enough to run in seconds on one core, but large
// enough that the three phases all register. cmd/benchreport emits it by
// default so every BENCH_*.json in the repo history measures the same thing.
func DefaultTrajectorySpec(workers int) Spec {
	return Spec{
		Dataset:  workload.LowRankNoise([]int{128, 96, 96}, 8, 0.10, 42),
		Ranks:    []int{8, 8, 8},
		Seed:     42,
		Tol:      1e-4,
		MaxIters: 30,
		Workers:  workers,
	}
}

// SaveTrajectory writes the trajectory as indented JSON, atomically enough
// for a build tool: a partial write fails loudly at the next Load rather
// than parsing as a truncated measurement.
func SaveTrajectory(path string, tr Trajectory) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding trajectory: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("bench: writing trajectory: %w", err)
	}
	return nil
}

// LoadTrajectory reads a trajectory file, rejecting unknown schemas.
func LoadTrajectory(path string) (Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Trajectory{}, fmt.Errorf("bench: reading trajectory: %w", err)
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return Trajectory{}, fmt.Errorf("bench: parsing trajectory %s: %w", path, err)
	}
	if tr.Schema != TrajectorySchema {
		return Trajectory{}, fmt.Errorf("bench: trajectory %s has schema %d, want %d",
			path, tr.Schema, TrajectorySchema)
	}
	return tr, nil
}

// gatedHistograms names the latency histograms whose total time
// CompareTrajectories treats as a regression gate: the compute kernels on
// the decomposition hot path. Serving-side histograms (queue wait, handler
// latency) vary with load, not with the code under test, so they are
// recorded but not gated.
var gatedHistograms = map[string]bool{
	"matmul":            true,
	"slice-svd":         true,
	"slice-svd-randsvd": true,
	"slice-svd-exact":   true,
	"slice-svd-gram":    true,
}

// Regression is one metric that got worse from old to new by more than the
// allowed percentage.
type Regression struct {
	Metric string // e.g. "total_seconds", "phase:iteration", "flops"
	Old    float64
	New    float64
	Pct    float64 // percent change, positive = worse
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.4g → %.4g (%+.1f%%)", r.Metric, r.Old, r.New, r.Pct)
}

// CompareTrajectories reports every metric in new that regressed past maxPct
// percent relative to old. Wall-clock metrics (total and per-phase seconds)
// and the deterministic work metrics (flop estimate, iteration count) may
// grow by at most maxPct; fit may drop by at most maxPct percent of its old
// distance-from-zero. Phases present in only one trajectory are skipped —
// schema evolution, not regression. A nil result means new is acceptable.
func CompareTrajectories(old, new Trajectory, maxPct float64) []Regression {
	var regs []Regression
	check := func(metric string, oldV, newV float64) {
		if oldV <= 0 || math.IsNaN(oldV) || math.IsNaN(newV) {
			return // nothing meaningful to compare against
		}
		pct := (newV - oldV) / oldV * 100
		if pct > maxPct {
			regs = append(regs, Regression{Metric: metric, Old: oldV, New: newV, Pct: pct})
		}
	}

	check("total_seconds", old.TotalSeconds, new.TotalSeconds)
	newPhases := map[string]float64{}
	for _, p := range new.Phases {
		newPhases[p.Name] = p.Seconds
	}
	for _, p := range old.Phases {
		if s, ok := newPhases[p.Name]; ok {
			check("phase:"+p.Name, p.Seconds, s)
		}
	}
	check("flops", float64(old.Counters.MatmulFlops+old.Counters.QRFlops),
		float64(new.Counters.MatmulFlops+new.Counters.QRFlops))
	check("iters", float64(old.Iters), float64(new.Iters))
	// Hot-kernel histograms: total time spent in the matmul and slice-SVD
	// kernels may not regress past maxPct either. Only the allowlisted
	// hot-path histograms are gated — queue-wait and handler histograms are
	// load-dependent noise — and, as with phases, a histogram present in
	// only one trajectory is schema evolution, not regression.
	newHists := map[string]float64{}
	for _, h := range new.Histograms {
		newHists[h.Name] = h.Sum.Seconds()
	}
	for _, h := range old.Histograms {
		if !gatedHistograms[h.Name] {
			continue
		}
		if s, ok := newHists[h.Name]; ok {
			check("hist:"+h.Name, h.Sum.Seconds(), s)
		}
	}
	// Fit regression: a drop, measured in percent of the old fit.
	if !math.IsNaN(old.Fit) && !math.IsNaN(new.Fit) && old.Fit > 0 {
		pct := (old.Fit - new.Fit) / old.Fit * 100
		if pct > maxPct {
			regs = append(regs, Regression{Metric: "fit", Old: old.Fit, New: new.Fit, Pct: pct})
		}
	}
	return regs
}
