package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func tinySpec() Spec {
	return Spec{
		Dataset:  workload.LowRankNoise([]int{16, 14, 6}, 3, 0.05, 11),
		Ranks:    []int{3, 3, 3},
		Seed:     11,
		MaxIters: 5,
	}
}

func TestCollectTrajectory(t *testing.T) {
	tr, err := CollectTrajectory(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Schema != TrajectorySchema {
		t.Fatalf("schema = %d, want %d", tr.Schema, TrajectorySchema)
	}
	if tr.CreatedUTC == "" || !strings.HasSuffix(tr.CreatedUTC, "Z") {
		t.Fatalf("CreatedUTC = %q, want RFC3339 UTC", tr.CreatedUTC)
	}
	if len(tr.Shape) != 3 || tr.Shape[0] != 16 {
		t.Fatalf("shape = %v", tr.Shape)
	}
	if len(tr.Phases) != 3 {
		t.Fatalf("phases = %v", tr.Phases)
	}
	if tr.TotalSeconds <= 0 {
		t.Fatalf("TotalSeconds = %v", tr.TotalSeconds)
	}
	if tr.Fit <= 0.5 || tr.Fit > 1 {
		t.Fatalf("fit = %v on a low-rank tensor", tr.Fit)
	}
	if tr.Counters.MatmulFlops == 0 || tr.Counters.SliceSVDs == 0 {
		t.Fatalf("kernel counters empty: %+v", tr.Counters)
	}
	if len(tr.Histograms) == 0 {
		t.Fatal("no histogram quantiles collected")
	}
	if tr.PeakHeapBytes == 0 {
		t.Fatal("peak heap not sampled")
	}
}

func TestTrajectorySaveLoadRoundTrip(t *testing.T) {
	tr, err := CollectTrajectory(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := SaveTrajectory(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CreatedUTC != tr.CreatedUTC || got.TotalSeconds != tr.TotalSeconds ||
		got.Counters != tr.Counters || len(got.Histograms) != len(tr.Histograms) {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", tr, got)
	}
}

func TestLoadTrajectoryRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(path); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"schema": 1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrajectory(path); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestTrajectoryJSONFieldNames(t *testing.T) {
	// The on-disk field names are the schema; renaming one is a breaking
	// change that must bump TrajectorySchema.
	data, err := json.Marshal(Trajectory{Schema: TrajectorySchema})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema"`, `"created_utc"`, `"go_version"`, `"shape"`, `"ranks"`,
		`"phases"`, `"total_seconds"`, `"fit"`, `"counters"`, `"peak_heap_bytes"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("serialized trajectory missing %s:\n%s", key, data)
		}
	}
}

func TestCompareTrajectories(t *testing.T) {
	base := Trajectory{
		Schema:       TrajectorySchema,
		TotalSeconds: 10,
		Phases: []PhaseSeconds{
			{Name: "approximation", Seconds: 2},
			{Name: "iteration", Seconds: 8},
		},
		Fit:   0.95,
		Iters: 10,
	}
	base.Counters.MatmulFlops = 1000

	if regs := CompareTrajectories(base, base, 5); regs != nil {
		t.Fatalf("identical trajectories regressed: %v", regs)
	}

	worse := base
	worse.TotalSeconds = 12 // +20%
	worse.Phases = []PhaseSeconds{
		{Name: "approximation", Seconds: 2},
		{Name: "iteration", Seconds: 10.4}, // +30%
	}
	worse.Fit = 0.80 // −15.8%
	regs := CompareTrajectories(base, worse, 5)
	got := map[string]bool{}
	for _, r := range regs {
		got[r.Metric] = true
		if r.Pct <= 5 {
			t.Errorf("reported regression under threshold: %v", r)
		}
	}
	for _, want := range []string{"total_seconds", "phase:iteration", "fit"} {
		if !got[want] {
			t.Errorf("regression in %s not reported; got %v", want, regs)
		}
	}
	if got["phase:approximation"] {
		t.Error("unchanged phase reported as regressed")
	}

	// Within threshold → clean.
	mild := base
	mild.TotalSeconds = 10.3
	if regs := CompareTrajectories(base, mild, 5); regs != nil {
		t.Fatalf("+3%% flagged at 5%% threshold: %v", regs)
	}

	// A phase that disappeared (schema evolution) is not a regression.
	renamed := worse
	renamed.TotalSeconds = base.TotalSeconds
	renamed.Fit = base.Fit
	renamed.Phases = []PhaseSeconds{{Name: "solve", Seconds: 100}}
	if regs := CompareTrajectories(base, renamed, 5); regs != nil {
		t.Fatalf("missing phases compared anyway: %v", regs)
	}
}
