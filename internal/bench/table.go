package bench

import (
	"fmt"
	"strings"
	"time"
)

// FormatTable renders results as an aligned text table with one row per
// (dataset, method) pair — the format every experiment prints.
func FormatTable(results []Result) string {
	header := []string{"dataset", "method", "prep", "solve", "total", "rel.err", "stored(MF)", "model(kF)", "iters"}
	rows := [][]string{header}
	for _, r := range results {
		errStr := "—"
		if r.RelErr >= 0 {
			errStr = fmt.Sprintf("%.4f", r.RelErr)
		}
		rows = append(rows, []string{
			r.Dataset,
			r.Method,
			fmtDur(r.Prep),
			fmtDur(r.Solve),
			fmtDur(r.Total()),
			errStr,
			fmt.Sprintf("%.3f", float64(r.StoredFloats)/1e6),
			fmt.Sprintf("%.1f", float64(r.ModelFloats)/1e3),
			fmt.Sprint(r.Iters),
		})
	}
	return alignRows(rows)
}

// FormatSpeedups renders, per dataset, each method's total time as a
// multiple of the first method's (the proposed method) — the "K× faster"
// presentation of the paper's headline claims.
func FormatSpeedups(results []Result) string {
	byDataset := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, seen := byDataset[r.Dataset]; !seen {
			order = append(order, r.Dataset)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	rows := [][]string{{"dataset", "method", "total", "vs " + Methods[0]}}
	for _, ds := range order {
		rs := byDataset[ds]
		var base time.Duration
		for _, r := range rs {
			if r.Method == Methods[0] {
				base = r.Total()
			}
		}
		for _, r := range rs {
			ratio := "—"
			if base > 0 {
				ratio = fmt.Sprintf("%.1f×", float64(r.Total())/float64(base))
			}
			rows = append(rows, []string{ds, r.Method, fmtDur(r.Total()), ratio})
		}
	}
	return alignRows(rows)
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func alignRows(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if w := displayWidth(cell); w > widths[c] {
				widths[c] = w
			}
		}
	}
	var sb strings.Builder
	for i, row := range rows {
		for c, cell := range row {
			sb.WriteString(cell)
			if c < len(row)-1 {
				sb.WriteString(strings.Repeat(" ", widths[c]-displayWidth(cell)+2))
			}
		}
		sb.WriteByte('\n')
		if i == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			sb.WriteString(strings.Repeat("-", total-2))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// displayWidth counts runes, not bytes, so the × and — glyphs align.
func displayWidth(s string) int { return len([]rune(s)) }
