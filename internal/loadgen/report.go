package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
)

// ReportSchema is the version stamp written into every load report; readers
// reject other schemas instead of guessing. ReportKind distinguishes load
// reports from benchmark trajectories (which predate the kind field and
// carry none) so cmd/benchreport can sniff which comparator to use.
const (
	ReportSchema = 1
	ReportKind   = "loadgen"
)

// LatencySummary summarizes one latency population with exact quantiles:
// the underlying samples are sorted and indexed (nearest-rank), not
// bucketed, so two runs with identical samples report identical numbers.
type LatencySummary struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// summarize computes the exact nearest-rank quantiles of samples.
// It sorts its argument in place.
func summarize(samples []time.Duration) LatencySummary {
	s := LatencySummary{Count: int64(len(samples))}
	if len(samples) == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(samples)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(samples[i]) / float64(time.Millisecond)
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	s.P50Ms = rank(0.50)
	s.P95Ms = rank(0.95)
	s.P99Ms = rank(0.99)
	s.MaxMs = float64(samples[len(samples)-1]) / float64(time.Millisecond)
	s.MeanMs = float64(sum) / float64(len(samples)) / float64(time.Millisecond)
	return s
}

// maxExemplars bounds OpStats.Slowest.
const maxExemplars = 3

// Exemplar ties one recorded latency back to its request ID, so an outlier
// quantile in a report can be chased into the daemon's structured log and
// flight recorder (both index by X-Request-ID).
type Exemplar struct {
	RequestID string  `json:"request_id"`
	LatencyMs float64 `json:"latency_ms"`
}

// OpStats is the outcome tally of one slice of the workload (an operation
// kind, a tenant, or the whole run). Latency covers completed operations
// only — a shed request fails fast and would flatter the quantiles.
type OpStats struct {
	// Offered counts arrivals the open-loop generator fired for this slice,
	// whether or not the server admitted them.
	Offered int64 `json:"offered"`
	// Completed counts operations that finished with a result: the goodput
	// numerator.
	Completed int64 `json:"completed"`
	// Shed counts 429 rejections (queue full or tenant quota).
	Shed int64 `json:"shed"`
	// Failed counts server-side errors other than shedding.
	Failed int64 `json:"failed"`
	// DroppedClient counts arrivals the harness itself refused because
	// MaxInFlight was reached — client-side saturation, reported so a
	// capped run cannot read as full coverage.
	DroppedClient int64 `json:"dropped_client,omitempty"`
	// Coalesced and CacheHits count submissions answered by an in-flight
	// duplicate or the result cache.
	Coalesced int64 `json:"coalesced,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
	// Latency is end-to-end: scheduled arrival to result in hand.
	Latency LatencySummary `json:"latency"`
	// Slowest is the slowest completed operations (at most maxExemplars),
	// each carrying the request ID the harness sent, slowest first.
	// Additive relative to schema 1 readers; Compare ignores it.
	Slowest []Exemplar `json:"slowest,omitempty"`
}

// Report is one load-harness run: the configuration that produced it, the
// aggregate outcome, and per-operation and per-tenant breakdowns. Committed
// as LOAD_<UTC-date>.json files these form the serving-layer performance
// record, the counterpart of the library's BENCH_*.json trajectories;
// Compare turns two of them into a regression verdict and cmd/benchreport
// -compare dispatches here when it sniffs the "loadgen" kind.
type Report struct {
	Schema     int    `json:"schema"`
	Kind       string `json:"kind"`
	CreatedUTC string `json:"created_utc"`

	// Environment.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	// Configuration echo.
	DurationSeconds float64            `json:"duration_seconds"` // configured window
	TargetQPS       float64            `json:"target_qps"`
	Arrival         string             `json:"arrival"`
	Seed            int64              `json:"seed"`
	Mix             map[string]float64 `json:"mix"`
	Tenants         []TenantSpec       `json:"tenants"`
	Sizes           []SizeClass        `json:"sizes"`
	Variants        int                `json:"variants"`
	MaxInFlight     int                `json:"max_in_flight"`
	// RangeChunks/RangeWindows echo the range-workload shape (additive
	// relative to schema 1 readers; zero means the legacy defaults).
	RangeChunks  int `json:"range_chunks,omitempty"`
	RangeWindows int `json:"range_windows,omitempty"`

	// Measurements.
	ElapsedSeconds float64 `json:"elapsed_seconds"` // actual wall time, arrival 0 → last completion
	// GoodputQPS is completed operations per elapsed second; ShedRate is
	// the shed fraction of offered load (0..1).
	GoodputQPS float64            `json:"goodput_qps"`
	ShedRate   float64            `json:"shed_rate"`
	Totals     OpStats            `json:"totals"`
	Ops        map[string]OpStats `json:"ops"`
	ByTenant   map[string]OpStats `json:"by_tenant"`
}

// Save writes the report as indented JSON.
func Save(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("loadgen: writing report: %w", err)
	}
	return nil
}

// Load reads a report file, rejecting unknown schemas and kinds.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("loadgen: parsing report %s: %w", path, err)
	}
	if r.Kind != ReportKind {
		return Report{}, fmt.Errorf("loadgen: %s has kind %q, want %q", path, r.Kind, ReportKind)
	}
	if r.Schema != ReportSchema {
		return Report{}, fmt.Errorf("loadgen: %s has schema %d, want %d", path, r.Schema, ReportSchema)
	}
	return r, nil
}

// Compare reports every serving metric in new that regressed past maxPct
// percent relative to old: goodput may drop, overall latency quantiles may
// grow, by at most maxPct; the shed rate may grow by at most maxPct
// percentage points of offered load (an absolute bound — a baseline that
// shed nothing has no relative scale). Latency comparisons require both
// runs to have completed work. A nil result means new is acceptable.
func Compare(old, new Report, maxPct float64) []bench.Regression {
	var regs []bench.Regression
	grew := func(metric string, oldV, newV float64) {
		if oldV <= 0 || math.IsNaN(oldV) || math.IsNaN(newV) {
			return
		}
		pct := (newV - oldV) / oldV * 100
		if pct > maxPct {
			regs = append(regs, bench.Regression{Metric: metric, Old: oldV, New: newV, Pct: pct})
		}
	}

	// Goodput: lower is worse.
	if old.GoodputQPS > 0 {
		pct := (old.GoodputQPS - new.GoodputQPS) / old.GoodputQPS * 100
		if pct > maxPct {
			regs = append(regs, bench.Regression{
				Metric: "goodput_qps", Old: old.GoodputQPS, New: new.GoodputQPS, Pct: pct,
			})
		}
	}
	// Shed rate: absolute growth in percentage points.
	if pts := (new.ShedRate - old.ShedRate) * 100; pts > maxPct {
		regs = append(regs, bench.Regression{
			Metric: "shed_rate", Old: old.ShedRate, New: new.ShedRate, Pct: pts,
		})
	}
	grew("latency_p50_ms", old.Totals.Latency.P50Ms, new.Totals.Latency.P50Ms)
	grew("latency_p95_ms", old.Totals.Latency.P95Ms, new.Totals.Latency.P95Ms)
	grew("latency_p99_ms", old.Totals.Latency.P99Ms, new.Totals.Latency.P99Ms)
	return regs
}
