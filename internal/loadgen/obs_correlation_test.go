package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// syncBuffer is a concurrency-safe event-log sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunCorrelatesWithEventLog is the harness↔daemon correlation smoke:
// every arrival the generator puts on the wire must yield exactly one
// admission event in the daemon's structured log, under the request ID the
// harness stamped — and the report's slowest exemplars must resolve in
// that log.
func TestRunCorrelatesWithEventLog(t *testing.T) {
	var buf syncBuffer
	lg, err := obs.New(&buf, obs.FormatJSON, slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Workers: 2, Runners: 2, QueueDepth: 64, Obs: lg})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := Run(ctx, Spec{
		BaseURL:  hs.URL,
		Duration: 400 * time.Millisecond,
		QPS:      40,
		Seed:     5,
		Variants: 2,
		Mix:      map[string]float64{OpDecompose: 1},
		Sizes: []SizeClass{
			{Name: "tiny", Shape: []int{8, 7, 6}, Ranks: []int{2, 2, 2}, Weight: 1},
		},
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	offered := rep.Totals.Offered - rep.Totals.DroppedClient
	if offered == 0 {
		t.Fatal("no arrivals reached the wire")
	}

	// One admission event per wire arrival, each under a distinct ID.
	admissionIDs := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Event     string `json:"event"`
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if ev.Event == "admission" {
			admissionIDs[ev.RequestID]++
		}
	}
	if int64(len(admissionIDs)) != offered {
		t.Fatalf("%d distinct admission request IDs for %d wire arrivals", len(admissionIDs), offered)
	}
	for rid, n := range admissionIDs {
		if n != 1 {
			t.Fatalf("request %s has %d admission events, want 1", rid, n)
		}
	}

	// The report's slowest exemplars must point into the same log.
	if len(rep.Totals.Slowest) == 0 {
		t.Fatal("report has no slowest exemplars despite completions")
	}
	for _, ex := range rep.Totals.Slowest {
		if _, ok := admissionIDs[ex.RequestID]; !ok {
			t.Fatalf("slowest exemplar %s is absent from the event log", ex.RequestID)
		}
	}
}
