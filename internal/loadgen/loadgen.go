// Package loadgen is the open-loop load harness for dtuckerd: it offers a
// configurable mixed workload (one-shot decompositions, stream range
// queries, stream appends) across weighted tenants at a target arrival
// rate, and reports goodput, shed rate, and exact end-to-end latency
// quantiles as a schema-versioned JSON Report that cmd/benchreport can
// diff against a committed baseline.
//
// The generator is open-loop: arrivals fire on a precomputed schedule
// whether or not earlier requests have completed, so a saturated server
// shows up as queue-wait latency and shed 429s instead of silently slowing
// the generator down (the closed-loop failure mode that flatters an
// overloaded system). The entire schedule — arrival times, operation mix,
// tenant, payload choice — is drawn up front from one seeded PRNG, so two
// runs with the same Spec offer the identical request sequence.
//
// Payloads are drawn from a small pool of pre-generated tensors
// (Sizes × Variants), so repeated arrivals naturally submit duplicates and
// exercise the server's result cache and singleflight coalescing the way a
// real mixed-tenant population would. See docs/OPERATIONS.md for the
// operator walkthrough and cmd/loadgen for the CLI.
package loadgen

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Operation names accepted in Spec.Mix.
const (
	OpDecompose = "decompose" // POST /v1/decompose, poll, fetch result
	OpRange     = "range"     // POST /v1/streams/{id}/range, poll, fetch result
	OpAppend    = "append"    // POST /v1/streams/{id}/append (synchronous)
)

// TenantSpec is one tenant of the offered load. Weight is the tenant's
// share of arrivals (offered load, not the server-side WFQ weight — skewing
// the two against each other is how fairness is exercised). Priority, when
// set, is sent as the X-Priority header on the tenant's submissions.
type TenantSpec struct {
	Name     string  `json:"name"`
	Weight   float64 `json:"weight"`
	Priority string  `json:"priority,omitempty"`
}

// SizeClass is one tensor size in the payload pool.
type SizeClass struct {
	Name   string  `json:"name"`
	Shape  []int   `json:"shape"`
	Ranks  []int   `json:"ranks"`
	Weight float64 `json:"weight"`
}

// Spec configures one load run. The zero value is not runnable; Run applies
// the documented defaults to unset fields.
type Spec struct {
	// BaseURL is the daemon under test, e.g. "http://127.0.0.1:7171".
	BaseURL string
	// Duration is the arrival window; the run waits for stragglers after
	// the last arrival. Default 10s.
	Duration time.Duration
	// QPS is the target offered arrival rate. Default 8.
	QPS float64
	// Arrival is the inter-arrival distribution: "poisson" (exponential
	// gaps, the default — bursty like independent clients) or "uniform"
	// (fixed gaps).
	Arrival string
	// Seed makes the offered sequence reproducible. Default 1.
	Seed int64
	// Mix weights the operations (OpDecompose, OpRange, OpAppend) in the
	// offered load. Default 60% decompose, 30% range, 10% append.
	Mix map[string]float64
	// Tenants is the offered tenant population. Default: one tenant
	// "default" with weight 1.
	Tenants []TenantSpec
	// Sizes is the payload pool's size classes. Default: a small and a
	// medium class, 3:1.
	Sizes []SizeClass
	// Variants is the number of distinct tensors generated per size class;
	// smaller pools mean more duplicate submissions (more cache hits and
	// coalescing). Default 3.
	Variants int
	// RangeChunks is how many chunks the frozen range-query stream holds;
	// each chunk is the first size class's temporal rank thick, so the
	// stream spans RangeChunks·r_t steps. Longer streams give the server's
	// range index room to stitch (spans below its threshold fall back to
	// direct solves). Default 3.
	RangeChunks int
	// RangeWindows, when positive, draws that many distinct overlapping
	// range windows from the seeded PRNG instead of the legacy fixed set of
	// four. More distinct windows mean more exact-cache misses, which is
	// what separates a range index (misses stitch cached node summaries)
	// from the exact-range cache alone (misses re-solve from scratch).
	// Default 0: the legacy four windows, preserving old schedules.
	RangeWindows int
	// MaxInFlight caps concurrently outstanding operations; arrivals past
	// the cap are counted as DroppedClient, never silently skipped.
	// Default 256.
	MaxInFlight int
	// PollInterval is the job-status polling cadence. Default 5ms.
	PollInterval time.Duration
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Logf, when set, receives progress lines. Default: silent.
	Logf func(format string, args ...any)
}

func (s Spec) withDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = 10 * time.Second
	}
	if s.QPS <= 0 {
		s.QPS = 8
	}
	if s.Arrival == "" {
		s.Arrival = "poisson"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if len(s.Mix) == 0 {
		s.Mix = map[string]float64{OpDecompose: 0.6, OpRange: 0.3, OpAppend: 0.1}
	}
	if len(s.Tenants) == 0 {
		s.Tenants = []TenantSpec{{Name: "default", Weight: 1}}
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []SizeClass{
			{Name: "small", Shape: []int{16, 14, 12}, Ranks: []int{4, 4, 4}, Weight: 3},
			{Name: "medium", Shape: []int{32, 28, 24}, Ranks: []int{6, 6, 6}, Weight: 1},
		}
	}
	if s.Variants <= 0 {
		s.Variants = 3
	}
	if s.RangeChunks <= 0 {
		s.RangeChunks = streamChunks
	}
	if s.MaxInFlight <= 0 {
		s.MaxInFlight = 256
	}
	if s.PollInterval <= 0 {
		s.PollInterval = 5 * time.Millisecond
	}
	if s.HTTPClient == nil {
		s.HTTPClient = http.DefaultClient
	}
	if s.Logf == nil {
		s.Logf = func(string, ...any) {}
	}
	return s
}

func (s Spec) validate() error {
	if s.BaseURL == "" {
		return fmt.Errorf("loadgen: BaseURL is required")
	}
	if s.Arrival != "poisson" && s.Arrival != "uniform" {
		return fmt.Errorf("loadgen: unknown arrival distribution %q (want poisson or uniform)", s.Arrival)
	}
	for op, w := range s.Mix {
		if op != OpDecompose && op != OpRange && op != OpAppend {
			return fmt.Errorf("loadgen: unknown operation %q in mix", op)
		}
		if w < 0 {
			return fmt.Errorf("loadgen: negative mix weight for %q", op)
		}
	}
	for _, sc := range s.Sizes {
		if len(sc.Shape) != len(sc.Ranks) || len(sc.Shape) < 3 {
			return fmt.Errorf("loadgen: size class %q needs matching shape and ranks of order ≥ 3", sc.Name)
		}
	}
	return nil
}

// arrival is one precomputed offered request.
type arrival struct {
	at      time.Duration
	op      string
	tenant  int
	size    int
	variant int
	t0, t1  int // range window (OpRange only)
}

// streamChunks is the default number of chunks appended to the range-query
// stream during preparation (see Spec.RangeChunks); each chunk is
// ranks[last] steps thick, so the stream holds RangeChunks·r_t time steps.
const streamChunks = 3

// weightedPick returns an index drawn proportionally to weights (all-zero
// weights degenerate to index 0, deterministically).
func weightedPick(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// buildSchedule draws the full offered sequence up front: every arrival's
// time, operation, tenant, and payload. Range windows are drawn from a
// fixed set of four overlapping windows so repeated queries exercise the
// range-result cache.
func buildSchedule(spec Spec, rng *rand.Rand) []arrival {
	n := int(math.Round(spec.QPS * spec.Duration.Seconds()))
	if n < 1 {
		n = 1
	}
	gap := float64(spec.Duration) / float64(n)

	opNames := make([]string, 0, len(spec.Mix))
	for op := range spec.Mix {
		opNames = append(opNames, op)
	}
	sort.Strings(opNames) // map order must not perturb the drawn sequence
	opWeights := make([]float64, len(opNames))
	for i, op := range opNames {
		opWeights[i] = spec.Mix[op]
	}
	tenantWeights := make([]float64, len(spec.Tenants))
	for i, t := range spec.Tenants {
		tenantWeights[i] = t.Weight
	}
	sizeWeights := make([]float64, len(spec.Sizes))
	for i, sc := range spec.Sizes {
		sizeWeights[i] = sc.Weight
	}

	rt := spec.Sizes[0].Ranks[len(spec.Sizes[0].Ranks)-1]
	steps := spec.RangeChunks * rt
	var windows [][2]int
	if spec.RangeWindows > 0 {
		// Distinct overlapping windows spread over the stream, drawn before
		// the arrival loop so the arrival sequence itself is unchanged by
		// the window count. Spans are at least half the stream so windows
		// overlap heavily and share index nodes.
		for i := 0; i < spec.RangeWindows; i++ {
			t0 := rng.Intn(steps / 2)
			t1 := t0 + steps/2 + rng.Intn(steps-t0-steps/2) + 1
			windows = append(windows, [2]int{t0, t1})
		}
	} else {
		windows = [][2]int{
			{0, steps},
			{0, steps - rt/2},
			{rt / 2, steps},
			{rt, steps},
		}
	}

	sched := make([]arrival, n)
	var t float64
	for i := range sched {
		switch spec.Arrival {
		case "uniform":
			t += gap
		default: // poisson: exponential inter-arrival times with mean gap
			t += rng.ExpFloat64() * gap
		}
		a := arrival{
			at:      time.Duration(t),
			op:      opNames[weightedPick(rng, opWeights)],
			tenant:  weightedPick(rng, tenantWeights),
			size:    weightedPick(rng, sizeWeights),
			variant: rng.Intn(spec.Variants),
		}
		if a.op == OpRange {
			w := windows[rng.Intn(len(windows))]
			a.t0, a.t1 = w[0], w[1]
		}
		sched[i] = a
	}
	return sched
}

// result is one finished operation, as fed to the aggregator.
type result struct {
	op      string
	tenant  string
	outcome string // "ok", "shed", "failed", "dropped"
	lat     time.Duration
	coal    bool
	hit     bool
	// rid is the request ID the harness stamped on the operation; the
	// report's slowest exemplars carry it so an outlier quantile can be
	// chased into the daemon's structured log by ID.
	rid string
}

// Run executes the load against spec.BaseURL and aggregates the report.
// ctx aborts the run early; operations already in flight are abandoned
// (counted as failed) and the report covers what was offered up to then.
func Run(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	sched := buildSchedule(spec, rng)

	e := &engine{spec: spec}
	if err := e.prepare(ctx, rng); err != nil {
		return nil, err
	}
	spec.Logf("loadgen: offering %d arrivals over %v (%s, %.3g qps) to %s",
		len(sched), spec.Duration, spec.Arrival, spec.QPS, spec.BaseURL)

	results := make(chan result, len(sched))
	sem := make(chan struct{}, spec.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for _, a := range sched {
		if d := a.at - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			// Count the rest of the schedule as never offered.
			break
		}
		a := a
		select {
		case sem <- struct{}{}:
		default:
			results <- result{op: a.op, tenant: spec.Tenants[a.tenant].Name, outcome: "dropped"}
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			results <- e.execute(ctx, a, start)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return e.aggregate(results, elapsed), nil
}

// engine holds the prepared payload pool and per-run state.
type engine struct {
	spec Spec

	// tensorB64[size][variant] is the pre-serialized decompose payload;
	// configs[size] its request config.
	tensorB64 [][]string
	configs   []core.Config

	queryStream  string // frozen stream for range queries
	ingestStream string // growing stream for appends
	chunkB64     []string
}

// prepare generates the payload pool and, when the mix needs them, the two
// stream sessions: a frozen one that range queries hit (so its digest — and
// therefore its range-cache keys — stay stable) and a growing one that
// appends extend.
func (e *engine) prepare(ctx context.Context, rng *rand.Rand) error {
	spec := e.spec
	e.tensorB64 = make([][]string, len(spec.Sizes))
	e.configs = make([]core.Config, len(spec.Sizes))
	for i, sc := range spec.Sizes {
		e.configs[i] = core.Config{Ranks: append([]int(nil), sc.Ranks...)}
		e.tensorB64[i] = make([]string, spec.Variants)
		for v := 0; v < spec.Variants; v++ {
			seed := spec.Seed + int64(i*1000+v)
			ds := workload.LowRankNoise(append([]int(nil), sc.Shape...), sc.Ranks[0], 0.1, seed)
			b64, err := encodeTensor(ds.X)
			if err != nil {
				return err
			}
			e.tensorB64[i][v] = b64
		}
	}

	needRange := spec.Mix[OpRange] > 0
	needAppend := spec.Mix[OpAppend] > 0
	if !needRange && !needAppend {
		return nil
	}

	// Stream chunks: the first size class's shape with the temporal mode
	// cut to the temporal rank.
	sc := spec.Sizes[0]
	chunkShape := append([]int(nil), sc.Shape...)
	rt := sc.Ranks[len(sc.Ranks)-1]
	chunkShape[len(chunkShape)-1] = rt
	for v := 0; v < spec.Variants; v++ {
		ds := workload.LowRankNoise(chunkShape, sc.Ranks[0], 0.1, spec.Seed+int64(9000+v))
		b64, err := encodeTensor(ds.X)
		if err != nil {
			return err
		}
		e.chunkB64 = append(e.chunkB64, b64)
	}

	mkStream := func(chunks int) (string, error) {
		var sess server.StreamResponse
		status, werr, err := e.postJSON(ctx, "/v1/streams", "", TenantSpec{},
			server.StreamRequest{Config: e.configs[0]}, &sess)
		if err != nil {
			return "", err
		}
		if status != http.StatusCreated {
			return "", fmt.Errorf("loadgen: stream create: HTTP %d (%v)", status, werr)
		}
		for i := 0; i < chunks; i++ {
			status, werr, err := e.postJSON(ctx, "/v1/streams/"+sess.StreamID+"/append", "", TenantSpec{},
				server.AppendRequest{TensorB64: e.chunkB64[i%len(e.chunkB64)]}, nil)
			if err != nil {
				return "", err
			}
			if status != http.StatusOK {
				return "", fmt.Errorf("loadgen: prep append: HTTP %d (%v)", status, werr)
			}
		}
		return sess.StreamID, nil
	}
	if needRange {
		id, err := mkStream(spec.RangeChunks)
		if err != nil {
			return err
		}
		e.queryStream = id
	}
	if needAppend {
		id, err := mkStream(1)
		if err != nil {
			return err
		}
		e.ingestStream = id
	}
	return nil
}

func encodeTensor(x *tensor.Dense) (string, error) {
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		return "", fmt.Errorf("loadgen: serializing tensor: %w", err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// postJSON posts one JSON body with the tenant's admission headers and
// decodes the response: a 2xx into out (when non-nil), an error status into
// the returned WireError. A non-empty reqID travels as X-Request-ID.
func (e *engine) postJSON(ctx context.Context, path, reqID string, tenant TenantSpec,
	body, out any) (int, *server.WireError, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.spec.BaseURL+path, bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(server.HeaderRequestID, reqID)
	}
	if tenant.Name != "" {
		req.Header.Set(server.HeaderTenant, tenant.Name)
	}
	if tenant.Priority != "" {
		req.Header.Set(server.HeaderPriority, tenant.Priority)
	}
	resp, err := e.spec.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, nil, nil
		}
		return resp.StatusCode, nil, json.NewDecoder(resp.Body).Decode(out)
	}
	var env struct {
		Error *server.WireError `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp.StatusCode, env.Error, nil
}

// getRange submits one range query through the first-class GET endpoint,
// carrying the same admission-identity headers a POST submission would.
func (e *engine) getRange(ctx context.Context, stream string, t0, t1 int, reqID string,
	tenant TenantSpec, out *server.SubmitResponse) (int, *server.WireError, error) {
	path := fmt.Sprintf("/v1/streams/%s/range?t0=%d&t1=%d", stream, t0, t1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.spec.BaseURL+path, nil)
	if err != nil {
		return 0, nil, err
	}
	if reqID != "" {
		req.Header.Set(server.HeaderRequestID, reqID)
	}
	if tenant.Name != "" {
		req.Header.Set(server.HeaderTenant, tenant.Name)
	}
	if tenant.Priority != "" {
		req.Header.Set(server.HeaderPriority, tenant.Priority)
	}
	resp, err := e.spec.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode <= 299 {
		return resp.StatusCode, nil, json.NewDecoder(resp.Body).Decode(out)
	}
	var env struct {
		Error *server.WireError `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp.StatusCode, env.Error, nil
}

// getJSON fetches one JSON document, stamping reqID when non-empty.
func (e *engine) getJSON(ctx context.Context, path, reqID string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.spec.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	if reqID != "" {
		req.Header.Set(server.HeaderRequestID, reqID)
	}
	resp, err := e.spec.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// execute runs one offered operation end to end. Latency is measured from
// the arrival's *scheduled* time — open-loop semantics: client-side delay
// before the request got on the wire counts against the server's SLO, the
// same way a real user experiences it.
func (e *engine) execute(ctx context.Context, a arrival, start time.Time) result {
	tenant := e.spec.Tenants[a.tenant]
	rid := obs.NewRequestID()
	res := result{op: a.op, tenant: tenant.Name, rid: rid}
	scheduled := start.Add(a.at)

	var (
		receipt server.SubmitResponse
		status  int
		werr    *server.WireError
		err     error
	)
	switch a.op {
	case OpDecompose:
		status, werr, err = e.postJSON(ctx, "/v1/decompose", rid, tenant, server.DecomposeRequest{
			Config:    e.configs[a.size],
			TensorB64: e.tensorB64[a.size][a.variant],
		}, &receipt)
	case OpRange:
		status, werr, err = e.getRange(ctx, e.queryStream, a.t0, a.t1, rid, tenant, &receipt)
	case OpAppend:
		status, werr, err = e.postJSON(ctx, "/v1/streams/"+e.ingestStream+"/append", rid, tenant,
			server.AppendRequest{TensorB64: e.chunkB64[a.variant%len(e.chunkB64)]}, nil)
		if err == nil && status == http.StatusOK {
			res.outcome, res.lat = "ok", time.Since(scheduled)
			return res
		}
	}
	switch {
	case err != nil:
		res.outcome = "failed"
		return res
	case status == http.StatusTooManyRequests:
		res.outcome = "shed"
		return res
	case status != http.StatusAccepted && status != http.StatusOK:
		res.outcome = "failed"
		e.spec.Logf("loadgen: %s: HTTP %d (%v)", a.op, status, werr)
		return res
	}
	res.coal = receipt.Coalesced
	res.hit = receipt.CacheHit

	// Poll to completion, then pull the result payload: "completed" means
	// the decomposition is in hand, not merely finished server-side.
	for {
		var st server.JobStatus
		code, err := e.getJSON(ctx, "/v1/jobs/"+receipt.JobID, rid, &st)
		if err != nil || code != http.StatusOK {
			res.outcome = "failed"
			return res
		}
		switch st.State {
		case server.StateDone:
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				e.spec.BaseURL+"/v1/jobs/"+receipt.JobID+"/result", nil)
			if err != nil {
				res.outcome = "failed"
				return res
			}
			req.Header.Set(server.HeaderRequestID, rid)
			resp, err := e.spec.HTTPClient.Do(req)
			if err != nil {
				res.outcome = "failed"
				return res
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				res.outcome = "failed"
				return res
			}
			res.outcome, res.lat = "ok", time.Since(scheduled)
			return res
		case server.StateFailed, server.StateCancelled:
			res.outcome = "failed"
			return res
		}
		select {
		case <-time.After(e.spec.PollInterval):
		case <-ctx.Done():
			res.outcome = "failed"
			return res
		}
	}
}

// aggregate folds the per-operation results into the Report.
func (e *engine) aggregate(results <-chan result, elapsed time.Duration) *Report {
	spec := e.spec
	type tally struct {
		stats OpStats
		lat   []time.Duration
		ex    []Exemplar
	}
	total := &tally{}
	ops := map[string]*tally{}
	tenants := map[string]*tally{}
	get := func(m map[string]*tally, k string) *tally {
		t, ok := m[k]
		if !ok {
			t = &tally{}
			m[k] = t
		}
		return t
	}
	record := func(t *tally, r result) {
		t.stats.Offered++
		switch r.outcome {
		case "ok":
			t.stats.Completed++
			t.lat = append(t.lat, r.lat)
			if r.rid != "" {
				t.ex = append(t.ex, Exemplar{
					RequestID: r.rid,
					LatencyMs: float64(r.lat) / float64(time.Millisecond),
				})
			}
		case "shed":
			t.stats.Shed++
		case "dropped":
			t.stats.DroppedClient++
		default:
			t.stats.Failed++
		}
		if r.coal {
			t.stats.Coalesced++
		}
		if r.hit {
			t.stats.CacheHits++
		}
	}
	for r := range results {
		record(total, r)
		record(get(ops, r.op), r)
		record(get(tenants, r.tenant), r)
	}

	finish := func(t *tally) OpStats {
		t.stats.Latency = summarize(t.lat)
		// The slowest completions, by ID: the bridge from a bad quantile in
		// this report to the matching story in the daemon's structured log.
		sort.Slice(t.ex, func(i, j int) bool { return t.ex[i].LatencyMs > t.ex[j].LatencyMs })
		if len(t.ex) > maxExemplars {
			t.ex = t.ex[:maxExemplars]
		}
		t.stats.Slowest = t.ex
		return t.stats
	}
	rep := &Report{
		Schema:          ReportSchema,
		Kind:            ReportKind,
		CreatedUTC:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		DurationSeconds: spec.Duration.Seconds(),
		TargetQPS:       spec.QPS,
		Arrival:         spec.Arrival,
		Seed:            spec.Seed,
		Mix:             spec.Mix,
		Tenants:         spec.Tenants,
		Sizes:           spec.Sizes,
		Variants:        spec.Variants,
		MaxInFlight:     spec.MaxInFlight,
		RangeChunks:     spec.RangeChunks,
		RangeWindows:    spec.RangeWindows,
		ElapsedSeconds:  elapsed.Seconds(),
		Totals:          finish(total),
		Ops:             map[string]OpStats{},
		ByTenant:        map[string]OpStats{},
	}
	for op, t := range ops {
		rep.Ops[op] = finish(t)
	}
	for name, t := range tenants {
		rep.ByTenant[name] = finish(t)
	}
	if rep.ElapsedSeconds > 0 {
		rep.GoodputQPS = float64(rep.Totals.Completed) / rep.ElapsedSeconds
	}
	if rep.Totals.Offered > 0 {
		rep.ShedRate = float64(rep.Totals.Shed) / float64(rep.Totals.Offered)
	}
	if d := rep.Totals.DroppedClient; d > 0 {
		spec.Logf("loadgen: %d arrivals dropped client-side at MaxInFlight=%d — the report under-offers",
			d, spec.MaxInFlight)
	}
	return rep
}
