package loadgen

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/server"
)

func TestSummarizeExactQuantiles(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	var samples []time.Duration
	for i := 100; i >= 1; i-- { // 1..100ms, reversed: summarize must sort
		samples = append(samples, ms(i))
	}
	s := summarize(samples)
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	// Nearest-rank on 1..100: q-quantile is exactly q·100 ms.
	if s.P50Ms != 50 || s.P95Ms != 95 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Fatalf("quantiles p50=%v p95=%v p99=%v max=%v, want 50/95/99/100", s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
	}
	if s.MeanMs != 50.5 {
		t.Fatalf("mean %v, want 50.5", s.MeanMs)
	}

	if z := summarize(nil); z.Count != 0 || z.P99Ms != 0 {
		t.Fatalf("empty summary = %+v, want zeros", z)
	}
	one := summarize([]time.Duration{ms(7)})
	if one.P50Ms != 7 || one.P99Ms != 7 || one.MaxMs != 7 {
		t.Fatalf("single-sample summary = %+v, want all 7ms", one)
	}
}

// TestScheduleDeterministic pins the offered sequence: the same spec draws
// the identical schedule, and the drawn mix converges on the weights.
func TestScheduleDeterministic(t *testing.T) {
	spec := Spec{BaseURL: "http://x", Duration: 10 * time.Second, QPS: 100, Seed: 7,
		Tenants: []TenantSpec{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
	}.withDefaults()

	s1 := buildSchedule(spec, rand.New(rand.NewSource(spec.Seed)))
	s2 := buildSchedule(spec, rand.New(rand.NewSource(spec.Seed)))
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed drew different schedules")
	}
	if len(s1) != 1000 {
		t.Fatalf("schedule length %d, want qps×duration = 1000", len(s1))
	}

	var nA int
	for _, a := range s1 {
		if a.tenant == 0 {
			nA++
		}
		if a.op == OpRange && (a.t1 <= a.t0 || a.t0 < 0) {
			t.Fatalf("range arrival has bad window [%d, %d)", a.t0, a.t1)
		}
	}
	// 3:1 offered weights over 1000 draws: a gets ~750.
	if nA < 700 || nA > 800 {
		t.Fatalf("tenant a drew %d of 1000 arrivals, want ≈750", nA)
	}

	// Uniform arrivals are evenly spaced; poisson ones are not.
	uspec := spec
	uspec.Arrival = "uniform"
	us := buildSchedule(uspec, rand.New(rand.NewSource(7)))
	gap := us[1].at - us[0].at
	if us[10].at-us[9].at != gap {
		t.Fatal("uniform schedule has varying gaps")
	}
	if s1[1].at-s1[0].at == s1[10].at-s1[9].at {
		t.Fatal("poisson schedule has fixed gaps")
	}
}

func TestSpecValidate(t *testing.T) {
	base := Spec{BaseURL: "http://x"}.withDefaults()
	if err := base.validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := base
	bad.Mix = map[string]float64{"frobnicate": 1}
	if err := bad.validate(); err == nil {
		t.Fatal("unknown op accepted")
	}
	bad = base
	bad.Arrival = "pareto"
	if err := bad.validate(); err == nil {
		t.Fatal("unknown arrival accepted")
	}
	bad = base
	bad.BaseURL = ""
	if err := bad.validate(); err == nil {
		t.Fatal("missing BaseURL accepted")
	}
}

func sampleReport() Report {
	return Report{
		Schema: ReportSchema, Kind: ReportKind,
		GoodputQPS: 10, ShedRate: 0.05,
		Totals: OpStats{Offered: 100, Completed: 90, Shed: 5,
			Latency: LatencySummary{Count: 90, P50Ms: 40, P95Ms: 120, P99Ms: 200}},
	}
}

func TestCompare(t *testing.T) {
	old := sampleReport()
	if regs := Compare(old, old, 10); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}

	worse := old
	worse.GoodputQPS = 5 // −50%
	regs := Compare(old, worse, 10)
	if len(regs) != 1 || regs[0].Metric != "goodput_qps" {
		t.Fatalf("halved goodput → %v, want one goodput_qps regression", regs)
	}

	worse = old
	worse.ShedRate = 0.30 // +25 points
	regs = Compare(old, worse, 10)
	if len(regs) != 1 || regs[0].Metric != "shed_rate" {
		t.Fatalf("shed growth → %v, want one shed_rate regression", regs)
	}
	// Growth inside the absolute budget passes.
	worse.ShedRate = 0.10
	if regs := Compare(old, worse, 10); len(regs) != 0 {
		t.Fatalf("5-point shed growth under a 10-point budget flagged: %v", regs)
	}

	worse = old
	worse.Totals.Latency.P99Ms = 300 // +50%
	regs = Compare(old, worse, 10)
	if len(regs) != 1 || regs[0].Metric != "latency_p99_ms" {
		t.Fatalf("p99 growth → %v, want one latency_p99_ms regression", regs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "load.json")
	rep := sampleReport()
	if err := Save(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", got, rep)
	}

	wrongKind := rep
	wrongKind.Kind = "trajectory"
	badPath := filepath.Join(dir, "bad.json")
	if err := Save(badPath, wrongKind); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("wrong kind accepted")
	}
	wrongSchema := rep
	wrongSchema.Schema = 99
	if err := Save(badPath, wrongSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestRunSmoke drives a short mixed load against an in-process daemon and
// checks the report is coherent: every offered arrival is accounted for
// exactly once, goodput matches the completion count, and the per-op and
// per-tenant breakdowns partition the totals.
func TestRunSmoke(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2, Runners: 2, QueueDepth: 32})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := Run(ctx, Spec{
		BaseURL:  hs.URL,
		Duration: 500 * time.Millisecond,
		QPS:      40,
		Seed:     3,
		Variants: 2,
		Tenants:  []TenantSpec{{Name: "a", Weight: 3}, {Name: "b", Weight: 1, Priority: "interactive"}},
		Sizes: []SizeClass{
			{Name: "tiny", Shape: []int{8, 7, 6}, Ranks: []int{2, 2, 2}, Weight: 1},
		},
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || rep.Kind != ReportKind {
		t.Fatalf("report stamped %d/%q, want %d/%q", rep.Schema, rep.Kind, ReportSchema, ReportKind)
	}
	tot := rep.Totals
	if tot.Offered != 20 {
		t.Fatalf("offered %d, want qps×duration = 20", tot.Offered)
	}
	if got := tot.Completed + tot.Shed + tot.Failed + tot.DroppedClient; got != tot.Offered {
		t.Fatalf("outcomes sum to %d, want offered %d (%+v)", got, tot.Offered, tot)
	}
	if tot.Failed != 0 {
		t.Fatalf("%d operations failed against an idle local server: %+v", tot.Failed, rep.Ops)
	}
	if tot.Completed == 0 || rep.GoodputQPS <= 0 {
		t.Fatalf("no goodput recorded: %+v", tot)
	}
	if int64(tot.Latency.Count) != tot.Completed {
		t.Fatalf("latency samples %d, want one per completed op %d", tot.Latency.Count, tot.Completed)
	}

	var opOffered, tenOffered int64
	for _, s := range rep.Ops {
		opOffered += s.Offered
	}
	for _, s := range rep.ByTenant {
		tenOffered += s.Offered
	}
	if opOffered != tot.Offered || tenOffered != tot.Offered {
		t.Fatalf("breakdowns offered %d (ops) / %d (tenants), want %d", opOffered, tenOffered, tot.Offered)
	}
	// With 2 variants of 1 size class over 20 arrivals, duplicates are
	// certain; the server must answer some from cache or by coalescing.
	if tot.CacheHits+tot.Coalesced == 0 {
		t.Fatal("no cache hits or coalescing across 20 arrivals of 2 distinct payloads")
	}
}
