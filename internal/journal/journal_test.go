package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dterr"
	"repro/internal/faults"
)

func openT(t *testing.T, path string) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func appendT(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append(%+v): %v", rec, err)
		}
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dtjl")
	j, rep := openT(t, path)
	if len(rep.Records) != 0 || rep.TailError != nil {
		t.Fatalf("fresh journal replayed %+v", rep)
	}
	appendT(t, j,
		Record{Type: RecAccepted, Job: "j-000001", Tenant: "a", Key: "k1", TensorFile: "j-000001.ten"},
		Record{Type: RecStarted, Job: "j-000001"},
		Record{Type: RecSweep, Job: "j-000001", Sweep: 3, CheckpointFile: "j-000001.ckpt"},
		Record{Type: RecFinished, Job: "j-000001", Outcome: "done", Fit: 0.25, Iters: 7, ResultFile: "j-000001.dtd"},
	)
	j.Close()

	j2, rep2 := openT(t, path)
	if rep2.TailError != nil {
		t.Fatalf("replay reported tail error: %v", rep2.TailError)
	}
	if len(rep2.Records) != 4 {
		t.Fatalf("replayed %d records, want 4", len(rep2.Records))
	}
	for i, rec := range rep2.Records {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
	}
	got := rep2.Records[3]
	if got.Type != RecFinished || got.Outcome != "done" || got.Fit != 0.25 || got.ResultFile != "j-000001.dtd" {
		t.Fatalf("finished record roundtripped as %+v", got)
	}
	// Appends continue the sequence.
	appendT(t, j2, Record{Type: RecAccepted, Job: "j-000002"})
	if j2.Seq() != 5 {
		t.Fatalf("Seq after append = %d, want 5", j2.Seq())
	}
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dtjl")
	j, _ := openT(t, path)
	appendT(t, j,
		Record{Type: RecAccepted, Job: "j-000001"},
		Record{Type: RecStarted, Job: "j-000001"},
	)
	j.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(raw, 0x40, 0x00, 0x00, 0x00, 0xde, 0xad) // length=64, partial crc
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep := openT(t, path)
	if len(rep.Records) != 2 {
		t.Fatalf("replayed %d records, want the 2 committed ones", len(rep.Records))
	}
	if rep.TailError == nil || !errors.Is(rep.TailError, dterr.ErrCorruptArtifact) {
		t.Fatalf("torn tail error = %v, want a dterr.ErrCorruptArtifact", rep.TailError)
	}
	if rep.TruncatedBytes != 6 {
		t.Fatalf("TruncatedBytes = %d, want 6", rep.TruncatedBytes)
	}
	// The torn bytes are gone from disk and appending resumes cleanly.
	appendT(t, j2, Record{Type: RecFinished, Job: "j-000001", Outcome: "done"})
	j2.Close()
	_, rep3 := openT(t, path)
	if rep3.TailError != nil || len(rep3.Records) != 3 {
		t.Fatalf("post-truncation journal replayed %d records (tail %v), want 3 clean", len(rep3.Records), rep3.TailError)
	}
}

func TestFlippedChecksumByteStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dtjl")
	j, _ := openT(t, path)
	appendT(t, j,
		Record{Type: RecAccepted, Job: "j-000001"},
		Record{Type: RecAccepted, Job: "j-000002"},
		Record{Type: RecAccepted, Job: "j-000003"},
	)
	j.Close()

	// Flip one byte in the last record's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rep := openT(t, path)
	if len(rep.Records) != 2 {
		t.Fatalf("replayed %d records, want 2 (the uncorrupted prefix)", len(rep.Records))
	}
	if rep.TailError == nil || !errors.Is(rep.TailError, dterr.ErrCorruptArtifact) {
		t.Fatalf("checksum error = %v, want a dterr.ErrCorruptArtifact", rep.TailError)
	}
}

func TestForeignJournalRejected(t *testing.T) {
	dir := t.TempDir()

	badMagic := filepath.Join(dir, "bad-magic.dtjl")
	if err := os.WriteFile(badMagic, []byte("NOPE\x01\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(badMagic); !errors.Is(err, dterr.ErrCorruptArtifact) {
		t.Fatalf("bad magic: Open err = %v, want ErrCorruptArtifact", err)
	}

	badVersion := filepath.Join(dir, "bad-version.dtjl")
	if err := os.WriteFile(badVersion, []byte("DTJL\x63\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(badVersion); !errors.Is(err, dterr.ErrCorruptArtifact) {
		t.Fatalf("bad version: Open err = %v, want ErrCorruptArtifact", err)
	}
}

func TestSnapshotRoundtripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.dtjs")

	// Missing file: clean zero state.
	seq, recs, err := ReadSnapshot(path)
	if err != nil || seq != 0 || recs != nil {
		t.Fatalf("missing snapshot = (%d, %v, %v), want (0, nil, nil)", seq, recs, err)
	}

	in := []Record{
		{Seq: 1, Type: RecAccepted, Job: "j-000001", Tenant: "a"},
		{Seq: 4, Type: RecFinished, Job: "j-000001", Outcome: "done", ResultFile: "j-000001.dtd"},
	}
	if err := WriteSnapshot(path, 9, in); err != nil {
		t.Fatal(err)
	}
	seq, recs, err = ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 || len(recs) != 2 || recs[1].ResultFile != "j-000001.dtd" {
		t.Fatalf("snapshot roundtripped as (%d, %+v)", seq, recs)
	}

	// Flip a payload byte: typed corrupt error.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path); !errors.Is(err, dterr.ErrCorruptArtifact) {
		t.Fatalf("corrupt snapshot err = %v, want ErrCorruptArtifact", err)
	}

	// Truncation: typed corrupt error.
	if err := os.WriteFile(path, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(path); !errors.Is(err, dterr.ErrCorruptArtifact) {
		t.Fatalf("truncated snapshot err = %v, want ErrCorruptArtifact", err)
	}
}

func TestCompact(t *testing.T) {
	recs := []Record{
		{Seq: 1, Type: RecAccepted, Job: "a"},
		{Seq: 2, Type: RecAccepted, Job: "b"},
		{Seq: 3, Type: RecStarted, Job: "a"},
		{Seq: 4, Type: RecSweep, Job: "a", Sweep: 1, CheckpointFile: "a.ckpt"},
		{Seq: 5, Type: RecSweep, Job: "a", Sweep: 2, CheckpointFile: "a.ckpt"},
		{Seq: 6, Type: RecStarted, Job: "b"},
		{Seq: 7, Type: RecSweep, Job: "b", Sweep: 1},
		{Seq: 8, Type: RecFinished, Job: "b", Outcome: "done"},
	}
	got := Compact(recs)
	// Job a (interrupted): accepted + latest sweep. Job b (done): accepted +
	// terminal; its sweep record is compacted away.
	want := []struct {
		job  string
		typ  RecordType
		swep int
	}{
		{"a", RecAccepted, 0}, {"a", RecSweep, 2},
		{"b", RecAccepted, 0}, {"b", RecFinished, 0},
	}
	if len(got) != len(want) {
		t.Fatalf("Compact returned %d records %+v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].Job != w.job || got[i].Type != w.typ || got[i].Sweep != w.swep {
			t.Fatalf("Compact[%d] = %+v, want %+v", i, got[i], w)
		}
	}
}

func TestTruncateResetsRecordsKeepsSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.dtjl")
	j, _ := openT(t, path)
	appendT(t, j,
		Record{Type: RecAccepted, Job: "j-000001"},
		Record{Type: RecFinished, Job: "j-000001", Outcome: "done"},
	)
	if err := j.Truncate(); err != nil {
		t.Fatal(err)
	}
	appendT(t, j, Record{Type: RecAccepted, Job: "j-000002"})
	j.Close()
	_, rep := openT(t, path)
	if len(rep.Records) != 1 || rep.Records[0].Job != "j-000002" {
		t.Fatalf("post-truncate replay = %+v, want only j-000002", rep.Records)
	}
	if rep.Records[0].Seq != 3 {
		t.Fatalf("post-truncate seq = %d, want 3 (watermark kept)", rep.Records[0].Seq)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.bin")
	write := func(b []byte) func(io.Writer) error {
		return func(w io.Writer) error { _, err := w.Write(b); return err }
	}
	if err := WriteFileAtomic(path, write([]byte("first version"))); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, write([]byte("second version"))); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second version" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestCrashInjection sweeps the in-process crash modes: mid-append with a
// torn prefix, mid-spill-write, and mid-rename. Each must leave the
// previously committed state fully recoverable and freeze (append) or
// abandon (spill) the in-flight write.
func TestCrashInjection(t *testing.T) {
	t.Run("append", func(t *testing.T) {
		defer faults.Reset()
		path := filepath.Join(t.TempDir(), "journal.dtjl")
		j, _ := openT(t, path)
		appendT(t, j, Record{Type: RecAccepted, Job: "j-000001"})
		if err := faults.Activate("journal.append", faults.Plan{TornBytes: 5}); err != nil {
			t.Fatal(err)
		}
		err := j.Append(Record{Type: RecStarted, Job: "j-000001"})
		var ce *faults.CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("Append under crash plan = %v, want *faults.CrashError", err)
		}
		// Frozen: later appends no-op with ErrFrozen.
		if err := j.Append(Record{Type: RecFinished, Job: "j-000001"}); !errors.Is(err, ErrFrozen) {
			t.Fatalf("post-crash Append = %v, want ErrFrozen", err)
		}
		j.Close()

		// Reopen: the torn 5-byte prefix is truncated, the committed record
		// survives.
		_, rep := openT(t, path)
		if len(rep.Records) != 1 || rep.Records[0].Type != RecAccepted {
			t.Fatalf("post-crash replay = %+v, want the one committed record", rep.Records)
		}
		if rep.TailError == nil || rep.TruncatedBytes != 5 {
			t.Fatalf("post-crash tail = (%v, %d bytes), want a 5-byte torn tail", rep.TailError, rep.TruncatedBytes)
		}
	})

	for _, site := range []string{"journal.spill.write", "journal.spill.rename"} {
		t.Run(site, func(t *testing.T) {
			defer faults.Reset()
			dir := t.TempDir()
			path := filepath.Join(dir, "artifact.bin")
			write := func(b []byte) func(io.Writer) error {
				return func(w io.Writer) error { _, err := w.Write(b); return err }
			}
			if err := WriteFileAtomic(path, write([]byte("committed"))); err != nil {
				t.Fatal(err)
			}
			if err := faults.Activate(site, faults.Plan{TornBytes: 3}); err != nil {
				t.Fatal(err)
			}
			err := WriteFileAtomic(path, write([]byte("replacement")))
			var ce *faults.CrashError
			if !errors.As(err, &ce) {
				t.Fatalf("WriteFileAtomic under crash plan = %v, want *faults.CrashError", err)
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil || string(got) != "committed" {
				t.Fatalf("target after crashed replace = %q, %v; want previous content intact", got, rerr)
			}
		})
	}
}

func TestFrozenJournalSurvivesConcurrentUse(t *testing.T) {
	defer faults.Reset()
	path := filepath.Join(t.TempDir(), "journal.dtjl")
	j, _ := openT(t, path)
	if err := faults.Activate("journal.append", faults.Plan{Skip: 2}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 8; i++ {
				j.Append(Record{Type: RecStarted, Job: "j-000001"})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if frozen, _ := j.Frozen(); !frozen {
		t.Fatal("journal did not freeze after the injected crash")
	}
	j.Close()
	// Whatever was committed before the crash replays cleanly.
	_, rep := openT(t, path)
	if len(rep.Records) != 2 {
		t.Fatalf("replayed %d records, want the 2 pre-crash ones", len(rep.Records))
	}
}
