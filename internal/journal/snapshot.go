package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// snapshotBatch is the single JSON payload of a .dtjs snapshot.
type snapshotBatch struct {
	// Seq is the sequence watermark: every journal record with Seq at or
	// below it is captured by (or compacted out of) this snapshot.
	Seq     uint64   `json:"seq"`
	Records []Record `json:"records"`
}

// WriteSnapshot atomically writes a snapshot of recs at watermark seq. The
// write goes through WriteFileAtomic, so a crash mid-snapshot leaves the
// previous snapshot (or none) intact.
func WriteSnapshot(path string, seq uint64, recs []Record) error {
	if recs == nil {
		recs = []Record{}
	}
	payload, err := json.Marshal(snapshotBatch{Seq: seq, Records: recs})
	if err != nil {
		return fmt.Errorf("journal: encoding snapshot: %w", err)
	}
	return WriteFileAtomic(path, func(w io.Writer) error {
		var hdr [16]byte
		copy(hdr[:4], snapshotMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], Version)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, crcTable))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	})
}

// ReadSnapshot reads a snapshot, returning its watermark and records. A
// missing file is not an error: it returns (0, nil, nil) — the state before
// any snapshot was taken. Every malformed variant (bad magic, foreign
// version, bad checksum, truncation) is a typed corrupt-artifact error; the
// caller logs it and recovers from the journal alone.
func ReadSnapshot(path string) (uint64, []Record, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("journal: reading snapshot %s: %w", path, err)
	}
	if len(raw) < 16 {
		return 0, nil, corrupt("journal: snapshot %s: short header", path)
	}
	if !bytes.Equal(raw[:4], snapshotMagic[:]) {
		return 0, nil, corrupt("journal: snapshot %s: bad magic %q", path, raw[:4])
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != Version {
		return 0, nil, corrupt("journal: snapshot %s: schema version %d (this build reads %d)", path, v, Version)
	}
	length := binary.LittleEndian.Uint32(raw[8:12])
	sum := binary.LittleEndian.Uint32(raw[12:16])
	if int64(length) != int64(len(raw)-16) {
		return 0, nil, corrupt("journal: snapshot %s: payload length %d does not match file size", path, length)
	}
	payload := raw[16:]
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return 0, nil, corrupt("journal: snapshot %s: checksum mismatch (stored %08x, computed %08x)", path, sum, got)
	}
	var batch snapshotBatch
	if err := json.Unmarshal(payload, &batch); err != nil {
		return 0, nil, corrupt("journal: snapshot %s: payload is not a record batch: %v", path, err)
	}
	return batch.Seq, batch.Records, nil
}

// Compact reduces a replayed record stream to the minimal equivalent a
// snapshot needs: per job, the accepted record, the latest sweep record (for
// jobs still resumable), and the terminal record — started records and
// superseded sweeps carry no recovery state and are dropped. Relative order
// is preserved, so replaying a compacted stream reconstructs jobs in their
// original admission order.
func Compact(recs []Record) []Record {
	type jobRecs struct {
		accepted  *Record
		lastSweep *Record
		terminal  *Record
	}
	byJob := map[string]*jobRecs{}
	var order []string
	for i := range recs {
		rec := &recs[i]
		jr := byJob[rec.Job]
		if jr == nil {
			jr = &jobRecs{}
			byJob[rec.Job] = jr
			order = append(order, rec.Job)
		}
		switch rec.Type {
		case RecAccepted:
			jr.accepted = rec
		case RecSweep:
			if jr.lastSweep == nil || rec.Sweep >= jr.lastSweep.Sweep {
				jr.lastSweep = rec
			}
		case RecFinished, RecCancelled:
			jr.terminal = rec
		}
	}
	var out []Record
	for _, id := range order {
		jr := byJob[id]
		if jr.accepted != nil {
			out = append(out, *jr.accepted)
		}
		if jr.terminal != nil {
			out = append(out, *jr.terminal)
			continue
		}
		if jr.lastSweep != nil {
			out = append(out, *jr.lastSweep)
		}
	}
	return out
}
