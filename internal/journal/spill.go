package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the bytes produced by write to path with
// all-or-nothing visibility: the payload goes to a same-directory temp file,
// is fsynced, and is renamed over path. A reader (or a post-crash recovery)
// sees either the complete previous content or the complete new content —
// never a torn file. The payload is buffered in memory first, which the
// spill artifacts (tensors, checkpoints, results) comfortably afford and
// which lets crash injection persist an exact torn prefix.
//
// Crash hooks: "journal.spill.write" dies mid-write (the temp file is left
// torn, the target untouched), "journal.spill.rename" dies after the temp
// file is complete but before the rename (the target still untouched). Both
// leave only droppings recovery GC removes.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return fmt.Errorf("journal: serializing %s: %w", filepath.Base(path), err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	if ce := siteSpillWrite.Crash(); ce != nil {
		torn := ce.Torn
		if torn < 0 || torn > int64(buf.Len()) {
			torn = int64(buf.Len())
		}
		f.Write(buf.Bytes()[:torn])
		f.Sync()
		f.Close()
		return ce
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("journal: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: closing %s: %w", tmp, err)
	}
	if ce := siteSpillRename.Crash(); ce != nil {
		return ce
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: renaming %s: %w", tmp, err)
	}
	// Persist the rename itself. Directory fsync support varies by
	// filesystem; failure here downgrades durability, not atomicity.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
