// Package journal is the durability substrate of dtuckerd: an append-only,
// checksummed, schema-versioned write-ahead journal of job lifecycle events,
// a compact snapshot format for bounded replay, and atomic spill-file writes
// for the large artifacts (tensors, checkpoints, results) the journal only
// references by name.
//
// # Journal format (.dtjl)
//
//	header  magic [4]byte "DTJL", version uint32 (currently 1)
//	record  length uint32, crc uint32 (CRC32-Castagnoli of payload),
//	        payload [length]byte (JSON-encoded Record)
//	...     records repeat until EOF
//
// All integers little endian. Every Append is followed by an fsync before it
// returns, so an acknowledged record survives a process kill. Replay reads
// records until the first frame that is short, oversized, or fails its
// checksum; everything from that point on is a torn tail — the residue of a
// crash mid-write — and is truncated off, never interpreted. A record is
// therefore committed exactly when replay can see it, and a crash can only
// ever lose the single record being written at the moment of death.
//
// # Snapshot format (.dtjs)
//
// A snapshot is the compaction of a replayed record stream: the same framed
// encoding under magic "DTJS", holding one record batch (sequence watermark
// plus compacted records) in a single checksummed frame, written atomically
// via WriteFileAtomic. Recovery reads the snapshot first, then replays only
// journal records with sequence numbers above the watermark; after a
// successful recovery the server writes a fresh snapshot and truncates the
// journal, bounding replay work by live state instead of history length.
//
// # Crash simulation
//
// The write paths carry faults hook sites ("journal.append",
// "journal.spill.write", "journal.spill.rename") whose Crash() hook models a
// process death at that exact write: the journal persists the configured
// torn prefix of the in-flight frame, then freezes — every later append or
// spill becomes a silent no-op, exactly as if the process had died — and the
// caller gets a *faults.CrashError. Tests then drain the still-running
// server normally (its in-memory state no longer matters) and open a fresh
// one on the same directory, which sees byte-for-byte the disk state a real
// kill would have left. ModeExit plans skip the simulation and genuinely
// exit, for subprocess e2e tests.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/dterr"
	"repro/internal/faults"
	"repro/internal/metrics"
)

// Crash-injection hook sites on the durability write paths (no-ops unless a
// test or DTUCKERD_FAULTS arms them).
var (
	siteAppend      = faults.NewSite("journal.append")
	siteSpillWrite  = faults.NewSite("journal.spill.write")
	siteSpillRename = faults.NewSite("journal.spill.rename")
)

var (
	journalMagic  = [4]byte{'D', 'T', 'J', 'L'}
	snapshotMagic = [4]byte{'D', 'T', 'J', 'S'}
)

// Version is the journal schema version this package writes. Readers reject
// other versions: a downgraded binary must not misparse a future schema.
const Version = 1

// maxRecordBytes bounds one record frame. Journal records are small JSON
// documents (large artifacts live in spill files), so anything past this is
// a corrupt length field, not a real record.
const maxRecordBytes = 1 << 20

// crcTable is the Castagnoli polynomial, matching the "CRC32C per record"
// format contract (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecordType enumerates the job lifecycle events the journal captures.
type RecordType string

const (
	// RecAccepted commits an admitted job: its identity, tenant, lane,
	// config, and the name of its tensor spill file. Written after the spill
	// so an accepted record always references a complete tensor.
	RecAccepted RecordType = "accepted"
	// RecStarted marks the job picked up by a runner. Informational — an
	// accepted job with no terminal record is re-enqueued on recovery
	// whether or not it had started.
	RecStarted RecordType = "started"
	// RecSweep commits one completed ALS sweep and names the checkpoint
	// spill holding the iteration state at that boundary.
	RecSweep RecordType = "sweep"
	// RecFinished commits a terminal outcome: "done" (with the result spill
	// name) or "failed" (with the error kind and message).
	RecFinished RecordType = "finished"
	// RecCancelled commits a client-requested cancellation. Drain-time
	// cancellations are deliberately not journaled, so a graceful restart
	// resumes the interrupted jobs instead of abandoning them.
	RecCancelled RecordType = "cancelled"
)

// Record is one journal entry. A single struct covers every record type;
// unused fields stay zero and are omitted from the JSON encoding.
type Record struct {
	// Seq is the journal-assigned sequence number, strictly increasing
	// across the journal and its snapshots.
	Seq  uint64     `json:"seq"`
	Type RecordType `json:"type"`
	// Job is the job id ("j-000042") every record belongs to.
	Job string `json:"job"`
	// AtMs is the wall-clock time the record was appended, Unix
	// milliseconds — presentation metadata for restored job records.
	AtMs int64 `json:"at_ms,omitempty"`

	// Accepted fields.
	// RequestID is the correlation ID of the submitting request, restored
	// onto the recovered job so post-restart log events still correlate
	// with the original client call.
	RequestID    string          `json:"request_id,omitempty"`
	Tenant       string          `json:"tenant,omitempty"`
	Lane         string          `json:"lane,omitempty"`
	Key          string          `json:"key,omitempty"` // result-cache key
	Config       json.RawMessage `json:"config,omitempty"`
	TensorFile   string          `json:"tensor_file,omitempty"`
	TensorDigest string          `json:"tensor_digest,omitempty"`
	// Fingerprint is the RNG-free config fingerprint checkpoints must match.
	Fingerprint string `json:"fingerprint,omitempty"`
	TimeoutMs   int64  `json:"timeout_ms,omitempty"`
	Trace       bool   `json:"trace,omitempty"`

	// Sweep fields.
	Sweep          int    `json:"sweep,omitempty"`
	CheckpointFile string `json:"checkpoint_file,omitempty"`

	// Terminal fields.
	Outcome    string  `json:"outcome,omitempty"` // "done" or "failed"
	ErrKind    string  `json:"err_kind,omitempty"`
	ErrMessage string  `json:"err_message,omitempty"`
	Fit        float64 `json:"fit,omitempty"`
	Converged  bool    `json:"converged,omitempty"`
	Iters      int     `json:"iters,omitempty"`
	ResultFile string  `json:"result_file,omitempty"`
	// ResultDigest is the sha256 (hex) of the result spill's bytes: the
	// .dtd format carries no internal checksum, so the journal record is
	// what lets a restart detect a bit-rotted result before serving it.
	ResultDigest string `json:"result_digest,omitempty"`
}

// Replay is what Open recovered from an existing journal file.
type Replay struct {
	// Records are the committed records, in append order.
	Records []Record
	// TailError is non-nil when a torn or corrupt tail was found and
	// truncated: a typed error wrapping dterr.ErrCorruptArtifact describing
	// the first bad frame. The records before it are intact — a torn tail
	// never aborts recovery, it only drops the uncommitted suffix.
	TailError error
	// TruncatedBytes is how many bytes of torn tail were cut off.
	TruncatedBytes int64
}

// Journal is an open journal file positioned for appending. Methods are
// safe for concurrent use.
type Journal struct {
	path string

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	frozen bool
	reason error // why the journal froze (crash injection or a write error)
}

// ErrFrozen is returned by appends after the journal froze — an injected
// crash or an earlier failed write. A frozen journal accepts no more
// records: appending past a torn tail would strand them beyond the
// corruption, acknowledged but unrecoverable.
var ErrFrozen = errors.New("journal: frozen")

// corrupt wraps a format violation as a typed dterr corrupt-artifact error.
func corrupt(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, dterr.ErrCorruptArtifact)...)
}

// Open opens (creating if absent) the journal at path, replays its committed
// records, truncates any torn tail in place, and leaves the file positioned
// for appending. The journal's next sequence number continues from the last
// committed record; callers merging a snapshot bump it with BumpSeq.
//
// A header that is present but wrong (bad magic or unsupported version) is a
// typed corrupt-artifact error: the file is not ours to append to, and the
// operator must move it aside.
func Open(path string) (*Journal, *Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: opening %s: %w", path, err)
	}
	j := &Journal{path: path, f: f}
	rep, endOff, err := j.replayLocked()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if rep.TruncatedBytes > 0 {
		if err := f.Truncate(endOff); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(endOff, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: seeking %s: %w", path, err)
	}
	if len(rep.Records) > 0 {
		j.seq = rep.Records[len(rep.Records)-1].Seq
	}
	return j, rep, nil
}

// replayLocked reads the header (writing one into an empty file) and every
// committed record, returning the replay and the offset where the committed
// prefix ends.
func (j *Journal) replayLocked() (*Replay, int64, error) {
	st, err := j.f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: stat %s: %w", j.path, err)
	}
	if st.Size() == 0 {
		if err := j.writeHeaderLocked(); err != nil {
			return nil, 0, err
		}
		return &Replay{}, int64(len(journalMagic) + 4), nil
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: seeking %s: %w", j.path, err)
	}
	var magic [4]byte
	if _, err := io.ReadFull(j.f, magic[:]); err != nil {
		return nil, 0, corrupt("journal: %s: short header", j.path)
	}
	if magic != journalMagic {
		return nil, 0, corrupt("journal: %s: bad magic %q (not a .dtjl journal)", j.path, magic[:])
	}
	var version uint32
	if err := binary.Read(j.f, binary.LittleEndian, &version); err != nil {
		return nil, 0, corrupt("journal: %s: short header", j.path)
	}
	if version != Version {
		return nil, 0, corrupt("journal: %s: schema version %d (this build reads %d)", j.path, version, Version)
	}
	rep := &Replay{}
	off := int64(len(journalMagic) + 4)
	for {
		rec, n, err := readFrame(j.f)
		if err == io.EOF {
			break
		}
		if err != nil {
			rep.TailError = fmt.Errorf("journal: %s: record after seq %d: %w", j.path, j.lastSeq(rep), err)
			rep.TruncatedBytes = st.Size() - off
			break
		}
		off += n
		rep.Records = append(rep.Records, rec)
	}
	return rep, off, nil
}

func (j *Journal) lastSeq(rep *Replay) uint64 {
	if len(rep.Records) == 0 {
		return 0
	}
	return rep.Records[len(rep.Records)-1].Seq
}

// readFrame reads one length+crc+payload frame. io.EOF means a clean end;
// every other failure is a corrupt-artifact error describing the bad frame.
func readFrame(r io.Reader) (Record, int64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, corrupt("short frame header")
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, corrupt("short frame header")
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > maxRecordBytes {
		return Record{}, 0, corrupt("frame length %d out of range", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, corrupt("short frame payload (%d bytes expected)", length)
	}
	if got := crc32.Checksum(payload, crcTable); got != sum {
		return Record{}, 0, corrupt("frame checksum mismatch (stored %08x, computed %08x)", sum, got)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, corrupt("frame payload is not a record: %v", err)
	}
	return rec, int64(len(hdr)) + int64(length), nil
}

// frame encodes one record as length+crc+payload.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds frame limit", len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	return buf, nil
}

func (j *Journal) writeHeaderLocked() error {
	var hdr [8]byte
	copy(hdr[:4], journalMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if _, err := j.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("journal: writing header of %s: %w", j.path, err)
	}
	return j.f.Sync()
}

// Append assigns the record the next sequence number, writes its frame, and
// fsyncs before returning: an Append that returned nil is committed. On any
// write failure — including an injected crash — the journal freezes and
// every later Append returns ErrFrozen.
func (j *Journal) Append(rec Record) error {
	t0 := metrics.HistStart()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return fmt.Errorf("%w: %v", ErrFrozen, j.reason)
	}
	j.seq++
	rec.Seq = j.seq
	buf, err := frame(rec)
	if err != nil {
		j.seq--
		return err
	}
	if ce := siteAppend.Crash(); ce != nil {
		// Simulated death mid-append: persist the torn prefix, then freeze.
		torn := ce.Torn
		if torn < 0 || torn > int64(len(buf)) {
			torn = int64(len(buf))
		}
		if torn > 0 {
			j.f.Write(buf[:torn])
			j.f.Sync()
		}
		j.freezeLocked(ce)
		return ce
	}
	if _, err := j.f.Write(buf); err != nil {
		j.freezeLocked(err)
		return fmt.Errorf("journal: appending to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		j.freezeLocked(err)
		return fmt.Errorf("journal: syncing %s: %w", j.path, err)
	}
	metrics.ObserveSince(metrics.HistJournalAppend, t0)
	return nil
}

func (j *Journal) freezeLocked(reason error) {
	j.frozen = true
	j.reason = reason
}

// Freeze wedges the journal: every later Append fails with ErrFrozen. The
// durability layer calls it when a simulated crash fires at a spill site —
// a dead process writes nothing more, so neither may the journal after any
// injected death, or a crash test could commit records the real crash never
// would have.
func (j *Journal) Freeze(reason error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.frozen {
		j.freezeLocked(reason)
	}
}

// Frozen reports whether the journal stopped accepting writes (and why).
func (j *Journal) Frozen() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.frozen, j.reason
}

// Seq returns the sequence number of the last assigned record.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// BumpSeq raises the next-sequence watermark to at least seq — called after
// snapshot replay so journal records sort after snapshotted ones.
func (j *Journal) BumpSeq(seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > j.seq {
		j.seq = seq
	}
}

// Truncate discards every record, resetting the journal to an empty file
// with a fresh header — called after a snapshot has captured the state the
// records encode. The sequence watermark is kept, so later records still
// sort after the snapshot.
func (j *Journal) Truncate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return fmt.Errorf("%w: %v", ErrFrozen, j.reason)
	}
	if err := j.f.Truncate(int64(len(journalMagic) + 4)); err != nil {
		return fmt.Errorf("journal: truncating %s: %w", j.path, err)
	}
	if _, err := j.f.Seek(int64(len(journalMagic)+4), io.SeekStart); err != nil {
		return fmt.Errorf("journal: seeking %s: %w", j.path, err)
	}
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if !j.frozen {
		return err
	}
	return nil
}
