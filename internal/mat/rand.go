package mat

import "math/rand"

// RandN returns an r×c matrix of i.i.d. standard normal entries drawn from
// rng. A non-nil rng keeps experiments reproducible; pass a fresh
// rand.New(rand.NewSource(seed)).
func RandN(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// RandUniform returns an r×c matrix with entries uniform in [0,1).
func RandUniform(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.Float64()
	}
	return m
}

// RandOrthonormal returns an r×c (r ≥ c) matrix with orthonormal columns,
// drawn from the Haar-like distribution induced by QR of a Gaussian matrix.
func RandOrthonormal(r, c int, rng *rand.Rand) *Dense {
	if r < c {
		panic("mat: RandOrthonormal requires rows ≥ cols")
	}
	return Orthonormalize(RandN(r, c, rng))
}
