package mat

import (
	"fmt"
	"math"
	"sort"
)

// SVDGolubKahan computes a thin SVD of a via Householder bidiagonalization
// followed by implicit-shift QR iteration on the bidiagonal form (the
// Golub–Kahan–Reinsch algorithm, following the classic LINPACK/Numerical
// Recipes formulation).
//
// Compared to the one-sided Jacobi path used by SVD, a single
// O(m·n²) reduction replaces several O(n³) sweeps, which pays off for
// larger square-ish matrices; Jacobi retains an edge in relative accuracy
// for tiny singular values. Both produce U·diag(S)·Vᵀ = A with orthonormal
// U (m×k) and V (n×k), k = min(m,n), S descending.
func SVDGolubKahan(a *Dense) (SVDResult, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return SVDResult{U: New(m, 0), S: nil, V: New(n, 0)}, nil
	}
	if m < n {
		res, err := SVDGolubKahan(a.T())
		if err != nil {
			return SVDResult{}, err
		}
		return SVDResult{U: res.V, S: res.S, V: res.U}, nil
	}
	u := a.Clone()
	w := make([]float64, n)
	v := New(n, n)
	rv1 := make([]float64, n)
	if err := golubKahan(u, w, v, rv1); err != nil {
		return SVDResult{}, err
	}
	sortSVDColumns(u, w, v)
	return SVDResult{U: u, S: w, V: v}, nil
}

func signCopy(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}

// golubKahan runs the in-place bidiagonalization + QR diagonalization on
// u (m×n, m ≥ n), producing left vectors in u, singular values in w, and
// right vectors in v (n×n). rv1 is scratch of length n.
func golubKahan(u *Dense, w []float64, v *Dense, rv1 []float64) error {
	m, n := u.Dims()
	var g, scale, anorm float64

	// Householder reduction to bidiagonal form.
	for i := 0; i < n; i++ {
		l := i + 1
		rv1[i] = scale * g
		g, scale = 0, 0
		var s float64
		if i < m {
			for k := i; k < m; k++ {
				scale += math.Abs(u.data[k*n+i])
			}
			if scale != 0 {
				for k := i; k < m; k++ {
					u.data[k*n+i] /= scale
					s += u.data[k*n+i] * u.data[k*n+i]
				}
				f := u.data[i*n+i]
				g = -signCopy(math.Sqrt(s), f)
				h := f*g - s
				u.data[i*n+i] = f - g
				for j := l; j < n; j++ {
					var ss float64
					for k := i; k < m; k++ {
						ss += u.data[k*n+i] * u.data[k*n+j]
					}
					ff := ss / h
					for k := i; k < m; k++ {
						u.data[k*n+j] += ff * u.data[k*n+i]
					}
				}
				for k := i; k < m; k++ {
					u.data[k*n+i] *= scale
				}
			}
		}
		w[i] = scale * g
		g, scale, s = 0, 0, 0
		if i < m && i != n-1 {
			for k := l; k < n; k++ {
				scale += math.Abs(u.data[i*n+k])
			}
			if scale != 0 {
				for k := l; k < n; k++ {
					u.data[i*n+k] /= scale
					s += u.data[i*n+k] * u.data[i*n+k]
				}
				f := u.data[i*n+l]
				g = -signCopy(math.Sqrt(s), f)
				h := f*g - s
				u.data[i*n+l] = f - g
				for k := l; k < n; k++ {
					rv1[k] = u.data[i*n+k] / h
				}
				for j := l; j < m; j++ {
					var ss float64
					for k := l; k < n; k++ {
						ss += u.data[j*n+k] * u.data[i*n+k]
					}
					for k := l; k < n; k++ {
						u.data[j*n+k] += ss * rv1[k]
					}
				}
				for k := l; k < n; k++ {
					u.data[i*n+k] *= scale
				}
			}
		}
		if t := math.Abs(w[i]) + math.Abs(rv1[i]); t > anorm {
			anorm = t
		}
	}

	// Accumulate right-hand transformations in v.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		if i < n-1 {
			if g != 0 {
				for j := l; j < n; j++ {
					v.data[j*n+i] = (u.data[i*n+j] / u.data[i*n+l]) / g
				}
				for j := l; j < n; j++ {
					var s float64
					for k := l; k < n; k++ {
						s += u.data[i*n+k] * v.data[k*n+j]
					}
					for k := l; k < n; k++ {
						v.data[k*n+j] += s * v.data[k*n+i]
					}
				}
			}
			for j := l; j < n; j++ {
				v.data[i*n+j] = 0
				v.data[j*n+i] = 0
			}
		}
		v.data[i*n+i] = 1
		g = rv1[i]
	}

	// Accumulate left-hand transformations in u.
	for i := n - 1; i >= 0; i-- {
		l := i + 1
		g := w[i]
		for j := l; j < n; j++ {
			u.data[i*n+j] = 0
		}
		if g != 0 {
			g = 1 / g
			for j := l; j < n; j++ {
				var s float64
				for k := l; k < m; k++ {
					s += u.data[k*n+i] * u.data[k*n+j]
				}
				f := (s / u.data[i*n+i]) * g
				for k := i; k < m; k++ {
					u.data[k*n+j] += f * u.data[k*n+i]
				}
			}
			for j := i; j < m; j++ {
				u.data[j*n+i] *= g
			}
		} else {
			for j := i; j < m; j++ {
				u.data[j*n+i] = 0
			}
		}
		u.data[i*n+i]++
	}

	// Diagonalize the bidiagonal form: implicit-shift QR with deflation.
	for k := n - 1; k >= 0; k-- {
		for its := 0; ; its++ {
			flag := true
			var l, nm int
			for l = k; l >= 0; l-- {
				nm = l - 1
				if math.Abs(rv1[l])+anorm == anorm {
					flag = false
					break
				}
				if math.Abs(w[nm])+anorm == anorm {
					break
				}
			}
			if flag {
				// Cancellation of rv1[l] for l > 0.
				c, s := 0.0, 1.0
				for i := l; i <= k; i++ {
					f := s * rv1[i]
					rv1[i] = c * rv1[i]
					if math.Abs(f)+anorm == anorm {
						break
					}
					g := w[i]
					h := math.Hypot(f, g)
					w[i] = h
					h = 1 / h
					c = g * h
					s = -f * h
					for j := 0; j < m; j++ {
						y := u.data[j*n+nm]
						z := u.data[j*n+i]
						u.data[j*n+nm] = y*c + z*s
						u.data[j*n+i] = z*c - y*s
					}
				}
			}
			z := w[k]
			if l == k {
				if z < 0 {
					w[k] = -z
					for j := 0; j < n; j++ {
						v.data[j*n+k] = -v.data[j*n+k]
					}
				}
				break
			}
			if its == 60 {
				return fmt.Errorf("mat: Golub-Kahan SVD did not converge in 60 iterations (non-finite input?)")
			}
			x := w[l]
			nm = k - 1
			y := w[nm]
			g := rv1[nm]
			h := rv1[k]
			f := ((y-z)*(y+z) + (g-h)*(g+h)) / (2 * h * y)
			g = math.Hypot(f, 1)
			f = ((x-z)*(x+z) + h*((y/(f+signCopy(g, f)))-h)) / x
			c, s := 1.0, 1.0
			for j := l; j <= nm; j++ {
				i := j + 1
				g := rv1[i]
				y := w[i]
				h := s * g
				g = c * g
				z := math.Hypot(f, h)
				rv1[j] = z
				c = f / z
				s = h / z
				f = x*c + g*s
				g = g*c - x*s
				h = y * s
				y *= c
				for jj := 0; jj < n; jj++ {
					xx := v.data[jj*n+j]
					zz := v.data[jj*n+i]
					v.data[jj*n+j] = xx*c + zz*s
					v.data[jj*n+i] = zz*c - xx*s
				}
				z = math.Hypot(f, h)
				w[j] = z
				if z != 0 {
					z = 1 / z
					c = f * z
					s = h * z
				}
				f = c*g + s*y
				x = c*y - s*g
				for jj := 0; jj < m; jj++ {
					yy := u.data[jj*n+j]
					zz := u.data[jj*n+i]
					u.data[jj*n+j] = yy*c + zz*s
					u.data[jj*n+i] = zz*c - yy*s
				}
			}
			rv1[l] = 0
			rv1[k] = f
			w[k] = x
		}
	}
	return nil
}

// sortSVDColumns orders singular values descending, permuting the columns
// of u and v to match.
func sortSVDColumns(u *Dense, w []float64, v *Dense) {
	n := len(w)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	already := true
	for i, p := range idx {
		if p != i {
			already = false
			break
		}
	}
	if already {
		return
	}
	wOut := make([]float64, n)
	uOut := New(u.rows, n)
	vOut := New(v.rows, n)
	for c, p := range idx {
		wOut[c] = w[p]
		for i := 0; i < u.rows; i++ {
			uOut.data[i*n+c] = u.data[i*n+p]
		}
		for i := 0; i < v.rows; i++ {
			vOut.data[i*n+c] = v.data[i*n+p]
		}
	}
	copy(w, wOut)
	u.data = uOut.data
	v.data = vOut.data
}
