package mat

import (
	"math"
	"math/rand"
	"testing"
)

// checkTruncatedSVD verifies res is a valid rank-k decomposition of a:
// column-orthonormal factors, non-negative non-increasing singular values,
// and U·Σ·Vᵀ matching the rank-k truncation from the dense SVD to tol.
func checkTruncatedSVD(t *testing.T, a *Dense, res SVDResult, k int, tol float64) {
	t.Helper()
	m, n := a.Dims()
	if res.U.Rows() != m || res.U.Cols() != k || res.V.Rows() != n || res.V.Cols() != k || len(res.S) != k {
		t.Fatalf("shapes: U %dx%d, V %dx%d, |S|=%d for %dx%d input at k=%d",
			res.U.Rows(), res.U.Cols(), res.V.Rows(), res.V.Cols(), len(res.S), m, n, k)
	}
	for j := 0; j < k; j++ {
		if res.S[j] < 0 {
			t.Fatalf("negative singular value S[%d] = %v", j, res.S[j])
		}
		if j > 0 && res.S[j] > res.S[j-1]+tol {
			t.Fatalf("singular values not sorted: S[%d]=%v > S[%d]=%v", j, res.S[j], j-1, res.S[j-1])
		}
	}
	for name, f := range map[string]*Dense{"U": res.U, "V": res.V} {
		g := Gram(f)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(g.At(i, j)-want) > tol {
					t.Fatalf("%sᵀ%s (%d,%d) = %v, want %v", name, name, i, j, g.At(i, j), want)
				}
			}
		}
	}
	// Compare the reconstruction against the exact truncated SVD.
	exact, err := SVD(a)
	if err != nil {
		t.Fatalf("reference SVD: %v", err)
	}
	ref := exact.Truncate(k)
	rec := reconstruct(res)
	refRec := reconstruct(ref)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(rec.At(i, j)-refRec.At(i, j)) > tol {
				t.Fatalf("reconstruction (%d,%d) = %v, want %v", i, j, rec.At(i, j), refRec.At(i, j))
			}
		}
	}
}

func reconstruct(r SVDResult) *Dense {
	us := New(r.U.Rows(), len(r.S))
	for i := 0; i < r.U.Rows(); i++ {
		for j := range r.S {
			us.Set(i, j, r.U.At(i, j)*r.S[j])
		}
	}
	vt := New(len(r.S), r.V.Rows())
	for i := range r.S {
		for j := 0; j < r.V.Rows(); j++ {
			vt.Set(i, j, r.V.At(j, i))
		}
	}
	return Mul(us, vt)
}

func TestGramSVDMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ m, n, k int }{
		{40, 12, 6},  // tall
		{12, 40, 6},  // wide
		{20, 20, 20}, // square, full rank
		{30, 8, 8},   // k = min dim
		{8, 30, 3},
	}
	for _, c := range cases {
		a := RandN(c.m, c.n, rng)
		res, err := GramSVD(a, c.k)
		if err != nil {
			t.Fatalf("GramSVD(%dx%d, %d): %v", c.m, c.n, c.k, err)
		}
		// Gram squares the condition number; random Gaussian matrices are
		// well-conditioned so 1e-8 is comfortable.
		checkTruncatedSVD(t, a, res, c.k, 1e-8)
	}
}

func TestGramSVDRankDeficient(t *testing.T) {
	// Rank-2 matrix, ask for rank 4: the trailing columns must come back as
	// orthonormal completions with zero singular values.
	rng := rand.New(rand.NewSource(9))
	u := RandN(24, 2, rng)
	v := RandN(10, 2, rng)
	vt := New(2, 10)
	for i := 0; i < 2; i++ {
		for j := 0; j < 10; j++ {
			vt.Set(i, j, v.At(j, i))
		}
	}
	a := Mul(u, vt)
	res, err := GramSVD(a, 4)
	if err != nil {
		t.Fatalf("GramSVD: %v", err)
	}
	for j := 2; j < 4; j++ {
		if res.S[j] > 1e-6 {
			t.Errorf("S[%d] = %v, want ~0 for rank-2 input", j, res.S[j])
		}
	}
	for _, f := range []*Dense{res.U, res.V} {
		g := Gram(f)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(g.At(i, j)-want) > 1e-8 {
					t.Fatalf("factor not orthonormal at (%d,%d): %v", i, j, g.At(i, j))
				}
			}
		}
	}
}

func TestGramSVDClampsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(10, 4, rng)
	res, err := GramSVD(a, 99)
	if err != nil {
		t.Fatalf("GramSVD: %v", err)
	}
	if len(res.S) != 4 {
		t.Fatalf("rank clamped to %d, want 4", len(res.S))
	}
}
