package mat

import (
	"math"
)

// QRCPResult holds a column-pivoted (rank-revealing) QR factorization
// A·P = Q·R, with Q m×k column-orthonormal, R k×n upper triangular with
// non-increasing |diagonal|, and Perm the column permutation
// (A's column Perm[j] maps to position j).
type QRCPResult struct {
	Q    *Dense
	R    *Dense
	Perm []int
}

// QRCP computes the Businger–Golub column-pivoted QR factorization of a.
// At every step the remaining column of largest norm is eliminated next, so
// the magnitude of R's diagonal is non-increasing and the numerical rank of
// a is revealed by where it collapses (see Rank).
func QRCP(a *Dense) QRCPResult {
	m, n := a.Dims()
	k := m
	if n < k {
		k = n
	}
	w := a.Clone()
	betas := make([]float64, k)
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}
	// Running squared norms of the trailing part of each column, downdated
	// after every reflection (with recomputation when cancellation bites).
	colNorm := make([]float64, n)
	colNormRef := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			v := w.data[i*n+j]
			s += v * v
		}
		colNorm[j] = s
		colNormRef[j] = s
	}

	for j := 0; j < k; j++ {
		// Pivot: remaining column of largest norm.
		p := j
		for c := j + 1; c < n; c++ {
			if colNorm[c] > colNorm[p] {
				p = c
			}
		}
		if p != j {
			for i := 0; i < m; i++ {
				w.data[i*n+j], w.data[i*n+p] = w.data[i*n+p], w.data[i*n+j]
			}
			perm[j], perm[p] = perm[p], perm[j]
			colNorm[j], colNorm[p] = colNorm[p], colNorm[j]
			colNormRef[j], colNormRef[p] = colNormRef[p], colNormRef[j]
		}

		// Householder reflector on column j, rows j..m-1.
		norm := 0.0
		for i := j; i < m; i++ {
			norm = math.Hypot(norm, w.data[i*n+j])
		}
		if norm == 0 {
			betas[j] = 0
			continue
		}
		alpha := w.data[j*n+j]
		if alpha > 0 {
			norm = -norm
		}
		v0 := alpha - norm
		w.data[j*n+j] = norm
		for i := j + 1; i < m; i++ {
			w.data[i*n+j] /= v0
		}
		betas[j] = -v0 / norm

		for c := j + 1; c < n; c++ {
			s := w.data[j*n+c]
			for i := j + 1; i < m; i++ {
				s += w.data[i*n+j] * w.data[i*n+c]
			}
			s *= betas[j]
			w.data[j*n+c] -= s
			for i := j + 1; i < m; i++ {
				w.data[i*n+c] -= s * w.data[i*n+j]
			}
			// Downdate the running norm; recompute when it loses half its
			// digits to cancellation.
			r := w.data[j*n+c]
			colNorm[c] -= r * r
			if colNorm[c] < 0 {
				colNorm[c] = 0
			}
			if colNorm[c] <= 1e-12*colNormRef[c] {
				s := 0.0
				for i := j + 1; i < m; i++ {
					v := w.data[i*n+c]
					s += v * v
				}
				colNorm[c] = s
				colNormRef[c] = s
			}
		}
	}

	r := New(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			r.data[i*n+j] = w.data[i*n+j]
		}
	}
	q := New(m, k)
	for j := 0; j < k; j++ {
		q.data[j*k+j] = 1
	}
	for j := k - 1; j >= 0; j-- {
		if betas[j] == 0 {
			continue
		}
		for c := 0; c < k; c++ {
			s := q.data[j*k+c]
			for i := j + 1; i < m; i++ {
				s += w.data[i*n+j] * q.data[i*k+c]
			}
			s *= betas[j]
			q.data[j*k+c] -= s
			for i := j + 1; i < m; i++ {
				q.data[i*k+c] -= s * w.data[i*n+j]
			}
		}
	}
	return QRCPResult{Q: q, R: r, Perm: perm}
}

// Rank returns the numerical rank revealed by the factorization: the number
// of diagonal entries of R with |r_jj| > tol·|r_00|. tol ≤ 0 selects
// max(m,n)·machine-epsilon, the conventional threshold.
func (f QRCPResult) Rank(tol float64) int {
	k := f.R.Rows()
	if k == 0 {
		return 0
	}
	n := f.R.Cols()
	lead := math.Abs(f.R.data[0])
	if lead == 0 {
		return 0
	}
	if tol <= 0 {
		dim := f.Q.Rows()
		if n > dim {
			dim = n
		}
		tol = float64(dim) * 2.220446049250313e-16
	}
	r := 0
	for j := 0; j < k; j++ {
		if math.Abs(f.R.data[j*n+j]) > tol*lead {
			r++
		} else {
			break
		}
	}
	return r
}

// PermutationMatrix materializes P (n×n) such that A·P = Q·R.
func (f QRCPResult) PermutationMatrix() *Dense {
	n := len(f.Perm)
	p := New(n, n)
	for j, src := range f.Perm {
		p.data[src*n+j] = 1
	}
	return p
}

// NumericalRank is a convenience wrapper: the rank of a revealed by QRCP at
// the default threshold.
func NumericalRank(a *Dense) int {
	if a.rows == 0 || a.cols == 0 {
		return 0
	}
	return QRCP(a).Rank(0)
}
