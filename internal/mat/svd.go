package mat

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/metrics"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// k = min(m,n) singular triplets, singular values sorted descending.
type SVDResult struct {
	U *Dense    // m×k, orthonormal columns
	S []float64 // k singular values, descending
	V *Dense    // n×k, orthonormal columns
}

// SVD computes a thin SVD of a.
//
// Implementation: small matrices (min dimension below gkCutoff) are reduced
// to square via a thin QR factorization and diagonalized with a one-sided
// Jacobi iteration — unconditionally convergent with high relative
// accuracy, and O(k³) per sweep after the QR step regardless of how tall
// the input is. Larger matrices dispatch to the Golub–Kahan
// bidiagonalization path (SVDGolubKahan), whose single O(m·n²) reduction is
// ~3× faster at n≈200. An error is returned only if an iteration limit is
// exceeded (non-finite input).
func SVD(a *Dense) (SVDResult, error) {
	metrics.CountSVD()
	return svd(a)
}

// svd is SVD without the metrics count, so the wide-input transpose
// recursion records one call per user-level factorization.
func svd(a *Dense) (SVDResult, error) {
	m, n := a.Dims()
	if m == 0 || n == 0 {
		return SVDResult{U: New(m, 0), S: nil, V: New(n, 0)}, nil
	}
	// Crossover between the Jacobi and Golub-Kahan paths, set where the
	// bidiagonalization's lower constant overtakes Jacobi's fast
	// convergence on small problems (see BenchmarkSVDJacobi*/GK*).
	const gkCutoff = 32
	if m >= gkCutoff && n >= gkCutoff {
		return SVDGolubKahan(a)
	}
	if m < n {
		// SVD(Aᵀ) = V·S·Uᵀ.
		res, err := svd(a.T())
		if err != nil {
			return SVDResult{}, err
		}
		return SVDResult{U: res.V, S: res.S, V: res.U}, nil
	}

	qr := QR(a) // Q: m×n, R: n×n
	u, s, v, err := jacobiSVDSquare(qr.R)
	if err != nil {
		return SVDResult{}, err
	}
	return SVDResult{U: Mul(qr.Q, u), S: s, V: v}, nil
}

// jacobiSVDSquare computes the SVD of a square matrix via one-sided Jacobi:
// it finds V orthogonal with A·V having orthogonal columns, then normalizes.
func jacobiSVDSquare(a *Dense) (u *Dense, s []float64, v *Dense, err error) {
	n := a.rows
	// Pre-scale so the largest magnitude is O(1): products of two tiny
	// column norms would otherwise underflow in the rotation threshold and
	// stall convergence. Singular values are scaled back at the end.
	scale := a.MaxAbs()
	if scale == 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		scale = 1
	}
	inv := 1 / scale
	// Column-major working copy: cols[j] is the j-th column, so the inner
	// rotation loops are contiguous.
	w := make([][]float64, n)
	for j := 0; j < n; j++ {
		col := a.Col(j)
		for i := range col {
			col[i] *= inv
		}
		w[j] = col
	}
	vcols := make([][]float64, n)
	for j := 0; j < n; j++ {
		vcols[j] = make([]float64, n)
		vcols[j][j] = 1
	}

	const (
		maxSweeps = 60
		tol       = 1e-15
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := Dot(w[p], w[p])
				beta := Dot(w[q], w[q])
				gamma := Dot(w[p], w[q])
				if alpha == 0 || beta == 0 {
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha)*math.Sqrt(beta) {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				wp, wq := w[p], w[q]
				for i := 0; i < n; i++ {
					xp, xq := wp[i], wq[i]
					wp[i] = c*xp - sn*xq
					wq[i] = sn*xp + c*xq
				}
				vp, vq := vcols[p], vcols[q]
				for i := 0; i < n; i++ {
					xp, xq := vp[i], vq[i]
					vp[i] = c*xp - sn*xq
					vq[i] = sn*xp + c*xq
				}
			}
		}
		if !rotated {
			u, s, v, err = assembleJacobi(w, vcols)
			if err == nil {
				for i := range s {
					s[i] *= scale
				}
			}
			return u, s, v, err
		}
	}
	return nil, nil, nil, fmt.Errorf("mat: SVD Jacobi iteration did not converge in %d sweeps (non-finite input?)", 60)
}

func assembleJacobi(w, vcols [][]float64) (u *Dense, s []float64, v *Dense, err error) {
	n := len(w)
	sigma := make([]float64, n)
	for j := 0; j < n; j++ {
		sigma[j] = Nrm2(w[j])
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sigma[idx[a]] > sigma[idx[b]] })

	u = New(n, n)
	v = New(n, n)
	s = make([]float64, n)
	// Threshold below which a singular value is treated as zero and its
	// left vector is completed rather than normalized (avoids 0/0).
	tiny := 0.0
	if n > 0 {
		tiny = sigma[idx[0]] * 1e-300
	}
	var deficient []int
	for k, src := range idx {
		s[k] = sigma[src]
		for i := 0; i < n; i++ {
			v.data[i*n+k] = vcols[src][i]
		}
		if sigma[src] > tiny && sigma[src] > 0 {
			inv := 1 / sigma[src]
			for i := 0; i < n; i++ {
				u.data[i*n+k] = w[src][i] * inv
			}
		} else {
			s[k] = 0
			deficient = append(deficient, k)
		}
	}
	// Complete zero columns of U to an orthonormal basis so U is always
	// column-orthonormal even for rank-deficient input.
	for _, k := range deficient {
		completeOrthonormalColumn(u, k)
	}
	return u, s, v, nil
}

// completeOrthonormalColumn fills column k of u (assumed zero) with a unit
// vector orthogonal to all other columns, by Gram-Schmidt over canonical
// basis vectors.
func completeOrthonormalColumn(u *Dense, k int) {
	n := u.rows
	cand := make([]float64, n)
	for trial := 0; trial < n; trial++ {
		for i := range cand {
			cand[i] = 0
		}
		cand[trial] = 1
		// Project out every other column (twice, for re-orthogonalization).
		for pass := 0; pass < 2; pass++ {
			for c := 0; c < u.cols; c++ {
				if c == k {
					continue
				}
				d := 0.0
				for i := 0; i < n; i++ {
					d += u.data[i*u.cols+c] * cand[i]
				}
				if d == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					cand[i] -= d * u.data[i*u.cols+c]
				}
			}
		}
		norm := Nrm2(cand)
		if norm > 1e-6 {
			inv := 1 / norm
			for i := 0; i < n; i++ {
				u.data[i*u.cols+k] = cand[i] * inv
			}
			return
		}
	}
	// Unreachable for k < n; leave zero as a last resort.
}

// Truncate returns the rank-k truncation of the decomposition, sharing no
// storage with the receiver.
func (r SVDResult) Truncate(k int) SVDResult {
	if k > len(r.S) {
		k = len(r.S)
	}
	u := r.U.Slice(0, r.U.rows, 0, k)
	v := r.V.Slice(0, r.V.rows, 0, k)
	s := make([]float64, k)
	copy(s, r.S[:k])
	return SVDResult{U: u, S: s, V: v}
}

// LeadingMethod selects how LeadingLeft extracts dominant singular vectors.
type LeadingMethod int

const (
	// LeadingAuto picks Gram when it is clearly cheaper, else Jacobi SVD.
	LeadingAuto LeadingMethod = iota
	// LeadingJacobi always runs the full QR+Jacobi SVD.
	LeadingJacobi
	// LeadingGram forms the smaller Gram matrix and eigendecomposes it.
	// It halves the work for very rectangular inputs at the price of a
	// squared condition number — fine for extracting dominant subspaces.
	LeadingGram
)

// LeadingLeft returns the k leading left singular vectors of a as an
// m×k column-orthonormal matrix.
func LeadingLeft(a *Dense, k int, method LeadingMethod) (*Dense, error) {
	m, n := a.Dims()
	if k > m {
		k = m
	}
	if k > n {
		// Left singular vectors beyond min(m,n) are not defined by a; the
		// Jacobi path returns an orthonormal completion, which is what the
		// ALS callers need, so route there.
		method = LeadingJacobi
	}
	if method == LeadingAuto {
		// Gram pays off when one dimension dwarfs the other.
		if m >= 2*n || n >= 2*m {
			method = LeadingGram
		} else {
			method = LeadingJacobi
		}
	}
	switch method {
	case LeadingGram:
		return leadingLeftGram(a, k)
	default:
		res, err := SVD(a)
		if err != nil {
			return nil, err
		}
		if k <= res.U.cols {
			return res.U.Slice(0, m, 0, k), nil
		}
		// Caller asked for more directions than a defines: pad with an
		// orthonormal completion so downstream factor matrices stay
		// column-orthonormal.
		u := New(m, k)
		for i := 0; i < m; i++ {
			copy(u.Row(i)[:res.U.cols], res.U.Row(i))
		}
		for j := res.U.cols; j < k; j++ {
			completeOrthonormalColumn(u, j)
		}
		return u, nil
	}
}

func leadingLeftGram(a *Dense, k int) (*Dense, error) {
	m, n := a.Dims()
	if m <= n {
		// Small row space: eigenvectors of A·Aᵀ are the left vectors.
		g := MulTB(a, a) // m×m
		eig, err := SymEig(g)
		if err != nil {
			return nil, err
		}
		return eig.Vectors.Slice(0, m, 0, k), nil
	}
	// Tall: eigen of AᵀA gives V; U = A·V·Σ⁻¹.
	g := Gram(a) // n×n
	eig, err := SymEig(g)
	if err != nil {
		return nil, err
	}
	v := eig.Vectors.Slice(0, n, 0, k)
	u := Mul(a, v) // m×k, columns have norm σ_j
	for j := 0; j < k; j++ {
		lambda := eig.Values[j]
		if lambda <= 0 {
			completeOrthonormalColumn(u, j)
			continue
		}
		inv := 1 / math.Sqrt(lambda)
		norm := 0.0
		for i := 0; i < m; i++ {
			u.data[i*k+j] *= inv
			norm += u.data[i*k+j] * u.data[i*k+j]
		}
		// Guard against cancellation for tiny eigenvalues.
		if norm < 0.5 {
			completeOrthonormalColumn(u, j)
		}
	}
	return u, nil
}
