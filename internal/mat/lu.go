package mat

import (
	"fmt"
	"math"
)

// LUResult holds an LU factorization with partial pivoting: P·A = L·U,
// packed into a single matrix (unit lower triangle implicit).
type LUResult struct {
	lu    *Dense
	pivot []int
	sign  int // determinant sign from row swaps
}

// LU factors the square matrix a with partial pivoting. It returns an error
// when a pivot is exactly zero (structurally singular); near-singular
// systems are reported by Solve.
func LU(a *Dense) (*LUResult, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: LU of non-square %d×%d matrix", a.rows, a.cols))
	}
	lu := a.Clone()
	piv := make([]int, n)
	sign := 1
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot selection.
		p, maxv := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("mat: LU: matrix is singular at column %d", k)
		}
		if p != k {
			rowK := lu.data[k*n : (k+1)*n]
			rowP := lu.data[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu.data[i*n+k+1 : (i+1)*n]
			rowK := lu.data[k*n+k+1 : (k+1)*n]
			for j, v := range rowK {
				rowI[j] -= l * v
			}
		}
	}
	return &LUResult{lu: lu, pivot: piv, sign: sign}, nil
}

// SolveVec solves A·x = b for a single right-hand side.
func (f *LUResult) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: LU SolveVec rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.data[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.data[i*n+j] * x[j]
		}
		d := f.lu.data[i*n+i]
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("mat: LU solve: negligible pivot %g at %d", d, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve solves A·X = B column by column.
func (f *LUResult) Solve(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		panic(fmt.Sprintf("mat: LU Solve rhs has %d rows, want %d", b.rows, n))
	}
	x := New(n, b.cols)
	col := make([]float64, n)
	for c := 0; c < b.cols; c++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+c]
		}
		sol, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			x.data[i*b.cols+c] = sol[i]
		}
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LUResult) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹ for a square matrix a, or an error if a is singular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// SolveSPD solves A·X = B for a symmetric positive-definite A using
// Cholesky factorization. It returns an error if a is not numerically
// positive definite.
func SolveSPD(a, b *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	x := New(n, b.cols)
	col := make([]float64, n)
	for c := 0; c < b.cols; c++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+c]
		}
		// Forward: L·y = b.
		for i := 0; i < n; i++ {
			s := col[i]
			for j := 0; j < i; j++ {
				s -= l.data[i*n+j] * col[j]
			}
			col[i] = s / l.data[i*n+i]
		}
		// Backward: Lᵀ·x = y.
		for i := n - 1; i >= 0; i-- {
			s := col[i]
			for j := i + 1; j < n; j++ {
				s -= l.data[j*n+i] * col[j]
			}
			col[i] = s / l.data[i*n+i]
		}
		for i := 0; i < n; i++ {
			x.data[i*b.cols+c] = col[i]
		}
	}
	return x, nil
}

// Cholesky returns the lower-triangular factor L with A = L·Lᵀ, or an error
// if a is not numerically positive definite.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: Cholesky of non-square %d×%d matrix", a.rows, a.cols))
	}
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("mat: Cholesky: matrix not positive definite (pivot %d is %g)", i, s)
				}
				l.data[i*n+i] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return l, nil
}
