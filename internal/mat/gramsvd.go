package mat

import "math"

// GramSVD computes a rank-k truncated SVD of a via the Gram route: form the
// smaller of AᵀA or AAᵀ, eigendecompose it, and recover the long factor by
// one multiplication. For very rectangular inputs this does roughly half the
// work of the dense SVD, at the price of squaring the condition number —
// accurate for dominant singular triples, which is exactly what slice
// compression needs. Eigenvalues that are non-positive (or whose recovered
// singular vector collapses under cancellation) are replaced by zero
// singular values with orthonormal-completion vectors, so U and V are
// column-orthonormal even for rank-deficient input.
func GramSVD(a *Dense, k int) (SVDResult, error) {
	m, n := a.Dims()
	s := m
	if n < s {
		s = n
	}
	if k > s {
		k = s
	}
	if k < 1 {
		k = 1
	}
	if n <= m {
		// Tall (or square): eigen of AᵀA gives V and σ²; U = A·V·Σ⁻¹.
		eig, err := SymEig(Gram(a))
		if err != nil {
			return SVDResult{}, err
		}
		v := eig.Vectors.Slice(0, n, 0, k)
		u := Mul(a, v) // m×k, column j has norm σ_j
		sig := scaleToUnitColumns(u, eig.Values[:k])
		return SVDResult{U: u, S: sig, V: v}, nil
	}
	// Wide: eigen of AAᵀ gives U; V = AᵀU·Σ⁻¹.
	eig, err := SymEig(MulTB(a, a))
	if err != nil {
		return SVDResult{}, err
	}
	u := eig.Vectors.Slice(0, m, 0, k)
	v := MulTA(a, u) // n×k, column j has norm σ_j
	sig := scaleToUnitColumns(v, eig.Values[:k])
	return SVDResult{U: u, S: sig, V: v}, nil
}

// scaleToUnitColumns normalizes column j of x by σ_j = sqrt(max(λ_j, 0))
// and returns the singular values. Columns whose eigenvalue is non-positive
// or whose normalized norm collapsed under cancellation are rebuilt by
// orthonormal completion with σ_j = 0.
func scaleToUnitColumns(x *Dense, lambda []float64) []float64 {
	rows, cols := x.Dims()
	sig := make([]float64, cols)
	for j := 0; j < cols; j++ {
		if lambda[j] <= 0 {
			completeOrthonormalColumn(x, j)
			continue
		}
		sig[j] = math.Sqrt(lambda[j])
		inv := 1 / sig[j]
		norm := 0.0
		for i := 0; i < rows; i++ {
			x.data[i*cols+j] *= inv
			norm += x.data[i*cols+j] * x.data[i*cols+j]
		}
		if norm < 0.5 {
			sig[j] = 0
			completeOrthonormalColumn(x, j)
		}
	}
	return sig
}
