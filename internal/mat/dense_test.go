package mat

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d, want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestNewFromDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFromData with wrong length did not panic")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestAtSetRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %g, want 0", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	want := []float64{1, 2, 3, 4, 5, 6}
	for i, v := range m.Data() {
		if v != want[i] {
			t.Fatalf("Data()[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(3).At(%d,%d) = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims %d×%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandN(5, 7, rng)
	if !m.T().T().EqualApprox(m, 0) {
		t.Fatal("transpose is not an involution")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := a.Add(b)
	diff := sum.Sub(b)
	if !diff.EqualApprox(a, 1e-15) {
		t.Fatal("(a+b)-b != a")
	}
	if sum.At(1, 1) != 44 {
		t.Fatalf("sum(1,1) = %g, want 44", sum.At(1, 1))
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestScale(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 4}})
	s := a.Scale(-2)
	want := FromRows([][]float64{{-2, 4}, {-6, -8}})
	if !s.EqualApprox(want, 0) {
		t.Fatalf("Scale result wrong: %v", s)
	}
}

func TestAddScaledInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	b := FromRows([][]float64{{1, 2}, {3, 4}})
	a.AddScaledInPlace(0.5, b)
	want := FromRows([][]float64{{1.5, 2}, {2.5, 3}})
	if !a.EqualApprox(want, 1e-15) {
		t.Fatalf("AddScaledInPlace wrong: %v", a)
	}
}

func TestNormFrobenius(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := a.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm = %g, want 5", got)
	}
}

func TestNormExtremeValuesNoOverflow(t *testing.T) {
	a := FromRows([][]float64{{1e200, 1e200}})
	got := a.Norm()
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 0) || !almostEqual(got/want, 1, 1e-12) {
		t.Fatalf("Norm overflowed: %g", got)
	}
}

func TestTrace(t *testing.T) {
	a := FromRows([][]float64{{1, 9}, {9, 2}})
	if got := a.Trace(); got != 3 {
		t.Fatalf("Trace = %g, want 3", got)
	}
}

func TestSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := a.Slice(1, 3, 0, 2)
	want := FromRows([][]float64{{4, 5}, {7, 8}})
	if !s.EqualApprox(want, 0) {
		t.Fatalf("Slice wrong: %v", s)
	}
	// Slice must copy.
	s.Set(0, 0, 99)
	if a.At(1, 0) != 4 {
		t.Fatal("Slice shares storage")
	}
}

func TestRowColAccessors(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if r := a.Row(1); r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c := a.Col(1); c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v", c)
	}
	a.SetRow(0, []float64{9, 8})
	a.SetCol(0, []float64{7, 6})
	want := FromRows([][]float64{{7, 8}, {6, 4}})
	if !a.EqualApprox(want, 0) {
		t.Fatalf("SetRow/SetCol wrong: %v", a)
	}
}

func TestDotAxpyNrm2(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	z := []float64{1, 1, 1}
	Axpy(2, x, z)
	if z[2] != 7 {
		t.Fatalf("Axpy wrong: %v", z)
	}
	if got := Nrm2([]float64{3, 4}); !almostEqual(got, 5, 1e-14) {
		t.Fatalf("Nrm2 = %g", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{1, -7}, {3, 4}})
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g, want 7", got)
	}
}

func TestStringSmoke(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if small.String() == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(100, 100)
	if big.String() == "" {
		t.Fatal("empty String for big matrix")
	}
}
