package mat

import (
	"sync"
	"sync/atomic"
)

// Cache blocking for the accumulation matmul kernel.
//
// mulAddRows walks b once per output row; when b outgrows the cache, every
// row re-reads it from memory. The blocked kernel tiles the k (inner) and j
// (output-column) dimensions so one BlockK×BlockN panel of b stays resident
// across all rows of the worker's range, and — when the j dimension is
// split — packs the panel into a contiguous tile recycled through a pool,
// so the inner axpy streams one dense buffer instead of strided slices of b.
//
// Neither the block sizes nor the packing change any arithmetic: each
// output element accumulates its k-terms in the same ascending order as the
// plain kernel, so blocked results are bit-identical to unblocked ones —
// and, because the row split is untouched, bit-identical for every worker
// count. That is what lets the sizes be autotuned (internal/kernelsel)
// without joining any cache key.

const (
	// defaultBlockK and defaultBlockN are the compiled-in tile: a
	// 128×512 float64 panel is 512 KiB, sized for a typical L2.
	defaultBlockK = 128
	defaultBlockN = 512
	// minBlockDim keeps degenerate settings from turning the kernel into
	// per-element bookkeeping.
	minBlockDim = 8
	// maxBlockDim bounds the packed-tile size (maxBlockDim² floats = 8 MiB).
	maxBlockDim = 1 << 10
	// minPackRows is the row-range size below which packing cannot
	// amortize its copy and the kernel reads b in place.
	minPackRows = 8
)

// blockCfg packs the current (BlockK, BlockN) pair into one atomic word so
// concurrent kernels always read a consistent pair.
var blockCfg atomic.Uint64

func init() { blockCfg.Store(uint64(defaultBlockK)<<32 | uint64(defaultBlockN)) }

// SetBlockSizes installs process-wide cache-block sizes for the
// accumulation matmul kernel, returning the previous pair. Values are
// clamped to [8, 1024]. Block sizes affect timing only — results are
// bit-identical for every setting — so a process-global knob is sound even
// with concurrent decompositions. Callers normally set this once at startup
// from an autotuned kernelsel profile.
func SetBlockSizes(kc, nc int) (prevK, prevN int) {
	kc = min(max(kc, minBlockDim), maxBlockDim)
	nc = min(max(nc, minBlockDim), maxBlockDim)
	old := blockCfg.Swap(uint64(kc)<<32 | uint64(nc))
	return int(old >> 32), int(old & 0xffffffff)
}

// BlockSizes returns the current cache-block sizes.
func BlockSizes() (kc, nc int) {
	v := blockCfg.Load()
	return int(v >> 32), int(v & 0xffffffff)
}

// tile is a packed b-panel buffer. Tiles are recycled through tilePool so
// steady-state blocked multiplies reuse warm buffers instead of allocating
// per panel; the indirection through a struct pointer keeps Put itself
// allocation-free.
type tile struct{ buf []float64 }

var tilePool = sync.Pool{New: func() any { return new(tile) }}
